// Benchmarks regenerating every figure of the paper (trimmed sweeps via
// figures.Options.Quick) plus microbenchmarks of the simulation substrate.
// Each figure benchmark reports its headline numbers with b.ReportMetric so
// `go test -bench=.` output doubles as a compact reproduction record; run
// cmd/a4bench for the full tables.
package a4sim_test

import (
	"testing"
	"time"

	"a4sim/internal/figures"
	"a4sim/internal/harness"
	"a4sim/internal/hierarchy"
	"a4sim/internal/obs"
	"a4sim/internal/pcm"
	"a4sim/internal/stats"
	"a4sim/internal/workload"
)

// benchFigure runs one figure per iteration and lets the caller extract
// headline metrics from the final report.
func benchFigure(b *testing.B, id string, metrics func(r *figures.Report, b *testing.B)) {
	benchFigureOpts(b, id, figures.Options{Quick: true}, metrics)
}

func benchFigureOpts(b *testing.B, id string, opts figures.Options, metrics func(r *figures.Report, b *testing.B)) {
	b.Helper()
	fn, ok := figures.Registry[id]
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var rep *figures.Report
	for i := 0; i < b.N; i++ {
		rep = fn(opts)
	}
	if rep != nil && metrics != nil {
		metrics(rep, b)
	}
}

// evalBenchOpts compresses the A4 warm-up for the evaluation figures so the
// whole suite fits a single bench run; the controller converges part-way,
// which is enough for the reported headline metrics (full-length runs live
// in cmd/a4bench and results/).
var evalBenchOpts = figures.Options{Quick: true, Warmup: 10, Measure: 3}

func report(b *testing.B, rep *figures.Report, metric, series, label string) {
	b.Helper()
	if v, ok := rep.Value(series, label); ok {
		b.ReportMetric(v, metric)
	}
}

func BenchmarkFig3a(b *testing.B) {
	benchFigure(b, "3a", func(r *figures.Report, b *testing.B) {
		report(b, r, "xmemMiss@dca", "xmem-llc-miss", "[0:1]")
		report(b, r, "xmemMiss@std", "xmem-llc-miss", "[3:4]")
	})
}

func BenchmarkFig3b(b *testing.B) {
	benchFigure(b, "3b", func(r *figures.Report, b *testing.B) {
		report(b, r, "xmemMiss@bloat", "xmem-llc-miss", "[5:6]")
		report(b, r, "xmemMiss@incl", "xmem-llc-miss", "[9:10]")
	})
}

func BenchmarkFig4(b *testing.B) {
	benchFigure(b, "4", func(r *figures.Report, b *testing.B) {
		report(b, r, "missOn", "xmem-llc-miss", "on[9:10]")
		report(b, r, "missOff", "xmem-llc-miss", "off[9:10]")
		report(b, r, "p99OffUs", "dpdk-p99-us", "off[9:10]")
	})
}

func BenchmarkFig5(b *testing.B) {
	benchFigure(b, "5", func(r *figures.Report, b *testing.B) {
		report(b, r, "tpOn2MB", "storage-tp-dcaon", "2MB")
		report(b, r, "tpOff2MB", "storage-tp-dcaoff", "2MB")
		report(b, r, "memRdOn2MB", "memrd-dcaon", "2MB")
	})
}

func BenchmarkFig6(b *testing.B) {
	benchFigure(b, "6", func(r *figures.Report, b *testing.B) {
		report(b, r, "latSolo", "net-avg-us-dcaon", "solo")
		report(b, r, "lat128K", "net-avg-us-dcaon", "128KB")
		report(b, r, "lat2MB", "net-avg-us-dcaon", "2MB")
	})
}

func BenchmarkFig7(b *testing.B) {
	benchFigure(b, "7", func(r *figures.Report, b *testing.B) {
		report(b, r, "lat2E", "net-avg-us", "2E")
		report(b, r, "lat4O", "net-avg-us", "4O")
		report(b, r, "memRd2E", "mem-read-GBps", "2E")
		report(b, r, "memRd4O", "mem-read-GBps", "4O")
	})
}

func BenchmarkFig8a(b *testing.B) {
	benchFigure(b, "8a", func(r *figures.Report, b *testing.B) {
		report(b, r, "latOn128K", "net-avg-us-dcaon", "128KB")
		report(b, r, "latSSDOff128K", "net-avg-us-ssdoff", "128KB")
	})
}

func BenchmarkFig8b(b *testing.B) {
	benchFigure(b, "8b", func(r *figures.Report, b *testing.B) {
		report(b, r, "xmemMissWide", "xmem-llc-miss", "[2:5]")
		report(b, r, "xmemMissTrash", "xmem-llc-miss", "[2:2]")
	})
}

func BenchmarkFig11(b *testing.B) {
	benchFigureOpts(b, "11", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "xm1Default", "perf-xmem1-default", "1024B")
		report(b, r, "xm1A4", "perf-xmem1-a4-d", "1024B")
	})
}

func BenchmarkFig12(b *testing.B) {
	benchFigureOpts(b, "12", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "p99Default128K", "net-p99-us-default", "128KB")
		report(b, r, "p99A4128K", "net-p99-us-a4-d", "128KB")
	})
}

func BenchmarkFig13a(b *testing.B) {
	benchFigureOpts(b, "13a", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "hpA4", "perf-a4-d", "Avg(HP)")
		report(b, r, "lpA4", "perf-a4-d", "Avg(LP)")
		report(b, r, "allA4", "perf-a4-d", "Avg(all)")
	})
}

func BenchmarkFig13b(b *testing.B) {
	benchFigureOpts(b, "13b", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "hpA4", "perf-a4-d", "Avg(HP)")
		report(b, r, "lpA4", "perf-a4-d", "Avg(LP)")
	})
}

func BenchmarkFig14(b *testing.B) {
	benchFigureOpts(b, "14", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "waitDefaultUs", "fastclick-wait-us", "default")
		report(b, r, "waitA4Us", "fastclick-wait-us", "a4-d")
		report(b, r, "memRdA4", "mem-read-GBps", "a4-d")
	})
}

func BenchmarkFig15a(b *testing.B) {
	benchFigureOpts(b, "15a", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "hpT5_90", "avg-hp", "T5=90")
	})
}

func BenchmarkFig15b(b *testing.B) {
	benchFigureOpts(b, "15b", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "hpDefaults", "avg-hp", "40/35/40")
		report(b, r, "hpHighT2", "avg-hp", "T2-off")
	})
}

func BenchmarkFig15c(b *testing.B) {
	benchFigureOpts(b, "15c", evalBenchOpts, func(r *figures.Report, b *testing.B) {
		report(b, r, "hp1s", "avg-hp", "1s")
		report(b, r, "hpOracle", "avg-hp", "oracle")
	})
}

// --- substrate microbenchmarks ---

func newBenchHierarchy(b *testing.B) (*hierarchy.Hierarchy, pcm.WorkloadID) {
	b.Helper()
	f := pcm.NewFabric(1)
	id := f.Register("bench")
	return hierarchy.New(hierarchy.SkylakeConfig(), f), id
}

func BenchmarkHierarchyCPURead(b *testing.B) {
	h, id := newBenchHierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CPURead(i%4, id, uint64(i)%(1<<20), false)
	}
}

func BenchmarkHierarchyDMAWrite(b *testing.B) {
	h, id := newBenchHierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DMAWrite(0, id, uint64(i)%(1<<18))
	}
}

func BenchmarkHierarchyMixedTraffic(b *testing.B) {
	h, id := newBenchHierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i) % (1 << 18)
		h.DMAWrite(0, id, a)
		h.CPURead(i%4, id, a, true)
	}
}

func BenchmarkScenarioSecond(b *testing.B) {
	// Cost of one simulated second of the micro mix under Default, measured
	// inside an open measurement window like every real run (and like the
	// Series/Obs/Sampled siblings below — the window costs ~3% over a bare
	// Engine.Run loop, which used to read as a phantom telemetry overhead
	// when this benchmark skipped it; see PERF.md).
	p := harness.DefaultParams()
	s := harness.NewScenario(p)
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
	s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(harness.Default())
	s.Warm(1)
	s.BeginMeasure()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Measure(1)
	}
}

// BenchmarkScenarioSecondSampled prices sampled execution against the
// detailed path on otherwise identical scenarios: both sub-benchmarks run
// one simulated second of the micro mix inside an open measurement window;
// "sampled" runs it under the default schedule (200 ms detail per 1 s
// period), fast-forwarding the other 800 ms. scripts/bench.sh records
// detailed/sampled ns-per-op as sampled_speedup; the acceptance target is
// >=2x (ideal for the default schedule is 5x, the gap is the fast-forward
// and extrapolation cost plus the detail windows' share of fixed work).
func BenchmarkScenarioSecondSampled(b *testing.B) {
	run := func(b *testing.B, sample harness.SampleSpec) {
		p := harness.DefaultParams()
		p.Sample = sample
		s := harness.NewScenario(p)
		s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
		s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
		s.Start(harness.Default())
		s.Warm(1)
		s.BeginMeasure()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Measure(1)
		}
	}
	b.Run("detailed", func(b *testing.B) { run(b, harness.SampleSpec{}) })
	b.Run("sampled", func(b *testing.B) {
		run(b, harness.SampleSpec{DetailUs: 200_000, PeriodUs: 1_000_000})
	})
}

// BenchmarkScenarioSecondSeries prices the telemetry plane on one
// simulated second inside an open measurement window: "off" is the default
// measurement path (per-second core columns, no export — what every run
// pays since the series refactor), "on" adds every extended column group
// (device queues, LLC occupancy, export). scripts/bench.sh records the
// relative difference as series_overhead_pct; the acceptance bound is that
// the plane's cost stays within noise (<3%).
func BenchmarkScenarioSecondSeries(b *testing.B) {
	run := func(b *testing.B, opts harness.SeriesOpts) {
		p := harness.DefaultParams()
		s := harness.NewScenario(p)
		s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
		s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
		s.Start(harness.Default())
		s.Monitor.EnableSeries(opts)
		s.Warm(1)
		s.BeginMeasure()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Measure(1)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, harness.SeriesOpts{}) })
	b.Run("on", func(b *testing.B) {
		run(b, harness.SeriesOpts{Devices: true, Occupancy: true, Controller: true, Export: true})
	})
}

// BenchmarkScenarioSecondObs prices the observability plane on one
// simulated second with the full telemetry series enabled: "off" is the
// bare measurement loop, "on" adds everything a traced, streamed, metered
// request pays — a span per second, a latency-histogram observation, and
// the series row hook publishing through a hub to one draining subscriber.
// scripts/bench.sh records the relative difference as obs_overhead_pct;
// the acceptance bound is <3%.
func BenchmarkScenarioSecondObs(b *testing.B) {
	run := func(b *testing.B, instrumented bool) {
		p := harness.DefaultParams()
		s := harness.NewScenario(p)
		s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
		s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
		s.Start(harness.Default())
		s.Monitor.EnableSeries(harness.SeriesOpts{Devices: true, Occupancy: true, Controller: true, Export: true})
		s.Warm(1)
		s.BeginMeasure()
		var (
			tr   *obs.Trace
			hist = stats.NewHistogram()
		)
		if instrumented {
			tr = obs.NewTrace("bench")
			hub := obs.NewSeriesHub()
			pub := hub.Open("bench")
			sub, _ := hub.Attach("bench")
			drained := make(chan struct{})
			go func() {
				for range sub.C {
				}
				close(drained)
			}()
			b.Cleanup(func() { pub.Finish(nil); <-drained })
			s.Monitor.SetRowHook(pub.Publish)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if instrumented {
				sp := tr.Begin("measure")
				t0 := time.Now()
				s.Measure(1)
				sp.End()
				hist.Observe(time.Since(t0).Microseconds())
			} else {
				s.Measure(1)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// --- sweep forking (snapshot/fork warm-state reuse) ---

// sweepForkPoints is the benchmark sweep: divergent X-Mem mask positions
// over one shared prefix, warm-up-dominated (warmup >= measure) as in the
// paper's figure runs.
var sweepForkPoints = []int{0, 2, 4, 6, 8, 9}

const (
	sweepForkWarmup  = 4.0
	sweepForkMeasure = 1.0
)

// buildSweepForkPrefix constructs and starts the shared scenario prefix.
func buildSweepForkPrefix() *harness.Scenario {
	s := harness.NewScenario(harness.DefaultParams())
	d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddXMem("xmem", []int{4, 5}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(harness.Default())
	pinWays(s, 1, d.Cores(), 5, 6)
	return s
}

func pinWays(s *harness.Scenario, clos int, cores []int, lo, hi int) {
	if err := s.H.CAT().SetWayRange(clos, lo, hi); err != nil {
		panic(err)
	}
	for _, c := range cores {
		if err := s.H.CAT().Associate(c, clos); err != nil {
			panic(err)
		}
	}
}

// BenchmarkSweepFork compares the two runner strategies on the same sweep,
// serially, so the ratio of the sub-benchmarks' ns/op is the wall-clock
// reduction from warm-state reuse alone (scripts/bench.sh records it as
// sweep_fork_speedup). The fork contract makes both produce identical
// results; see figures.TestPrefixSweepMatchesFresh for the pin.
func BenchmarkSweepFork(b *testing.B) {
	measurePoint := func(s *harness.Scenario, lo int) *harness.Result {
		pinWays(s, 2, []int{4, 5}, lo, lo+1)
		s.BeginMeasure()
		s.Measure(sweepForkMeasure)
		return s.EndMeasure()
	}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, lo := range sweepForkPoints {
				s := buildSweepForkPrefix()
				s.Warm(sweepForkWarmup)
				if measurePoint(s, lo) == nil {
					b.Fatal("no result")
				}
			}
		}
		b.ReportMetric(float64(len(sweepForkPoints)), "points")
	})
	b.Run("forked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := buildSweepForkPrefix()
			s.Warm(sweepForkWarmup)
			for _, lo := range sweepForkPoints {
				if measurePoint(s.Fork(), lo) == nil {
					b.Fatal("no result")
				}
			}
		}
		b.ReportMetric(float64(len(sweepForkPoints)), "points")
	})
}

// --- ablation benchmarks (design-choice knobs of DESIGN.md §4) ---

func benchAblation(b *testing.B, id string, metrics func(r *figures.Report, b *testing.B)) {
	b.Helper()
	fn, ok := figures.AblationRegistry[id]
	if !ok {
		b.Fatalf("unknown ablation %s", id)
	}
	var rep *figures.Report
	for i := 0; i < b.N; i++ {
		rep = fn(figures.Options{Quick: true})
	}
	if rep != nil && metrics != nil {
		metrics(rep, b)
	}
}

func BenchmarkAblationMigrationRace(b *testing.B) {
	benchAblation(b, "ab-migration", func(r *figures.Report, b *testing.B) {
		report(b, r, "bloatAt0", "xmem-miss@[5:6]", "stick=0%")
		report(b, r, "dirAt100", "xmem-miss@[9:10]", "stick=100%")
	})
}

func BenchmarkAblationVictimRandomness(b *testing.B) {
	benchAblation(b, "ab-plru", func(r *figures.Report, b *testing.B) {
		report(b, r, "latentAt0", "xmem-miss@[0:1]", "rand=0%")
		report(b, r, "latentAt10", "xmem-miss@[0:1]", "rand=10%")
	})
}

func BenchmarkAblationBurstShaping(b *testing.B) {
	benchAblation(b, "ab-burst", func(r *figures.Report, b *testing.B) {
		report(b, r, "latBurstyUs", "net-avg-us", "bursty")
		report(b, r, "latSmoothUs", "net-avg-us", "smooth")
	})
}

func BenchmarkAblationSSDParallelism(b *testing.B) {
	benchAblation(b, "ab-ssdpar", func(r *figures.Report, b *testing.B) {
		report(b, r, "leak128Par8", "leak-rate@128KB", "par=8")
		report(b, r, "leak128Par64", "leak-rate@128KB", "par=64")
	})
}
