#!/usr/bin/env bash
# profile_serve.sh — capture CPU, mutex, and block profiles of a4serve
# under open-loop load: build both binaries, start a throwaway daemon with
# -pprof, run a fixed-rate a4load pass while the CPU profile records, then
# a short saturation search, and leave the pprof files plus both load
# reports in the output directory. The evidence PERF.md's serving-path
# sections are written from.
#
# Usage: scripts/profile_serve.sh [outdir]
#   PROFILE_PORT=8061 PROFILE_RATE=96 PROFILE_DURATION=10s scripts/profile_serve.sh
set -euo pipefail

cd "$(dirname "$0")/.."

outdir="${1:-prof_$(date +%Y%m%d_%H%M%S)}"
port="${PROFILE_PORT:-8061}"
rate="${PROFILE_RATE:-96}"
duration="${PROFILE_DURATION:-10s}"
workers="${PROFILE_WORKERS:-4}"
base="http://127.0.0.1:$port"

mkdir -p "$outdir"
serve_bin=$(mktemp -t a4serve.XXXXXX)
load_bin=$(mktemp -t a4load.XXXXXX)
serve_pid=""
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_bin" "$load_bin"' EXIT

if curl -sf "$base/healthz" >/dev/null 2>&1; then
	echo "profile_serve.sh: port $port already serving; refusing to profile a stale daemon" >&2
	exit 1
fi
go build -o "$serve_bin" ./cmd/a4serve
go build -o "$load_bin" ./cmd/a4load

"$serve_bin" -addr "127.0.0.1:$port" -workers "$workers" -pprof \
	> "$outdir/daemon.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
	curl -sf "$base/healthz" >/dev/null 2>&1 && break
	sleep 0.2
done
curl -sf "$base/healthz" >/dev/null || {
	echo "profile_serve.sh: daemon did not come up (see $outdir/daemon.log)" >&2
	exit 1
}

# Fixed-rate pass with the CPU profile recording over the same window: the
# profile covers steady-state serving, not ramp-up. The curl runs in the
# background so load and capture overlap.
cpu_secs=$(awk "BEGIN { d = \"$duration\"; sub(/s\$/, \"\", d); print int(d + 2) }")
curl -s "$base/debug/pprof/profile?seconds=$cpu_secs" -o "$outdir/cpu.pprof" &
cpu_curl=$!
"$load_bin" -url "$base" -rate "$rate" -duration "$duration" -arrival poisson \
	-seed 1 -json "$outdir/load_fixed.json" | tee "$outdir/load_fixed.log"
wait "$cpu_curl"

# Contention evidence accumulated across the run so far.
curl -s "$base/debug/pprof/mutex" -o "$outdir/mutex.pprof"
curl -s "$base/debug/pprof/block" -o "$outdir/block.pprof"

# Saturation search against the now-warm daemon: where the knee is today.
"$load_bin" -url "$base" -search -slo-p99-ms "${PROFILE_SLO_P99_MS:-100}" \
	-seed 1 -min-rate 8 -max-rate 1024 -probe 3s -tol 0.25 \
	-json "$outdir/search.json" | tee "$outdir/search.log"

# Post-search contention snapshot (includes the saturation probes).
curl -s "$base/debug/pprof/mutex" -o "$outdir/mutex_after_search.pprof"
curl -s "$base/debug/pprof/block" -o "$outdir/block_after_search.pprof"

kill "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "profile_serve.sh: wrote $outdir/{cpu,mutex,block}.pprof and load reports"
echo "  inspect with: go tool pprof -top $outdir/cpu.pprof"
