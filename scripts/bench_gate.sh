#!/usr/bin/env bash
# bench_gate.sh — CI perf-regression gate. Compares the fresh CI benchmark
# record (bench-ci.json, produced by scripts/bench.sh in the test job)
# against the newest committed BENCH_*.json baseline and fails the job when
#
#   * scenario_second_ms (BenchmarkScenarioSecond ns/op) regresses by more
#     than BENCH_GATE_FACTOR (default 1.25, i.e. >25% slower), or
#   * sweep_fork_speedup (the warm-snapshot fork win) drops below
#     BENCH_GATE_MIN_FORK (default 1.5×), or
#   * sampled_speedup (detailed/sampled wall clock of one measured second,
#     BenchmarkScenarioSecondSampled) drops below BENCH_GATE_MIN_SAMPLED
#     (default 1.8×).
#
# Other keys in the record (service_cached_rps, loadgen_p50_ms,
# loadgen_p99_ms, cluster_sweep_rps, series_overhead_pct, obs_overhead_pct,
# BenchmarkScenarioSecondSeries/*, BenchmarkScenarioSecondObs/*) are
# informational: the gate reads only the three metrics above and tolerates
# any additions. sampled_error_pct in particular is informational — it is
# the worst pinned-aggregate error of sampled vs detailed execution, and the
# 5% accuracy bound is enforced per metric by the scenario package's
# TestSampledMatchesDetailedWithinBounds, not here. Note the scenario_second_ms gate runs with the observability
# plane's span/histogram instrumentation compiled in, so a regression there
# also catches obs hot-path cost creep.
#
# Noise tolerance: a first-shot miss does not fail the gate outright — the
# offending benchmark is re-measured up to two more times and the best of
# the (up to) three observations is judged, so a single noisy CI sample
# doesn't block a PR. A commit whose message contains [skip-bench-gate]
# skips the gate entirely (for known, justified regressions — say so in the
# commit body).
#
# Usage: scripts/bench_gate.sh [candidate.json]
set -euo pipefail

cd "$(dirname "$0")/.."

cand="${1:-bench-ci.json}"
factor="${BENCH_GATE_FACTOR:-1.25}"
min_fork="${BENCH_GATE_MIN_FORK:-1.5}"
min_sampled="${BENCH_GATE_MIN_SAMPLED:-1.8}"

# On pull_request CI checks out a synthetic merge commit, so also look at
# its second parent (the PR head) for the marker.
for ref in HEAD HEAD^2; do
	if git log -1 --format=%B "$ref" 2>/dev/null | grep -qF '[skip-bench-gate]'; then
		echo "bench_gate: [skip-bench-gate] in $ref commit message; skipping"
		exit 0
	fi
done

if ! command -v jq >/dev/null; then
	echo "bench_gate: jq is required" >&2
	exit 1
fi

if [ ! -f "$cand" ]; then
	echo "bench_gate: candidate $cand not found (run scripts/bench.sh first)" >&2
	exit 1
fi

base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -z "$base" ]; then
	echo "bench_gate: no committed BENCH_*.json baseline; nothing to gate"
	exit 0
fi
echo "bench_gate: baseline $base, candidate $cand (factor=$factor, min fork=$min_fork, min sampled=$min_sampled)"

base_ms=$(jq -r '.benchmarks.BenchmarkScenarioSecond."ns/op" / 1e6' "$base")
cand_ms=$(jq -r '.benchmarks.BenchmarkScenarioSecond."ns/op" / 1e6' "$cand")
cand_fork=$(jq -r '.sweep_fork_speedup' "$cand")
cand_sampled=$(jq -r '.sampled_speedup' "$cand")
if [ "$base_ms" = "null" ] || [ "$cand_ms" = "null" ] || [ "$cand_fork" = "null" ] || [ "$cand_sampled" = "null" ]; then
	echo "bench_gate: metrics missing (base_ms=$base_ms cand_ms=$cand_ms fork=$cand_fork sampled=$cand_sampled)" >&2
	exit 1
fi

# best_of_3 <current> <awk-program> — re-measure up to twice with the given
# go-test benchmark and awk extractor, echoing the minimum-cost / best value.
rerun_scenario_ms() {
	go test -run '^$' -bench '^BenchmarkScenarioSecond$' -benchtime 1x . 2>/dev/null |
		awk '/^BenchmarkScenarioSecond/ {printf "%.3f", $3 / 1e6; exit}'
}
rerun_fork_speedup() {
	go test -run '^$' -bench '^BenchmarkSweepFork' -benchtime 1x . 2>/dev/null | awk '
		/^BenchmarkSweepFork\/fresh/  {fresh = $3}
		/^BenchmarkSweepFork\/forked/ {forked = $3}
		END { if (fresh > 0 && forked > 0) printf "%.2f", fresh / forked; else printf "0" }'
}
rerun_sampled_speedup() {
	go test -run '^$' -bench '^BenchmarkScenarioSecondSampled$' -benchtime 4x . 2>/dev/null | awk '
		/^BenchmarkScenarioSecondSampled\/detailed/ {det = $3}
		/^BenchmarkScenarioSecondSampled\/sampled/  {smp = $3}
		END { if (det > 0 && smp > 0) printf "%.2f", det / smp; else printf "0" }'
}

lt() { awk -v a="$1" -v b="$2" 'BEGIN {exit !(a < b)}'; }

scenario_ok() { lt "$1" "$(awk -v b="$base_ms" -v f="$factor" 'BEGIN {printf "%.3f", b * f}')"; }

best_ms="$cand_ms"
if ! scenario_ok "$best_ms"; then
	echo "bench_gate: scenario_second_ms $cand_ms vs baseline $base_ms exceeds ${factor}x; re-measuring (best of 3)"
	for _ in 1 2; do
		ms=$(rerun_scenario_ms)
		echo "bench_gate: re-measured scenario_second_ms=$ms"
		if [ -n "$ms" ] && lt "$ms" "$best_ms"; then best_ms="$ms"; fi
		if scenario_ok "$best_ms"; then break; fi
	done
fi

best_fork="$cand_fork"
if lt "$best_fork" "$min_fork"; then
	echo "bench_gate: sweep_fork_speedup $cand_fork below ${min_fork}x; re-measuring (best of 3)"
	for _ in 1 2; do
		fk=$(rerun_fork_speedup)
		echo "bench_gate: re-measured sweep_fork_speedup=$fk"
		if [ -n "$fk" ] && lt "$best_fork" "$fk"; then best_fork="$fk"; fi
		if ! lt "$best_fork" "$min_fork"; then break; fi
	done
fi

best_sampled="$cand_sampled"
if lt "$best_sampled" "$min_sampled"; then
	echo "bench_gate: sampled_speedup $cand_sampled below ${min_sampled}x; re-measuring (best of 3)"
	for _ in 1 2; do
		sm=$(rerun_sampled_speedup)
		echo "bench_gate: re-measured sampled_speedup=$sm"
		if [ -n "$sm" ] && lt "$best_sampled" "$sm"; then best_sampled="$sm"; fi
		if ! lt "$best_sampled" "$min_sampled"; then break; fi
	done
fi

fail=0
if ! scenario_ok "$best_ms"; then
	echo "bench_gate: FAIL scenario_second_ms best-of-3 $best_ms regresses >${factor}x over baseline $base_ms ($base)" >&2
	fail=1
else
	echo "bench_gate: ok scenario_second_ms $best_ms (baseline $base_ms, limit ${factor}x)"
fi
if lt "$best_fork" "$min_fork"; then
	echo "bench_gate: FAIL sweep_fork_speedup best-of-3 $best_fork below ${min_fork}x" >&2
	fail=1
else
	echo "bench_gate: ok sweep_fork_speedup $best_fork (floor ${min_fork}x)"
fi
if lt "$best_sampled" "$min_sampled"; then
	echo "bench_gate: FAIL sampled_speedup best-of-3 $best_sampled below ${min_sampled}x" >&2
	fail=1
else
	echo "bench_gate: ok sampled_speedup $best_sampled (floor ${min_sampled}x)"
fi
if [ "$fail" -ne 0 ]; then
	echo "bench_gate: perf regression — fix it, or commit with [skip-bench-gate] and a justification" >&2
fi
exit "$fail"
