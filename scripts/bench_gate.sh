#!/usr/bin/env bash
# bench_gate.sh — CI perf-regression gate. Compares the fresh CI benchmark
# record (bench-ci.json, produced by scripts/bench.sh in the test job)
# against the newest committed BENCH_*.json baseline and fails the job when
#
#   * scenario_second_ms (BenchmarkScenarioSecond ns/op) regresses by more
#     than BENCH_GATE_FACTOR (default 1.25, i.e. >25% slower), or
#   * sweep_fork_speedup (the warm-snapshot fork win) drops below
#     BENCH_GATE_MIN_FORK (default 1.5×), or
#   * sampled_speedup (detailed/sampled wall clock of one measured second,
#     BenchmarkScenarioSecondSampled) drops below BENCH_GATE_MIN_SAMPLED
#     (default 1.8×), or
#   * loadgen_sustained_rps (the a4load saturation search's max sustainable
#     arrival rate under the p99 SLO) drops below BENCH_GATE_MIN_LOADGEN_FRAC
#     (default 0.75) of the committed baseline's figure. Skipped when the
#     baseline predates the metric or recorded 0 (e.g. a sandboxed run).
#
# Other keys in the record (service_cached_rps, loadgen_p50_ms,
# loadgen_p99_ms, loadgen_p99_ms_at_slo, cluster_sweep_rps,
# series_overhead_pct, obs_overhead_pct,
# BenchmarkScenarioSecondSeries/*, BenchmarkScenarioSecondObs/*) are
# informational: the gate reads only the three metrics above and tolerates
# any additions. sampled_error_pct in particular is informational — it is
# the worst pinned-aggregate error of sampled vs detailed execution, and the
# 5% accuracy bound is enforced per metric by the scenario package's
# TestSampledMatchesDetailedWithinBounds, not here. Note the scenario_second_ms gate runs with the observability
# plane's span/histogram instrumentation compiled in, so a regression there
# also catches obs hot-path cost creep.
#
# Noise tolerance: a first-shot miss does not fail the gate outright — the
# offending benchmark is re-measured up to two more times and the best of
# the (up to) three observations is judged, so a single noisy CI sample
# doesn't block a PR. A commit whose message contains [skip-bench-gate]
# skips the gate entirely (for known, justified regressions — say so in the
# commit body).
#
# Usage: scripts/bench_gate.sh [candidate.json]
set -euo pipefail

cd "$(dirname "$0")/.."

cand="${1:-bench-ci.json}"
factor="${BENCH_GATE_FACTOR:-1.25}"
min_fork="${BENCH_GATE_MIN_FORK:-1.5}"
min_sampled="${BENCH_GATE_MIN_SAMPLED:-1.8}"
min_loadgen_frac="${BENCH_GATE_MIN_LOADGEN_FRAC:-0.75}"

# On pull_request CI checks out a synthetic merge commit, so also look at
# its second parent (the PR head) for the marker.
for ref in HEAD HEAD^2; do
	if git log -1 --format=%B "$ref" 2>/dev/null | grep -qF '[skip-bench-gate]'; then
		echo "bench_gate: [skip-bench-gate] in $ref commit message; skipping"
		exit 0
	fi
done

if ! command -v jq >/dev/null; then
	echo "bench_gate: jq is required" >&2
	exit 1
fi

if [ ! -f "$cand" ]; then
	echo "bench_gate: candidate $cand not found (run scripts/bench.sh first)" >&2
	exit 1
fi

base=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -z "$base" ]; then
	echo "bench_gate: no committed BENCH_*.json baseline; nothing to gate"
	exit 0
fi
echo "bench_gate: baseline $base, candidate $cand (factor=$factor, min fork=$min_fork, min sampled=$min_sampled)"

base_ms=$(jq -r '.benchmarks.BenchmarkScenarioSecond."ns/op" / 1e6' "$base")
cand_ms=$(jq -r '.benchmarks.BenchmarkScenarioSecond."ns/op" / 1e6' "$cand")
cand_fork=$(jq -r '.sweep_fork_speedup' "$cand")
cand_sampled=$(jq -r '.sampled_speedup' "$cand")
base_sustained=$(jq -r '.loadgen_sustained_rps // 0' "$base")
cand_sustained=$(jq -r '.loadgen_sustained_rps // 0' "$cand")
if [ "$base_ms" = "null" ] || [ "$cand_ms" = "null" ] || [ "$cand_fork" = "null" ] || [ "$cand_sampled" = "null" ]; then
	echo "bench_gate: metrics missing (base_ms=$base_ms cand_ms=$cand_ms fork=$cand_fork sampled=$cand_sampled)" >&2
	exit 1
fi

# best_of_3 <current> <awk-program> — re-measure up to twice with the given
# go-test benchmark and awk extractor, echoing the minimum-cost / best value.
rerun_scenario_ms() {
	go test -run '^$' -bench '^BenchmarkScenarioSecond$' -benchtime 1x . 2>/dev/null |
		awk '/^BenchmarkScenarioSecond/ {printf "%.3f", $3 / 1e6; exit}'
}
rerun_fork_speedup() {
	go test -run '^$' -bench '^BenchmarkSweepFork' -benchtime 1x . 2>/dev/null | awk '
		/^BenchmarkSweepFork\/fresh/  {fresh = $3}
		/^BenchmarkSweepFork\/forked/ {forked = $3}
		END { if (fresh > 0 && forked > 0) printf "%.2f", fresh / forked; else printf "0" }'
}
rerun_sampled_speedup() {
	go test -run '^$' -bench '^BenchmarkScenarioSecondSampled$' -benchtime 4x . 2>/dev/null | awk '
		/^BenchmarkScenarioSecondSampled\/detailed/ {det = $3}
		/^BenchmarkScenarioSecondSampled\/sampled/  {smp = $3}
		END { if (det > 0 && smp > 0) printf "%.2f", det / smp; else printf "0" }'
}
# Re-measures the saturation search against a throwaway daemon on an
# offset port (the bench.sh one is long gone by gate time).
rerun_sustained() {
	local port=$(( ${A4SERVE_PORT:-8046} + 9 ))
	local sbin lbin pid out rps
	sbin=$(mktemp -t a4serve.XXXXXX) || return
	lbin=$(mktemp -t a4load.XXXXXX) || { rm -f "$sbin"; return; }
	if go build -o "$sbin" ./cmd/a4serve 2>/dev/null &&
		go build -o "$lbin" ./cmd/a4load 2>/dev/null; then
		"$sbin" -addr "127.0.0.1:$port" -workers 4 >/dev/null 2>&1 &
		pid=$!
		for _ in $(seq 1 50); do
			curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && break
			sleep 0.2
		done
		out=$("$lbin" -url "http://127.0.0.1:$port" -search \
			-slo-p99-ms "${LOADGEN_SLO_P99_MS:-100}" -seed 1 \
			-min-rate "${LOADGEN_MIN_RATE:-8}" -max-rate "${LOADGEN_MAX_RATE:-1024}" \
			-probe "${LOADGEN_PROBE:-3s}" -tol "${LOADGEN_TOL:-0.25}" 2>/dev/null) || out=""
		rps=$(echo "$out" | awk -F= '/^loadgen_sustained_rps=/ {print $2}')
		kill "$pid" 2>/dev/null || true
	fi
	rm -f "$sbin" "$lbin"
	printf '%s' "${rps:-0}"
}

lt() { awk -v a="$1" -v b="$2" 'BEGIN {exit !(a < b)}'; }

scenario_ok() { lt "$1" "$(awk -v b="$base_ms" -v f="$factor" 'BEGIN {printf "%.3f", b * f}')"; }

best_ms="$cand_ms"
if ! scenario_ok "$best_ms"; then
	echo "bench_gate: scenario_second_ms $cand_ms vs baseline $base_ms exceeds ${factor}x; re-measuring (best of 3)"
	for _ in 1 2; do
		ms=$(rerun_scenario_ms)
		echo "bench_gate: re-measured scenario_second_ms=$ms"
		if [ -n "$ms" ] && lt "$ms" "$best_ms"; then best_ms="$ms"; fi
		if scenario_ok "$best_ms"; then break; fi
	done
fi

best_fork="$cand_fork"
if lt "$best_fork" "$min_fork"; then
	echo "bench_gate: sweep_fork_speedup $cand_fork below ${min_fork}x; re-measuring (best of 3)"
	for _ in 1 2; do
		fk=$(rerun_fork_speedup)
		echo "bench_gate: re-measured sweep_fork_speedup=$fk"
		if [ -n "$fk" ] && lt "$best_fork" "$fk"; then best_fork="$fk"; fi
		if ! lt "$best_fork" "$min_fork"; then break; fi
	done
fi

best_sampled="$cand_sampled"
if lt "$best_sampled" "$min_sampled"; then
	echo "bench_gate: sampled_speedup $cand_sampled below ${min_sampled}x; re-measuring (best of 3)"
	for _ in 1 2; do
		sm=$(rerun_sampled_speedup)
		echo "bench_gate: re-measured sampled_speedup=$sm"
		if [ -n "$sm" ] && lt "$best_sampled" "$sm"; then best_sampled="$sm"; fi
		if ! lt "$best_sampled" "$min_sampled"; then break; fi
	done
fi

# Serving-throughput gate: only meaningful when the committed baseline
# carries a nonzero figure to compare against.
sustained_floor=0
best_sustained="$cand_sustained"
if [ "$base_sustained" != "0" ] && [ "$base_sustained" != "null" ] && lt 0 "$base_sustained"; then
	sustained_floor=$(awk -v b="$base_sustained" -v f="$min_loadgen_frac" 'BEGIN {printf "%.2f", b * f}')
	if lt "$best_sustained" "$sustained_floor"; then
		echo "bench_gate: loadgen_sustained_rps $cand_sustained below ${min_loadgen_frac}x baseline $base_sustained; re-measuring (best of 3)"
		for _ in 1 2; do
			su=$(rerun_sustained)
			echo "bench_gate: re-measured loadgen_sustained_rps=$su"
			if [ -n "$su" ] && lt "$best_sustained" "$su"; then best_sustained="$su"; fi
			if ! lt "$best_sustained" "$sustained_floor"; then break; fi
		done
	fi
fi

fail=0
if ! scenario_ok "$best_ms"; then
	echo "bench_gate: FAIL scenario_second_ms best-of-3 $best_ms regresses >${factor}x over baseline $base_ms ($base)" >&2
	fail=1
else
	echo "bench_gate: ok scenario_second_ms $best_ms (baseline $base_ms, limit ${factor}x)"
fi
if lt "$best_fork" "$min_fork"; then
	echo "bench_gate: FAIL sweep_fork_speedup best-of-3 $best_fork below ${min_fork}x" >&2
	fail=1
else
	echo "bench_gate: ok sweep_fork_speedup $best_fork (floor ${min_fork}x)"
fi
if lt "$best_sampled" "$min_sampled"; then
	echo "bench_gate: FAIL sampled_speedup best-of-3 $best_sampled below ${min_sampled}x" >&2
	fail=1
else
	echo "bench_gate: ok sampled_speedup $best_sampled (floor ${min_sampled}x)"
fi
if [ "$sustained_floor" != "0" ]; then
	if lt "$best_sustained" "$sustained_floor"; then
		echo "bench_gate: FAIL loadgen_sustained_rps best-of-3 $best_sustained below floor $sustained_floor (${min_loadgen_frac}x baseline $base_sustained)" >&2
		fail=1
	else
		echo "bench_gate: ok loadgen_sustained_rps $best_sustained (floor $sustained_floor)"
	fi
else
	echo "bench_gate: loadgen_sustained_rps not gated (baseline has no figure)"
fi
if [ "$fail" -ne 0 ]; then
	echo "bench_gate: perf regression — fix it, or commit with [skip-bench-gate] and a justification" >&2
fi
exit "$fail"
