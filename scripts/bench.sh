#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the results as
# BENCH_<date>.json (op nanoseconds plus the headline figure metrics each
# benchmark reports via b.ReportMetric), so successive PRs leave a perf
# trajectory in the repo history. Also measures scenario-serving
# throughput: an a4serve daemon is started locally and hammered with the
# built-in load generator, and the resulting service_cached_rps (cache-served
# requests per second of wall time) lands in the same JSON.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh   # more iterations for stabler numbers
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-1x}"

# The serving and cluster stanzas run FIRST, before the compute
# benchmarks: the saturation search and the closed-loop pass measure
# latency against a p99 SLO, and on this 1-vCPU host several minutes of
# pinned compute measurably depresses the serving numbers that follow it
# (same build, same commands: sustained 96 rps when measured on a quiet
# machine vs 0 immediately after the compute phase). Throughput-style
# compute benchmarks are far less sensitive to ordering, so they take the
# post-load slot.
# Serving throughput: start a throwaway daemon, loadgen against it, parse
# the service_cached_rps line (plus the client-side latency percentiles the
# loadgen's merged HDR histogram reports). Guarded so a sandboxed
# environment without loopback listening still records the compute
# benchmarks.
serve_rps=0
loadgen_p50=0
loadgen_p99=0
loadgen_sustained=0
loadgen_p99_slo=0
serve_pid=""
cluster_pids=""
serve_port="${A4SERVE_PORT:-8046}"
serve_bin=$(mktemp -t a4serve.XXXXXX)
load_bin=$(mktemp -t a4load.XXXXXX)
trap 'for p in $serve_pid $cluster_pids; do kill "$p" 2>/dev/null || true; done; rm -f "$serve_bin" "$load_bin"' EXIT
if curl -sf "http://127.0.0.1:$serve_port/healthz" >/dev/null 2>&1; then
	# A stale daemon owns the port; measuring against it would record an
	# old build's (warm-cache) throughput. Record 0 instead.
	echo "bench.sh: port $serve_port already serving; recording service_cached_rps=0" >&2
elif go build -o "$serve_bin" ./cmd/a4serve; then
	"$serve_bin" -addr "127.0.0.1:$serve_port" -workers 4 >/dev/null 2>&1 &
	serve_pid=$!
	for _ in $(seq 1 50); do
		if curl -sf "http://127.0.0.1:$serve_port/healthz" >/dev/null 2>&1; then
			break
		fi
		sleep 0.2
	done
	# A nonzero loadgen exit means some requests failed; record 0 rather
	# than an rps figure measured under failure conditions.
	if loadgen_out=$("$serve_bin" -loadgen -url "http://127.0.0.1:$serve_port" \
		-n "${LOADGEN_N:-120}" -clients "${LOADGEN_CLIENTS:-8}" -fresh 0.25); then
		echo "$loadgen_out"
		serve_rps=$(echo "$loadgen_out" | awk -F= '/^service_cached_rps=/ {print $2}')
		serve_rps="${serve_rps:-0}"
		loadgen_p50=$(echo "$loadgen_out" | awk -F= '/^loadgen_p50_ms=/ {print $2}')
		loadgen_p50="${loadgen_p50:-0}"
		loadgen_p99=$(echo "$loadgen_out" | awk -F= '/^loadgen_p99_ms=/ {print $2}')
		loadgen_p99="${loadgen_p99:-0}"
	else
		echo "bench.sh: loadgen failed; recording service_cached_rps=0" >&2
	fi
	# Saturation search (open-loop a4load): the highest arrival rate the
	# daemon sustains under a p99 SLO, plus the p99 measured at that rate.
	# Runs against the same daemon the closed-loop pass just warmed.
	if go build -o "$load_bin" ./cmd/a4load && search_out=$("$load_bin" \
		-url "http://127.0.0.1:$serve_port" -search \
		-slo-p99-ms "${LOADGEN_SLO_P99_MS:-100}" -seed 1 \
		-min-rate "${LOADGEN_MIN_RATE:-8}" -max-rate "${LOADGEN_MAX_RATE:-1024}" \
		-probe "${LOADGEN_PROBE:-3s}" -tol "${LOADGEN_TOL:-0.25}"); then
		echo "$search_out"
		loadgen_sustained=$(echo "$search_out" | awk -F= '/^loadgen_sustained_rps=/ {print $2}')
		loadgen_sustained="${loadgen_sustained:-0}"
		loadgen_p99_slo=$(echo "$search_out" | awk -F= '/^loadgen_p99_ms_at_slo=/ {print $2}')
		loadgen_p99_slo="${loadgen_p99_slo:-0}"
	else
		echo "bench.sh: saturation search failed; recording loadgen_sustained_rps=0" >&2
	fi
	kill "$serve_pid" 2>/dev/null || true
	serve_pid=""
fi

# Multi-backend sweep throughput: two backend daemons behind one -cluster
# coordinator, driven with the built-in sweep generator (distinct-seed grid
# points spread across the fleet by prefix-hash routing). Records grid
# points per second of wall time as cluster_sweep_rps.
cluster_rps=0
b1_port=$((serve_port + 1))
b2_port=$((serve_port + 2))
co_port=$((serve_port + 3))
# All three ports must be free: a stale daemon on a backend port would make
# the coordinator measure a mixed old/new fleet.
ports_free=1
for p in "$b1_port" "$b2_port" "$co_port"; do
	if curl -sf "http://127.0.0.1:$p/healthz" >/dev/null 2>&1; then
		echo "bench.sh: port $p already serving; recording cluster_sweep_rps=0" >&2
		ports_free=0
	fi
done
if [ -x "$serve_bin" ] && [ "$ports_free" = 1 ]; then
	"$serve_bin" -addr "127.0.0.1:$b1_port" -workers 2 >/dev/null 2>&1 &
	cluster_pids="$cluster_pids $!"
	"$serve_bin" -addr "127.0.0.1:$b2_port" -workers 2 >/dev/null 2>&1 &
	cluster_pids="$cluster_pids $!"
	"$serve_bin" -addr "127.0.0.1:$co_port" \
		-cluster "http://127.0.0.1:$b1_port,http://127.0.0.1:$b2_port" >/dev/null 2>&1 &
	cluster_pids="$cluster_pids $!"
	up=0
	for _ in $(seq 1 50); do
		if curl -sf "http://127.0.0.1:$b1_port/healthz" >/dev/null 2>&1 &&
			curl -sf "http://127.0.0.1:$b2_port/healthz" >/dev/null 2>&1 &&
			curl -sf "http://127.0.0.1:$co_port/healthz" >/dev/null 2>&1; then
			up=1
			break
		fi
		sleep 0.2
	done
	if [ "$up" = 1 ] && sweep_out=$("$serve_bin" -loadgen -url "http://127.0.0.1:$co_port" \
		-sweepn "${SWEEPGEN_N:-12}"); then
		echo "$sweep_out"
		cluster_rps=$(echo "$sweep_out" | awk -F= '/^cluster_sweep_rps=/ {print $2}')
		cluster_rps="${cluster_rps:-0}"
	else
		echo "bench.sh: cluster sweep failed; recording cluster_sweep_rps=0" >&2
	fi
	for p in $cluster_pids; do kill "$p" 2>/dev/null || true; done
	cluster_pids=""
fi


raw=$(go test -run '^$' -bench . -benchtime "$benchtime" .)
echo "$raw"

# Warm-state reuse: the ratio of the non-forking to the forking sweep
# runner on the same warm-up-dominated sweep (BenchmarkSweepFork), i.e. the
# wall-clock reduction the snapshot/fork contract buys.
fork_speedup=$(echo "$raw" | awk '
	/^BenchmarkSweepFork\/fresh/  {fresh = $3}
	/^BenchmarkSweepFork\/forked/ {forked = $3}
	END { if (fresh > 0 && forked > 0) printf "%.2f", fresh / forked; else printf "0" }')
echo "sweep_fork_speedup=$fork_speedup"

# measure_overhead <bench_regex> <benchtime>: run one paired off/on
# benchmark three times back to back and print each side's best (minimum)
# ns/op as "off on". A single pass used to race the two sides against VM
# drift and could report a *negative* overhead (the "on" pass got the
# quieter slice of the machine); interleaving three full pairs and taking
# per-side minima measures each side at its least-disturbed and makes the
# difference meaningful.
measure_overhead() {
	local bench="$1" benchtime="$2" pass all=""
	for _ in 1 2 3; do
		pass=$(go test -run '^$' -bench "$bench" -benchtime "$benchtime" .)
		echo "$pass" | grep '^Benchmark' >&2 || true
		all="$all$pass"$'\n'
	done
	echo "$all" | awk '
		/\/off/ { v = $3; if (off == 0 || v < off) off = v }
		/\/on/  { v = $3; if (on == 0 || v < on) on = v }
		END { printf "%s %s", off + 0, on + 0 }'
}

# clamp_overhead <pct>: overheads below zero are measurement noise by
# definition (turning telemetry on cannot speed the loop up); clamp to 0
# and print the annotation recorded next to the clamped value.
clamp_overhead() {
	if awk "BEGIN{exit !($1 < 0)}"; then
		echo "raw $1% is negative (measurement noise); clamped to 0"
	fi
}

# Telemetry-plane cost: the relative ns/op difference between a measured
# second with every extended series group on and the default (core-only)
# measurement path. Best-of-3 paired passes; sub-3% expected.
# Informational; bench_gate.sh does not gate on it.
read -r series_off series_on <<<"$(measure_overhead '^BenchmarkScenarioSecondSeries$' "${SERIES_BENCHTIME:-2x}")"
series_overhead=$(awk "BEGIN { if ($series_off > 0 && $series_on > 0) printf \"%.2f\", ($series_on - $series_off) * 100 / $series_off; else printf \"0\" }")
series_note=$(clamp_overhead "$series_overhead")
[ -n "$series_note" ] && series_overhead=0
echo "series_overhead_pct=$series_overhead${series_note:+ ($series_note)}"

# Observability-plane cost: the relative ns/op difference between a measured
# second with spans, latency histograms, and live series streaming enabled
# and the same loop without them (BenchmarkScenarioSecondObs). Same
# treatment and expectation as the series plane; informational, not gated.
read -r obs_off obs_on <<<"$(measure_overhead '^BenchmarkScenarioSecondObs$' "${OBS_BENCHTIME:-2x}")"
obs_overhead=$(awk "BEGIN { if ($obs_off > 0 && $obs_on > 0) printf \"%.2f\", ($obs_on - $obs_off) * 100 / $obs_off; else printf \"0\" }")
obs_note=$(clamp_overhead "$obs_overhead")
[ -n "$obs_note" ] && obs_overhead=0
echo "obs_overhead_pct=$obs_overhead${obs_note:+ ($obs_note)}"

# Sampled-execution win: detailed over sampled ns/op for the same measured
# second (BenchmarkScenarioSecondSampled, default 200 ms detail per 1 s
# period — ideal 5x). bench_gate.sh fails the build below 1.8x.
sampled_raw=$(go test -run '^$' -bench '^BenchmarkScenarioSecondSampled$' \
	-benchtime "${SAMPLED_BENCHTIME:-4x}" .)
echo "$sampled_raw" | grep '^BenchmarkScenarioSecondSampled' || true
sampled_speedup=$(echo "$sampled_raw" | awk '
	/^BenchmarkScenarioSecondSampled\/detailed/ {det = $3}
	/^BenchmarkScenarioSecondSampled\/sampled/  {smp = $3}
	END { if (det > 0 && smp > 0) printf "%.2f", det / smp; else printf "0" }')
echo "sampled_speedup=$sampled_speedup"

# Sampled-mode accuracy: the worst pinned-aggregate relative error between
# detailed and sampled measurement windows forked from one warm snapshot
# (TestSampledMatchesDetailedWithinBounds logs one "err N%" per metric).
# Informational — the test itself enforces the per-metric 5% bounds, so the
# gate does not read this key; it is recorded for the perf trajectory.
sampled_error=$(go test -run '^TestSampledMatchesDetailedWithinBounds$' -v ./internal/scenario 2>/dev/null | awk '
	/ err / {
		for (i = 2; i <= NF; i++) if ($(i-1) == "err" && $i ~ /%$/) {
			v = $i; sub(/%/, "", v)
			if (v + 0 > max) max = v + 0
		}
	}
	END { printf "%.2f", max }')
echo "sampled_error_pct=$sampled_error"

# Convert `BenchmarkName  N  1234 ns/op  5.6 metric ...` lines to JSON.
{
	echo '{'
	echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
	echo "  \"benchtime\": \"$benchtime\","
	echo "  \"go\": \"$(go version | awk '{print $3}')\","
	echo "  \"service_cached_rps\": ${serve_rps},"
	echo "  \"loadgen_p50_ms\": ${loadgen_p50},"
	echo "  \"loadgen_p99_ms\": ${loadgen_p99},"
	echo "  \"loadgen_sustained_rps\": ${loadgen_sustained},"
	echo "  \"loadgen_p99_ms_at_slo\": ${loadgen_p99_slo},"
	echo "  \"cluster_sweep_rps\": ${cluster_rps},"
	echo "  \"sweep_fork_speedup\": ${fork_speedup},"
	echo "  \"series_overhead_pct\": ${series_overhead},"
	echo "  \"series_overhead_note\": \"${series_note}\","
	echo "  \"obs_overhead_pct\": ${obs_overhead},"
	echo "  \"obs_overhead_note\": \"${obs_note}\","
	echo "  \"sampled_speedup\": ${sampled_speedup},"
	echo "  \"sampled_error_pct\": ${sampled_error},"
	echo '  "benchmarks": {'
	echo "$raw" | awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    \"%s\": {\"iters\": %s", sep, name, $2
			for (i = 3; i + 1 <= NF; i += 2) {
				metric = $(i + 1)
				gsub(/[^A-Za-z0-9_\/@.:-]/, "_", metric)
				printf ", \"%s\": %s", metric, $i
			}
			printf "}"
			sep = ",\n"
		}
		END { print "" }
	'
	echo '  }'
	echo '}'
} > "$out"

echo "wrote $out"
