#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the results as
# BENCH_<date>.json (op nanoseconds plus the headline figure metrics each
# benchmark reports via b.ReportMetric), so successive PRs leave a perf
# trajectory in the repo history.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh   # more iterations for stabler numbers
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-1x}"

raw=$(go test -run '^$' -bench . -benchtime "$benchtime" .)
echo "$raw"

# Convert `BenchmarkName  N  1234 ns/op  5.6 metric ...` lines to JSON.
{
	echo '{'
	echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
	echo "  \"benchtime\": \"$benchtime\","
	echo "  \"go\": \"$(go version | awk '{print $3}')\","
	echo '  "benchmarks": {'
	echo "$raw" | awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    \"%s\": {\"iters\": %s", sep, name, $2
			for (i = 3; i + 1 <= NF; i += 2) {
				metric = $(i + 1)
				gsub(/[^A-Za-z0-9_\/@.:-]/, "_", metric)
				printf ", \"%s\": %s", metric, $i
			}
			printf "}"
			sep = ",\n"
		}
		END { print "" }
	'
	echo '  }'
	echo '}'
} > "$out"

echo "wrote $out"
