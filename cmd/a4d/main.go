// Command a4d runs a co-location scenario under a chosen LLC manager and
// streams per-second metrics, like running the real A4 daemon next to a
// workload mix. Mixes are declarative scenario specs (internal/scenario):
// either a builtin name or a path to a spec JSON file.
//
// Usage:
//
//	a4d -mix micro -mgr a4-d -secs 30
//	a4d -mix hpw-heavy -mgr default -secs 20
//	a4d -mix my-scenario.json
//
// Managers: default, isolate, a4-a, a4-b, a4-c, a4-d.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"a4sim/internal/scenario"
	"a4sim/internal/sim"
	"a4sim/internal/trace"
)

// loadMix resolves a builtin mix name, falling back to reading the
// argument as a spec file path.
func loadMix(mix string) (*scenario.Spec, error) {
	sp, builtinErr := scenario.BuiltinMix(mix)
	if builtinErr == nil {
		return sp, nil
	}
	data, fileErr := os.ReadFile(mix)
	if fileErr != nil {
		// A file that exists but cannot be read (permissions, directory)
		// deserves its own diagnosis; only a plain name with no file behind
		// it reads as a builtin-mix typo.
		if strings.ContainsAny(mix, "./") || !errors.Is(fileErr, os.ErrNotExist) {
			return nil, fileErr
		}
		return nil, builtinErr
	}
	return scenario.Parse(data)
}

func main() {
	mix := flag.String("mix", "micro", "builtin mix ("+strings.Join(scenario.BuiltinMixes(), ", ")+") or spec file path")
	mgr := flag.String("mgr", "", "LLC manager override: "+strings.Join(scenario.ManagerNames(), ", "))
	secs := flag.Int("secs", 0, "simulated seconds to run (0 = spec windows)")
	showTrace := flag.Bool("trace", false, "dump the controller trace ring at exit")
	flag.Parse()

	sp, err := loadMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4d:", err)
		os.Exit(2)
	}
	if *mgr != "" {
		sp.Manager = *mgr
	}
	if *secs > 0 {
		// Matches the pre-spec behavior: measure the last 3 seconds, warm up
		// for the rest. Zero would mean "default window" to Normalize, so a
		// no-warmup run asks for a millisecond instead.
		sp.WarmupSec = float64(*secs) - 3
		if sp.WarmupSec <= 0 {
			sp.WarmupSec = 0.001
		}
		sp.MeasureSec = 3
	}
	// Start normalizes (and validates) the spec before building.
	s, err := sp.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4d:", err)
		os.Exit(2)
	}
	tlog := trace.NewLog(4096)
	if s.Controller != nil {
		s.Controller.SetTraceLog(tlog)
	}

	fmt.Printf("a4d: mix=%s manager=%s cores=%d llc=%d ways x %d sets\n",
		sp.Name, sp.Manager, s.P.Hierarchy.NumCores, s.P.Hierarchy.LLC.Ways, s.P.Hierarchy.LLC.Sets)

	// Stream one status line per simulated second.
	lastEvents := 0
	s.Engine.AddObserver(sim.FuncObserver(func(now sim.Tick) {
		fmt.Printf("t=%2.0fs memBW=%6.2fGB/s", now.Seconds(), s.Monitor.LastMemBW())
		for _, smp := range s.Monitor.Last() {
			fmt.Printf("  %s[hit=%.2f ipc=%.2f io=%.1f]", smp.Name, smp.LLCHitRate, smp.IPC, smp.IOReadGBps)
		}
		fmt.Println()
		if s.Controller != nil {
			for _, ev := range s.Controller.Events[lastEvents:] {
				fmt.Println("  a4:", ev)
			}
			lastEvents = len(s.Controller.Events)
		}
	}))
	res := s.Run(sp.WarmupSec, sp.MeasureSec)

	fmt.Println("\nfinal window:")
	for _, w := range s.Workloads {
		wr := res.W(w.Name())
		fmt.Printf("  %-10s hit=%.3f ipc=%.3f io=%.2fGB/s lat=%.1f/%.1fus prog=%.0f/s\n",
			wr.Name, wr.LLCHitRate, wr.IPC, wr.IOReadGBps, wr.AvgLatUs, wr.P99LatUs, wr.ProgressRate)
	}
	fmt.Printf("  system mem rd=%.2f wr=%.2f GB/s\n", res.MemReadGBps, res.MemWriteGBps)
	if *showTrace && tlog.Len() > 0 {
		fmt.Println("\ncontroller trace:")
		fmt.Print(tlog.String())
	}
}
