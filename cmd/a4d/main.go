// Command a4d runs a co-location scenario under a chosen LLC manager and
// streams per-second metrics, like running the real A4 daemon next to a
// workload mix.
//
// Usage:
//
//	a4d -mix micro -mgr a4-d -secs 30
//	a4d -mix hpw-heavy -mgr default -secs 20
//	a4d -mix lpw-heavy -mgr isolate
//
// Managers: default, isolate, a4-a, a4-b, a4-c, a4-d.
package main

import (
	"flag"
	"fmt"
	"os"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/sim"
	"a4sim/internal/trace"
	"a4sim/internal/workload"
)

func managerByName(name string) (harness.ManagerSpec, bool) {
	switch name {
	case "default":
		return harness.Default(), true
	case "isolate":
		return harness.Isolate(), true
	case "a4-a":
		return harness.A4(core.VariantA), true
	case "a4-b":
		return harness.A4(core.VariantB), true
	case "a4-c":
		return harness.A4(core.VariantC), true
	case "a4-d", "a4":
		return harness.A4(core.VariantD), true
	}
	return harness.ManagerSpec{}, false
}

func buildMix(s *harness.Scenario, mix string) error {
	switch mix {
	case "micro":
		s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
		s.AddXMem("xmem1", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
		s.AddXMem("xmem3", []int{12, 13}, 10<<20, workload.Random, false, workload.LPW)
	case "hpw-heavy":
		s.AddFastclick([]int{0, 1, 2, 3}, workload.HPW)
		s.AddRedisPair(4, 5, workload.HPW, workload.HPW)
		s.AddSPEC("x264", 6, workload.HPW)
		s.AddSPEC("parest", 7, workload.HPW)
		s.AddSPEC("xalancbmk", 8, workload.HPW)
		s.AddSPEC("lbm", 9, workload.HPW)
		s.AddFFSB("ffsb-h", true, []int{10, 11, 12}, workload.LPW)
		s.AddSPEC("omnetpp", 13, workload.LPW)
		s.AddSPEC("exchange2", 14, workload.LPW)
		s.AddSPEC("bwaves", 15, workload.LPW)
	case "lpw-heavy":
		s.AddFastclick([]int{0, 1, 2, 3}, workload.HPW)
		s.AddFFSB("ffsb-l", false, []int{4}, workload.HPW)
		s.AddSPEC("mcf", 5, workload.HPW)
		s.AddSPEC("blender", 6, workload.HPW)
		s.AddFFSB("ffsb-h", true, []int{7, 8, 9}, workload.LPW)
		s.AddRedisPair(10, 11, workload.LPW, workload.LPW)
		s.AddSPEC("x264", 12, workload.LPW)
		s.AddSPEC("parest", 13, workload.LPW)
		s.AddSPEC("fotonik3d", 14, workload.LPW)
		s.AddSPEC("lbm", 15, workload.LPW)
		s.AddSPEC("bwaves", 16, workload.LPW)
	default:
		return fmt.Errorf("unknown mix %q (micro, hpw-heavy, lpw-heavy)", mix)
	}
	return nil
}

func main() {
	mix := flag.String("mix", "micro", "workload mix: micro, hpw-heavy, lpw-heavy")
	mgr := flag.String("mgr", "a4-d", "LLC manager: default, isolate, a4-a..a4-d")
	secs := flag.Int("secs", 25, "simulated seconds to run")
	showTrace := flag.Bool("trace", false, "dump the controller trace ring at exit")
	flag.Parse()

	spec, ok := managerByName(*mgr)
	if !ok {
		fmt.Fprintf(os.Stderr, "a4d: unknown manager %q\n", *mgr)
		os.Exit(2)
	}
	s := harness.NewScenario(harness.DefaultParams())
	if err := buildMix(s, *mix); err != nil {
		fmt.Fprintln(os.Stderr, "a4d:", err)
		os.Exit(2)
	}
	s.Start(spec)
	tlog := trace.NewLog(4096)
	if s.Controller != nil {
		s.Controller.SetTraceLog(tlog)
	}

	fmt.Printf("a4d: mix=%s manager=%s cores=%d llc=%d ways x %d sets\n",
		*mix, spec.Name(), s.P.Hierarchy.NumCores, s.P.Hierarchy.LLC.Ways, s.P.Hierarchy.LLC.Sets)

	// Stream one status line per simulated second.
	lastEvents := 0
	s.Engine.AddObserver(sim.FuncObserver(func(now sim.Tick) {
		fmt.Printf("t=%2.0fs memBW=%6.2fGB/s", now.Seconds(), s.Monitor.LastMemBW())
		for _, smp := range s.Monitor.Last() {
			fmt.Printf("  %s[hit=%.2f ipc=%.2f io=%.1f]", smp.Name, smp.LLCHitRate, smp.IPC, smp.IOReadGBps)
		}
		fmt.Println()
		if s.Controller != nil {
			for _, ev := range s.Controller.Events[lastEvents:] {
				fmt.Println("  a4:", ev)
			}
			lastEvents = len(s.Controller.Events)
		}
	}))
	res := s.Run(float64(*secs)-3, 3)

	fmt.Println("\nfinal window:")
	for _, w := range s.Workloads {
		wr := res.W(w.Name())
		fmt.Printf("  %-10s hit=%.3f ipc=%.3f io=%.2fGB/s lat=%.1f/%.1fus prog=%.0f/s\n",
			wr.Name, wr.LLCHitRate, wr.IPC, wr.IOReadGBps, wr.AvgLatUs, wr.P99LatUs, wr.ProgressRate)
	}
	fmt.Printf("  system mem rd=%.2f wr=%.2f GB/s\n", res.MemReadGBps, res.MemWriteGBps)
	if *showTrace && tlog.Len() > 0 {
		fmt.Println("\ncontroller trace:")
		fmt.Print(tlog.String())
	}
}
