// Command a4load is the load harness for a4serve: an open-loop generator
// with pluggable arrival processes, a mixed request population drawn from
// the scenario registry, per-class latency histograms, and a saturation
// search that finds the highest arrival rate a deployment sustains under
// a p99 latency SLO.
//
// One-shot curve (offer a fixed rate, report the latency distribution):
//
//	a4load -url http://localhost:8044 -rate 200 -duration 10s -arrival poisson
//
// Saturation search (binary-search the knee under an SLO):
//
//	a4load -url http://localhost:8044 -search -slo-p99-ms 50
//
// Plan inspection (print the byte-reproducible request schedule, no
// server needed):
//
//	a4load -rate 50 -duration 5s -seed 7 -plan
//
// The generator is open loop: the schedule is computed up front from a
// seeded RNG and does not slow down when the server does. Runs whose
// scheduling lag exceeds -lag-bound-ms are flagged dishonest — the
// configured rate was not truly offered — and the saturation search
// treats them as unsustainable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"a4sim/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "http://localhost:8044", "target daemon or coordinator")
	rate := flag.Float64("rate", 50, "offered arrival rate in requests/second (one-shot mode)")
	duration := flag.Duration("duration", 10*time.Second, "measurement window (one-shot mode)")
	arrival := flag.String("arrival", loadgen.ArrivalConstant,
		fmt.Sprintf("arrival process: one of %v", loadgen.Arrivals))
	seed := flag.Uint64("seed", 1, "RNG seed: same seed, same request schedule, byte for byte")
	mixFlag := flag.String("mix", "", "request-class weights, e.g. 'cached-hit=0.6,fresh-run=0.4' (default: built-in mix)")
	inflight := flag.Int("inflight", loadgen.DefaultMaxInflight, "max outstanding requests (the open-loop honesty cap)")
	lagBound := flag.Float64("lag-bound-ms", loadgen.DefaultLagBoundMs, "p99 scheduling-lag bound for an honest run")
	timeout := flag.Duration("timeout", loadgen.DefaultTimeout, "per-request timeout")
	jsonPath := flag.String("json", "", "write the result as canonical JSON to this path ('-' for stdout)")
	planOnly := flag.Bool("plan", false, "print the precomputed request plan as JSON and exit (no requests sent)")
	search := flag.Bool("search", false, "saturation-search mode: find the max sustainable rate under -slo-p99-ms")
	sloP99 := flag.Float64("slo-p99-ms", 0, "search: p99 latency SLO in milliseconds (required with -search)")
	minRate := flag.Float64("min-rate", 4, "search: starting rate")
	maxRate := flag.Float64("max-rate", 4096, "search: rate ceiling")
	probeDur := flag.Duration("probe", 5*time.Second, "search: per-probe measurement window")
	tol := flag.Float64("tol", 0.1, "search: stop when the rate bracket is within this relative width")
	maxErr := flag.Float64("max-error-rate", 0.01, "search: per-probe error budget")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4load:", err)
		return 2
	}
	cfg := loadgen.Config{
		URL:         *url,
		Rate:        *rate,
		Duration:    *duration,
		Arrival:     *arrival,
		Seed:        *seed,
		Mix:         mix,
		MaxInflight: *inflight,
		LagBoundMs:  *lagBound,
		Timeout:     *timeout,
	}

	if *planOnly {
		plan, err := loadgen.BuildPlan(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "a4load:", err)
			return 2
		}
		data, err := plan.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "a4load:", err)
			return 2
		}
		os.Stdout.Write(data)
		fmt.Println()
		return 0
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *search {
		return runSearch(ctx, cfg, *sloP99, *minRate, *maxRate, *probeDur, *tol, *maxErr, *jsonPath)
	}
	return runOnce(ctx, cfg, *jsonPath)
}

func runOnce(ctx context.Context, cfg loadgen.Config, jsonPath string) int {
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4load:", err)
		return 1
	}
	fmt.Printf("a4load: offered %d sent %d in %.2fs (arrival=%s rate=%g)\n",
		res.Offered, res.Sent, res.ElapsedSec, res.Arrival, res.Rate)
	for _, class := range res.ClassNames() {
		for _, outcome := range outcomeOrder {
			h := res.Classes[class][outcome]
			if h == nil || h.Count() == 0 {
				continue
			}
			fmt.Printf("a4load: %-11s %-9s n=%-6d p50=%.3fms p99=%.3fms\n",
				class, outcome, h.Count(), h.Quantile(0.50)/1000, h.Quantile(0.99)/1000)
		}
	}
	fmt.Printf("a4load: lag p99=%.3fms bound=%gms honest=%v error_rate=%.4f\n",
		res.LagP99Ms(), res.LagBoundMs, res.Honest(), res.ErrorRate())
	fmt.Printf("loadgen_offered_rps=%.2f\n", res.Rate)
	fmt.Printf("loadgen_p99_ms=%.3f\n", res.P99Ms())
	if err := writeJSON(jsonPath, res.WriteJSON); err != nil {
		fmt.Fprintln(os.Stderr, "a4load:", err)
		return 1
	}
	if !res.Honest() {
		fmt.Fprintln(os.Stderr, "a4load: run was not honest: scheduling lag exceeded the bound (rate not truly offered)")
		return 1
	}
	return 0
}

func runSearch(ctx context.Context, cfg loadgen.Config, sloP99, minRate, maxRate float64,
	probeDur time.Duration, tol, maxErr float64, jsonPath string) int {
	if sloP99 <= 0 {
		fmt.Fprintln(os.Stderr, "a4load: -search requires -slo-p99-ms > 0")
		return 2
	}
	sr, err := loadgen.Search(ctx, loadgen.SearchConfig{
		Load:          cfg,
		SLOP99Ms:      sloP99,
		MinRate:       minRate,
		MaxRate:       maxRate,
		ProbeDuration: probeDur,
		Tolerance:     tol,
		MaxErrorRate:  maxErr,
	})
	if sr != nil {
		for _, p := range sr.Probes {
			verdict := "over"
			if p.Sustainable {
				verdict = "ok"
			}
			fmt.Printf("a4load: probe rate=%-8.2f p99=%.3fms lag_p99=%.3fms errors=%.4f %s\n",
				p.Rate, p.P99Ms, p.LagP99Ms, p.ErrorRate, verdict)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4load:", err)
		return 1
	}
	fmt.Printf("a4load: converged=%v probes=%d slo_p99_ms=%g\n", sr.Converged, len(sr.Probes), sr.SLOP99Ms)
	fmt.Printf("loadgen_sustained_rps=%.2f\n", sr.SustainedRPS)
	fmt.Printf("loadgen_p99_ms_at_slo=%.3f\n", sr.P99MsAtSLO)
	if err := writeJSON(jsonPath, func(w io.Writer) error {
		data, err := sr.Encode()
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	}); err != nil {
		fmt.Fprintln(os.Stderr, "a4load:", err)
		return 1
	}
	if sr.SustainedRPS <= 0 {
		fmt.Fprintln(os.Stderr, "a4load: no sustainable rate found (even -min-rate missed the SLO)")
		return 1
	}
	return 0
}

var outcomeOrder = []string{
	loadgen.OutcomeOK, loadgen.OutcomeClient, loadgen.OutcomeRejected,
	loadgen.OutcomeServer, loadgen.OutcomeTransport,
}

// writeJSON routes a result writer to the -json destination: nothing,
// stdout ("-"), or a file.
func writeJSON(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseMix parses 'class=weight,class=weight' into a mix map.
func parseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		class, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mix weight in %q: %v", part, err)
		}
		mix[strings.TrimSpace(class)] = w
	}
	return mix, nil
}
