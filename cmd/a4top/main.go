// Command a4top is a PCM-style counter viewer for the simulated testbed: it
// runs a scenario and prints a periodic top-like table of per-workload
// hardware counters (LLC/MLC hit rates, DDIO hits and misses, DMA leaks and
// bloat, IPC, I/O throughput) plus system memory bandwidth.
//
// Usage:
//
//	a4top -secs 12 -block 128 -every 2
package main

import (
	"flag"
	"fmt"
	"os"

	"a4sim/internal/scenario"
	"a4sim/internal/sim"
)

func main() {
	secs := flag.Int("secs", 12, "simulated seconds to run")
	every := flag.Int("every", 2, "print interval in simulated seconds")
	block := flag.Int("block", 128, "FIO block size in KB")
	flag.Parse()

	sp := &scenario.Spec{
		Name:    "a4top",
		Manager: "default",
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1, 2, 3}, Priority: "hpw", Touch: true},
			{Kind: "fio", Name: "fio", Cores: []int{4, 5, 6, 7}, Priority: "lpw", BlockKB: *block, QueueDepth: 32},
			{Kind: "xmem", Name: "xmem", Cores: []int{8, 9}, Priority: "hpw", WSKB: 4 << 10, Pattern: "sequential"},
		},
	}
	s, err := sp.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4top:", err)
		os.Exit(2)
	}

	interval := *every
	if interval <= 0 {
		interval = 1
	}
	s.Engine.AddObserver(sim.FuncObserver(func(now sim.Tick) {
		t := int(now.Seconds())
		if t%interval != 0 {
			return
		}
		fmt.Printf("--- t=%ds  memBW=%.2f GB/s ---\n", t, s.Monitor.LastMemBW())
		fmt.Printf("%-10s %8s %8s %8s %8s %8s %8s %8s\n",
			"workload", "llcHit", "mlcMiss", "dcaMiss", "leaks", "bloats", "ipc", "ioGB/s")
		for _, smp := range s.Monitor.Last() {
			fmt.Printf("%-10s %8.3f %8.3f %8.3f %8d %8d %8.3f %8.2f\n",
				smp.Name, smp.LLCHitRate, smp.MLCMissRate, smp.DCAMissRate,
				smp.DMALeaks, smp.DMABloats, smp.IPC, smp.IOReadGBps)
		}
	}))
	s.Run(float64(*secs), 0.001)
}
