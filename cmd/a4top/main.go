// Command a4top is a PCM-style counter viewer for the simulated testbed: it
// runs a scenario and prints a periodic top-like table of per-workload
// hardware counters (LLC/MLC hit rates, DDIO hits and misses, DMA leaks and
// bloat, IPC, I/O throughput) plus system memory bandwidth.
//
// Usage:
//
//	a4top -secs 12 -block 128 -every 2
package main

import (
	"flag"
	"fmt"

	"a4sim/internal/harness"
	"a4sim/internal/sim"
	"a4sim/internal/workload"
)

func main() {
	secs := flag.Int("secs", 12, "simulated seconds to run")
	every := flag.Int("every", 2, "print interval in simulated seconds")
	block := flag.Int("block", 128, "FIO block size in KB")
	flag.Parse()

	s := harness.NewScenario(harness.DefaultParams())
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddFIO("fio", []int{4, 5, 6, 7}, *block<<10, 32, workload.LPW)
	s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(harness.Default())

	interval := *every
	if interval <= 0 {
		interval = 1
	}
	s.Engine.AddObserver(sim.FuncObserver(func(now sim.Tick) {
		t := int(now.Seconds())
		if t%interval != 0 {
			return
		}
		fmt.Printf("--- t=%ds  memBW=%.2f GB/s ---\n", t, s.Monitor.LastMemBW())
		fmt.Printf("%-10s %8s %8s %8s %8s %8s %8s %8s\n",
			"workload", "llcHit", "mlcMiss", "dcaMiss", "leaks", "bloats", "ipc", "ioGB/s")
		for _, smp := range s.Monitor.Last() {
			fmt.Printf("%-10s %8.3f %8.3f %8.3f %8d %8d %8.3f %8.2f\n",
				smp.Name, smp.LLCHitRate, smp.MLCMissRate, smp.DCAMissRate,
				smp.DMALeaks, smp.DMABloats, smp.IPC, smp.IOReadGBps)
		}
	}))
	s.Run(float64(*secs), 0.001)
}
