// Command a4top is a PCM-style counter viewer for the simulated testbed,
// built on the telemetry plane: instead of ad-hoc sampling, it reads the
// same per-second series the measurement path records (harness.Monitor) —
// either live, from a scenario it runs itself, or remotely, from a served
// run's GET /series/<hash> endpoint on an a4serve daemon.
//
// Usage:
//
//	a4top -secs 12 -block 128 -every 2 -last 8        # live scenario
//	a4top -url http://localhost:8044 -hash <hash>      # served run's series
//	a4top -url http://localhost:8044 -hash <hash> -follow   # stream live
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
	"a4sim/internal/stats"
)

func main() {
	secs := flag.Int("secs", 12, "live: simulated seconds to run")
	every := flag.Int("every", 2, "live: print interval in simulated seconds")
	block := flag.Int("block", 128, "live: FIO block size in KB")
	last := flag.Int("last", 8, "seconds of history per rendering")
	url := flag.String("url", "", "remote: a4serve base URL (with -hash)")
	hash := flag.String("hash", "", "remote: content address of a served run")
	followFlag := flag.Bool("follow", false, "remote: attach to GET /series/<hash>/stream and render rows as they record")
	flag.Parse()

	if (*url == "") != (*hash == "") {
		fmt.Fprintln(os.Stderr, "a4top: -url and -hash go together")
		os.Exit(2)
	}
	if *url != "" {
		if *followFlag {
			os.Exit(follow(*url, *hash, *last, *every))
		}
		os.Exit(remote(*url, *hash, *last))
	}
	os.Exit(live(*secs, *every, *block, *last))
}

// live runs the demo mix with the full telemetry plane enabled and renders
// the tail of the monitor's series at every interval.
func live(secs, every, block, last int) int {
	sp := &scenario.Spec{
		Name:    "a4top",
		Manager: "default",
		Series:  &scenario.SeriesSpec{}, // all column groups
		// One long measurement window: a4top wants the series, and windows
		// are what the plane records.
		WarmupSec:  0.001,
		MeasureSec: float64(secs),
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1, 2, 3}, Priority: "hpw", Touch: true},
			{Kind: "fio", Name: "fio", Cores: []int{4, 5, 6, 7}, Priority: "lpw", BlockKB: block, QueueDepth: 32},
			{Kind: "xmem", Name: "xmem", Cores: []int{8, 9}, Priority: "hpw", WSKB: 4 << 10, Pattern: "sequential"},
		},
	}
	s, err := sp.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4top:", err)
		return 2
	}
	if every <= 0 {
		every = 1
	}
	s.BeginMeasure()
	// Walk the window in print intervals, shortening the last step so the
	// full -secs always simulates even when it is not a multiple of -every.
	for done := 0; done < secs; {
		step := every
		if secs-done < step {
			step = secs - done
		}
		s.Measure(float64(step))
		done += step
		render(os.Stdout, s.Monitor.Series(), last)
	}
	res := s.EndMeasure()
	fmt.Printf("window aggregate: %.0fs  mem rd=%.2f wr=%.2f GB/s\n",
		res.Seconds, res.MemReadGBps, res.MemWriteGBps)
	return 0
}

// remote fetches a served run's series by content address and renders its
// tail once. Server errors surface through the client's typed taxonomy —
// an unknown hash reads as such, not as an opaque status line.
func remote(url, hash string, last int) int {
	data, err := service.NewClient(url, nil).Series(hash)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a4top: series %s: %v\n", hash, err)
		return 1
	}
	ser, err := stats.DecodeSeries(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a4top:", err)
		return 1
	}
	render(os.Stdout, ser, last)
	return 0
}

// follow attaches to a run's SSE stream and renders the growing series
// every -every rows, then once more from the terminal event: a final series
// for completed runs (rendered from the stored encoding, so what follow
// shows last is exactly what GET /series serves), or an error for aborted
// ones. Returns non-zero if the stream ends without a terminal event.
func follow(url, hash string, last, every int) int {
	body, err := service.NewClient(url, nil).SeriesStream(hash)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a4top: stream %s: %v\n", hash, err)
		return 1
	}
	defer body.Close()
	if every <= 0 {
		every = 1
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var (
		event string
		ser   *stats.Series
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "hello":
				var h struct {
					Columns []string `json:"columns"`
				}
				if err := json.Unmarshal(data, &h); err != nil {
					fmt.Fprintln(os.Stderr, "a4top: bad hello:", err)
					return 1
				}
				ser = stats.NewSeries(h.Columns...)
			case "row":
				var r struct {
					Values []float64 `json:"values"`
				}
				if err := json.Unmarshal(data, &r); err != nil || ser == nil {
					fmt.Fprintln(os.Stderr, "a4top: bad row event")
					return 1
				}
				ser.Append(r.Values...)
				if ser.Len()%every == 0 {
					render(os.Stdout, ser, last)
				}
			case "series":
				final, err := stats.DecodeSeries(data)
				if err != nil {
					fmt.Fprintln(os.Stderr, "a4top: bad final series:", err)
					return 1
				}
				fmt.Printf("stream complete: %d rows\n", final.Len())
				render(os.Stdout, final, last)
				return 0
			case "error":
				var e struct {
					Error string `json:"error"`
				}
				json.Unmarshal(data, &e)
				fmt.Fprintln(os.Stderr, "a4top: stream error:", e.Error)
				return 1
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "a4top: reading stream:", err)
	} else {
		fmt.Fprintln(os.Stderr, "a4top: stream ended without a terminal event")
	}
	return 1
}

// workloadNames derives the per-workload column blocks from the series'
// deterministic column names (wl.<name>.ipc), preserving scenario order.
func workloadNames(ser *stats.Series) []string {
	var names []string
	for _, c := range ser.Names() {
		if strings.HasPrefix(c, "wl.") && strings.HasSuffix(c, ".ipc") {
			names = append(names, strings.TrimSuffix(strings.TrimPrefix(c, "wl."), ".ipc"))
		}
	}
	return names
}

// render prints the last n seconds of the series: an IPC history per
// workload plus the latest counters, memory bandwidth, and — when the run
// carried the controller group — the A4 state timeline.
func render(w io.Writer, ser *stats.Series, n int) {
	if ser == nil || ser.Len() == 0 {
		fmt.Fprintln(w, "a4top: no series rows yet")
		return
	}
	rows := ser.Len()
	from := rows - n
	if from < 0 {
		from = 0
	}
	fmt.Fprintf(w, "--- t=%ds  memBW=%.2f GB/s  (showing s%d..s%d) ---\n",
		rows, latest(ser, "mem.rd_gbps")+latest(ser, "mem.wr_gbps"), from+1, rows)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %10s  %s\n",
		"workload", "llcHit", "dcaMiss", "ipc", "ioGB/s", "prog/s", fmt.Sprintf("ipc[last %d]", rows-from))
	for _, name := range workloadNames(ser) {
		col := func(metric string) string { return "wl." + name + "." + metric }
		hist := ser.Tail(col("ipc"), n)
		parts := make([]string, len(hist))
		for i, v := range hist {
			parts[i] = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.2f %10.0f  %s\n",
			name,
			latest(ser, col("llc_hit")),
			latest(ser, col("dca_miss")),
			latest(ser, col("ipc")),
			latest(ser, col("io_rd_gbps")),
			latest(ser, col("progress")),
			strings.Join(parts, " "))
	}
	if depth := ser.Column("nic.ring_depth"); depth != nil {
		fmt.Fprintf(w, "%-10s depth=%.0f drops/s=%.0f", "nic", latest(ser, "nic.ring_depth"), latest(ser, "nic.drops"))
		if ser.Column("ssd.queue_depth") != nil {
			fmt.Fprintf(w, "   ssd depth=%.0f", latest(ser, "ssd.queue_depth"))
		}
		fmt.Fprintln(w)
	}
	if st := ser.Column("a4.state"); st != nil {
		states := ser.Tail("a4.state", n)
		parts := make([]string, len(states))
		for i, v := range states {
			parts[i] = [4]string{"init", "search", "settled", "revert"}[int(v)&3]
		}
		fmt.Fprintf(w, "%-10s lp=[%.0f:%.0f]  %s\n", "a4",
			latest(ser, "a4.lp_left"), latest(ser, "a4.lp_right"), strings.Join(parts, " "))
	}
}

// latest returns the newest value of a column, or 0 if absent/empty.
func latest(ser *stats.Series, name string) float64 {
	c := ser.Column(name)
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1]
}
