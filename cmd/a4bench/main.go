// Command a4bench regenerates the paper's figures on the simulated testbed.
//
// Usage:
//
//	a4bench -fig 3a            # one figure
//	a4bench -fig all           # every figure (slow)
//	a4bench -fig 13a -quick    # trimmed sweep for a fast look
//	a4bench -list              # available figure IDs
//
// Output is a text table per figure with one row per x position and one
// column per series, mirroring the lines/bars of the paper's plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"a4sim/internal/figures"
	"a4sim/internal/harness"
	"a4sim/internal/scenario"
)

func main() {
	fig := flag.String("fig", "", "figure ID to regenerate (e.g. 3a, 13a, or 'all')")
	quick := flag.Bool("quick", false, "trim sweeps and shorten runs")
	verbose := flag.Bool("v", false, "include controller event notes")
	list := flag.Bool("list", false, "list available figure IDs")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	sampled := flag.Bool("sampled", false,
		"run measurement windows sampled (200 ms detail per second; ~5x fewer detailed epochs)")
	flag.Parse()

	if *list || *fig == "" {
		fmt.Println("available figures:", strings.Join(figures.IDs(), " "))
		fmt.Println("available ablations:", strings.Join(figures.AblationIDs(), " "))
		if *fig == "" {
			os.Exit(2)
		}
		return
	}

	opts := figures.Options{Quick: *quick, Verbose: *verbose, Workers: *workers}
	if *sampled {
		opts.Params.Sample = harness.SampleSpec{
			DetailUs: scenario.DefaultSampleDetailUs,
			PeriodUs: scenario.DefaultSamplePeriodUs,
		}
	}
	ids := []string{*fig}
	switch *fig {
	case "all":
		ids = figures.IDs()
	case "ablations":
		ids = figures.AblationIDs()
	}
	for _, id := range ids {
		fn, ok := figures.Registry[id]
		if !ok {
			fn, ok = figures.AblationRegistry[id]
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "a4bench: unknown figure %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep := fn(opts)
		fmt.Print(rep.String())
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}
