package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, CacheEntries: 16})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)
	return srv
}

func tinyBody(t *testing.T) []byte {
	t.Helper()
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

type runResponse struct {
	Hash   string          `json:"hash"`
	Cached bool            `json:"cached"`
	Report json.RawMessage `json:"report"`
}

func TestRunEndpointCachesSecondPost(t *testing.T) {
	srv := testServer(t)
	body := tinyBody(t)

	post := func() runResponse {
		resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /run status %d", resp.StatusCode)
		}
		var rr runResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	r1 := post()
	r2 := post()
	if r1.Cached || !r2.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", r1.Cached, r2.Cached)
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Error("cache-served report differs from executed report")
	}

	// The hit shows up in /stats and the report is addressable by hash.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Hits < 1 || st.Executions != 1 {
		t.Errorf("stats = %+v, want >=1 hit and exactly 1 execution", st)
	}

	resp, err = http.Get(srv.URL + "/result/" + r1.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /result status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hash != r1.Hash {
		t.Errorf("served report hash %s, want %s", rep.Hash, r1.Hash)
	}
}

func TestRunEndpointRejectsBadSpecs(t *testing.T) {
	srv := testServer(t)

	resp, err := http.Post(srv.URL+"/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/run", "application/json",
		strings.NewReader(`{"manager": "bogus", "workloads": [{"kind": "xmem", "cores": [0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid spec: status %d, want 422", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/result/unknownhash")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /result/unknown: status %d, want 404", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := testServer(t)
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	req := map[string]any{
		"spec": sp,
		"axes": []map[string]any{{"param": "manager", "managers": []string{"default", "a4-d"}}},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sweep status %d", resp.StatusCode)
	}
	var out struct {
		Points []struct {
			Grid   map[string]any  `json:"grid"`
			Hash   string          `json:"hash"`
			Report json.RawMessage `json:"report"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(out.Points))
	}
	if out.Points[0].Grid["manager"] != "default" || out.Points[1].Grid["manager"] != "a4-d" {
		t.Errorf("grid order not deterministic: %v", out.Points)
	}
	if out.Points[0].Hash == out.Points[1].Hash {
		t.Error("distinct grid points share a hash")
	}
}
