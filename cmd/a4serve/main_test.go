package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, CacheEntries: 16})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)
	return srv
}

func tinyBody(t *testing.T) []byte {
	t.Helper()
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

type runResponse struct {
	Hash   string          `json:"hash"`
	Cached bool            `json:"cached"`
	Report json.RawMessage `json:"report"`
}

func TestRunEndpointCachesSecondPost(t *testing.T) {
	srv := testServer(t)
	body := tinyBody(t)

	client := service.NewClient(srv.URL, nil)
	post := func() service.Result {
		res, err := client.RunBytes(body)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := post()
	r2 := post()
	if r1.Cached || !r2.Cached {
		t.Errorf("cached flags = %v, %v; want false, true", r1.Cached, r2.Cached)
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Error("cache-served report differs from executed report")
	}

	// The hit shows up in /stats and the report is addressable by hash.
	st, backends, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits < 1 || st.Executions != 1 {
		t.Errorf("stats = %+v, want >=1 hit and exactly 1 execution", st)
	}
	if backends != 0 {
		t.Errorf("single node reports %d backends, want 0", backends)
	}

	data, err := client.Result(r1.Hash)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hash != r1.Hash {
		t.Errorf("served report hash %s, want %s", rep.Hash, r1.Hash)
	}
}

func TestRunEndpointRejectsBadSpecs(t *testing.T) {
	srv := testServer(t)
	client := service.NewClient(srv.URL, nil)

	// Rejections come back through the client as the typed taxonomy: a
	// malformed body is a 400 APIError, an invalid spec a 422, an unknown
	// content address the ErrUnknownHash sentinel.
	var ae *service.APIError
	if _, err := client.RunBytes([]byte("{not json")); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Errorf("malformed JSON: err = %v, want APIError status 400", err)
	}
	if _, err := client.RunBytes([]byte(`{"manager": "bogus", "workloads": [{"kind": "xmem", "cores": [0]}]}`)); !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity {
		t.Errorf("invalid spec: err = %v, want APIError status 422", err)
	}
	if _, err := client.Result("unknownhash"); !errors.Is(err, service.ErrUnknownHash) {
		t.Errorf("unknown result hash: err = %v, want ErrUnknownHash", err)
	}

	resp, err := http.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := testServer(t)
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	req := map[string]any{
		"spec": sp,
		"axes": []map[string]any{{"param": "manager", "managers": []string{"default", "a4-d"}}},
	}
	body, _ := json.Marshal(req)
	points, err := service.NewClient(srv.URL, nil).SweepBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[0].Grid["manager"] != "default" || points[1].Grid["manager"] != "a4-d" {
		t.Errorf("grid order not deterministic: %v", points)
	}
	if points[0].Hash == points[1].Hash {
		t.Error("distinct grid points share a hash")
	}
}
