package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"a4sim/internal/scenario"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body []byte) (*http.Response, runResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

// TestExtendEndpoint pins the /extend HTTP contract: a served run is
// extendable by content address, and the extended report is byte-identical
// to POSTing the longer spec to /run from scratch.
func TestExtendEndpoint(t *testing.T) {
	srv := testServer(t)

	_, first := postJSON(t, srv, "/run", tinyBody(t))
	if first.Hash == "" {
		t.Fatal("no hash from /run")
	}

	resp, ext := postJSON(t, srv, "/extend",
		[]byte(fmt.Sprintf(`{"hash":%q,"measure_sec":4}`, first.Hash)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /extend status %d", resp.StatusCode)
	}
	if ext.Hash == first.Hash {
		t.Error("extension must re-address under the longer window's hash")
	}

	// Ground truth: the same longer spec POSTed as a fresh run on a second,
	// snapshot-cold daemon.
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	sp.MeasureSec = 4
	longBody, _ := json.Marshal(sp)
	cold := testServer(t)
	_, fresh := postJSON(t, cold, "/run", longBody)
	if !bytes.Equal(ext.Report, fresh.Report) {
		t.Fatalf("/extend report differs from fresh /run:\n%s\nvs\n%s", ext.Report, fresh.Report)
	}

	// The warm daemon serves the same bytes for the long spec from cache.
	_, again := postJSON(t, srv, "/run", longBody)
	if !again.Cached || !bytes.Equal(again.Report, ext.Report) {
		t.Error("extended result not cached under the longer spec's hash")
	}
}

func TestExtendEndpointErrors(t *testing.T) {
	srv := testServer(t)

	resp, _ := postJSON(t, srv, "/extend", []byte(`{"hash":"feedface","measure_sec":2}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv, "/extend", []byte(`{"hash":"x","measure_sec":2,"bogus":1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	_, first := postJSON(t, srv, "/run", tinyBody(t))
	resp, _ = postJSON(t, srv, "/extend",
		[]byte(fmt.Sprintf(`{"hash":%q,"measure_sec":-3}`, first.Hash)))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("negative window: status %d, want 422", resp.StatusCode)
	}
}
