package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"a4sim/internal/cluster"
	"a4sim/internal/service"
)

// coordServer stands up nBackends real backend daemons plus a coordinator
// fronting them, all on httptest listeners, and returns the coordinator's
// server (same HTTP API as a single node — that is the point).
func coordServer(t *testing.T, nBackends int) *httptest.Server {
	t.Helper()
	urls := make([]string, nBackends)
	for i := range urls {
		urls[i] = testServer(t).URL
	}
	coord, err := cluster.New(cluster.Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewMux(coord, func() any { return coord.Stats() }, nil))
	t.Cleanup(srv.Close)
	return srv
}

func postBody(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestClusterEndpointMatchesSingleNode pins that a client cannot tell a
// coordinator from a daemon: the full /sweep response body through a
// 2-backend cluster is byte-identical to a fresh single node's, and the
// coordinator's /stats merges per-backend counters whose sums match the
// fleet totals.
func TestClusterEndpointMatchesSingleNode(t *testing.T) {
	sweep := []byte(`{
		"spec": {"name": "smoke", "manager": "a4-d", "params": {"rate_scale": 8192},
		         "warmup_sec": 1, "measure_sec": 1, "workloads": [
		           {"kind": "dpdk", "name": "dpdk-t", "cores": [0, 1], "priority": "hpw", "touch": true},
		           {"kind": "xmem", "name": "xmem", "cores": [2], "ws_kb": 1024, "pattern": "random"}]},
		"axes": [{"param": "manager", "managers": ["default", "a4-d"]},
		         {"param": "nic_gbps", "values": [50, 100]}]
	}`)

	coord := coordServer(t, 2)
	single := testServer(t)

	code, clusterBody := postBody(t, coord.URL+"/sweep", sweep)
	if code != http.StatusOK {
		t.Fatalf("coordinator /sweep status %d: %s", code, clusterBody)
	}
	code, singleBody := postBody(t, single.URL+"/sweep", sweep)
	if code != http.StatusOK {
		t.Fatalf("single-node /sweep status %d", code)
	}
	if !bytes.Equal(clusterBody, singleBody) {
		t.Fatalf("cluster /sweep response differs from single node:\n%s\nvs\n%s", clusterBody, singleBody)
	}

	// Re-POST: every point is now cache-served by its owning backend, and
	// the hits land in the merged per-backend stats.
	if code, again := postBody(t, coord.URL+"/sweep", sweep); code != http.StatusOK {
		t.Fatalf("second coordinator /sweep status %d: %s", code, again)
	}
	resp, err := http.Get(coord.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Backends) != 2 {
		t.Fatalf("merged stats list %d backends, want 2", len(st.Backends))
	}
	var hitSum, execSum uint64
	for _, bs := range st.Backends {
		hitSum += bs.Stats.Hits
		execSum += bs.Stats.Executions
	}
	if hitSum != st.Hits || execSum != st.Executions {
		t.Errorf("per-backend sums (hits %d, execs %d) != merged (%d, %d)",
			hitSum, execSum, st.Hits, st.Executions)
	}
	if st.Hits < 4 {
		t.Errorf("merged hits = %d, want >= 4 (every re-swept point cache-served)", st.Hits)
	}
	if st.Executions != 4 {
		t.Errorf("merged executions = %d, want exactly 4", st.Executions)
	}

	// /run through the coordinator serves the same API, including /result
	// retrieval by content address.
	spec := []byte(`{"name": "one", "manager": "a4-d", "params": {"rate_scale": 8192},
		"warmup_sec": 1, "measure_sec": 1,
		"workloads": [{"kind": "xmem", "name": "xmem", "cores": [0], "ws_kb": 1024, "pattern": "random"}]}`)
	code, runBody := postBody(t, coord.URL+"/run", spec)
	if code != http.StatusOK {
		t.Fatalf("coordinator /run status %d: %s", code, runBody)
	}
	var rr runResponse
	if err := json.Unmarshal(runBody, &rr); err != nil {
		t.Fatal(err)
	}
	client := service.NewClient(coord.URL, nil)
	if _, err := client.Result(rr.Hash); err != nil {
		t.Errorf("coordinator /result/<hash>: %v", err)
	}

	// Error taxonomy round-trips through the coordinator: a bad spec is the
	// same 422 APIError a single node answers.
	var ae *service.APIError
	if _, err := client.RunBytes([]byte(`{"manager": "bogus", "workloads": [{"kind": "xmem", "cores": [0]}]}`)); !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity {
		t.Errorf("coordinator bad-spec /run err = %v, want APIError status 422", err)
	}
}
