// Command a4serve serves scenario runs over HTTP: the simulation as a
// service. Clients POST declarative scenario specs (internal/scenario) and
// get deterministic reports back; identical specs are served from a
// content-addressed result cache, and concurrent duplicates coalesce onto
// one execution, so a fleet of clients asking popular questions is mostly
// served without simulating anything.
//
// Endpoints:
//
//	POST /run          spec JSON -> {hash, cached, report}
//	POST /extend       {hash, measure_sec} -> {hash, cached, report}: re-run
//	                   a previously served spec with a longer measurement
//	                   window, continuing from its cached warm snapshot
//	                   instead of restarting (404 for unknown hashes)
//	POST /sweep        {spec, axes: [{param, values|managers}]} -> {points}
//	GET  /result/<hash>  cached report by content address (404 if evicted)
//	GET  /healthz      liveness
//	GET  /stats        cache hit/miss, dedup, execution, snapshot counters
//
// Usage:
//
//	a4serve -addr :8044 -workers 8 -cache 512
//	a4serve -loadgen -url http://localhost:8044 -n 200 -clients 8 -fresh 0.25
//
// The -loadgen mode hammers a running daemon with a mix of repeated and
// fresh specs and prints the served throughput (service_cached_rps), which
// scripts/bench.sh records into the perf trajectory.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// loadgenClient bounds every loadgen request so a wedged daemon cannot
// hang the generator (and scripts/bench.sh behind it) forever.
var loadgenClient = &http.Client{Timeout: 60 * time.Second}

func main() {
	addr := flag.String("addr", ":8044", "listen address")
	workers := flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 256, "result cache capacity in entries")
	loadgen := flag.Bool("loadgen", false, "run as load generator against -url instead of serving")
	url := flag.String("url", "http://localhost:8044", "loadgen: target daemon")
	n := flag.Int("n", 200, "loadgen: total requests")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	fresh := flag.Float64("fresh", 0.25, "loadgen: fraction of requests with never-seen specs")
	flag.Parse()

	if *loadgen {
		os.Exit(runLoadgen(*url, *n, *clients, *fresh))
	}

	svc := service.New(service.Config{Workers: *workers, CacheEntries: *cacheEntries})
	fmt.Printf("a4serve: listening on %s (workers=%d cache=%d mixes=%v)\n",
		*addr, svc.Stats().Workers, *cacheEntries, scenario.BuiltinMixes())
	srv := &http.Server{
		Addr:    *addr,
		Handler: newMux(svc),
		// Bound idle and slow-loris connections. No WriteTimeout: /run and
		// /sweep responses legitimately wait on multi-minute executions.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "a4serve:", err)
		os.Exit(1)
	}
}

func newMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		sp, err := scenario.Parse(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// No explicit Validate here: Submit's hashing validates the spec
		// and statusForErr maps the rejection to 422.
		res, err := svc.Submit(sp)
		if err != nil {
			httpError(w, statusForErr(err), err.Error())
			return
		}
		writeJSON(w, map[string]any{
			"hash":   res.Hash,
			"cached": res.Cached,
			"report": json.RawMessage(res.Report),
		})
	})
	mux.HandleFunc("POST /extend", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var req struct {
			Hash       string  `json:"hash"`
			MeasureSec float64 `json:"measure_sec"`
		}
		if err := scenario.StrictDecode(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, err := svc.Extend(req.Hash, req.MeasureSec)
		if err != nil {
			if errors.Is(err, service.ErrUnknownHash) {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			httpError(w, statusForErr(err), err.Error())
			return
		}
		writeJSON(w, map[string]any{
			"hash":   res.Hash,
			"cached": res.Cached,
			"report": json.RawMessage(res.Report),
		})
	})
	mux.HandleFunc("POST /sweep", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var req service.SweepRequest
		if err := scenario.StrictDecode(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		points, err := svc.Sweep(&req)
		if err != nil {
			httpError(w, statusForErr(err), err.Error())
			return
		}
		out := make([]map[string]any, len(points))
		for i, p := range points {
			out[i] = map[string]any{
				"grid":   p.Grid,
				"hash":   p.Hash,
				"cached": p.Cached,
				"report": json.RawMessage(p.Report),
			}
		}
		writeJSON(w, map[string]any{"points": out})
	})
	mux.HandleFunc("GET /result/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		rep, ok := svc.Lookup(hash)
		if !ok {
			httpError(w, http.StatusNotFound, "no cached result for "+hash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Stats())
	})
	return mux
}

// readBody reads a request body under the 1 MiB cap; MaxBytesReader
// rejects oversized bodies outright rather than silently truncating into
// different (but parseable) JSON.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
}

// bodyErrStatus distinguishes an oversized body (413) from a transport or
// encoding failure mid-read (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusForErr classifies a service failure: execution errors are the
// server's fault (500), a closing service is transient (503), a full
// queue asks the client to back off (429), anything else is a spec or
// grid rejected before running (422).
func statusForErr(err error) int {
	var re *service.RunError
	switch {
	case errors.As(err, &re):
		return http.StatusInternalServerError
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, service.ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// runLoadgen drives a daemon with a mix of repeated and fresh specs. The
// repeated ones model a fleet asking popular questions (cache-served); the
// fresh ones vary the seed so they must execute. Prints overall and
// cache-served throughput in a bench.sh-parseable form.
func runLoadgen(url string, n, clients int, freshFrac float64) int {
	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	// The popular set: a few manager variants of the tiny mix.
	popular := [][]byte{}
	for _, mgr := range []string{"a4-d", "default", "isolate"} {
		sp := base.Clone()
		sp.Manager = mgr
		data, _ := json.Marshal(sp)
		popular = append(popular, data)
	}
	if freshFrac < 0 {
		freshFrac = 0
	}
	if freshFrac > 1 {
		freshFrac = 1
	}
	// isFresh schedules ~freshFrac of requests as never-seen specs with an
	// error-accumulator spread (exact for any fraction, deterministic in i).
	isFresh := func(i int) bool {
		return int(float64(i+1)*freshFrac) > int(float64(i)*freshFrac)
	}

	statsBefore, err := fetchStats(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: daemon not reachable:", err)
		return 1
	}

	// Salt fresh specs with a per-run nonce so repeated loadgen runs against
	// a long-lived daemon really execute their fresh share instead of
	// re-hitting the previous run's entries.
	nonce := uint64(time.Now().UnixNano())

	var (
		next     atomic.Int64
		okCount  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body := popular[i%len(popular)]
				if isFresh(i) {
					sp := base.Clone()
					sp.Name = fmt.Sprintf("fresh-%d-%d", nonce, i)
					sp.Params.Seed = nonce + uint64(i)
					body, _ = json.Marshal(sp)
				}
				resp, err := loadgenClient.Post(url+"/run", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					okCount.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	statsAfter, err := fetchStats(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: stats after run:", err)
		return 1
	}
	hits := statsAfter.Hits - statsBefore.Hits
	execs := statsAfter.Executions - statsBefore.Executions
	fmt.Printf("loadgen: %d ok, %d failed in %.2fs (%d clients)\n",
		okCount.Load(), failures.Load(), elapsed.Seconds(), clients)
	fmt.Printf("loadgen: cache hits=%d dedups=%d executions=%d\n",
		hits, statsAfter.Dedups-statsBefore.Dedups, execs)
	fmt.Printf("service_total_rps=%.2f\n", float64(okCount.Load())/elapsed.Seconds())
	// The headline metric counts only cache-served requests, so it tracks
	// the serving path rather than simulation speed.
	fmt.Printf("service_cached_rps=%.2f\n", float64(hits)/elapsed.Seconds())
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

func fetchStats(url string) (service.Stats, error) {
	var st service.Stats
	resp, err := loadgenClient.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
