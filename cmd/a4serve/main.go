// Command a4serve serves scenario runs over HTTP: the simulation as a
// service. Clients POST declarative scenario specs (internal/scenario) and
// get deterministic reports back; identical specs are served from a
// content-addressed result cache, and concurrent duplicates coalesce onto
// one execution, so a fleet of clients asking popular questions is mostly
// served without simulating anything.
//
// Endpoints (identical in single-node and cluster mode):
//
//	POST /run          spec JSON -> {hash, cached, report}
//	POST /extend       {hash, measure_sec} -> {hash, cached, report}: re-run
//	                   a previously served spec with a longer measurement
//	                   window, continuing from its cached warm snapshot
//	                   instead of restarting (404 for unknown hashes)
//	POST /sweep        {spec, axes: [{param, values|managers}]} -> {points}
//	GET  /result/<hash>  cached report by content address (404 if evicted)
//	GET  /series/<hash>  the run's per-second telemetry series (404 for
//	                   unknown hashes and for runs whose spec carried no
//	                   series block); /extend's result serves its own,
//	                   longer series under the extended run's hash
//	GET  /healthz      liveness
//	GET  /stats        cache hit/miss, dedup, execution, snapshot counters;
//	                   in cluster mode the counters are summed across
//	                   backends with a per-backend breakdown attached
//
// Usage:
//
//	a4serve -addr :8044 -workers 8 -cache 512
//	a4serve -addr :8050 -cluster "http://n1:8044,http://n2:8044"
//	a4serve -loadgen -url http://localhost:8044 -n 200 -clients 8 -fresh 0.25
//	a4serve -loadgen -url http://localhost:8050 -sweepn 24
//
// With -cluster the process serves as a coordinator: it executes nothing
// itself, sharding requests over the listed backends by the spec's prefix
// hash (internal/cluster) so same-prefix runs reuse one backend's warm
// snapshots. Clients cannot tell the difference.
//
// The -loadgen mode hammers a running daemon (or coordinator) with a mix
// of repeated and fresh specs and prints the served throughput
// (service_cached_rps); -sweepn instead POSTs one seed-axis sweep and
// prints cluster_sweep_rps (grid points per second of wall time). Both
// metrics land in scripts/bench.sh's BENCH_<date>.json.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"a4sim/internal/cluster"
	"a4sim/internal/loadgen"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
	"a4sim/internal/store"
)

func main() {
	addr := flag.String("addr", ":8044", "listen address")
	workers := flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 256, "result cache capacity in entries")
	storeDir := flag.String("store", "", "durable object store directory: spill results and warm snapshots to disk and rehydrate them on restart")
	clusterURLs := flag.String("cluster", "", "comma-separated backend URLs: serve as cluster coordinator instead of executing locally")
	revive := flag.Duration("revive", 0, "cluster: how long a down backend stays quarantined before revival probes (0 = default)")
	loadgen := flag.Bool("loadgen", false, "run as load generator against -url instead of serving")
	url := flag.String("url", "http://localhost:8044", "loadgen: target daemon or coordinator")
	n := flag.Int("n", 200, "loadgen: total requests")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	fresh := flag.Float64("fresh", 0.25, "loadgen: fraction of requests with never-seen specs")
	sweepN := flag.Int("sweepn", 0, "loadgen: POST one seed-axis sweep of this many points and print cluster_sweep_rps instead of hammering /run")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose heap contents)")
	flag.Parse()

	if *loadgen {
		if *sweepN > 0 {
			os.Exit(runSweepgen(*url, *sweepN))
		}
		os.Exit(runLoadgen(*url, *n, *clients, *fresh))
	}

	// healthy gates /healthz: flipped to false at the start of a graceful
	// shutdown so probes and coordinators stop routing here while in-flight
	// jobs drain.
	var healthy atomic.Bool
	healthy.Store(true)

	var mux *http.ServeMux
	var svc *service.Service
	if *clusterURLs != "" {
		backends := strings.Split(*clusterURLs, ",")
		coord, err := cluster.New(cluster.Config{Backends: backends, ReviveAfter: *revive})
		if err != nil {
			fmt.Fprintln(os.Stderr, "a4serve:", err)
			os.Exit(1)
		}
		mux = service.NewMux(coord, func() any { return coord.Stats() }, healthy.Load)
		fmt.Printf("a4serve: coordinating %d backends on %s (%s)\n",
			len(backends), *addr, strings.Join(backends, ", "))
	} else {
		cfg := service.Config{Workers: *workers, CacheEntries: *cacheEntries}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "a4serve:", err)
				os.Exit(1)
			}
			cfg.Store = st
			fmt.Printf("a4serve: durable store %s (%d objects)\n", st.Dir(), st.Len())
		}
		svc = service.New(cfg)
		mux = service.NewMux(svc, func() any { return svc.Stats() }, healthy.Load)
		fmt.Printf("a4serve: listening on %s (workers=%d cache=%d mixes=%v)\n",
			*addr, svc.Stats().Workers, *cacheEntries, scenario.BuiltinMixes())
	}
	if *pprofOn {
		// Contention profiling is off by default in the runtime; sampling
		// 1-in-5 mutex events and >=100µs block events keeps the overhead
		// negligible while making /debug/pprof/{mutex,block} useful.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100_000)
		// Mounted on our mux, not http.DefaultServeMux, so the flag really
		// gates the endpoints.
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		fmt.Println("a4serve: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Bound idle and slow-loris connections. No WriteTimeout: /run and
		// /sweep responses legitimately wait on multi-minute executions.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: on SIGINT/SIGTERM flip /healthz to 503, then drain —
	// Shutdown waits for in-flight requests (and the executions behind them)
	// before closing the listener, so accepted work is answered and every
	// completed run has already been durably spilled by the worker that ran
	// it. A second signal aborts the wait for operators in a hurry.
	go func() {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		healthy.Store(false)
		fmt.Println("a4serve: draining (signal again to abort)")
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "a4serve:", err)
		os.Exit(1)
	}
	if svc != nil {
		// Let queued jobs finish so their results reach the store; nothing
		// else needs flushing — store writes are synced at Put time.
		svc.Close()
	}
	fmt.Println("a4serve: drained, exiting")
}

// runLoadgen is a deprecation shim over internal/loadgen's closed-loop
// generator, kept so existing scripts invoking `a4serve -loadgen` keep
// working. New work should use cmd/a4load, which adds open-loop arrival
// schedules, per-class latency histograms, and saturation search.
func runLoadgen(url string, n, clients int, freshFrac float64) int {
	fmt.Fprintln(os.Stderr, "a4serve: -loadgen is deprecated; use the a4load command")
	return loadgen.ClosedLoop(loadgen.ClosedConfig{
		URL: url, N: n, Clients: clients, FreshFrac: freshFrac,
		Out: os.Stdout, Errw: os.Stderr,
	})
}

// runSweepgen is the matching shim for `a4serve -loadgen -sweepn`.
func runSweepgen(url string, n int) int {
	fmt.Fprintln(os.Stderr, "a4serve: -loadgen -sweepn is deprecated; use the a4load command")
	return loadgen.SweepOnce(url, n, os.Stdout, os.Stderr)
}
