// Command a4serve serves scenario runs over HTTP: the simulation as a
// service. Clients POST declarative scenario specs (internal/scenario) and
// get deterministic reports back; identical specs are served from a
// content-addressed result cache, and concurrent duplicates coalesce onto
// one execution, so a fleet of clients asking popular questions is mostly
// served without simulating anything.
//
// Endpoints (identical in single-node and cluster mode):
//
//	POST /run          spec JSON -> {hash, cached, report}
//	POST /extend       {hash, measure_sec} -> {hash, cached, report}: re-run
//	                   a previously served spec with a longer measurement
//	                   window, continuing from its cached warm snapshot
//	                   instead of restarting (404 for unknown hashes)
//	POST /sweep        {spec, axes: [{param, values|managers}]} -> {points}
//	GET  /result/<hash>  cached report by content address (404 if evicted)
//	GET  /series/<hash>  the run's per-second telemetry series (404 for
//	                   unknown hashes and for runs whose spec carried no
//	                   series block); /extend's result serves its own,
//	                   longer series under the extended run's hash
//	GET  /healthz      liveness
//	GET  /stats        cache hit/miss, dedup, execution, snapshot counters;
//	                   in cluster mode the counters are summed across
//	                   backends with a per-backend breakdown attached
//
// Usage:
//
//	a4serve -addr :8044 -workers 8 -cache 512
//	a4serve -addr :8050 -cluster "http://n1:8044,http://n2:8044"
//	a4serve -loadgen -url http://localhost:8044 -n 200 -clients 8 -fresh 0.25
//	a4serve -loadgen -url http://localhost:8050 -sweepn 24
//
// With -cluster the process serves as a coordinator: it executes nothing
// itself, sharding requests over the listed backends by the spec's prefix
// hash (internal/cluster) so same-prefix runs reuse one backend's warm
// snapshots. Clients cannot tell the difference.
//
// The -loadgen mode hammers a running daemon (or coordinator) with a mix
// of repeated and fresh specs and prints the served throughput
// (service_cached_rps); -sweepn instead POSTs one seed-axis sweep and
// prints cluster_sweep_rps (grid points per second of wall time). Both
// metrics land in scripts/bench.sh's BENCH_<date>.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"a4sim/internal/cluster"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
	"a4sim/internal/stats"
	"a4sim/internal/store"
)

// loadgenClient bounds every loadgen request so a wedged daemon cannot
// hang the generator (and scripts/bench.sh behind it) forever.
var loadgenClient = &http.Client{Timeout: 60 * time.Second}

func main() {
	addr := flag.String("addr", ":8044", "listen address")
	workers := flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 256, "result cache capacity in entries")
	storeDir := flag.String("store", "", "durable object store directory: spill results and warm snapshots to disk and rehydrate them on restart")
	clusterURLs := flag.String("cluster", "", "comma-separated backend URLs: serve as cluster coordinator instead of executing locally")
	revive := flag.Duration("revive", 0, "cluster: how long a down backend stays quarantined before revival probes (0 = default)")
	loadgen := flag.Bool("loadgen", false, "run as load generator against -url instead of serving")
	url := flag.String("url", "http://localhost:8044", "loadgen: target daemon or coordinator")
	n := flag.Int("n", 200, "loadgen: total requests")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	fresh := flag.Float64("fresh", 0.25, "loadgen: fraction of requests with never-seen specs")
	sweepN := flag.Int("sweepn", 0, "loadgen: POST one seed-axis sweep of this many points and print cluster_sweep_rps instead of hammering /run")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose heap contents)")
	flag.Parse()

	if *loadgen {
		if *sweepN > 0 {
			os.Exit(runSweepgen(*url, *sweepN))
		}
		os.Exit(runLoadgen(*url, *n, *clients, *fresh))
	}

	// healthy gates /healthz: flipped to false at the start of a graceful
	// shutdown so probes and coordinators stop routing here while in-flight
	// jobs drain.
	var healthy atomic.Bool
	healthy.Store(true)

	var mux *http.ServeMux
	var svc *service.Service
	if *clusterURLs != "" {
		backends := strings.Split(*clusterURLs, ",")
		coord, err := cluster.New(cluster.Config{Backends: backends, ReviveAfter: *revive})
		if err != nil {
			fmt.Fprintln(os.Stderr, "a4serve:", err)
			os.Exit(1)
		}
		mux = service.NewMux(coord, func() any { return coord.Stats() }, healthy.Load)
		fmt.Printf("a4serve: coordinating %d backends on %s (%s)\n",
			len(backends), *addr, strings.Join(backends, ", "))
	} else {
		cfg := service.Config{Workers: *workers, CacheEntries: *cacheEntries}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "a4serve:", err)
				os.Exit(1)
			}
			cfg.Store = st
			fmt.Printf("a4serve: durable store %s (%d objects)\n", st.Dir(), st.Len())
		}
		svc = service.New(cfg)
		mux = service.NewMux(svc, func() any { return svc.Stats() }, healthy.Load)
		fmt.Printf("a4serve: listening on %s (workers=%d cache=%d mixes=%v)\n",
			*addr, svc.Stats().Workers, *cacheEntries, scenario.BuiltinMixes())
	}
	if *pprofOn {
		// Mounted on our mux, not http.DefaultServeMux, so the flag really
		// gates the endpoints.
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		fmt.Println("a4serve: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Bound idle and slow-loris connections. No WriteTimeout: /run and
		// /sweep responses legitimately wait on multi-minute executions.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: on SIGINT/SIGTERM flip /healthz to 503, then drain —
	// Shutdown waits for in-flight requests (and the executions behind them)
	// before closing the listener, so accepted work is answered and every
	// completed run has already been durably spilled by the worker that ran
	// it. A second signal aborts the wait for operators in a hurry.
	go func() {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		healthy.Store(false)
		fmt.Println("a4serve: draining (signal again to abort)")
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "a4serve:", err)
		os.Exit(1)
	}
	if svc != nil {
		// Let queued jobs finish so their results reach the store; nothing
		// else needs flushing — store writes are synced at Put time.
		svc.Close()
	}
	fmt.Println("a4serve: drained, exiting")
}

// runLoadgen drives a daemon with a mix of repeated and fresh specs. The
// repeated ones model a fleet asking popular questions (cache-served); the
// fresh ones vary the seed so they must execute. Prints overall and
// cache-served throughput in a bench.sh-parseable form. Against a cluster
// coordinator the /stats deltas are fleet-wide sums, so the same arithmetic
// holds unchanged.
func runLoadgen(url string, n, clients int, freshFrac float64) int {
	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	// The popular set: a few manager variants of the tiny mix.
	popular := [][]byte{}
	for _, mgr := range []string{"a4-d", "default", "isolate"} {
		sp := base.Clone()
		sp.Manager = mgr
		data, _ := json.Marshal(sp)
		popular = append(popular, data)
	}
	if freshFrac < 0 {
		freshFrac = 0
	}
	if freshFrac > 1 {
		freshFrac = 1
	}
	// isFresh schedules ~freshFrac of requests as never-seen specs with an
	// error-accumulator spread (exact for any fraction, deterministic in i).
	isFresh := func(i int) bool {
		return int(float64(i+1)*freshFrac) > int(float64(i)*freshFrac)
	}

	statsBefore, backends, err := fetchStats(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: daemon not reachable:", err)
		return 1
	}
	if backends > 0 {
		fmt.Printf("loadgen: target is a coordinator over %d backends\n", backends)
	}

	// Salt fresh specs with a per-run nonce so repeated loadgen runs against
	// a long-lived daemon really execute their fresh share instead of
	// re-hitting the previous run's entries.
	nonce := uint64(time.Now().UnixNano())

	var (
		next     atomic.Int64
		okCount  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	// Per-client request-latency histograms, merged after the run: mergeable
	// HDR buckets mean no cross-client synchronization on the hot path.
	hists := make([]*stats.Histogram, clients)
	for c := range hists {
		hists[c] = stats.NewHistogram()
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(h *stats.Histogram) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body := popular[i%len(popular)]
				if isFresh(i) {
					sp := base.Clone()
					sp.Name = fmt.Sprintf("fresh-%d-%d", nonce, i)
					sp.Params.Seed = nonce + uint64(i)
					body, _ = json.Marshal(sp)
				}
				t0 := time.Now()
				resp, err := loadgenClient.Post(url+"/run", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				h.Observe(time.Since(t0).Microseconds())
				if resp.StatusCode == http.StatusOK {
					okCount.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}(hists[c])
	}
	wg.Wait()
	elapsed := time.Since(start)
	lat := stats.NewHistogram()
	for _, h := range hists {
		lat.Merge(h)
	}

	statsAfter, _, err := fetchStats(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: stats after run:", err)
		return 1
	}
	hits := statsAfter.Hits - statsBefore.Hits
	execs := statsAfter.Executions - statsBefore.Executions
	fmt.Printf("loadgen: %d ok, %d failed in %.2fs (%d clients)\n",
		okCount.Load(), failures.Load(), elapsed.Seconds(), clients)
	fmt.Printf("loadgen: cache hits=%d dedups=%d executions=%d\n",
		hits, statsAfter.Dedups-statsBefore.Dedups, execs)
	fmt.Printf("service_total_rps=%.2f\n", float64(okCount.Load())/elapsed.Seconds())
	// The headline metric counts only cache-served requests, so it tracks
	// the serving path rather than simulation speed.
	fmt.Printf("service_cached_rps=%.2f\n", float64(hits)/elapsed.Seconds())
	if lat.Count() > 0 {
		// End-to-end request latency as the client saw it (mixed population:
		// cache hits and fresh executions together). Informational in
		// bench.sh, not gated.
		fmt.Printf("loadgen_p50_ms=%.3f\n", lat.Quantile(0.50)/1000)
		fmt.Printf("loadgen_p99_ms=%.3f\n", lat.Quantile(0.99)/1000)
	}
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// runSweepgen POSTs one seed-axis sweep of n points and prints the
// end-to-end grid throughput. Distinct seeds give every point a distinct
// prefix, so against a coordinator the grid spreads across the whole fleet
// — cluster_sweep_rps is the multi-backend scaling metric bench.sh records.
func runSweepgen(url string, n int) int {
	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepgen:", err)
		return 1
	}
	seeds := make([]float64, n)
	for i := range seeds {
		seeds[i] = float64(i + 1)
	}
	req := map[string]any{
		"spec": base,
		"axes": []map[string]any{{"param": "seed", "values": seeds}},
	}
	body, _ := json.Marshal(req)

	_, backends, err := fetchStats(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepgen: daemon not reachable:", err)
		return 1
	}
	if backends > 0 {
		fmt.Printf("sweepgen: target is a coordinator over %d backends\n", backends)
	}

	// Sweeps simulate for real, so allow far more than the loadgen timeout.
	sweepClient := &http.Client{Timeout: 30 * time.Minute}
	start := time.Now()
	resp, err := sweepClient.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepgen:", err)
		return 1
	}
	defer resp.Body.Close()
	var out struct {
		Points []json.RawMessage `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "sweepgen: status %d (decode err: %v)\n", resp.StatusCode, err)
		return 1
	}
	elapsed := time.Since(start)
	if len(out.Points) != n {
		fmt.Fprintf(os.Stderr, "sweepgen: got %d points, want %d\n", len(out.Points), n)
		return 1
	}
	fmt.Printf("sweepgen: %d points in %.2fs\n", n, elapsed.Seconds())
	fmt.Printf("cluster_sweep_rps=%.2f\n", float64(n)/elapsed.Seconds())
	return 0
}

// fetchStats reads /stats, returning the (possibly fleet-summed) counters
// and, when the target is a coordinator, its backend count.
func fetchStats(url string) (service.Stats, int, error) {
	var st struct {
		service.Stats
		Backends []json.RawMessage `json:"backends"`
	}
	resp, err := loadgenClient.Get(url + "/stats")
	if err != nil {
		return service.Stats{}, 0, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st.Stats, len(st.Backends), err
}
