package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/stats"
)

// TestSeriesEndpoint drives the telemetry plane over HTTP: a series-enabled
// /run exposes GET /series/<hash> with the same canonical bytes the report
// embeds, a series-free run 404s, and /extend's result serves its own
// (longer) series.
func TestSeriesEndpoint(t *testing.T) {
	srv := testServer(t)

	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	sp.Series = &scenario.SeriesSpec{Metrics: []string{"core", "devices"}}
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run status %d", resp.StatusCode)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}

	get := func(hash string) (int, []byte) {
		r, err := http.Get(srv.URL + "/series/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, data
	}

	status, data := get(rr.Hash)
	if status != http.StatusOK {
		t.Fatalf("GET /series status %d: %s", status, data)
	}
	ser, err := stats.DecodeSeries(data)
	if err != nil {
		t.Fatalf("served series does not decode: %v", err)
	}
	if ser.Len() != 1 { // tiny mix measures 1 s
		t.Errorf("series rows = %d, want 1", ser.Len())
	}
	if ser.Column("wl.dpdk-t.ipc") == nil || ser.Column("nic.ring_depth") == nil {
		t.Errorf("selected column groups missing from %v", ser.Names())
	}
	if ser.Column("wl.dpdk-t.llc_lines") != nil {
		t.Error("unselected occupancy group present")
	}

	// The embedded report series and the /series payload are the same bytes.
	var rep scenario.Report
	if err := json.Unmarshal(rr.Report, &rep); err != nil {
		t.Fatal(err)
	}
	embedded, err := rep.Series.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(embedded, data) {
		t.Error("GET /series bytes differ from the report's embedded series")
	}

	if status, _ := get("0000000000000000"); status != http.StatusNotFound {
		t.Errorf("unknown hash status %d, want 404", status)
	}

	// A series-free run must not expose a series.
	plainResp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(tinyBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer plainResp.Body.Close()
	var plain runResponse
	if err := json.NewDecoder(plainResp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if status, _ := get(plain.Hash); status != http.StatusNotFound {
		t.Errorf("series-free run: GET /series status %d, want 404", status)
	}

	// /extend returns a new hash whose series covers the longer window.
	extBody, _ := json.Marshal(map[string]any{"hash": rr.Hash, "measure_sec": 3})
	extResp, err := http.Post(srv.URL+"/extend", "application/json", bytes.NewReader(extBody))
	if err != nil {
		t.Fatal(err)
	}
	defer extResp.Body.Close()
	if extResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /extend status %d", extResp.StatusCode)
	}
	var ext runResponse
	if err := json.NewDecoder(extResp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	status, data = get(ext.Hash)
	if status != http.StatusOK {
		t.Fatalf("GET /series for extended run: status %d", status)
	}
	extSer, err := stats.DecodeSeries(data)
	if err != nil {
		t.Fatal(err)
	}
	if extSer.Len() != 3 {
		t.Errorf("extended series rows = %d, want 3", extSer.Len())
	}
}
