package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// TestHealthzGatesOnDraining pins the shutdown handshake: the instant the
// healthy gate flips, /healthz answers 503 (so probes and coordinators stop
// routing here) while already-accepted endpoints keep serving until the
// listener closes.
func TestHealthzGatesOnDraining(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	svc := service.New(service.Config{Workers: 1, CacheEntries: 16})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, healthy.Load))
	t.Cleanup(srv.Close)

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthy /healthz status %d, want 200", code)
	}

	healthy.Store(false)
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status %d, want 503", code)
	}
	// The serving surface is still up while the drain runs.
	if code := get("/stats"); code != http.StatusOK {
		t.Errorf("draining /stats status %d, want 200", code)
	}
}

// TestSnapshotEndpointsShipWarmState round-trips a warm snapshot between
// two daemons over the HTTP surface the cluster handoff uses: export from
// the node that ran the spec, import on a cold node, and show the cold node
// forks it — answering the longer run byte-identically to a from-scratch
// execution.
func TestSnapshotEndpointsShipWarmState(t *testing.T) {
	a := testServer(t)
	b := testServer(t)

	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	body, _ := json.Marshal(sp)
	if resp, err := http.Post(a.URL+"/run", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /run status %d", resp.StatusCode)
		}
	}
	prefix, err := sp.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}

	// Unknown prefixes are a clean 404 on both verbs' shared path.
	resp, err := http.Get(b.URL + "/snapshot/" + prefix)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold node GET /snapshot status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(a.URL + "/snapshot/" + prefix)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm node GET /snapshot status %d (err %v)", resp.StatusCode, err)
	}

	// Corrupt bytes are rejected with 422; the intact export installs.
	bad := append([]byte(nil), snap...)
	bad[len(bad)-1] ^= 0x01
	resp, err = http.Post(b.URL+"/snapshot/"+prefix, "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("corrupt POST /snapshot status %d, want 422", resp.StatusCode)
	}
	resp, err = http.Post(b.URL+"/snapshot/"+prefix, "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("intact POST /snapshot status %d, want 200", resp.StatusCode)
	}

	// The cold node now serves a longer same-prefix run from the shipped
	// warm state, byte-identical to simulating it from scratch.
	long := sp.Clone()
	long.MeasureSec++
	longBody, _ := json.Marshal(long)
	resp, err = http.Post(b.URL+"/run", "application/json", bytes.NewReader(longBody))
	if err != nil {
		t.Fatal(err)
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rep, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.Encode()
	if !bytes.Equal(rr.Report, want) {
		t.Fatal("run continued from a shipped snapshot differs from a fresh run")
	}

	resp, err = http.Get(b.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.SnapshotForks != 1 {
		t.Errorf("cold node snapshot_forks = %d, want 1", st.SnapshotForks)
	}
}
