// Quickstart: build a tiny co-location scenario, run it under the Default
// model and under the full A4 controller, and print the difference.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

func runOnce(mgr harness.ManagerSpec) *harness.Result {
	// A scenario is a simulated Skylake-SP server: 18 cores, a non-inclusive
	// 11-way LLC with 2 DCA ways and 2 inclusive ways, a 100 Gbps NIC and a
	// 13 GB/s NVMe RAID-0 array.
	s := harness.NewScenario(harness.DefaultParams())

	// A latency-sensitive packet processor (high priority)...
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	// ...a storage-heavy batch job (low priority) whose 128 KB random reads
	// flood the DCA ways...
	s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
	// ...and a cache-sensitive compute job (high priority).
	s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)

	// Attach the LLC manager and run: warm up, then measure.
	s.Start(mgr)
	return s.Run(14, 4)
}

func main() {
	def := runOnce(harness.Default())
	a4 := runOnce(harness.A4(core.VariantD))

	fmt.Println("metric                     default        a4-d")
	fmt.Printf("dpdk-t avg latency   %9.1f us %9.1f us\n",
		def.W("dpdk-t").AvgLatUs, a4.W("dpdk-t").AvgLatUs)
	fmt.Printf("dpdk-t p99 latency   %9.1f us %9.1f us\n",
		def.W("dpdk-t").P99LatUs, a4.W("dpdk-t").P99LatUs)
	fmt.Printf("xmem LLC hit rate    %12.3f %12.3f\n",
		def.W("xmem").LLCHitRate, a4.W("xmem").LLCHitRate)
	fmt.Printf("fio throughput       %9.2f GB/s %6.2f GB/s\n",
		def.W("fio").IOReadGBps, a4.W("fio").IOReadGBps)
	fmt.Printf("memory bandwidth     %9.2f GB/s %6.2f GB/s\n",
		def.MemReadGBps+def.MemWriteGBps, a4.MemReadGBps+a4.MemWriteGBps)
	fmt.Println("\nA4 protects the network and compute HPWs (lower latency, higher")
	fmt.Println("hit rate) without costing the storage LPW any throughput.")
}
