// Quickstart: declare a tiny co-location scenario as a JSON spec, run it
// under the Default model and under the full A4 controller, and print the
// difference. The same JSON can be POSTed verbatim to a running a4serve
// daemon (`go run ./cmd/a4serve`), which will cache the report by the
// spec's content hash.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"a4sim/internal/scenario"
)

// The scenario: a simulated Skylake-SP server (18 cores, a non-inclusive
// 11-way LLC with 2 DCA ways and 2 inclusive ways, a 100 Gbps NIC and a
// 13 GB/s NVMe RAID-0 array) co-locating a latency-sensitive packet
// processor, a storage-heavy batch job whose 128 KB random reads flood the
// DCA ways, and a cache-sensitive compute job.
const specJSON = `{
  "name": "quickstart",
  "manager": "default",
  "warmup_sec": 14,
  "measure_sec": 4,
  "workloads": [
    {"kind": "dpdk", "name": "dpdk-t", "cores": [0, 1, 2, 3], "priority": "hpw", "touch": true},
    {"kind": "fio",  "name": "fio",    "cores": [4, 5, 6, 7], "priority": "lpw", "block_kb": 128, "queue_depth": 32},
    {"kind": "xmem", "name": "xmem",   "cores": [8, 9],       "priority": "hpw", "ws_kb": 4096, "pattern": "sequential"}
  ]
}`

func runOnce(manager string) *scenario.Report {
	sp, err := scenario.Parse([]byte(specJSON))
	if err != nil {
		panic(err)
	}
	sp.Manager = manager
	rep, err := sp.Run()
	if err != nil {
		panic(err)
	}
	return rep
}

func main() {
	def := runOnce("default")
	a4 := runOnce("a4-d")

	fmt.Println("metric                     default        a4-d")
	fmt.Printf("dpdk-t avg latency   %9.1f us %9.1f us\n",
		def.W("dpdk-t").AvgLatUs, a4.W("dpdk-t").AvgLatUs)
	fmt.Printf("dpdk-t p99 latency   %9.1f us %9.1f us\n",
		def.W("dpdk-t").P99LatUs, a4.W("dpdk-t").P99LatUs)
	fmt.Printf("xmem LLC hit rate    %12.3f %12.3f\n",
		def.W("xmem").LLCHitRate, a4.W("xmem").LLCHitRate)
	fmt.Printf("fio throughput       %9.2f GB/s %6.2f GB/s\n",
		def.W("fio").IOReadGBps, a4.W("fio").IOReadGBps)
	fmt.Printf("memory bandwidth     %9.2f GB/s %6.2f GB/s\n",
		def.MemReadGBps+def.MemWriteGBps, a4.MemReadGBps+a4.MemWriteGBps)
	fmt.Println("\nA4 protects the network and compute HPWs (lower latency, higher")
	fmt.Println("hit rate) without costing the storage LPW any throughput.")
}
