// Colocate: run the paper's HPW-heavy real-world mix (Table 2 / Fig. 13a)
// under every LLC management scheme and print the per-workload relative
// performance table, including which workloads A4 classifies as antagonists.
//
// Run with:
//
//	go run ./examples/colocate
package main

import (
	"fmt"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

var names = []string{
	"fastclick", "redis-s", "redis-c", "x264", "parest", "xalancbmk", "lbm",
	"ffsb-h", "omnetpp", "exchange2", "bwaves",
}

func build(mgr harness.ManagerSpec) (*harness.Scenario, *harness.Result) {
	s := harness.NewScenario(harness.DefaultParams())
	s.AddFastclick([]int{0, 1, 2, 3}, workload.HPW)
	s.AddRedisPair(4, 5, workload.HPW, workload.HPW)
	s.AddSPEC("x264", 6, workload.HPW)
	s.AddSPEC("parest", 7, workload.HPW)
	s.AddSPEC("xalancbmk", 8, workload.HPW)
	s.AddSPEC("lbm", 9, workload.HPW)
	s.AddFFSB("ffsb-h", true, []int{10, 11, 12}, workload.LPW)
	s.AddSPEC("omnetpp", 13, workload.LPW)
	s.AddSPEC("exchange2", 14, workload.LPW)
	s.AddSPEC("bwaves", 15, workload.LPW)
	s.Start(mgr)
	res := s.Run(14, 4)
	return s, res
}

// perf extracts the §7.2 performance metric for one workload.
func perf(r *harness.Result, name string) float64 {
	w := r.W(name)
	if w.Class == workload.ClassNetwork && w.AvgLatUs > 0 {
		return 1e6 / w.AvgLatUs // throughput = inverse latency per request
	}
	return w.ProgressRate
}

func main() {
	schemes := []harness.ManagerSpec{
		harness.Default(),
		harness.Isolate(),
		harness.A4(core.VariantD),
	}
	base := map[string]float64{}
	fmt.Printf("%-11s", "workload")
	for _, m := range schemes {
		fmt.Printf(" %9s", m.Name())
	}
	fmt.Println(" (relative to default)")

	rows := map[string][]float64{}
	var antagonists []string
	for i, mgr := range schemes {
		sc, res := build(mgr)
		for _, n := range names {
			v := perf(res, n)
			if i == 0 {
				base[n] = v
			}
			if b := base[n]; b > 0 {
				v /= b
			}
			rows[n] = append(rows[n], v)
		}
		if sc.Controller != nil {
			for _, w := range sc.Workloads {
				if sc.Controller.IsAntagonist(w.ID()) {
					antagonists = append(antagonists, w.Name())
				}
			}
		}
	}
	for _, n := range names {
		fmt.Printf("%-11s", n)
		for _, v := range rows[n] {
			fmt.Printf(" %9.3f", v)
		}
		fmt.Println()
	}
	fmt.Printf("\nA4 detected antagonists: %v\n", antagonists)
	fmt.Println("(the paper's Fig. 13a detects the same set: FFSB-H, lbm, bwaves)")
}
