// Colocate: run the paper's HPW-heavy real-world mix (Table 2 / Fig. 13a)
// under every LLC management scheme and print the per-workload relative
// performance table, including which workloads A4 classifies as antagonists.
// The mix is the builtin "hpw-heavy" scenario spec; only the manager field
// changes between runs.
//
// Run with:
//
//	go run ./examples/colocate
package main

import (
	"fmt"

	"a4sim/internal/harness"
	"a4sim/internal/scenario"
	"a4sim/internal/workload"
)

var names = []string{
	"fastclick", "redis-s", "redis-c", "x264", "parest", "xalancbmk", "lbm",
	"ffsb-h", "omnetpp", "exchange2", "bwaves",
}

func build(manager string) (*harness.Scenario, *harness.Result) {
	sp, err := scenario.BuiltinMix("hpw-heavy")
	if err != nil {
		panic(err)
	}
	sp.Manager = manager
	s, err := sp.Start()
	if err != nil {
		panic(err)
	}
	res := s.Run(sp.WarmupSec, sp.MeasureSec)
	return s, res
}

// perf extracts the §7.2 performance metric for one workload.
func perf(r *harness.Result, name string) float64 {
	w := r.W(name)
	if w.Class == workload.ClassNetwork && w.AvgLatUs > 0 {
		return 1e6 / w.AvgLatUs // throughput = inverse latency per request
	}
	return w.ProgressRate
}

func main() {
	schemes := []string{"default", "isolate", "a4-d"}
	base := map[string]float64{}
	fmt.Printf("%-11s", "workload")
	for _, m := range schemes {
		fmt.Printf(" %9s", m)
	}
	fmt.Println(" (relative to default)")

	rows := map[string][]float64{}
	var antagonists []string
	for i, mgr := range schemes {
		sc, res := build(mgr)
		for _, n := range names {
			v := perf(res, n)
			if i == 0 {
				base[n] = v
			}
			if b := base[n]; b > 0 {
				v /= b
			}
			rows[n] = append(rows[n], v)
		}
		if sc.Controller != nil {
			for _, w := range sc.Workloads {
				if sc.Controller.IsAntagonist(w.ID()) {
					antagonists = append(antagonists, w.Name())
				}
			}
		}
	}
	for _, n := range names {
		fmt.Printf("%-11s", n)
		for _, v := range rows[n] {
			fmt.Printf(" %9.3f", v)
		}
		fmt.Println()
	}
	fmt.Printf("\nA4 detected antagonists: %v\n", antagonists)
	fmt.Println("(the paper's Fig. 13a detects the same set: FFSB-H, lbm, bwaves)")
}
