// Waysweep: reproduce the paper's §3.1 discovery experiment interactively.
// It slides a cache-sensitive workload's two CAT ways across the LLC while
// a DPDK-style packet processor holds way[5:6], revealing the three
// contention regions: DCA ways (latent contention), the DPDK ways (DMA
// bloat), and the inclusive ways (hidden directory contention). The
// scenario comes from a declarative spec; the CAT programming stays manual,
// exactly like intel-cmt-cat on the real box.
//
// Run with:
//
//	go run ./examples/waysweep
package main

import (
	"fmt"

	"a4sim/internal/cache"
	"a4sim/internal/scenario"
)

var (
	dpdkCores = []int{0, 1, 2, 3}
	xmemCores = []int{4, 5}
)

func sweepPoint(lo int, touch bool) float64 {
	sp := &scenario.Spec{
		Name:    "waysweep",
		Manager: "default",
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk", Cores: dpdkCores, Priority: "hpw", Touch: touch},
			{Kind: "xmem", Name: "xmem", Cores: xmemCores, Priority: "hpw", WSKB: 4 << 10, Pattern: "sequential"},
		},
	}
	s, err := sp.Start()
	if err != nil {
		panic(err)
	}

	// Manual CAT programming, exactly like intel-cmt-cat on the real box.
	must(s.H.CAT().SetMask(1, cache.MaskRange(5, 6)))
	for _, c := range dpdkCores {
		must(s.H.CAT().Associate(c, 1))
	}
	must(s.H.CAT().SetMask(2, cache.MaskRange(lo, lo+1)))
	for _, c := range xmemCores {
		must(s.H.CAT().Associate(c, 2))
	}

	res := s.Run(2, 3)
	return res.W("xmem").LLCMissRate
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	fmt.Println("X-Mem LLC miss rate by way position (DPDK at way[5:6]):")
	fmt.Println("ways      DPDK-NT   DPDK-T   region")
	regions := map[int]string{
		0: "DCA ways (latent contention)",
		5: "DPDK's ways (DMA bloat)",
		9: "inclusive ways (directory contention)",
	}
	for lo := 0; lo <= 9; lo++ {
		nt := sweepPoint(lo, false)
		tt := sweepPoint(lo, true)
		tag := regions[lo]
		fmt.Printf("[%d:%d]  %8.3f %8.3f   %s\n", lo, lo+1, nt, tt, tag)
	}
	fmt.Println("\nThe [9:10] column shows the paper's hidden directory contention:")
	fmt.Println("it appears only when the network workload touches its packets.")
}
