// Storagenoise: demonstrate the paper's second discovery (§3.2) and its fix
// (§4.2). A DPDK packet processor shares the machine with a FIO storage
// scan; as the storage block size grows, DMA leak floods the DCA ways and
// network latency climbs. Selectively disabling DCA for the SSD port — the
// hidden perfctrlsts_0 knob — restores network latency without costing the
// storage workload anything. The scenario comes from a declarative spec;
// the per-port DCA and CAT programming stay manual.
//
// Run with:
//
//	go run ./examples/storagenoise
package main

import (
	"fmt"

	"a4sim/internal/cache"
	"a4sim/internal/harness"
	"a4sim/internal/scenario"
)

var (
	dpdkCores = []int{0, 1, 2, 3}
	fioCores  = []int{4, 5, 6, 7}
)

func run(blockKB int, ssdDCA bool) (netUs, storageGBps float64) {
	sp := &scenario.Spec{
		Name:    "storagenoise",
		Manager: "default",
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: dpdkCores, Priority: "hpw", Touch: true},
			{Kind: "fio", Name: "fio", Cores: fioCores, Priority: "lpw", BlockKB: blockKB, QueueDepth: 32},
		},
	}
	s, err := sp.Start()
	if err != nil {
		panic(err)
	}

	// The hidden knob: per-port DCA disable (perfctrlsts_0).
	s.H.PCIe().SetPortDCA(harness.SSDPort, ssdDCA)

	must(s.H.CAT().SetMask(1, cache.MaskRange(2, 3)))
	for _, c := range fioCores {
		must(s.H.CAT().Associate(c, 1))
	}
	must(s.H.CAT().SetMask(2, cache.MaskRange(4, 5)))
	for _, c := range dpdkCores {
		must(s.H.CAT().Associate(c, 2))
	}

	res := s.Run(2, 3)
	return res.W("dpdk-t").AvgLatUs, res.W("fio").IOReadGBps
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	fmt.Println("block    [DCA on] net lat  storage TP   [SSD-DCA off] net lat  storage TP")
	for _, kb := range []int{16, 64, 128, 512, 2048} {
		onLat, onTP := run(kb, true)
		offLat, offTP := run(kb, false)
		fmt.Printf("%4dKB %16.1fus %8.2fGB/s %19.1fus %9.2fGB/s\n",
			kb, onLat, onTP, offLat, offTP)
	}
	fmt.Println("\nDisabling DCA for the SSD port only (the hidden knob) removes the")
	fmt.Println("network latency spike while storage throughput is unaffected —")
	fmt.Println("observations O2 and O4 of the paper.")
}
