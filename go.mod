module a4sim

go 1.22
