// Package hierarchy implements the cache-coherent access protocol of the
// simulated server: CPU loads/stores through private MLCs backed by the
// non-inclusive LLC, and device DMA through DDIO. All of the paper's
// contention mechanisms are emergent from the placement rules implemented
// here:
//
//	(latent contention)    DMA write-allocates are confined to DCA ways and
//	                       evict whatever CAT placed there;
//	(DMA leak)             an I/O line evicted before any core read;
//	(directory contention) O1: a DMA-written LLC-exclusive line migrates to
//	                       the inclusive ways on first core read;
//	(DMA bloat)            consumed I/O lines evicted from an MLC allocate
//	                       into the evicting core's CAT ways.
package hierarchy

import (
	"a4sim/internal/cache"
	"a4sim/internal/cat"
	"a4sim/internal/directory"
	"a4sim/internal/llc"
	"a4sim/internal/mem"
	"a4sim/internal/mlc"
	"a4sim/internal/pcie"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
)

// Level says where an access was served.
type Level uint8

// Access service levels.
const (
	LevelMLC Level = iota
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelMLC:
		return "mlc"
	case LevelLLC:
		return "llc"
	default:
		return "mem"
	}
}

// Result describes one CPU access.
type Result struct {
	Level  Level
	Cycles int
}

// Config assembles a hierarchy.
type Config struct {
	NumCores int
	LLC      llc.Geometry
	MLC      mlc.Geometry
	// DirWays is the extended-directory associativity (12 on Skylake-SP).
	DirWays int
	// PortNames configures the PCIe ports, e.g. "nic0", "ssd0".
	PortNames []string
	// LLCVictimRandPct approximates the LLC's quad-age PLRU: this percentage
	// of victim selections are uniform over the masked ways instead of LRU.
	LLCVictimRandPct int
	// MigrationStickPct is the probability (0-100) that a consumed DMA line
	// remains LLC-resident in an inclusive way (O1 migration, feeding the
	// directory contention of §3.1) rather than being promoted out of the
	// LLC entirely (whose later MLC eviction re-allocates under the CAT
	// mask, i.e. DMA bloat). On silicon the split is decided by replacement
	// age races between the MLC and the inclusive ways; Fig. 3b shows both
	// outcomes co-occur, and 50/50 reproduces that coexistence.
	MigrationStickPct int
}

// SkylakeConfig mirrors the paper's Xeon Gold 6140 testbed: 18 cores, 1 MiB
// MLCs, 11-way LLC with 2 DCA and 2 inclusive ways, one NIC port and one
// SSD (RAID HBA) port.
func SkylakeConfig() Config {
	return Config{
		NumCores:          18,
		LLC:               llc.SkylakeGeometry(),
		MLC:               mlc.SkylakeGeometry(),
		DirWays:           12,
		PortNames:         []string{"nic0", "ssd0"},
		LLCVictimRandPct:  10,
		MigrationStickPct: 50,
	}
}

// TestConfig returns a scaled-down configuration for unit tests.
func TestConfig() Config {
	return Config{
		NumCores:  4,
		LLC:       llc.TestGeometry(),
		MLC:       mlc.TestGeometry(),
		DirWays:   12,
		PortNames: []string{"nic0", "ssd0"},
	}
}

// Hierarchy is the full memory system.
type Hierarchy struct {
	cfg    Config
	llc    *llc.LLC
	mlcs   []*mlc.MLC
	dir    *directory.Directory
	mem    *mem.Controller
	cat    *cat.Allocator
	pcie   *pcie.Complex
	fabric *pcm.Fabric
	rng    uint64 // xorshift state for the migration race
}

// New builds the hierarchy. The fabric must outlive it.
func New(cfg Config, fabric *pcm.Fabric) *Hierarchy {
	h := &Hierarchy{
		cfg:    cfg,
		llc:    llc.New(cfg.LLC),
		dir:    directory.New(cfg.LLC.Sets, cfg.DirWays),
		mem:    mem.New(),
		cat:    cat.New(cfg.NumCores, cfg.LLC.Ways),
		pcie:   pcie.NewComplex(cfg.PortNames...),
		fabric: fabric,
		rng:    0xA4A4A4A4DEADBEEF,
	}
	h.llc.Array().SetVictimRandomness(cfg.LLCVictimRandPct, 0x5EEDCAFE)
	for c := 0; c < cfg.NumCores; c++ {
		h.mlcs = append(h.mlcs, mlc.New(cfg.MLC, int16(c)))
	}
	return h
}

// Fork returns an independent deep copy of the whole memory system wired to
// the given (already cloned) counter fabric: LLC, MLCs, extended directory,
// memory controller, CAT state, PCIe complex, and the migration-race RNG.
// The copy shares no mutable state with the original, so forked simulations
// diverge freely while replaying identically from the fork point.
func (h *Hierarchy) Fork(fabric *pcm.Fabric) *Hierarchy {
	n := &Hierarchy{
		cfg:    h.cfg,
		llc:    h.llc.Clone(),
		dir:    h.dir.Clone(),
		mem:    h.mem.Clone(),
		cat:    h.cat.Clone(),
		pcie:   h.pcie.Clone(),
		fabric: fabric,
		rng:    h.rng,
	}
	n.cfg.PortNames = append([]string(nil), h.cfg.PortNames...)
	n.mlcs = make([]*mlc.MLC, len(h.mlcs))
	for i, m := range h.mlcs {
		n.mlcs[i] = m.Clone()
	}
	return n
}

// FastForward is the memory system's seam in the sampled-execution contract
// (sim.FastForwarder, called by the harness per skipped gap since the
// hierarchy is passive, not an engine actor). The model is steady-state
// freeze: cache and directory contents, occupancy counters, and the
// migration-race RNG are event-driven — they only change when an access
// flows through — so skipping accesses leaves them exactly as the last
// detailed window left them, which is the statistically correct state for
// the next window to resume from. The method exists so the contract is
// explicit and so stateful drift models can slot in here later without
// touching callers.
func (h *Hierarchy) FastForward(now, dt sim.Tick) {}

// Config returns the construction configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *llc.LLC { return h.llc }

// MLC returns core c's private cache.
func (h *Hierarchy) MLC(c int) *mlc.MLC { return h.mlcs[c] }

// Memory returns the memory controller.
func (h *Hierarchy) Memory() *mem.Controller { return h.mem }

// CAT returns the cache-allocation state.
func (h *Hierarchy) CAT() *cat.Allocator { return h.cat }

// PCIe returns the I/O complex.
func (h *Hierarchy) PCIe() *pcie.Complex { return h.pcie }

// Directory returns the extended directory.
func (h *Hierarchy) Directory() *directory.Directory { return h.dir }

// Fabric returns the counter fabric.
func (h *Hierarchy) Fabric() *pcm.Fabric { return h.fabric }

// CPURead performs a demand load by core on behalf of workload wl. ioData
// hints that the target is an I/O buffer, so lines filled from memory retain
// I/O provenance for bloat accounting even when DCA is off.
func (h *Hierarchy) CPURead(core int, wl pcm.WorkloadID, addr uint64, ioData bool) Result {
	c := h.fabric.C(wl)
	m := h.mlcs[core]
	if way := m.ProbeWay(addr); way >= 0 {
		m.Touch(addr, way)
		c.MLCHits.Inc()
		return Result{LevelMLC, mem.LatencyMLCHit}
	}
	c.MLCMisses.Inc()

	if line, way := h.llc.Probe(addr); way >= 0 {
		c.LLCHits.Inc()
		flags := cache.LineFlags(0)
		if line.IO() || ioData {
			flags |= cache.FlagIO | cache.FlagConsumed
		}
		switch {
		case line.IO() && !line.Inclusive():
			if h.chance(h.cfg.MigrationStickPct) {
				// O1 migration: the DMA-written LLC-exclusive line moves to
				// the inclusive ways and becomes shared LLC-inclusive.
				_, evicted := h.llc.MigrateToInclusive(addr)
				if evicted.Valid {
					c.DirEvictions.Inc()
					h.retire(evicted)
				}
			} else {
				// The replacement race went the other way: the LLC copy is
				// promoted out; the eventual MLC eviction will re-allocate
				// it under the CAT mask (DMA bloat).
				h.llc.InvalidateWay(addr, way)
			}
		case h.llc.RoleOf(way) == llc.RoleInclusive:
			// Already in an inclusive way: stays resident, becomes inclusive.
			set := cache.FlagInclusive
			if line.IO() {
				set |= cache.FlagConsumed
			}
			h.llc.MutateFlags(addr, way, set, 0)
			h.llc.Touch(addr, way)
		default:
			// Non-inclusive victim-cache behaviour: promotion to the MLC
			// removes the LLC copy.
			h.llc.InvalidateWay(addr, way)
		}
		h.fillMLC(core, wl, addr, flags)
		return Result{LevelLLC, mem.LatencyLLCHit}
	}

	// Directory snoop: another core's MLC may hold the line. The data is
	// forwarded cache-to-cache (on-chip latency) and ownership moves.
	if owner := h.dir.Lookup(addr); owner >= 0 && owner != core {
		old, ok := h.mlcs[owner].Invalidate(addr)
		h.dir.Untrack(addr)
		flags := cache.LineFlags(0)
		if ok {
			flags = old.Flags
		}
		if ioData {
			flags |= cache.FlagIO | cache.FlagConsumed
		}
		c.LLCHits.Inc() // served by the on-chip directory, not DRAM
		h.fillMLC(core, wl, addr, flags)
		return Result{LevelLLC, mem.LatencyLLCHit}
	}

	c.LLCMisses.Inc()
	h.mem.ReadLine()
	flags := cache.LineFlags(0)
	if ioData {
		flags = cache.FlagIO | cache.FlagConsumed
	}
	h.fillMLC(core, wl, addr, flags)
	return Result{LevelMem, mem.LatencyDRAM}
}

// CPUWrite performs a store (RFO + modify) by core on behalf of wl.
func (h *Hierarchy) CPUWrite(core int, wl pcm.WorkloadID, addr uint64, ioData bool) Result {
	c := h.fabric.C(wl)
	m := h.mlcs[core]
	if way := m.ProbeWay(addr); way >= 0 {
		m.Touch(addr, way)
		m.MutateFlags(addr, way, cache.FlagDirty, 0)
		c.MLCHits.Inc()
		return Result{LevelMLC, mem.LatencyMLCHit}
	}
	c.MLCMisses.Inc()

	level := LevelMem
	cycles := mem.LatencyDRAM
	// RFO invalidates the LLC copy: a modified line cannot stay shared.
	if _, ok := h.llc.Invalidate(addr); ok {
		c.LLCHits.Inc()
		level, cycles = LevelLLC, mem.LatencyLLCHit
	} else if owner := h.dir.Lookup(addr); owner >= 0 && owner != core {
		// RFO snoop: invalidate the remote MLC copy and take ownership.
		h.mlcs[owner].Invalidate(addr)
		h.dir.Untrack(addr)
		c.LLCHits.Inc()
		level, cycles = LevelLLC, mem.LatencyLLCHit
	} else {
		c.LLCMisses.Inc()
		h.mem.ReadLine() // RFO fill
	}
	flags := cache.FlagDirty
	if ioData {
		flags |= cache.FlagIO | cache.FlagConsumed
	}
	h.fillMLC(core, wl, addr, flags)
	return Result{level, cycles}
}

// fillMLC installs addr into core's MLC, tracking it in the extended
// directory and spilling the MLC victim into the LLC as a victim-cache
// insertion under the core's CAT mask.
func (h *Hierarchy) fillMLC(core int, wl pcm.WorkloadID, addr uint64, flags cache.LineFlags) {
	m := h.mlcs[core]
	victim := m.Fill(addr, int16(wl), -1, flags)

	// Extended-directory tracking; a full set back-invalidates its LRU line.
	if dv, evicted := h.dir.Track(addr, int16(core)); evicted {
		if int(dv.Core) < len(h.mlcs) {
			if old, ok := h.mlcs[dv.Core].Invalidate(dv.Addr); ok && old.Dirty() {
				h.mem.WriteLine()
			}
		}
	}

	if !victim.Valid {
		return
	}
	h.dir.Untrack(victim.Addr)

	// If the victim is still LLC-resident (an LLC-inclusive line), no new
	// allocation happens: the LLC copy simply stops being inclusive.
	if w := h.llc.ProbeWay(victim.Addr); w >= 0 {
		var set cache.LineFlags
		if victim.Dirty() {
			set = cache.FlagDirty
		}
		h.llc.MutateFlags(victim.Addr, w, set, cache.FlagInclusive)
		return
	}

	// Victim-cache insertion under the evicting core's CAT mask.
	mask := h.cat.MaskOf(core)
	ev, way := h.llc.InsertVictim(victim.Addr, mask, victim.Owner, victim.Port, victim.Flags)
	if way < 0 {
		// Empty mask (cannot happen through the CAT API); drop to memory.
		if victim.Dirty() {
			h.mem.WriteLine()
		}
		return
	}
	if victim.IO() && victim.Consumed() {
		if victim.Owner >= 0 {
			h.fabric.C(pcm.WorkloadID(victim.Owner)).DMABloats.Inc()
		}
	}
	if ev.Valid {
		h.retire(ev)
	}
}

// retire handles a line leaving the LLC: write back if dirty, count a DMA
// leak if it was unconsumed I/O data, and — for LLC-inclusive lines — back-
// invalidate the MLC copy, since the shared directory entry coupled to the
// inclusive way disappears with the line.
func (h *Hierarchy) retire(ev cache.Line) {
	if ev.IO() && !ev.Consumed() && ev.Owner >= 0 {
		h.fabric.C(pcm.WorkloadID(ev.Owner)).DMALeaks.Inc()
	}
	if ev.Inclusive() {
		h.invalidateMLCCopy(ev.Addr)
	}
	if ev.Dirty() {
		h.mem.WriteLine()
	}
}

// chance returns true with probability pct/100, deterministically.
func (h *Hierarchy) chance(pct int) bool {
	if pct >= 100 {
		return true
	}
	if pct <= 0 {
		return false
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return int(h.rng%100) < pct
}

// DMAWrite is one device-to-host line transfer arriving at PCIe port. With
// DCA active for the port it write-updates in place or write-allocates into
// the DCA ways; otherwise it lands in DRAM. Cached stale copies are
// invalidated either way.
func (h *Hierarchy) DMAWrite(port int, wl pcm.WorkloadID, addr uint64) {
	c := h.fabric.C(wl)
	p := h.pcie.Port(port)
	p.AccountInbound(mem.LineBytes)
	c.IOReadBytes.Add(mem.LineBytes)

	if h.pcie.DCAActive(port) {
		if line, way := h.llc.Probe(addr); way >= 0 {
			// Write update in place, in whatever way the line occupies.
			// Updates do not promote the line: DDIO writes refresh data, not
			// replacement age, so stale ring buffers age out of non-DCA ways.
			c.DCAHits.Inc()
			clear := cache.FlagConsumed
			if line.Inclusive() {
				h.invalidateMLCCopy(addr)
				clear |= cache.FlagInclusive
			}
			h.llc.MutateFlags(addr, way, cache.FlagIO|cache.FlagDirty, clear)
			h.llc.SetOwnerPort(addr, way, int16(wl), int8(port))
			return
		}
		// Stale copy in an MLC only: invalidate before allocating.
		h.invalidateMLCCopy(addr)
		c.DCAAllocs.Inc()
		ev, way := h.llc.InsertDCA(addr, int16(wl), int8(port))
		if way < 0 {
			// DDIO mask empty: fall back to DRAM.
			h.mem.WriteLine()
			return
		}
		if ev.Valid {
			h.retire(ev)
		}
		return
	}

	// DCA inactive: DMA to DRAM, invalidating stale cached copies.
	h.mem.WriteLine()
	h.llc.Invalidate(addr) // device overwrite: stale data needs no writeback
	h.invalidateMLCCopy(addr)
}

// DMARead is one host-to-device line transfer (egress). LLC hits are served
// in place; MLC-only lines are read-allocated into the inclusive ways (the
// reverse-engineered egress path); otherwise DRAM serves the read without
// any LLC allocation.
func (h *Hierarchy) DMARead(port int, wl pcm.WorkloadID, addr uint64) {
	c := h.fabric.C(wl)
	p := h.pcie.Port(port)
	p.AccountOutbound(mem.LineBytes)
	c.IOWriteBytes.Add(mem.LineBytes)

	if way := h.llc.ProbeWay(addr); way >= 0 {
		h.llc.Touch(addr, way)
		return
	}
	if core := h.dir.Lookup(addr); core >= 0 {
		// Copy the MLC line into a read-allocated slot in the inclusive ways.
		owner := int16(wl)
		var flags cache.LineFlags
		if l, w := h.mlcs[core].Probe(addr); w >= 0 {
			owner = l.Owner
			if l.Dirty() {
				flags |= cache.FlagDirty
			}
		}
		ev, way := h.llc.InsertInclusive(addr, owner, int8(port), flags)
		if way >= 0 && ev.Valid {
			h.retire(ev)
		}
		return
	}
	h.mem.ReadLine()
}

// invalidateMLCCopy drops addr from whichever MLC holds it, if any.
func (h *Hierarchy) invalidateMLCCopy(addr uint64) {
	core := h.dir.Lookup(addr)
	if core < 0 {
		return
	}
	h.dir.Untrack(addr)
	if core < len(h.mlcs) {
		// The device overwrites the data, so even dirty copies are dropped
		// without writeback.
		h.mlcs[core].Invalidate(addr)
	}
}

// FlushAll empties every cache; used between experiment phases.
func (h *Hierarchy) FlushAll() {
	h.llc.Array().InvalidateAll()
	for _, m := range h.mlcs {
		m.Array().InvalidateAll()
	}
	h.dir.Reset()
}
