package hierarchy

import (
	"testing"
	"testing/quick"

	"a4sim/internal/cache"
	"a4sim/internal/llc"
	"a4sim/internal/pcm"
)

// checkInvariants asserts the structural properties that must hold after
// any sequence of operations:
//
//  1. every LLC-inclusive line sits in an inclusive way;
//  2. no address appears twice in the LLC;
//  3. every MLC-resident line is tracked by the extended directory with the
//     correct owner core;
//  4. no address appears in two different MLCs.
func checkInvariants(t *testing.T, h *Hierarchy) {
	t.Helper()
	seen := map[uint64]bool{}
	h.LLC().Array().ForEach(func(set, way int, l *cache.Line) {
		if l.Inclusive() && h.LLC().RoleOf(way) != llc.RoleInclusive {
			t.Fatalf("inclusive line %d in %v way %d", l.Addr, h.LLC().RoleOf(way), way)
		}
		if seen[l.Addr] {
			t.Fatalf("address %d duplicated in LLC", l.Addr)
		}
		seen[l.Addr] = true
	})
	owners := map[uint64]int{}
	for core := 0; core < h.Config().NumCores; core++ {
		h.MLC(core).Array().ForEach(func(set, way int, l *cache.Line) {
			if prev, dup := owners[l.Addr]; dup {
				t.Fatalf("address %d in MLCs %d and %d", l.Addr, prev, core)
			}
			owners[l.Addr] = core
			if got := h.Directory().Lookup(l.Addr); got != core {
				t.Fatalf("directory tracks %d for addr %d, MLC copy in %d", got, l.Addr, core)
			}
		})
	}
}

// TestInvariantsUnderRandomTraffic drives a random mix of CPU and DMA
// operations and checks the structural invariants throughout.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	cfg := TestConfig()
	cfg.LLCVictimRandPct = 10
	cfg.MigrationStickPct = 50
	f := pcm.NewFabric(1)
	ids := []pcm.WorkloadID{f.Register("a"), f.Register("b")}
	h := New(cfg, f)

	op := func(kind, core, wl uint8, addr uint16) bool {
		a := uint64(addr % 4096)
		c := int(core) % h.Config().NumCores
		w := ids[int(wl)%len(ids)]
		switch kind % 6 {
		case 0:
			h.CPURead(c, w, a, false)
		case 1:
			h.CPURead(c, w, a, true)
		case 2:
			h.CPUWrite(c, w, a, false)
		case 3:
			h.DMAWrite(0, w, a)
		case 4:
			h.DMAWrite(1, w, a)
		case 5:
			h.DMARead(0, w, a)
		}
		return true
	}
	seq := func(kinds, cores, wls []uint8, addrs []uint16) bool {
		n := len(kinds)
		if len(cores) < n {
			n = len(cores)
		}
		if len(wls) < n {
			n = len(wls)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			op(kinds[i], cores[i], wls[i], addrs[i])
		}
		checkInvariants(t, h)
		return true
	}
	if err := quick.Check(seq, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsWithDCAToggles mixes the per-port and global DCA knobs into
// the traffic, which exercises the invalidation paths.
func TestInvariantsWithDCAToggles(t *testing.T) {
	cfg := TestConfig()
	f := pcm.NewFabric(1)
	id := f.Register("io")
	h := New(cfg, f)
	rngState := uint64(12345)
	next := func() uint64 {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return rngState
	}
	for i := 0; i < 20000; i++ {
		a := next() % 2048
		switch next() % 8 {
		case 0:
			h.PCIe().SetPortDCA(int(next()%2), next()%2 == 0)
		case 1:
			h.PCIe().SetGlobalDCA(next()%2 == 0)
		case 2, 3:
			h.DMAWrite(int(next()%2), id, a)
		case 4, 5:
			h.CPURead(int(next()%uint64(h.Config().NumCores)), id, a, true)
		case 6:
			h.CPUWrite(int(next()%uint64(h.Config().NumCores)), id, a, false)
		case 7:
			h.DMARead(int(next()%2), id, a)
		}
	}
	checkInvariants(t, h)
}

// TestConservationOfCounters checks that hit/miss counters account exactly
// one event per access.
func TestConservationOfCounters(t *testing.T) {
	cfg := TestConfig()
	cfg.LLCVictimRandPct = 0
	f := pcm.NewFabric(1)
	id := f.Register("wl")
	h := New(cfg, f)
	const N = 5000
	rng := uint64(99)
	for i := 0; i < N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		h.CPURead(int(rng%4), id, rng%1024, false)
	}
	c := f.C(id)
	if c.MLCHits.Total()+c.MLCMisses.Total() != N {
		t.Fatalf("MLC events %d+%d != %d", c.MLCHits.Total(), c.MLCMisses.Total(), N)
	}
	if c.LLCHits.Total()+c.LLCMisses.Total() != c.MLCMisses.Total() {
		t.Fatalf("LLC events %d+%d != MLC misses %d",
			c.LLCHits.Total(), c.LLCMisses.Total(), c.MLCMisses.Total())
	}
}

// TestMemoryTrafficOnlyOnMissesOrWritebacks: a working set that fits in one
// MLC generates memory reads only for compulsory misses.
func TestMemoryTrafficOnlyOnMissesOrWritebacks(t *testing.T) {
	cfg := TestConfig()
	f := pcm.NewFabric(1)
	id := f.Register("wl")
	h := New(cfg, f)
	ws := uint64(64) // lines, far below MLC capacity
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < ws; a++ {
			h.CPURead(0, id, a, false)
		}
	}
	if got := h.Memory().ReadBytes(); got != int64(ws)*64 {
		t.Fatalf("memory reads = %d bytes, want exactly %d (compulsory only)", got, ws*64)
	}
	if h.Memory().WriteBytes() != 0 {
		t.Fatalf("clean working set should write nothing back")
	}
}
