package hierarchy

import (
	"testing"

	"a4sim/internal/cache"
	"a4sim/internal/llc"
	"a4sim/internal/pcm"
)

// newTest builds a small deterministic hierarchy (pure LRU, migration
// always sticks) with n registered workloads.
func newTest(t *testing.T, n int) (*Hierarchy, []pcm.WorkloadID) {
	t.Helper()
	cfg := TestConfig()
	cfg.LLCVictimRandPct = 0
	cfg.MigrationStickPct = 100
	f := pcm.NewFabric(1)
	ids := make([]pcm.WorkloadID, n)
	for i := range ids {
		ids[i] = f.Register("wl")
	}
	return New(cfg, f), ids
}

func TestCPUReadMissFillsMLCOnly(t *testing.T) {
	h, ids := newTest(t, 1)
	res := h.CPURead(0, ids[0], 100, false)
	if res.Level != LevelMem {
		t.Fatalf("cold read level = %v", res.Level)
	}
	if l, _ := h.MLC(0).Probe(100); !l.Valid {
		t.Fatalf("line should be in the MLC")
	}
	if l, _ := h.LLC().Probe(100); l.Valid {
		t.Fatalf("non-inclusive fill must not allocate in the LLC")
	}
	if h.Directory().Lookup(100) != 0 {
		t.Fatalf("extended directory should track the MLC line")
	}
	if h.Memory().ReadBytes() != 64 {
		t.Fatalf("memory read not accounted")
	}
	c := h.Fabric().C(ids[0])
	if c.MLCMisses.Total() != 1 || c.LLCMisses.Total() != 1 {
		t.Fatalf("counters wrong: %d %d", c.MLCMisses.Total(), c.LLCMisses.Total())
	}
}

func TestMLCHitPath(t *testing.T) {
	h, ids := newTest(t, 1)
	h.CPURead(0, ids[0], 100, false)
	res := h.CPURead(0, ids[0], 100, false)
	if res.Level != LevelMLC {
		t.Fatalf("second read should hit MLC, got %v", res.Level)
	}
	if h.Fabric().C(ids[0]).MLCHits.Total() != 1 {
		t.Fatalf("MLC hit not counted")
	}
}

// fillMLCSet evicts a line from core's MLC by filling its set.
func fillMLCSet(h *Hierarchy, core int, wl pcm.WorkloadID, victim uint64) {
	sets := uint64(h.Config().MLC.Sets)
	ways := h.Config().MLC.Ways
	for i := 1; i <= ways; i++ {
		h.CPURead(core, wl, victim+sets*uint64(i), false)
	}
}

func TestVictimCacheInsertion(t *testing.T) {
	h, ids := newTest(t, 1)
	h.CPURead(0, ids[0], 100, false)
	fillMLCSet(h, 0, ids[0], 100)
	// 100 must have been evicted from the MLC into the LLC.
	if l, _ := h.MLC(0).Probe(100); l.Valid {
		t.Fatalf("line should have left the MLC")
	}
	if l, _ := h.LLC().Probe(100); !l.Valid {
		t.Fatalf("victim must be cached in the LLC")
	}
	// A re-read hits the LLC and promotes back, invalidating the LLC copy
	// (victim-cache behaviour for non-I/O lines).
	res := h.CPURead(0, ids[0], 100, false)
	if res.Level != LevelLLC {
		t.Fatalf("re-read level = %v", res.Level)
	}
	if l, _ := h.LLC().Probe(100); l.Valid {
		t.Fatalf("promotion must invalidate the LLC copy of a non-I/O line")
	}
}

func TestVictimInsertHonoursCAT(t *testing.T) {
	h, ids := newTest(t, 1)
	if err := h.CAT().SetWayRange(1, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := h.CAT().Associate(0, 1); err != nil {
		t.Fatal(err)
	}
	h.CPURead(0, ids[0], 100, false)
	fillMLCSet(h, 0, ids[0], 100)
	if w := h.LLC().WayOf(100); w != 5 && w != 6 {
		t.Fatalf("victim landed in way %d, CAT mask [5:6]", w)
	}
}

func TestDMAWriteAllocatesDCAWays(t *testing.T) {
	h, ids := newTest(t, 1)
	h.DMAWrite(0, ids[0], 500)
	w := h.LLC().WayOf(500)
	if h.LLC().RoleOf(w) != llc.RoleDCA {
		t.Fatalf("DMA write-allocate in way %d (role %v)", w, h.LLC().RoleOf(w))
	}
	l, _ := h.LLC().Probe(500)
	if !l.IO() || !l.Dirty() || l.Consumed() {
		t.Fatalf("DMA line flags wrong: %+v", l)
	}
	c := h.Fabric().C(ids[0])
	if c.DCAAllocs.Total() != 1 || c.DCAHits.Total() != 0 {
		t.Fatalf("DCA counters wrong")
	}
	// Second write to the same line is a write update, wherever it is.
	h.DMAWrite(0, ids[0], 500)
	if c.DCAHits.Total() != 1 {
		t.Fatalf("write update not counted as DCA hit")
	}
}

func TestDMAWriteUpdateOutsideDCAWays(t *testing.T) {
	h, ids := newTest(t, 1)
	// Get a CPU line into a standard way via the victim path.
	h.CPURead(0, ids[0], 100, false)
	fillMLCSet(h, 0, ids[0], 100)
	w := h.LLC().WayOf(100)
	if w < 0 {
		t.Fatalf("setup failed")
	}
	// The device writes that address: in-place update, same way.
	h.DMAWrite(0, ids[0], 100)
	if got := h.LLC().WayOf(100); got != w {
		t.Fatalf("write update moved the line: %d -> %d", w, got)
	}
	l, _ := h.LLC().Probe(100)
	if !l.IO() || l.Consumed() {
		t.Fatalf("update must mark the line unconsumed I/O: %+v", l)
	}
}

func TestDMALeakCounting(t *testing.T) {
	h, ids := newTest(t, 1)
	g := h.Config().LLC
	// Fill both DCA ways of set 0, then force one more allocation: the
	// evicted line was never consumed, so it is a DMA leak.
	sets := uint64(g.Sets)
	h.DMAWrite(0, ids[0], 1*sets)
	h.DMAWrite(0, ids[0], 2*sets)
	h.DMAWrite(0, ids[0], 3*sets)
	if got := h.Fabric().C(ids[0]).DMALeaks.Total(); got != 1 {
		t.Fatalf("DMA leaks = %d, want 1", got)
	}
	// Leaked line was dirty: written back to memory.
	if h.Memory().WriteBytes() == 0 {
		t.Fatalf("leak writeback missing")
	}
}

func TestO1MigrationAndDirectoryContention(t *testing.T) {
	h, ids := newTest(t, 2)
	g := h.Config().LLC
	sets := uint64(g.Sets)

	// A victim of workload 1 occupies an inclusive way of set 0.
	if err := h.CAT().SetWayRange(1, 9, 10); err != nil {
		t.Fatal(err)
	}
	if err := h.CAT().Associate(1, 1); err != nil {
		t.Fatal(err)
	}
	h.CPURead(1, ids[1], 7*sets, false)
	fillMLCSet(h, 1, ids[1], 7*sets)
	h.CPURead(1, ids[1], 8*sets, false)
	fillMLCSet(h, 1, ids[1], 8*sets)
	if h.LLC().RoleOf(h.LLC().WayOf(7*sets)) != llc.RoleInclusive {
		t.Fatalf("setup: victim not in inclusive way")
	}

	// A DMA line arrives and is read by core 0: O1 migration.
	h.DMAWrite(0, ids[0], 3*sets)
	res := h.CPURead(0, ids[0], 3*sets, true)
	if res.Level != LevelLLC {
		t.Fatalf("consuming read level = %v", res.Level)
	}
	w := h.LLC().WayOf(3 * sets)
	if h.LLC().RoleOf(w) != llc.RoleInclusive {
		t.Fatalf("consumed DMA line must migrate to inclusive ways, got way %d", w)
	}
	l, _ := h.LLC().Probe(3 * sets)
	if !l.Inclusive() || !l.Consumed() {
		t.Fatalf("migrated line state wrong: %+v", l)
	}
	// One of workload 1's lines was displaced: directory contention.
	if h.Fabric().C(ids[0]).DirEvictions.Total() == 0 {
		t.Fatalf("directory eviction not counted")
	}
}

func TestDMABloat(t *testing.T) {
	h, ids := newTest(t, 1)
	// Migration disabled: consumed I/O lines always take the bloat path.
	cfg := TestConfig()
	cfg.LLCVictimRandPct = 0
	cfg.MigrationStickPct = 0
	f := pcm.NewFabric(1)
	id := f.Register("net")
	h = New(cfg, f)
	_ = ids

	if err := h.CAT().SetWayRange(1, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := h.CAT().Associate(0, 1); err != nil {
		t.Fatal(err)
	}
	h.DMAWrite(0, id, 900)
	h.CPURead(0, id, 900, true) // consume: LLC copy dropped (race lost)
	if l, _ := h.LLC().Probe(900); l.Valid {
		t.Fatalf("with MigrationStickPct=0 the LLC copy should be invalidated")
	}
	fillMLCSet(h, 0, id, 900)
	// The consumed I/O line re-entered the LLC under the CAT mask: bloat.
	w := h.LLC().WayOf(900)
	if w != 5 && w != 6 {
		t.Fatalf("bloated line in way %d, want CAT ways [5:6]", w)
	}
	if f.C(id).DMABloats.Total() == 0 {
		t.Fatalf("DMA bloat not counted")
	}
}

func TestDCAOffPathInvalidates(t *testing.T) {
	h, ids := newTest(t, 1)
	h.PCIe().SetGlobalDCA(false)
	h.DMAWrite(0, ids[0], 700)
	if l, _ := h.LLC().Probe(700); l.Valid {
		t.Fatalf("DCA off must not allocate in the LLC")
	}
	if h.Memory().WriteBytes() == 0 {
		t.Fatalf("DMA to DRAM not accounted")
	}
	// Stale cached copies are invalidated on device write.
	h.PCIe().SetGlobalDCA(true)
	h.CPURead(0, ids[0], 701, false)
	h.PCIe().SetGlobalDCA(false)
	h.DMAWrite(0, ids[0], 701)
	if l, _ := h.MLC(0).Probe(701); l.Valid {
		t.Fatalf("device write must invalidate the MLC copy")
	}
}

func TestPerPortDCA(t *testing.T) {
	h, ids := newTest(t, 1)
	h.PCIe().SetPortDCA(1, false) // SSD port off, NIC port on
	h.DMAWrite(1, ids[0], 800)
	if l, _ := h.LLC().Probe(800); l.Valid {
		t.Fatalf("port-1 DMA must bypass the LLC")
	}
	h.DMAWrite(0, ids[0], 801)
	if l, _ := h.LLC().Probe(801); !l.Valid {
		t.Fatalf("port-0 DMA must still allocate")
	}
}

func TestDMAReadEgress(t *testing.T) {
	h, ids := newTest(t, 1)
	// LLC-resident data: served from the LLC, no memory read.
	h.DMAWrite(0, ids[0], 600)
	h.DMARead(0, ids[0], 600)
	if h.Memory().ReadBytes() != 0 {
		t.Fatalf("LLC-resident egress should not read memory")
	}
	// MLC-only data: read-allocated into the inclusive ways.
	h.CPUWrite(0, ids[0], 601, false)
	h.DMARead(0, ids[0], 601)
	w := h.LLC().WayOf(601)
	if h.LLC().RoleOf(w) != llc.RoleInclusive {
		t.Fatalf("MLC-only egress should allocate an inclusive way, got %d", w)
	}
	// Uncached data: straight from memory, no allocation.
	before := h.LLC().Array().CountValid(h.LLC().AllMask())
	h.DMARead(0, ids[0], 602)
	if h.Memory().ReadBytes() == 0 {
		t.Fatalf("uncached egress must read memory")
	}
	if after := h.LLC().Array().CountValid(h.LLC().AllMask()); after != before {
		t.Fatalf("uncached egress must not allocate")
	}
}

func TestCPUWriteRFO(t *testing.T) {
	h, ids := newTest(t, 1)
	h.CPUWrite(0, ids[0], 300, false)
	l, _ := h.MLC(0).Probe(300)
	if !l.Valid || !l.Dirty() {
		t.Fatalf("store must dirty the MLC line")
	}
	// Store to an LLC-resident line invalidates the shared copy.
	h.DMAWrite(0, ids[0], 301)
	h.CPUWrite(0, ids[0], 301, true)
	if l, _ := h.LLC().Probe(301); l.Valid {
		t.Fatalf("RFO must invalidate the LLC copy")
	}
}

func TestInclusiveEvictionBackInvalidatesMLC(t *testing.T) {
	h, ids := newTest(t, 1)
	g := h.Config().LLC
	sets := uint64(g.Sets)
	// Consume a DMA line so it sits in an inclusive way and the MLC.
	h.DMAWrite(0, ids[0], 1*sets)
	h.CPURead(0, ids[0], 1*sets, true)
	if l, _ := h.MLC(0).Probe(1 * sets); !l.Valid {
		t.Fatalf("setup: line must be in MLC")
	}
	// Thrash the inclusive ways of set 0 with two more migrations.
	h.DMAWrite(0, ids[0], 2*sets)
	h.CPURead(0, ids[0], 2*sets, true)
	h.DMAWrite(0, ids[0], 3*sets)
	h.CPURead(0, ids[0], 3*sets, true)
	// The first line was evicted from the inclusive way; its MLC copy must
	// have been back-invalidated with it.
	if l, _ := h.LLC().Probe(1 * sets); !l.Valid {
		if ml, _ := h.MLC(0).Probe(1 * sets); ml.Valid {
			t.Fatalf("inclusive eviction must back-invalidate the MLC copy")
		}
	}
}

func TestCrossCoreTransfer(t *testing.T) {
	h, ids := newTest(t, 1)
	// Core 0 dirties a line; core 1 reads it: served cache-to-cache via the
	// directory, with exactly one MLC copy afterwards and no DRAM read.
	h.CPUWrite(0, ids[0], 100, false)
	memReads := h.Memory().ReadBytes()
	res := h.CPURead(1, ids[0], 100, false)
	if res.Level != LevelLLC {
		t.Fatalf("snooped read level = %v, want LLC-class latency", res.Level)
	}
	if h.Memory().ReadBytes() != memReads {
		t.Fatalf("cache-to-cache transfer must not read DRAM")
	}
	if l, _ := h.MLC(0).Probe(100); l.Valid {
		t.Fatalf("old owner must be invalidated")
	}
	if l, _ := h.MLC(1).Probe(100); !l.Valid || !l.Dirty() {
		t.Fatalf("dirty state must transfer to the new owner")
	}
	if h.Directory().Lookup(100) != 1 {
		t.Fatalf("directory ownership not transferred")
	}
	// RFO from core 0 pulls it back.
	h.CPUWrite(0, ids[0], 100, false)
	if l, _ := h.MLC(1).Probe(100); l.Valid {
		t.Fatalf("RFO must invalidate the remote copy")
	}
}

func TestFlushAll(t *testing.T) {
	h, ids := newTest(t, 1)
	h.CPURead(0, ids[0], 100, false)
	h.DMAWrite(0, ids[0], 200)
	h.FlushAll()
	if h.LLC().Array().CountValid(cache.MaskAll(h.Config().LLC.Ways)) != 0 {
		t.Fatalf("LLC not flushed")
	}
	if l, _ := h.MLC(0).Probe(100); l.Valid {
		t.Fatalf("MLC not flushed")
	}
	if h.Directory().CountValid() != 0 {
		t.Fatalf("directory not flushed")
	}
}

func TestLevelString(t *testing.T) {
	if LevelMLC.String() != "mlc" || LevelLLC.String() != "llc" || LevelMem.String() != "mem" {
		t.Errorf("level names wrong")
	}
}
