package hierarchy

import "a4sim/internal/codec"

// EncodeState appends the whole memory system's dynamic state: the
// migration-race RNG, the LLC, every MLC, the extended directory, the
// memory controller, CAT state, and the PCIe complex. The counter fabric is
// shared with other components and encoded separately by the scenario
// layer; configuration is structural.
func (h *Hierarchy) EncodeState(w *codec.Writer) {
	w.U64(h.rng)
	h.llc.EncodeState(w)
	w.Int(len(h.mlcs))
	for _, m := range h.mlcs {
		m.EncodeState(w)
	}
	h.dir.EncodeState(w)
	h.mem.EncodeState(w)
	h.cat.EncodeState(w)
	h.pcie.EncodeState(w)
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose core count disagrees with the receiver's.
func (h *Hierarchy) DecodeState(r *codec.Reader) {
	rng := r.U64()
	h.llc.DecodeState(r)
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(h.mlcs) {
		r.Failf("hierarchy: snapshot has %d MLCs, hierarchy has %d", n, len(h.mlcs))
		return
	}
	for _, m := range h.mlcs {
		m.DecodeState(r)
	}
	h.dir.DecodeState(r)
	h.mem.DecodeState(r)
	h.cat.DecodeState(r)
	h.pcie.DecodeState(r)
	if r.Err() != nil {
		return
	}
	h.rng = rng
}
