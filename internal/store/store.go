// Package store is a durable content-addressed object store — the disk
// plane under the service's in-memory caches. Objects are immutable byte
// payloads filed under the scenario layer's hex sha256 keys (content hashes
// for reports, prefix hashes for warm snapshots), in kind-partitioned
// fan-out directories like a git object store:
//
//	<dir>/objects/<kind>/<key[:2]>/<key>
//	<dir>/corrupt/                      quarantined objects
//
// Three properties make it safe to trust across crashes:
//
//   - Writes are atomic: payloads land in a same-directory temp file,
//     fsync, then rename over the final name, with a directory fsync behind
//     it. A crash leaves either the complete object or an ignorable *.tmp
//     remnant — never a half-written object under a valid name.
//   - Reads are verified: every object embeds the sha256 of its payload,
//     re-checked on each Get. Bit rot, torn writes, and hand-edited files
//     are detected at read time.
//   - Corruption is quarantined, not served: a failed verification moves
//     the object into corrupt/ (preserving the evidence) and reports a
//     miss. Because every key is re-derivable by re-execution, callers
//     degrade to recomputing the object — correctness never depends on the
//     disk being honest.
//
// Concurrent Puts of the same key are idempotent (last rename wins, both
// contents are identical by content addressing), and Store methods are safe
// for concurrent use.
package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Kinds partition the object namespace. A key identifies a scenario (or
// scenario prefix); the kind says which derived artifact the object holds.
const (
	KindReport = "report" // encoded Report, keyed by content hash
	KindSpec   = "spec"   // canonical spec bytes, keyed by content hash
	KindSeries = "series" // canonical series bytes, keyed by content hash
	KindSnap   = "snap"   // wrapped warm snapshot, keyed by prefix hash
)

// header is the per-object integrity prefix: the sha256 of the payload.
const headerLen = sha256.Size

// Store is an open object store rooted at one directory.
type Store struct {
	dir string

	mu          sync.Mutex
	index       map[string]bool // kind/key -> present
	quarantined int64
}

// Open opens (creating if needed) the store rooted at dir, builds the
// in-memory presence index, and sweeps stale *.tmp files left by crashed
// writers. The index makes Has and negative Gets cheap; positive Gets still
// read and verify the file.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, index: make(map[string]bool)}
	for _, d := range []string{s.objectsDir(), s.corruptDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	err := filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(d.Name(), ".tmp") {
			// A crashed writer's remnant; the rename never happened, so the
			// object it was building does not exist. Remove and move on.
			os.Remove(path)
			return nil
		}
		rel, err := filepath.Rel(s.objectsDir(), path)
		if err != nil {
			return nil
		}
		// objects/<kind>/<key[:2]>/<key>
		parts := strings.Split(filepath.ToSlash(rel), "/")
		if len(parts) != 3 || !validKey(parts[2]) || parts[1] != parts[2][:2] {
			return nil // foreign file; leave it alone, serve nothing from it
		}
		s.index[parts[0]+"/"+parts[2]] = true
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }
func (s *Store) corruptDir() string { return filepath.Join(s.dir, "corrupt") }

func (s *Store) objectPath(kind, key string) string {
	return filepath.Join(s.objectsDir(), kind, key[:2], key)
}

// validKey reports whether key is a lowercase hex sha256 — the only names
// the store files objects under or serves objects from.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put durably stores payload under kind/key. Present objects are skipped
// (content addressing makes rewrites pointless). The write is atomic and
// fsynced; when Put returns nil the object survives a crash.
func (s *Store) Put(kind, key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	present := s.index[kind+"/"+key]
	s.mu.Unlock()
	if present {
		return nil
	}
	return s.write(kind, key, payload)
}

// Replace durably writes payload under kind/key, overwriting any present
// object. It exists for the one kind that is keyed rather than
// content-addressed — warm snapshots under their prefix hash, whose value
// advances as a prefix's measured window extends. The rename keeps
// replacement atomic: a concurrent Get sees the old object or the new,
// never a mix.
func (s *Store) Replace(kind, key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	return s.write(kind, key, payload)
}

func (s *Store) write(kind, key string, payload []byte) error {
	final := s.objectPath(kind, key)
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	sum := sha256.Sum256(payload)
	tmp, err := os.CreateTemp(dir, key+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(sum[:])
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, werr)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	syncDir(dir)

	s.mu.Lock()
	s.index[kind+"/"+key] = true
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Best-effort: filesystems that refuse directory fsync still get the
// rename's atomicity, only its durability window widens.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Get returns the payload stored under kind/key, verifying it against the
// embedded hash. A missing object returns (nil, false). An unreadable,
// truncated, or corrupt object is quarantined to corrupt/ and reported as a
// miss — the caller re-executes; the store never serves bytes it cannot
// vouch for.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	present := s.index[kind+"/"+key]
	s.mu.Unlock()
	if !present {
		return nil, false
	}
	path := s.objectPath(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.quarantine(kind, key, path)
		return nil, false
	}
	if len(data) < headerLen {
		s.quarantine(kind, key, path)
		return nil, false
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[:headerLen]) {
		s.quarantine(kind, key, path)
		return nil, false
	}
	return payload, true
}

// quarantine moves a failed object aside and drops it from the index, so
// the next Put can rewrite a good copy.
func (s *Store) quarantine(kind, key, path string) {
	os.Rename(path, filepath.Join(s.corruptDir(), kind+"-"+key))
	s.mu.Lock()
	delete(s.index, kind+"/"+key)
	s.quarantined++
	s.mu.Unlock()
}

// Has reports whether kind/key is indexed (without verifying the bytes).
func (s *Store) Has(kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[kind+"/"+key]
}

// Len returns the number of indexed objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Quarantined returns how many objects this store has quarantined since
// Open.
func (s *Store) Quarantined() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}
