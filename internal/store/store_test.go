package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir())
	key := testKey("a")
	payload := []byte("report bytes")
	if err := s.Put(KindReport, key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindReport, key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if !s.Has(KindReport, key) {
		t.Error("Has must report a stored object")
	}
	// Same key under another kind is a distinct object.
	if _, ok := s.Get(KindSnap, key); ok {
		t.Error("kinds must not share objects")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	// Empty payloads are legal objects (header only).
	empty := testKey("empty")
	if err := s.Put(KindSpec, empty, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindSpec, empty); !ok || len(got) != 0 {
		t.Errorf("empty payload Get = %q, %v; want empty, true", got, ok)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	s := openT(t, t.TempDir())
	for _, key := range []string{"", "short", strings.Repeat("g", 64), strings.ToUpper(testKey("a")), "../../../../etc/passwd"} {
		if err := s.Put(KindReport, key, []byte("x")); err == nil {
			t.Errorf("Put(%q) must fail", key)
		}
		if _, ok := s.Get(KindReport, key); ok {
			t.Errorf("Get(%q) must miss", key)
		}
	}
}

// TestRestartRehydratesIndex is the store half of restart rehydration: a
// reopened store serves everything a previous instance durably wrote,
// byte-identically, from the index it rebuilds by scanning the tree.
func TestRestartRehydratesIndex(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	keys := map[string][]byte{}
	for i := 0; i < 20; i++ {
		key := testKey(fmt.Sprint("obj", i))
		payload := []byte(strings.Repeat("x", i*37))
		keys[key] = payload
		if err := s.Put(KindReport, key, payload); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate the process dying after the Puts returned.
	s2 := openT(t, dir)
	if s2.Len() != len(keys) {
		t.Fatalf("reopened store indexes %d objects, want %d", s2.Len(), len(keys))
	}
	for key, payload := range keys {
		got, ok := s2.Get(KindReport, key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("reopened Get(%s) = %d bytes, %v; want %d bytes", key[:8], len(got), ok, len(payload))
		}
	}
}

// corruptObject rewrites the stored object file for key through fn.
func corruptObject(t *testing.T, s *Store, kind, key string, fn func([]byte) []byte) {
	t.Helper()
	path := s.objectPath(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	key := testKey("flip")
	payload := []byte("precious measurement data")
	if err := s.Put(KindReport, key, payload); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk, as a latent media error would.
	corruptObject(t, s, KindReport, key, func(d []byte) []byte {
		d[headerLen+3] ^= 0x10
		return d
	})
	if _, ok := s.Get(KindReport, key); ok {
		t.Fatal("corrupt object must not be served")
	}
	if q := s.Quarantined(); q != 1 {
		t.Errorf("Quarantined = %d, want 1", q)
	}
	if s.Has(KindReport, key) {
		t.Error("quarantined object must leave the index")
	}
	// The evidence is preserved under corrupt/, not deleted.
	if _, err := os.Stat(filepath.Join(s.corruptDir(), KindReport+"-"+key)); err != nil {
		t.Errorf("quarantined object missing from corrupt/: %v", err)
	}
	// The key is re-writable with a good copy, which then serves again.
	if err := s.Put(KindReport, key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindReport, key); !ok || !bytes.Equal(got, payload) {
		t.Error("rewritten object must serve again")
	}
}

func TestTruncationQuarantined(t *testing.T) {
	for _, keep := range []int{0, headerLen - 1, headerLen, headerLen + 2} {
		s := openT(t, t.TempDir())
		key := testKey("trunc")
		if err := s.Put(KindReport, key, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		corruptObject(t, s, KindReport, key, func(d []byte) []byte { return d[:keep] })
		if _, ok := s.Get(KindReport, key); ok {
			t.Fatalf("object truncated to %d bytes must not be served", keep)
		}
		if q := s.Quarantined(); q != 1 {
			t.Errorf("truncated to %d: Quarantined = %d, want 1", keep, q)
		}
	}
}

// TestStaleTmpIgnored simulates a writer killed mid-Put: the *.tmp file it
// left behind is swept at Open, never indexed, and does not shadow a later
// good write of the same key.
func TestStaleTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	key := testKey("torn")
	// A torn write: half a header, no rename — under the tmp naming Put uses.
	objDir := filepath.Dir(s.objectPath(KindSnap, key))
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(objDir, key+".123456.tmp")
	if err := os.WriteFile(tmp, []byte("half a head"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	if s2.Len() != 0 {
		t.Fatalf("stale tmp indexed: Len = %d, want 0", s2.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stale tmp must be swept at Open")
	}
	payload := []byte("the real object")
	if err := s2.Put(KindSnap, key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindSnap, key); !ok || !bytes.Equal(got, payload) {
		t.Error("good write after a torn write must serve")
	}
}

// TestForeignFilesIgnored pins that Open only indexes well-formed object
// paths: anything else in the tree is left in place and never served.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir)
	key := testKey("x")
	misfiled := filepath.Join(dir, "objects", KindReport, "zz", key)
	if err := os.MkdirAll(filepath.Dir(misfiled), 0o755); err != nil {
		t.Fatal(err)
	}
	// Wrong fan-out dir, a README, and a non-hex name.
	for _, p := range []string{misfiled, filepath.Join(dir, "objects", "README"), filepath.Join(dir, "objects", KindReport, key[:2], "not-a-hash")} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("??"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := openT(t, dir)
	if s.Len() != 0 {
		t.Errorf("foreign files indexed: Len = %d, want 0", s.Len())
	}
}

// TestConcurrentPutGet exercises the store under parallel writers and
// readers of overlapping keys; runs under -race in CI.
func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				key := testKey(fmt.Sprint("shared", i%6))
				payload := []byte(strings.Repeat("p", 100+i%6))
				if err := s.Put(KindReport, key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(KindReport, key); ok && len(got) != len(payload) {
					t.Errorf("goroutine %d: Get returned %d bytes, want %d", g, len(got), len(payload))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
}
