package pcie

import "testing"

func TestPortLookup(t *testing.T) {
	c := NewComplex("nic0", "ssd0")
	if c.NumPorts() != 2 {
		t.Fatalf("NumPorts = %d", c.NumPorts())
	}
	if c.Port(0).Name() != "nic0" || c.Port(1).Index() != 1 {
		t.Errorf("port identity wrong")
	}
	if c.PortByName("ssd0") != c.Port(1) {
		t.Errorf("PortByName failed")
	}
	if c.PortByName("nope") != nil {
		t.Errorf("missing port should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range Port() should panic")
		}
	}()
	c.Port(5)
}

func TestDCAKnobs(t *testing.T) {
	c := NewComplex("nic0", "ssd0")
	if !c.DCAActive(0) || !c.DCAActive(1) {
		t.Fatalf("DCA should start enabled everywhere")
	}
	// The hidden per-port knob (perfctrlsts_0).
	c.SetPortDCA(1, false)
	if c.DCAActive(1) {
		t.Errorf("port 1 DCA should be off")
	}
	if !c.DCAActive(0) {
		t.Errorf("port 0 DCA must be unaffected")
	}
	// The BIOS-level switch overrides everything.
	c.SetGlobalDCA(false)
	if c.DCAActive(0) || c.DCAActive(1) {
		t.Errorf("global off must disable all ports")
	}
	if c.GlobalDCA() {
		t.Errorf("GlobalDCA getter wrong")
	}
	c.SetGlobalDCA(true)
	c.SetPortDCA(1, true)
	if !c.DCAActive(1) {
		t.Errorf("re-enabling failed")
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := NewComplex("nic0")
	p := c.Port(0)
	p.AccountInbound(100)
	p.AccountOutbound(40)
	p.AccountInbound(28)
	if p.InboundBytes() != 128 || p.OutboundBytes() != 40 {
		t.Fatalf("totals wrong: in=%d out=%d", p.InboundBytes(), p.OutboundBytes())
	}
	in, out := p.DeltaBytes()
	if in != 128 || out != 40 {
		t.Fatalf("first delta wrong: %d/%d", in, out)
	}
	in, out = p.DeltaBytes()
	if in != 0 || out != 0 {
		t.Fatalf("second delta should be zero: %d/%d", in, out)
	}
	p.AccountInbound(64)
	if in, _ := p.DeltaBytes(); in != 64 {
		t.Fatalf("incremental delta wrong: %d", in)
	}
	if !c.Port(0).DCAEnabled() {
		t.Errorf("DCAEnabled getter wrong")
	}
}
