// Package pcie models the integrated I/O controller's PCIe ports, including
// the hidden per-port knob the A4 paper exploits: register perfctrlsts_0,
// whose NoSnoopOpWrEn / Use_Allocating_Flow_Wr bits selectively disable DCA
// (DDIO) for the devices behind one port while leaving other ports' DCA
// intact. The package also accounts per-port inbound (device-to-host,
// "PCIe write") and outbound ("PCIe read") traffic, which A4's DMA-leak
// detector consumes as "system I/O read throughput".
package pcie

import "fmt"

// Port identifies one PCIe root port.
type Port struct {
	index int
	name  string

	// dcaEnabled mirrors Use_Allocating_Flow_Wr && !NoSnoopOpWrEn.
	dcaEnabled bool

	inboundBytes  int64 // device writes to host (DMA write)
	outboundBytes int64 // device reads from host (DMA read)
	lastInbound   int64
	lastOutbound  int64
}

// Index returns the port number.
func (p *Port) Index() int { return p.index }

// Name returns the human-readable port label (e.g. "nic0", "ssd0").
func (p *Port) Name() string { return p.name }

// DCAEnabled reports whether DDIO is active for this port.
func (p *Port) DCAEnabled() bool { return p.dcaEnabled }

// AccountInbound adds device-to-host DMA bytes.
func (p *Port) AccountInbound(bytes int64) { p.inboundBytes += bytes }

// AccountOutbound adds host-to-device DMA bytes.
func (p *Port) AccountOutbound(bytes int64) { p.outboundBytes += bytes }

// InboundBytes returns lifetime inbound bytes.
func (p *Port) InboundBytes() int64 { return p.inboundBytes }

// OutboundBytes returns lifetime outbound bytes.
func (p *Port) OutboundBytes() int64 { return p.outboundBytes }

// DeltaBytes returns (inbound, outbound) bytes since the last DeltaBytes.
func (p *Port) DeltaBytes() (in, out int64) {
	in = p.inboundBytes - p.lastInbound
	out = p.outboundBytes - p.lastOutbound
	p.lastInbound = p.inboundBytes
	p.lastOutbound = p.outboundBytes
	return in, out
}

// Complex is the set of PCIe root ports plus the global DCA (BIOS) switch.
type Complex struct {
	ports     []*Port
	globalDCA bool
}

// NewComplex creates ports with the given names. DCA starts enabled
// everywhere, matching BIOS defaults.
func NewComplex(names ...string) *Complex {
	c := &Complex{globalDCA: true}
	for i, n := range names {
		c.ports = append(c.ports, &Port{index: i, name: n, dcaEnabled: true})
	}
	return c
}

// Clone returns an independent deep copy of the complex: per-port DCA
// knobs, traffic accounting (including pending deltas), and the global
// switch.
func (c *Complex) Clone() *Complex {
	n := &Complex{globalDCA: c.globalDCA, ports: make([]*Port, len(c.ports))}
	for i, p := range c.ports {
		cp := *p
		n.ports[i] = &cp
	}
	return n
}

// Port returns port i.
func (c *Complex) Port(i int) *Port {
	if i < 0 || i >= len(c.ports) {
		panic(fmt.Sprintf("pcie: port %d out of range", i))
	}
	return c.ports[i]
}

// PortByName finds a port by label, or nil.
func (c *Complex) PortByName(name string) *Port {
	for _, p := range c.ports {
		if p.name == name {
			return p
		}
	}
	return nil
}

// NumPorts returns the port count.
func (c *Complex) NumPorts() int { return len(c.ports) }

// Ports returns all ports in index order.
func (c *Complex) Ports() []*Port { return c.ports }

// SetGlobalDCA flips the BIOS-level DDIO switch affecting every port.
func (c *Complex) SetGlobalDCA(on bool) { c.globalDCA = on }

// GlobalDCA reports the BIOS-level switch state.
func (c *Complex) GlobalDCA() bool { return c.globalDCA }

// SetPortDCA programs the hidden perfctrlsts_0 knob for one port: on=false
// sets NoSnoopOpWrEn and clears Use_Allocating_Flow_Wr, disabling DDIO for
// that port only.
func (c *Complex) SetPortDCA(i int, on bool) { c.Port(i).dcaEnabled = on }

// DCAActive reports whether a DMA write arriving at port i allocates into
// the LLC: requires both the global switch and the per-port knob.
func (c *Complex) DCAActive(i int) bool {
	return c.globalDCA && c.Port(i).dcaEnabled
}
