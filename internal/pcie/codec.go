package pcie

import "a4sim/internal/codec"

// EncodeState appends the complex's dynamic state: the global DCA switch
// and, per port, the DDIO knob and traffic accounting (including pending
// deltas). Port count and names are structural.
func (c *Complex) EncodeState(w *codec.Writer) {
	w.Bool(c.globalDCA)
	w.Int(len(c.ports))
	for _, p := range c.ports {
		w.Bool(p.dcaEnabled)
		w.I64(p.inboundBytes)
		w.I64(p.outboundBytes)
		w.I64(p.lastInbound)
		w.I64(p.lastOutbound)
	}
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose port count disagrees with the receiver's.
func (c *Complex) DecodeState(r *codec.Reader) {
	globalDCA := r.Bool()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(c.ports) {
		r.Failf("pcie: snapshot has %d ports, complex has %d", n, len(c.ports))
		return
	}
	c.globalDCA = globalDCA
	for _, p := range c.ports {
		p.dcaEnabled = r.Bool()
		p.inboundBytes = r.I64()
		p.outboundBytes = r.I64()
		p.lastInbound = r.I64()
		p.lastOutbound = r.I64()
	}
}
