package mem

import "a4sim/internal/codec"

// EncodeState appends the controller's traffic accounting, including the
// pending (un-Delta'd) byte counts.
func (c *Controller) EncodeState(w *codec.Writer) {
	w.I64(c.readBytes)
	w.I64(c.writeBytes)
	w.I64(c.lastRead)
	w.I64(c.lastWrite)
}

// DecodeState restores state written by EncodeState.
func (c *Controller) DecodeState(r *codec.Reader) {
	c.readBytes = r.I64()
	c.writeBytes = r.I64()
	c.lastRead = r.I64()
	c.lastWrite = r.I64()
}

// EncodeState appends the allocator cursor.
func (a *AddressSpace) EncodeState(w *codec.Writer) { w.U64(a.nextLine) }

// DecodeState restores the allocator cursor.
func (a *AddressSpace) DecodeState(r *codec.Reader) { a.nextLine = r.U64() }
