// Package mem models the memory controller: it accounts every DRAM read and
// write in bytes so the harness can report memory bandwidth (GB/s), the
// metric several of the paper's figures plot, and exposes the fixed access
// latencies used by the timing model.
package mem

// Latency constants in core cycles at 2.3 GHz, Skylake-class.
const (
	LatencyMLCHit  = 14  // L2 hit
	LatencyLLCHit  = 50  // LLC hit
	LatencyDRAM    = 220 // LLC miss served by DRAM
	CyclesPerMicro = 2300
	LineBytes      = 64
)

// Controller accounts DRAM traffic. Not safe for concurrent use.
type Controller struct {
	readBytes  int64
	writeBytes int64

	lastRead  int64
	lastWrite int64
}

// New returns an empty controller.
func New() *Controller { return &Controller{} }

// Clone returns an independent copy of the accounting state, including the
// pending (un-Delta'd) byte counts.
func (c *Controller) Clone() *Controller {
	n := *c
	return &n
}

// ReadLine accounts one 64-byte line read from DRAM.
func (c *Controller) ReadLine() { c.readBytes += LineBytes }

// WriteLine accounts one 64-byte line written to DRAM.
func (c *Controller) WriteLine() { c.writeBytes += LineBytes }

// ReadBytes returns lifetime bytes read.
func (c *Controller) ReadBytes() int64 { return c.readBytes }

// WriteBytes returns lifetime bytes written.
func (c *Controller) WriteBytes() int64 { return c.writeBytes }

// DeltaBytes returns (read, write) bytes since the previous DeltaBytes call.
func (c *Controller) DeltaBytes() (read, write int64) {
	read = c.readBytes - c.lastRead
	write = c.writeBytes - c.lastWrite
	c.lastRead = c.readBytes
	c.lastWrite = c.writeBytes
	return read, write
}

// Reset zeroes all accounting.
func (c *Controller) Reset() {
	c.readBytes, c.writeBytes = 0, 0
	c.lastRead, c.lastWrite = 0, 0
}
