package mem

import "testing"

func TestControllerAccounting(t *testing.T) {
	c := New()
	c.ReadLine()
	c.ReadLine()
	c.WriteLine()
	if c.ReadBytes() != 128 || c.WriteBytes() != 64 {
		t.Fatalf("totals wrong: %d/%d", c.ReadBytes(), c.WriteBytes())
	}
	r, w := c.DeltaBytes()
	if r != 128 || w != 64 {
		t.Fatalf("delta wrong: %d/%d", r, w)
	}
	r, w = c.DeltaBytes()
	if r != 0 || w != 0 {
		t.Fatalf("second delta should be zero")
	}
	c.WriteLine()
	if _, w := c.DeltaBytes(); w != 64 {
		t.Fatalf("incremental delta wrong: %d", w)
	}
	c.Reset()
	if c.ReadBytes() != 0 || c.WriteBytes() != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestAddressSpaceDisjoint(t *testing.T) {
	a := NewAddressSpace()
	r1 := a.Alloc(1000)
	r2 := a.Alloc(64)
	r3 := a.AllocLines(10)
	// Regions must be disjoint and ordered.
	n1 := uint64((1000 + 63) / 64)
	if r2 < r1+n1 {
		t.Fatalf("regions overlap: r1=%d(+%d) r2=%d", r1, n1, r2)
	}
	if r3 <= r2 {
		t.Fatalf("allocator went backwards")
	}
	if r1 == 0 {
		t.Fatalf("line address 0 must never be handed out")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Alloc(0) should panic")
		}
	}()
	a.Alloc(0)
}

func TestAddressSpaceSetAlignment(t *testing.T) {
	a := NewAddressSpace()
	r1 := a.Alloc(1)
	r2 := a.Alloc(1)
	if r1%64 != 0 || r2%64 != 0 {
		t.Errorf("regions should start on 64-line boundaries: %d %d", r1, r2)
	}
}
