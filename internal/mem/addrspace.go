package mem

// AddressSpace is a bump allocator handing out disjoint physical address
// ranges (in line granularity) to workloads and device buffers, so that
// independently constructed components never alias each other's memory.
type AddressSpace struct {
	nextLine uint64
}

// NewAddressSpace starts allocation at a non-zero base so that line address
// zero never appears (it doubles as an "unset" sentinel in some tests).
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextLine: 1 << 10}
}

// Clone returns an independent copy of the allocator cursor, so a forked
// simulation can keep allocating without racing the original for addresses.
func (a *AddressSpace) Clone() *AddressSpace {
	n := *a
	return &n
}

// Alloc reserves sizeBytes (rounded up to whole lines) and returns the first
// line address of the region.
func (a *AddressSpace) Alloc(sizeBytes int64) uint64 {
	if sizeBytes <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	lines := uint64((sizeBytes + LineBytes - 1) / LineBytes)
	base := a.nextLine
	a.nextLine += lines
	// Pad to a 64-line boundary so regions start on distinct sets.
	if rem := a.nextLine % 64; rem != 0 {
		a.nextLine += 64 - rem
	}
	return base
}

// AllocLines reserves a region of exactly n lines.
func (a *AddressSpace) AllocLines(n int64) uint64 {
	return a.Alloc(n * LineBytes)
}
