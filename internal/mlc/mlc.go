// Package mlc models the private per-core mid-level cache (L2) of a
// Skylake-SP server core: 1 MiB, 16-way. In the non-inclusive hierarchy the
// MLC is where demand fills land first; its evictions feed the LLC as a
// victim cache, which is the mechanism behind DMA bloat.
package mlc

import "a4sim/internal/cache"

// Geometry describes one MLC.
type Geometry struct {
	Sets int // power of two
	Ways int
}

// SkylakeGeometry returns the Xeon Gold 6140 MLC: 1 MiB, 16-way
// (1024 sets x 16 ways x 64 B).
func SkylakeGeometry() Geometry { return Geometry{Sets: 1024, Ways: 16} }

// TestGeometry returns a small MLC for unit tests.
func TestGeometry() Geometry { return Geometry{Sets: 64, Ways: 8} }

// SizeBytes returns the capacity assuming 64-byte lines.
func (g Geometry) SizeBytes() int64 { return int64(g.Sets) * int64(g.Ways) * 64 }

// MLC is one core's private mid-level cache.
type MLC struct {
	arr  *cache.Cache
	core int16
	all  cache.WayMask
}

// New constructs the MLC for a core.
func New(g Geometry, core int16) *MLC {
	return &MLC{arr: cache.New(g.Sets, g.Ways), core: core, all: cache.MaskAll(g.Ways)}
}

// Clone returns an independent deep copy of the MLC.
func (m *MLC) Clone() *MLC {
	return &MLC{arr: m.arr.Clone(), core: m.core, all: m.all}
}

// Core returns the owning core index.
func (m *MLC) Core() int16 { return m.core }

// Array exposes the underlying array for stats and tests.
func (m *MLC) Array() *cache.Cache { return m.arr }

// Probe looks up a line, returning a copy and its way, or (Line{}, -1).
func (m *MLC) Probe(addr uint64) (cache.Line, int) { return m.arr.Probe(addr) }

// ProbeWay returns the way addr occupies, or -1, without materializing the
// line metadata.
func (m *MLC) ProbeWay(addr uint64) int { return m.arr.ProbeWay(addr) }

// Touch promotes the line at (addr, way) to MRU.
func (m *MLC) Touch(addr uint64, way int) { m.arr.Touch(addr, way) }

// MutateFlags sets then clears flag bits on the resident line at (addr, way).
func (m *MLC) MutateFlags(addr uint64, way int, set, clear cache.LineFlags) {
	m.arr.MutateFlags(addr, way, set, clear)
}

// Fill allocates addr and returns the evicted victim (Valid=false if none).
func (m *MLC) Fill(addr uint64, owner int16, port int8, flags cache.LineFlags) cache.Line {
	ev, _ := m.arr.Insert(addr, m.all, owner, port, flags)
	return ev
}

// Invalidate drops addr if present.
func (m *MLC) Invalidate(addr uint64) (cache.Line, bool) { return m.arr.Invalidate(addr) }
