package mlc

import (
	"testing"

	"a4sim/internal/cache"
)

func TestGeometrySizes(t *testing.T) {
	g := SkylakeGeometry()
	if g.SizeBytes() != 1<<20 {
		t.Errorf("Skylake MLC should be 1 MiB, got %d", g.SizeBytes())
	}
	if TestGeometry().SizeBytes() <= 0 {
		t.Errorf("test geometry empty")
	}
}

func TestFillLookupInvalidate(t *testing.T) {
	m := New(TestGeometry(), 3)
	if m.Core() != 3 {
		t.Errorf("core identity wrong")
	}
	ev := m.Fill(100, 7, -1, cache.FlagDirty)
	if ev.Valid {
		t.Fatalf("first fill should not evict")
	}
	l, w := m.Probe(100)
	if !l.Valid || l.Owner != 7 || !l.Dirty() {
		t.Fatalf("fill metadata wrong: %+v", l)
	}
	m.Touch(100, w)
	if old, ok := m.Invalidate(100); !ok || old.Addr != 100 {
		t.Fatalf("invalidate failed")
	}
	if l, _ := m.Probe(100); l.Valid {
		t.Fatalf("line still present")
	}
}

func TestFillEvictsLRU(t *testing.T) {
	g := TestGeometry()
	m := New(g, 0)
	sets := uint64(g.Sets)
	// Fill one set beyond capacity.
	for i := 0; i <= g.Ways; i++ {
		ev := m.Fill(sets*uint64(i), -1, -1, 0)
		if i < g.Ways && ev.Valid {
			t.Fatalf("unexpected eviction at fill %d", i)
		}
		if i == g.Ways && (!ev.Valid || ev.Addr != 0) {
			t.Fatalf("expected LRU eviction of addr 0, got %+v", ev)
		}
	}
}
