package mlc

import "a4sim/internal/codec"

// EncodeState appends the MLC's dynamic state — just the underlying array;
// the owning core and geometry are structural.
func (m *MLC) EncodeState(w *codec.Writer) { m.arr.EncodeState(w) }

// DecodeState restores state written by EncodeState.
func (m *MLC) DecodeState(r *codec.Reader) { m.arr.DecodeState(r) }
