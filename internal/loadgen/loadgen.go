package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"a4sim/internal/service"
	"a4sim/internal/stats"
)

// Outcome names latencies are tagged with. Kept separate — a 503 shed by
// an overloaded daemon, a 422 rejecting a malformed spec, and a transport
// failure are three different stories about a deployment, and folding
// them into one "failed" bucket hides all three.
const (
	OutcomeOK        = "2xx"
	OutcomeClient    = "4xx"      // caller mistakes: 400/404/413/422
	OutcomeRejected  = "rejected" // load shedding: 429 and 503
	OutcomeServer    = "5xx"      // execution failures
	OutcomeTransport = "transport"
)

// Defaults for Config's zero values.
const (
	DefaultMaxInflight = 256
	DefaultLagBoundMs  = 100
	DefaultTimeout     = 60 * time.Second
)

// Config describes one open-loop load run.
type Config struct {
	// URL targets the daemon or coordinator (e.g. http://localhost:8044).
	URL string
	// Rate is the average offered arrival rate in requests/second.
	Rate float64
	// Duration is the measurement window.
	Duration time.Duration
	// Arrival selects the arrival process (Arrivals); "" means constant.
	Arrival string
	// Seed drives every random choice: schedule, class draw, fresh-spec
	// population. Same seed, same offered load, byte for byte.
	Seed uint64
	// Mix weights the request classes; nil means DefaultMix.
	Mix map[string]float64
	// MaxInflight caps concurrent outstanding requests. The cap is what
	// makes the lag measurement honest: when the server falls behind by
	// more than MaxInflight requests, sends block past their scheduled
	// times and the slip is recorded instead of hidden in socket queues.
	// 0 means DefaultMaxInflight.
	MaxInflight int
	// LagBoundMs is the honesty threshold: a run whose p99 scheduling lag
	// exceeds it did not truly offer Rate, and Result.Honest reports so.
	// 0 means DefaultLagBoundMs.
	LagBoundMs float64
	// Timeout bounds each request; 0 means DefaultTimeout.
	Timeout time.Duration
	// SkipPriming skips the serial cache-priming pass — for reruns
	// against a daemon this generator already primed.
	SkipPriming bool
	// Client overrides the HTTP client (tests inject one); nil builds a
	// service.Client for URL with Timeout.
	Client *service.Client
}

func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.LagBoundMs <= 0 {
		c.LagBoundMs = DefaultLagBoundMs
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalConstant
	}
	return c
}

// Result is what one load run measured: per-class, per-outcome latency
// histograms plus the scheduling-lag distribution that says whether the
// configured rate was honestly offered.
type Result struct {
	Seed        uint64
	Arrival     string
	Rate        float64
	DurationSec float64
	Offered     int     // events in the plan
	Sent        int     // events actually dispatched
	ElapsedSec  float64 // wall time of the measurement window
	LagBoundMs  float64
	// Classes maps request class -> outcome -> latency histogram (µs).
	Classes map[string]map[string]*stats.Histogram
	// Lag is the scheduling-lag distribution (µs): actual send time minus
	// scheduled send time, observed at every dispatch.
	Lag *stats.Histogram
}

// Honest reports the open-loop honesty condition: every planned event was
// sent and the p99 scheduling lag stayed under the bound. A dishonest run
// measured some lower, server-paced rate — its latencies must not be
// compared against the configured one.
func (r *Result) Honest() bool {
	return r.Sent == r.Offered && r.LagP99Ms() <= r.LagBoundMs
}

// LagP99Ms is the p99 scheduling lag in milliseconds.
func (r *Result) LagP99Ms() float64 {
	if r.Lag == nil || r.Lag.Count() == 0 {
		return 0
	}
	return r.Lag.Quantile(0.99) / 1000
}

// P99Ms is the p99 latency of successful requests across all classes, in
// milliseconds — the quantity SLOs are written against.
func (r *Result) P99Ms() float64 {
	merged := stats.NewHistogram()
	for _, outcomes := range r.Classes {
		if h := outcomes[OutcomeOK]; h != nil {
			merged.Merge(h)
		}
	}
	if merged.Count() == 0 {
		return 0
	}
	return merged.Quantile(0.99) / 1000
}

// Outcomes sums request counts per outcome across classes.
func (r *Result) Outcomes() map[string]uint64 {
	out := map[string]uint64{}
	for _, outcomes := range r.Classes {
		for name, h := range outcomes {
			out[name] += h.Count()
		}
	}
	return out
}

// ErrorRate is the fraction of sent requests that did not succeed.
func (r *Result) ErrorRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return 1 - float64(r.Outcomes()[OutcomeOK])/float64(r.Sent)
}

// resultJSON is the canonical serialized form: summary scalars up front,
// then class -> outcome -> {count, quantiles, full histogram}. Maps
// marshal with sorted keys, so equal results encode byte-identically.
type resultJSON struct {
	Seed        uint64                          `json:"seed"`
	Arrival     string                          `json:"arrival"`
	Rate        float64                         `json:"rate"`
	DurationSec float64                         `json:"duration_sec"`
	Offered     int                             `json:"offered"`
	Sent        int                             `json:"sent"`
	ElapsedSec  float64                         `json:"elapsed_sec"`
	Honest      bool                            `json:"honest"`
	LagBoundMs  float64                         `json:"lag_bound_ms"`
	P99Ms       float64                         `json:"p99_ms"`
	ErrorRate   float64                         `json:"error_rate"`
	Lag         *distJSON                       `json:"lag"`
	Classes     map[string]map[string]*distJSON `json:"classes"`
	Outcomes    map[string]uint64               `json:"outcomes"`
}

type distJSON struct {
	Count uint64           `json:"count"`
	P50Ms float64          `json:"p50_ms"`
	P99Ms float64          `json:"p99_ms"`
	Hist  *stats.Histogram `json:"hist"`
}

func newDistJSON(h *stats.Histogram) *distJSON {
	d := &distJSON{Count: h.Count(), Hist: h}
	if d.Count > 0 {
		d.P50Ms = h.Quantile(0.50) / 1000
		d.P99Ms = h.Quantile(0.99) / 1000
	}
	return d
}

// WriteJSON writes the result in its canonical JSON form.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Seed:        r.Seed,
		Arrival:     r.Arrival,
		Rate:        r.Rate,
		DurationSec: r.DurationSec,
		Offered:     r.Offered,
		Sent:        r.Sent,
		ElapsedSec:  r.ElapsedSec,
		Honest:      r.Honest(),
		LagBoundMs:  r.LagBoundMs,
		P99Ms:       r.P99Ms(),
		ErrorRate:   r.ErrorRate(),
		Lag:         newDistJSON(r.Lag),
		Classes:     map[string]map[string]*distJSON{},
		Outcomes:    r.Outcomes(),
	}
	for class, outcomes := range r.Classes {
		m := map[string]*distJSON{}
		for name, h := range outcomes {
			m[name] = newDistJSON(h)
		}
		out.Classes[class] = m
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}

// Run executes one open-loop load run against cfg.URL: build (or reuse)
// the plan, prime the cache serially, then offer every planned event at
// its scheduled time, capped at MaxInflight outstanding requests. The
// returned Result is complete even when ctx cancels the run early (Sent
// records how far it got, and the error is ctx's).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	return RunPlan(ctx, cfg, nil)
}

// RunPlan is Run with a pre-built plan (nil builds one from cfg) — the
// saturation search reuses it to re-offer an identical population at
// different rates without re-deriving spec bodies.
func RunPlan(ctx context.Context, cfg Config, plan *Plan) (*Result, error) {
	cfg = cfg.withDefaults()
	if plan == nil {
		var err error
		if plan, err = BuildPlan(cfg); err != nil {
			return nil, err
		}
	}
	client := cfg.Client
	if client == nil {
		client = NewTunedClient(cfg.URL, cfg.Timeout, cfg.MaxInflight)
	}

	if !cfg.SkipPriming {
		for _, ev := range plan.Priming {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := issue(client, ev); err != nil {
				return nil, fmt.Errorf("loadgen: priming %s %s: %w", ev.Method, ev.Path, err)
			}
		}
	}

	res := &Result{
		Seed:        plan.Seed,
		Arrival:     plan.Arrival,
		Rate:        plan.Rate,
		DurationSec: plan.DurationSec,
		Offered:     len(plan.Events),
		LagBoundMs:  cfg.LagBoundMs,
		Classes:     map[string]map[string]*stats.Histogram{},
		Lag:         stats.NewHistogram(),
	}
	var mu sync.Mutex // guards res.Classes and res.Lag
	observe := func(class, outcome string, latUs int64) {
		mu.Lock()
		defer mu.Unlock()
		outcomes := res.Classes[class]
		if outcomes == nil {
			outcomes = map[string]*stats.Histogram{}
			res.Classes[class] = outcomes
		}
		h := outcomes[outcome]
		if h == nil {
			h = stats.NewHistogram()
			outcomes[outcome] = h
		}
		h.Observe(latUs)
	}

	sem := make(chan struct{}, cfg.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	var runErr error
dispatch:
	for _, ev := range plan.Events {
		scheduled := start.Add(time.Duration(ev.AtUs) * time.Microsecond)
		if wait := time.Until(scheduled); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				runErr = ctx.Err()
				break dispatch
			}
		}
		// Acquiring the in-flight slot may block; the time it blocks IS
		// the scheduling lag the honesty condition is about.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			runErr = ctx.Err()
			break dispatch
		}
		lagUs := time.Since(scheduled).Microseconds()
		if lagUs < 0 {
			lagUs = 0
		}
		mu.Lock()
		res.Lag.Observe(lagUs)
		mu.Unlock()
		res.Sent++
		wg.Add(1)
		go func(ev Event) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := issue(client, ev)
			observe(ev.Class, outcomeForErr(err), time.Since(t0).Microseconds())
		}(ev)
	}
	wg.Wait()
	res.ElapsedSec = time.Since(start).Seconds()
	return res, runErr
}

// NewTunedClient builds the generator's service client: per-request
// timeout plus a keep-alive transport whose idle pool is sized to the
// in-flight cap, so a saturated run reuses maxInflight connections instead
// of churning through dials (the stdlib default keeps only two idle per
// host).
func NewTunedClient(url string, timeout time.Duration, maxInflight int) *service.Client {
	return service.NewClient(url, &http.Client{
		Timeout:   timeout,
		Transport: service.NewTransport(maxInflight),
	})
}

// issue sends one planned event through the typed client's drain-only
// path — the harness measures, it does not read reports, and decoding
// every response would bill loadgen CPU against the server under test on
// a shared machine.
func issue(c *service.Client, ev Event) error {
	switch {
	case ev.Path == "/run" || ev.Path == "/extend" || ev.Path == "/sweep":
		return c.Issue(http.MethodPost, ev.Path, ev.Body)
	case strings.HasPrefix(ev.Path, "/series/"):
		return c.Issue(http.MethodGet, ev.Path, nil)
	default:
		return fmt.Errorf("loadgen: plan event with unknown path %q", ev.Path)
	}
}

// outcomeForErr folds a typed client error into its outcome bucket. The
// client's taxonomy is total over HTTP answers — anything untyped never
// reached the service (dial failure, timeout, canceled context).
func outcomeForErr(err error) string {
	if err == nil {
		return OutcomeOK
	}
	var ae *service.APIError
	var re *service.RunError
	switch {
	case errors.Is(err, service.ErrBusy), errors.Is(err, service.ErrUnavailable):
		return OutcomeRejected
	case errors.Is(err, service.ErrUnknownHash):
		return OutcomeClient
	case errors.As(err, &re):
		return OutcomeServer
	case errors.As(err, &ae):
		if ae.Status >= 500 {
			return OutcomeServer
		}
		return OutcomeClient
	default:
		return OutcomeTransport
	}
}

// ClassNames returns the result's class names, sorted — for printers
// that want deterministic output order.
func (r *Result) ClassNames() []string {
	names := make([]string, 0, len(r.Classes))
	for name := range r.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
