// Package loadgen is the open-loop load harness for a4serve: it offers
// requests to a daemon (or cluster coordinator) on a precomputed schedule
// that does not slow down when the server does, measures per-class
// latency distributions, and binary-searches the maximum arrival rate a
// deployment sustains under a tail-latency SLO.
//
// Open loop means the arrival schedule is fixed before the first request
// is sent: a slow server does not throttle the generator into flattering
// it (coordinated omission). The one concession is a bounded in-flight
// cap; when the server falls far enough behind to exhaust it, sends slip
// past their scheduled times and the generator reports that slip — the
// scheduling-lag honesty condition — instead of silently open-looping
// into an unbounded socket pile.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Arrival process names accepted by Config.Arrival.
const (
	ArrivalConstant = "constant" // evenly spaced, period 1/rate
	ArrivalPoisson  = "poisson"  // exponential inter-arrivals, mean 1/rate
	ArrivalBursty   = "bursty"   // on/off square wave, Poisson inside bursts
	ArrivalDiurnal  = "diurnal"  // nonhomogeneous Poisson, one sinusoid period
)

// Arrivals lists the valid arrival process names, sorted.
var Arrivals = []string{ArrivalBursty, ArrivalConstant, ArrivalDiurnal, ArrivalPoisson}

// burstyDuty is the fraction of each burstyPeriod the bursty process
// spends "on". Inside a burst it offers rate/burstyDuty, so the average
// over a whole period is the configured rate.
const (
	burstyPeriod = 2 * time.Second
	burstyDuty   = 0.25
)

// Schedule returns the arrival offsets (from run start, ascending) of one
// load run: the given process at the given average rate over the given
// window, driven entirely by a rand seeded from seed. Same arguments,
// same schedule — on every platform, every run.
func Schedule(kind string, rate float64, d time.Duration, seed uint64) ([]time.Duration, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %g", rate)
	}
	if d <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", d)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	var out []time.Duration
	switch kind {
	case ArrivalConstant, "":
		period := time.Duration(float64(time.Second) / rate)
		for at := time.Duration(0); at < d; at += period {
			out = append(out, at)
		}
	case ArrivalPoisson:
		for at := nextExp(rng, rate); at < d; at += nextExp(rng, rate) {
			out = append(out, at)
		}
	case ArrivalBursty:
		// Poisson at rate/duty, thinned to the "on" part of the square
		// wave: bursts of 4x the average rate separated by silence, the
		// worst polite client a cache in front of an executor can meet.
		on := time.Duration(burstyDuty * float64(burstyPeriod))
		burstRate := rate / burstyDuty
		for at := nextExp(rng, burstRate); at < d; at += nextExp(rng, burstRate) {
			if at%burstyPeriod < on {
				out = append(out, at)
			}
		}
	case ArrivalDiurnal:
		// Nonhomogeneous Poisson by thinning: candidates at the 2x peak
		// rate, kept with probability lambda(t)/peak where lambda(t) =
		// rate*(1-cos(2*pi*t/d)) — one full diurnal period squeezed into
		// the run window, averaging the configured rate.
		peak := 2 * rate
		for at := nextExp(rng, peak); at < d; at += nextExp(rng, peak) {
			lambda := rate * (1 - math.Cos(2*math.Pi*float64(at)/float64(d)))
			if rng.Float64()*peak < lambda {
				out = append(out, at)
			}
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (have %v)", kind, Arrivals)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// nextExp draws one exponential inter-arrival gap with mean 1/rate.
func nextExp(rng *rand.Rand, rate float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}
