package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
	"a4sim/internal/stats"
)

// This file is the legacy closed-loop generator extracted from
// cmd/a4serve: N clients issuing back-to-back requests, throughput
// measured from the daemon's own /stats deltas. It keeps the serving-path
// benchmarks (service_cached_rps, cluster_sweep_rps) and their printed
// key=value lines stable for scripts/bench.sh and CI while the open-loop
// harness above owns latency and saturation questions. Closed loop means
// the offered rate follows the service's speed — good for "how fast can
// it serve", structurally unable to answer "what does latency look like
// at a fixed rate"; see DESIGN.md §16.

// ClosedConfig parameterizes one closed-loop run.
type ClosedConfig struct {
	URL       string
	N         int     // total requests
	Clients   int     // concurrent closed-loop clients
	FreshFrac float64 // fraction of requests carrying never-seen specs
	Nonce     uint64  // salts fresh specs; 0 derives one from the clock
	Out       io.Writer
	Errw      io.Writer
}

// ClosedLoop drives a daemon with a mix of repeated and fresh specs and
// prints overall and cache-served throughput in the bench.sh-parseable
// key=value form. Returns a non-zero exit code on any failure, matching
// the command-line contract of the a4serve -loadgen mode it replaced.
func ClosedLoop(cfg ClosedConfig) int {
	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		fmt.Fprintln(cfg.Errw, "loadgen:", err)
		return 1
	}
	// The popular set: a few manager variants of the tiny mix.
	var popular [][]byte
	for _, sp := range scenario.ManagerVariants(base, []string{"a4-d", "default", "isolate"}) {
		data, _ := json.Marshal(sp)
		popular = append(popular, data)
	}
	freshFrac := cfg.FreshFrac
	if freshFrac < 0 {
		freshFrac = 0
	}
	if freshFrac > 1 {
		freshFrac = 1
	}
	// isFresh schedules ~freshFrac of requests as never-seen specs with an
	// error-accumulator spread (exact for any fraction, deterministic in i).
	isFresh := func(i int) bool {
		return int(float64(i+1)*freshFrac) > int(float64(i)*freshFrac)
	}

	// Idle pool sized to the client count: every closed-loop goroutine keeps
	// one connection alive for the whole run.
	client := service.NewClient(cfg.URL, &http.Client{
		Timeout:   60 * time.Second,
		Transport: service.NewTransport(cfg.Clients),
	})
	statsBefore, backends, err := client.Stats()
	if err != nil {
		fmt.Fprintln(cfg.Errw, "loadgen: daemon not reachable:", err)
		return 1
	}
	if backends > 0 {
		fmt.Fprintf(cfg.Out, "loadgen: target is a coordinator over %d backends\n", backends)
	}

	// Salt fresh specs with a per-run nonce so repeated loadgen runs
	// against a long-lived daemon really execute their fresh share instead
	// of re-hitting the previous run's entries.
	nonce := cfg.Nonce
	if nonce == 0 {
		nonce = uint64(time.Now().UnixNano())
	}

	var (
		next     atomic.Int64
		okCount  atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	// Per-client request-latency histograms, merged after the run:
	// mergeable HDR buckets mean no cross-client synchronization on the
	// hot path.
	hists := make([]*stats.Histogram, cfg.Clients)
	for c := range hists {
		hists[c] = stats.NewHistogram()
	}
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(h *stats.Histogram) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.N {
					return
				}
				body := popular[i%len(popular)]
				if isFresh(i) {
					sp := base.Clone()
					sp.Name = fmt.Sprintf("fresh-%d-%d", nonce, i)
					sp.Params.Seed = nonce + uint64(i)
					body, _ = json.Marshal(sp)
				}
				t0 := time.Now()
				// Drain-only: the loop counts outcomes and times requests, it
				// never reads reports, and client-side decoding would bill
				// loadgen CPU against the daemon on a shared machine.
				err := client.Issue(http.MethodPost, "/run", body)
				h.Observe(time.Since(t0).Microseconds())
				if err != nil {
					failures.Add(1)
				} else {
					okCount.Add(1)
				}
			}
		}(hists[c])
	}
	wg.Wait()
	elapsed := time.Since(start)
	lat := stats.NewHistogram()
	for _, h := range hists {
		lat.Merge(h)
	}

	statsAfter, _, err := client.Stats()
	if err != nil {
		fmt.Fprintln(cfg.Errw, "loadgen: stats after run:", err)
		return 1
	}
	hits := statsAfter.Hits - statsBefore.Hits
	execs := statsAfter.Executions - statsBefore.Executions
	fmt.Fprintf(cfg.Out, "loadgen: %d ok, %d failed in %.2fs (%d clients)\n",
		okCount.Load(), failures.Load(), elapsed.Seconds(), cfg.Clients)
	fmt.Fprintf(cfg.Out, "loadgen: cache hits=%d dedups=%d executions=%d\n",
		hits, statsAfter.Dedups-statsBefore.Dedups, execs)
	fmt.Fprintf(cfg.Out, "service_total_rps=%.2f\n", float64(okCount.Load())/elapsed.Seconds())
	// The headline metric counts only cache-served requests, so it tracks
	// the serving path rather than simulation speed.
	fmt.Fprintf(cfg.Out, "service_cached_rps=%.2f\n", float64(hits)/elapsed.Seconds())
	if lat.Count() > 0 {
		// End-to-end request latency as the client saw it (mixed
		// population: cache hits and fresh executions together).
		// Informational in bench.sh, not gated.
		fmt.Fprintf(cfg.Out, "loadgen_p50_ms=%.3f\n", lat.Quantile(0.50)/1000)
		fmt.Fprintf(cfg.Out, "loadgen_p99_ms=%.3f\n", lat.Quantile(0.99)/1000)
	}
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// SweepOnce POSTs one seed-axis sweep of n points and prints the
// end-to-end grid throughput. Distinct seeds give every point a distinct
// prefix, so against a coordinator the grid spreads across the whole
// fleet — cluster_sweep_rps is the multi-backend scaling metric bench.sh
// records.
func SweepOnce(url string, n int, out, errw io.Writer) int {
	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		fmt.Fprintln(errw, "sweepgen:", err)
		return 1
	}
	seeds := make([]float64, n)
	for i := range seeds {
		seeds[i] = float64(i + 1)
	}
	req := &service.SweepRequest{
		Spec: *base,
		Axes: []service.Axis{{Param: "seed", Values: seeds}},
	}

	probe := service.NewClient(url, nil)
	_, backends, err := probe.Stats()
	if err != nil {
		fmt.Fprintln(errw, "sweepgen: daemon not reachable:", err)
		return 1
	}
	if backends > 0 {
		fmt.Fprintf(out, "sweepgen: target is a coordinator over %d backends\n", backends)
	}

	// Sweeps simulate for real, so allow far more than the default
	// request timeout.
	client := service.NewClient(url, &http.Client{
		Timeout:   30 * time.Minute,
		Transport: service.NewTransport(4),
	})
	start := time.Now()
	points, err := client.Sweep(req)
	if err != nil {
		fmt.Fprintln(errw, "sweepgen:", err)
		return 1
	}
	elapsed := time.Since(start)
	if len(points) != n {
		fmt.Fprintf(errw, "sweepgen: got %d points, want %d\n", len(points), n)
		return 1
	}
	fmt.Fprintf(out, "sweepgen: %d points in %.2fs\n", n, elapsed.Seconds())
	fmt.Fprintf(out, "cluster_sweep_rps=%.2f\n", float64(n)/elapsed.Seconds())
	return 0
}
