package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// Request classes a plan mixes. Each models one way real clients lean on
// the service: fleets re-asking popular questions (cache path), novel
// specs that must execute, measurement-window extensions off warm
// snapshots, small parameter sweeps, and telemetry readers.
const (
	ClassCached = "cached-hit"
	ClassFresh  = "fresh-run"
	ClassExtend = "extend"
	ClassSweep  = "sweep"
	ClassSeries = "series-read"
)

// DefaultMix is the request-class weighting used when Config.Mix is nil:
// mostly cache traffic with a steady trickle of real work, the shape a
// healthy content-addressed deployment sees.
var DefaultMix = map[string]float64{
	ClassCached: 0.65,
	ClassSeries: 0.15,
	ClassFresh:  0.10,
	ClassExtend: 0.08,
	ClassSweep:  0.02,
}

// extendWindowsSec are the measure_sec values extend events cycle
// through: each distinct window executes once (cheaply, from the warm
// snapshot) and is cache-served afterwards.
var extendWindowsSec = []float64{1.5, 2}

// Event is one planned request: when to send it (offset from the start of
// the measurement window), what class it belongs to, and the exact HTTP
// request to issue. Bodies are fully rendered at plan time, so the
// dispatch path does no per-request encoding and the plan file is the
// complete, replayable description of a run.
type Event struct {
	AtUs   int64           `json:"at_us"`
	Class  string          `json:"class"`
	Method string          `json:"method"`
	Path   string          `json:"path"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// Plan is a load run computed ahead of time: the priming requests that
// populate the cache (issued serially, unmeasured) and the timed events
// of the measurement window. BuildPlan is pure in its Config, so a plan —
// and therefore the offered load of a run — is byte-reproducible from
// (seed, rate, arrival, duration, mix).
type Plan struct {
	Seed        uint64  `json:"seed"`
	Arrival     string  `json:"arrival"`
	Rate        float64 `json:"rate"`
	DurationSec float64 `json:"duration_sec"`
	Priming     []Event `json:"priming"`
	Events      []Event `json:"events"`
}

// Encode renders the plan as canonical JSON (sorted keys, no
// insignificant whitespace): two equal plans encode byte-identically.
func (p *Plan) Encode() ([]byte, error) {
	return json.Marshal(p)
}

// BuildPlan computes the full request schedule for cfg: arrival offsets
// from the configured process, a class for each arrival drawn from the
// mix, and a rendered request body per event. All randomness comes from
// streams derived from cfg.Seed, so identical configs yield
// byte-identical plans; the target's responses are the only thing a rerun
// can change.
func BuildPlan(cfg Config) (*Plan, error) {
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix
	}
	classes, weights, err := normalizeMix(mix)
	if err != nil {
		return nil, err
	}
	arrival := cfg.Arrival
	if arrival == "" {
		arrival = ArrivalConstant
	}
	offsets, err := Schedule(arrival, cfg.Rate, cfg.Duration, mix64(cfg.Seed, 1))
	if err != nil {
		return nil, err
	}

	base, err := scenario.BuiltinMix("tiny")
	if err != nil {
		return nil, err
	}
	// The popular set: manager variants of the tiny mix, exactly the
	// population the legacy closed-loop generator hammered.
	popular := scenario.ManagerVariants(base, []string{"a4-d", "default", "isolate"})
	popularBodies := make([]json.RawMessage, len(popular))
	for i, sp := range popular {
		if popularBodies[i], err = json.Marshal(sp); err != nil {
			return nil, err
		}
	}
	// Extend continues the first popular spec's run from its warm
	// snapshot; the hash is a pure function of the spec, computed offline.
	extendHash, err := popular[0].Hash()
	if err != nil {
		return nil, err
	}
	// The series target: one series-enabled spec, primed once, then read
	// repeatedly by series-read events.
	seriesSpec := base.Clone()
	seriesSpec.Name = "loadgen-series"
	seriesSpec.Series = &scenario.SeriesSpec{Metrics: []string{"core"}}
	seriesBody, err := json.Marshal(seriesSpec)
	if err != nil {
		return nil, err
	}
	seriesHash, err := seriesSpec.Hash()
	if err != nil {
		return nil, err
	}
	// Fresh specs ride a family salted from the seed: distinct per run (a
	// long-lived daemon really executes them) yet fully reproducible. The
	// sampling block keeps each execution cheap.
	freshBase := base.Clone()
	freshBase.Sampling = &scenario.SamplingSpec{}
	family := scenario.NewFamily(freshBase, mix64(cfg.Seed, 2))

	priming := make([]Event, 0, len(popular)+1)
	for _, body := range popularBodies {
		priming = append(priming, Event{Class: ClassCached, Method: "POST", Path: "/run", Body: body})
	}
	priming = append(priming, Event{Class: ClassSeries, Method: "POST", Path: "/run", Body: seriesBody})

	classRng := rand.New(rand.NewSource(int64(mix64(cfg.Seed, 3))))
	events := make([]Event, 0, len(offsets))
	var freshIdx, cachedIdx, extendIdx, sweepIdx uint64
	for _, at := range offsets {
		ev := Event{AtUs: int64(at / time.Microsecond)}
		ev.Class = pickClass(classes, weights, classRng.Float64())
		switch ev.Class {
		case ClassCached:
			ev.Method, ev.Path = "POST", "/run"
			ev.Body = popularBodies[cachedIdx%uint64(len(popularBodies))]
			cachedIdx++
		case ClassFresh:
			ev.Method, ev.Path = "POST", "/run"
			body, err := json.Marshal(family.Variant(freshIdx))
			if err != nil {
				return nil, err
			}
			ev.Body = body
			freshIdx++
		case ClassExtend:
			ev.Method, ev.Path = "POST", "/extend"
			body, err := json.Marshal(service.ExtendRequest{
				Hash:       extendHash,
				MeasureSec: extendWindowsSec[extendIdx%uint64(len(extendWindowsSec))],
			})
			if err != nil {
				return nil, err
			}
			ev.Body = body
			extendIdx++
		case ClassSweep:
			ev.Method, ev.Path = "POST", "/sweep"
			// Two fresh seeds per sweep: a real (tiny) grid expansion that
			// must execute, drawn from a disjoint region of the family's
			// seed stream so sweeps never collide with fresh-run specs.
			v1 := float64(family.VariantSeed(1<<32+2*sweepIdx) % 1e9)
			v2 := float64(family.VariantSeed(1<<32+2*sweepIdx+1) % 1e9)
			body, err := json.Marshal(service.SweepRequest{
				Spec: *freshBase,
				Axes: []service.Axis{{Param: "seed", Values: []float64{v1, v2}}},
			})
			if err != nil {
				return nil, err
			}
			ev.Body = body
			sweepIdx++
		case ClassSeries:
			ev.Method, ev.Path = "GET", "/series/"+seriesHash
		}
		events = append(events, ev)
	}
	return &Plan{
		Seed:        cfg.Seed,
		Arrival:     arrival,
		Rate:        cfg.Rate,
		DurationSec: cfg.Duration.Seconds(),
		Priming:     priming,
		Events:      events,
	}, nil
}

// normalizeMix validates the class mix and returns classes in sorted
// order with weights normalized to sum 1 — sorted so the weighted draw is
// independent of Go's randomized map iteration.
func normalizeMix(mix map[string]float64) ([]string, []float64, error) {
	known := map[string]bool{ClassCached: true, ClassFresh: true, ClassExtend: true, ClassSweep: true, ClassSeries: true}
	classes := make([]string, 0, len(mix))
	total := 0.0
	for class, w := range mix {
		if !known[class] {
			return nil, nil, fmt.Errorf("loadgen: unknown request class %q", class)
		}
		if w < 0 {
			return nil, nil, fmt.Errorf("loadgen: negative weight for class %q", class)
		}
		if w == 0 {
			continue
		}
		classes = append(classes, class)
		total += w
	}
	if len(classes) == 0 || total <= 0 {
		return nil, nil, fmt.Errorf("loadgen: mix has no positive weights")
	}
	sort.Strings(classes)
	weights := make([]float64, len(classes))
	for i, class := range classes {
		weights[i] = mix[class] / total
	}
	return classes, weights, nil
}

// pickClass maps a uniform draw onto the cumulative weights.
func pickClass(classes []string, weights []float64, u float64) string {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return classes[i]
		}
	}
	return classes[len(classes)-1]
}

// mix64 derives independent seed streams from one base seed (splitmix64
// over the pair), so the schedule, the class draw, and the fresh-spec
// family never share randomness.
func mix64(seed, stream uint64) uint64 {
	z := seed*0x9e3779b97f4a7c15 + stream + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
