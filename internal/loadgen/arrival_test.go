package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	for _, kind := range Arrivals {
		a, err := Schedule(kind, 200, 4*time.Second, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Schedule(kind, 200, 4*time.Second, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", kind)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ across identical seeds: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: offset %d differs: %v vs %v", kind, i, a[i], b[i])
			}
			if a[i] < 0 || a[i] >= 4*time.Second {
				t.Fatalf("%s: offset %d out of window: %v", kind, i, a[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: schedule not sorted at %d", kind, i)
			}
		}
		// Randomized processes must actually vary with the seed.
		if kind != ArrivalConstant {
			c, err := Schedule(kind, 200, 4*time.Second, 8)
			if err != nil {
				t.Fatal(err)
			}
			same := len(c) == len(a)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("%s: seeds 7 and 8 produced identical schedules", kind)
			}
		}
	}
}

func TestPoissonInterArrivalMean(t *testing.T) {
	const (
		rate = 500.0
		dur  = 20 * time.Second
	)
	offs, err := Schedule(ArrivalPoisson, rate, dur, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(offs))
	want := rate * dur.Seconds()
	// Poisson counts concentrate hard around the mean: 5 sigma covers any
	// seed this test will ever see.
	if sigma := math.Sqrt(want); math.Abs(n-want) > 5*sigma {
		t.Fatalf("got %d arrivals, want %.0f +- %.0f", len(offs), want, 5*sigma)
	}
	var sum time.Duration
	for i := 1; i < len(offs); i++ {
		sum += offs[i] - offs[i-1]
	}
	meanGap := float64(sum) / float64(len(offs)-1) / float64(time.Second)
	if wantGap := 1 / rate; math.Abs(meanGap-wantGap) > 0.1*wantGap {
		t.Fatalf("mean inter-arrival %.6fs, want %.6fs +- 10%%", meanGap, wantGap)
	}
}

func TestScheduleAverageRateAcrossProcesses(t *testing.T) {
	// Every process must offer the configured average rate over the
	// window, whatever its shape.
	for _, kind := range Arrivals {
		offs, err := Schedule(kind, 300, 10*time.Second, 11)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(offs)) / 10
		if got < 240 || got > 360 {
			t.Errorf("%s: average rate %.1f rps, want 300 +- 20%%", kind, got)
		}
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := Schedule(ArrivalConstant, 0, time.Second, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Schedule(ArrivalConstant, 10, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Schedule("sawtooth", 10, time.Second, 1); err == nil {
		t.Error("unknown process accepted")
	}
}
