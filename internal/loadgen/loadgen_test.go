package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"a4sim/internal/service"
)

// stubServer answers every API path with a canned success after delay,
// optionally shedding with 429 once more than maxInflight requests are in
// flight — a server whose capacity the tests control exactly.
func stubServer(t *testing.T, delay time.Duration, maxInflight int64) *httptest.Server {
	t.Helper()
	var inflight atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inflight.Add(1)
		defer inflight.Add(-1)
		if maxInflight > 0 && n > maxInflight {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.ErrorBody{Error: "stub: shedding", Status: http.StatusTooManyRequests})
			return
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.URL.Path == "/run" || r.URL.Path == "/extend":
			w.Write([]byte(`{"hash":"stub","cached":true,"report":{}}`))
		case r.URL.Path == "/sweep":
			w.Write([]byte(`{"points":[]}`))
		default:
			w.Write([]byte(`{}`))
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestLagBoundFires pins the open-loop honesty condition: against a
// server far slower than the offered rate, the bounded in-flight cap
// forces sends past their scheduled times and the run must grade itself
// dishonest — while the same load against a fast server stays honest.
func TestLagBoundFires(t *testing.T) {
	cfg := Config{
		Rate:        50,
		Duration:    500 * time.Millisecond,
		Seed:        1,
		Mix:         map[string]float64{ClassCached: 1},
		MaxInflight: 2,
		LagBoundMs:  50,
	}

	slow := stubServer(t, 150*time.Millisecond, 0)
	cfg.URL = slow.URL
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != res.Offered {
		t.Fatalf("sent %d of %d offered", res.Sent, res.Offered)
	}
	if res.Honest() {
		t.Fatalf("run against a 150ms server at 50 rps with 2 in flight graded honest (lag p99 %.1fms)", res.LagP99Ms())
	}
	if res.LagP99Ms() <= cfg.LagBoundMs {
		t.Fatalf("lag p99 %.1fms did not exceed the %vms bound", res.LagP99Ms(), cfg.LagBoundMs)
	}

	fast := stubServer(t, 0, 0)
	cfg.URL = fast.URL
	res, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Honest() {
		t.Fatalf("run against an instant server graded dishonest (lag p99 %.1fms)", res.LagP99Ms())
	}
}

// TestSearchConverges drives the saturation search against a stub whose
// capacity is known by construction (8 concurrent slots x 5ms service
// time = ~1600 rps): the search must bracket the knee, converge, and
// report a sustained rate on the right side of it.
func TestSearchConverges(t *testing.T) {
	srv := stubServer(t, 5*time.Millisecond, 8)
	sr, err := Search(context.Background(), SearchConfig{
		Load:          Config{URL: srv.URL, Seed: 9, Mix: map[string]float64{ClassCached: 1}},
		SLOP99Ms:      200,
		MinRate:       100,
		MaxRate:       3200,
		ProbeDuration: 700 * time.Millisecond,
		Tolerance:     0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.SustainedRPS < 100 || sr.SustainedRPS >= 3200 {
		t.Fatalf("sustained %.0f rps, want within (100, 3200) for a ~1600 rps stub", sr.SustainedRPS)
	}
	if !sr.Converged {
		t.Fatalf("search did not converge: %+v", sr.Probes)
	}
	if len(sr.Probes) < 3 {
		t.Fatalf("only %d probes for a bracketed search", len(sr.Probes))
	}
	// The probe log must contain the failing side too: a search that never
	// saw an unsustainable rate found a bound, not a knee.
	sawOver := false
	for _, p := range sr.Probes {
		if !p.Sustainable {
			sawOver = true
		}
	}
	if !sawOver {
		t.Fatal("no unsustainable probe recorded")
	}
}

// TestOpenLoopEndToEnd runs the full harness — priming, mixed classes,
// every endpoint — against a real in-process service and checks the
// measured result and its canonical JSON shape.
func TestOpenLoopEndToEnd(t *testing.T) {
	svc := service.New(service.Config{Workers: 4, CacheEntries: 64})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)

	res, err := Run(context.Background(), Config{
		URL:      srv.URL,
		Rate:     30,
		Duration: 2 * time.Second,
		Arrival:  ArrivalPoisson,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != res.Offered || res.Sent == 0 {
		t.Fatalf("sent %d of %d offered", res.Sent, res.Offered)
	}
	if got := res.ErrorRate(); got != 0 {
		t.Fatalf("error rate %.4f against a healthy service (outcomes %v)", got, res.Outcomes())
	}
	for _, class := range []string{ClassCached, ClassSeries} {
		h := res.Classes[class][OutcomeOK]
		if h == nil || h.Count() == 0 {
			t.Fatalf("class %s recorded no successes: %v", class, res.ClassNames())
		}
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Honest bool `json:"honest"`
		Lag    struct {
			Hist struct {
				SubBits int `json:"sub_bits"`
			} `json:"hist"`
		} `json:"lag"`
		Classes map[string]map[string]struct {
			Count uint64          `json:"count"`
			Hist  json.RawMessage `json:"hist"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("result JSON does not parse: %v", err)
	}
	if decoded.Lag.Hist.SubBits != 5 {
		t.Fatalf("lag histogram sub_bits = %d, want 5", decoded.Lag.Hist.SubBits)
	}
	if len(decoded.Classes) == 0 {
		t.Fatal("result JSON carries no classes")
	}
}

// TestClosedLoopAgainstService exercises the extracted closed-loop
// generator (the a4serve -loadgen shim's engine) end to end, pinning the
// key=value lines scripts/bench.sh greps.
func TestClosedLoopAgainstService(t *testing.T) {
	svc := service.New(service.Config{Workers: 4, CacheEntries: 64})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)

	var out, errw bytes.Buffer
	code := ClosedLoop(ClosedConfig{
		URL: srv.URL, N: 20, Clients: 4, FreshFrac: 0.25, Nonce: 77,
		Out: &out, Errw: &errw,
	})
	if code != 0 {
		t.Fatalf("closed loop exit %d: %s%s", code, out.String(), errw.String())
	}
	for _, key := range []string{"service_total_rps=", "service_cached_rps=", "loadgen_p50_ms=", "loadgen_p99_ms="} {
		if !strings.Contains(out.String(), key) {
			t.Errorf("output missing %q:\n%s", key, out.String())
		}
	}
}
