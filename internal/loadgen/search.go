package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"time"
)

// SearchConfig parameterizes a saturation search: find the highest
// arrival rate the target sustains under a p99 latency SLO.
type SearchConfig struct {
	// Load is the probe template; its Rate and Duration are overridden
	// per probe, everything else (URL, arrival, mix, caps) carries over.
	Load Config
	// SLOP99Ms is the service-level objective: probes whose successful-
	// request p99 exceeds it are unsustainable.
	SLOP99Ms float64
	// MinRate seeds the search (default 4 rps). A deployment that cannot
	// sustain MinRate reports SustainedRPS 0.
	MinRate float64
	// MaxRate caps the upward bracket (default 4096 rps): a target still
	// sustainable there reports MaxRate rather than searching forever.
	MaxRate float64
	// ProbeDuration is each probe's measurement window (default 5s).
	ProbeDuration time.Duration
	// Tolerance ends the bisection when hi/lo <= 1+Tolerance (default
	// 0.1: the sustained rate is within 10% of the true knee).
	Tolerance float64
	// MaxErrorRate is the probe error budget (default 0.01): a probe
	// shedding or failing more than this fraction is unsustainable even
	// if the survivors' p99 looks good.
	MaxErrorRate float64
}

func (sc *SearchConfig) withDefaults() SearchConfig {
	c := *sc
	if c.MinRate <= 0 {
		c.MinRate = 4
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 4096
	}
	if c.ProbeDuration <= 0 {
		c.ProbeDuration = 5 * time.Second
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.01
	}
	return c
}

// Probe records one rate trial within a search.
type Probe struct {
	Rate        float64 `json:"rate"`
	P99Ms       float64 `json:"p99_ms"`
	LagP99Ms    float64 `json:"lag_p99_ms"`
	ErrorRate   float64 `json:"error_rate"`
	Sustainable bool    `json:"sustainable"`
}

// SearchResult is a saturation search's verdict.
type SearchResult struct {
	// SustainedRPS is the highest probed rate that met the SLO, the
	// error budget, and the open-loop honesty condition; 0 if even
	// MinRate failed.
	SustainedRPS float64 `json:"sustained_rps"`
	// P99MsAtSLO is the successful-request p99 measured at SustainedRPS.
	P99MsAtSLO float64 `json:"p99_ms_at_slo"`
	// Probes lists every trial in the order taken.
	Probes []Probe `json:"probes"`
	// Converged is true when the bracket closed within Tolerance — false
	// means the search hit MaxRate still sustainable (or MinRate already
	// unsustainable) and SustainedRPS is a bound, not a knee.
	Converged bool `json:"converged"`
	// SLOP99Ms echoes the objective the search ran against.
	SLOP99Ms float64 `json:"slo_p99_ms"`
}

// Encode renders the search result as canonical JSON.
func (sr *SearchResult) Encode() ([]byte, error) {
	return json.Marshal(sr)
}

// Search finds the maximum sustainable arrival rate by geometric
// bracketing followed by bisection. A rate is sustainable iff its probe's
// successful-request p99 is within the SLO, the error rate is within
// budget, AND the probe honestly offered its rate (scheduling lag
// bounded, every event sent) — without the last condition an overloaded
// target that stalls the generator would grade as "meeting the SLO" on
// the trickle of requests that got through.
//
// Probe populations are re-derived per probe from seeds split off
// Load.Seed, so every probe offers fresh (never-cached) specs for its
// fresh share while the search as a whole stays reproducible.
func Search(ctx context.Context, sc SearchConfig) (*SearchResult, error) {
	sc = sc.withDefaults()
	if sc.SLOP99Ms <= 0 {
		return nil, fmt.Errorf("loadgen: search needs a positive p99 SLO, got %g ms", sc.SLOP99Ms)
	}
	res := &SearchResult{SLOP99Ms: sc.SLOP99Ms}
	// One tuned client for the whole search: probes at different rates reuse
	// the same keep-alive pool instead of re-dialing MaxInflight connections
	// per probe (RunPlan would otherwise build a fresh client each time).
	shared := sc.Load.withDefaults()
	searchClient := shared.Client
	if searchClient == nil {
		searchClient = NewTunedClient(shared.URL, shared.Timeout, shared.MaxInflight)
	}
	probeIdx := uint64(0)
	probe := func(rate float64) (Probe, error) {
		cfg := sc.Load
		cfg.Client = searchClient
		cfg.Rate = rate
		cfg.Duration = sc.ProbeDuration
		cfg.Seed = mix64(sc.Load.Seed, 0x5ea2c4+probeIdx)
		// The first probe primes the cache; later ones re-offer the same
		// popular set and would only re-prime cache hits.
		cfg.SkipPriming = probeIdx > 0
		probeIdx++
		r, err := RunPlan(ctx, cfg, nil)
		if err != nil {
			return Probe{}, err
		}
		p := Probe{
			Rate:      rate,
			P99Ms:     r.P99Ms(),
			LagP99Ms:  r.LagP99Ms(),
			ErrorRate: r.ErrorRate(),
		}
		p.Sustainable = r.Honest() && p.P99Ms <= sc.SLOP99Ms && p.ErrorRate <= sc.MaxErrorRate
		res.Probes = append(res.Probes, p)
		return p, nil
	}

	// Bracket: double upward from MinRate until a probe fails or MaxRate
	// holds. lo tracks the best sustainable probe seen.
	lo, hi := 0.0, 0.0
	var loProbe Probe
	for rate := sc.MinRate; rate <= sc.MaxRate; rate *= 2 {
		p, err := probe(rate)
		if err != nil {
			return res, err
		}
		if !p.Sustainable {
			hi = rate
			break
		}
		lo, loProbe = rate, p
		if rate == sc.MaxRate {
			break
		}
		if rate*2 > sc.MaxRate {
			rate = sc.MaxRate / 2 // land exactly on MaxRate next iteration
		}
	}
	switch {
	case lo == 0:
		// Even MinRate was unsustainable: report zero, not converged.
		return res, nil
	case hi == 0:
		// MaxRate held: sustained rate is a lower bound on the knee.
		res.SustainedRPS, res.P99MsAtSLO = lo, loProbe.P99Ms
		return res, nil
	}

	// Bisect the (sustainable lo, unsustainable hi) bracket.
	for hi/lo > 1+sc.Tolerance {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		mid := (lo + hi) / 2
		p, err := probe(mid)
		if err != nil {
			return res, err
		}
		if p.Sustainable {
			lo, loProbe = mid, p
		} else {
			hi = mid
		}
	}
	res.SustainedRPS, res.P99MsAtSLO = lo, loProbe.P99Ms
	res.Converged = true
	return res, nil
}
