package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestBuildPlanByteReproducible(t *testing.T) {
	cfg := Config{Rate: 80, Duration: 5 * time.Second, Arrival: ArrivalPoisson, Seed: 42}
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("identical configs produced different plan bytes")
	}

	other, err := BuildPlan(Config{Rate: 80, Duration: 5 * time.Second, Arrival: ArrivalPoisson, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	eo, err := other.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ea, eo) {
		t.Fatal("different seeds produced identical plan bytes")
	}
}

func TestBuildPlanMixAndShape(t *testing.T) {
	plan, err := BuildPlan(Config{Rate: 200, Duration: 10 * time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Priming) == 0 {
		t.Fatal("plan has no priming events")
	}
	counts := map[string]int{}
	var lastAt int64 = -1
	for i, ev := range plan.Events {
		counts[ev.Class]++
		if ev.AtUs < lastAt {
			t.Fatalf("event %d scheduled before its predecessor", i)
		}
		lastAt = ev.AtUs
		switch ev.Class {
		case ClassSeries:
			if ev.Method != "GET" {
				t.Fatalf("series-read event uses %s", ev.Method)
			}
		default:
			if ev.Method != "POST" || len(ev.Body) == 0 {
				t.Fatalf("%s event missing method/body", ev.Class)
			}
			if !json.Valid(ev.Body) {
				t.Fatalf("%s event body is not valid JSON", ev.Class)
			}
		}
	}
	total := len(plan.Events)
	for class, want := range DefaultMix {
		got := float64(counts[class]) / float64(total)
		if got < want/2 || got > want*2 {
			t.Errorf("class %s: %.3f of events, mix weight %.3f (off by >2x)", class, got, want)
		}
	}
	// Fresh bodies must be pairwise distinct (they exist to miss the cache).
	seen := map[string]bool{}
	for _, ev := range plan.Events {
		if ev.Class != ClassFresh {
			continue
		}
		if seen[string(ev.Body)] {
			t.Fatal("duplicate fresh-run body in one plan")
		}
		seen[string(ev.Body)] = true
	}
}

func TestBuildPlanRejectsBadMix(t *testing.T) {
	base := Config{Rate: 10, Duration: time.Second, Seed: 1}

	cfg := base
	cfg.Mix = map[string]float64{"mystery-class": 1}
	if _, err := BuildPlan(cfg); err == nil {
		t.Error("unknown class accepted")
	}
	cfg = base
	cfg.Mix = map[string]float64{ClassCached: -1}
	if _, err := BuildPlan(cfg); err == nil {
		t.Error("negative weight accepted")
	}
	cfg = base
	cfg.Mix = map[string]float64{ClassCached: 0}
	if _, err := BuildPlan(cfg); err == nil {
		t.Error("all-zero mix accepted")
	}
}
