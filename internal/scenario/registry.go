package scenario

import (
	"fmt"
	"sort"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

// ManagerByName resolves an LLC manager name to its harness spec. It is the
// single copy of the lookup previously repeated across cmd/a4d and the
// examples.
func ManagerByName(name string) (harness.ManagerSpec, bool) {
	switch name {
	case "default":
		return harness.Default(), true
	case "isolate":
		return harness.Isolate(), true
	case "a4-a":
		return harness.A4(core.VariantA), true
	case "a4-b":
		return harness.A4(core.VariantB), true
	case "a4-c":
		return harness.A4(core.VariantC), true
	case "a4-d", "a4":
		return harness.A4(core.VariantD), true
	}
	return harness.ManagerSpec{}, false
}

// ManagerNames lists the canonical manager names.
func ManagerNames() []string {
	return []string{"default", "isolate", "a4-a", "a4-b", "a4-c", "a4-d"}
}

// kindInfo is one workload-constructor registry entry.
type kindInfo struct {
	// cores, when positive, is the exact pinned-core count the kind needs.
	cores int
	// knobs names the kind-specific WorkloadSpec fields the kind reads;
	// any other knob set to a non-zero value is rejected, so a misplaced
	// knob fails loudly instead of silently changing the content hash.
	knobs []string
	// validate checks kind-specific knobs (cores/priority are checked
	// generically).
	validate func(w *WorkloadSpec) error
	// normalize fills defaulted knobs in place so the canonical encoding is
	// explicit; it must be idempotent.
	normalize func(w *WorkloadSpec)
	// names returns the workload name(s) the kind will register, used for
	// duplicate detection against Result's name-keyed reports.
	names func(w *WorkloadSpec) []string
	// build constructs the workload(s) into the scenario.
	build func(s *harness.Scenario, w *WorkloadSpec) error
}

func priorityOf(p string) workload.Priority {
	if p == "hpw" || p == "HPW" {
		return workload.HPW
	}
	return workload.LPW
}

func patternOf(p string) (workload.Pattern, bool) {
	switch p {
	case "sequential":
		return workload.Sequential, true
	case "random":
		return workload.Random, true
	case "zipf":
		return workload.Zipf, true
	}
	return 0, false
}

func defaultName(w *WorkloadSpec, name string) {
	if w.Name == "" {
		w.Name = name
	}
}

// fixedName rejects a user-supplied name that disagrees with a kind's fixed
// one — the name would otherwise be silently overwritten by normalize. The
// fixed name itself is accepted so canonical encodings reparse.
func fixedName(w *WorkloadSpec, name string) error {
	if w.Name != "" && w.Name != name {
		return fmt.Errorf("kind %q has the fixed name %q; drop name %q", w.Kind, name, w.Name)
	}
	return nil
}

func ownName(w *WorkloadSpec) []string { return []string{w.Name} }

// Knob bounds. The caps are far beyond any physical configuration but keep
// shifted byte counts (block_kb<<10, ws_kb<<10) well inside int64/int, so a
// hostile spec cannot overflow into a negative allocation and panic the
// serving daemon.
const (
	MaxBlockKB    = 1 << 20 // 1 GiB blocks
	MaxQueueDepth = 1 << 16
	MaxWSKB       = 1 << 31 // 2 TiB working set
	MaxInstrPerOp = 1 << 20
	MaxOverlap    = 1 << 10
)

// knobFields is the full table of kind-specific WorkloadSpec knobs: json
// name plus an is-set probe. A package test reflects over WorkloadSpec's
// json tags and fails if a new knob field is missing here, so every knob is
// guaranteed to go through the misapplied-knob rejection below.
var knobFields = []struct {
	name string
	set  func(w *WorkloadSpec) bool
}{
	{"touch", func(w *WorkloadSpec) bool { return w.Touch }},
	{"block_kb", func(w *WorkloadSpec) bool { return w.BlockKB != 0 }},
	{"queue_depth", func(w *WorkloadSpec) bool { return w.QueueDepth != 0 }},
	{"heavy", func(w *WorkloadSpec) bool { return w.Heavy }},
	{"ws_kb", func(w *WorkloadSpec) bool { return w.WSKB != 0 }},
	{"pattern", func(w *WorkloadSpec) bool { return w.Pattern != "" }},
	{"write", func(w *WorkloadSpec) bool { return w.Write }},
	{"skew", func(w *WorkloadSpec) bool { return w.Skew != 0 }},
	{"write_frac", func(w *WorkloadSpec) bool { return w.WriteFrac != 0 }},
	{"instr_per_op", func(w *WorkloadSpec) bool { return w.InstrPerOp != 0 }},
	{"cpi_base", func(w *WorkloadSpec) bool { return w.CPIBase != 0 }},
	{"overlap", func(w *WorkloadSpec) bool { return w.Overlap != 0 }},
	{"bench", func(w *WorkloadSpec) bool { return w.Bench != "" }},
	{"client_priority", func(w *WorkloadSpec) bool { return w.ClientPriority != "" }},
}

// checkKnobs rejects non-zero knob fields the kind does not read.
func checkKnobs(w *WorkloadSpec, allowed []string) error {
	ok := func(name string) bool {
		for _, a := range allowed {
			if a == name {
				return true
			}
		}
		return false
	}
	for _, k := range knobFields {
		if k.set(w) && !ok(k.name) {
			return fmt.Errorf("knob %q does not apply to kind %q", k.name, w.Kind)
		}
	}
	return nil
}

// kinds is the workload-constructor registry. Knobs per kind (each entry's
// knobs list is authoritative; anything else set non-zero is rejected):
//
//	dpdk       touch
//	fastclick  (none; fixed name)
//	fio        block_kb, queue_depth
//	ffsb       heavy
//	xmem       ws_kb, pattern (sequential|random), write
//	spec       bench (single core; fixed name = bench)
//	redis      client_priority (two cores; fixed names redis-s, redis-c)
//	synthetic  ws_kb, pattern, skew, write_frac, instr_per_op, cpi_base, overlap
var kinds = map[string]kindInfo{
	"dpdk": {
		knobs:     []string{"touch"},
		validate:  func(w *WorkloadSpec) error { return nil },
		normalize: func(w *WorkloadSpec) { defaultName(w, "dpdk") },
		names:     ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddDPDK(w.Name, w.Cores, w.Touch, priorityOf(w.Priority))
			return nil
		},
	},
	"fastclick": {
		knobs:     nil,
		validate:  func(w *WorkloadSpec) error { return fixedName(w, "fastclick") },
		normalize: func(w *WorkloadSpec) { w.Name = "fastclick" },
		names:     ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddFastclick(w.Cores, priorityOf(w.Priority))
			return nil
		},
	},
	"fio": {
		knobs: []string{"block_kb", "queue_depth"},
		validate: func(w *WorkloadSpec) error {
			if w.BlockKB < 0 || w.BlockKB > MaxBlockKB {
				return fmt.Errorf("block_kb %d outside [0,%d]", w.BlockKB, MaxBlockKB)
			}
			if w.QueueDepth < 0 || w.QueueDepth > MaxQueueDepth {
				return fmt.Errorf("queue_depth %d outside [0,%d]", w.QueueDepth, MaxQueueDepth)
			}
			return nil
		},
		normalize: func(w *WorkloadSpec) {
			defaultName(w, "fio")
			if w.BlockKB == 0 {
				w.BlockKB = 128
			}
			if w.QueueDepth == 0 {
				w.QueueDepth = 32
			}
		},
		names: ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddFIO(w.Name, w.Cores, w.BlockKB<<10, w.QueueDepth, priorityOf(w.Priority))
			return nil
		},
	},
	"ffsb": {
		knobs:    []string{"heavy"},
		validate: func(w *WorkloadSpec) error { return nil },
		normalize: func(w *WorkloadSpec) {
			if w.Name == "" {
				if w.Heavy {
					w.Name = "ffsb-h"
				} else {
					w.Name = "ffsb-l"
				}
			}
		},
		names: ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddFFSB(w.Name, w.Heavy, w.Cores, priorityOf(w.Priority))
			return nil
		},
	},
	"xmem": {
		knobs: []string{"ws_kb", "pattern", "write"},
		validate: func(w *WorkloadSpec) error {
			if w.Pattern != "" && w.Pattern != "sequential" && w.Pattern != "random" {
				return fmt.Errorf("bad xmem pattern %q (want sequential or random)", w.Pattern)
			}
			if w.WSKB < 0 || w.WSKB > MaxWSKB {
				return fmt.Errorf("ws_kb %d outside [0,%d]", w.WSKB, MaxWSKB)
			}
			return nil
		},
		normalize: func(w *WorkloadSpec) {
			defaultName(w, "xmem")
			if w.Pattern == "" {
				w.Pattern = "sequential"
			}
			if w.WSKB == 0 {
				w.WSKB = 4 << 10 // 4 MiB
			}
		},
		names: ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			pat, _ := patternOf(w.Pattern)
			s.AddXMem(w.Name, w.Cores, w.WSKB<<10, pat, w.Write, priorityOf(w.Priority))
			return nil
		},
	},
	"spec": {
		cores: 1,
		knobs: []string{"bench"},
		validate: func(w *WorkloadSpec) error {
			if _, ok := workload.SPECProfiles[w.Bench]; !ok {
				return fmt.Errorf("unknown SPEC benchmark %q", w.Bench)
			}
			return fixedName(w, w.Bench)
		},
		normalize: func(w *WorkloadSpec) { w.Name = w.Bench },
		names:     ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddSPEC(w.Bench, w.Cores[0], priorityOf(w.Priority))
			return nil
		},
	},
	"redis": {
		cores: 2,
		knobs: []string{"client_priority"},
		validate: func(w *WorkloadSpec) error {
			switch w.ClientPriority {
			case "", "hpw", "lpw", "HPW", "LPW":
			default:
				return fmt.Errorf("bad client_priority %q (want hpw or lpw)", w.ClientPriority)
			}
			return fixedName(w, "redis")
		},
		normalize: func(w *WorkloadSpec) {
			w.Name = "redis"
			if w.ClientPriority == "" {
				w.ClientPriority = w.Priority
				if w.ClientPriority == "" {
					w.ClientPriority = "lpw"
				}
			}
		},
		names: func(w *WorkloadSpec) []string { return []string{"redis-s", "redis-c"} },
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			s.AddRedisPair(w.Cores[0], w.Cores[1], priorityOf(w.Priority), priorityOf(w.ClientPriority))
			return nil
		},
	},
	"synthetic": {
		knobs: []string{"ws_kb", "pattern", "skew", "write_frac", "instr_per_op", "cpi_base", "overlap"},
		validate: func(w *WorkloadSpec) error {
			if w.Name == "" {
				return fmt.Errorf("synthetic workload needs a name")
			}
			if w.Pattern != "" {
				if _, ok := patternOf(w.Pattern); !ok {
					return fmt.Errorf("bad pattern %q (want sequential, random, or zipf)", w.Pattern)
				}
			}
			if w.WSKB <= 0 || w.WSKB > MaxWSKB {
				return fmt.Errorf("synthetic workload needs ws_kb in [1,%d]", MaxWSKB)
			}
			if w.WriteFrac < 0 || w.WriteFrac > 1 {
				return fmt.Errorf("write_frac %g outside [0,1]", w.WriteFrac)
			}
			if w.Skew < 0 || w.Skew > 10 {
				return fmt.Errorf("skew %g outside [0,10]", w.Skew)
			}
			if w.InstrPerOp < 0 || w.InstrPerOp > MaxInstrPerOp {
				return fmt.Errorf("instr_per_op %d outside [0,%d]", w.InstrPerOp, MaxInstrPerOp)
			}
			if w.CPIBase < 0 || w.CPIBase > 100 {
				return fmt.Errorf("cpi_base %g outside [0,100]", w.CPIBase)
			}
			if w.Overlap < 0 || w.Overlap > MaxOverlap {
				return fmt.Errorf("overlap %d outside [0,%d]", w.Overlap, MaxOverlap)
			}
			return nil
		},
		normalize: func(w *WorkloadSpec) {
			if w.Pattern == "" {
				w.Pattern = "sequential"
			}
			if w.InstrPerOp == 0 {
				w.InstrPerOp = 10
			}
			if w.CPIBase == 0 {
				w.CPIBase = 0.5
			}
			if w.Overlap == 0 {
				w.Overlap = 1
			}
		},
		names: ownName,
		build: func(s *harness.Scenario, w *WorkloadSpec) error {
			pat, _ := patternOf(w.Pattern)
			s.AddSynthetic(workload.SyntheticConfig{
				Name:       w.Name,
				Cores:      w.Cores,
				WSBytes:    w.WSKB << 10,
				Pattern:    pat,
				Skew:       w.Skew,
				WriteFrac:  w.WriteFrac,
				InstrPerOp: w.InstrPerOp,
				CPIBase:    w.CPIBase,
				Overlap:    w.Overlap,
			}, priorityOf(w.Priority))
			return nil
		},
	},
}

// SPECBenchNames lists the available SPEC CPU2017 proxies, sorted.
func SPECBenchNames() []string {
	out := make([]string, 0, len(workload.SPECProfiles))
	for n := range workload.SPECProfiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
