// Package scenario turns experiments into data. A Spec is a declarative,
// JSON-serializable description of one co-location scenario — global
// parameters, LLC manager, workload list, and run windows — that replaces
// the hand-built harness wiring previously repeated across cmd/ and
// examples/. Specs validate against a workload-constructor registry,
// normalize to a canonical encoding, and hash to a stable content address;
// because the simulation is deterministic, the hash fully identifies the
// report, which is what makes the result cache in internal/service sound.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"a4sim/internal/harness"
)

// Spec declares one scenario. The zero value of every optional field means
// "use the default"; Normalize makes the defaults explicit so that two
// specs differing only in spelled-out defaults share one canonical form.
type Spec struct {
	// Name labels the scenario in reports; it does not affect execution
	// identity but is part of the canonical form.
	Name string `json:"name,omitempty"`
	// Manager is the LLC management scheme: default, isolate, a4-a, a4-b,
	// a4-c, a4-d (alias a4).
	Manager string `json:"manager"`
	// Params overrides global knobs; zero fields take harness defaults.
	Params ParamSpec `json:"params"`
	// Workloads lists the co-located jobs in placement order.
	Workloads []WorkloadSpec `json:"workloads"`
	// WarmupSec and MeasureSec are the run windows in simulated seconds.
	WarmupSec  float64 `json:"warmup_sec"`
	MeasureSec float64 `json:"measure_sec"`
	// Series, when present, attaches per-second telemetry series to the
	// report (the time-resolved plane). Absent means aggregates only and
	// leaves the canonical encoding — and therefore the content and prefix
	// hashes — exactly what they were before the field existed, so every
	// cached report stays addressable.
	Series *SeriesSpec `json:"series,omitempty"`
	// Sampling, when present, runs the measurement window in sampled mode:
	// of every period_us of measured time the first detail_us execute in
	// full detail and the remainder fast-forwards, with per-second metrics
	// extrapolated from the detailed windows (warm-up is always detailed).
	// Absent means fully detailed execution and leaves the canonical
	// encoding — and therefore the content and prefix hashes — exactly what
	// they were before the field existed, so every cached report and golden
	// stays addressable. When present it is part of the prefix hash: sampled
	// and detailed runs produce different warm state, so they must not share
	// snapshot lineages.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// SamplingSpec is the JSON view of the harness sampling schedule
// (harness.SampleSpec). Zero fields take the default schedule.
type SamplingSpec struct {
	// DetailUs is the detailed interval per period in simulated µs: a
	// positive multiple of 1000 (the epoch length). Default 200000 (200 ms).
	DetailUs int64 `json:"detail_us,omitempty"`
	// PeriodUs is the schedule period in simulated µs: a multiple of
	// 1000000 (one second), at least DetailUs. Default 1000000 (1 s).
	PeriodUs int64 `json:"period_us,omitempty"`
}

// Default sampling schedule: 200 ms of detail per second, a 5× ideal
// speedup, enough to cover two NIC burst periods per detailed window.
const (
	DefaultSampleDetailUs = 200_000
	DefaultSamplePeriodUs = 1_000_000
)

// SeriesSpec selects the telemetry column groups recorded at 1 Hz during
// the measurement window and exported with the report.
type SeriesSpec struct {
	// Metrics lists the column groups: "core" (per-workload rates, IPC,
	// I/O, progress, memory and port bandwidth), "devices" (NIC drops and
	// ring depth, SSD queue depth), "occupancy" (per-workload LLC lines),
	// "controller" (A4 state, feature mask, LP zone). Empty means all.
	Metrics []string `json:"metrics,omitempty"`
}

// SeriesGroups are the valid SeriesSpec metric groups, sorted.
var SeriesGroups = []string{"controller", "core", "devices", "occupancy"}

// ParamSpec is the JSON view of the harness.Params knobs a spec may set.
// Fields left zero take the harness defaults (Table 1 testbed).
type ParamSpec struct {
	RateScale   float64 `json:"rate_scale,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	NICGbps     float64 `json:"nic_gbps,omitempty"`
	PacketBytes int     `json:"packet_bytes,omitempty"`
	RingEntries int     `json:"ring_entries,omitempty"`
	SSDGBps     float64 `json:"ssd_gbps,omitempty"`
}

// WorkloadSpec declares one workload. Kind selects the constructor from the
// registry; the remaining fields are kind-specific knobs (see the registry
// table in registry.go for which apply).
type WorkloadSpec struct {
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Cores    []int  `json:"cores,omitempty"`
	Priority string `json:"priority,omitempty"` // hpw | lpw (default lpw)

	// dpdk: process packet payloads (DPDK-T vs DPDK-NT).
	Touch bool `json:"touch,omitempty"`
	// fio: block size and queue depth.
	BlockKB    int `json:"block_kb,omitempty"`
	QueueDepth int `json:"queue_depth,omitempty"`
	// ffsb: heavy (FFSB-H) vs light (FFSB-L) profile.
	Heavy bool `json:"heavy,omitempty"`
	// xmem / synthetic: working set and access shape.
	WSKB    int64   `json:"ws_kb,omitempty"`
	Pattern string  `json:"pattern,omitempty"` // sequential | random | zipf
	Write   bool    `json:"write,omitempty"`
	Skew    float64 `json:"skew,omitempty"`
	// synthetic: compute intensity.
	WriteFrac  float64 `json:"write_frac,omitempty"`
	InstrPerOp int     `json:"instr_per_op,omitempty"`
	CPIBase    float64 `json:"cpi_base,omitempty"`
	Overlap    int     `json:"overlap,omitempty"`
	// spec: SPEC CPU2017 benchmark name.
	Bench string `json:"bench,omitempty"`
	// redis: QoS class of the client half (defaults to Priority).
	ClientPriority string `json:"client_priority,omitempty"`
}

// Default run windows for specs that leave them zero.
const (
	DefaultWarmupSec  = 2
	DefaultMeasureSec = 3
)

// Execution-cost bounds, enforced by CheckBudget. Wall-clock cost scales
// with simulated seconds and inversely with the rate scale, so the budget
// caps their product: a spec may simulate up to MaxWorkUnits seconds at
// the default scale (256), proportionally less at smaller scales. Far
// beyond any legitimate served experiment, but one hostile spec cannot
// occupy a service worker near-indefinitely.
const (
	MaxWindowSec = 3600
	MinRateScale = 1
	MaxWorkUnits = 3600
)

// CheckBudget rejects specs whose execution cost exceeds the serving
// bounds. It is a serving policy, distinct from Validate: the service
// applies it to untrusted submissions, while local CLI runs (a4d, the
// examples) may simulate as long as they like.
func (sp *Spec) CheckBudget() error {
	if sp.WarmupSec > MaxWindowSec || sp.MeasureSec > MaxWindowSec {
		return fmt.Errorf("scenario: run window exceeds %d simulated seconds (warmup %g, measure %g)",
			MaxWindowSec, sp.WarmupSec, sp.MeasureSec)
	}
	if sp.Params.RateScale > 0 && sp.Params.RateScale < MinRateScale {
		return fmt.Errorf("scenario: rate_scale %g below %d (smaller scales multiply simulation cost)",
			sp.Params.RateScale, MinRateScale)
	}
	if w := sp.workUnits(); w > MaxWorkUnits {
		return fmt.Errorf("scenario: windows × rate-scale budget %.0f exceeds %d work units (shrink the windows or raise rate_scale)",
			w, MaxWorkUnits)
	}
	return nil
}

// workUnits is the spec's execution budget usage: simulated seconds
// normalized to the default rate scale.
func (sp *Spec) workUnits() float64 {
	warm, meas := sp.WarmupSec, sp.MeasureSec
	if warm == 0 {
		warm = DefaultWarmupSec
	}
	if meas == 0 {
		meas = DefaultMeasureSec
	}
	scale := sp.Params.RateScale
	if scale <= 0 {
		scale = harness.DefaultParams().RateScale
	}
	return (warm + meas) * harness.DefaultParams().RateScale / scale
}

// StrictDecode unmarshals one JSON value strictly: unknown fields and
// trailing data are errors, so typos fail loudly instead of silently
// taking defaults. Shared by Parse and the a4serve request handlers.
func StrictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// Parse decodes a spec from JSON via StrictDecode.
func Parse(data []byte) (*Spec, error) {
	var sp Spec
	if err := StrictDecode(data, &sp); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	return &sp, nil
}

// Normalize makes every defaulted field explicit in place: manager aliases
// and priority case are folded, per-kind knob defaults are filled in, and
// fixed-name kinds get their effective names. It returns an error for specs
// that fail Validate, so a normalized spec is always buildable.
func (sp *Spec) Normalize() error {
	if err := sp.Validate(); err != nil {
		return err
	}
	mgr, _ := ManagerByName(sp.Manager)
	sp.Manager = mgr.Name() // fold aliases: "a4" -> "a4-d"
	if sp.WarmupSec == 0 {
		sp.WarmupSec = DefaultWarmupSec
	}
	if sp.MeasureSec == 0 {
		sp.MeasureSec = DefaultMeasureSec
	}
	for i := range sp.Workloads {
		w := &sp.Workloads[i]
		w.Priority = strings.ToLower(w.Priority)
		w.ClientPriority = strings.ToLower(w.ClientPriority)
		k := kinds[w.Kind]
		k.normalize(w)
		if w.Priority == "" {
			w.Priority = "lpw"
		}
	}
	if sp.Sampling != nil {
		// Spell out the default schedule so equivalent blocks share a hash.
		eff := sp.sampleSpec()
		sp.Sampling.DetailUs = eff.DetailUs
		sp.Sampling.PeriodUs = eff.PeriodUs
	}
	if sp.Series != nil {
		// Fold case, duplicates, and the empty all-groups shorthand to one
		// canonical sorted list, so equivalent selections share one hash.
		set := map[string]bool{}
		for _, m := range sp.Series.Metrics {
			set[strings.ToLower(m)] = true
		}
		if len(set) == 0 {
			for _, g := range SeriesGroups {
				set[g] = true
			}
		}
		sp.Series.Metrics = sp.Series.Metrics[:0]
		for _, g := range SeriesGroups {
			if set[g] {
				sp.Series.Metrics = append(sp.Series.Metrics, g)
			}
		}
	}
	return nil
}

// Canonical returns the canonical encoding: the normalized spec marshalled
// with the fixed field order of the Go struct. Two specs that describe the
// same scenario — regardless of JSON field order or spelled-out defaults —
// produce identical bytes.
func (sp *Spec) Canonical() ([]byte, error) {
	c := sp.Clone()
	if err := c.Normalize(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Hash returns the spec's content address: the hex sha256 of the canonical
// encoding. Identical hashes mean identical scenarios, and — because the
// simulation is deterministic — byte-identical reports.
func (sp *Spec) Hash() (string, error) {
	c, err := sp.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// PrefixHash returns the content address of the spec's run prefix: the
// canonical spec with the measurement window zeroed. Two specs share a
// prefix hash exactly when their simulations are identical up to (and
// through) any point of the measurement window — same construction, same
// manager, same warm-up — differing only in how long the window runs. That
// is the key the service's snapshot cache uses to continue longer runs from
// shorter ones instead of restarting (see internal/service).
func (sp *Spec) PrefixHash() (string, error) {
	c := sp.Clone()
	if err := c.Normalize(); err != nil {
		return "", err
	}
	c.MeasureSec = 0
	data, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Digest computes the spec's canonical encoding, content hash, and prefix
// hash in one normalization pass. Submit-and-hash paths that need all three
// — the cluster coordinator routes by prefix hash, indexes results by
// content hash, and forwards the canonical bytes — would otherwise clone
// and normalize the spec three times over.
func (sp *Spec) Digest() (canonical []byte, hash, prefixHash string, err error) {
	c := sp.Clone()
	if err := c.Normalize(); err != nil {
		return nil, "", "", err
	}
	canonical, err = json.Marshal(c)
	if err != nil {
		return nil, "", "", err
	}
	sum := sha256.Sum256(canonical)
	hash = hex.EncodeToString(sum[:])
	c.MeasureSec = 0
	prefix, err := json.Marshal(c)
	if err != nil {
		return nil, "", "", err
	}
	psum := sha256.Sum256(prefix)
	return canonical, hash, hex.EncodeToString(psum[:]), nil
}

// Clone deep-copies the spec, so callers can derive grid points or
// normalize for hashing without mutating the original.
func (sp *Spec) Clone() *Spec {
	c := *sp
	c.Workloads = make([]WorkloadSpec, len(sp.Workloads))
	for i, w := range sp.Workloads {
		c.Workloads[i] = w
		c.Workloads[i].Cores = append([]int(nil), w.Cores...)
	}
	if sp.Series != nil {
		c.Series = &SeriesSpec{Metrics: append([]string(nil), sp.Series.Metrics...)}
	}
	if sp.Sampling != nil {
		sc := *sp.Sampling
		c.Sampling = &sc
	}
	return &c
}

// Validate checks the spec against the registry and the testbed geometry.
// Errors name the offending workload and knob.
func (sp *Spec) Validate() error {
	if _, ok := ManagerByName(sp.Manager); !ok {
		return fmt.Errorf("scenario: unknown manager %q (have %v)", sp.Manager, ManagerNames())
	}
	if len(sp.Workloads) == 0 {
		return fmt.Errorf("scenario: spec %q has no workloads", sp.Name)
	}
	if sp.WarmupSec < 0 || sp.MeasureSec < 0 {
		return fmt.Errorf("scenario: negative run window (warmup %g, measure %g)", sp.WarmupSec, sp.MeasureSec)
	}
	// Params use zero-means-default; a negative value would also run the
	// default but still be baked into the content hash, so the cache would
	// hold a report whose address claims a parameterization that never ran.
	if sp.Params.RateScale < 0 || sp.Params.NICGbps < 0 || sp.Params.SSDGBps < 0 ||
		sp.Params.PacketBytes < 0 || sp.Params.RingEntries < 0 {
		return fmt.Errorf("scenario: negative param (params are zero-means-default; omit instead): %+v", sp.Params)
	}
	if sp.Series != nil {
		for _, m := range sp.Series.Metrics {
			if !validSeriesGroup(strings.ToLower(m)) {
				return fmt.Errorf("scenario: unknown series metric group %q (have %v)", m, SeriesGroups)
			}
		}
	}
	if sp.Sampling != nil {
		if err := sp.sampleSpec().Validate(); err != nil {
			return err
		}
		// Whole-second windows keep the schedule's periods (whole seconds by
		// construction) tiling the measurement window exactly.
		if sp.WarmupSec != math.Trunc(sp.WarmupSec) || sp.MeasureSec != math.Trunc(sp.MeasureSec) {
			return fmt.Errorf("scenario: sampling needs whole-second windows (warmup %g, measure %g)",
				sp.WarmupSec, sp.MeasureSec)
		}
	}
	numCores := harness.DefaultParams().Hierarchy.NumCores
	owner := map[int]string{}
	names := map[string]string{}
	for i := range sp.Workloads {
		w := &sp.Workloads[i]
		k, ok := kinds[w.Kind]
		if !ok {
			return fmt.Errorf("scenario: workload %d: unknown kind %q (have %v)", i, w.Kind, KindNames())
		}
		label := fmt.Sprintf("workload %d (%s)", i, w.Kind)
		switch w.Priority {
		case "", "hpw", "lpw", "HPW", "LPW":
		default:
			return fmt.Errorf("scenario: %s: bad priority %q (want hpw or lpw)", label, w.Priority)
		}
		if len(w.Cores) == 0 {
			return fmt.Errorf("scenario: %s: no cores", label)
		}
		if k.cores > 0 && len(w.Cores) != k.cores {
			return fmt.Errorf("scenario: %s: needs exactly %d core(s), got %d", label, k.cores, len(w.Cores))
		}
		for _, c := range w.Cores {
			if c < 0 || c >= numCores {
				return fmt.Errorf("scenario: %s: core %d outside [0,%d)", label, c, numCores)
			}
			if prev, taken := owner[c]; taken {
				return fmt.Errorf("scenario: %s: core %d already used by %s", label, c, prev)
			}
			owner[c] = label
		}
		if err := checkKnobs(w, k.knobs); err != nil {
			return fmt.Errorf("scenario: %s: %w", label, err)
		}
		if err := k.validate(w); err != nil {
			return fmt.Errorf("scenario: %s: %w", label, err)
		}
		// Duplicate detection runs on the effective names, which for
		// fixed-name kinds (fastclick, spec, redis) only normalize knows.
		eff := *w
		k.normalize(&eff)
		for _, n := range k.names(&eff) {
			if prev, dup := names[n]; dup {
				return fmt.Errorf("scenario: %s: workload name %q already used by %s", label, n, prev)
			}
			names[n] = label
		}
	}
	return nil
}

// Params resolves the harness parameters for the spec.
func (sp *Spec) harnessParams() harness.Params {
	p := harness.DefaultParams()
	if sp.Params.RateScale > 0 {
		p.RateScale = sp.Params.RateScale
	}
	if sp.Params.Seed != 0 {
		p.Seed = sp.Params.Seed
	}
	if sp.Params.NICGbps > 0 {
		p.NICGbps = sp.Params.NICGbps
	}
	if sp.Params.PacketBytes > 0 {
		p.PacketBytes = sp.Params.PacketBytes
	}
	if sp.Params.RingEntries > 0 {
		p.RingEntries = sp.Params.RingEntries
	}
	if sp.Params.SSDGBps > 0 {
		p.SSDGBps = sp.Params.SSDGBps
	}
	p.Sample = sp.sampleSpec()
	return p
}

// sampleSpec resolves the spec's sampling block (nil means disabled, zero
// fields mean the default schedule) to the harness schedule.
func (sp *Spec) sampleSpec() harness.SampleSpec {
	if sp.Sampling == nil {
		return harness.SampleSpec{}
	}
	s := harness.SampleSpec{DetailUs: sp.Sampling.DetailUs, PeriodUs: sp.Sampling.PeriodUs}
	if s.DetailUs == 0 {
		s.DetailUs = DefaultSampleDetailUs
	}
	if s.PeriodUs == 0 {
		s.PeriodUs = DefaultSamplePeriodUs
	}
	return s
}

// Build validates the spec and constructs the scenario with every workload
// registered, returning it together with the resolved manager. The caller
// owns Start and Run — cmd/a4d attaches streaming observers in between.
func (sp *Spec) Build() (*harness.Scenario, harness.ManagerSpec, error) {
	if err := sp.Validate(); err != nil {
		return nil, harness.ManagerSpec{}, err
	}
	mgr, _ := ManagerByName(sp.Manager)
	s := harness.NewScenario(sp.harnessParams())
	for i := range sp.Workloads {
		w := sp.Workloads[i] // copy: build may read normalized knobs
		kinds[w.Kind].normalize(&w)
		if err := kinds[w.Kind].build(s, &w); err != nil {
			return nil, harness.ManagerSpec{}, fmt.Errorf("scenario: workload %d (%s): %w", i, w.Kind, err)
		}
	}
	return s, mgr, nil
}

// Start normalizes the spec in place, builds the scenario, and attaches
// the manager, ready to Run. Normalizing first means callers that read the
// windows afterwards (s.Run(sp.WarmupSec, sp.MeasureSec) — the examples'
// pattern) always run the hash-covered defaults, never zero windows. A
// series block configures the monitor's telemetry plane before any window
// opens, so every measurement window records and exports the selection.
func (sp *Spec) Start() (*harness.Scenario, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	s, mgr, err := sp.Build()
	if err != nil {
		return nil, err
	}
	s.Start(mgr)
	if sp.Series != nil {
		s.Monitor.EnableSeries(sp.seriesOpts())
	}
	return s, nil
}

// validSeriesGroup reports whether g names a telemetry column group.
func validSeriesGroup(g string) bool {
	for _, s := range SeriesGroups {
		if g == s {
			return true
		}
	}
	return false
}

// seriesOpts maps the (normalized) series selection onto the monitor's
// recording options. The core group is the measurement path itself and is
// always recorded; selecting it (or nothing) just exports it.
func (sp *Spec) seriesOpts() harness.SeriesOpts {
	o := harness.SeriesOpts{Export: true}
	for _, m := range sp.Series.Metrics {
		switch strings.ToLower(m) {
		case "devices":
			o.Devices = true
		case "occupancy":
			o.Occupancy = true
		case "controller":
			o.Controller = true
		}
	}
	return o
}

// Run executes the spec end to end — build, start, warmup, measure — and
// renders the deterministic report. This is the entry point the service's
// workers use. Execution happens on a normalized clone, so the windows and
// knobs that run are exactly the ones the content hash covers.
func (sp *Spec) Run() (*Report, error) {
	run := sp.Clone()
	if err := run.Normalize(); err != nil {
		return nil, err
	}
	hash, err := run.Hash()
	if err != nil {
		return nil, err
	}
	s, err := run.Start()
	if err != nil {
		return nil, err
	}
	res := s.Run(run.WarmupSec, run.MeasureSec)
	rep := FromResult(run, hash, res)
	return rep, nil
}

// KindNames lists the registered workload kinds, sorted.
func KindNames() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
