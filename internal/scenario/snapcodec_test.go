package scenario

import (
	"bytes"
	"testing"

	"a4sim/internal/harness"
)

// snapMixSpec is forkMixSpec with the full telemetry plane enabled, so the
// open measurement window's series rides the snapshot under test.
func snapMixSpec(t *testing.T, mix string) *Spec {
	t.Helper()
	sp := forkMixSpec(t, mix)
	sp.Series = &SeriesSpec{}
	return sp
}

// startSkeleton builds the fresh, just-started scenario DecodeSnapshot
// restores onto — the receiving side of a disk rehydration or a cluster
// snapshot handoff.
func startSkeleton(t *testing.T, sp *Spec) *harness.Scenario {
	t.Helper()
	s, err := sp.Clone().Start()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runSnapRoundTripAt executes sp but, at second boundary k, snapshots the
// simulation, encodes the snapshot to bytes, decodes those bytes onto a
// fresh skeleton, abandons the original, and finishes on a fork of the
// decoded snapshot, returning the encoded report.
func runSnapRoundTripAt(t *testing.T, sp *Spec, k int) []byte {
	t.Helper()
	run := sp.Clone()
	if err := run.Normalize(); err != nil {
		t.Fatal(err)
	}
	hash, err := run.Hash()
	if err != nil {
		t.Fatal(err)
	}
	s, err := run.Start()
	if err != nil {
		t.Fatal(err)
	}
	warm, meas := int(run.WarmupSec), int(run.MeasureSec)
	inMeasure := k > warm
	if inMeasure {
		s.Warm(float64(warm))
		s.BeginMeasure()
		s.Measure(float64(k - warm))
	} else {
		s.Warm(float64(k))
	}
	data, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	sn, err := harness.DecodeSnapshot(data, startSkeleton(t, sp))
	if err != nil {
		t.Fatal(err)
	}
	f := sn.Fork()
	if inMeasure {
		f.Measure(float64(warm + meas - k))
	} else {
		f.Warm(float64(warm - k))
		f.BeginMeasure()
		f.Measure(float64(meas))
	}
	rep := FromResult(run, hash, f.EndMeasure())
	out, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotCodecMatchesFreshRun is the durability property of the PR:
// for every builtin mix, a snapshot taken mid-warm-up or mid-measurement
// (open telemetry window included) survives an encode/decode round trip —
// continuing on the decoded copy renders a Report, series and all,
// byte-identical to the uninterrupted fresh run. This is what licenses the
// service to spill warm state to disk and the cluster to ship it between
// backends.
func TestSnapshotCodecMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every builtin mix several times")
	}
	for _, mix := range BuiltinMixes() {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			t.Parallel()
			sp := snapMixSpec(t, mix)
			rep, err := sp.Run()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			warm := int(sp.WarmupSec)
			for _, k := range []int{1, warm + 1} {
				if got := runSnapRoundTripAt(t, sp, k); !bytes.Equal(got, fresh) {
					t.Errorf("snapshot round trip at t=%ds diverged from fresh run\nfresh: %s\ngot:   %s", k, fresh, got)
				}
			}
		})
	}
}

// TestDecodeSnapshotRejectsMismatch pins the decoder's validation: a
// snapshot restores only onto a scenario with the same structure, the same
// encoding version, and an intact byte stream. Everything else errors
// cleanly — never panics, never yields a half-restored scenario the caller
// could run.
func TestDecodeSnapshotRejectsMismatch(t *testing.T) {
	sp := snapMixSpec(t, "tiny")
	s := startSkeleton(t, sp)
	s.Warm(1)
	data, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: intact bytes onto a matching skeleton decode fine.
	if _, err := harness.DecodeSnapshot(append([]byte(nil), data...), startSkeleton(t, sp)); err != nil {
		t.Fatalf("intact snapshot failed to decode: %v", err)
	}

	// Structurally different scenario.
	other := snapMixSpec(t, "micro")
	if _, err := harness.DecodeSnapshot(append([]byte(nil), data...), startSkeleton(t, other)); err == nil {
		t.Error("decoding onto a different mix's scenario must fail")
	}

	// Not a snapshot at all.
	if _, err := harness.DecodeSnapshot([]byte("not a snapshot, just bytes"), startSkeleton(t, sp)); err == nil {
		t.Error("garbage bytes must fail to decode")
	}

	// Unknown version.
	bumped := append([]byte(nil), data...)
	bumped[4]++
	if _, err := harness.DecodeSnapshot(bumped, startSkeleton(t, sp)); err == nil {
		t.Error("unknown snapshot version must fail to decode")
	}

	// Truncations anywhere in the stream error instead of panicking. Cover
	// every cut in the header region and samples throughout the body.
	cuts := []int{0, 1, 2, 3}
	for n := 4; n < len(data); n += 1 + len(data)/97 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if _, err := harness.DecodeSnapshot(data[:n], startSkeleton(t, sp)); err == nil {
			t.Errorf("truncation to %d bytes must fail to decode", n)
		}
	}

	// Trailing junk is rejected, not ignored.
	padded := append(append([]byte(nil), data...), 0xA4)
	if _, err := harness.DecodeSnapshot(padded, startSkeleton(t, sp)); err == nil {
		t.Error("trailing bytes must fail to decode")
	}
}
