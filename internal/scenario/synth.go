package scenario

import "fmt"

// Spec-family synthesis: deterministic generators of related-but-distinct
// specs, the request populations the load harness (internal/loadgen) draws
// from. A family is a base spec plus a salt; variant i is a pure function
// of (base, salt, i), so two generators with the same inputs produce
// byte-identical canonical specs — the property that makes a load run's
// request schedule reproducible.

// Family deterministically synthesizes distinct spec variants from one
// base. Each variant differs in its RNG seed (and carries a variant name),
// so every variant has a distinct content hash — and therefore a distinct
// prefix hash — and must execute rather than hit the result cache.
type Family struct {
	base *Spec
	salt uint64
}

// NewFamily returns a generator over base. The salt namespaces the family:
// distinct salts yield disjoint variant populations, which is how repeated
// load runs against one long-lived daemon avoid re-hitting a previous
// run's cached entries. The base is cloned; later caller mutations do not
// leak into variants.
func NewFamily(base *Spec, salt uint64) *Family {
	return &Family{base: base.Clone(), salt: salt}
}

// Variant returns the i-th member of the family: the base with a seed
// drawn from a splitmix64 stream over (salt, i) and a name recording its
// coordinates. Pure in (base, salt, i).
func (f *Family) Variant(i uint64) *Spec {
	sp := f.base.Clone()
	sp.Name = fmt.Sprintf("%s-fam%d-%d", sp.Name, f.salt, i)
	sp.Params.Seed = synthMix(f.salt, i)
	return sp
}

// VariantSeed exposes the seed Variant(i) assigns, for callers that embed
// family coordinates into other request shapes (sweep axes, for one).
func (f *Family) VariantSeed(i uint64) uint64 { return synthMix(f.salt, i) }

// ManagerVariants returns one clone of base per manager name, in input
// order — the "popular set" shape: a handful of specs a fleet of clients
// asks for repeatedly, differing only in management scheme. Unknown
// manager names are passed through verbatim and will fail the variant's
// validation at run time, exactly as a hand-written spec would.
func ManagerVariants(base *Spec, managers []string) []*Spec {
	out := make([]*Spec, len(managers))
	for i, mgr := range managers {
		sp := base.Clone()
		sp.Manager = mgr
		out[i] = sp
	}
	return out
}

// synthMix is splitmix64 over the (salt, i) pair: cheap, well-distributed,
// and stable across platforms, so families hash identically everywhere.
// The +1 keeps variant seeds nonzero — a zero spec seed means "use the
// default" and would fold distinct variants onto one hash.
func synthMix(salt, i uint64) uint64 {
	z := salt*0x9e3779b97f4a7c15 + i + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}
