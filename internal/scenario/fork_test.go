package scenario

import (
	"bytes"
	"testing"

	"a4sim/internal/harness"
)

// forkMixSpec loads a builtin mix trimmed for test speed: high rate scale,
// 2 s warm-up, 2 s measurement. The manager stays whatever the mix declares
// (a4-d for the real-world mixes), so the controller state machine is part
// of the forked state under test.
func forkMixSpec(t *testing.T, mix string) *Spec {
	t.Helper()
	sp, err := BuiltinMix(mix)
	if err != nil {
		t.Fatal(err)
	}
	sp.Params.RateScale = 8192
	sp.WarmupSec = 2
	sp.MeasureSec = 2
	return sp
}

// runForkedAt executes sp but forks the whole simulation at second boundary
// k (1 <= k < warmup+measure), abandons the original, and finishes on the
// fork, returning the encoded report.
func runForkedAt(t *testing.T, sp *Spec, k int) []byte {
	t.Helper()
	run := sp.Clone()
	if err := run.Normalize(); err != nil {
		t.Fatal(err)
	}
	hash, err := run.Hash()
	if err != nil {
		t.Fatal(err)
	}
	s, err := run.Start()
	if err != nil {
		t.Fatal(err)
	}
	warm, meas := int(run.WarmupSec), int(run.MeasureSec)
	var f *harness.Scenario
	if k <= warm {
		s.Warm(float64(k))
		f = s.Fork()
		f.Warm(float64(warm - k))
		f.BeginMeasure()
		f.Measure(float64(meas))
	} else {
		s.Warm(float64(warm))
		s.BeginMeasure()
		s.Measure(float64(k - warm))
		f = s.Fork()
		f.Measure(float64(warm + meas - k))
	}
	rep := FromResult(run, hash, f.EndMeasure())
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestForkAtEverySecondMatchesFreshRun is the fork-determinism property of
// the PR: for every builtin mix and every second boundary of the run,
// forking mid-flight and finishing on the fork renders a Report
// byte-identical to the uninterrupted fresh run. Runs under -race in CI, so
// it also proves forks share no mutable state with their abandoned
// originals.
func TestForkAtEverySecondMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every builtin mix several times")
	}
	for _, mix := range BuiltinMixes() {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			t.Parallel()
			sp := forkMixSpec(t, mix)
			rep, err := sp.Run()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			total := int(sp.WarmupSec + sp.MeasureSec)
			for k := 1; k < total; k++ {
				if got := runForkedAt(t, sp, k); !bytes.Equal(got, fresh) {
					t.Errorf("fork at t=%ds diverged from fresh run\nfresh: %s\nfork:  %s", k, fresh, got)
				}
			}
		})
	}
}

// TestPrefixHashGroupsWindows pins PrefixHash semantics: specs differing
// only in measure_sec share a prefix; any other difference splits it.
func TestPrefixHashGroupsWindows(t *testing.T) {
	base := forkMixSpec(t, "tiny")
	p1, err := base.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	longer := base.Clone()
	longer.MeasureSec = 30
	p2, err := longer.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("measure_sec must not affect the prefix hash")
	}
	h1, _ := base.Hash()
	h2, _ := longer.Hash()
	if h1 == h2 {
		t.Error("measure_sec must affect the full hash")
	}
	warmed := base.Clone()
	warmed.WarmupSec = 7
	p3, err := warmed.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("warmup_sec is part of the prefix and must change its hash")
	}
	reseeded := base.Clone()
	reseeded.Params.Seed = 999
	if p4, _ := reseeded.PrefixHash(); p4 == p1 {
		t.Error("seed is part of the prefix and must change its hash")
	}
}
