package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"a4sim/internal/harness"
	"a4sim/internal/stats"
)

// Report is the deterministic, serializable view of one measurement window.
// Workloads and ports are sorted by name so that encoding a Report is a
// pure function of the simulation outcome: same spec hash, same bytes.
type Report struct {
	Spec    string  `json:"spec,omitempty"` // spec name
	Hash    string  `json:"hash"`           // spec content address
	Manager string  `json:"manager"`
	Seconds float64 `json:"seconds"`

	MemReadGBps  float64 `json:"mem_read_gbps"`
	MemWriteGBps float64 `json:"mem_write_gbps"`

	Ports     []PortReport     `json:"ports,omitempty"`
	Workloads []WorkloadReport `json:"workloads"`

	// Series is the per-second telemetry of the measurement window, present
	// only when the spec carried a series block. Its canonical encoding is
	// deterministic (stats.Series), so reports with series remain
	// byte-identical for equal hashes; without one, the encoding is
	// byte-identical to the pre-telemetry report format.
	Series *stats.Series `json:"series,omitempty"`
}

// PortReport is one PCIe port's window bandwidth.
type PortReport struct {
	Name    string  `json:"name"`
	InGBps  float64 `json:"in_gbps"`
	OutGBps float64 `json:"out_gbps"`
}

// WorkloadReport is one workload's window metrics (harness.WorkloadResult
// with JSON names).
type WorkloadReport struct {
	Name  string `json:"name"`
	Class string `json:"class"`

	LLCHitRate  float64 `json:"llc_hit_rate"`
	MLCMissRate float64 `json:"mlc_miss_rate"`
	LLCMissRate float64 `json:"llc_miss_rate"`
	DCAMissRate float64 `json:"dca_miss_rate"`
	LeakRate    float64 `json:"leak_rate"`
	IPC         float64 `json:"ipc"`

	IOReadGBps  float64 `json:"io_read_gbps,omitempty"`
	IOWriteGBps float64 `json:"io_write_gbps,omitempty"`

	ProgressRate float64 `json:"progress_rate"`

	AvgLatUs float64 `json:"avg_lat_us,omitempty"`
	P99LatUs float64 `json:"p99_lat_us,omitempty"`

	ReadLatMs float64 `json:"read_lat_ms,omitempty"`
	ProcLatMs float64 `json:"proc_lat_ms,omitempty"`

	DMALeaks  int64 `json:"dma_leaks,omitempty"`
	DMABloats int64 `json:"dma_bloats,omitempty"`
}

// FromResult renders a harness result into the deterministic report form.
func FromResult(sp *Spec, hash string, res *harness.Result) *Report {
	// Callers pass a normalized spec, so Manager is already canonical.
	rep := &Report{
		Spec:         sp.Name,
		Hash:         hash,
		Manager:      sp.Manager,
		Seconds:      res.Seconds,
		MemReadGBps:  res.MemReadGBps,
		MemWriteGBps: res.MemWriteGBps,
		Series:       res.Series,
	}
	ports := make([]string, 0, len(res.PortInGBps))
	for name := range res.PortInGBps {
		ports = append(ports, name)
	}
	sort.Strings(ports)
	for _, name := range ports {
		rep.Ports = append(rep.Ports, PortReport{
			Name: name, InGBps: res.PortInGBps[name], OutGBps: res.PortOutGBps[name],
		})
	}
	names := make([]string, 0, len(res.Workloads))
	for name := range res.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := res.Workloads[name]
		rep.Workloads = append(rep.Workloads, WorkloadReport{
			Name:         w.Name,
			Class:        w.Class.String(),
			LLCHitRate:   w.LLCHitRate,
			MLCMissRate:  w.MLCMissRate,
			LLCMissRate:  w.LLCMissRate,
			DCAMissRate:  w.DCAMissRate,
			LeakRate:     w.LeakRate,
			IPC:          w.IPC,
			IOReadGBps:   w.IOReadGBps,
			IOWriteGBps:  w.IOWriteGBps,
			ProgressRate: w.ProgressRate,
			AvgLatUs:     w.AvgLatUs,
			P99LatUs:     w.P99LatUs,
			ReadLatMs:    w.ReadLatMs,
			ProcLatMs:    w.ProcLatMs,
			DMALeaks:     w.DMALeaks,
			DMABloats:    w.DMABloats,
		})
	}
	return rep
}

// Encode returns the report's canonical JSON bytes. Go's encoder emits
// struct fields in declared order and shortest-round-trip floats, so equal
// reports encode to equal bytes.
func (r *Report) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// DecodeReport parses bytes produced by Encode.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("scenario: decode report: %w", err)
	}
	return &r, nil
}

// W returns a workload's report by name, or a zero value if missing.
func (r *Report) W(name string) *WorkloadReport {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return &WorkloadReport{Name: name}
}

// String renders a human-readable table, for CLI consumers of cached
// reports.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s  manager=%s  window=%.0fs  hash=%.12s\n",
		r.Spec, r.Manager, r.Seconds, r.Hash)
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %10s %10s %10s\n",
		"workload", "llcHit", "ipc", "io GB/s", "avgLat us", "p99 us", "prog/s")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "%-11s %8.3f %8.3f %8.2f %10.1f %10.1f %10.0f\n",
			w.Name, w.LLCHitRate, w.IPC, w.IOReadGBps, w.AvgLatUs, w.P99LatUs, w.ProgressRate)
	}
	fmt.Fprintf(&b, "memory rd=%.2f wr=%.2f GB/s\n", r.MemReadGBps, r.MemWriteGBps)
	return b.String()
}
