package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenReports pins the measurement path across the telemetry-plane
// refactor: the specs under testdata/golden were executed by the
// pre-series accumulator code and their canonical report bytes committed.
// Re-running them must reproduce those bytes exactly — aggregates reduced
// from per-second series are bit-identical to the incremental sums they
// replaced (including the fractional-window case, where progress and
// latency cover seconds that never reached a series row), and a spec
// without a series block canonicalizes, hashes, and reports exactly as it
// did before the field existed.
func TestGoldenReports(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "golden", "*.spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no golden specs found")
	}
	for _, specPath := range specs {
		name := strings.TrimSuffix(filepath.Base(specPath), ".spec.json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(specPath)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := sp.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, data) {
				t.Errorf("canonical spec encoding changed:\n got %s\nwant %s", canon, data)
			}
			rep, err := sp.Run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			want, err := os.ReadFile(strings.TrimSuffix(specPath, ".spec.json") + ".report.json")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report bytes diverged from pre-refactor golden\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
