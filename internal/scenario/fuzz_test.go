package scenario

import (
	"bytes"
	"testing"
)

// FuzzParseSpec fuzzes the spec decode/normalize/hash pipeline with the
// invariants the service relies on:
//
//   - Parse never panics, whatever the bytes.
//   - A spec that canonicalizes must hash, its canonical form must reparse,
//     and the reparse must canonicalize to the same bytes (round-trip
//     fixpoint) with the same content hash — otherwise the result cache
//     would fragment or, worse, alias distinct scenarios.
//   - The prefix hash is equally stable, or snapshot continuation would
//     fork the wrong warm state.
//
// Run with `go test -fuzz FuzzParseSpec ./internal/scenario`; the embedded
// builtin mixes plus the hand-written cases below seed the corpus, and
// testdata/fuzz holds regression inputs.
func FuzzParseSpec(f *testing.F) {
	for _, mix := range BuiltinMixes() {
		data, err := mixFS.ReadFile("mixes/" + mix + ".json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"manager":"a4","workloads":[{"kind":"xmem","cores":[0]}]}`))
	f.Add([]byte(`{"manager":"isolate","params":{"rate_scale":512,"seed":7},` +
		`"workloads":[{"kind":"redis","cores":[1,2],"priority":"HPW"}],"warmup_sec":1,"measure_sec":2}`))
	f.Add([]byte(`{"manager":"default","workloads":[{"kind":"synthetic","name":"s",` +
		`"cores":[3],"ws_kb":64,"pattern":"zipf","skew":0.5}]}`))
	f.Add([]byte(`{"manager":"nope"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"manager":"default","workloads":[{"kind":"spec","bench":"mcf","cores":[0]}]}`))
	f.Add([]byte(`{"manager":"default","series":{},"workloads":[{"kind":"xmem","cores":[0]}]}`))
	f.Add([]byte(`{"manager":"a4-d","series":{"metrics":["DEVICES","core","devices"]},` +
		`"workloads":[{"kind":"dpdk","cores":[0,1],"touch":true}]}`))
	f.Add([]byte(`{"manager":"default","series":{"metrics":["nope"]},"workloads":[{"kind":"xmem","cores":[0]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return // rejected input; not panicking is the assertion
		}
		can, err := sp.Canonical()
		if err != nil {
			// Parseable but invalid spec: hashing must fail the same way.
			if _, herr := sp.Hash(); herr == nil {
				t.Fatalf("Canonical rejected the spec but Hash accepted it: %v", err)
			}
			return
		}
		h1, err := sp.Hash()
		if err != nil {
			t.Fatalf("canonicalizable spec failed to hash: %v", err)
		}
		p1, err := sp.PrefixHash()
		if err != nil {
			t.Fatalf("canonicalizable spec failed to prefix-hash: %v", err)
		}

		sp2, err := Parse(can)
		if err != nil {
			t.Fatalf("canonical encoding does not reparse: %v\n%s", err, can)
		}
		can2, err := sp2.Canonical()
		if err != nil {
			t.Fatalf("canonical encoding does not re-canonicalize: %v\n%s", err, can)
		}
		if !bytes.Equal(can, can2) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%s\nvs\n%s", can, can2)
		}
		h2, err := sp2.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash unstable across canonical round-trip: %s vs %s", h1, h2)
		}
		p2, err := sp2.PrefixHash()
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("prefix hash unstable across canonical round-trip: %s vs %s", p1, p2)
		}
		// A normalized spec must still validate (Normalize is not allowed to
		// produce an unbuildable spec).
		if err := sp2.Validate(); err != nil {
			t.Fatalf("canonical spec fails validation: %v\n%s", err, can)
		}
	})
}
