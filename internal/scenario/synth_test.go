package scenario

import (
	"bytes"
	"testing"
)

func TestFamilyVariantDeterministic(t *testing.T) {
	base, err := BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a := NewFamily(base, 7)
	b := NewFamily(base, 7)
	for i := uint64(0); i < 8; i++ {
		ca, err := a.Variant(i).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Variant(i).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca, cb) {
			t.Fatalf("variant %d differs across identical families", i)
		}
	}
}

func TestFamilyVariantsDistinct(t *testing.T) {
	base, err := BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	fam := NewFamily(base, 1)
	other := NewFamily(base, 2)
	seen := map[string]uint64{}
	for i := uint64(0); i < 32; i++ {
		for _, sp := range []*Spec{fam.Variant(i), other.Variant(i)} {
			h, err := sp.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := seen[h]; dup {
				t.Fatalf("variant %d collides with variant %d (hash %s)", i, prev, h)
			}
			seen[h] = i
			if err := sp.Validate(); err != nil {
				t.Fatalf("variant %d invalid: %v", i, err)
			}
			if sp.Params.Seed == 0 {
				t.Fatalf("variant %d got the zero seed", i)
			}
		}
	}
	// Mutating the base after NewFamily must not change variants.
	mutBase := base.Clone()
	famBefore, err := NewFamily(mutBase, 9).Variant(0).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	famMut := NewFamily(mutBase, 9)
	mutBase.Manager = "isolate"
	famAfter, err := famMut.Variant(0).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(famBefore, famAfter) {
		t.Fatal("mutating the base spec leaked into an existing family")
	}
}

func TestManagerVariants(t *testing.T) {
	base, err := BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	managers := []string{"a4-d", "default", "isolate"}
	variants := ManagerVariants(base, managers)
	if len(variants) != len(managers) {
		t.Fatalf("got %d variants, want %d", len(variants), len(managers))
	}
	seen := map[string]bool{}
	for i, sp := range variants {
		if sp.Manager != managers[i] {
			t.Fatalf("variant %d manager = %q, want %q", i, sp.Manager, managers[i])
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("variant %s invalid: %v", managers[i], err)
		}
		h, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Fatalf("manager variants collide at %q", managers[i])
		}
		seen[h] = true
	}
}
