package scenario

import (
	"bytes"
	"testing"

	"a4sim/internal/harness"
)

// TestSamplingAbsentKeepsHashes pins the compatibility contract of the
// sampling block: a spec without one canonicalizes to the exact bytes it
// did before the field existed (no "sampling" key ever appears), so every
// content hash, prefix hash, cached snapshot, and golden report minted
// before sampled mode stays valid. A present block, however, is part of
// both hashes — sampled and detailed runs must never share a cache entry
// or a snapshot lineage.
func TestSamplingAbsentKeepsHashes(t *testing.T) {
	for _, mix := range BuiltinMixes() {
		sp, err := BuiltinMix(mix)
		if err != nil {
			t.Fatal(err)
		}
		can, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(can, []byte("sampling")) {
			t.Errorf("%s: canonical encoding of an unsampled spec leaks a sampling key: %s", mix, can)
		}
		h0, err := sp.Hash()
		if err != nil {
			t.Fatal(err)
		}
		p0, err := sp.PrefixHash()
		if err != nil {
			t.Fatal(err)
		}

		sampled := sp.Clone()
		sampled.Sampling = &SamplingSpec{}
		h1, err := sampled.Hash()
		if err != nil {
			t.Fatal(err)
		}
		p1, err := sampled.PrefixHash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 == h0 {
			t.Errorf("%s: sampling block must change the content hash", mix)
		}
		if p1 == p0 {
			t.Errorf("%s: sampling block must change the prefix hash (sampled runs need their own snapshot lineage)", mix)
		}

		// The empty block and the spelled-out default schedule are the same
		// scenario and must share one hash.
		explicit := sp.Clone()
		explicit.Sampling = &SamplingSpec{DetailUs: DefaultSampleDetailUs, PeriodUs: DefaultSamplePeriodUs}
		if h2, _ := explicit.Hash(); h2 != h1 {
			t.Errorf("%s: explicit default schedule must hash like the empty block", mix)
		}

		// Normalize spells the defaults into the block in place.
		if err := sampled.Normalize(); err != nil {
			t.Fatal(err)
		}
		if sampled.Sampling.DetailUs != DefaultSampleDetailUs || sampled.Sampling.PeriodUs != DefaultSamplePeriodUs {
			t.Errorf("%s: Normalize left sampling defaults unspelled: %+v", mix, sampled.Sampling)
		}

		// Dropping the block restores the original identity exactly.
		back := sampled.Clone()
		back.Sampling = nil
		if h3, _ := back.Hash(); h3 != h0 {
			t.Errorf("%s: removing the sampling block must restore the unsampled hash", mix)
		}
	}
}

// TestSamplingSpecValidation pins the schedule constraints: epoch-aligned
// detail, whole-second period, detail within the period.
func TestSamplingSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		s    SamplingSpec
		ok   bool
	}{
		{"defaults", SamplingSpec{}, true},
		{"explicit", SamplingSpec{DetailUs: 200_000, PeriodUs: 1_000_000}, true},
		{"full-detail", SamplingSpec{DetailUs: 1_000_000, PeriodUs: 1_000_000}, true},
		{"two-second-period", SamplingSpec{DetailUs: 500_000, PeriodUs: 2_000_000}, true},
		{"sub-epoch detail", SamplingSpec{DetailUs: 1500, PeriodUs: 1_000_000}, false},
		{"negative detail", SamplingSpec{DetailUs: -1000, PeriodUs: 1_000_000}, false},
		{"fractional period", SamplingSpec{DetailUs: 200_000, PeriodUs: 1_500_000}, false},
		{"detail exceeds period", SamplingSpec{DetailUs: 2_000_000, PeriodUs: 1_000_000}, false},
	}
	for _, c := range cases {
		sp := forkMixSpec(t, "tiny")
		s := c.s
		sp.Sampling = &s
		err := sp.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected validation error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid schedule passed validation", c.name)
		}
	}
}

// TestSampledMatchesDetailedWithinBounds is the accuracy property of
// sampled mode: fork one warm snapshot, run the measurement window detailed
// on one fork and sampled on the other, and pin per-metric relative error
// bounds. Both forks start from byte-identical state, so every divergence
// below is sampling error — the extrapolation model's, not the workloads'.
//
// The run deliberately stays at the default rate scale (256) and the
// open-loop manager: sampling's accuracy contract (DESIGN.md §15) assumes
// workload dynamics faster than the detail window — at scale 256 the NIC
// burst period is ~100 ms against the 200 ms window — and an allocation
// policy that does not feed extrapolated telemetry back into allocation
// decisions mid-window. The fork-determinism and snapshot tests cover
// sampled runs under the a4-d controller; this one isolates the
// extrapolation error itself.
func TestSampledMatchesDetailedWithinBounds(t *testing.T) {
	sp, err := BuiltinMix("micro")
	if err != nil {
		t.Fatal(err)
	}
	sp.Manager = "default"
	sp.WarmupSec = 8
	sp.MeasureSec = 4
	sp.Sampling = &SamplingSpec{} // default 200 ms detail per 1 s period
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	s, err := sp.Start()
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(sp.WarmupSec)

	detailed := s.Fork()
	detailed.P.Sample = harness.SampleSpec{} // strip the schedule: full detail
	sampled := s.Fork()

	window := func(f *harness.Scenario) *harness.Result {
		f.BeginMeasure()
		f.Measure(sp.MeasureSec)
		return f.EndMeasure()
	}
	d := window(detailed)
	m := window(sampled)

	relErr := func(det, smp float64) float64 {
		if det == 0 {
			if smp == 0 {
				return 0
			}
			return 1
		}
		e := (smp - det) / det
		if e < 0 {
			e = -e
		}
		return e
	}
	// floor: metrics whose detailed value sits below it are compared
	// absolutely (|diff| <= floor) — relative error on a near-zero rate
	// measures noise, not model quality.
	check := func(name string, det, smp, bound, floor float64) {
		t.Helper()
		if det < floor && smp < floor {
			diff := smp - det
			if diff < 0 {
				diff = -diff
			}
			if diff > floor {
				t.Errorf("%s: sampled %.6g vs detailed %.6g (both near zero, |diff| > %g)", name, smp, det, floor)
			}
			return
		}
		if e := relErr(det, smp); e > bound {
			t.Errorf("%s: sampled %.6g vs detailed %.6g (err %.2f%% > %.0f%%)",
				name, smp, det, e*100, bound*100)
		} else {
			t.Logf("%s: detailed %.6g sampled %.6g err %.2f%%", name, det, smp, e*100)
		}
	}

	// Pinned aggregates and their bounds (the issue's ≤5% target).
	check("mem_read_gbps", d.MemReadGBps, m.MemReadGBps, 0.05, 0)
	check("mem_write_gbps", d.MemWriteGBps, m.MemWriteGBps, 0.05, 0)
	for _, wl := range []string{"dpdk-t", "fio", "xmem1", "xmem3"} {
		dw, mw := d.W(wl), m.W(wl)
		check(wl+".progress_rate", dw.ProgressRate, mw.ProgressRate, 0.05, 0)
		check(wl+".llc_hit_rate", dw.LLCHitRate, mw.LLCHitRate, 0.05, 0.01)
		check(wl+".ipc", dw.IPC, mw.IPC, 0.05, 0.001)
	}
	check("fio.io_read_gbps", d.W("fio").IOReadGBps, m.W("fio").IOReadGBps, 0.05, 0)
}

// TestSampledRunDeterministic pins that sampled mode keeps the simulator's
// core property: the same sampled spec renders byte-identical reports on
// every run, and forking mid-measurement (straddling detailed windows and
// fast-forward gaps) stays on the same trajectory.
func TestSampledRunDeterministic(t *testing.T) {
	sp := forkMixSpec(t, "tiny")
	sp.Sampling = &SamplingSpec{}
	sp.Series = &SeriesSpec{}

	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	again, err := rep2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, again) {
		t.Fatalf("sampled run is not deterministic\nfirst:  %s\nsecond: %s", fresh, again)
	}

	total := int(sp.WarmupSec + sp.MeasureSec)
	for k := 1; k < total; k++ {
		if got := runForkedAt(t, sp, k); !bytes.Equal(got, fresh) {
			t.Errorf("sampled fork at t=%ds diverged from fresh run\nfresh: %s\nfork:  %s", k, fresh, got)
		}
	}
}

// TestSampledSnapshotRoundTrip extends the snapshot-codec property to
// sampled runs: a snapshot taken mid-measurement of a sampled window (new
// fast-forward state, schedule fingerprint, and extrapolation trackers all
// on the wire) decodes onto a fresh skeleton and finishes byte-identical
// to the uninterrupted sampled run.
func TestSampledSnapshotRoundTrip(t *testing.T) {
	sp := snapMixSpec(t, "tiny")
	sp.Sampling = &SamplingSpec{}

	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	warm := int(sp.WarmupSec)
	for _, k := range []int{1, warm + 1} {
		if got := runSnapRoundTripAt(t, sp, k); !bytes.Equal(got, fresh) {
			t.Errorf("sampled snapshot round trip at t=%ds diverged\nfresh: %s\ngot:   %s", k, fresh, got)
		}
	}

	// A sampled snapshot must refuse to restore onto a detailed scenario
	// (and vice versa): the schedules produce different futures, so the
	// fingerprint keeps the lineages apart.
	run := sp.Clone()
	if err := run.Normalize(); err != nil {
		t.Fatal(err)
	}
	s, err := run.Start()
	if err != nil {
		t.Fatal(err)
	}
	s.Warm(1)
	data, err := s.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	det := sp.Clone()
	det.Sampling = nil
	if _, err := harness.DecodeSnapshot(data, startSkeleton(t, det)); err == nil {
		t.Error("sampled snapshot decoded onto a detailed scenario")
	} else {
		t.Logf("cross-schedule restore rejected: %v", err)
	}
}
