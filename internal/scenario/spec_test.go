package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// tinySpec returns a minimal valid spec for hashing tests.
func tinySpec() *Spec {
	return &Spec{
		Name:    "t",
		Manager: "a4-d",
		Workloads: []WorkloadSpec{
			{Kind: "xmem", Name: "xmem", Cores: []int{0}, Priority: "hpw", WSKB: 1024, Pattern: "sequential"},
		},
	}
}

func mustHash(t *testing.T, sp *Spec) string {
	t.Helper()
	h, err := sp.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return h
}

func TestHashStableAcrossFieldOrder(t *testing.T) {
	a := []byte(`{
		"manager": "a4-d",
		"name": "t",
		"workloads": [
			{"priority": "hpw", "cores": [0], "kind": "xmem", "ws_kb": 1024, "name": "xmem", "pattern": "sequential"}
		]
	}`)
	b := []byte(`{
		"name": "t",
		"workloads": [
			{"kind": "xmem", "name": "xmem", "cores": [0], "priority": "hpw", "ws_kb": 1024, "pattern": "sequential"}
		],
		"manager": "a4-d"
	}`)
	spA, err := Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	spB, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := mustHash(t, spA), mustHash(t, spB); ha != hb {
		t.Fatalf("field order changed hash: %s vs %s", ha, hb)
	}
}

func TestHashStableAcrossDefaultedFields(t *testing.T) {
	implicit := tinySpec()

	explicit := tinySpec()
	explicit.WarmupSec = DefaultWarmupSec
	explicit.MeasureSec = DefaultMeasureSec
	explicit.Workloads[0].Pattern = "sequential"

	if hi, he := mustHash(t, implicit), mustHash(t, explicit); hi != he {
		t.Fatalf("spelled-out defaults changed hash: %s vs %s", hi, he)
	}

	// Priority case folds: HPW and hpw are one scenario.
	upper := tinySpec()
	upper.Workloads[0].Priority = "HPW"
	if mustHash(t, upper) != mustHash(t, implicit) {
		t.Fatal("priority case changed hash")
	}

	// Manager aliases fold to one canonical name.
	alias := tinySpec()
	alias.Manager = "a4"
	if mustHash(t, alias) != mustHash(t, implicit) {
		t.Fatal("manager alias a4 hashed differently from a4-d")
	}

	// Defaulted fio knobs equal explicit ones.
	fioImplicit := &Spec{
		Manager:   "default",
		Workloads: []WorkloadSpec{{Kind: "fio", Cores: []int{0, 1}}},
	}
	fioExplicit := &Spec{
		Manager: "default",
		Workloads: []WorkloadSpec{{
			Kind: "fio", Name: "fio", Cores: []int{0, 1}, Priority: "lpw",
			BlockKB: 128, QueueDepth: 32,
		}},
	}
	if mustHash(t, fioImplicit) != mustHash(t, fioExplicit) {
		t.Fatal("defaulted fio knobs hashed differently from explicit ones")
	}
}

func TestHashDistinguishesScenarios(t *testing.T) {
	base := tinySpec()
	seen := map[string]string{mustHash(t, base): "base"}
	variants := map[string]*Spec{}

	v := tinySpec()
	v.Manager = "isolate"
	variants["manager"] = v

	v = tinySpec()
	v.Workloads[0].WSKB = 2048
	variants["ws_kb"] = v

	v = tinySpec()
	v.Workloads[0].Cores = []int{1}
	variants["cores"] = v

	v = tinySpec()
	v.Params.Seed = 7
	variants["seed"] = v

	v = tinySpec()
	v.MeasureSec = 5
	variants["measure"] = v

	for what, sp := range variants {
		h := mustHash(t, sp)
		if prev, dup := seen[h]; dup {
			t.Errorf("%s variant collides with %s", what, prev)
		}
		seen[h] = what
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	sp, err := BuiltinMix("hpw-heavy")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical bytes reparse to a spec with the same canonical bytes.
	sp2, err := Parse(c1)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v", err)
	}
	c2, err := sp2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical not a fixed point:\n%s\nvs\n%s", c1, c2)
	}
	// Canonical never mutates the caller's spec.
	if sp2.Workloads[0].Name == "" {
		t.Fatal("normalize did not make names explicit in canonical form")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(sp *Spec)
		want string
	}{
		{"bad manager", func(sp *Spec) { sp.Manager = "lru" }, "unknown manager"},
		{"unknown kind", func(sp *Spec) { sp.Workloads[0].Kind = "memcached" }, "unknown kind"},
		{"no workloads", func(sp *Spec) { sp.Workloads = nil }, "no workloads"},
		{"no cores", func(sp *Spec) { sp.Workloads[0].Cores = nil }, "no cores"},
		{"core out of range", func(sp *Spec) { sp.Workloads[0].Cores = []int{99} }, "outside"},
		{"bad priority", func(sp *Spec) { sp.Workloads[0].Priority = "urgent" }, "bad priority"},
		{"negative window", func(sp *Spec) { sp.MeasureSec = -1 }, "negative run window"},
		{
			"overlapping cores",
			func(sp *Spec) {
				sp.Workloads = append(sp.Workloads, WorkloadSpec{
					Kind: "xmem", Name: "x2", Cores: []int{0}, WSKB: 512,
				})
			},
			"already used",
		},
		{
			"duplicate names",
			func(sp *Spec) {
				sp.Workloads = append(sp.Workloads, WorkloadSpec{
					Kind: "xmem", Name: "xmem", Cores: []int{1}, WSKB: 512,
				})
			},
			`name "xmem" already used`,
		},
		{
			"unknown SPEC bench",
			func(sp *Spec) {
				sp.Workloads = append(sp.Workloads, WorkloadSpec{
					Kind: "spec", Bench: "gcc", Cores: []int{1},
				})
			},
			"unknown SPEC benchmark",
		},
		{
			"spec core count",
			func(sp *Spec) {
				sp.Workloads = append(sp.Workloads, WorkloadSpec{
					Kind: "spec", Bench: "x264", Cores: []int{1, 2},
				})
			},
			"exactly 1 core",
		},
		{
			"bad xmem pattern",
			func(sp *Spec) { sp.Workloads[0].Pattern = "stride" },
			"bad xmem pattern",
		},
		{
			"inapplicable knob",
			func(sp *Spec) { sp.Workloads[0].QueueDepth = 64 },
			`knob "queue_depth" does not apply`,
		},
		{
			"block_kb overflow",
			func(sp *Spec) {
				sp.Workloads = []WorkloadSpec{
					{Kind: "fio", Cores: []int{0}, BlockKB: 1 << 53},
				}
			},
			"block_kb",
		},
		{
			"ws_kb overflow",
			func(sp *Spec) { sp.Workloads[0].WSKB = 1 << 53 },
			"ws_kb",
		},
		{
			"negative param",
			func(sp *Spec) { sp.Params.RateScale = -5 },
			"negative param",
		},
		{
			"fixed-name conflict",
			func(sp *Spec) {
				sp.Workloads = append(sp.Workloads, WorkloadSpec{
					Kind: "spec", Bench: "x264", Name: "my-x264", Cores: []int{1},
				})
			},
			"fixed name",
		},
		{
			"inapplicable knob on dpdk",
			func(sp *Spec) {
				sp.Workloads = []WorkloadSpec{
					{Kind: "dpdk", Cores: []int{0}, Touch: true, Bench: "x264"},
				}
			},
			`knob "bench" does not apply`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := tinySpec()
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, err := sp.Hash(); err == nil {
				t.Fatal("Hash succeeded on invalid spec")
			}
		})
	}
}

// TestKnobTableCoversWorkloadSpec pins knobFields to WorkloadSpec: every
// kind-specific field must appear in the table, so a future knob cannot
// bypass the misapplied-knob rejection.
func TestKnobTableCoversWorkloadSpec(t *testing.T) {
	generic := map[string]bool{"kind": true, "name": true, "cores": true, "priority": true}
	inTable := map[string]bool{}
	for _, k := range knobFields {
		inTable[k.name] = true
	}
	rt := reflect.TypeOf(WorkloadSpec{})
	for i := 0; i < rt.NumField(); i++ {
		tag := strings.SplitN(rt.Field(i).Tag.Get("json"), ",", 2)[0]
		if tag == "" || tag == "-" || generic[tag] {
			continue
		}
		if !inTable[tag] {
			t.Errorf("WorkloadSpec field %q (json %q) missing from knobFields", rt.Field(i).Name, tag)
		}
	}
	// Every knob a kind declares must exist in the table too.
	for kind, k := range kinds {
		for _, n := range k.knobs {
			if !inTable[n] {
				t.Errorf("kind %q declares unknown knob %q", kind, n)
			}
		}
	}
}

func TestStartNormalizesWindows(t *testing.T) {
	sp := tinySpec() // windows left zero
	s, err := sp.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sp.WarmupSec != DefaultWarmupSec || sp.MeasureSec != DefaultMeasureSec {
		t.Fatalf("Start left windows at (%g, %g); examples reading them would run zero windows",
			sp.WarmupSec, sp.MeasureSec)
	}
	if s == nil {
		t.Fatal("no scenario")
	}
}

// TestCheckBudget pins the serving-policy bounds: they reject costly specs
// without making them invalid (local CLI runs stay unrestricted).
func TestCheckBudget(t *testing.T) {
	cases := []struct {
		name string
		mut  func(sp *Spec)
		want string
	}{
		{"oversized window", func(sp *Spec) { sp.MeasureSec = 1e15 }, "exceeds"},
		{"tiny rate scale", func(sp *Spec) { sp.Params.RateScale = 0.001 }, "rate_scale"},
		{"work budget", func(sp *Spec) { sp.WarmupSec = 3000; sp.MeasureSec = 600; sp.Params.RateScale = 1 }, "work units"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := tinySpec()
			tc.mut(sp)
			if err := sp.Validate(); err != nil {
				t.Fatalf("budget-bounded spec should still Validate, got %v", err)
			}
			err := sp.CheckBudget()
			if err == nil {
				t.Fatalf("CheckBudget accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := tinySpec().CheckBudget(); err != nil {
		t.Fatalf("tiny spec over budget: %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"manager": "a4-d", "wrkloads": []}`))
	if err == nil {
		t.Fatal("Parse accepted a misspelled field")
	}
}

func TestBuiltinMixesValidate(t *testing.T) {
	mixes := BuiltinMixes()
	if len(mixes) < 4 {
		t.Fatalf("expected at least 4 builtin mixes, got %v", mixes)
	}
	for _, name := range mixes {
		sp, err := BuiltinMix(name)
		if err != nil {
			t.Fatalf("BuiltinMix(%s): %v", name, err)
		}
		if sp.Name != name {
			t.Errorf("mix %s: spec name %q", name, sp.Name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("mix %s invalid: %v", name, err)
		}
		if _, _, err := sp.Build(); err != nil {
			t.Errorf("mix %s does not build: %v", name, err)
		}
	}
	if _, err := BuiltinMix("nope"); err == nil {
		t.Fatal("BuiltinMix accepted unknown name")
	}
}

func TestManagerRegistry(t *testing.T) {
	for _, name := range ManagerNames() {
		m, ok := ManagerByName(name)
		if !ok {
			t.Fatalf("ManagerByName(%s) missing", name)
		}
		if m.Name() != name {
			t.Errorf("ManagerByName(%s).Name() = %s", name, m.Name())
		}
	}
	if _, ok := ManagerByName("a4"); !ok {
		t.Error("alias a4 not accepted")
	}
	if _, ok := ManagerByName("bogus"); ok {
		t.Error("bogus manager accepted")
	}
}

func TestRunTinyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	sp, err := BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sp.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sp.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two runs of the same spec encoded differently:\n%s\nvs\n%s", b1, b2)
	}
	if r1.W("dpdk-t").ProgressRate <= 0 {
		t.Error("tiny mix report has no dpdk-t progress")
	}
	dec, err := DecodeReport(b1)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash != r1.Hash || dec.W("xmem").LLCHitRate != r1.W("xmem").LLCHitRate {
		t.Error("report did not round-trip through Encode/DecodeReport")
	}
}

// TestDigestMatchesIndividualHashes pins that the one-pass Digest — the
// cluster coordinator's routing primitive — agrees exactly with the
// separately computed Canonical, Hash, and PrefixHash.
func TestDigestMatchesIndividualHashes(t *testing.T) {
	sp, err := BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	canon, hash, prefix, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}
	wantCanon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, wantCanon) {
		t.Errorf("Digest canonical differs from Canonical():\n%s\nvs\n%s", canon, wantCanon)
	}
	wantHash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hash != wantHash {
		t.Errorf("Digest hash %s != Hash() %s", hash, wantHash)
	}
	wantPrefix, err := sp.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	if prefix != wantPrefix {
		t.Errorf("Digest prefix %s != PrefixHash() %s", prefix, wantPrefix)
	}

	// Specs differing only in measure_sec share the prefix but not the hash.
	longer := sp.Clone()
	longer.MeasureSec = sp.MeasureSec + 3
	_, lHash, lPrefix, err := longer.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if lPrefix != prefix {
		t.Error("measure_sec change moved the prefix hash")
	}
	if lHash == hash {
		t.Error("measure_sec change did not move the content hash")
	}

	// Digest hashes a normalized clone; the receiver keeps its raw form.
	if sp.MeasureSec != 1 {
		t.Errorf("Digest mutated the spec: measure_sec = %g", sp.MeasureSec)
	}

	bad := sp.Clone()
	bad.Manager = "bogus"
	if _, _, _, err := bad.Digest(); err == nil {
		t.Error("Digest accepted an invalid spec")
	}
}
