package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed mixes/*.json
var mixFS embed.FS

// BuiltinMixes lists the embedded mix names, sorted. These are the paper's
// Table 2 co-location mixes (hpw-heavy, lpw-heavy), the §3 microbenchmark
// mix (micro), and a fast smoke mix (tiny).
func BuiltinMixes() []string {
	entries, err := mixFS.ReadDir("mixes")
	if err != nil {
		panic(fmt.Sprintf("scenario: embedded mixes missing: %v", err))
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(out)
	return out
}

// BuiltinMix loads an embedded mix spec by name. The returned spec is a
// fresh copy the caller may mutate (override manager, windows, params)
// before running.
func BuiltinMix(name string) (*Spec, error) {
	data, err := mixFS.ReadFile("mixes/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: unknown builtin mix %q (have %v)", name, BuiltinMixes())
	}
	sp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: builtin mix %q: %w", name, err)
	}
	return sp, nil
}
