// Package ssd models the testbed's local storage: a RAID-0 array of NVMe
// SSDs behind one PCIe port. Commands (block reads or writes) are submitted
// with a target buffer address; the array services in-flight commands at a
// configurable aggregate line rate with a fixed per-command overhead, which
// yields the real device's throughput curve: IOPS-bound at small blocks,
// bandwidth-bound (saturated) at large ones. Read commands DMA-write the
// block's lines into the host buffer through the hierarchy (hitting DCA ways
// when DDIO is active for the port); write commands DMA-read from the host.
package ssd

import (
	"a4sim/internal/hierarchy"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
)

// Op distinguishes command directions.
type Op uint8

// Command directions.
const (
	OpRead  Op = iota // device -> host (DMA write)
	OpWrite           // host -> device (DMA read)
)

// Command is one NVMe command.
type Command struct {
	Op       Op
	Buf      uint64 // first line address of the host buffer
	Lines    int    // block size in lines
	WL       pcm.WorkloadID
	Cookie   int     // caller-defined tag (e.g. queue slot)
	Submit   float64 // submission time in ticks
	Complete float64 // completion time in ticks, set by the model

	progress int
	overhead int // remaining per-command overhead lines
}

// Config describes the array.
type Config struct {
	Name string
	Port int
	// LinesPerSec is the aggregate service rate in lines/second (already
	// divided by the global rate scale). Four Gen3 980 PROs behind a x16
	// switch deliver ~13 GB/s, i.e. ~200 M lines/s unscaled.
	LinesPerSec float64
	// OverheadLines is the fixed per-command cost expressed in line-times;
	// it models command processing/IOPS limits and makes small blocks slower.
	OverheadLines int
	// ChunkLines is the service quantum per in-flight command per scheduling
	// round (round-robin across the queue), modeling intra-array striping.
	ChunkLines int
	// Parallelism bounds how many queued commands are serviced concurrently
	// (the array's internal lanes). Commands beyond the window wait, so
	// completions stream out instead of finishing in lockstep.
	Parallelism int
}

// SSD is the array model; it implements sim.Actor.
type SSD struct {
	cfg      Config
	h        *hierarchy.Hierarchy
	inflight []*Command
	next     int // round-robin cursor
	done     []*Command

	completedBytes int64
	servicedCmds   int64
}

// New builds the array.
func New(cfg Config, h *hierarchy.Hierarchy) *SSD {
	if cfg.ChunkLines <= 0 {
		cfg.ChunkLines = 64
	}
	if cfg.OverheadLines < 0 {
		cfg.OverheadLines = 0
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 64
	}
	return &SSD{cfg: cfg, h: h}
}

// Clone returns an independent copy of a command, including its private
// service progress. Commands are owned by exactly one queue at a time (the
// array's in-flight/done lists until Drain, the consuming workload's
// completion queues after), so each owner deep-copies its own commands when
// the simulation forks.
func (c *Command) Clone() *Command {
	n := *c
	return &n
}

// Fork returns an independent deep copy of the array wired to the given
// (already forked) hierarchy. In-flight and completed-but-undrained commands
// are cloned, so the fork's service schedule continues identically.
func (s *SSD) Fork(h *hierarchy.Hierarchy) *SSD {
	f := &SSD{
		cfg:            s.cfg,
		h:              h,
		next:           s.next,
		completedBytes: s.completedBytes,
		servicedCmds:   s.servicedCmds,
	}
	if s.inflight != nil {
		f.inflight = make([]*Command, len(s.inflight))
		for i, c := range s.inflight {
			f.inflight[i] = c.Clone()
		}
	}
	if s.done != nil {
		f.done = make([]*Command, len(s.done))
		for i, c := range s.done {
			f.done[i] = c.Clone()
		}
	}
	return f
}

// Name implements sim.Actor.
func (s *SSD) Name() string { return s.cfg.Name }

// Port returns the PCIe port index the array is attached to.
func (s *SSD) Port() int { return s.cfg.Port }

// OpsPerSecond implements sim.Actor; one op is one line-time of service.
func (s *SSD) OpsPerSecond(now sim.Tick) float64 { return s.cfg.LinesPerSec }

// QueueDepth returns the number of in-flight commands.
func (s *SSD) QueueDepth() int { return len(s.inflight) }

// CompletedBytes returns lifetime bytes moved by completed commands.
func (s *SSD) CompletedBytes() int64 { return s.completedBytes }

// Submit enqueues a command. The caller retrieves completions with Drain.
func (s *SSD) Submit(c *Command) {
	c.progress = 0
	c.overhead = s.cfg.OverheadLines
	s.inflight = append(s.inflight, c)
}

// Drain returns and clears the completed-command list.
func (s *SSD) Drain() []*Command {
	d := s.done
	s.done = nil
	return d
}

// DrainFor returns and removes the completions belonging to one workload,
// leaving other workloads' completions queued. Multiple consumers sharing
// the array (e.g. FFSB-H and FFSB-L) each collect only their own I/O.
func (s *SSD) DrainFor(wl pcm.WorkloadID) []*Command {
	var mine, rest []*Command
	for _, c := range s.done {
		if c.WL == wl {
			mine = append(mine, c)
		} else {
			rest = append(rest, c)
		}
	}
	s.done = rest
	return mine
}

// FastForward implements sim.FastForwarder with the freeze-and-shift model:
// the service queue is frozen (no lines move, no commands complete — the
// monitor extrapolates device throughput from the detailed windows) and
// every queued timestamp shifts with the clock, so submit-to-complete
// latencies observed after the gap exclude the skipped interval. The array
// holds no RNG state, so no draws are accounted.
func (s *SSD) FastForward(now, dt sim.Tick) {
	d := float64(dt)
	for _, c := range s.inflight {
		c.Submit += d
	}
	for _, c := range s.done {
		c.Submit += d
		c.Complete += d
	}
}

// Step services up to budget line-times across the in-flight queue.
func (s *SSD) Step(now sim.Tick, budget int) int {
	if len(s.inflight) == 0 || budget <= 0 {
		return 0
	}
	width := float64(sim.TicksPerEpoch / sim.InterleaveSlices)
	total := budget
	spent := 0
	for spent < total && len(s.inflight) > 0 {
		window := len(s.inflight)
		if window > s.cfg.Parallelism {
			window = s.cfg.Parallelism
		}
		if s.next >= window {
			s.next = 0
		}
		c := s.inflight[s.next]
		// Per-command overhead burns service time without moving data.
		if c.overhead > 0 {
			burn := min(c.overhead, total-spent)
			c.overhead -= burn
			spent += burn
			if c.overhead > 0 {
				break // budget exhausted mid-overhead
			}
		}
		chunk := min(s.cfg.ChunkLines, total-spent)
		chunk = min(chunk, c.Lines-c.progress)
		for i := 0; i < chunk; i++ {
			addr := c.Buf + uint64(c.progress)
			if c.Op == OpRead {
				s.h.DMAWrite(s.cfg.Port, c.WL, addr)
			} else {
				s.h.DMARead(s.cfg.Port, c.WL, addr)
			}
			c.progress++
		}
		spent += chunk
		if c.progress >= c.Lines {
			c.Complete = float64(now) + float64(spent)*width/float64(total)
			s.completedBytes += int64(c.Lines) * 64
			s.servicedCmds++
			s.done = append(s.done, c)
			s.inflight = append(s.inflight[:s.next], s.inflight[s.next+1:]...)
			continue // do not advance cursor past the removed element
		}
		s.next++
	}
	return spent
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
