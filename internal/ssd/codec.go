package ssd

import (
	"a4sim/internal/codec"
	"a4sim/internal/pcm"
)

// EncodeState appends one command, including its private service progress.
// Commands move between the array's queues and workload completion queues,
// so both packages encode them through this one wire shape.
func (c *Command) EncodeState(w *codec.Writer) {
	w.U8(uint8(c.Op))
	w.U64(c.Buf)
	w.Int(c.Lines)
	w.I64(int64(c.WL))
	w.Int(c.Cookie)
	w.F64(c.Submit)
	w.F64(c.Complete)
	w.Int(c.progress)
	w.Int(c.overhead)
}

// DecodeCommand reads a command written by Command.EncodeState.
func DecodeCommand(r *codec.Reader) *Command {
	c := &Command{}
	c.Op = Op(r.U8())
	c.Buf = r.U64()
	c.Lines = r.Int()
	c.WL = pcm.WorkloadID(r.I64())
	c.Cookie = r.Int()
	c.Submit = r.F64()
	c.Complete = r.F64()
	c.progress = r.Int()
	c.overhead = r.Int()
	if r.Err() != nil {
		return nil
	}
	return c
}

// encodeCommands appends a count-prefixed command list.
func encodeCommands(w *codec.Writer, cmds []*Command) {
	w.Int(len(cmds))
	for _, c := range cmds {
		c.EncodeState(w)
	}
}

// decodeCommands reads a list written by encodeCommands.
func decodeCommands(r *codec.Reader) []*Command {
	n := r.Int()
	if r.Err() != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.Failf("ssd: snapshot claims %d queued commands", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	cmds := make([]*Command, n)
	for i := range cmds {
		cmds[i] = DecodeCommand(r)
		if r.Err() != nil {
			return nil
		}
	}
	return cmds
}

// EncodeState appends the array's dynamic state: in-flight and undrained
// completed commands, the round-robin cursor, and lifetime service
// counters. Configuration is structural.
func (s *SSD) EncodeState(w *codec.Writer) {
	encodeCommands(w, s.inflight)
	encodeCommands(w, s.done)
	w.Int(s.next)
	w.I64(s.completedBytes)
	w.I64(s.servicedCmds)
}

// DecodeState restores state written by EncodeState.
func (s *SSD) DecodeState(r *codec.Reader) {
	inflight := decodeCommands(r)
	done := decodeCommands(r)
	next := r.Int()
	completedBytes := r.I64()
	servicedCmds := r.I64()
	if r.Err() != nil {
		return
	}
	s.inflight = inflight
	s.done = done
	s.next = next
	s.completedBytes = completedBytes
	s.servicedCmds = servicedCmds
}
