package ssd

import (
	"testing"

	"a4sim/internal/hierarchy"
	"a4sim/internal/pcm"
)

func newTestSSD(t *testing.T, cfg Config) (*SSD, *hierarchy.Hierarchy, pcm.WorkloadID) {
	t.Helper()
	f := pcm.NewFabric(1)
	id := f.Register("fio")
	h := hierarchy.New(hierarchy.TestConfig(), f)
	if cfg.Name == "" {
		cfg.Name = "ssd0"
	}
	cfg.Port = 1
	if cfg.LinesPerSec == 0 {
		cfg.LinesPerSec = 1e6
	}
	return New(cfg, h), h, id
}

func TestReadCommandCompletes(t *testing.T) {
	s, h, id := newTestSSD(t, Config{})
	cmd := &Command{Op: OpRead, Buf: 4096, Lines: 8, WL: id, Cookie: 5, Submit: 0}
	s.Submit(cmd)
	if s.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d", s.QueueDepth())
	}
	spent := s.Step(0, 1000)
	if spent == 0 {
		t.Fatalf("no service performed")
	}
	done := s.Drain()
	if len(done) != 1 || done[0].Cookie != 5 {
		t.Fatalf("completion missing: %+v", done)
	}
	if done[0].Complete <= done[0].Submit {
		t.Fatalf("completion time not set")
	}
	// The block's lines were DMA-written into the hierarchy.
	for l := uint64(0); l < 8; l++ {
		if line, _ := h.LLC().Probe(4096 + l); !line.Valid {
			t.Fatalf("line %d not written", l)
		}
	}
	if s.CompletedBytes() != 8*64 {
		t.Fatalf("CompletedBytes = %d", s.CompletedBytes())
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("command still queued")
	}
}

func TestWriteCommandReadsHost(t *testing.T) {
	s, h, id := newTestSSD(t, Config{})
	s.Submit(&Command{Op: OpWrite, Buf: 8192, Lines: 4, WL: id})
	s.Step(0, 1000)
	if len(s.Drain()) != 1 {
		t.Fatalf("write command did not complete")
	}
	// Host-to-device transfers account as outbound PCIe traffic.
	if h.PCIe().Port(1).OutboundBytes() != 4*64 {
		t.Fatalf("outbound bytes = %d", h.PCIe().Port(1).OutboundBytes())
	}
}

func TestPerCommandOverheadSlowsSmallBlocks(t *testing.T) {
	// With a fixed overhead, many small commands consume more service time
	// per byte than one large command.
	small, _, idS := newTestSSD(t, Config{OverheadLines: 64})
	budget := 64*8 + 64*8 // overhead + data for 8 one-line commands... measured below
	for i := 0; i < 8; i++ {
		small.Submit(&Command{Op: OpRead, Buf: uint64(1000 + i*64), Lines: 8, WL: idS, Cookie: i})
	}
	spentSmall := small.Step(0, 100000)
	bytesSmall := 8 * 8 * 64
	_ = budget

	large, _, idL := newTestSSD(t, Config{OverheadLines: 64})
	large.Submit(&Command{Op: OpRead, Buf: 50000, Lines: 64, WL: idL})
	spentLarge := large.Step(0, 100000)
	bytesLarge := 64 * 64

	effSmall := float64(bytesSmall) / float64(spentSmall)
	effLarge := float64(bytesLarge) / float64(spentLarge)
	if effSmall >= effLarge {
		t.Errorf("small blocks should be less efficient: small=%.2f large=%.2f", effSmall, effLarge)
	}
}

func TestParallelismWindow(t *testing.T) {
	s, _, id := newTestSSD(t, Config{Parallelism: 2, ChunkLines: 4})
	for i := 0; i < 6; i++ {
		s.Submit(&Command{Op: OpRead, Buf: uint64(1000 + i*100), Lines: 16, WL: id, Cookie: i})
	}
	// Service exactly enough for the first two commands.
	s.Step(0, 32)
	done := s.Drain()
	for _, c := range done {
		if c.Cookie > 1 {
			t.Errorf("command %d completed outside the parallelism window", c.Cookie)
		}
	}
}

func TestIdleStepIsFree(t *testing.T) {
	s, _, _ := newTestSSD(t, Config{})
	if spent := s.Step(0, 100); spent != 0 {
		t.Errorf("idle SSD should not burn budget, spent %d", spent)
	}
}

func TestPortAccessor(t *testing.T) {
	s, _, _ := newTestSSD(t, Config{})
	if s.Port() != 1 || s.Name() != "ssd0" {
		t.Errorf("identity accessors wrong")
	}
	if s.OpsPerSecond(0) != 1e6 {
		t.Errorf("rate accessor wrong")
	}
}

func TestDrainForRoutesPerWorkload(t *testing.T) {
	f := pcm.NewFabric(1)
	idA := f.Register("a")
	idB := f.Register("b")
	h := hierarchy.New(hierarchy.TestConfig(), f)
	s := New(Config{Name: "ssd0", Port: 1, LinesPerSec: 1e6}, h)
	s.Submit(&Command{Op: OpRead, Buf: 1000, Lines: 2, WL: idA, Cookie: 1})
	s.Submit(&Command{Op: OpRead, Buf: 2000, Lines: 2, WL: idB, Cookie: 2})
	s.Step(0, 10000)
	a := s.DrainFor(idA)
	if len(a) != 1 || a[0].WL != idA {
		t.Fatalf("DrainFor(a) = %+v", a)
	}
	b := s.DrainFor(idB)
	if len(b) != 1 || b[0].WL != idB {
		t.Fatalf("DrainFor(b) = %+v", b)
	}
	if len(s.DrainFor(idA)) != 0 {
		t.Fatalf("double drain should be empty")
	}
}
