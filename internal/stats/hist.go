package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// Histogram is an HDR-style log-linear histogram for latency-class values:
// each power-of-two octave is split into 32 linear sub-buckets, so any
// recorded value lands in a bucket whose width is at most ~3.1% of the
// value. That makes quantiles cheap (one bucket walk), merges exact
// (bucket-wise addition), and the memory bound small (≲2k buckets across
// the whole int64 range), while the canonical JSON encoding stays a pure
// function of the recorded multiset — equal histograms encode to equal
// bytes, the same determinism contract Series carries.
//
// Values are non-negative integers in whatever unit the caller picks (the
// service records microseconds); negatives clamp to zero rather than
// corrupting the bucket index.
type Histogram struct {
	counts []uint64 // dense, indexed by histIndex, grown on demand
	total  uint64
	sum    int64
}

// histSubBits fixes the sub-bucket resolution: 2^5 = 32 linear sub-buckets
// per octave. It is a structural constant of the encoding — changing it
// changes every bucket index — so it is pinned in both the JSON and binary
// forms and validated on decode.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a non-negative value to its bucket. Values below one full
// octave of sub-buckets get exact unit buckets; above that, the top
// histSubBits bits below the leading bit select the sub-bucket.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	return (exp-histSubBits+1)*histSubCount + int((v>>(uint(exp-histSubBits)))&(histSubCount-1))
}

// histLower returns the smallest value bucket i can hold — the value
// Quantile reports for a rank that lands in the bucket.
func histLower(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	exp := i/histSubCount + histSubBits - 1
	return int64(histSubCount+i%histSubCount) << uint(exp-histSubBits)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := histIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += v
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Quantile returns the value at quantile p in [0, 1]: the lower bound of
// the bucket containing the rank-⌈p·count⌉ recorded value, so the answer
// under-reports by at most one bucket width (~3.1% relative). Deterministic
// for a given multiset, and 0 for an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return float64(histLower(i))
		}
	}
	return float64(histLower(len(h.counts) - 1))
}

// Merge adds o's recorded values into h. Merging is exact — bucket-wise
// addition — so it is associative and commutative, and merging per-client
// histograms equals recording every value into one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Clone returns an independent copy, so a lock-guarded histogram can be
// snapshotted once and read (exposed, quantiled) outside the lock.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		counts: append([]uint64(nil), h.counts...),
		total:  h.total,
		sum:    h.sum,
	}
}

// Cumulative returns the distribution at power-of-two boundaries for
// exposition: bounds[k] is 2^k (covering the recorded range) and cum[k]
// counts the recorded values strictly below it. Empty for an empty
// histogram.
func (h *Histogram) Cumulative() (bounds []int64, cum []uint64) {
	maxIdx := -1
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			maxIdx = i
			break
		}
	}
	if maxIdx < 0 {
		return nil, nil
	}
	var running uint64
	next := 0 // first bucket index not yet folded into running
	for bound := int64(1); ; bound <<= 1 {
		edge := histIndex(bound) // buckets below edge hold values < bound
		for ; next < edge && next < len(h.counts); next++ {
			running += h.counts[next]
		}
		bounds = append(bounds, bound)
		cum = append(cum, running)
		// The shift guard stops before bound overflows int64 (values at the
		// top of the range end up covered by the +Inf bucket exposition adds).
		if bound > histLower(maxIdx) || bound >= 1<<62 {
			return bounds, cum
		}
	}
}

// wireHist is the canonical JSON shape: the structural sub-bucket constant,
// the totals, and the non-empty buckets as [index, count] pairs in
// ascending index order.
type wireHist struct {
	SubBits int         `json:"sub_bits"`
	Count   uint64      `json:"count"`
	Sum     int64       `json:"sum"`
	Buckets [][2]uint64 `json:"buckets"`
}

// MarshalJSON emits the canonical encoding: equal histograms (same recorded
// multiset) encode to equal bytes.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	w := wireHist{SubBits: histSubBits, Count: h.total, Sum: h.sum, Buckets: [][2]uint64{}}
	for i, c := range h.counts {
		if c != 0 {
			w.Buckets = append(w.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses bytes produced by MarshalJSON, validating the
// structural constant, bucket ordering, and that the bucket counts sum to
// the header count.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w wireHist
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.SubBits != histSubBits {
		return fmt.Errorf("stats: histogram sub_bits %d, want %d", w.SubBits, histSubBits)
	}
	n := &Histogram{total: w.Count, sum: w.Sum}
	last := -1
	var seen uint64
	for _, b := range w.Buckets {
		i := int(b[0])
		if i <= last {
			return fmt.Errorf("stats: histogram buckets out of order at index %d", i)
		}
		last = i
		if i >= len(n.counts) {
			grown := make([]uint64, i+1)
			copy(grown, n.counts)
			n.counts = grown
		}
		n.counts[i] = b[1]
		seen += b[1]
	}
	if seen != w.Count {
		return fmt.Errorf("stats: histogram buckets sum to %d, header says %d", seen, w.Count)
	}
	*h = *n
	return nil
}

// Encode returns the canonical JSON bytes.
func (h *Histogram) Encode() ([]byte, error) { return json.Marshal(h) }

// DecodeHistogram parses bytes produced by Encode.
func DecodeHistogram(data []byte) (*Histogram, error) {
	var h Histogram
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("stats: decode histogram: %w", err)
	}
	return &h, nil
}
