package stats

import (
	"encoding/json"
	"fmt"
)

// Series is a fixed-cadence (1 Hz) columnar time series: a set of named
// float64 columns that all advance together, one row per simulated second.
// It is the storage type of the telemetry plane — harness.Monitor appends
// one row per measured second, measurement-window aggregates are reductions
// over the columns, and reports carry the canonical encoding.
//
// Series is append-only, which is what makes run extension cheap: a forked
// simulation clones the series and keeps appending, so an extended run's
// series is byte-identical to a fresh longer run's (the fork contract,
// pinned by internal/service's tests).
type Series struct {
	names []string
	index map[string]int
	cols  [][]float64
	rows  int
}

// NewSeries returns an empty series with the given columns, in order. The
// column set is fixed at creation so that every row has full arity and the
// canonical encoding is a pure function of the appended values.
func NewSeries(names ...string) *Series {
	s := &Series{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
		cols:  make([][]float64, len(names)),
	}
	for i, n := range names {
		if _, dup := s.index[n]; dup {
			panic(fmt.Sprintf("stats: duplicate series column %q", n))
		}
		s.index[n] = i
	}
	return s
}

// Len returns the number of rows (seconds).
func (s *Series) Len() int { return s.rows }

// Names returns the column names in declaration order (a copy).
func (s *Series) Names() []string { return append([]string(nil), s.names...) }

// Append adds one row. The value count must match the column count; the
// telemetry plane records whole rows at second boundaries, never partial
// columns, so an arity mismatch is a programming error and panics.
func (s *Series) Append(row ...float64) {
	if len(row) != len(s.names) {
		panic(fmt.Sprintf("stats: series row has %d values, want %d", len(row), len(s.names)))
	}
	for i, v := range row {
		s.cols[i] = append(s.cols[i], v)
	}
	s.rows++
}

// Column returns the values of one column in time order, or nil if the
// column does not exist. The slice aliases the series' storage; callers
// must not mutate it.
func (s *Series) Column(name string) []float64 {
	i, ok := s.index[name]
	if !ok {
		return nil
	}
	return s.cols[i]
}

// Row copies row i (0-based) into dst, growing it if needed, and returns
// the filled slice with one value per column in declaration order. It is
// how the streaming plane replays a series row-by-row without transposing
// the columnar storage per subscriber. Out-of-range rows return nil.
func (s *Series) Row(i int, dst []float64) []float64 {
	if i < 0 || i >= s.rows {
		return nil
	}
	if cap(dst) < len(s.cols) {
		dst = make([]float64, len(s.cols))
	}
	dst = dst[:len(s.cols)]
	for c, col := range s.cols {
		dst[c] = col[i]
	}
	return dst
}

// Sum reduces one column by left-to-right addition — the same order an
// incremental per-second accumulator would have used, so aggregates reduced
// from a series are bit-identical to aggregates summed during the run.
func (s *Series) Sum(name string) float64 {
	var sum float64
	for _, v := range s.Column(name) {
		sum += v
	}
	return sum
}

// SumInt reduces one column of integer-valued samples with exact int64
// addition (per-second event-count deltas are integers stored in float64;
// each is exactly representable, so the conversion cannot round).
func (s *Series) SumInt(name string) int64 {
	var sum int64
	for _, v := range s.Column(name) {
		sum += int64(v)
	}
	return sum
}

// Clone returns an independent deep copy.
func (s *Series) Clone() *Series {
	if s == nil {
		return nil
	}
	n := &Series{
		names: append([]string(nil), s.names...),
		index: make(map[string]int, len(s.index)),
		cols:  make([][]float64, len(s.cols)),
		rows:  s.rows,
	}
	for k, v := range s.index {
		n.index[k] = v
	}
	for i, c := range s.cols {
		n.cols[i] = append([]float64(nil), c...)
	}
	return n
}

// wireSeries is the canonical JSON shape of a series.
type wireSeries struct {
	Hz      int          `json:"hz"`
	Len     int          `json:"len"`
	Columns []wireColumn `json:"columns"`
}

type wireColumn struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// MarshalJSON emits the canonical encoding: columns in declaration order
// (the telemetry plane declares them deterministically), values as Go's
// shortest-round-trip floats. Equal series encode to equal bytes.
func (s *Series) MarshalJSON() ([]byte, error) {
	w := wireSeries{Hz: 1, Len: s.rows, Columns: make([]wireColumn, len(s.names))}
	for i, n := range s.names {
		vals := s.cols[i]
		if vals == nil {
			vals = []float64{}
		}
		w.Columns[i] = wireColumn{Name: n, Values: vals}
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses bytes produced by MarshalJSON.
func (s *Series) UnmarshalJSON(data []byte) error {
	var w wireSeries
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	n := NewSeries()
	for _, c := range w.Columns {
		if _, dup := n.index[c.Name]; dup {
			return fmt.Errorf("stats: duplicate series column %q", c.Name)
		}
		if len(c.Values) != w.Len {
			return fmt.Errorf("stats: series column %q has %d values, header says %d", c.Name, len(c.Values), w.Len)
		}
		n.index[c.Name] = len(n.names)
		n.names = append(n.names, c.Name)
		n.cols = append(n.cols, c.Values)
	}
	n.rows = w.Len
	*s = *n
	return nil
}

// Encode returns the canonical JSON bytes.
func (s *Series) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSeries parses bytes produced by Encode.
func DecodeSeries(data []byte) (*Series, error) {
	var s Series
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("stats: decode series: %w", err)
	}
	return &s, nil
}

// Tail returns the last n rows of one column (all rows if n >= Len, none
// if n <= 0).
func (s *Series) Tail(name string, n int) []float64 {
	c := s.Column(name)
	if n <= 0 {
		return nil
	}
	if n < len(c) {
		return c[len(c)-n:]
	}
	return c
}
