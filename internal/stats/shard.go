package stats

import (
	"math/rand/v2"
	"sync"
)

// shardCount is the fixed shard degree of a ShardedHistogram. Eight shards
// are plenty: the goal is to keep concurrent Observe calls off one mutex,
// and the merge cost at read time stays O(shards x buckets).
const shardCount = 8

// ShardedHistogram is a concurrency-friendly wrapper over Histogram for
// write-hot record paths (per-request latency, queue wait). Each Observe
// takes one of shardCount independent locks, picked per call from the
// runtime's per-P random source, so concurrent writers rarely collide.
// Snapshot merges the shards into one Histogram — Merge is exact and
// associative, so the merged view is indistinguishable from a single
// histogram that saw every observation, and downstream encodings
// (quantiles, Prometheus buckets, canonical JSON) are unchanged.
type ShardedHistogram struct {
	shards [shardCount]struct {
		mu sync.Mutex
		h  Histogram
		// Pad each shard to its own cache line so neighbouring locks do
		// not false-share under concurrent writers.
		_ [64]byte
	}
}

// NewShardedHistogram returns an empty sharded histogram.
func NewShardedHistogram() *ShardedHistogram { return &ShardedHistogram{} }

// Observe records v into one randomly chosen shard.
func (s *ShardedHistogram) Observe(v int64) {
	sh := &s.shards[rand.Uint32()&(shardCount-1)]
	sh.mu.Lock()
	sh.h.Observe(v)
	sh.mu.Unlock()
}

// Snapshot merges every shard into a freshly allocated Histogram.
func (s *ShardedHistogram) Snapshot() *Histogram {
	out := NewHistogram()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Merge(&sh.h)
		sh.mu.Unlock()
	}
	return out
}

// Count returns the total observation count across shards.
func (s *ShardedHistogram) Count() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.h.Count()
		sh.mu.Unlock()
	}
	return n
}
