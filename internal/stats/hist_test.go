package stats

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"a4sim/internal/codec"
)

// TestHistogramQuantileGoldens pins the bucket scheme: for 1..1000 recorded
// once each, the quantiles are the lower bounds of the log-linear buckets
// holding the exact ranks. Changing histSubBits (or the index arithmetic)
// breaks these on purpose.
func TestHistogramQuantileGoldens(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{0, 1}, // rank clamps to 1
		{0.50, 496},
		{0.90, 896},
		{0.99, 976},
		{0.999, 992},
		{1.0, 992},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", h.Count())
	}
	if h.Sum() != 500500 {
		t.Errorf("Sum = %d, want 500500", h.Sum())
	}
}

// TestHistogramSmallValuesExact: below one octave of sub-buckets every value
// has its own bucket, so quantiles are exact.
func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Observe(v)
	}
	for v := 0; v < 32; v++ {
		p := float64(v+1) / 32
		if got := h.Quantile(p); got != float64(v) {
			t.Fatalf("Quantile(%g) = %g, want %d", p, got, v)
		}
	}
}

// TestHistogramRelativeError: every recorded value is reported within one
// bucket width, i.e. the quantile never over-reports and under-reports by
// less than ~3.2%.
func TestHistogramRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		v := rng.Int63n(1 << 40)
		h := NewHistogram()
		h.Observe(v)
		got := int64(h.Quantile(0.5))
		if got > v {
			t.Fatalf("value %d reported as %d (over)", v, got)
		}
		if v >= 32 && float64(v-got) > float64(v)/32 {
			t.Fatalf("value %d reported as %d: error beyond one bucket", v, got)
		}
	}
}

func (h *Histogram) mustEncode(t *testing.T) []byte {
	t.Helper()
	data, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHistogramMergeAssociative: merging per-client histograms in any
// grouping equals recording every value into one — bucket-wise addition is
// exact. Equality is checked on canonical bytes, the same way the service
// compares everything else.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Histogram, 3)
	all := NewHistogram()
	for i := range parts {
		parts[i] = NewHistogram()
		for j := 0; j < 500; j++ {
			v := rng.Int63n(1 << 30)
			parts[i].Observe(v)
			all.Observe(v)
		}
	}
	// (a ⊕ b) ⊕ c
	left := NewHistogram()
	left.Merge(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	// a ⊕ (b ⊕ c)
	bc := NewHistogram()
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	right := parts[0].Clone()
	right.Merge(bc)
	want := all.mustEncode(t)
	if got := left.mustEncode(t); !bytes.Equal(got, want) {
		t.Errorf("(a+b)+c != direct: %s vs %s", got, want)
	}
	if got := right.mustEncode(t); !bytes.Equal(got, want) {
		t.Errorf("a+(b+c) != direct: %s vs %s", got, want)
	}
}

// TestHistogramJSONRoundTrip: canonical encode → decode → encode is the
// identity, and the decoded histogram answers the same quantiles.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 777; v++ {
		h.Observe(v * 3)
	}
	data := h.mustEncode(t)
	back, err := DecodeHistogram(data)
	if err != nil {
		t.Fatal(err)
	}
	if again := back.mustEncode(t); !bytes.Equal(again, data) {
		t.Errorf("re-encode differs:\n%s\n%s", again, data)
	}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if back.Quantile(p) != h.Quantile(p) {
			t.Errorf("Quantile(%g) changed across round-trip", p)
		}
	}
	// Tampered bytes must be rejected, not silently accepted.
	for _, bad := range []string{
		`{"sub_bits":4,"count":0,"sum":0,"buckets":[]}`,
		`{"sub_bits":5,"count":2,"sum":0,"buckets":[[3,1]]}`,
		`{"sub_bits":5,"count":2,"sum":0,"buckets":[[3,1],[2,1]]}`,
	} {
		if _, err := DecodeHistogram([]byte(bad)); err == nil {
			t.Errorf("DecodeHistogram accepted %s", bad)
		}
	}
}

// TestHistogramCodecRoundTrip: the binary state codec round-trips and
// rejects a mismatched structural constant.
func TestHistogramCodecRoundTrip(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 4096; v += 17 {
		h.Observe(v)
	}
	w := &codec.Writer{}
	h.EncodeState(w)
	back := DecodeHistogramState(codec.NewReader(w.Bytes()))
	if back == nil {
		t.Fatal("DecodeHistogramState failed on valid bytes")
	}
	if !bytes.Equal(back.mustEncode(t), h.mustEncode(t)) {
		t.Error("codec round-trip changed the histogram")
	}
	bad := &codec.Writer{}
	bad.U32(histSubBits + 1)
	bad.U64(0)
	bad.I64(0)
	bad.U64s(nil)
	if DecodeHistogramState(codec.NewReader(bad.Bytes())) != nil {
		t.Error("DecodeHistogramState accepted wrong sub_bits")
	}
}

// TestHistogramCumulative checks the exposition view against a brute-force
// count: cum[k] is exactly the number of recorded values strictly below
// bounds[k], bounds are strictly increasing powers of two, and the last
// bound covers the maximum recorded value.
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	vals := []int64{0, 1, 3, 31, 32, 100, 1000, 65536, 1 << 30}
	for _, v := range vals {
		h.Observe(v)
	}
	bounds, cum := h.Cumulative()
	if len(bounds) != len(cum) || len(bounds) == 0 {
		t.Fatalf("bounds/cum lengths %d/%d", len(bounds), len(cum))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for k, bound := range bounds {
		if k > 0 && bound <= bounds[k-1] {
			t.Fatalf("bounds not increasing at %d: %v", k, bounds)
		}
		var want uint64
		for _, v := range vals {
			if v < bound {
				want++
			}
		}
		if cum[k] != want {
			t.Errorf("cum[%d] (bound %d) = %d, want %d", k, bound, cum[k], want)
		}
	}
	if last := bounds[len(bounds)-1]; last <= vals[len(vals)-1] {
		t.Errorf("last bound %d does not cover max value %d", last, vals[len(vals)-1])
	}
	if b, c := NewHistogram().Cumulative(); b != nil || c != nil {
		t.Error("empty histogram should expose no buckets")
	}
}

// TestHistogramEmptyAndNegative: an empty histogram quantiles to 0, and
// negative observations clamp to the zero bucket instead of panicking.
func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Errorf("negative observation: count=%d sum=%d q=%g", h.Count(), h.Sum(), h.Quantile(1))
	}
}
