package stats

import "a4sim/internal/codec"

// EncodeState appends the counter's lifetime total and delta watermark.
func (c *Counter) EncodeState(w *codec.Writer) {
	w.I64(c.total)
	w.I64(c.last)
}

// DecodeState restores state written by EncodeState.
func (c *Counter) DecodeState(r *codec.Reader) {
	c.total = r.I64()
	c.last = r.I64()
}

// EncodeState appends the reservoir's retained samples, offered-sample
// count, and replacement RNG state. Capacity is structural (fixed by the
// workload constructors) and is validated, not restored, on decode.
func (r *Reservoir) EncodeState(w *codec.Writer) {
	w.F64s(r.samples)
	w.I64(r.seen)
	w.U64(r.rngs)
}

// DecodeState restores state written by EncodeState, rejecting sample sets
// that exceed the receiver's capacity (a snapshot from a differently-sized
// reservoir).
func (r *Reservoir) DecodeState(rd *codec.Reader) {
	samples := rd.F64s()
	seen := rd.I64()
	rngs := rd.U64()
	if rd.Err() != nil {
		return
	}
	if len(samples) > r.capN {
		rd.Failf("stats: snapshot reservoir has %d samples, capacity %d", len(samples), r.capN)
		return
	}
	r.samples = samples
	r.seen = seen
	r.rngs = rngs
}

// EncodeState appends the histogram in binary form: the structural
// sub-bucket constant, the totals, and the dense bucket counts.
func (h *Histogram) EncodeState(w *codec.Writer) {
	w.U32(histSubBits)
	w.U64(h.total)
	w.I64(h.sum)
	w.U64s(h.counts)
}

// DecodeHistogramState reads a histogram written by EncodeState, rejecting
// streams recorded at a different sub-bucket resolution or whose bucket
// counts disagree with the header total.
func DecodeHistogramState(r *codec.Reader) *Histogram {
	if sb := r.U32(); r.Err() == nil && sb != histSubBits {
		r.Failf("stats: snapshot histogram sub_bits %d, want %d", sb, histSubBits)
	}
	total := r.U64()
	sum := r.I64()
	counts := r.U64s()
	if r.Err() != nil {
		return nil
	}
	var seen uint64
	for _, c := range counts {
		seen += c
	}
	if seen != total {
		r.Failf("stats: snapshot histogram buckets sum to %d, header says %d", seen, total)
		return nil
	}
	return &Histogram{counts: counts, total: total, sum: sum}
}

// EncodeState appends the series in binary form: column names, then each
// column's values. Unlike Encode (canonical JSON), the binary form is
// infallible and round-trips every float64 bit pattern.
func (s *Series) EncodeState(w *codec.Writer) {
	w.U32(uint32(len(s.names)))
	for _, n := range s.names {
		w.String(n)
	}
	w.Int(s.rows)
	for _, c := range s.cols {
		w.F64s(c)
	}
}

// DecodeSeriesState reads a series written by EncodeState.
func DecodeSeriesState(r *codec.Reader) *Series {
	n := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if n > r.Remaining() {
		r.Failf("stats: snapshot series claims %d columns", n)
		return nil
	}
	names := make([]string, n)
	seen := make(map[string]bool, n)
	for i := range names {
		names[i] = r.String()
		if seen[names[i]] {
			r.Failf("stats: snapshot series has duplicate column %q", names[i])
			return nil
		}
		seen[names[i]] = true
	}
	rows := r.Int()
	if r.Err() != nil {
		return nil
	}
	s := NewSeries(names...)
	s.rows = rows
	for i := range s.cols {
		c := r.F64s()
		if len(c) != rows {
			r.Failf("stats: snapshot series column %q has %d rows, header says %d", names[i], len(c), rows)
			return nil
		}
		s.cols[i] = c
	}
	if r.Err() != nil {
		return nil
	}
	return s
}
