package stats

import (
	"bytes"
	"testing"
)

func TestSeriesAppendAndReduce(t *testing.T) {
	s := NewSeries("a", "b")
	if s.Len() != 0 {
		t.Fatalf("empty series Len = %d", s.Len())
	}
	s.Append(1, 10)
	s.Append(2, 20)
	s.Append(3, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Sum("a"); got != 6 {
		t.Fatalf("Sum(a) = %g, want 6", got)
	}
	if got := s.SumInt("b"); got != 60 {
		t.Fatalf("SumInt(b) = %d, want 60", got)
	}
	if s.Column("nope") != nil {
		t.Fatal("Column of unknown name should be nil")
	}
	if got := s.Tail("b", 2); len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("Tail(b, 2) = %v", got)
	}
	if got := s.Tail("b", 99); len(got) != 3 {
		t.Fatalf("Tail(b, 99) = %v", got)
	}
	if got := s.Tail("b", 0); len(got) != 0 {
		t.Fatalf("Tail(b, 0) = %v, want empty", got)
	}
	if got := s.Tail("b", -1); len(got) != 0 {
		t.Fatalf("Tail(b, -1) = %v, want empty", got)
	}
}

// Reducing a column left-to-right must be bit-identical to the incremental
// accumulator it replaced — same additions, same order.
func TestSeriesSumMatchesIncremental(t *testing.T) {
	s := NewSeries("v")
	var acc float64
	vals := []float64{0.1, 0.7, 1e-9, 3.14159, 0.1, 42.5}
	for _, v := range vals {
		s.Append(v)
		acc += v
	}
	if got := s.Sum("v"); got != acc {
		t.Fatalf("Sum = %x, incremental = %x", got, acc)
	}
}

func TestSeriesAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short row should panic")
		}
	}()
	NewSeries("a", "b").Append(1)
}

func TestSeriesDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column should panic")
		}
	}()
	NewSeries("a", "a")
}

func TestSeriesCloneIndependent(t *testing.T) {
	s := NewSeries("a")
	s.Append(1)
	c := s.Clone()
	s.Append(2)
	if c.Len() != 1 || s.Len() != 2 {
		t.Fatalf("clone rows = %d (want 1), original = %d (want 2)", c.Len(), s.Len())
	}
	c.Append(9)
	if s.Column("a")[1] != 2 {
		t.Fatal("clone append leaked into original")
	}
	var nilSeries *Series
	if nilSeries.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestSeriesEncodeCanonicalRoundTrip(t *testing.T) {
	s := NewSeries("b", "a") // declaration order, not sorted
	s.Append(1.5, 2)
	s.Append(0.25, -3)
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hz":1,"len":2,"columns":[{"name":"b","values":[1.5,0.25]},{"name":"a","values":[2,-3]}]}`
	if string(data) != want {
		t.Fatalf("encoding = %s\nwant %s", data, want)
	}
	back, err := DecodeSeries(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed bytes: %s vs %s", data, data2)
	}
}

func TestSeriesEmptyEncode(t *testing.T) {
	s := NewSeries("a")
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hz":1,"len":0,"columns":[{"name":"a","values":[]}]}`
	if string(data) != want {
		t.Fatalf("empty encoding = %s, want %s", data, want)
	}
}

func TestDecodeSeriesRejectsRaggedColumns(t *testing.T) {
	_, err := DecodeSeries([]byte(`{"hz":1,"len":2,"columns":[{"name":"a","values":[1]}]}`))
	if err == nil {
		t.Fatal("ragged column should fail decode")
	}
	_, err = DecodeSeries([]byte(`{"hz":1,"len":1,"columns":[{"name":"a","values":[1]},{"name":"a","values":[2]}]}`))
	if err == nil {
		t.Fatal("duplicate column should fail decode")
	}
}
