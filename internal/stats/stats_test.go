package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirQuantiles(t *testing.T) {
	r := NewReservoir(1000)
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := r.Quantile(1); got != 100 {
		t.Errorf("max = %v", got)
	}
	if got := r.P50(); math.Abs(got-50.5) > 1 {
		t.Errorf("p50 = %v", got)
	}
	if got := r.P99(); got < 98 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Mean(); math.Abs(got-50.5) > 0.01 {
		t.Errorf("mean = %v", got)
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
	r.Reset()
	if r.Quantile(0.5) != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Errorf("reset incomplete")
	}
}

func TestReservoirSampling(t *testing.T) {
	// With more samples than capacity, the reservoir keeps a bounded,
	// representative subset.
	r := NewReservoir(128)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i % 1000))
	}
	if r.Count() != 100000 {
		t.Fatalf("count = %d", r.Count())
	}
	med := r.P50()
	if med < 250 || med > 750 {
		t.Errorf("median %v far from 500 despite uniform input", med)
	}
}

func TestReservoirQuantileMonotoneQuick(t *testing.T) {
	r := NewReservoir(256)
	f := func(vs []float64) bool {
		r.Reset()
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r.Add(v)
		}
		return r.Quantile(0.1) <= r.Quantile(0.5) && r.Quantile(0.5) <= r.Quantile(0.9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Valid() {
		t.Errorf("fresh EMA should be invalid")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update should seed: %v", got)
	}
	got := e.Update(20)
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("EMA = %v, want 15", got)
	}
	if !e.Valid() || e.Value() != got {
		t.Errorf("getters inconsistent")
	}
	// Invalid alpha falls back to a sane default.
	if NewEMA(-1) == nil || NewEMA(2) == nil {
		t.Errorf("constructor should not fail")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Total() != 6 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Peek() != 6 {
		t.Fatalf("peek = %d", c.Peek())
	}
	if d := c.Delta(); d != 6 {
		t.Fatalf("delta = %d", d)
	}
	if d := c.Delta(); d != 0 {
		t.Fatalf("second delta = %d", d)
	}
	c.Add(3)
	if c.Peek() != 3 {
		t.Fatalf("peek after delta = %d", c.Peek())
	}
}

func TestRatioAndFluctuation(t *testing.T) {
	if Ratio(0, 0) != 0 {
		t.Errorf("Ratio(0,0) should be 0")
	}
	if got := Ratio(3, 1); got != 0.75 {
		t.Errorf("Ratio = %v", got)
	}
	if Fluctuation(0, 0) != 0 {
		t.Errorf("Fluctuation(0,0) should be 0")
	}
	if got := Fluctuation(90, 100); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Fluctuation = %v, want 0.1", got)
	}
	if got := Fluctuation(100, 90); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Fluctuation should be symmetric: %v", got)
	}
}

func TestCurve(t *testing.T) {
	var s Curve
	s.Name = "test"
	s.Add("a", 1, 10)
	s.Add("", 2, 20)
	if len(s.Points) != 2 || s.Points[0].Label != "a" {
		t.Fatalf("points wrong: %+v", s.Points)
	}
	out := s.String()
	if out == "" || len(out) < len("test:") {
		t.Errorf("String too short: %q", out)
	}
}
