// Package stats provides the small statistical toolkit used throughout the
// simulator: streaming percentile reservoirs for latency distributions,
// exponential moving averages for the A4 control loop, simple rate meters,
// labeled curves for figure generation, and fixed-cadence columnar time
// series for the per-second telemetry plane.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Reservoir collects float64 samples and reports order statistics. It keeps
// up to cap samples using uniform reservoir sampling so that memory stays
// bounded while percentiles remain representative.
type Reservoir struct {
	samples []float64
	seen    int64
	capN    int
	rngs    uint64
}

// NewReservoir returns a reservoir bounded to capN samples.
func NewReservoir(capN int) *Reservoir {
	if capN <= 0 {
		capN = 4096
	}
	return &Reservoir{capN: capN, rngs: 0x2545F4914F6CDD1D}
}

func (r *Reservoir) nextRand() uint64 {
	r.rngs ^= r.rngs << 13
	r.rngs ^= r.rngs >> 7
	r.rngs ^= r.rngs << 17
	return r.rngs
}

// Add inserts one sample.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.samples) < r.capN {
		r.samples = append(r.samples, v)
		return
	}
	// Uniform replacement: keep each of the seen samples with equal odds.
	if idx := r.nextRand() % uint64(r.seen); idx < uint64(r.capN) {
		r.samples[idx] = v
	}
}

// Clone returns an independent deep copy of the reservoir, including the
// replacement RNG stream, so original and copy evolve identically under
// identical sample streams.
func (r *Reservoir) Clone() *Reservoir {
	n := *r
	n.samples = append([]float64(nil), r.samples...)
	return &n
}

// Count returns how many samples have been offered (not retained).
func (r *Reservoir) Count() int64 { return r.seen }

// Reset discards all samples.
func (r *Reservoir) Reset() {
	r.samples = r.samples[:0]
	r.seen = 0
}

// Quantile returns the q-quantile (0 <= q <= 1) of retained samples, or 0 if
// empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	tmp := make([]float64, len(r.samples))
	copy(tmp, r.samples)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[len(tmp)-1]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(tmp) {
		return tmp[len(tmp)-1]
	}
	return tmp[lo]*(1-frac) + tmp[lo+1]*frac
}

// Mean returns the mean of retained samples, or 0 if empty.
func (r *Reservoir) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range r.samples {
		s += v
	}
	return s / float64(len(r.samples))
}

// P50 is shorthand for the median.
func (r *Reservoir) P50() float64 { return r.Quantile(0.50) }

// P99 is shorthand for the 99th percentile.
func (r *Reservoir) P99() float64 { return r.Quantile(0.99) }

// EMA is an exponential moving average with configurable smoothing.
type EMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EMA{alpha: alpha}
}

// Update folds in a new observation and returns the current average.
func (e *EMA) Update(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EMA) Value() float64 { return e.value }

// Valid reports whether at least one observation has been folded in.
func (e *EMA) Valid() bool { return e.init }

// Counter is a monotonically increasing event counter supporting deltas.
type Counter struct {
	total int64
	last  int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.total += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.total++ }

// Total returns the lifetime count.
func (c *Counter) Total() int64 { return c.total }

// Delta returns the count accumulated since the previous Delta call.
func (c *Counter) Delta() int64 {
	d := c.total - c.last
	c.last = c.total
	return d
}

// Peek returns the count accumulated since the previous Delta call without
// consuming it.
func (c *Counter) Peek() int64 { return c.total - c.last }

// Ratio safely divides hits by (hits + misses), returning 0 when empty.
func Ratio(hits, misses int64) float64 {
	t := hits + misses
	if t == 0 {
		return 0
	}
	return float64(hits) / float64(t)
}

// Fluctuation returns |a-b| relative to max(|a|,|b|); 0 when both are ~0.
// The A4 stability checks use it for "fluctuations greater than 10%".
func Fluctuation(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-12 {
		return 0
	}
	return math.Abs(a-b) / m
}

// Point is one (x, y) sample of a figure curve.
type Point struct {
	X float64
	Y float64
	// Label optionally names the x position (e.g. an LLC way range).
	Label string
}

// Curve is a named sequence of points, one line in a reproduced figure.
// (The time-resolved, fixed-cadence counterpart is Series in series.go.)
type Curve struct {
	Name   string
	Points []Point
}

// Add appends a labeled point.
func (s *Curve) Add(label string, x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// String renders the curve as aligned text rows.
func (s *Curve) String() string {
	out := s.Name + ":\n"
	for _, p := range s.Points {
		lbl := p.Label
		if lbl == "" {
			lbl = fmt.Sprintf("%g", p.X)
		}
		out += fmt.Sprintf("  %-14s %12.4f\n", lbl, p.Y)
	}
	return out
}
