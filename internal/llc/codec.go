package llc

import (
	"a4sim/internal/cache"
	"a4sim/internal/codec"
)

// EncodeState appends the LLC's dynamic state: the reconfigurable DDIO way
// mask (SetDCAMask moves it at runtime) and the underlying array. Geometry
// and the fixed role masks are structural.
func (l *LLC) EncodeState(w *codec.Writer) {
	w.U32(uint32(l.dcaMask))
	l.arr.EncodeState(w)
}

// DecodeState restores state written by EncodeState.
func (l *LLC) DecodeState(r *codec.Reader) {
	mask := cache.WayMask(r.U32())
	l.arr.DecodeState(r)
	if r.Err() != nil {
		return
	}
	if mask&^l.allMask != 0 {
		r.Failf("llc: snapshot DCA mask %#x exceeds %d ways", uint32(mask), l.geom.Ways)
		return
	}
	l.dcaMask = mask
}
