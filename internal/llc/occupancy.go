package llc

import "a4sim/internal/cache"

// Occupancy is a per-role snapshot of who holds the LLC's lines, the view
// the paper's analysis figures are built from: how many lines each workload
// holds in the DCA ways, the standard ways, and the inclusive ways, plus how
// much of each region holds unconsumed I/O data.
type Occupancy struct {
	// ByOwner[role][owner] counts valid lines per workload per region.
	ByOwner map[WayRole]map[int16]int
	// IOLines[role] counts DMA-written lines per region.
	IOLines map[WayRole]int
	// UnconsumedIO[role] counts DMA-written lines not yet read by a core
	// (the population at risk of DMA leak).
	UnconsumedIO map[WayRole]int
	// Valid[role] counts valid lines per region.
	Valid map[WayRole]int
	// Capacity[role] is the total number of slots per region.
	Capacity map[WayRole]int
}

// Snapshot builds the occupancy view. Ownership and validity come from the
// cache array's incremental per-(owner, way) counters in O(ways x owners);
// only the I/O-flag tallies still need a pass over the valid lines, since
// the I/O and consumed populations are not counter-tracked (flag updates
// through MutateFlags are too frequent and varied to account per way).
func (l *LLC) Snapshot() *Occupancy {
	o := &Occupancy{
		ByOwner:      map[WayRole]map[int16]int{},
		IOLines:      map[WayRole]int{},
		UnconsumedIO: map[WayRole]int{},
		Valid:        map[WayRole]int{},
		Capacity:     map[WayRole]int{},
	}
	for _, role := range []WayRole{RoleDCA, RoleStandard, RoleInclusive} {
		o.ByOwner[role] = map[int16]int{}
	}
	g := l.geom
	o.Capacity[RoleDCA] = g.Sets * g.NumDCA
	o.Capacity[RoleInclusive] = g.Sets * g.NumInclusive
	o.Capacity[RoleStandard] = g.Sets * (g.Ways - g.NumDCA - g.NumInclusive)

	for way := 0; way < g.Ways; way++ {
		role := l.RoleOf(way)
		o.Valid[role] += l.arr.ValidInWay(way)
		byOwner := o.ByOwner[role]
		l.arr.OwnersInWay(way, func(owner int16, n int) {
			byOwner[owner] += n
		})
	}
	l.arr.ForEach(func(set, way int, line *cache.Line) {
		if line.IO() {
			role := l.RoleOf(way)
			o.IOLines[role]++
			if !line.Consumed() {
				o.UnconsumedIO[role]++
			}
		}
	})
	return o
}

// LinesByOwner tallies valid lines per owning workload across the whole
// LLC into out (cleared first). Unlike Snapshot it reads only the array's
// incremental per-(owner, way) counters — O(ways x owners), no line walk —
// cheap enough for the telemetry plane to call once per simulated second.
func (l *LLC) LinesByOwner(out map[int16]int) {
	for k := range out {
		delete(out, k)
	}
	l.arr.OccupancyByOwner(l.allMask, out)
}

// Utilization returns the valid fraction of a region, in [0, 1].
func (o *Occupancy) Utilization(role WayRole) float64 {
	if o.Capacity[role] == 0 {
		return 0
	}
	return float64(o.Valid[role]) / float64(o.Capacity[role])
}

// IOShare returns the fraction of a region's valid lines holding I/O data.
func (o *Occupancy) IOShare(role WayRole) float64 {
	if o.Valid[role] == 0 {
		return 0
	}
	return float64(o.IOLines[role]) / float64(o.Valid[role])
}
