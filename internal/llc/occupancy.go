package llc

import "a4sim/internal/cache"

// Occupancy is a per-role snapshot of who holds the LLC's lines, the view
// the paper's analysis figures are built from: how many lines each workload
// holds in the DCA ways, the standard ways, and the inclusive ways, plus how
// much of each region holds unconsumed I/O data.
type Occupancy struct {
	// ByOwner[role][owner] counts valid lines per workload per region.
	ByOwner map[WayRole]map[int16]int
	// IOLines[role] counts DMA-written lines per region.
	IOLines map[WayRole]int
	// UnconsumedIO[role] counts DMA-written lines not yet read by a core
	// (the population at risk of DMA leak).
	UnconsumedIO map[WayRole]int
	// Valid[role] counts valid lines per region.
	Valid map[WayRole]int
	// Capacity[role] is the total number of slots per region.
	Capacity map[WayRole]int
}

// Snapshot walks the array once and builds the occupancy view.
func (l *LLC) Snapshot() *Occupancy {
	o := &Occupancy{
		ByOwner:      map[WayRole]map[int16]int{},
		IOLines:      map[WayRole]int{},
		UnconsumedIO: map[WayRole]int{},
		Valid:        map[WayRole]int{},
		Capacity:     map[WayRole]int{},
	}
	for _, role := range []WayRole{RoleDCA, RoleStandard, RoleInclusive} {
		o.ByOwner[role] = map[int16]int{}
	}
	g := l.geom
	o.Capacity[RoleDCA] = g.Sets * g.NumDCA
	o.Capacity[RoleInclusive] = g.Sets * g.NumInclusive
	o.Capacity[RoleStandard] = g.Sets * (g.Ways - g.NumDCA - g.NumInclusive)

	l.arr.ForEach(func(set, way int, line *cache.Line) {
		role := l.RoleOf(way)
		o.Valid[role]++
		if line.Owner >= 0 {
			o.ByOwner[role][line.Owner]++
		}
		if line.IO() {
			o.IOLines[role]++
			if !line.Consumed() {
				o.UnconsumedIO[role]++
			}
		}
	})
	return o
}

// Utilization returns the valid fraction of a region, in [0, 1].
func (o *Occupancy) Utilization(role WayRole) float64 {
	if o.Capacity[role] == 0 {
		return 0
	}
	return float64(o.Valid[role]) / float64(o.Capacity[role])
}

// IOShare returns the fraction of a region's valid lines holding I/O data.
func (o *Occupancy) IOShare(role WayRole) float64 {
	if o.Valid[role] == 0 {
		return 0
	}
	return float64(o.IOLines[role]) / float64(o.Valid[role])
}
