// Package llc models the shared non-inclusive last-level cache of a
// Skylake-SP-class server CPU with the way roles that the A4 paper's
// contentions hinge on:
//
//   - DCA ways (the leftmost NumDCA ways, way[0:1] by default): the only
//     ways DDIO write-allocates DMA data into.
//   - Inclusive ways (the rightmost NumInclusive ways, way[9:10]): the only
//     ways that may hold LLC-inclusive lines (resident in both LLC and an
//     MLC), because only the two shared directory ways can snoop MLCs.
//   - Standard ways: everything in between.
//
// The package provides placement-aware insertion, the O1 migration of
// DMA-written lines into inclusive ways upon first core read, and per-way
// occupancy statistics used by experiments.
package llc

import "a4sim/internal/cache"

// Geometry describes an LLC configuration. The zero value is not valid; use
// SkylakeGeometry or a scaled variant.
type Geometry struct {
	Sets         int // power of two
	Ways         int
	NumDCA       int // leftmost ways used by DDIO
	NumInclusive int // rightmost ways holding LLC-inclusive lines
}

// SkylakeGeometry returns the Xeon Gold 6140 LLC: 25 MiB missing a little
// rounding (we use 32768 sets x 11 ways x 64 B = 22 MiB, the nearest
// power-of-two set count; capacity ratios to working sets are what matter).
func SkylakeGeometry() Geometry {
	return Geometry{Sets: 32768, Ways: 11, NumDCA: 2, NumInclusive: 2}
}

// TestGeometry returns a small geometry for fast unit tests: 256 sets, same
// way roles.
func TestGeometry() Geometry {
	return Geometry{Sets: 256, Ways: 11, NumDCA: 2, NumInclusive: 2}
}

// Validate checks internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Sets <= 0 || g.Sets&(g.Sets-1) != 0:
		return errGeometry("Sets must be a positive power of two")
	case g.Ways <= 0 || g.Ways > cache.MaxWays:
		return errGeometry("Ways must be in [1,16]")
	case g.NumDCA < 0 || g.NumInclusive < 0:
		return errGeometry("way role counts must be non-negative")
	case g.NumDCA+g.NumInclusive > g.Ways:
		return errGeometry("role ways exceed total ways")
	}
	return nil
}

type errGeometry string

func (e errGeometry) Error() string { return "llc: invalid geometry: " + string(e) }

// SizeBytes returns the LLC capacity assuming 64-byte lines.
func (g Geometry) SizeBytes() int64 { return int64(g.Sets) * int64(g.Ways) * 64 }

// LLC is the last-level cache plus its way-role bookkeeping.
type LLC struct {
	geom Geometry
	arr  *cache.Cache

	dcaMask       cache.WayMask // ways DDIO may write-allocate into
	inclusiveMask cache.WayMask // ways that may hold LLC-inclusive lines
	allMask       cache.WayMask
}

// New constructs an LLC for the given geometry.
func New(g Geometry) *LLC {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	l := &LLC{
		geom:    g,
		arr:     cache.New(g.Sets, g.Ways),
		allMask: cache.MaskAll(g.Ways),
	}
	if g.NumDCA > 0 {
		l.dcaMask = cache.MaskRange(0, g.NumDCA-1)
	}
	if g.NumInclusive > 0 {
		l.inclusiveMask = cache.MaskRange(g.Ways-g.NumInclusive, g.Ways-1)
	}
	return l
}

// Clone returns an independent deep copy: the array plus the current way
// masks (DCA reconfiguration on the original does not leak into the copy).
func (l *LLC) Clone() *LLC {
	return &LLC{
		geom:          l.geom,
		arr:           l.arr.Clone(),
		dcaMask:       l.dcaMask,
		inclusiveMask: l.inclusiveMask,
		allMask:       l.allMask,
	}
}

// Geometry returns the configured geometry.
func (l *LLC) Geometry() Geometry { return l.geom }

// Array exposes the underlying cache array (tests and stats).
func (l *LLC) Array() *cache.Cache { return l.arr }

// DCAMask returns the current DDIO way mask.
func (l *LLC) DCAMask() cache.WayMask { return l.dcaMask }

// SetDCAMask reconfigures the DDIO ways (IIO LLC WAYS MSR on real parts).
func (l *LLC) SetDCAMask(m cache.WayMask) { l.dcaMask = m }

// InclusiveMask returns the ways eligible to hold LLC-inclusive lines.
func (l *LLC) InclusiveMask() cache.WayMask { return l.inclusiveMask }

// AllMask returns a mask of every way.
func (l *LLC) AllMask() cache.WayMask { return l.allMask }

// StandardMask returns the non-DCA, non-inclusive ways.
func (l *LLC) StandardMask() cache.WayMask {
	return l.allMask &^ l.dcaMask &^ l.inclusiveMask
}

// Probe looks up addr, returning a copy of its line and its way, or
// (Line{}, -1) on a miss.
func (l *LLC) Probe(addr uint64) (cache.Line, int) { return l.arr.Probe(addr) }

// ProbeWay returns the way addr occupies, or -1, without materializing the
// line metadata.
func (l *LLC) ProbeWay(addr uint64) int { return l.arr.ProbeWay(addr) }

// Touch promotes the line at (addr, way) to MRU.
func (l *LLC) Touch(addr uint64, way int) { l.arr.Touch(addr, way) }

// MutateFlags sets then clears flag bits on the resident line at (addr, way).
func (l *LLC) MutateFlags(addr uint64, way int, set, clear cache.LineFlags) {
	l.arr.MutateFlags(addr, way, set, clear)
}

// SetOwnerPort reassigns the owner and port of the resident line at
// (addr, way), keeping occupancy counters consistent.
func (l *LLC) SetOwnerPort(addr uint64, way int, owner int16, port int8) {
	l.arr.SetOwnerPort(addr, way, owner, port)
}

// InsertDCA write-allocates a DMA line into the DCA ways, returning the
// eviction victim (Valid=false if an empty slot was used).
func (l *LLC) InsertDCA(addr uint64, owner int16, port int8) (cache.Line, int) {
	return l.arr.Insert(addr, l.dcaMask, owner, port, cache.FlagIO|cache.FlagDirty)
}

// InsertVictim allocates an MLC-evicted line under the given CAT mask. The
// inserted line is LLC-exclusive; flags carry dirty/I/O provenance.
func (l *LLC) InsertVictim(addr uint64, mask cache.WayMask, owner int16, port int8, flags cache.LineFlags) (cache.Line, int) {
	return l.arr.Insert(addr, mask, owner, port, flags&^cache.FlagInclusive)
}

// InsertInclusive read-allocates a line directly into the inclusive ways
// (egress DMA of MLC-only data). Returns the eviction victim.
func (l *LLC) InsertInclusive(addr uint64, owner int16, port int8, flags cache.LineFlags) (cache.Line, int) {
	return l.arr.Insert(addr, l.inclusiveMask, owner, port, flags|cache.FlagInclusive)
}

// MigrateToInclusive implements observation O1: a DMA-written LLC-exclusive
// line read by a core migrates into the inclusive ways and becomes
// LLC-inclusive. Returns the migrated line's way (-1 if addr was not
// resident) and the victim evicted from the inclusive ways (Valid=false if
// none).
func (l *LLC) MigrateToInclusive(addr uint64) (int, cache.Line) {
	_, way, evicted := l.arr.MoveToWay(addr, l.inclusiveMask)
	if way >= 0 {
		l.arr.MutateFlags(addr, way, cache.FlagInclusive|cache.FlagConsumed, 0)
	}
	return way, evicted
}

// Invalidate drops addr from the LLC if present.
func (l *LLC) Invalidate(addr uint64) (cache.Line, bool) { return l.arr.Invalidate(addr) }

// InvalidateWay drops the resident line at (addr, way) — the way a
// preceding Probe returned — without re-scanning the set.
func (l *LLC) InvalidateWay(addr uint64, way int) cache.Line {
	return l.arr.InvalidateWay(addr, way)
}

// WayOf reports which way addr occupies, or -1.
func (l *LLC) WayOf(addr uint64) int { return l.arr.WayOf(addr) }

// RoleOf classifies a way index.
func (l *LLC) RoleOf(way int) WayRole {
	switch {
	case way < 0 || way >= l.geom.Ways:
		return RoleNone
	case l.dcaMask.Has(way):
		return RoleDCA
	case l.inclusiveMask.Has(way):
		return RoleInclusive
	default:
		return RoleStandard
	}
}

// WayRole labels the role of an LLC way.
type WayRole uint8

// Way roles.
const (
	RoleNone WayRole = iota
	RoleDCA
	RoleStandard
	RoleInclusive
)

// String implements fmt.Stringer.
func (r WayRole) String() string {
	switch r {
	case RoleDCA:
		return "dca"
	case RoleStandard:
		return "standard"
	case RoleInclusive:
		return "inclusive"
	default:
		return "none"
	}
}
