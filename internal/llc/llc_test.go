package llc

import (
	"testing"

	"a4sim/internal/cache"
)

func TestGeometryValidate(t *testing.T) {
	if err := SkylakeGeometry().Validate(); err != nil {
		t.Fatalf("Skylake geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Sets: 0, Ways: 11},
		{Sets: 3, Ways: 11},
		{Sets: 8, Ways: 0},
		{Sets: 8, Ways: 40},
		{Sets: 8, Ways: 4, NumDCA: 3, NumInclusive: 2},
		{Sets: 8, Ways: 4, NumDCA: -1},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
	}
	if got := SkylakeGeometry().SizeBytes(); got != 32768*11*64 {
		t.Errorf("SizeBytes = %d", got)
	}
}

func TestWayRoles(t *testing.T) {
	l := New(TestGeometry()) // 11 ways, 2 DCA, 2 inclusive
	wantRoles := map[int]WayRole{
		0: RoleDCA, 1: RoleDCA,
		2: RoleStandard, 8: RoleStandard,
		9: RoleInclusive, 10: RoleInclusive,
	}
	for w, want := range wantRoles {
		if got := l.RoleOf(w); got != want {
			t.Errorf("RoleOf(%d) = %v, want %v", w, got, want)
		}
	}
	if l.RoleOf(-1) != RoleNone || l.RoleOf(11) != RoleNone {
		t.Errorf("out-of-range roles should be RoleNone")
	}
	if l.DCAMask() != cache.MaskRange(0, 1) {
		t.Errorf("DCA mask = %#x", uint32(l.DCAMask()))
	}
	if l.InclusiveMask() != cache.MaskRange(9, 10) {
		t.Errorf("inclusive mask = %#x", uint32(l.InclusiveMask()))
	}
	if l.StandardMask() != cache.MaskRange(2, 8) {
		t.Errorf("standard mask = %#x", uint32(l.StandardMask()))
	}
	for _, r := range []WayRole{RoleDCA, RoleStandard, RoleInclusive, RoleNone} {
		if r.String() == "" {
			t.Errorf("empty role name for %d", r)
		}
	}
}

func TestInsertDCAConfinement(t *testing.T) {
	l := New(TestGeometry())
	for i := 0; i < 50; i++ {
		addr := uint64(i * 257)
		_, way := l.InsertDCA(addr, 1, 0)
		if way != 0 && way != 1 {
			t.Fatalf("DCA insert landed in way %d", way)
		}
		line, _ := l.Probe(addr)
		if !line.Valid || !line.IO() || !line.Dirty() {
			t.Fatalf("DCA line metadata wrong: %+v", line)
		}
	}
}

func TestInsertInclusiveConfinement(t *testing.T) {
	l := New(TestGeometry())
	_, way := l.InsertInclusive(42, 1, -1, 0)
	if way != 9 && way != 10 {
		t.Fatalf("inclusive insert landed in way %d", way)
	}
	line, _ := l.Probe(42)
	if !line.Inclusive() {
		t.Fatalf("inclusive flag not set")
	}
}

func TestMigrateToInclusive(t *testing.T) {
	l := New(TestGeometry())
	// Fill the inclusive ways of set 0 first.
	set0 := func(i int) uint64 { return uint64(i) * uint64(l.Geometry().Sets) }
	l.InsertInclusive(set0(1), 1, -1, 0)
	l.InsertInclusive(set0(2), 1, -1, 0)
	// A DMA line in a DCA way migrates and evicts an inclusive-way victim.
	l.InsertDCA(set0(3), 2, 0)
	mway, evicted := l.MigrateToInclusive(set0(3))
	moved, _ := l.Probe(set0(3))
	if mway < 0 || !moved.Inclusive() || !moved.Consumed() {
		t.Fatalf("migration state wrong: %+v (way %d)", moved, mway)
	}
	if w := l.WayOf(set0(3)); w != 9 && w != 10 {
		t.Fatalf("migrated line in way %d", w)
	}
	if !evicted.Valid {
		t.Fatalf("expected an inclusive-way eviction")
	}
	// Migrating a non-resident line is a no-op.
	if w, _ := l.MigrateToInclusive(set0(99)); w >= 0 {
		t.Errorf("migrating a missing line should report a miss")
	}
}

func TestSetDCAMask(t *testing.T) {
	l := New(TestGeometry())
	l.SetDCAMask(cache.MaskRange(0, 3)) // widen DDIO to 4 ways
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		_, way := l.InsertDCA(uint64(i*61), 1, 0)
		seen[way] = true
	}
	for w := range seen {
		if w > 3 {
			t.Fatalf("DCA insert escaped widened mask: way %d", w)
		}
	}
}

func TestVictimInsertHonoursCAT(t *testing.T) {
	l := New(TestGeometry())
	mask := cache.MaskRange(5, 6)
	for i := 0; i < 64; i++ {
		_, way := l.InsertVictim(uint64(i*129), mask, 3, -1, cache.FlagDirty)
		if way != 5 && way != 6 {
			t.Fatalf("victim insert landed in way %d, mask [5:6]", way)
		}
	}
}

func TestOccupancySnapshot(t *testing.T) {
	l := New(TestGeometry())
	// Two DCA lines (one consumed), one inclusive line, one standard line.
	l.InsertDCA(1, 3, 0)
	l.InsertDCA(2, 3, 0)
	if _, w := l.Probe(2); w >= 0 {
		l.MutateFlags(2, w, cache.FlagConsumed, 0)
	}
	l.InsertInclusive(3, 4, -1, 0)
	l.InsertVictim(4, cache.MaskRange(4, 4), 5, -1, 0)

	o := l.Snapshot()
	if o.Valid[RoleDCA] != 2 || o.Valid[RoleInclusive] != 1 || o.Valid[RoleStandard] != 1 {
		t.Fatalf("valid counts wrong: %+v", o.Valid)
	}
	if o.IOLines[RoleDCA] != 2 || o.UnconsumedIO[RoleDCA] != 1 {
		t.Fatalf("IO accounting wrong: io=%d unconsumed=%d", o.IOLines[RoleDCA], o.UnconsumedIO[RoleDCA])
	}
	if o.ByOwner[RoleDCA][3] != 2 || o.ByOwner[RoleStandard][5] != 1 {
		t.Fatalf("owner accounting wrong: %+v", o.ByOwner)
	}
	if o.Capacity[RoleDCA] != TestGeometry().Sets*2 {
		t.Fatalf("capacity wrong: %d", o.Capacity[RoleDCA])
	}
	if u := o.Utilization(RoleDCA); u <= 0 || u > 1 {
		t.Fatalf("utilization out of range: %v", u)
	}
	if s := o.IOShare(RoleDCA); s != 1 {
		t.Fatalf("DCA IO share = %v, want 1", s)
	}
	if o.IOShare(RoleNone) != 0 || o.Utilization(RoleNone) != 0 {
		t.Fatalf("empty region should report zeros")
	}
}
