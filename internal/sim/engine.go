// Package sim provides the discrete, epoch-driven simulation engine that
// drives every other component of the A4 reproduction: a simulated clock,
// an actor scheduler that interleaves CPU workloads and I/O devices within
// each epoch, and deterministic randomness.
//
// Simulated time advances in microsecond Ticks grouped into millisecond
// Epochs. Actors receive per-epoch operation budgets proportional to their
// configured rates and are stepped in interleaved slices, so that device DMA
// traffic and CPU memory traffic mix at fine grain the way they do on real
// hardware. Observers (the A4 daemon, counter samplers) run at simulated
// one-second boundaries, mirroring the paper's 1 s monitoring loop.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Tick is one microsecond of simulated time.
type Tick int64

const (
	// TicksPerEpoch groups ticks into 1 ms scheduling epochs.
	TicksPerEpoch = 1000
	// EpochsPerSecond is the number of epochs in one simulated second.
	EpochsPerSecond = 1000
	// TicksPerSecond is one simulated second in ticks.
	TicksPerSecond = TicksPerEpoch * EpochsPerSecond
	// InterleaveSlices is how many round-robin slices each epoch is divided
	// into; higher values mix actor traffic at finer grain at slightly more
	// scheduling overhead.
	InterleaveSlices = 8
)

// Seconds converts a tick count to simulated seconds.
func (t Tick) Seconds() float64 { return float64(t) / TicksPerSecond }

// Actor is anything that issues simulated work: a workload thread, a NIC, an
// SSD. Each epoch the engine grants the actor a budget of operations derived
// from OpsPerSecond and calls Step in interleaved slices.
type Actor interface {
	// Name identifies the actor in traces and error messages.
	Name() string
	// OpsPerSecond is the actor's current operation rate at the given time.
	// It is re-sampled every epoch, so actors may throttle themselves
	// dynamically or shape their load (e.g. bursty arrivals).
	OpsPerSecond(now Tick) float64
	// Step performs up to budget operations and returns how many were
	// actually performed (an actor may run out of work, e.g. an empty ring).
	Step(now Tick, budget int) int
}

// Observer runs control-plane logic at simulated one-second boundaries.
type Observer interface {
	// OnSecond is called once per simulated second with the boundary time.
	OnSecond(now Tick)
}

// FastForwarder is an actor that can advance its statistical state across a
// skipped interval without per-operation detail — the functional-warming
// half of sampled execution. FastForward(now, dt) must leave the actor in a
// state representative of having idled from now to now+dt under the
// freeze-and-shift model: queued work and cache-resident state stay frozen
// (the post-warm-up steady state is the drift model), queued timestamps
// shift by dt so latency measurements never absorb skipped time, and RNG
// streams advance by the number of draws the skipped work would have
// consumed (RNG.Skip), so a fast-forwarded run remains deterministic and a
// Fork taken afterwards is byte-identical to a fork of any other run that
// reached the same state. FastForward must not perform hierarchy accesses
// or charge performance counters: metric extrapolation is the monitor's
// job, keyed off Engine.SkippedTicks.
type FastForwarder interface {
	Actor
	FastForward(now Tick, dt Tick)
}

// Engine owns simulated time and the actor/observer sets.
type Engine struct {
	now       Tick
	actors    []Actor
	observers []Observer
	rng       *RNG
	carry     []float64     // fractional op budget carried between epochs, per actor
	budgets   []int         // per-epoch scratch, reused across RunEpochs calls
	active    []actorShares // per-epoch scratch for the batched dispatcher

	// ffSkipped counts the ticks of the current simulated second that were
	// fast-forwarded rather than executed in detail. Observers read it via
	// SkippedTicks during OnSecond to scale per-second deltas; it resets to
	// zero after each second's observers fire.
	ffSkipped Tick

	// Stop, when set by an observer or actor callback, ends Run early.
	stopped bool
}

// actorShares is one epoch's dispatch entry for an actor with a non-zero
// budget: its index plus the budget split across interleave slices
// (quotient and remainder), precomputed once per epoch instead of per slice.
type actorShares struct {
	idx  int32
	q, r int32
}

// NewEngine returns an engine with simulated time at zero.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// RNG returns the engine's root random source; components should Fork it.
func (e *Engine) RNG() *RNG { return e.rng }

// AddActor registers an actor. Actors are stepped in registration order
// within each interleave slice.
func (e *Engine) AddActor(a Actor) {
	e.actors = append(e.actors, a)
	e.carry = append(e.carry, 0)
}

// AddObserver registers a per-second observer.
func (e *Engine) AddObserver(o Observer) {
	e.observers = append(e.observers, o)
}

// Stop requests that Run return at the end of the current epoch. The stop is
// consumed by the Run in progress (or, if none is running, by the next one):
// RunEpochs clears it on entry, so a stopped engine can be driven again.
func (e *Engine) Stop() { e.stopped = true }

// Actors returns the registered actors in registration order (a copy; the
// engine's own list is not exposed for mutation).
func (e *Engine) Actors() []Actor {
	return append([]Actor(nil), e.actors...)
}

// Observers returns the registered observers in registration order (a copy).
func (e *Engine) Observers() []Observer {
	return append([]Observer(nil), e.observers...)
}

// Fork returns an engine that continues this one's simulated time, RNG
// stream, and per-actor budget carries, but steps the given actor and
// observer sets instead. The caller supplies deep copies of the original
// actors in the same registration order, so the fork replays exactly the
// schedule the original would have run — this is the engine's half of the
// scenario snapshot/fork contract. Fork panics if the actor count differs
// from the original's, since the budget carries are matched by position.
func (e *Engine) Fork(actors []Actor, observers []Observer) *Engine {
	if len(actors) != len(e.actors) {
		panic(fmt.Sprintf("sim: Fork with %d actors, engine has %d", len(actors), len(e.actors)))
	}
	return &Engine{
		now:       e.now,
		actors:    append([]Actor(nil), actors...),
		observers: append([]Observer(nil), observers...),
		rng:       e.rng.Clone(),
		carry:     append([]float64(nil), e.carry...),
		ffSkipped: e.ffSkipped,
	}
}

// SkippedTicks returns how many ticks of the current simulated second were
// fast-forwarded rather than executed in detail. It is meaningful during an
// OnSecond callback (where TicksPerSecond - SkippedTicks() is the detailed
// portion of the just-ended second) and is zero whenever no fast-forwarding
// happened, so observers can branch to extrapolation only in sampled runs.
func (e *Engine) SkippedTicks() Tick { return e.ffSkipped }

// Run advances simulated time by the given number of simulated seconds.
// Fractional seconds convert to epochs by rounding half-up: Run(0.29) runs
// exactly 290 epochs even though 0.29*1000 is 289.999… in float64. Pinning
// the conversion matters for the telemetry plane — a run split as
// Run(a); Run(b) must cross the same whole-second boundaries as Run(a+b),
// or per-second series cadence would drift (truncation loses an epoch per
// call and accumulates).
func (e *Engine) Run(seconds float64) {
	epochs := int(math.Floor(seconds*EpochsPerSecond + 0.5))
	e.RunEpochsBatched(epochs)
}

// RunEpochs advances simulated time by the given number of epochs. A pending
// Stop from before the call is discarded: Stop ends the Run it interrupts,
// it does not latch future Runs into no-ops.
//
// RunEpochs is the reference dispatcher: the straight-line loop whose Step
// call sequence defines the engine's semantics. Run goes through
// RunEpochsBatched, which produces the identical sequence with the
// bookkeeping amortized (pinned by TestRunEpochsBatchedEquivalence).
func (e *Engine) RunEpochs(epochs int) {
	e.stopped = false
	if cap(e.budgets) < len(e.actors) {
		e.budgets = make([]int, len(e.actors))
	}
	budgets := e.budgets[:len(e.actors)]
	for ep := 0; ep < epochs && !e.stopped; ep++ {
		// Compute per-epoch budgets with fractional carry, so low-rate
		// actors still make progress over multiple epochs.
		for i, a := range e.actors {
			want := a.OpsPerSecond(e.now)/EpochsPerSecond + e.carry[i]
			b := int(want)
			e.carry[i] = want - float64(b)
			budgets[i] = b
		}
		// Interleave: divide each actor's budget across slices.
		for s := 0; s < InterleaveSlices; s++ {
			sliceTick := e.now + Tick(s*TicksPerEpoch/InterleaveSlices)
			for i, a := range e.actors {
				share := budgets[i] / InterleaveSlices
				if s < budgets[i]%InterleaveSlices {
					share++
				}
				if share > 0 {
					a.Step(sliceTick, share)
				}
			}
		}
		e.now += TicksPerEpoch
		if e.now%TicksPerSecond == 0 {
			for _, o := range e.observers {
				o.OnSecond(e.now)
			}
			e.ffSkipped = 0
		}
	}
}

// sliceOffsets are the slice start times within an epoch, hoisted out of the
// dispatch loop.
var sliceOffsets = func() [InterleaveSlices]Tick {
	var o [InterleaveSlices]Tick
	for s := range o {
		o[s] = Tick(s * TicksPerEpoch / InterleaveSlices)
	}
	return o
}()

// RunEpochsBatched advances simulated time by the given number of epochs
// with the dispatch bookkeeping amortized. The Step call sequence — which
// actors, in which order, at which slice times, with which budgets — is
// byte-identical to RunEpochs; only the loop overhead differs:
//
//   - each actor's per-slice share split (quotient/remainder) is computed
//     once per epoch instead of div/mod per slice,
//   - zero-budget actors (a burst-shaped NIC outside its window, an idle
//     SSD) are filtered out before the slice loop instead of being
//     re-examined in all InterleaveSlices passes, and
//   - the second-boundary check is an epoch countdown instead of a modulo
//     of the tick clock.
func (e *Engine) RunEpochsBatched(epochs int) {
	e.stopped = false
	if cap(e.active) < len(e.actors) {
		e.active = make([]actorShares, len(e.actors))
	}
	toBoundary := EpochsPerSecond - int(e.now%TicksPerSecond)/TicksPerEpoch
	for ep := 0; ep < epochs && !e.stopped; ep++ {
		active := e.active[:0]
		for i, a := range e.actors {
			want := a.OpsPerSecond(e.now)/EpochsPerSecond + e.carry[i]
			b := int(want)
			e.carry[i] = want - float64(b)
			if b > 0 {
				active = append(active, actorShares{
					idx: int32(i),
					q:   int32(b / InterleaveSlices),
					r:   int32(b % InterleaveSlices),
				})
			}
		}
		for s := int32(0); s < InterleaveSlices; s++ {
			sliceTick := e.now + sliceOffsets[s]
			for _, as := range active {
				share := as.q
				if s < as.r {
					share++
				}
				if share > 0 {
					e.actors[as.idx].Step(sliceTick, int(share))
				}
			}
		}
		e.now += TicksPerEpoch
		toBoundary--
		if toBoundary == 0 {
			for _, o := range e.observers {
				o.OnSecond(e.now)
			}
			e.ffSkipped = 0
			toBoundary = EpochsPerSecond
		}
	}
}

// FastForward advances simulated time by the given number of epochs without
// detailed execution: every actor's FastForward hook runs once per chunk
// (chunks never straddle a second boundary), observers still fire at every
// second boundary, and SkippedTicks reports the skipped portion of the
// second to them. Actors that do not implement FastForwarder panic by name —
// the harness validates the actor set before scheduling any gap. A pending
// Stop is discarded on entry, exactly as in RunEpochs.
func (e *Engine) FastForward(epochs int) {
	e.stopped = false
	for epochs > 0 && !e.stopped {
		chunk := EpochsPerSecond - int(e.now%TicksPerSecond)/TicksPerEpoch
		if chunk > epochs {
			chunk = epochs
		}
		dt := Tick(chunk) * TicksPerEpoch
		for _, a := range e.actors {
			ff, ok := a.(FastForwarder)
			if !ok {
				panic(fmt.Sprintf("sim: actor %s does not implement FastForwarder", a.Name()))
			}
			ff.FastForward(e.now, dt)
		}
		e.now += dt
		e.ffSkipped += dt
		epochs -= chunk
		if e.now%TicksPerSecond == 0 {
			for _, o := range e.observers {
				o.OnSecond(e.now)
			}
			e.ffSkipped = 0
		}
	}
}

// FuncObserver adapts a plain function to the Observer interface.
type FuncObserver func(now Tick)

// OnSecond implements Observer.
func (f FuncObserver) OnSecond(now Tick) { f(now) }

// Duration formats simulated time for human-readable traces.
func Duration(t Tick) string {
	return fmt.Sprint(time.Duration(t) * time.Microsecond)
}
