package sim

import "a4sim/internal/codec"

// State returns the generator's raw state word, for snapshot encoding.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's state word, restoring a snapshot. The
// zero-seed remapping of NewRNG is deliberately not applied: a snapshot
// restores whatever state the stream had, including states that pass
// through zero.
func (r *RNG) SetState(s uint64) { r.state = s }

// EncodeState appends the engine's dynamic state: simulated time, the root
// RNG stream position, and the per-actor fractional budget carries. The
// actor and observer sets are structural — a decoder rebuilds them from the
// scenario spec and only restores this dynamic state on top.
func (e *Engine) EncodeState(w *codec.Writer) {
	w.I64(int64(e.now))
	w.U64(e.rng.state)
	w.F64s(e.carry)
	w.I64(int64(e.ffSkipped))
}

// DecodeState restores state written by EncodeState. The carry count must
// match the engine's registered actor count (budget carries are matched by
// position, exactly as in Fork); a mismatch means the snapshot was taken
// from a structurally different scenario and fails the read.
func (e *Engine) DecodeState(r *codec.Reader) {
	now := r.I64()
	rngState := r.U64()
	carry := r.F64s()
	ffSkipped := r.I64()
	if r.Err() != nil {
		return
	}
	if len(carry) != len(e.actors) {
		r.Failf("sim: snapshot has %d budget carries, engine has %d actors", len(carry), len(e.actors))
		return
	}
	e.now = Tick(now)
	e.rng.state = rngState
	copy(e.carry, carry)
	e.ffSkipped = Tick(ffSkipped)
	e.stopped = false
}
