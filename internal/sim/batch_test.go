package sim

import (
	"fmt"
	"testing"
)

// traceActor records every Step call so dispatcher variants can be compared
// call-for-call. Its rate varies with time (bursty, fractional, or zero) to
// exercise carry accumulation and the zero-budget filtering paths.
type traceActor struct {
	name  string
	rate  func(now Tick) float64
	trace []stepCall
}

type stepCall struct {
	now    Tick
	budget int
}

func (a *traceActor) Name() string                  { return a.name }
func (a *traceActor) OpsPerSecond(now Tick) float64 { return a.rate(now) }
func (a *traceActor) Step(now Tick, budget int) int {
	a.trace = append(a.trace, stepCall{now, budget})
	return budget
}

// mixedActors builds a representative actor set: steady high-rate, fractional
// low-rate, bursty (zero outside a duty window, like the NIC), and always-zero.
func mixedActors() []*traceActor {
	return []*traceActor{
		{name: "steady", rate: func(Tick) float64 { return 90000 }},
		{name: "fractional", rate: func(Tick) float64 { return 333 }},
		{name: "bursty", rate: func(now Tick) float64 {
			if now%(100*TicksPerEpoch) < 10*TicksPerEpoch {
				return 50000
			}
			return 0
		}},
		{name: "idle", rate: func(Tick) float64 { return 0 }},
		{name: "sub-epoch", rate: func(Tick) float64 { return 7.3 }},
	}
}

// TestRunEpochsBatchedEquivalence pins the batched dispatcher to the
// reference loop: the Step call sequence (actor order, slice times, budgets),
// observer call times, final clock, and subsequent behaviour (which depends
// on the fractional carries) must be identical. The run starts misaligned
// from a second boundary and is split across multiple calls to exercise the
// boundary countdown's re-derivation.
func TestRunEpochsBatchedEquivalence(t *testing.T) {
	ref, refActors := NewEngine(1), mixedActors()
	bat, batActors := NewEngine(1), mixedActors()
	var refSec, batSec []Tick
	for _, a := range refActors {
		ref.AddActor(a)
	}
	for _, a := range batActors {
		bat.AddActor(a)
	}
	ref.AddObserver(FuncObserver(func(now Tick) { refSec = append(refSec, now) }))
	bat.AddObserver(FuncObserver(func(now Tick) { batSec = append(batSec, now) }))

	for _, epochs := range []int{137, 1500, 863, 2000} {
		ref.RunEpochs(epochs)
		bat.RunEpochsBatched(epochs)
	}

	if ref.Now() != bat.Now() {
		t.Fatalf("clock diverged: reference %d, batched %d", ref.Now(), bat.Now())
	}
	if fmt.Sprint(refSec) != fmt.Sprint(batSec) {
		t.Errorf("observer cadence diverged:\nreference %v\nbatched   %v", refSec, batSec)
	}
	for i := range refActors {
		r, b := refActors[i], batActors[i]
		if len(r.trace) != len(b.trace) {
			t.Fatalf("actor %s: %d reference Step calls, %d batched", r.name, len(r.trace), len(b.trace))
		}
		for j := range r.trace {
			if r.trace[j] != b.trace[j] {
				t.Fatalf("actor %s Step call %d: reference %+v, batched %+v", r.name, j, r.trace[j], b.trace[j])
			}
		}
	}
}

// TestRNGSkip pins Skip(n) to n discarded draws for the draw counts the
// fast-forward path produces, including zero and beyond-int32 counts.
func TestRNGSkip(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 1000, 1 << 20, 1 << 40} {
		a, b := NewRNG(42), NewRNG(42)
		a.Skip(n)
		for i := uint64(0); i < n && n <= 1<<20; i++ {
			b.Uint64()
		}
		if n <= 1<<20 {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Errorf("Skip(%d) diverged from %d draws: %x vs %x", n, n, av, bv)
			}
			continue
		}
		// Large counts: verify the algebraic identity Skip(n) ∘ Skip(m) =
		// Skip(n+m) instead of drawing 2^40 values.
		c := NewRNG(42)
		c.Skip(n - 1)
		c.Skip(1)
		if a.State() != c.State() {
			t.Errorf("Skip(%d) != Skip(%d)+Skip(1)", n, n-1)
		}
	}
}

// ffActor counts FastForward calls and the interval they covered.
type ffActor struct {
	countingActor
	ffCalls []stepCall // now, dt (reusing the pair shape)
}

func (a *ffActor) FastForward(now, dt Tick) {
	a.ffCalls = append(a.ffCalls, stepCall{now, int(dt)})
}

// TestEngineFastForward pins the gap semantics: chunks never straddle second
// boundaries, observers fire at every boundary with SkippedTicks showing the
// skipped portion of that second, and the counter resets afterwards — both
// for fully skipped seconds and for seconds mixing detailed and skipped
// epochs.
func TestEngineFastForward(t *testing.T) {
	e := NewEngine(1)
	a := &ffActor{countingActor: countingActor{name: "ff", rate: 1000}}
	e.AddActor(a)
	type obsCall struct{ now, skipped Tick }
	var obs []obsCall
	e.AddObserver(FuncObserver(func(now Tick) {
		obs = append(obs, obsCall{now, e.SkippedTicks()})
	}))

	e.RunEpochsBatched(300) // 0.3 s detailed
	e.FastForward(700)      // rest of second 1 skipped
	e.FastForward(1000)     // all of second 2 skipped
	e.RunEpochsBatched(1000)

	if e.Now() != 3*TicksPerSecond {
		t.Fatalf("clock at %d, want %d", e.Now(), 3*TicksPerSecond)
	}
	want := []obsCall{
		{1 * TicksPerSecond, 700 * TicksPerEpoch},
		{2 * TicksPerSecond, TicksPerSecond},
		{3 * TicksPerSecond, 0},
	}
	if fmt.Sprint(obs) != fmt.Sprint(want) {
		t.Errorf("observer calls %v, want %v", obs, want)
	}
	wantFF := []stepCall{
		{300 * TicksPerEpoch, 700 * TicksPerEpoch},
		{1 * TicksPerSecond, TicksPerSecond},
	}
	if fmt.Sprint(a.ffCalls) != fmt.Sprint(wantFF) {
		t.Errorf("FastForward calls %v, want %v", a.ffCalls, wantFF)
	}
	if e.SkippedTicks() != 0 {
		t.Errorf("SkippedTicks = %d after run, want 0", e.SkippedTicks())
	}

	// A gap spanning a boundary must split into per-second chunks.
	e2 := NewEngine(1)
	b := &ffActor{countingActor: countingActor{name: "ff", rate: 0}}
	e2.AddActor(b)
	e2.RunEpochsBatched(600)
	e2.FastForward(900) // 400 to the boundary, 500 into the next second
	if len(b.ffCalls) != 2 || b.ffCalls[0].budget != 400*TicksPerEpoch || b.ffCalls[1].budget != 500*TicksPerEpoch {
		t.Errorf("boundary-spanning gap chunks: %v", b.ffCalls)
	}
	if e2.SkippedTicks() != 500*TicksPerEpoch {
		t.Errorf("mid-second SkippedTicks = %d, want %d", e2.SkippedTicks(), 500*TicksPerEpoch)
	}
}

// TestFastForwardRequiresInterface pins the by-name panic for actors that
// cannot fast-forward, so a mis-built sampled scenario fails loudly.
func TestFastForwardRequiresInterface(t *testing.T) {
	e := NewEngine(1)
	e.AddActor(&countingActor{name: "plain", rate: 1})
	defer func() {
		if recover() == nil {
			t.Errorf("FastForward over a non-FastForwarder should panic")
		}
	}()
	e.FastForward(1)
}

// countActor is a minimal Actor for dispatch benchmarks: a fixed rate and a
// Step that only counts, so the benchmark prices the dispatcher rather than
// model work.
type countActor struct {
	rate  float64
	steps int64
}

func (c *countActor) Name() string                  { return "count" }
func (c *countActor) OpsPerSecond(now Tick) float64 { return c.rate }
func (c *countActor) Step(now Tick, budget int) int {
	c.steps += int64(budget)
	return budget
}

// BenchmarkDispatch prices the two dispatchers on actor sets where dispatch
// overhead is visible (Step is a counter, not a simulation model). The
// "busy" shape is the scenario regime — a handful of always-active actors —
// where the two loops are equivalent and model work would dominate anyway.
// The "idle-heavy" shape is where batching's zero-budget filtering pays:
// many registered actors with nothing to do this epoch (burst-shaped NICs
// outside their window, drained devices), which the reference loop
// re-examines in all InterleaveSlices passes.
func BenchmarkDispatch(b *testing.B) {
	shapes := []struct {
		name string
		mk   func() []*countActor
	}{
		{"busy-6", func() []*countActor {
			as := make([]*countActor, 6)
			for i := range as {
				as[i] = &countActor{rate: 90000}
			}
			return as
		}},
		{"idle-heavy-64", func() []*countActor {
			as := make([]*countActor, 64)
			for i := range as {
				if i < 8 {
					as[i] = &countActor{rate: 90000}
				} else {
					as[i] = &countActor{rate: 0}
				}
			}
			return as
		}},
	}
	for _, sh := range shapes {
		b.Run(sh.name+"/reference", func(b *testing.B) {
			e := NewEngine(1)
			for _, a := range sh.mk() {
				e.AddActor(a)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunEpochs(EpochsPerSecond)
			}
		})
		b.Run(sh.name+"/batched", func(b *testing.B) {
			e := NewEngine(1)
			for _, a := range sh.mk() {
				e.AddActor(a)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunEpochsBatched(EpochsPerSecond)
			}
		})
	}
}
