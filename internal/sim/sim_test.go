package sim

import (
	"testing"
	"testing/quick"
)

type countingActor struct {
	name   string
	rate   float64
	steps  int
	ops    int
	lastAt Tick
}

func (a *countingActor) Name() string                  { return a.name }
func (a *countingActor) OpsPerSecond(now Tick) float64 { return a.rate }
func (a *countingActor) Step(now Tick, budget int) int {
	a.steps++
	a.ops += budget
	a.lastAt = now
	return budget
}

func TestEngineBudgets(t *testing.T) {
	e := NewEngine(1)
	a := &countingActor{name: "a", rate: 10000}
	b := &countingActor{name: "b", rate: 333} // fractional per-epoch rate
	e.AddActor(a)
	e.AddActor(b)
	e.Run(1.0)
	if a.ops != 10000 {
		t.Errorf("actor a ops = %d, want 10000", a.ops)
	}
	// Fractional carry must preserve the total within one op.
	if b.ops < 332 || b.ops > 334 {
		t.Errorf("actor b ops = %d, want ~333", b.ops)
	}
	if e.Now() != TicksPerSecond {
		t.Errorf("Now = %d, want %d", e.Now(), TicksPerSecond)
	}
}

func TestObserverCadence(t *testing.T) {
	e := NewEngine(1)
	var calls []Tick
	e.AddObserver(FuncObserver(func(now Tick) { calls = append(calls, now) }))
	e.Run(3.0)
	if len(calls) != 3 {
		t.Fatalf("observer called %d times, want 3", len(calls))
	}
	for i, c := range calls {
		if c != Tick(i+1)*TicksPerSecond {
			t.Errorf("call %d at %d", i, c)
		}
	}
}

// Run's fractional-second conversion rounds half-up: seconds values whose
// float64 product with EpochsPerSecond lands just below an integer (0.29 →
// 289.999…) must still run the full epoch count, and a run split into
// fractional pieces must cross every whole-second boundary an unsplit run
// crosses — the per-second series cadence depends on it.
func TestRunFractionalSecondsRounding(t *testing.T) {
	cases := []struct {
		sec    float64
		epochs Tick
	}{
		{0.29, 290}, // 0.29*1000 = 289.999… in float64: truncation would lose an epoch
		{0.001, 1},  // a4top's single-epoch nudge
		{1.0, 1000}, // whole seconds unchanged
		{2.999, 2999},
		{0.0004, 0}, // below half an epoch rounds to nothing
		{0.0005, 1}, // half rounds up
	}
	for _, c := range cases {
		e := NewEngine(1)
		e.Run(c.sec)
		if e.Now() != c.epochs*TicksPerEpoch {
			t.Errorf("Run(%g): now = %d ticks, want %d epochs", c.sec, e.Now(), c.epochs)
		}
	}

	// Ten 0.1 s pieces and one 1.0 s run must both land exactly on the
	// second boundary and fire the observer exactly once.
	split := NewEngine(1)
	var fired int
	split.AddObserver(FuncObserver(func(now Tick) { fired++ }))
	for i := 0; i < 10; i++ {
		split.Run(0.1)
	}
	if split.Now() != TicksPerSecond {
		t.Errorf("10 x Run(0.1): now = %d, want %d", split.Now(), TicksPerSecond)
	}
	if fired != 1 {
		t.Errorf("10 x Run(0.1): observer fired %d times, want 1", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	a := &countingActor{name: "a", rate: 1000}
	e.AddActor(a)
	e.AddObserver(FuncObserver(func(now Tick) { e.Stop() }))
	e.Run(10.0)
	if got := e.Now(); got > TicksPerSecond+TicksPerEpoch {
		t.Errorf("engine should stop after the first second, ran to %d", got)
	}
}

func TestTickSeconds(t *testing.T) {
	if got := Tick(TicksPerSecond).Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
	if Duration(Tick(1500)) == "" {
		t.Errorf("Duration formatting empty")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if NewRNG(0).Uint64() == 0 {
		// Zero seed is remapped; first output is effectively arbitrary but
		// the generator must not be stuck at zero.
		t.Errorf("zero-seeded RNG produced 0")
	}
	c := NewRNG(42)
	d := c.Fork()
	if c.Uint64() == d.Uint64() {
		t.Errorf("fork should decorrelate streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestZipfSkewProperty(t *testing.T) {
	// Property: Zipf output stays in range, and higher skew concentrates
	// more mass on low ranks.
	r := NewRNG(99)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed) + 1)
		for i := 0; i < 100; i++ {
			if v := rr.Zipf(50, 0.9); v < 0 || v >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	lowSkewHits, highSkewHits := 0, 0
	for i := 0; i < 20000; i++ {
		if r.Zipf(1000, 0.2) < 100 {
			lowSkewHits++
		}
		if r.Zipf(1000, 0.95) < 100 {
			highSkewHits++
		}
	}
	if highSkewHits <= lowSkewHits {
		t.Errorf("higher skew should concentrate: low=%d high=%d", lowSkewHits, highSkewHits)
	}
	if NewRNG(1).Zipf(1, 0.9) != 0 {
		t.Errorf("Zipf(1) must be 0")
	}
	if v := NewRNG(1).Zipf(10, 0); v < 0 || v >= 10 {
		t.Errorf("Zipf with zero skew out of range")
	}
}
