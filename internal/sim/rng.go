package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). Every stochastic decision in the simulator draws from an
// RNG seeded by the scenario so that experiments are exactly reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant so the zero value is still usable.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value uniformly distributed in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Skip advances the stream past n draws in O(1). The splitmix64 state moves
// by a fixed increment per draw, so skipping is a single multiply-add; after
// Skip(n) the generator produces exactly the values it would have produced
// after n discarded Uint64 calls. Fast-forwarding actors use this to account
// for the draws their skipped work would have consumed, keeping sampled and
// detailed executions on the same deterministic stream.
func (r *RNG) Skip(n uint64) {
	r.state += n * 0x9e3779b97f4a7c15
}

// Fork derives an independent child generator. Children seeded from distinct
// parents (or successive Fork calls) produce uncorrelated streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// Clone returns an exact copy of the generator: the clone continues the same
// stream from the same position. This is the snapshot primitive — unlike
// Fork, which advances the parent and derives a new stream.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew s
// using inverse-CDF over a precomputed table-free approximation. For the
// workload generators a coarse approximation is sufficient: rank is drawn as
// floor(n * u^(1/(1-s))) for s in (0,1), clamped to the range.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 0 {
		return r.Intn(n)
	}
	if s >= 0.99 {
		s = 0.99
	}
	u := r.Float64()
	// Inverse of the continuous approximation of the Zipf CDF.
	x := int(float64(n) * math.Pow(u, 1/(1-s)))
	if x >= n {
		x = n - 1
	}
	return x
}
