package sim

import "testing"

// TestStopDoesNotLatch is the regression test for the latched-stop bug: a
// Stop during one Run (e.g. warm-up) must not turn the next Run (the
// measurement window) into a silent no-op.
func TestStopDoesNotLatch(t *testing.T) {
	e := NewEngine(1)
	a := &countingActor{name: "a", rate: 1000}
	e.AddActor(a)
	stop := true
	e.AddObserver(FuncObserver(func(now Tick) {
		if stop {
			e.Stop()
		}
	}))
	e.Run(5.0) // stopped at the first second boundary
	if got := e.Now(); got != TicksPerSecond {
		t.Fatalf("first run should stop at 1s, ran to %v", got)
	}
	stop = false
	e.Run(2.0)
	if got := e.Now(); got != 3*TicksPerSecond {
		t.Errorf("second run was truncated by a latched stop: now=%v, want %v", got, 3*TicksPerSecond)
	}
}

// TestStopBetweenRunsIsDiscarded pins the reset-at-entry semantics: a Stop
// issued while no Run is in progress does not cancel the next Run.
func TestStopBetweenRunsIsDiscarded(t *testing.T) {
	e := NewEngine(1)
	e.AddActor(&countingActor{name: "a", rate: 1000})
	e.Stop()
	e.Run(1.0)
	if got := e.Now(); got != TicksPerSecond {
		t.Errorf("pending stop should be discarded at RunEpochs entry: now=%v", got)
	}
}

// TestEngineForkContinues checks the engine-level fork contract: a fork with
// equivalent actors replays the same schedule (time, budgets, carries).
func TestEngineForkContinues(t *testing.T) {
	e := NewEngine(7)
	a := &countingActor{name: "a", rate: 333} // fractional carry is the point
	e.AddActor(a)
	var secs []Tick
	e.AddObserver(FuncObserver(func(now Tick) { secs = append(secs, now) }))
	e.Run(1.5)

	fa := *a // countingActor state is plain data
	f := e.Fork([]Actor{&fa}, []Observer{FuncObserver(func(Tick) {})})
	if f.Now() != e.Now() {
		t.Fatalf("fork time %v != original %v", f.Now(), e.Now())
	}
	e.Run(1.5)
	f.Run(1.5)
	if fa.ops != a.ops || fa.steps != a.steps || fa.lastAt != a.lastAt {
		t.Errorf("forked actor diverged: ops %d vs %d, steps %d vs %d",
			fa.ops, a.ops, fa.steps, a.steps)
	}

	defer func() {
		if recover() == nil {
			t.Errorf("Fork with mismatched actor count should panic")
		}
	}()
	e.Fork(nil, nil)
}

// TestRNGClone pins that Clone continues the identical stream while Fork
// derives a new one.
func TestRNGClone(t *testing.T) {
	r := NewRNG(42)
	r.Uint64()
	c := r.Clone()
	for i := 0; i < 32; i++ {
		if r.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
}
