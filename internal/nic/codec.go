package nic

import "a4sim/internal/codec"

// EncodeState appends the NIC's dynamic state: RSS cursor, mid-packet DMA
// progress, drop/delivery counters, the (SetRate-adjustable) offered load,
// and every ring's occupancy and arrival stamps. Ring geometry and buffer
// addresses are structural.
func (n *NIC) EncodeState(w *codec.Writer) {
	w.Int(n.currentRing)
	w.Int(n.lineInPkt)
	w.I64(n.dropped)
	w.I64(n.written)
	w.F64(n.rate)
	w.Int(len(n.rings))
	for _, r := range n.rings {
		w.Int(r.head)
		w.Int(r.tail)
		w.Int(r.count)
		w.F64s(r.stamps)
	}
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose ring geometry disagrees with the receiver's.
func (n *NIC) DecodeState(r *codec.Reader) {
	currentRing := r.Int()
	lineInPkt := r.Int()
	dropped := r.I64()
	written := r.I64()
	rate := r.F64()
	nr := r.Int()
	if r.Err() != nil {
		return
	}
	if nr != len(n.rings) {
		r.Failf("nic: snapshot has %d rings, NIC has %d", nr, len(n.rings))
		return
	}
	if currentRing < 0 || currentRing >= len(n.rings) {
		r.Failf("nic: snapshot RSS cursor %d out of range", currentRing)
		return
	}
	heads := make([]int, nr)
	tails := make([]int, nr)
	counts := make([]int, nr)
	stamps := make([][]float64, nr)
	for i, ring := range n.rings {
		heads[i] = r.Int()
		tails[i] = r.Int()
		counts[i] = r.Int()
		stamps[i] = r.F64s()
		if r.Err() != nil {
			return
		}
		if len(stamps[i]) != ring.Entries {
			r.Failf("nic: snapshot ring %d has %d stamps, ring has %d entries", i, len(stamps[i]), ring.Entries)
			return
		}
		if heads[i] < 0 || heads[i] >= ring.Entries || tails[i] < 0 || tails[i] >= ring.Entries ||
			counts[i] < 0 || counts[i] > ring.Entries {
			r.Failf("nic: snapshot ring %d cursors out of range", i)
			return
		}
	}
	n.currentRing = currentRing
	n.lineInPkt = lineInPkt
	n.dropped = dropped
	n.written = written
	n.rate = rate
	for i, ring := range n.rings {
		ring.head = heads[i]
		ring.tail = tails[i]
		ring.count = counts[i]
		ring.stamps = stamps[i]
	}
}
