package nic

import (
	"testing"

	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
)

func newTestNIC(t *testing.T, entries int) (*NIC, *hierarchy.Hierarchy, pcm.WorkloadID) {
	t.Helper()
	f := pcm.NewFabric(1)
	id := f.Register("net")
	h := hierarchy.New(hierarchy.TestConfig(), f)
	n := New(Config{
		Name:        "nic0",
		Port:        0,
		LinesPerSec: 1e6,
		PacketBytes: 256, // 4 lines
		RingEntries: entries,
		NumRings:    2,
	}, h, id, mem.NewAddressSpace())
	return n, h, id
}

func TestPacketDelivery(t *testing.T) {
	n, h, id := newTestNIC(t, 8)
	// One packet = 4 payload lines + descriptor write.
	done := n.Step(0, 4)
	if done != 4 {
		t.Fatalf("Step did %d ops, want 4", done)
	}
	r := n.Ring(0)
	if r.Ready() != 1 {
		t.Fatalf("ring 0 should hold 1 packet, has %d", r.Ready())
	}
	slot, arrival, ok := r.Pop()
	if !ok || slot != 0 || arrival < 0 {
		t.Fatalf("pop failed: %d %f %v", slot, arrival, ok)
	}
	// Payload lines were DMA-written through the hierarchy.
	if l, _ := h.LLC().Probe(r.SlotAddr(0)); !l.Valid || !l.IO() {
		t.Fatalf("payload line not in LLC")
	}
	if h.Fabric().C(id).IOReadBytes.Total() == 0 {
		t.Fatalf("traffic not attributed")
	}
	if n.WrittenPackets() != 1 {
		t.Fatalf("WrittenPackets = %d", n.WrittenPackets())
	}
}

func TestRoundRobinAcrossRings(t *testing.T) {
	n, _, _ := newTestNIC(t, 8)
	n.Step(0, 8) // two packets
	if n.Ring(0).Ready() != 1 || n.Ring(1).Ready() != 1 {
		t.Fatalf("RSS distribution wrong: %d/%d", n.Ring(0).Ready(), n.Ring(1).Ready())
	}
}

func TestDropsWhenFull(t *testing.T) {
	n, _, _ := newTestNIC(t, 2) // tiny rings: 2 slots each
	// 4 packets fill both rings; further arrivals must drop.
	n.Step(0, 16)
	if n.Dropped() != 0 {
		t.Fatalf("unexpected drops while filling: %d", n.Dropped())
	}
	n.Step(0, 16)
	if n.Dropped() == 0 {
		t.Fatalf("expected drops on full rings")
	}
}

func TestPopEmpty(t *testing.T) {
	n, _, _ := newTestNIC(t, 4)
	if _, _, ok := n.Ring(0).Pop(); ok {
		t.Fatalf("pop from empty ring should fail")
	}
}

func TestBurstShaping(t *testing.T) {
	f := pcm.NewFabric(1)
	id := f.Register("net")
	h := hierarchy.New(hierarchy.TestConfig(), f)
	n := New(Config{
		Name: "nic0", Port: 0, LinesPerSec: 1000, PacketBytes: 64,
		RingEntries: 16, NumRings: 1,
		BurstPeriod: 1000, BurstDuty: 0.25,
	}, h, id, mem.NewAddressSpace())
	inBurst := n.OpsPerSecond(sim.Tick(100))  // phase 0.1 < 0.25
	offBurst := n.OpsPerSecond(sim.Tick(900)) // phase 0.9
	if inBurst != 4000 {
		t.Errorf("burst rate = %v, want 4000", inBurst)
	}
	if offBurst != 0 {
		t.Errorf("off-phase rate = %v, want 0", offBurst)
	}
	// Without shaping the rate is flat.
	n2, _, _ := newTestNIC(t, 4)
	if n2.OpsPerSecond(0) != n2.OpsPerSecond(sim.Tick(12345)) {
		t.Errorf("unshaped rate should be constant")
	}
	n2.SetRate(5)
	if n2.OpsPerSecond(0) != 5 {
		t.Errorf("SetRate not applied")
	}
}

func TestDescriptorSharing(t *testing.T) {
	n, _, _ := newTestNIC(t, 16)
	r := n.Ring(0)
	if r.DescAddr(0) != r.DescAddr(7) {
		t.Errorf("descriptors 0-7 should share a line")
	}
	if r.DescAddr(0) == r.DescAddr(8) {
		t.Errorf("descriptor 8 should be on the next line")
	}
}

func TestConfigValidation(t *testing.T) {
	f := pcm.NewFabric(1)
	id := f.Register("net")
	h := hierarchy.New(hierarchy.TestConfig(), f)
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config should panic")
		}
	}()
	New(Config{Name: "bad"}, h, id, mem.NewAddressSpace())
}
