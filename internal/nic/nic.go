// Package nic models a high-bandwidth network interface (the testbed's
// 100 Gbps ConnectX-6): a DMA engine that writes received packets into
// per-core receive rings line by line through the hierarchy's DMA path, and
// the ring bookkeeping a poll-mode driver consumes from. Offered load,
// packet size and ring geometry are configurable; when a ring is full,
// arriving packets are dropped, as on real hardware.
package nic

import (
	"fmt"

	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
)

// Ring is one receive ring: a circular buffer of packet slots at fixed
// physical addresses plus a descriptor region, as allocated by a DPDK-style
// driver at startup.
type Ring struct {
	Base     uint64 // first line address of the packet buffer area
	DescBase uint64 // first line address of the descriptor area
	Entries  int
	PktLines int // lines per packet slot

	head  int // next slot the NIC fills
	tail  int // next slot the consumer drains
	count int // ready packets

	stamps []float64 // per-slot arrival time in ticks
}

// Full reports whether the ring cannot accept another packet.
func (r *Ring) Full() bool { return r.count >= r.Entries }

// Ready returns the number of consumable packets.
func (r *Ring) Ready() int { return r.count }

// SlotAddr returns the first line address of slot i.
func (r *Ring) SlotAddr(i int) uint64 { return r.Base + uint64(i*r.PktLines) }

// DescAddr returns the descriptor line address covering slot i (descriptors
// are packed 8 per line, so neighbouring slots share descriptor lines).
func (r *Ring) DescAddr(i int) uint64 { return r.DescBase + uint64(i/8) }

// Pop removes the oldest ready packet, returning its slot index and arrival
// stamp. ok is false when the ring is empty.
func (r *Ring) Pop() (slot int, arrival float64, ok bool) {
	if r.count == 0 {
		return 0, 0, false
	}
	slot = r.tail
	arrival = r.stamps[slot]
	r.tail = (r.tail + 1) % r.Entries
	r.count--
	return slot, arrival, true
}

// push marks the head slot ready at time t.
func (r *Ring) push(t float64) {
	r.stamps[r.head] = t
	r.head = (r.head + 1) % r.Entries
	r.count++
}

// Config describes a NIC.
type Config struct {
	Name string
	Port int // PCIe port index
	// LinesPerSec is the offered DMA rate in lines/second, already divided
	// by the simulation's global rate scale.
	LinesPerSec float64
	PacketBytes int
	RingEntries int
	NumRings    int // one ring per served CPU core

	// BurstPeriod and BurstDuty shape arrivals: the NIC delivers its average
	// rate compressed into the first BurstDuty fraction of each period,
	// modeling the bursty traffic of packet generators and coalesced wires.
	// A zero period disables shaping (smooth arrivals).
	BurstPeriod sim.Tick
	BurstDuty   float64
}

// NIC is the device model; it implements sim.Actor.
type NIC struct {
	cfg   Config
	h     *hierarchy.Hierarchy
	wl    pcm.WorkloadID // the network workload this NIC's traffic belongs to
	rings []*Ring

	// currentRing round-robins packet arrivals across rings (RSS).
	currentRing int
	// lineInPkt tracks progress inside the packet being DMA-written.
	lineInPkt int

	dropped int64
	written int64
	rate    float64
}

// New builds a NIC whose ring buffers occupy addresses from the given
// allocator. wl attributes the NIC's DMA traffic to the consuming workload.
func New(cfg Config, h *hierarchy.Hierarchy, wl pcm.WorkloadID, alloc *mem.AddressSpace) *NIC {
	if cfg.NumRings <= 0 || cfg.RingEntries <= 0 || cfg.PacketBytes <= 0 {
		panic("nic: invalid config")
	}
	pktLines := (cfg.PacketBytes + mem.LineBytes - 1) / mem.LineBytes
	n := &NIC{cfg: cfg, h: h, wl: wl, rate: cfg.LinesPerSec}
	for i := 0; i < cfg.NumRings; i++ {
		r := &Ring{
			Base:     alloc.Alloc(int64(cfg.RingEntries*pktLines) * mem.LineBytes),
			DescBase: alloc.Alloc(int64((cfg.RingEntries+7)/8) * mem.LineBytes),
			Entries:  cfg.RingEntries,
			PktLines: pktLines,
		}
		r.stamps = make([]float64, cfg.RingEntries)
		n.rings = append(n.rings, r)
	}
	return n
}

// Fork returns an independent deep copy of the NIC wired to the given
// (already forked) hierarchy: ring contents, arrival stamps, RSS cursor,
// mid-packet DMA progress, and drop/delivery counters all carry over, so the
// copy's packet stream continues exactly where the original's left off.
func (n *NIC) Fork(h *hierarchy.Hierarchy) *NIC {
	f := &NIC{
		cfg:         n.cfg,
		h:           h,
		wl:          n.wl,
		currentRing: n.currentRing,
		lineInPkt:   n.lineInPkt,
		dropped:     n.dropped,
		written:     n.written,
		rate:        n.rate,
	}
	f.rings = make([]*Ring, len(n.rings))
	for i, r := range n.rings {
		cr := *r
		cr.stamps = append([]float64(nil), r.stamps...)
		f.rings[i] = &cr
	}
	return f
}

// Name implements sim.Actor.
func (n *NIC) Name() string { return n.cfg.Name }

// Port returns the PCIe port index the NIC is attached to.
func (n *NIC) Port() int { return n.cfg.Port }

// Ring returns ring i (one per consumer core).
func (n *NIC) Ring(i int) *Ring { return n.rings[i] }

// NumRings returns the ring count.
func (n *NIC) NumRings() int { return len(n.rings) }

// PktLines returns lines per packet.
func (n *NIC) PktLines() int { return n.rings[0].PktLines }

// Dropped returns lifetime dropped packets.
func (n *NIC) Dropped() int64 { return n.dropped }

// RingDepth returns the total packets currently queued across all receive
// rings — the instantaneous backlog the telemetry plane samples per second.
func (n *NIC) RingDepth() int {
	depth := 0
	for _, r := range n.rings {
		depth += r.Ready()
	}
	return depth
}

// WrittenPackets returns lifetime delivered packets.
func (n *NIC) WrittenPackets() int64 { return n.written }

// SetRate changes the offered load (lines/second, scaled).
func (n *NIC) SetRate(r float64) { n.rate = r }

// OpsPerSecond implements sim.Actor; one op is one DMA-written line. With
// burst shaping the instantaneous rate is rate/duty inside the burst window
// and zero outside it, averaging to the configured rate.
func (n *NIC) OpsPerSecond(now sim.Tick) float64 {
	if n.cfg.BurstPeriod <= 0 || n.cfg.BurstDuty <= 0 || n.cfg.BurstDuty >= 1 {
		return n.rate
	}
	phase := float64(now%n.cfg.BurstPeriod) / float64(n.cfg.BurstPeriod)
	if phase < n.cfg.BurstDuty {
		return n.rate / n.cfg.BurstDuty
	}
	return 0
}

// Step DMA-writes up to budget lines of arriving packets.
func (n *NIC) Step(now sim.Tick, budget int) int {
	if budget <= 0 {
		return 0
	}
	width := float64(sim.TicksPerEpoch / sim.InterleaveSlices)
	perOp := width / float64(budget)
	done := 0
	for i := 0; i < budget; i++ {
		t := float64(now) + float64(i)*perOp
		r := n.rings[n.currentRing]
		if n.lineInPkt == 0 && r.Full() {
			// Drop the whole arriving packet; the arrival still consumes
			// wire time, so the budget is spent.
			n.dropped++
			done += r.PktLines
			i += r.PktLines - 1
			n.advanceRing()
			continue
		}
		addr := r.SlotAddr(r.head) + uint64(n.lineInPkt)
		n.h.DMAWrite(n.cfg.Port, n.wl, addr)
		n.lineInPkt++
		done++
		if n.lineInPkt >= r.PktLines {
			// Packet complete: update its descriptor line and publish.
			n.h.DMAWrite(n.cfg.Port, n.wl, r.DescAddr(r.head))
			r.push(t)
			n.written++
			n.lineInPkt = 0
			n.advanceRing()
		}
	}
	return done
}

// FastForward implements sim.FastForwarder with the freeze-and-shift model:
// ring contents are frozen (no packets arrive or drop over the gap — the
// monitor extrapolates delivery and drop rates from the detailed windows)
// and the arrival stamps of every ready packet shift with the clock, so
// queueing latencies booked when the consumer resumes exclude the skipped
// interval. The DMA engine holds no RNG state, so no draws are accounted.
func (n *NIC) FastForward(now, dt sim.Tick) {
	d := float64(dt)
	for _, r := range n.rings {
		for i, c := r.tail, r.count; c > 0; c-- {
			r.stamps[i] += d
			i++
			if i == r.Entries {
				i = 0
			}
		}
	}
}

func (n *NIC) advanceRing() {
	n.currentRing = (n.currentRing + 1) % len(n.rings)
}

// String summarizes the NIC for traces.
func (n *NIC) String() string {
	return fmt.Sprintf("nic %s port=%d rings=%d pkt=%dB", n.cfg.Name, n.cfg.Port, len(n.rings), n.cfg.PacketBytes)
}
