// Package pcm models the hardware performance-counter fabric that the A4
// daemon monitors, in the spirit of Intel Performance Counter Monitor: LLC
// and MLC hits/misses per workload, DDIO (DCA) hits and allocations, DMA
// leak/bloat/directory-contention event counts, instruction/cycle counts
// for IPC, and per-workload I/O traffic. The harness samples the fabric
// once per simulated second, exactly the granularity the real daemon uses.
package pcm

import (
	"fmt"

	"a4sim/internal/stats"
)

// WorkloadID indexes a registered workload.
type WorkloadID int16

// Invalid is the WorkloadID for unattributed traffic.
const Invalid WorkloadID = -1

// Counters is the per-workload hardware counter block.
type Counters struct {
	Name string

	// Core-side cache events.
	MLCHits   stats.Counter
	MLCMisses stats.Counter
	LLCHits   stats.Counter // demand hits after MLC miss (includes migrations)
	LLCMisses stats.Counter // demand misses served by DRAM

	// DDIO events (device-side).
	DCAHits   stats.Counter // DMA write-updates of LLC-resident lines
	DCAAllocs stats.Counter // DMA write-allocates into DCA ways

	// Pathology events.
	DMALeaks     stats.Counter // I/O lines evicted from LLC before consumption
	DMABloats    stats.Counter // consumed I/O lines inserted into standard ways
	DirEvictions stats.Counter // victims displaced from inclusive ways by O1 migration

	// Execution accounting for IPC.
	Instructions stats.Counter
	Cycles       stats.Counter

	// Device traffic attributed to this workload, in bytes.
	IOReadBytes  stats.Counter // device -> host (storage reads, NIC ingress)
	IOWriteBytes stats.Counter // host -> device
}

// Sample is the per-second derived view of one workload's counters.
type Sample struct {
	ID   WorkloadID
	Name string

	MLCHitRate  float64
	MLCMissRate float64
	LLCHitRate  float64
	LLCMissRate float64
	// DCAMissRate is allocations / (hits + allocations): the fraction of DMA
	// writes that did not find their target resident (PCM's DDIO miss).
	DCAMissRate float64
	// LeakRate is leaks / allocations: the fraction of write-allocated I/O
	// lines evicted before a core consumed them.
	LeakRate float64
	IPC      float64

	IOReadGBps  float64
	IOWriteGBps float64

	DMALeaks  int64
	DMABloats int64
}

// IsIOActive reports whether the workload drove device traffic this second.
func (s Sample) IsIOActive() bool { return s.IOReadGBps+s.IOWriteGBps > 0.01 }

// Fabric aggregates all workload counter blocks.
type Fabric struct {
	counters []*Counters
	// RateScale multiplies reported bandwidths to undo the simulation's
	// global rate down-scaling (see DESIGN.md §4).
	RateScale float64
}

// NewFabric returns an empty fabric with the given rate scale (>= 1).
func NewFabric(rateScale float64) *Fabric {
	if rateScale <= 0 {
		rateScale = 1
	}
	return &Fabric{RateScale: rateScale}
}

// Clone returns an independent deep copy of the fabric: every counter block
// is copied, including the delta baselines, so a forked simulation's samples
// continue exactly where the original's left off.
func (f *Fabric) Clone() *Fabric {
	n := &Fabric{RateScale: f.RateScale, counters: make([]*Counters, len(f.counters))}
	for i, c := range f.counters {
		cc := *c
		n.counters[i] = &cc
	}
	return n
}

// Register adds a workload and returns its ID.
func (f *Fabric) Register(name string) WorkloadID {
	f.counters = append(f.counters, &Counters{Name: name})
	return WorkloadID(len(f.counters) - 1)
}

// NumWorkloads returns the number of registered workloads.
func (f *Fabric) NumWorkloads() int { return len(f.counters) }

// C returns the counter block of id; it panics on an invalid ID so that
// attribution bugs fail loudly in tests.
func (f *Fabric) C(id WorkloadID) *Counters {
	if int(id) < 0 || int(id) >= len(f.counters) {
		badWorkloadID(id)
	}
	return f.counters[id]
}

// badWorkloadID is split out so C stays inlineable on the hot path.
func badWorkloadID(id WorkloadID) {
	panic(fmt.Sprintf("pcm: invalid workload id %d", id))
}

// Name returns the registered name of id.
func (f *Fabric) Name(id WorkloadID) string { return f.C(id).Name }

// SampleAll consumes per-second deltas for every workload. seconds is the
// simulated interval length the deltas cover.
func (f *Fabric) SampleAll(seconds float64) []Sample {
	out := make([]Sample, len(f.counters))
	for i, c := range f.counters {
		out[i] = f.sampleOne(WorkloadID(i), c, seconds)
	}
	return out
}

func (f *Fabric) sampleOne(id WorkloadID, c *Counters, seconds float64) Sample {
	mlcH, mlcM := c.MLCHits.Delta(), c.MLCMisses.Delta()
	llcH, llcM := c.LLCHits.Delta(), c.LLCMisses.Delta()
	dcaH, dcaA := c.DCAHits.Delta(), c.DCAAllocs.Delta()
	leaks := c.DMALeaks.Delta()
	bloats := c.DMABloats.Delta()
	inst, cyc := c.Instructions.Delta(), c.Cycles.Delta()
	ioR, ioW := c.IOReadBytes.Delta(), c.IOWriteBytes.Delta()

	s := Sample{
		ID:          id,
		Name:        c.Name,
		MLCHitRate:  stats.Ratio(mlcH, mlcM),
		MLCMissRate: stats.Ratio(mlcM, mlcH),
		LLCHitRate:  stats.Ratio(llcH, llcM),
		LLCMissRate: stats.Ratio(llcM, llcH),
		DCAMissRate: stats.Ratio(dcaA, dcaH),
		DMALeaks:    leaks,
		DMABloats:   bloats,
	}
	if dcaA > 0 {
		s.LeakRate = float64(leaks) / float64(dcaA)
		if s.LeakRate > 1 {
			s.LeakRate = 1
		}
	}
	if cyc > 0 {
		s.IPC = float64(inst) / float64(cyc)
	}
	if seconds > 0 {
		s.IOReadGBps = float64(ioR) * f.RateScale / seconds / 1e9
		s.IOWriteGBps = float64(ioW) * f.RateScale / seconds / 1e9
	}
	return s
}

// GBps converts a raw byte delta over an interval to scaled GB/s.
func (f *Fabric) GBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * f.RateScale / seconds / 1e9
}
