package pcm

import (
	"math"
	"testing"
)

func TestRegisterAndAccess(t *testing.T) {
	f := NewFabric(1)
	a := f.Register("alpha")
	b := f.Register("beta")
	if f.NumWorkloads() != 2 {
		t.Fatalf("NumWorkloads = %d", f.NumWorkloads())
	}
	if f.Name(a) != "alpha" || f.Name(b) != "beta" {
		t.Errorf("names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("invalid ID must panic")
		}
	}()
	f.C(WorkloadID(99))
}

func TestSampleRates(t *testing.T) {
	f := NewFabric(1)
	id := f.Register("wl")
	c := f.C(id)
	c.MLCHits.Add(60)
	c.MLCMisses.Add(40)
	c.LLCHits.Add(30)
	c.LLCMisses.Add(10)
	c.DCAHits.Add(20)
	c.DCAAllocs.Add(80)
	c.DMALeaks.Add(8)
	c.Instructions.Add(500)
	c.Cycles.Add(1000)
	c.IOReadBytes.Add(2_000_000_000)

	s := f.SampleAll(1)[0]
	if math.Abs(s.MLCHitRate-0.6) > 1e-9 || math.Abs(s.MLCMissRate-0.4) > 1e-9 {
		t.Errorf("MLC rates wrong: %+v", s)
	}
	if math.Abs(s.LLCHitRate-0.75) > 1e-9 || math.Abs(s.LLCMissRate-0.25) > 1e-9 {
		t.Errorf("LLC rates wrong: %+v", s)
	}
	if math.Abs(s.DCAMissRate-0.8) > 1e-9 {
		t.Errorf("DCA miss rate wrong: %v", s.DCAMissRate)
	}
	if math.Abs(s.LeakRate-0.1) > 1e-9 {
		t.Errorf("leak rate wrong: %v", s.LeakRate)
	}
	if math.Abs(s.IPC-0.5) > 1e-9 {
		t.Errorf("IPC wrong: %v", s.IPC)
	}
	if math.Abs(s.IOReadGBps-2.0) > 1e-9 {
		t.Errorf("IO GBps wrong: %v", s.IOReadGBps)
	}
	if !s.IsIOActive() {
		t.Errorf("should be IO active")
	}

	// Deltas are consumed: a second sample over an idle interval is zero.
	s2 := f.SampleAll(1)[0]
	if s2.LLCHitRate != 0 || s2.IPC != 0 || s2.IsIOActive() {
		t.Errorf("second sample should be empty: %+v", s2)
	}
}

func TestRateScale(t *testing.T) {
	f := NewFabric(64)
	id := f.Register("wl")
	f.C(id).IOReadBytes.Add(1_000_000_000 / 64)
	s := f.SampleAll(1)[0]
	if math.Abs(s.IOReadGBps-1.0) > 1e-9 {
		t.Errorf("rate scale not applied: %v", s.IOReadGBps)
	}
	if g := f.GBps(64_000_000, 1); math.Abs(g-4.096) > 1e-9 {
		t.Errorf("GBps helper wrong: %v", g)
	}
	if f.GBps(100, 0) != 0 {
		t.Errorf("zero interval must yield 0")
	}
}

func TestLeakRateClamp(t *testing.T) {
	f := NewFabric(1)
	id := f.Register("wl")
	c := f.C(id)
	c.DCAAllocs.Add(10)
	c.DMALeaks.Add(50) // leaks also come from inclusive-way evictions
	s := f.SampleAll(1)[0]
	if s.LeakRate > 1 {
		t.Errorf("leak rate must be clamped to 1, got %v", s.LeakRate)
	}
}
