package pcm

import (
	"a4sim/internal/codec"
	"a4sim/internal/stats"
)

// counterBlocks returns the counter fields in their declared order — the
// single place that pins the wire order of a Counters block.
func (c *Counters) counterBlocks() []*stats.Counter {
	return []*stats.Counter{
		&c.MLCHits, &c.MLCMisses, &c.LLCHits, &c.LLCMisses,
		&c.DCAHits, &c.DCAAllocs,
		&c.DMALeaks, &c.DMABloats, &c.DirEvictions,
		&c.Instructions, &c.Cycles,
		&c.IOReadBytes, &c.IOWriteBytes,
	}
}

// EncodeState appends every counter in declared order. Name is structural
// (fixed by workload registration) and not encoded.
func (c *Counters) EncodeState(w *codec.Writer) {
	for _, ctr := range c.counterBlocks() {
		ctr.EncodeState(w)
	}
}

// DecodeState restores state written by EncodeState.
func (c *Counters) DecodeState(r *codec.Reader) {
	for _, ctr := range c.counterBlocks() {
		ctr.DecodeState(r)
	}
}

// EncodeState appends every registered workload's counter block. The
// registration set (count and names) is structural.
func (f *Fabric) EncodeState(w *codec.Writer) {
	w.Int(len(f.counters))
	for _, c := range f.counters {
		c.EncodeState(w)
	}
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose workload count disagrees with the receiver's registration set.
func (f *Fabric) DecodeState(r *codec.Reader) {
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(f.counters) {
		r.Failf("pcm: snapshot has %d workloads, fabric has %d", n, len(f.counters))
		return
	}
	for _, c := range f.counters {
		c.DecodeState(r)
	}
}

// EncodeState appends the full derived sample (the A4 controller carries
// samples across seconds, so they are part of controller state).
func (s *Sample) EncodeState(w *codec.Writer) {
	w.I64(int64(s.ID))
	w.String(s.Name)
	w.F64(s.MLCHitRate)
	w.F64(s.MLCMissRate)
	w.F64(s.LLCHitRate)
	w.F64(s.LLCMissRate)
	w.F64(s.DCAMissRate)
	w.F64(s.LeakRate)
	w.F64(s.IPC)
	w.F64(s.IOReadGBps)
	w.F64(s.IOWriteGBps)
	w.I64(s.DMALeaks)
	w.I64(s.DMABloats)
}

// DecodeState restores a sample written by EncodeState.
func (s *Sample) DecodeState(r *codec.Reader) {
	s.ID = WorkloadID(r.I64())
	s.Name = r.String()
	s.MLCHitRate = r.F64()
	s.MLCMissRate = r.F64()
	s.LLCHitRate = r.F64()
	s.LLCMissRate = r.F64()
	s.DCAMissRate = r.F64()
	s.LeakRate = r.F64()
	s.IPC = r.F64()
	s.IOReadGBps = r.F64()
	s.IOWriteGBps = r.F64()
	s.DMALeaks = r.I64()
	s.DMABloats = r.I64()
}
