package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"a4sim/internal/stats"
)

// TestTraceSpanNestingAndOrdering: a parent span opened before its children
// sorts first (stable by start offset), offsets never run backwards, and a
// child's extent nests inside its parent's.
func TestTraceSpanNestingAndOrdering(t *testing.T) {
	tr := NewTrace("t1")
	outer := tr.Begin("queue_wait")
	time.Sleep(2 * time.Millisecond)
	inner := tr.Begin("measure").Annotate("n1")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	tr.Mark("cache_hit", "")

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "queue_wait" || spans[1].Name != "measure" || spans[2].Name != "cache_hit" {
		t.Fatalf("order %v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUs < spans[i-1].StartUs {
			t.Fatalf("starts run backwards: %v", spans)
		}
	}
	parent, child := spans[0], spans[1]
	if child.StartUs < parent.StartUs || child.StartUs+child.DurUs > parent.StartUs+parent.DurUs {
		t.Errorf("child [%d,%d] not nested in parent [%d,%d]",
			child.StartUs, child.StartUs+child.DurUs, parent.StartUs, parent.StartUs+parent.DurUs)
	}
	if child.Backend != "n1" {
		t.Errorf("Annotate lost: %+v", child)
	}
	if spans[2].DurUs != 0 {
		t.Errorf("Mark should be zero-duration: %+v", spans[2])
	}
}

// TestTraceNilSafe: every method on a nil trace (and nil span handle) is a
// no-op — the contract that keeps the untraced path free.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Len() != 0 || tr.Snapshot() != nil {
		t.Error("nil trace should read as empty")
	}
	h := tr.Begin("x")
	h.Annotate("y").End() // must not panic
	tr.Mark("m", "")
	tr.Add(Span{Name: "s"})
}

// TestTraceConcurrent records from many goroutines at once; run under -race
// this is the span-plane thread-safety check.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("conc")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.Begin(fmt.Sprintf("w%d", w))
				tr.Mark("mark", "")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != workers*each*2 {
		t.Errorf("Len = %d, want %d", got, workers*each*2)
	}
	_ = tr.JSON()
}

// TestEncodeDecodeTraceRoundTrip: canonical body → decode → re-encode is
// the identity, and an empty trace encodes spans as [] (not null).
func TestEncodeDecodeTraceRoundTrip(t *testing.T) {
	spans := []Span{
		{Name: "queue_wait", StartUs: 0, DurUs: 10},
		{Name: "backend_call", Backend: "http://n1", StartUs: 5, DurUs: 100},
	}
	body := EncodeTrace("abc", spans)
	id, back, err := DecodeTrace(body)
	if err != nil {
		t.Fatal(err)
	}
	if id != "abc" || len(back) != 2 || back[1] != spans[1] {
		t.Fatalf("round trip: id=%q spans=%v", id, back)
	}
	if !bytes.Equal(EncodeTrace(id, back), body) {
		t.Error("re-encode differs")
	}
	if got := string(EncodeTrace("e", nil)); !strings.Contains(got, `"spans":[]`) {
		t.Errorf("empty trace encodes %s", got)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"":                      false,
		"abc-DEF_123":           true,
		NewID():                 true,
		"has space":             false,
		"semi;colon":            false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if ValidID(id) != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, !want, want)
		}
	}
}

// TestRingEviction: the ring keeps the newest N, counts evictions, and
// serves Recent newest-first.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		r.Add(NewTrace(id))
	}
	if r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", r.Len(), r.Dropped())
	}
	if _, ok := r.Get("a"); ok {
		t.Error("evicted trace still indexed")
	}
	if tr, ok := r.Get("e"); !ok || tr.ID() != "e" {
		t.Error("newest trace not retrievable")
	}
	recent := r.Recent(10)
	if len(recent) != 3 || recent[0].ID() != "e" || recent[2].ID() != "c" {
		got := make([]string, len(recent))
		for i, tr := range recent {
			got[i] = tr.ID()
		}
		t.Errorf("Recent = %v, want [e d c]", got)
	}
}

func seriesWithRows(n int) *stats.Series {
	s := stats.NewSeries("x", "y")
	for i := 0; i < n; i++ {
		s.Append(float64(i), float64(i*2))
	}
	return s
}

// TestHubReplayAndLive: a subscriber attaching mid-run replays the already
// published rows, then follows live ones, and the terminal message carries
// the final bytes.
func TestHubReplayAndLive(t *testing.T) {
	h := NewSeriesHub()
	pub := h.Open("run1")
	ser := seriesWithRows(3)
	pub.Publish(ser)

	sub, ok := h.Attach("run1")
	if !ok {
		t.Fatal("attach to live run failed")
	}
	defer sub.Close()
	if len(sub.Names) != 2 || len(sub.Replay) != 3 {
		t.Fatalf("replay: names=%v rows=%d, want 2 names 3 rows", sub.Names, len(sub.Replay))
	}
	if sub.Replay[2][1] != 4 {
		t.Errorf("replay row values %v", sub.Replay[2])
	}

	// Two more rows and the end; catch-up publishing delivers both rows in
	// one call.
	ser.Append(3, 6)
	ser.Append(4, 8)
	pub.Publish(ser)
	final := []byte(`{"stored":"series"}`)
	pub.Finish(final)

	var rows int
	for msg := range sub.C {
		switch {
		case msg.Row != nil:
			rows++
		case msg.End:
			if string(msg.Final) != string(final) {
				t.Errorf("final = %s", msg.Final)
			}
		}
	}
	if rows != 2 {
		t.Errorf("live rows = %d, want 2", rows)
	}
	if h.Live("run1") {
		t.Error("run still live after Finish")
	}
	if _, ok := h.Attach("run1"); ok {
		t.Error("attach after Finish should miss (stored series serves instead)")
	}
}

// TestHubAbortAndMisc: an aborted run delivers a terminal error; attaching
// to an unknown key misses; a 0-column publish does not re-announce names
// forever.
func TestHubAbortAndMisc(t *testing.T) {
	h := NewSeriesHub()
	if _, ok := h.Attach("nope"); ok {
		t.Fatal("attach to unknown key")
	}
	pub := h.Open("run2")
	sub, _ := h.Attach("run2")
	pub.Abort("execution failed")
	msg, open := <-sub.C
	if !open || !msg.End || msg.Err != "execution failed" {
		t.Errorf("abort message %+v open=%v", msg, open)
	}
	if _, open := <-sub.C; open {
		t.Error("channel should close after terminal message")
	}
}

// TestHubDropsStalledSubscriber: a subscriber that never drains overflows
// its buffer and is dropped — channel closed with no terminal message.
func TestHubDropsStalledSubscriber(t *testing.T) {
	h := NewSeriesHub()
	pub := h.Open("run3")
	sub, _ := h.Attach("run3")
	ser := stats.NewSeries("v")
	// names message + subBuffer rows fill the channel; one more drops us.
	for i := 0; i < subBuffer+1; i++ {
		ser.Append(float64(i))
	}
	pub.Publish(ser)
	sawTerminal := false
	n := 0
	for msg := range sub.C {
		if msg.End {
			sawTerminal = true
		}
		n++
	}
	if sawTerminal {
		t.Error("dropped subscriber should not get a terminal message")
	}
	if n > subBuffer {
		t.Errorf("drained %d messages from a %d buffer", n, subBuffer)
	}
	sub.Close() // after-drop Close must be safe
}

// TestHTTPMetricsExposition: observations land in per-endpoint histograms
// and WriteProm emits the bucket/sum/count families with endpoint labels.
func TestHTTPMetricsExposition(t *testing.T) {
	m := NewHTTPMetrics()
	m.Observe("run", 5*time.Millisecond)
	m.Observe("run", 10*time.Millisecond)
	m.Observe("series", time.Millisecond)
	if q := m.Quantile("run", 1.0); q < 8000 || q > 10240 {
		t.Errorf("p100 = %g µs, want ~10000", q)
	}
	var buf bytes.Buffer
	m.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE a4_http_request_duration_seconds histogram",
		`a4_http_request_duration_seconds_bucket{endpoint="run",le="`,
		`a4_http_request_duration_seconds_count{endpoint="run"} 2`,
		`a4_http_request_duration_seconds_count{endpoint="series"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// The Timed wrapper records through to the same histogram.
	srv := httptest.NewServer(m.Timed("wrapped", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if _, err := http.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	m.WriteProm(&buf)
	if !strings.Contains(buf.String(), `endpoint="wrapped"`) {
		t.Error("Timed did not record")
	}
}

// TestExpoEscaping: label values with quotes, backslashes, and newlines are
// escaped per the text exposition format.
func TestExpoEscaping(t *testing.T) {
	got := Label("backend", "http://x\"y\\z\n")
	want := `backend="http://x\"y\\z\n"`
	if got != want {
		t.Errorf("Label = %s, want %s", got, want)
	}
	var buf bytes.Buffer
	e := NewExpo(&buf)
	e.Family("f_total", "counter")
	e.Val("f_total", JoinLabels(Label("a", "1"), Label("b", "2")), 3)
	if s := buf.String(); !strings.Contains(s, `f_total{a="1",b="2"} 3`) {
		t.Errorf("exposition %q", s)
	}
}

// TestHistogramSSEJSONShape pins the canonical span JSON the HTTP layer
// serves: no wall-clock fields, offsets and durations only.
func TestSpanJSONShape(t *testing.T) {
	tr := NewTrace("shape")
	tr.Begin("warm").End()
	var body struct {
		ID    string           `json:"id"`
		Spans []map[string]any `json:"spans"`
	}
	if err := json.Unmarshal(tr.JSON(), &body); err != nil {
		t.Fatal(err)
	}
	if body.ID != "shape" || len(body.Spans) != 1 {
		t.Fatalf("body %+v", body)
	}
	for k := range body.Spans[0] {
		switch k {
		case "name", "backend", "start_us", "dur_us":
		default:
			t.Errorf("unexpected span field %q (wall-clock leak?)", k)
		}
	}
}
