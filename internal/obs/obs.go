// Package obs is the request-lifecycle observability plane: per-request
// traces built from typed spans around the serving path's seams
// (queue_wait, warm, measure, store_read, …), a bounded ring the HTTP
// layer serves them from, a fan-out hub that streams a run's per-second
// series rows to live subscribers, and a hand-rolled Prometheus text
// exposition for /metrics. Everything here is deliberately cheap and
// nil-safe: an untraced request pays a single nil check per seam, and no
// body ever carries a wall-clock timestamp — spans are offsets and
// durations, so trace bodies are deterministic modulo scheduling.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TraceHeader carries a trace ID across HTTP hops. A coordinator forwards
// its request's ID to the owning backend, so the backend's spans join the
// same trace; the mux mints a fresh ID when the header is absent.
const TraceHeader = "X-A4-Trace"

// NewID returns a fresh 16-hex-character trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a process-unique
		// fallback keeps tracing alive rather than panicking the mux.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is usable as a trace ID arriving from a peer:
// short and shell-safe, so junk header values never become ring keys or
// response bytes.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Span is one timed segment of a request's life. Start and duration are
// microsecond offsets from the trace's (unserialized) start instant —
// durations only, no wall-clock — so two runs of the same request produce
// structurally identical bodies. Backend, when set, names the node the
// segment ran on (the coordinator annotates its hops; a merged trace
// labels remote spans with their origin).
type Span struct {
	Name    string `json:"name"`
	Backend string `json:"backend,omitempty"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// Trace accumulates the spans of one request. All methods are safe for
// concurrent use (the mux goroutine and the worker executing the job both
// record into it) and nil-safe, so untraced code paths pass nil and pay
// nothing.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace anchored at now.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanHandle is an open span; End closes and records it.
type SpanHandle struct {
	t       *Trace
	name    string
	backend string
	start   time.Duration
}

// Begin opens a span. Safe on a nil trace: the returned handle's methods
// are all no-ops, which is what keeps the untraced path free.
func (t *Trace) Begin(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, name: name, start: time.Since(t.start)}
}

// Annotate labels the open span with the backend it targets, returning the
// handle for chaining.
func (h *SpanHandle) Annotate(backend string) *SpanHandle {
	if h != nil {
		h.backend = backend
	}
	return h
}

// End closes the span and records it on the trace.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	end := time.Since(h.t.start)
	h.t.add(Span{
		Name:    h.name,
		Backend: h.backend,
		StartUs: h.start.Microseconds(),
		DurUs:   (end - h.start).Microseconds(),
	})
}

// Mark records an instantaneous (zero-duration) span — an event on the
// request timeline, like a reroute decision or a cache hit.
func (t *Trace) Mark(name, backend string) {
	if t == nil {
		return
	}
	t.add(Span{Name: name, Backend: backend, StartUs: time.Since(t.start).Microseconds()})
}

// Add records an already-built span — how a coordinator merges spans
// fetched from a backend into its own trace view.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.add(sp)
}

func (t *Trace) add(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns the recorded spans ordered by start offset (stably, so
// a parent span that opened before its children sorts first). The slice is
// a copy.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUs < out[j].StartUs })
	return out
}

// JSON returns the trace's canonical body.
func (t *Trace) JSON() []byte {
	return EncodeTrace(t.ID(), t.Snapshot())
}

// wireTrace is the canonical trace body: the ID and the spans in start
// order.
type wireTrace struct {
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
}

// EncodeTrace builds the canonical trace body for an ID and span set.
func EncodeTrace(id string, spans []Span) []byte {
	if spans == nil {
		spans = []Span{}
	}
	data, err := json.Marshal(wireTrace{ID: id, Spans: spans})
	if err != nil {
		// Span fields are strings and ints; Marshal cannot fail.
		panic(err)
	}
	return data
}

// DecodeTrace parses a body produced by EncodeTrace.
func DecodeTrace(data []byte) (id string, spans []Span, err error) {
	var w wireTrace
	if err := json.Unmarshal(data, &w); err != nil {
		return "", nil, fmt.Errorf("obs: decode trace: %w", err)
	}
	return w.ID, w.Spans, nil
}

// Ring keeps the last N traces by ID: a bounded map + circular buffer under
// one short-hold mutex, so recording a finished request is O(1) and the
// serving path never blocks on a reader.
type Ring struct {
	mu      sync.Mutex
	buf     []*Trace
	idx     map[string]*Trace
	next    int
	count   int
	dropped int64
}

// NewRing returns a ring retaining up to capacity traces (default 256).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	return &Ring{buf: make([]*Trace, capacity), idx: make(map[string]*Trace, capacity)}
}

// Add records a finished trace, evicting the oldest when full. A re-added
// ID points the index at the newest trace.
func (r *Ring) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	if old := r.buf[r.next]; old != nil {
		if r.idx[old.id] == old {
			delete(r.idx, old.id)
		}
		r.dropped++
	} else {
		r.count++
	}
	r.buf[r.next] = t
	r.idx[t.id] = t
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// Get returns the trace stored under id.
func (r *Ring) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.idx[id]
	return t, ok
}

// Recent returns up to n retained traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.count {
		n = r.count
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		pos := r.next - i
		if pos < 0 {
			pos += len(r.buf)
		}
		out = append(out, r.buf[pos])
	}
	return out
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns the number of traces evicted by capacity.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
