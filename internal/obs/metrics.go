package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"a4sim/internal/stats"
)

// Expo writes the Prometheus text exposition format (version 0.0.4) by
// hand — no client library, matching the repo's no-new-deps rule. Families
// are written in call order; a scrape's layout is therefore a pure
// function of the metric sources, which keeps /metrics diffable in tests.
type Expo struct {
	w io.Writer
}

// NewExpo wraps w for exposition.
func NewExpo(w io.Writer) *Expo { return &Expo{w: w} }

// Label renders one escaped k="v" label pair.
func Label(k, v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return k + `="` + r.Replace(v) + `"`
}

// JoinLabels combines label pairs, skipping empties.
func JoinLabels(pairs ...string) string {
	var nonEmpty []string
	for _, p := range pairs {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return strings.Join(nonEmpty, ",")
}

// Family writes a family's # TYPE header (typ is "counter", "gauge", or
// "histogram").
func (e *Expo) Family(name, typ string) {
	fmt.Fprintf(e.w, "# TYPE %s %s\n", name, typ)
}

// Val writes one sample line; labels is a pre-rendered pair list ("" for
// none).
func (e *Expo) Val(name, labels string, v float64) {
	if labels != "" {
		name += "{" + labels + "}"
	}
	fmt.Fprintf(e.w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Hist writes one histogram family with a single label set: the TYPE
// header, cumulative _bucket lines at the histogram's power-of-two
// boundaries, then _sum and _count. scale divides recorded units into
// seconds (1e6 for microsecond-recorded histograms), per the Prometheus
// convention that duration histograms expose seconds.
func (e *Expo) Hist(name, labels string, h *stats.Histogram, scale float64) {
	e.Family(name, "histogram")
	e.HistVals(name, labels, h, scale)
}

// HistVals writes one label set's _bucket/_sum/_count lines without the
// TYPE header, for families exposed across several label sets.
func (e *Expo) HistVals(name, labels string, h *stats.Histogram, scale float64) {
	bounds, cum := h.Cumulative()
	for i, b := range bounds {
		le := Label("le", strconv.FormatFloat(float64(b)/scale, 'g', -1, 64))
		e.Val(name+"_bucket", JoinLabels(labels, le), float64(cum[i]))
	}
	e.Val(name+"_bucket", JoinLabels(labels, `le="+Inf"`), float64(h.Count()))
	e.Val(name+"_sum", labels, float64(h.Sum())/scale)
	e.Val(name+"_count", labels, float64(h.Count()))
}

// HTTPMetrics records per-endpoint request durations into sharded
// histograms and exposes them as one labeled family. Timed resolves an
// endpoint's shard set once at mux-build time, so the per-request record
// is one sharded Observe — no registry lock, no map probe. WriteProm
// merges shards at scrape time; endpoints registered but never hit are
// skipped, so the exposition is identical to the old lazily-registered
// form.
type HTTPMetrics struct {
	mu    sync.Mutex
	order []string
	hists map[string]*stats.ShardedHistogram
}

// NewHTTPMetrics returns an empty recorder.
func NewHTTPMetrics() *HTTPMetrics {
	return &HTTPMetrics{hists: make(map[string]*stats.ShardedHistogram)}
}

// handle returns endpoint's histogram, registering it on first use.
func (m *HTTPMetrics) handle(endpoint string) *stats.ShardedHistogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[endpoint]
	if !ok {
		h = stats.NewShardedHistogram()
		m.hists[endpoint] = h
		m.order = append(m.order, endpoint)
	}
	return h
}

// Observe records one request's duration under its endpoint label.
func (m *HTTPMetrics) Observe(endpoint string, d time.Duration) {
	m.handle(endpoint).Observe(d.Microseconds())
}

// Quantile returns one endpoint's latency quantile in microseconds (0 when
// the endpoint was never hit).
func (m *HTTPMetrics) Quantile(endpoint string, p float64) float64 {
	m.mu.Lock()
	h, ok := m.hists[endpoint]
	m.mu.Unlock()
	if !ok {
		return 0
	}
	return h.Snapshot().Quantile(p)
}

// WriteProm writes the a4_http_request_duration_seconds family, one label
// set per hit endpoint in registration order.
func (m *HTTPMetrics) WriteProm(w io.Writer) {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	merged := make(map[string]*stats.Histogram, len(m.hists))
	for ep, h := range m.hists {
		merged[ep] = h.Snapshot()
	}
	m.mu.Unlock()
	var e *Expo
	const name = "a4_http_request_duration_seconds"
	for _, ep := range order {
		h := merged[ep]
		if h.Count() == 0 {
			continue // registered by Timed but never hit: keep it out of the scrape
		}
		if e == nil {
			e = NewExpo(w)
			e.Family(name, "histogram")
		}
		e.HistVals(name, Label("endpoint", ep), h, 1e6)
	}
}

// Timed wraps an HTTP handler to record its duration under endpoint. The
// histogram is resolved here, once, not per request.
func (m *HTTPMetrics) Timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := m.handle(endpoint)
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h(w, req)
		hist.Observe(time.Since(start).Microseconds())
	}
}
