package obs

import (
	"sync"

	"a4sim/internal/stats"
)

// SeriesHub fans a running scenario's per-second series rows out to live
// SSE subscribers. The executing worker publishes (one call per simulated
// second, from the monitor's row hook); any number of subscribers attach
// by the run's content hash and replay from row 0 — the hub keeps every
// published row for the run's lifetime, which is bounded by the window cap
// (MaxWindowSec rows), so late attachers see exactly the rows early ones
// did and the streamed bytes can match the stored series bit for bit.
type SeriesHub struct {
	mu   sync.Mutex
	runs map[string]*liveSeries
}

// SeriesMsg is one hub message. Exactly one field group is meaningful:
// Names announces the column layout (sent once, when the first row makes
// it known), Row carries one appended row, and a terminal message carries
// either Final (the stored series' canonical bytes — the byte-identity
// anchor) or Err. A closed channel without a terminal message means the
// subscriber was dropped for falling behind.
type SeriesMsg struct {
	Names []string
	Row   []float64
	Final []byte
	Err   string
	End   bool
}

// subBuffer is each subscriber's channel depth: enough for a maximum-length
// window (scenario.MaxWindowSec = 3600 rows) plus control messages, so only
// a subscriber that stops reading entirely can overflow and be dropped.
const subBuffer = 4096

type liveSeries struct {
	mu    sync.Mutex
	named bool
	names []string
	rows  [][]float64
	done  bool
	subs  map[int]chan SeriesMsg
	next  int
}

// NewSeriesHub returns an empty hub.
func NewSeriesHub() *SeriesHub {
	return &SeriesHub{runs: make(map[string]*liveSeries)}
}

// SeriesPub is the publishing side of one run's stream.
type SeriesPub struct {
	hub *SeriesHub
	key string
	run *liveSeries
}

// Open registers a run about to execute and returns its publisher. A key
// already open (a racing duplicate execution — impossible through the
// service's singleflight, but the hub does not depend on that) returns the
// existing run's publisher.
func (h *SeriesHub) Open(key string) *SeriesPub {
	h.mu.Lock()
	defer h.mu.Unlock()
	run, ok := h.runs[key]
	if !ok {
		run = &liveSeries{subs: make(map[int]chan SeriesMsg)}
		h.runs[key] = run
	}
	return &SeriesPub{hub: h, key: key, run: run}
}

// SeriesSub is one attached subscriber: the column layout and rows
// published before the attach (for replay), then live messages on C.
type SeriesSub struct {
	Names  []string
	Replay [][]float64
	C      <-chan SeriesMsg

	run *liveSeries
	id  int
}

// Attach subscribes to a run in flight. It returns false when no run is
// live under key — the caller then serves the stored series instead.
func (h *SeriesHub) Attach(key string) (*SeriesSub, bool) {
	h.mu.Lock()
	run, ok := h.runs[key]
	h.mu.Unlock()
	if !ok {
		return nil, false
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	if run.done {
		// Finish raced our map lookup; the stored series is already
		// servable, so report no live run.
		return nil, false
	}
	ch := make(chan SeriesMsg, subBuffer)
	id := run.next
	run.next++
	run.subs[id] = ch
	sub := &SeriesSub{
		Names: append([]string(nil), run.names...),
		C:     ch,
		run:   run,
		id:    id,
	}
	for _, row := range run.rows {
		sub.Replay = append(sub.Replay, append([]float64(nil), row...))
	}
	return sub, true
}

// Close detaches the subscriber; safe to call after the stream ended.
func (s *SeriesSub) Close() {
	s.run.mu.Lock()
	if ch, ok := s.run.subs[s.id]; ok {
		delete(s.run.subs, s.id)
		close(ch)
	}
	s.run.mu.Unlock()
}

// Publish broadcasts every series row beyond what was already published.
// Catch-up semantics (rather than "append one row") make the fork path
// free: a run continued from a warm snapshot publishes its inherited
// prefix rows with one call, then per-second rows as they append. The
// series is read under the run's lock but not retained.
func (p *SeriesPub) Publish(s *stats.Series) {
	if s == nil {
		return
	}
	r := p.run
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	if !r.named {
		r.named = true
		r.names = s.Names()
		r.broadcast(SeriesMsg{Names: append([]string(nil), r.names...)})
	}
	for i := len(r.rows); i < s.Len(); i++ {
		row := s.Row(i, nil)
		r.rows = append(r.rows, row)
		r.broadcast(SeriesMsg{Row: row})
	}
}

// Finish ends the stream normally: final is the stored series' canonical
// bytes, handed to every subscriber as the terminal message so a streamed
// view can verify byte-identity against GET /series. The run is removed
// from the hub first, so a concurrent Attach either joins before (and gets
// the terminal message) or misses and reads the stored series.
func (p *SeriesPub) Finish(final []byte) {
	p.end(SeriesMsg{Final: final, End: true})
}

// Abort ends the stream with an error (the execution failed); subscribers
// see a terminal error message.
func (p *SeriesPub) Abort(msg string) {
	p.end(SeriesMsg{Err: msg, End: true})
}

func (p *SeriesPub) end(terminal SeriesMsg) {
	p.hub.mu.Lock()
	if p.hub.runs[p.key] == p.run {
		delete(p.hub.runs, p.key)
	}
	p.hub.mu.Unlock()
	r := p.run
	r.mu.Lock()
	if !r.done {
		r.done = true
		r.broadcast(terminal)
		for id, ch := range r.subs {
			delete(r.subs, id)
			close(ch)
		}
	}
	r.mu.Unlock()
}

// broadcast sends to every subscriber without blocking: one that stopped
// draining (buffer full) is dropped — its channel closes with no terminal
// message, which the SSE layer reports as a dropped stream. Called with
// run.mu held.
func (r *liveSeries) broadcast(msg SeriesMsg) {
	for id, ch := range r.subs {
		select {
		case ch <- msg:
		default:
			delete(r.subs, id)
			close(ch)
		}
	}
}

// Live reports whether a run is currently streaming under key.
func (h *SeriesHub) Live(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.runs[key]
	return ok
}
