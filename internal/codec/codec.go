// Package codec implements the little-endian binary encoding used for
// durable snapshot state. It is deliberately tiny: a Writer that appends
// fixed-width integers, floats, and length-prefixed blobs to a growing
// buffer, and a Reader with a sticky error that decodes the same stream.
//
// The encoding has no self-description: reader and writer must agree on the
// field order, which the per-package EncodeState/DecodeState pairs pin by
// construction. Structural mismatches (a decoded length that disagrees with
// the receiver's geometry) are reported through Reader.Fail so a single
// corrupt or stale byte stream degrades to one error, never a panic.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is the sticky error a Reader reports when the stream ends
// before a requested field.
var ErrTruncated = errors.New("codec: truncated input")

// Writer appends fields to a buffer. All methods are infallible: the only
// failure mode of encoding is running out of memory.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends b verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a byte: 1 for true, 0 for false.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Blob appends a u32 length prefix followed by the bytes.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s as a Blob.
func (w *Writer) String(s string) { w.Blob([]byte(s)) }

// U64s appends a u32 count followed by the values.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// U32s appends a u32 count followed by the values.
func (w *Writer) U32s(vs []uint32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U32(v)
	}
}

// I32s appends a u32 count followed by the values.
func (w *Writer) I32s(vs []int32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// I64s appends a u32 count followed by the values.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// F64s appends a u32 count followed by the values.
func (w *Writer) F64s(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader decodes a stream produced by Writer. The first failure — a
// truncated buffer or an explicit Fail from a structural check — sticks:
// every later read returns the zero value, so decode sequences need one
// error check at the end, not one per field.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Fail records err (if none is already recorded) and poisons further reads.
// Decode methods use it to reject structurally inconsistent input.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf is Fail with formatting.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// take returns the next n bytes, or nil after setting the sticky error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.Fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Raw returns the next n bytes verbatim.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte and rejects anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(errors.New("codec: invalid bool"))
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 and returns it as int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// count reads a u32 length prefix and bounds it by the bytes remaining
// (each element occupies at least elemSize bytes), so corrupt input cannot
// drive a huge allocation.
func (r *Reader) count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n*elemSize > r.Remaining() {
		r.Fail(ErrTruncated)
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Blob() []byte {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a Blob as a string.
func (r *Reader) String() string { return string(r.Blob()) }

// U64s reads a count-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// U32s reads a count-prefixed []uint32.
func (r *Reader) U32s() []uint32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.U32()
	}
	return vs
}

// I32s reads a count-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(r.U32())
	}
	return vs
}

// I64s reads a count-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.I64()
	}
	return vs
}

// F64s reads a count-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}
