package figures

import (
	"fmt"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// FigTransient is the telemetry plane's time-resolved figure (id
// "transient"; not in the paper, which only reports window aggregates). It
// plots per-second HPW slowdown across the colocation phase change: the
// measurement window opens right after a minimal warm-up, so the first
// seconds capture the I/O LPWs spinning up — FIO's queue ramp and a
// 10 MB random-access X-Mem antagonist flooding the LLC — and, under A4, the controller's init →
// searching → settled transitions as it discovers an allocation. The HPW
// is the cache-sensitive X-Mem (4 MB working set): its per-second progress
// is what LLC contention squeezes, where a throughput-capped network
// workload would hide interference in latency instead. Aggregate figures
// average this transient away; the per-second series is what shows when
// the A4 variant recovers the HPW and what the default manager costs it
// second by second.
//
// Slowdown at second t is soloProgress[t] / colocatedProgress[t], both
// from the report series of specs run through RunSpecs — so the figure
// exercises the full serving path (specs, cache, series plane) rather than
// driving scenarios by hand.
func FigTransient(o Options) *Report {
	// 30 s captures the controller's whole arc: ~17 s of searching, the
	// settle (slowdown drops), and the first revert probe (a visible
	// spike) — the quick window shows just the early search transient.
	meas := 30.0
	if o.Quick {
		meas = 8
	}
	if o.Measure > 0 {
		meas = o.Measure
	}
	warm := 2.0
	if o.Warmup > 0 {
		warm = o.Warmup
	}
	// Scale 1024 (not the determinism tests' 4096): the transient exists
	// only once the antagonist's working set actually floods the LLC, and
	// at 4096 the fill alone outlasts any reasonable window.
	scale := 1024.0
	if o.Params.RateScale > 0 {
		scale = o.Params.RateScale
	}

	base := func(name, manager string, colocated bool) *scenario.Spec {
		sp := &scenario.Spec{
			Name:       name,
			Manager:    manager,
			Params:     scenario.ParamSpec{RateScale: scale},
			WarmupSec:  warm,
			MeasureSec: meas,
			Series:     &scenario.SeriesSpec{}, // all groups
			Workloads: []scenario.WorkloadSpec{
				{Kind: "xmem", Name: "xmem", Cores: []int{0}, Priority: "hpw", WSKB: 4 << 10, Pattern: "sequential"},
			},
		}
		if o.Params.Sample.Enabled() {
			sp.Sampling = &scenario.SamplingSpec{
				DetailUs: o.Params.Sample.DetailUs,
				PeriodUs: o.Params.Sample.PeriodUs,
			}
		}
		if colocated {
			sp.Workloads = append(sp.Workloads,
				// The antagonist set of the paper's micro mix: a storage
				// stream plus a 10 MB random-access X-Mem — the workloads
				// whose spin-up squeezes the HPW out of the standard ways.
				scenario.WorkloadSpec{Kind: "fio", Name: "fio", Cores: []int{1, 2}, Priority: "lpw", BlockKB: 128, QueueDepth: 16},
				scenario.WorkloadSpec{Kind: "xmem", Name: "ant", Cores: []int{3, 4}, Priority: "lpw", WSKB: 10 << 10, Pattern: "random"},
			)
		}
		return sp
	}
	specs := []*scenario.Spec{
		base("transient-solo", "default", false),
		base("transient-default", "default", true),
		base("transient-a4d", "a4-d", true),
	}

	svc := service.New(service.Config{Workers: o.Workers})
	defer svc.Close()
	reports, err := RunSpecs(o, svc, specs)
	if err != nil {
		panic(fmt.Sprintf("figures: transient: %v", err))
	}
	solo := reports[0].Series.Column("wl.xmem.progress")

	rep := &Report{ID: "transient", Title: "HPW slowdown vs. time across the colocation phase change (per-second series)"}
	for i, label := range []string{"default", "a4-d"} {
		colo := reports[i+1].Series.Column("wl.xmem.progress")
		s := rep.AddSeries("slowdown-" + label)
		for t := 0; t < len(colo) && t < len(solo); t++ {
			slow := 0.0
			if colo[t] > 0 {
				slow = solo[t] / colo[t]
			}
			s.Add(fmt.Sprintf("t=%ds", t+1), float64(t+1), slow)
		}
	}
	// The controller's per-second state (0 init, 1 searching, 2 settled,
	// 3 reverting) aligned with the slowdown rows: the figure's whole point
	// is seeing the settle transition land in the timeline.
	if st := reports[2].Series.Column("a4.state"); st != nil {
		s := rep.AddSeries("a4-state")
		for t, v := range st {
			s.Add(fmt.Sprintf("t=%ds", t+1), float64(t+1), v)
		}
	}
	if o.Verbose {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("windows: warm %gs + measure %gs at rate scale %g; slowdown = solo/colocated per-second xmem progress", warm, meas, scale))
	}
	return rep
}
