package figures

import (
	"reflect"
	"testing"

	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

// testPrefixGroup is a small warm-up-dominated sweep: one shared prefix,
// three divergent mask positions.
func testPrefixGroup(o Options) prefixSweep {
	grp := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(o.Params)
			d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
			x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
			s.Start(harness.Default())
			pin(s, 1, d.Cores(), 5, 6)
			pin(s, 2, x.Cores(), 0, 10)
			return s
		},
		warm: 2,
		meas: 1,
	}
	for _, lo := range []int{0, 5, 9} {
		lo := lo
		grp.diverge = append(grp.diverge, func(s *harness.Scenario) {
			pin(s, 2, []int{4, 5}, lo, lo+1)
		})
	}
	return grp
}

// TestPrefixSweepMatchesFresh pins the acceptance property of the forked
// runner: every point of a prefix-shared sweep is identical to a fresh,
// serial, non-forking run of the same point (build, warm, diverge at the
// measurement boundary, measure) — at any worker count.
func TestPrefixSweepMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are slow")
	}
	o := detOpts(4)
	grp := testPrefixGroup(o)
	forked := runPrefixSweeps(o, []prefixSweep{grp})[0]

	for p, div := range grp.diverge {
		s := grp.build()
		s.Warm(grp.warm)
		div(s)
		s.BeginMeasure()
		s.Measure(grp.meas)
		fresh := s.EndMeasure()
		if !reflect.DeepEqual(fresh, forked[p]) {
			t.Errorf("point %d: forked result differs from fresh run\nfresh: %+v\nfork:  %+v", p, fresh, forked[p])
		}
	}
}
