package figures

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep runner executes independent scenario points of a figure
// concurrently. Every point builds its own harness.Scenario (engine, seeded
// RNGs, hierarchy), so points share no mutable state and the reports are
// bit-identical to serial execution regardless of scheduling; only the
// assembly order matters, and callers assemble from an index-addressed
// result slice after the pool drains.

// Workers resolves the worker-pool degree for o: Options.Workers when
// positive, else GOMAXPROCS.
func (o Options) workerCount(points int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachPoint runs fn(i) for every i in [0, n), spreading the calls over
// the sweep worker pool. It returns when all points are done. A panic in
// any point is re-raised on the caller's goroutine.
func forEachPoint(o Options, n int, fn func(i int)) {
	w := o.workerCount(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// A panic value is rewrapped in a single concrete type: atomic.Value
	// panics on stores of differing concrete types, which would otherwise
	// mask the first panic if two points fail concurrently.
	type panicInfo struct{ v any }
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	next.Store(-1)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, panicInfo{r})
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(panicInfo).v)
	}
}

// runPoints is the common sweep shape: one scenario-building closure per
// point, results collected by index.
func runPoints[T any](o Options, n int, point func(i int) T) []T {
	out := make([]T, n)
	forEachPoint(o, n, func(i int) {
		out[i] = point(i)
	})
	return out
}
