package figures

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"a4sim/internal/harness"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// The sweep runner executes independent scenario points of a figure
// concurrently. Every point builds its own harness.Scenario (engine, seeded
// RNGs, hierarchy), so points share no mutable state and the reports are
// bit-identical to serial execution regardless of scheduling; only the
// assembly order matters, and callers assemble from an index-addressed
// result slice after the pool drains.
//
// Sweeps whose points share a scenario prefix — identical construction,
// manager, and warm-up, diverging only in a measurement-time knob (a CAT
// mask position, a DCA switch) — run through runPrefixSweeps instead: the
// prefix is built and warmed once per group, and each point forks the warm
// state, applies its divergence, and measures. The snapshot/fork contract
// (forked-run ≡ fresh-run, see internal/harness/fork.go) makes the grouped
// execution byte-identical to running every point fresh with the same
// divergence timing, at a fraction of the wall-clock cost when warm-up
// dominates the windows.

// Workers resolves the worker-pool degree for o: Options.Workers when
// positive, else GOMAXPROCS.
func (o Options) workerCount(points int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachPoint runs fn(i) for every i in [0, n), spreading the calls over
// the sweep worker pool. It returns when all points are done. A panic in
// any point is re-raised on the caller's goroutine.
func forEachPoint(o Options, n int, fn func(i int)) {
	w := o.workerCount(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// A panic value is rewrapped in a single concrete type: atomic.Value
	// panics on stores of differing concrete types, which would otherwise
	// mask the first panic if two points fail concurrently.
	type panicInfo struct{ v any }
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	next.Store(-1)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, panicInfo{r})
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(panicInfo).v)
	}
}

// runPoints is the common sweep shape: one scenario-building closure per
// point, results collected by index.
func runPoints[T any](o Options, n int, point func(i int) T) []T {
	out := make([]T, n)
	forEachPoint(o, n, func(i int) {
		out[i] = point(i)
	})
	return out
}

// RunSpecs executes spec-shaped sweep points through r — the local service
// pool or a cluster.Coordinator — with the same deterministic assembly as
// the in-process sweeps: reports come back in input order, byte-identical
// to a serial run, regardless of worker or backend count. It is the
// spec-level counterpart of runPrefixSweeps: specs sharing a run prefix
// form a group submitted sequentially (shortest measurement window first),
// so the executor warms the prefix once and each later point forks the
// snapshot its predecessor deposited — locally via the service snapshot
// LRU, remotely via the backend that prefix-hash routing pins the whole
// group to. Distinct prefixes fan out concurrently on the sweep pool.
func RunSpecs(o Options, r service.Runner, specs []*scenario.Spec) ([]*scenario.Report, error) {
	reports := make([]*scenario.Report, len(specs))
	errs := make([]error, len(specs))
	groups := service.GroupSpecsByPrefix(specs)
	forEachPoint(o, len(groups), func(g int) {
		for _, i := range groups[g] {
			res, err := r.Submit(specs[i])
			if err != nil {
				errs[i] = err
				continue
			}
			rep, err := scenario.DecodeReport(res.Report)
			if err != nil {
				errs[i] = err
				continue
			}
			reports[i] = rep
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("figures: spec point %d: %w", i, err)
		}
	}
	return reports, nil
}

// prefixSweep is one group of sweep points sharing a scenario prefix. build
// constructs and Starts the shared scenario; it is warmed for warm simulated
// seconds exactly once. Each entry of diverge is one point: it receives a
// fork of the warm state, applies the point's knob (a nil entry diverges by
// nothing), and is measured for meas seconds. Divergence therefore lands at
// the measurement boundary — for CAT masks that is the §5.5 semantics of
// programming a mask on a live system (new allocations only), and for DCA
// knobs it is exactly how the A4 daemon flips ports at runtime.
type prefixSweep struct {
	build   func() *harness.Scenario
	warm    float64
	meas    float64
	diverge []func(*harness.Scenario)
}

// runPrefixSweeps executes the groups on the worker pool in two phases:
// every group's prefix is built and warmed (concurrently across groups),
// then every point forks, diverges, and measures (concurrently across all
// points of all groups). A single-point group skips the fork and measures
// the warmed prefix directly — equivalent by the fork contract. Results are
// indexed [group][point]; reports are byte-identical at any worker count.
func runPrefixSweeps(o Options, groups []prefixSweep) [][]*harness.Result {
	warmed := make([]*harness.Scenario, len(groups))
	forEachPoint(o, len(groups), func(g int) {
		s := groups[g].build()
		s.Warm(groups[g].warm)
		warmed[g] = s
	})
	type point struct{ g, p int }
	var pts []point
	out := make([][]*harness.Result, len(groups))
	for g := range groups {
		out[g] = make([]*harness.Result, len(groups[g].diverge))
		for p := range groups[g].diverge {
			pts = append(pts, point{g, p})
		}
	}
	forEachPoint(o, len(pts), func(i int) {
		g, p := pts[i].g, pts[i].p
		grp := groups[g]
		s := warmed[g]
		if len(grp.diverge) > 1 {
			// Concurrent forks of one warmed prefix only read it, so points
			// of a group need no ordering among themselves.
			s = s.Fork()
		}
		if d := grp.diverge[p]; d != nil {
			d(s)
		}
		s.BeginMeasure()
		s.Measure(grp.meas)
		out[g][p] = s.EndMeasure()
	})
	return out
}
