package figures

import (
	"fmt"

	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

// fig3Sweep runs the §3.1 way sweep: DPDK (touch or not) pinned to way[5:6]
// while X-Mem's two ways slide from [0:1] to [9:10]. All points share one
// scenario prefix — identical construction and warm-up with only the DPDK
// pin programmed — and the divergent X-Mem mask is programmed on the forked
// copy at the measurement boundary, the way the paper's scripts program
// masks on a live system.
func fig3Sweep(o Options, touch bool) *Report {
	id, name := "3a", "DPDK-NT"
	if touch {
		id, name = "3b", "DPDK-T"
	}
	rep := &Report{
		ID:    id,
		Title: fmt.Sprintf("Contention between %s (way[5:6]) and X-Mem at way[m:n]", name),
	}
	xm := rep.AddSeries("xmem-llc-miss")
	dm := rep.AddSeries("dpdk-llc-miss")
	mr := rep.AddSeries("mem-read-GBps")
	mw := rep.AddSeries("mem-write-GBps")
	warm, meas := o.windows(2, 3)

	positions := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if o.Quick {
		positions = []int{0, 3, 5, 9}
	}
	grp := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(microParams(o))
			d := s.AddDPDK(name, []int{0, 1, 2, 3}, touch, workload.HPW)
			x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
			s.Start(harness.Default())
			pin(s, 1, d.Cores(), 5, 6)
			pin(s, 2, x.Cores(), 0, 10) // explicit full mask; points narrow it
			return s
		},
		warm: warm,
		meas: meas,
	}
	for _, lo := range positions {
		lo := lo
		grp.diverge = append(grp.diverge, func(s *harness.Scenario) {
			pin(s, 2, []int{4, 5}, lo, lo+1)
		})
	}
	results := runPrefixSweeps(o, []prefixSweep{grp})[0]
	for i, lo := range positions {
		res := results[i]
		lbl := wayLabel(lo, lo+1)
		xpos := float64(lo)
		xm.Add(lbl, xpos, res.W("xmem").LLCMissRate)
		dm.Add(lbl, xpos, res.W(name).LLCMissRate)
		mr.Add(lbl, xpos, res.MemReadGBps)
		mw.Add(lbl, xpos, res.MemWriteGBps)
	}
	return rep
}

// Fig3a reproduces Fig. 3a: DPDK-NT (no touch) vs. X-Mem.
func Fig3a(o Options) *Report { return fig3Sweep(o, false) }

// Fig3b reproduces Fig. 3b: DPDK-T (touch) vs. X-Mem.
func Fig3b(o Options) *Report { return fig3Sweep(o, true) }

// Fig4 reproduces Fig. 4: validating the directory contention by toggling
// DCA, with X-Mem at selected way groups and DPDK-T tail latency.
func Fig4(o Options) *Report {
	rep := &Report{
		ID:    "4",
		Title: "Directory-contention validation: DCA on vs. off",
	}
	xm := rep.AddSeries("xmem-llc-miss")
	tl := rep.AddSeries("dpdk-p99-us")
	warm, meas := o.windows(2, 3)

	type cfg struct {
		label string
		xlo   int // -1 means X-Mem solo
		dca   bool
	}
	cases := []cfg{
		{"solo[9:10]", -1, true},
		{"on[0:1]", 0, true}, {"on[3:4]", 3, true}, {"on[5:6]", 5, true}, {"on[9:10]", 9, true},
		{"off[0:1]", 0, false}, {"off[3:4]", 3, false}, {"off[5:6]", 5, false}, {"off[9:10]", 9, false},
	}
	if o.Quick {
		cases = []cfg{{"on[9:10]", 9, true}, {"off[9:10]", 9, false}}
	}
	// Co-located cases share one prefix (DPDK pinned, X-Mem unconstrained,
	// DCA on); each point programs the X-Mem mask — and flips the DCA switch
	// for the off-cases — at the measurement boundary. The solo reference is
	// its own single-point group.
	var groups []prefixSweep
	co := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(microParams(o))
			d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
			x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
			s.Start(harness.Default())
			pin(s, 1, d.Cores(), 5, 6)
			pin(s, 2, x.Cores(), 0, 10)
			return s
		},
		warm: warm,
		meas: meas,
	}
	// caseAt[i] locates case i in the group results.
	type loc struct{ g, p int }
	caseAt := make([]loc, len(cases))
	for i, c := range cases {
		if c.xlo < 0 {
			groups = append(groups, prefixSweep{
				build: func() *harness.Scenario {
					s := harness.NewScenario(microParams(o))
					x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
					s.Start(harness.Default())
					pin(s, 2, x.Cores(), 9, 10)
					return s
				},
				warm:    warm,
				meas:    meas,
				diverge: []func(*harness.Scenario){nil},
			})
			caseAt[i] = loc{len(groups) - 1, 0}
			continue
		}
		c := c
		co.diverge = append(co.diverge, func(s *harness.Scenario) {
			if !c.dca {
				s.H.PCIe().SetGlobalDCA(false)
			}
			pin(s, 2, []int{4, 5}, c.xlo, c.xlo+1)
		})
		caseAt[i] = loc{-1, len(co.diverge) - 1}
	}
	groups = append(groups, co)
	byGroup := runPrefixSweeps(o, groups)
	for i := range caseAt {
		if caseAt[i].g < 0 {
			caseAt[i].g = len(groups) - 1
		}
	}
	for i, c := range cases {
		res := byGroup[caseAt[i].g][caseAt[i].p]
		xm.Add(c.label, float64(i), res.W("xmem").LLCMissRate)
		if c.xlo >= 0 {
			tl.Add(c.label, float64(i), res.W("dpdk-t").P99LatUs)
		}
	}
	return rep
}

// fig5Blocks is the block-size sweep of Fig. 5 and Fig. 6.
var fig5Blocks = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// Fig5 reproduces Fig. 5a: storage throughput and memory read bandwidth vs.
// block size, DCA on and off, for FIO running alone.
func Fig5(o Options) *Report {
	rep := &Report{
		ID:    "5",
		Title: "Storage block size vs. throughput and memory bandwidth (FIO solo)",
	}
	tpOn := rep.AddSeries("storage-tp-dcaon")
	tpOff := rep.AddSeries("storage-tp-dcaoff")
	mrOn := rep.AddSeries("memrd-dcaon")
	mrOff := rep.AddSeries("memrd-dcaoff")
	leak := rep.AddSeries("leak-rate-dcaon")
	warm, meas := o.windows(2, 3)

	blocks := fig5Blocks
	if o.Quick {
		blocks = []int{4, 32, 128, 512, 2048}
	}
	// Point order: (block, DCA on), (block, DCA off), next block, ...
	results := runPoints(o, len(blocks)*2, func(i int) *harness.Result {
		kb, dca := blocks[i/2], i%2 == 0
		s := harness.NewScenario(microParams(o))
		f := s.AddFIO("fio", []int{0, 1, 2, 3}, kb<<10, 32, workload.LPW)
		s.Start(harness.Default())
		if !dca {
			s.H.PCIe().SetGlobalDCA(false)
		}
		pin(s, 1, f.Cores(), 2, 3)
		return s.Run(warm, meas)
	})
	for i, kb := range blocks {
		lbl := kbLabel(kb)
		on, off := results[i*2], results[i*2+1]
		tpOn.Add(lbl, float64(kb), on.W("fio").IOReadGBps)
		mrOn.Add(lbl, float64(kb), on.MemReadGBps)
		leak.Add(lbl, float64(kb), on.W("fio").LeakRate)
		tpOff.Add(lbl, float64(kb), off.W("fio").IOReadGBps)
		mrOff.Add(lbl, float64(kb), off.MemReadGBps)
	}
	return rep
}

// Fig6 reproduces Fig. 6: DPDK-T latency and FIO throughput vs. storage
// block size, with DCA on/off, plus the DPDK-T solo reference (Fig. 6b).
func Fig6(o Options) *Report {
	rep := &Report{
		ID:    "6",
		Title: "Impact of FIO on DPDK-T latency (DPDK-T way[4:5], FIO way[2:3])",
	}
	alOn := rep.AddSeries("net-avg-us-dcaon")
	tlOn := rep.AddSeries("net-p99-us-dcaon")
	alOff := rep.AddSeries("net-avg-us-dcaoff")
	tpOn := rep.AddSeries("storage-tp-dcaon")
	warm, meas := o.windows(2, 3)

	blocks := fig5Blocks
	if o.Quick {
		blocks = []int{16, 64, 128, 512, 2048}
	}
	// Points: (block, DCA on/off) pairs, then the two Fig. 6b solo runs.
	n := len(blocks) * 2
	results := runPoints(o, n+2, func(i int) *harness.Result {
		s := harness.NewScenario(microParams(o))
		d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		dca := i%2 == 0
		if i < n {
			f := s.AddFIO("fio", []int{4, 5, 6, 7}, blocks[i/2]<<10, 32, workload.LPW)
			s.Start(harness.Default())
			if !dca {
				s.H.PCIe().SetGlobalDCA(false)
			}
			pin(s, 1, f.Cores(), 2, 3)
			pin(s, 2, d.Cores(), 4, 5)
		} else {
			s.Start(harness.Default())
			if !dca {
				s.H.PCIe().SetGlobalDCA(false)
			}
			pin(s, 1, d.Cores(), 4, 5)
		}
		return s.Run(warm, meas)
	})
	for i, kb := range blocks {
		lbl := kbLabel(kb)
		on, off := results[i*2], results[i*2+1]
		alOn.Add(lbl, float64(kb), on.W("dpdk-t").AvgLatUs)
		tlOn.Add(lbl, float64(kb), on.W("dpdk-t").P99LatUs)
		tpOn.Add(lbl, float64(kb), on.W("fio").IOReadGBps)
		alOff.Add(lbl, float64(kb), off.W("dpdk-t").AvgLatUs)
	}
	soloOn, soloOff := results[n], results[n+1]
	alOn.Add("solo", -1, soloOn.W("dpdk-t").AvgLatUs)
	tlOn.Add("solo", -1, soloOn.W("dpdk-t").P99LatUs)
	alOff.Add("solo", -1, soloOff.W("dpdk-t").AvgLatUs)
	return rep
}

// Fig7 reproduces Fig. 7: n-Overlap vs. n-Exclude allocation strategies for
// DPDK-T, comparing latency and memory bandwidth.
func Fig7(o Options) *Report {
	rep := &Report{
		ID:    "7",
		Title: "LLC allocation strategy: n ways Overlapping vs. Excluding inclusive ways",
	}
	al := rep.AddSeries("net-avg-us")
	tl := rep.AddSeries("net-p99-us")
	mr := rep.AddSeries("mem-read-GBps")
	mw := rep.AddSeries("mem-write-GBps")
	warm, meas := o.windows(2, 3)

	type strat struct {
		label  string
		lo, hi int
	}
	ways := 11
	var strategies []strat
	ns := []int{2, 4, 6, 8}
	if o.Quick {
		ns = []int{2, 4}
	}
	for _, n := range ns {
		// n-Overlap: the n rightmost ways, including the 2 inclusive ways.
		strategies = append(strategies, strat{fmt.Sprintf("%dO", n), ways - n, ways - 1})
		// n-Exclude: n ways immediately left of the inclusive ways.
		if n <= ways-2 {
			strategies = append(strategies, strat{fmt.Sprintf("%dE", n), ways - 2 - n, ways - 3})
		}
	}
	// All strategies share one warmed prefix (DPDK unconstrained); the
	// divergent allocation is programmed at the measurement boundary.
	grp := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(microParams(o))
			s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
			s.Start(harness.Default())
			return s
		},
		warm: warm,
		meas: meas,
	}
	for _, st := range strategies {
		st := st
		grp.diverge = append(grp.diverge, func(s *harness.Scenario) {
			pin(s, 1, []int{0, 1, 2, 3}, st.lo, st.hi)
		})
	}
	results := runPrefixSweeps(o, []prefixSweep{grp})[0]
	for i, st := range strategies {
		res := results[i]
		al.Add(st.label, float64(i), res.W("dpdk-t").AvgLatUs)
		tl.Add(st.label, float64(i), res.W("dpdk-t").P99LatUs)
		mr.Add(st.label, float64(i), res.MemReadGBps)
		mw.Add(st.label, float64(i), res.MemWriteGBps)
	}
	return rep
}

// Fig8a reproduces Fig. 8a: selectively disabling DCA for the SSD while
// keeping it for the NIC, vs. both-on, across storage block sizes.
func Fig8a(o Options) *Report {
	rep := &Report{
		ID:    "8a",
		Title: "I/O device-aware DCA: [SSD-DCA off] vs. [DCA on]",
	}
	alOn := rep.AddSeries("net-avg-us-dcaon")
	alOff := rep.AddSeries("net-avg-us-ssdoff")
	tlOn := rep.AddSeries("net-p99-us-dcaon")
	tlOff := rep.AddSeries("net-p99-us-ssdoff")
	tpOff := rep.AddSeries("storage-tp-ssdoff")
	warm, meas := o.windows(2, 3)

	blocks := []int{16, 32, 64, 128, 256, 512}
	if o.Quick {
		blocks = []int{32, 128, 512}
	}
	// One prefix per block size: construction, pins, and warm-up (DCA on)
	// are shared by the on/off pair, and the off-point flips the hidden
	// per-port knob at the measurement boundary — exactly the runtime flip
	// the A4 daemon performs.
	groups := make([]prefixSweep, len(blocks))
	for i, kb := range blocks {
		kb := kb
		groups[i] = prefixSweep{
			build: func() *harness.Scenario {
				s := harness.NewScenario(microParams(o))
				d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
				f := s.AddFIO("fio", []int{4, 5, 6, 7}, kb<<10, 32, workload.LPW)
				s.Start(harness.Default())
				pin(s, 1, f.Cores(), 2, 3)
				pin(s, 2, d.Cores(), 4, 5)
				return s
			},
			warm: warm,
			meas: meas,
			diverge: []func(*harness.Scenario){
				nil, // SSD DCA stays on
				func(s *harness.Scenario) { s.H.PCIe().SetPortDCA(harness.SSDPort, false) },
			},
		}
	}
	byGroup := runPrefixSweeps(o, groups)
	for i, kb := range blocks {
		lbl := kbLabel(kb)
		on, off := byGroup[i][0], byGroup[i][1]
		alOn.Add(lbl, float64(kb), on.W("dpdk-t").AvgLatUs)
		tlOn.Add(lbl, float64(kb), on.W("dpdk-t").P99LatUs)
		alOff.Add(lbl, float64(kb), off.W("dpdk-t").AvgLatUs)
		tlOff.Add(lbl, float64(kb), off.W("dpdk-t").P99LatUs)
		tpOff.Add(lbl, float64(kb), off.W("fio").IOReadGBps)
	}
	return rep
}

// Fig8b reproduces Fig. 8b: shrinking FIO's standard ways under
// [SSD-DCA off] while X-Mem holds way[2:5].
func Fig8b(o Options) *Report {
	rep := &Report{
		ID:    "8b",
		Title: "Trash-way narrowing: FIO ways [2:n] vs. X-Mem at way[2:5]",
	}
	xm := rep.AddSeries("xmem-llc-miss")
	tp := rep.AddSeries("storage-tp")
	// FIO needs a little longer to ramp 2 MB blocks into steady bloat.
	warm, meas := o.windows(4, 4)

	// The probe's working set nearly fills its four ways, as in the paper,
	// so bloat from overlapping FIO ways translates directly into misses.
	const fig8bWS = 8 << 20
	his := []int{5, 4, 3, 2}
	if o.Quick {
		his = []int{5, 2}
	}
	// All FIO way ranges share one prefix: construction, [SSD-DCA off], the
	// X-Mem pin, and FIO warmed at its widest range [2:5]. Each point then
	// narrows FIO's mask at the measurement boundary (resident lines decay
	// under CAT semantics, as on silicon). The X-Mem solo reference is its
	// own single-point group.
	co := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(microParams(o))
			f := s.AddFIO("fio", []int{0, 1, 2, 3}, 2<<20, 32, workload.LPW)
			x := s.AddXMem("xmem", []int{4, 5}, fig8bWS, workload.Sequential, false, workload.HPW)
			s.Start(harness.Default())
			s.H.PCIe().SetPortDCA(harness.SSDPort, false)
			pin(s, 1, f.Cores(), 2, 5)
			pin(s, 2, x.Cores(), 2, 5)
			return s
		},
		warm: warm,
		meas: meas,
	}
	for _, hi := range his {
		hi := hi
		co.diverge = append(co.diverge, func(s *harness.Scenario) {
			pin(s, 1, []int{0, 1, 2, 3}, 2, hi)
		})
	}
	solo := prefixSweep{
		build: func() *harness.Scenario {
			s := harness.NewScenario(microParams(o))
			x := s.AddXMem("xmem", []int{4, 5}, fig8bWS, workload.Sequential, false, workload.HPW)
			s.Start(harness.Default())
			pin(s, 2, x.Cores(), 2, 5)
			return s
		},
		warm:    warm,
		meas:    meas,
		diverge: []func(*harness.Scenario){nil},
	}
	byGroup := runPrefixSweeps(o, []prefixSweep{co, solo})
	for i, hi := range his {
		res := byGroup[0][i]
		lbl := wayLabel(2, hi)
		xm.Add(lbl, float64(hi), res.W("xmem").LLCMissRate)
		tp.Add(lbl, float64(hi), res.W("fio").IOReadGBps)
	}
	xm.Add("solo", 6, byGroup[1][0].W("xmem").LLCMissRate)
	return rep
}
