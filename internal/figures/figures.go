// Package figures regenerates every figure of the paper's motivation (§3),
// mitigation (§4), and evaluation (§7) sections on the simulated testbed.
// Each Fig* function builds the corresponding scenario(s), runs them, and
// returns a Report whose named series mirror the lines/bars of the figure.
// The cmd/a4bench tool prints these reports; the root bench_test.go wraps
// them in testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured.
package figures

import (
	"fmt"
	"strings"

	"a4sim/internal/cache"
	"a4sim/internal/harness"
	"a4sim/internal/stats"
	"a4sim/internal/workload"
)

// Options tune a figure run.
type Options struct {
	// Params overrides the scenario parameters; zero fields take defaults.
	Params harness.Params
	// Warmup and Measure override the per-figure run windows (simulated
	// seconds); zero keeps the figure's default.
	Warmup, Measure float64
	// Quick trims sweep points and schemes for fast benchmarking.
	Quick bool
	// Verbose adds controller event notes to reports.
	Verbose bool
	// Workers caps the sweep worker pool: independent scenario points of a
	// figure run concurrently on up to this many goroutines. Zero means
	// GOMAXPROCS; 1 forces serial execution. Each point owns its engine and
	// seeded RNGs, so reports are identical at any worker count.
	Workers int
}

func (o Options) windows(defWarm, defMeas float64) (float64, float64) {
	w, m := defWarm, defMeas
	if o.Warmup > 0 {
		w = o.Warmup
	}
	if o.Measure > 0 {
		m = o.Measure
	}
	if o.Quick {
		w, m = w*0.6, m*0.6
		if w < 1 {
			w = 1
		}
		if m < 1 {
			m = 1
		}
	}
	return w, m
}

// Report is one regenerated figure: a set of named series over shared
// x-axis labels.
type Report struct {
	ID     string
	Title  string
	Series []*stats.Curve
	Notes  []string
}

// AddSeries appends a named series and returns a pointer for Add calls.
func (r *Report) AddSeries(name string) *stats.Curve {
	s := &stats.Curve{Name: name}
	r.Series = append(r.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (r *Report) Get(name string) *stats.Curve {
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Value returns the y value of series name at x label, or (0, false).
func (r *Report) Value(name, label string) (float64, bool) {
	s := r.Get(name)
	if s == nil {
		return 0, false
	}
	for _, p := range s.Points {
		if p.Label == label {
			return p.Y, true
		}
	}
	return 0, false
}

// String renders the report as an aligned text table: one row per x label,
// one column per series.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return b.String()
	}
	// Collect x labels from the longest series, preserving order.
	var labels []string
	seen := map[string]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				labels = append(labels, p.Label)
			}
		}
	}
	fmt.Fprintf(&b, "%-14s", "x")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %16s", trunc(s.Name, 16))
	}
	b.WriteByte('\n')
	for _, lbl := range labels {
		fmt.Fprintf(&b, "%-14s", lbl)
		for _, s := range r.Series {
			v, ok := findPoint(s, lbl)
			if ok {
				fmt.Fprintf(&b, " %16.4f", v)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func findPoint(s *stats.Curve, label string) (float64, bool) {
	for _, p := range s.Points {
		if p.Label == label {
			return p.Y, true
		}
	}
	return 0, false
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// pin programs a contiguous CAT range for a workload's cores using a fresh
// CLOS. The figures of §3-§4 set allocations manually, like the paper's
// scripts do with intel-cmt-cat.
func pin(s *harness.Scenario, clos int, cores []int, lo, hi int) {
	if err := s.H.CAT().SetMask(clos, cache.MaskRange(lo, hi)); err != nil {
		panic(err)
	}
	for _, c := range cores {
		if err := s.H.CAT().Associate(c, clos); err != nil {
			panic(err)
		}
	}
}

// wayLabel formats an LLC way range like the paper's x axes.
func wayLabel(lo, hi int) string { return fmt.Sprintf("[%d:%d]", lo, hi) }

// kbLabel formats a block size.
func kbLabel(kb int) string {
	if kb >= 1024 {
		return fmt.Sprintf("%dMB", kb/1024)
	}
	return fmt.Sprintf("%dKB", kb)
}

// Registry maps figure IDs to their generator functions.
var Registry = map[string]func(Options) *Report{
	"3a":  Fig3a,
	"3b":  Fig3b,
	"4":   Fig4,
	"5":   Fig5,
	"6":   Fig6,
	"7":   Fig7,
	"8a":  Fig8a,
	"8b":  Fig8b,
	"11":  Fig11,
	"12":  Fig12,
	"13a": Fig13a,
	"13b": Fig13b,
	"14":  Fig14,
	"15a": Fig15a,
	"15b": Fig15b,
	"15c": Fig15c,
	// transient is not a paper figure: it is the telemetry plane's
	// time-resolved demonstration (slowdown vs. time, fig_transient.go).
	"transient": FigTransient,
}

// IDs returns the registry keys in presentation order.
func IDs() []string {
	return []string{"3a", "3b", "4", "5", "6", "7", "8a", "8b", "11", "12", "13a", "13b", "14", "15a", "15b", "15c", "transient"}
}

// defaultXMemWS is the 4 MB working set of X-Mem 1/2 (Table 3).
const defaultXMemWS = 4 << 20

// microParams are the scenario parameters used by the §3/§4 figures. The
// sampling schedule survives the defaults fallback: `a4bench -sampled` sets
// only Params.Sample, and dropping it here would silently run detailed.
func microParams(o Options) harness.Params {
	if o.Params.RateScale == 0 {
		p := harness.DefaultParams()
		p.Sample = o.Params.Sample
		return p
	}
	return o.Params
}

var _ = workload.HPW // referenced by sibling files
