package figures

import (
	"bytes"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// TestRunSpecsMatchesSerial pins the spec fan-out contract: reports come
// back in input order and byte-identical to running each spec serially,
// with same-prefix specs grouped so the executor's snapshot chaining kicks
// in (visible as snapshot forks, invisible in the bytes).
func TestRunSpecsMatchesSerial(t *testing.T) {
	spec := func(seed uint64, measure float64) *scenario.Spec {
		return &scenario.Spec{
			Name:       "figures-specs",
			Manager:    "a4-d",
			Params:     scenario.ParamSpec{RateScale: 8192, Seed: seed},
			WarmupSec:  1,
			MeasureSec: measure,
			Workloads: []scenario.WorkloadSpec{
				{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1}, Priority: "hpw", Touch: true},
				{Kind: "xmem", Name: "xmem", Cores: []int{2}, Priority: "lpw", WSKB: 1024, Pattern: "random"},
			},
		}
	}
	specs := []*scenario.Spec{spec(1, 2), spec(2, 1), spec(1, 1)}

	svc := service.New(service.Config{Workers: 4})
	defer svc.Close()
	got, err := RunSpecs(Options{Workers: 4}, svc, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d reports, want %d", len(got), len(specs))
	}
	for i, sp := range specs {
		rep, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}
		want, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		have, err := got[i].Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(have, want) {
			t.Errorf("spec %d: fanned-out report differs from serial run", i)
		}
	}
	// specs[2] shares specs[0]'s prefix with a shorter window, so the group
	// ran shortest-first and the longer row forked the deposited snapshot.
	if st := svc.Stats(); st.SnapshotForks < 1 {
		t.Errorf("snapshot_forks = %d, want >= 1 (prefix grouping inactive)", st.SnapshotForks)
	}

	// A failing point surfaces as an indexed error, not a partial result.
	bad := spec(3, 1)
	bad.Manager = "bogus"
	if _, err := RunSpecs(Options{Workers: 2}, svc, []*scenario.Spec{spec(1, 1), bad}); err == nil {
		t.Error("invalid spec point did not fail the fan-out")
	}
}
