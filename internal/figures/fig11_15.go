package figures

import (
	"fmt"
	"math"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

// evalSchemes returns the manager set of §7: Default, Isolate, and the
// cumulative A4 variants. Quick mode keeps the endpoints only.
func evalSchemes(quick bool) []harness.ManagerSpec {
	if quick {
		return []harness.ManagerSpec{harness.Default(), harness.Isolate(), harness.A4(core.VariantD)}
	}
	return []harness.ManagerSpec{
		harness.Default(),
		harness.Isolate(),
		harness.A4(core.VariantA),
		harness.A4(core.VariantB),
		harness.A4(core.VariantC),
		harness.A4(core.VariantD),
	}
}

// buildMicroEval constructs the §7.1 scenario: DPDK-T (HPW) + FIO (LPW) +
// the three X-Mem instances of Table 3.
func buildMicroEval(p harness.Params, blockKB int) *harness.Scenario {
	s := harness.NewScenario(p)
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddFIO("fio", []int{4, 5, 6, 7}, blockKB<<10, 32, workload.LPW)
	s.AddXMem("xmem1", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
	s.AddXMem("xmem2", []int{10, 11}, 4<<20, workload.Sequential, true, workload.LPW)
	s.AddXMem("xmem3", []int{12, 13}, 10<<20, workload.Random, false, workload.LPW)
	return s
}

// microEvalNames lists the §7.1 workloads.
var microEvalNames = []string{"dpdk-t", "fio", "xmem1", "xmem2", "xmem3"}

// Fig11 reproduces Fig. 11: X-Mem IPC (normalized to the Default model at
// the smallest packet size) and LLC hit rates across network packet sizes,
// under Default, Isolate, and A4 (storage block size 2 MB).
func Fig11(o Options) *Report {
	rep := &Report{
		ID:    "11",
		Title: "X-Mem IPC and LLC hit rate vs. packet size (Default / Isolate / A4)",
	}
	warm, meas := o.windows(18, 4)
	pkts := []int{64, 128, 256, 512, 1024, 1514}
	if o.Quick {
		pkts = []int{64, 1024}
	}
	schemes := evalSchemes(true) // Fig. 11 compares Default, Isolate, A4 only
	// Point order: scheme-major, packet-minor.
	results := runPoints(o, len(schemes)*len(pkts), func(i int) *harness.Result {
		mgr, pkt := schemes[i/len(pkts)], pkts[i%len(pkts)]
		p := microParams(o)
		p.PacketBytes = pkt
		s := buildMicroEval(p, 2048)
		s.Start(mgr)
		return s.Run(warm, meas)
	})
	// raw[scheme][xmem][pkt] = IPC
	type key struct {
		scheme, wl string
		pkt        int
	}
	rawIPC := map[key]float64{}
	rawHit := map[key]float64{}
	for i, res := range results {
		mgr, pkt := schemes[i/len(pkts)], pkts[i%len(pkts)]
		for _, wl := range []string{"xmem1", "xmem2", "xmem3"} {
			rawIPC[key{mgr.Name(), wl, pkt}] = res.W(wl).IPC
			rawHit[key{mgr.Name(), wl, pkt}] = res.W(wl).LLCHitRate
		}
	}
	// Normalize IPC to Default at the smallest packet size, per X-Mem.
	base := map[string]float64{}
	for _, wl := range []string{"xmem1", "xmem2", "xmem3"} {
		base[wl] = rawIPC[key{"default", wl, pkts[0]}]
	}
	for _, mgr := range schemes {
		for _, wl := range []string{"xmem1", "xmem2", "xmem3"} {
			ns := rep.AddSeries(fmt.Sprintf("perf-%s-%s", wl, mgr.Name()))
			hs := rep.AddSeries(fmt.Sprintf("llchit-%s-%s", wl, mgr.Name()))
			for _, pkt := range pkts {
				k := key{mgr.Name(), wl, pkt}
				v := rawIPC[k]
				if b := base[wl]; b > 0 {
					v /= b
				}
				lbl := fmt.Sprintf("%dB", pkt)
				ns.Add(lbl, float64(pkt), v)
				hs.Add(lbl, float64(pkt), rawHit[k])
			}
		}
	}
	return rep
}

// Fig12 reproduces Fig. 12: network tail latency and read throughput vs.
// storage block size under Default, Isolate, and A4 (packet size 1514 B).
func Fig12(o Options) *Report {
	rep := &Report{
		ID:    "12",
		Title: "Network latency/throughput vs. storage block size (Default / Isolate / A4)",
	}
	warm, meas := o.windows(18, 4)
	blocks := []int{4, 16, 64, 128, 512, 2048}
	if o.Quick {
		blocks = []int{16, 128, 2048}
	}
	schemes := evalSchemes(true)
	results := runPoints(o, len(schemes)*len(blocks), func(i int) *harness.Result {
		mgr, kb := schemes[i/len(blocks)], blocks[i%len(blocks)]
		p := microParams(o)
		p.PacketBytes = 1514
		s := buildMicroEval(p, kb)
		s.Start(mgr)
		return s.Run(warm, meas)
	})
	for si, mgr := range schemes {
		tl := rep.AddSeries("net-p99-us-" + mgr.Name())
		tp := rep.AddSeries("net-read-GBps-" + mgr.Name())
		for bi, kb := range blocks {
			res := results[si*len(blocks)+bi]
			lbl := kbLabel(kb)
			tl.Add(lbl, float64(kb), res.W("dpdk-t").P99LatUs)
			tp.Add(lbl, float64(kb), res.PortInGBps["nic0"])
		}
	}
	return rep
}

// realWorldMix describes one of the §7.2 co-location scenarios.
type realWorldMix struct {
	name  string
	build func(s *harness.Scenario)
	hpws  []string
	lpws  []string
}

// hpwHeavyMix is Fig. 13a: 7 HPWs + 4 LPWs.
func hpwHeavyMix() realWorldMix {
	return realWorldMix{
		name: "hpw-heavy",
		build: func(s *harness.Scenario) {
			s.AddFastclick([]int{0, 1, 2, 3}, workload.HPW)
			s.AddRedisPair(4, 5, workload.HPW, workload.HPW)
			s.AddSPEC("x264", 6, workload.HPW)
			s.AddSPEC("parest", 7, workload.HPW)
			s.AddSPEC("xalancbmk", 8, workload.HPW)
			s.AddSPEC("lbm", 9, workload.HPW)
			s.AddFFSB("ffsb-h", true, []int{10, 11, 12}, workload.LPW)
			s.AddSPEC("omnetpp", 13, workload.LPW)
			s.AddSPEC("exchange2", 14, workload.LPW)
			s.AddSPEC("bwaves", 15, workload.LPW)
		},
		hpws: []string{"fastclick", "redis-s", "redis-c", "x264", "parest", "xalancbmk", "lbm"},
		lpws: []string{"ffsb-h", "omnetpp", "exchange2", "bwaves"},
	}
}

// lpwHeavyMix is Fig. 13b: 4 HPWs + 8 LPWs.
func lpwHeavyMix() realWorldMix {
	return realWorldMix{
		name: "lpw-heavy",
		build: func(s *harness.Scenario) {
			s.AddFastclick([]int{0, 1, 2, 3}, workload.HPW)
			s.AddFFSB("ffsb-l", false, []int{4}, workload.HPW)
			s.AddSPEC("mcf", 5, workload.HPW)
			s.AddSPEC("blender", 6, workload.HPW)
			s.AddFFSB("ffsb-h", true, []int{7, 8, 9}, workload.LPW)
			s.AddRedisPair(10, 11, workload.LPW, workload.LPW)
			s.AddSPEC("x264", 12, workload.LPW)
			s.AddSPEC("parest", 13, workload.LPW)
			s.AddSPEC("fotonik3d", 14, workload.LPW)
			s.AddSPEC("lbm", 15, workload.LPW)
			s.AddSPEC("bwaves", 16, workload.LPW)
		},
		hpws: []string{"fastclick", "ffsb-l", "mcf", "blender"},
		lpws: []string{"ffsb-h", "redis-s", "redis-c", "x264", "parest", "fotonik3d", "lbm", "bwaves"},
	}
}

// runRealWorld executes one scheme over a mix and returns the result.
func runRealWorld(o Options, mix realWorldMix, mgr harness.ManagerSpec, warm, meas float64) (*harness.Scenario, *harness.Result) {
	s := harness.NewScenario(microParams(o))
	mix.build(s)
	s.Start(mgr)
	res := s.Run(warm, meas)
	return s, res
}

// perfMetric extracts the §7.2 performance metric: throughput (inverse of
// latency per request) for multi-threaded network I/O, bytes/s for storage,
// and progress (instruction) rate for compute workloads.
func perfMetric(wr *harness.WorkloadResult) float64 {
	if wr.Class == workload.ClassNetwork && wr.AvgLatUs > 0 {
		return 1e6 / wr.AvgLatUs
	}
	return wr.ProgressRate
}

// geomean returns the geometric mean of vs, ignoring non-positive entries.
func geomean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// schemeRun pairs a scheme's scenario with its measurement window result.
type schemeRun struct {
	sc  *harness.Scenario
	res *harness.Result
}

// fig13 runs one real-world scenario across all schemes (concurrently; the
// Default scheme at index 0 provides the normalization baseline).
func fig13(o Options, mix realWorldMix, id string) *Report {
	rep := &Report{
		ID:    id,
		Title: fmt.Sprintf("Real-world co-location (%s): relative performance vs. Default", mix.name),
	}
	warm, meas := o.windows(20, 5)
	all := append(append([]string{}, mix.hpws...), mix.lpws...)

	schemes := evalSchemes(false) // the variant progression is the figure's point
	runs := runPoints(o, len(schemes), func(i int) schemeRun {
		sc, res := runRealWorld(o, mix, schemes[i], warm, meas)
		return schemeRun{sc, res}
	})
	baseline := map[string]float64{}
	for _, wl := range all {
		baseline[wl] = perfMetric(runs[0].res.W(wl))
	}
	for i, mgr := range schemes {
		sc, res := runs[i].sc, runs[i].res
		ps := rep.AddSeries("perf-" + mgr.Name())
		var hpv, lpv, allv []float64
		for j, wl := range all {
			v := perfMetric(res.W(wl))
			if b := baseline[wl]; b > 0 {
				v /= b
			} else {
				v = 1
			}
			ps.Add(wl, float64(j), v)
			allv = append(allv, v)
			if j < len(mix.hpws) {
				hpv = append(hpv, v)
			} else {
				lpv = append(lpv, v)
			}
		}
		ps.Add("Avg(HP)", float64(len(all)), geomean(hpv))
		ps.Add("Avg(LP)", float64(len(all)+1), geomean(lpv))
		ps.Add("Avg(all)", float64(len(all)+2), geomean(allv))

		if mgr.Kind == harness.ManagerA4 && mgr.A4.Features == core.VariantD {
			hs := rep.AddSeries("llchit-" + mgr.Name())
			for j, wl := range all {
				hs.Add(wl, float64(j), res.W(wl).LLCHitRate)
			}
			if o.Verbose && sc.Controller != nil {
				rep.Notes = append(rep.Notes, sc.Controller.Events...)
			}
			var ants []string
			for _, w := range sc.Workloads {
				if sc.Controller != nil && sc.Controller.IsAntagonist(w.ID()) {
					ants = append(ants, w.Name())
				}
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf("a4-d antagonists: %v", ants))
		}
	}
	return rep
}

// Fig13a reproduces Fig. 13a (HPW-heavy scenario).
func Fig13a(o Options) *Report { return fig13(o, hpwHeavyMix(), "13a") }

// Fig13b reproduces Fig. 13b (LPW-heavy scenario).
func Fig13b(o Options) *Report { return fig13(o, lpwHeavyMix(), "13b") }

// Fig14 reproduces Fig. 14: latency breakdowns and system-wide throughput
// and memory bandwidth for the HPW-heavy scenario across schemes.
func Fig14(o Options) *Report {
	rep := &Report{
		ID:    "14",
		Title: "I/O latency breakdown and system-wide metrics (HPW-heavy)",
	}
	warm, meas := o.windows(20, 5)
	mix := hpwHeavyMix()

	netWait := rep.AddSeries("fastclick-wait-us")
	netDesc := rep.AddSeries("fastclick-ptr-us")
	netProc := rep.AddSeries("fastclick-proc-us")
	stRead := rep.AddSeries("ffsbh-read-ms")
	stProc := rep.AddSeries("ffsbh-regex-ms")
	ioIn := rep.AddSeries("io-read-GBps")
	ioOut := rep.AddSeries("io-write-GBps")
	memRd := rep.AddSeries("mem-read-GBps")
	memWr := rep.AddSeries("mem-write-GBps")

	schemes := evalSchemes(false)
	results := runPoints(o, len(schemes), func(i int) *harness.Result {
		_, res := runRealWorld(o, mix, schemes[i], warm, meas)
		return res
	})
	for i, mgr := range schemes {
		res := results[i]
		lbl := mgr.Name()
		x := float64(i)
		fc := res.W("fastclick")
		netWait.Add(lbl, x, fc.WaitUs)
		netDesc.Add(lbl, x, fc.DescUs)
		netProc.Add(lbl, x, fc.ProcUs)
		fh := res.W("ffsb-h")
		stRead.Add(lbl, x, fh.ReadLatMs)
		stProc.Add(lbl, x, fh.ProcLatMs)
		var in, out float64
		for _, v := range res.PortInGBps {
			in += v
		}
		for _, v := range res.PortOutGBps {
			out += v
		}
		ioIn.Add(lbl, x, in)
		ioOut.Add(lbl, x, out)
		memRd.Add(lbl, x, res.MemReadGBps)
		memWr.Add(lbl, x, res.MemWriteGBps)
	}
	return rep
}

// mixGeomeans reduces one run of the HPW-heavy mix to (HP, LP, all) geomean
// performance relative to the Default-model baseline.
func mixGeomeans(mix realWorldMix, res *harness.Result, baseline map[string]float64) (hp, lp, all float64) {
	names := append(append([]string{}, mix.hpws...), mix.lpws...)
	var hpv, lpv, allv []float64
	for j, wl := range names {
		v := perfMetric(res.W(wl))
		if b := baseline[wl]; b > 0 {
			v /= b
		} else {
			v = 1
		}
		allv = append(allv, v)
		if j < len(mix.hpws) {
			hpv = append(hpv, v)
		} else {
			lpv = append(lpv, v)
		}
	}
	return geomean(hpv), geomean(lpv), geomean(allv)
}

// fig15Sweep runs the HPW-heavy mix under the Default baseline plus one A4
// configuration per point, all on the sweep pool, and emits the three
// geomean series.
func fig15Sweep(o Options, rep *Report, warm, meas float64, labels []string, cfgs []core.Config) {
	hpS := rep.AddSeries("avg-hp")
	lpS := rep.AddSeries("avg-lp")
	allS := rep.AddSeries("avg-all")
	mix := hpwHeavyMix()
	// Point 0 is the Default-model baseline; points 1.. are the A4 configs.
	results := runPoints(o, len(cfgs)+1, func(i int) *harness.Result {
		mgr := harness.Default()
		if i > 0 {
			mgr = harness.A4With(cfgs[i-1])
		}
		_, res := runRealWorld(o, mix, mgr, warm, meas)
		return res
	})
	baseline := map[string]float64{}
	for _, wl := range append(append([]string{}, mix.hpws...), mix.lpws...) {
		baseline[wl] = perfMetric(results[0].W(wl))
	}
	for i, lbl := range labels {
		hp, lp, all := mixGeomeans(mix, results[i+1], baseline)
		hpS.Add(lbl, float64(i), hp)
		lpS.Add(lbl, float64(i), lp)
		allS.Add(lbl, float64(i), all)
	}
}

// Fig15a reproduces Fig. 15a: sensitivity to the partitioning thresholds
// T1 (HPW LLC hit) and T5 (antagonist miss).
func Fig15a(o Options) *Report {
	rep := &Report{ID: "15a", Title: "Sensitivity: partitioning thresholds T1 and T5"}
	warm, meas := o.windows(20, 5)

	type pt struct {
		label  string
		t1, t5 float64
	}
	pts := []pt{
		{"T5=95", 0.20, 0.95}, {"T5=90", 0.20, 0.90}, {"T5=80", 0.20, 0.80},
		{"T1=30", 0.30, 0.90}, {"T1=20", 0.20, 0.90}, {"T1=10", 0.10, 0.90},
	}
	if o.Quick {
		pts = []pt{{"T5=90", 0.20, 0.90}, {"T1=30", 0.30, 0.90}}
	}
	labels := make([]string, len(pts))
	cfgs := make([]core.Config, len(pts))
	for i, c := range pts {
		labels[i] = c.label
		cfg := core.DefaultConfig()
		cfg.Thresholds.HPWLLCHitThr = c.t1
		cfg.Thresholds.AntCacheMissThr = c.t5
		cfgs[i] = cfg
	}
	fig15Sweep(o, rep, warm, meas, labels, cfgs)
	return rep
}

// Fig15b reproduces Fig. 15b: sensitivity to the DMA-leak detection
// thresholds T2 (DCA miss), T3 (I/O share), T4 (LLC miss). Raising any of
// them past the workload's operating point stops FFSB-H from being detected.
func Fig15b(o Options) *Report {
	rep := &Report{ID: "15b", Title: "Sensitivity: antagonist detection thresholds T2-T4"}
	warm, meas := o.windows(20, 5)

	type pt struct {
		label      string
		t2, t3, t4 float64
	}
	// FFSB-H operates at DCA miss ≈ 1.0 and LLC miss ≈ 1.0 with a large
	// share of inbound PCIe traffic; each non-default row raises exactly one
	// threshold past that operating point so detection ceases — the
	// "critical thresholds" the paper marks in red.
	pts := []pt{
		{"40/35/40", 0.40, 0.35, 0.40}, // defaults (bold in the paper)
		{"T2-off", 1.01, 0.35, 0.40},
		{"T3-off", 0.40, 0.99, 0.40},
		{"T4-off", 0.40, 0.35, 1.01},
	}
	if o.Quick {
		pts = pts[:2]
	}
	labels := make([]string, len(pts))
	cfgs := make([]core.Config, len(pts))
	for i, c := range pts {
		labels[i] = c.label
		cfg := core.DefaultConfig()
		cfg.Thresholds.DMALkDCAMsThr = c.t2
		cfg.Thresholds.DMALkIOTpThr = c.t3
		cfg.Thresholds.DMALkLLCMsThr = c.t4
		cfgs[i] = cfg
	}
	fig15Sweep(o, rep, warm, meas, labels, cfgs)
	return rep
}

// Fig15c reproduces Fig. 15c: sensitivity to the stable interval before
// revert probes, including the oracle (no reverts).
func Fig15c(o Options) *Report {
	rep := &Report{ID: "15c", Title: "Sensitivity: stable interval vs. oracle"}
	warm, meas := o.windows(20, 10)

	type pt struct {
		label  string
		stable int
		oracle bool
	}
	pts := []pt{
		{"1s", 1, false}, {"5s", 5, false}, {"10s", 10, false}, {"20s", 20, false}, {"oracle", 0, true},
	}
	if o.Quick {
		pts = []pt{{"1s", 1, false}, {"10s", 10, false}, {"oracle", 0, true}}
	}
	labels := make([]string, len(pts))
	cfgs := make([]core.Config, len(pts))
	for i, c := range pts {
		labels[i] = c.label
		cfg := core.DefaultConfig()
		if c.oracle {
			cfg.Timing.Oracle = true
		} else {
			cfg.Timing.StableInterval = c.stable
		}
		cfgs[i] = cfg
	}
	fig15Sweep(o, rep, warm, meas, labels, cfgs)
	return rep
}
