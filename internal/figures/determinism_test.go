package figures

import (
	"testing"

	"a4sim/internal/harness"
)

// detOpts builds fast figure options at the given worker-pool degree: a
// high rate scale keeps per-point simulation cheap while still exercising
// every scenario-construction and report-assembly path.
func detOpts(workers int) Options {
	p := harness.DefaultParams()
	p.RateScale = 4096
	return Options{Params: p, Quick: true, Warmup: 1, Measure: 1, Workers: workers}
}

// TestParallelSweepDeterminism asserts the tentpole guarantee of the sweep
// runner: every figure point owns its engine and seeded RNGs, so running
// the sweep on a multi-goroutine pool produces a byte-identical Report to
// serial execution.
func TestParallelSweepDeterminism(t *testing.T) {
	for _, id := range []string{"3a", "5", "8b"} {
		fn, ok := Registry[id]
		if !ok {
			t.Fatalf("unknown figure %s", id)
		}
		serial := fn(detOpts(1)).String()
		parallel := fn(detOpts(4)).String()
		if serial != parallel {
			t.Errorf("figure %s: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", id, serial, parallel)
		}
		// A second parallel run must also be self-consistent (no hidden
		// shared state between pool runs).
		if again := fn(detOpts(4)).String(); again != parallel {
			t.Errorf("figure %s: repeated parallel runs differ", id)
		}
	}
}

// TestParallelAblationDeterminism covers the ablation registry's sweeps.
func TestParallelAblationDeterminism(t *testing.T) {
	fn := AblationRegistry["ab-burst"]
	serial := fn(detOpts(1)).String()
	parallel := fn(detOpts(3)).String()
	if serial != parallel {
		t.Errorf("ab-burst: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
