package figures

import (
	"strings"
	"testing"

	"a4sim/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Registry[id]; !ok {
			t.Errorf("figure %s missing from registry", id)
		}
	}
	if len(Registry) != len(IDs()) {
		t.Errorf("registry/IDs mismatch: %d vs %d", len(Registry), len(IDs()))
	}
}

func TestReportAccessors(t *testing.T) {
	r := &Report{ID: "x", Title: "test"}
	s := r.AddSeries("a")
	s.Add("p1", 1, 10)
	s.Add("p2", 2, 20)
	r.AddSeries("b").Add("p1", 1, 30)

	if got := r.Get("a"); got == nil || len(got.Points) != 2 {
		t.Fatalf("Get failed")
	}
	if r.Get("missing") != nil {
		t.Fatalf("missing series should be nil")
	}
	if v, ok := r.Value("a", "p2"); !ok || v != 20 {
		t.Fatalf("Value = %v %v", v, ok)
	}
	if _, ok := r.Value("a", "nope"); ok {
		t.Fatalf("missing label should not be found")
	}
	if _, ok := r.Value("nope", "p1"); ok {
		t.Fatalf("missing series should not be found")
	}
	out := r.String()
	for _, want := range []string{"== x: test ==", "p1", "p2", "10.0000", "30.0000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	// Empty report renders the header only.
	if got := (&Report{ID: "e", Title: "t"}).String(); !strings.Contains(got, "== e: t ==") {
		t.Errorf("empty report header missing")
	}
}

func TestLabelHelpers(t *testing.T) {
	if wayLabel(2, 5) != "[2:5]" {
		t.Errorf("wayLabel wrong")
	}
	if kbLabel(128) != "128KB" || kbLabel(2048) != "2MB" {
		t.Errorf("kbLabel wrong: %s %s", kbLabel(128), kbLabel(2048))
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Errorf("geomean = %v, want 2", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, -1}) != 0 {
		t.Errorf("degenerate geomean should be 0")
	}
}

func TestFig4QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	rep := Fig4(Options{Quick: true})
	on, ok1 := rep.Value("xmem-llc-miss", "on[9:10]")
	off, ok2 := rep.Value("xmem-llc-miss", "off[9:10]")
	if !ok1 || !ok2 {
		t.Fatalf("expected both DCA states in the report:\n%s", rep)
	}
	// The paper's validation: DCA off removes the directory contention.
	if !(off < on-0.1) {
		t.Errorf("directory contention should vanish with DCA off: on=%.3f off=%.3f", on, off)
	}
	p99on, _ := rep.Value("dpdk-p99-us", "on[9:10]")
	p99off, _ := rep.Value("dpdk-p99-us", "off[9:10]")
	if !(p99off > p99on) {
		t.Errorf("DCA off should raise DPDK-T p99: on=%.1f off=%.1f", p99on, p99off)
	}
}

func TestSeriesOrderPreserved(t *testing.T) {
	var s stats.Curve
	for i := 0; i < 5; i++ {
		s.Add("", float64(i), float64(i*i))
	}
	for i, p := range s.Points {
		if p.X != float64(i) {
			t.Fatalf("order lost at %d", i)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for i, tab := range []string{Table1(), Table2(), Table3()} {
		if len(tab) < 50 || !strings.Contains(tab, "Table") {
			t.Errorf("table %d too short or unlabeled:\n%s", i+1, tab)
		}
	}
	if !strings.Contains(Table1(), "T1=20%") {
		t.Errorf("Table 1 must show the paper's thresholds")
	}
	if !strings.Contains(Table2(), "x264") || !strings.Contains(Table3(), "X-Mem 3") {
		t.Errorf("tables missing workloads")
	}
}

func TestAblationRegistryComplete(t *testing.T) {
	for _, id := range AblationIDs() {
		if _, ok := AblationRegistry[id]; !ok {
			t.Errorf("ablation %s missing from registry", id)
		}
	}
}
