package figures

import (
	"fmt"
	"strings"

	"a4sim/internal/core"
	"a4sim/internal/harness"
	"a4sim/internal/workload"
)

// Tables render the paper's configuration tables from the live defaults, so
// the printed values are guaranteed to match what the code actually uses.

// Table1 renders the evaluation setup (platform + A4 thresholds).
func Table1() string {
	p := harness.DefaultParams()
	th := core.DefaultThresholds()
	tm := core.DefaultTiming()
	var b strings.Builder
	fmt.Fprintln(&b, "== Table 1: evaluation setup (simulated) ==")
	fmt.Fprintf(&b, "CPU             %d cores @2.30 GHz, %d KiB 16-way MLC per core\n",
		p.Hierarchy.NumCores, p.Hierarchy.MLC.SizeBytes()/1024)
	fmt.Fprintf(&b, "LLC             %d MiB, %d ways (%d DCA, %d inclusive), %d sets, non-inclusive\n",
		p.Hierarchy.LLC.SizeBytes()>>20, p.Hierarchy.LLC.Ways,
		p.Hierarchy.LLC.NumDCA, p.Hierarchy.LLC.NumInclusive, p.Hierarchy.LLC.Sets)
	fmt.Fprintf(&b, "Directory       %d extended ways per set, 2 shared with inclusive LLC ways\n",
		p.Hierarchy.DirWays)
	fmt.Fprintf(&b, "Network device  %.0f Gbps NIC, %d-entry rings, %d B packets\n",
		p.NICGbps, p.RingEntries, p.PacketBytes)
	fmt.Fprintf(&b, "Storage device  %.0f GB/s NVMe RAID-0, parallelism %d, per-cmd overhead %d lines\n",
		p.SSDGBps, p.SSDParallelism, p.SSDOverheadLines)
	fmt.Fprintf(&b, "Rate scale      1/%.0f (all rates divided; bandwidths rescaled on report)\n",
		p.RateScale)
	fmt.Fprintf(&b, "A4 thresholds   T1=%.0f%% T2=%.0f%% T3=%.0f%% T4=%.0f%% T5=%.0f%%\n",
		th.HPWLLCHitThr*100, th.DMALkDCAMsThr*100, th.DMALkIOTpThr*100,
		th.DMALkLLCMsThr*100, th.AntCacheMissThr*100)
	fmt.Fprintf(&b, "A4 timing       expand %ds, stable %ds, revert %ds\n",
		tm.ExpandInterval, tm.StableInterval, tm.RevertSeconds)
	return b.String()
}

// Table2 renders the real-world workload set.
func Table2() string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Table 2: real-world workloads (simulated proxies) ==")
	fmt.Fprintln(&b, "Fastclick   network I/O: touch-and-forward packet processing, 1024 B pkts, 2048-entry rings, 4 cores")
	fmt.Fprintln(&b, "FFSB-H      storage I/O + regex: 2 MB blocks, qd32, 30% writes, 3 cores")
	fmt.Fprintln(&b, "FFSB-L      storage I/O + regex: 32 KB blocks, qd32, 30% writes, 1 core")
	fmt.Fprintln(&b, "Redis-S     in-memory KV store, YCSB-A (update-heavy), zipfian, 1 core")
	fmt.Fprintln(&b, "Redis-C     YCSB client, mostly compute-bound, 1 core")
	fmt.Fprintln(&b, "SPEC CPU2017 proxies (1 core each):")
	for _, name := range []string{"x264", "parest", "xalancbmk", "omnetpp", "exchange2", "lbm", "bwaves", "fotonik3d", "mcf", "blender"} {
		p := workload.SPECProfiles[name]
		fmt.Fprintf(&b, "  %-10s ws=%3d MB  pattern=%-10s instr/op=%-3d overlap=%d\n",
			p.Name, p.WSBytes>>20, patternName(p.Pattern), p.InstrPerOp, p.Overlap)
	}
	return b.String()
}

// Table3 renders the X-Mem instances.
func Table3() string {
	var b strings.Builder
	fmt.Fprintln(&b, "== Table 3: X-Mem instances ==")
	fmt.Fprintln(&b, "X-Mem 1   4 MB   sequential   read")
	fmt.Fprintln(&b, "X-Mem 2   4 MB   sequential   write")
	fmt.Fprintln(&b, "X-Mem 3   10 MB  random       read")
	return b.String()
}

func patternName(p workload.Pattern) string {
	switch p {
	case workload.Sequential:
		return "sequential"
	case workload.Random:
		return "random"
	default:
		return "zipf"
	}
}
