package figures

import (
	"testing"
)

// TestTransientFigure pins the time-resolved figure's shape and its
// determinism across worker counts: one slowdown point per measured
// second for each manager, the controller-state timeline aligned with
// them, and byte-identical reports at any pool degree (the series plane
// rides the same determinism contract as the aggregates).
func TestTransientFigure(t *testing.T) {
	serial := FigTransient(Options{Quick: true, Workers: 1})
	parallel := FigTransient(Options{Quick: true, Workers: 4})

	const meas = 8 // Quick window
	for _, name := range []string{"slowdown-default", "slowdown-a4-d", "a4-state"} {
		c := serial.Get(name)
		if c == nil {
			t.Fatalf("missing curve %s", name)
		}
		if len(c.Points) != meas {
			t.Errorf("curve %s has %d points, want %d", name, len(c.Points), meas)
		}
	}
	for _, p := range serial.Get("slowdown-default").Points {
		if p.Y <= 0 {
			t.Errorf("slowdown at %s = %g, want > 0 (HPW progressed every second)", p.Label, p.Y)
		}
	}
	if serial.String() != parallel.String() {
		t.Errorf("transient figure differs across worker counts\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
