package figures

import "testing"

// Shape tests assert the qualitative paper results on trimmed (Quick)
// figure runs: directions and orderings, not absolute values.

func TestFig7OverlapBeatsExclude(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	rep := Fig7(Options{Quick: true})
	// O3: (n+2)-Overlap uses the same effective capacity as n-Exclude but
	// with fewer conflict misses; memory traffic must not be higher.
	mr2E, ok1 := rep.Value("mem-read-GBps", "2E")
	mr4O, ok2 := rep.Value("mem-read-GBps", "4O")
	if !ok1 || !ok2 {
		t.Fatalf("missing strategies:\n%s", rep)
	}
	if mr4O > mr2E*1.15 {
		t.Errorf("4-Overlap should not read more memory than 2-Exclude: %0.2f vs %0.2f", mr4O, mr2E)
	}
	al2E, _ := rep.Value("net-avg-us", "2E")
	al4O, _ := rep.Value("net-avg-us", "4O")
	if al4O > al2E*1.15 {
		t.Errorf("4-Overlap latency should not exceed 2-Exclude: %0.1f vs %0.1f", al4O, al2E)
	}
}

func TestFig8aSelectiveDCAOff(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	rep := Fig8a(Options{Quick: true})
	// [SSD-DCA off] must lower network latency at large blocks without
	// hurting storage throughput.
	on, _ := rep.Value("net-avg-us-dcaon", "128KB")
	off, _ := rep.Value("net-avg-us-ssdoff", "128KB")
	if !(off < on*0.85) {
		t.Errorf("SSD-DCA off should cut network latency at 128KB: on=%.1f off=%.1f", on, off)
	}
	tp, ok := rep.Value("storage-tp-ssdoff", "128KB")
	if !ok || tp < 8 {
		t.Errorf("storage throughput with SSD-DCA off looks wrong: %.2f GB/s", tp)
	}
}

func TestFig8bTrashNarrowingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	rep := Fig8b(Options{Quick: true})
	wide, _ := rep.Value("xmem-llc-miss", "[2:5]")
	trash, _ := rep.Value("xmem-llc-miss", "[2:2]")
	if !(trash < wide) {
		t.Errorf("fewer FIO ways should lower X-Mem misses: [2:5]=%.3f [2:2]=%.3f", wide, trash)
	}
	tpWide, _ := rep.Value("storage-tp", "[2:5]")
	tpTrash, _ := rep.Value("storage-tp", "[2:2]")
	if tpWide > 0 && (tpTrash < tpWide*0.85 || tpTrash > tpWide*1.15) {
		t.Errorf("FIO throughput should be way-insensitive: %.2f vs %.2f", tpWide, tpTrash)
	}
}

func TestAblationMigrationRaceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	rep := AblationMigrationRace(Options{Quick: true})
	bloat0, _ := rep.Value("xmem-miss@[5:6]", "stick=0%")
	bloat100, _ := rep.Value("xmem-miss@[5:6]", "stick=100%")
	dir0, _ := rep.Value("xmem-miss@[9:10]", "stick=0%")
	dir100, _ := rep.Value("xmem-miss@[9:10]", "stick=100%")
	if !(bloat0 > bloat100) {
		t.Errorf("bloat should dominate at stick=0: %.3f vs %.3f", bloat0, bloat100)
	}
	if !(dir100 > dir0) {
		t.Errorf("directory contention should dominate at stick=100: %.3f vs %.3f", dir100, dir0)
	}
}
