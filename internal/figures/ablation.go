package figures

import (
	"fmt"

	"a4sim/internal/harness"
	"a4sim/internal/sim"
	"a4sim/internal/workload"
)

// Ablations probe the modeling decisions documented in DESIGN.md §4: the
// migration race split, the imperfect-LRU approximation, NIC burst shaping,
// and the SSD parallelism window. Each reruns a motivation experiment under
// variants of one knob so reviewers can see which reproduced effects depend
// on which assumption.

// AblationRegistry maps ablation IDs to generators, mirroring Registry.
var AblationRegistry = map[string]func(Options) *Report{
	"ab-migration": AblationMigrationRace,
	"ab-plru":      AblationVictimRandomness,
	"ab-burst":     AblationBurstShaping,
	"ab-ssdpar":    AblationSSDParallelism,
}

// AblationIDs returns the ablation keys in presentation order.
func AblationIDs() []string {
	return []string{"ab-migration", "ab-plru", "ab-burst", "ab-ssdpar"}
}

// ablationFig3Point reruns one Fig. 3b point (DPDK-T at way[5:6], X-Mem at
// way[xlo:xlo+1]) under the given parameters.
func ablationFig3Point(p harness.Params, xlo int, warm, meas float64) *harness.Result {
	s := harness.NewScenario(p)
	d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
	s.Start(harness.Default())
	pin(s, 1, d.Cores(), 5, 6)
	pin(s, 2, x.Cores(), xlo, xlo+1)
	return s.Run(warm, meas)
}

// AblationMigrationRace sweeps MigrationStickPct: at 100 every consumed DMA
// line migrates (directory contention only), at 0 every one takes the bloat
// path (DMA bloat only). Fig. 3b needs both, which is why the default is 50.
func AblationMigrationRace(o Options) *Report {
	rep := &Report{
		ID:    "ab-migration",
		Title: "Ablation: migration race split vs. the two §3.1 contentions",
	}
	bloat := rep.AddSeries("xmem-miss@[5:6]")
	dir := rep.AddSeries("xmem-miss@[9:10]")
	warm, meas := o.windows(2, 3)
	for i, stick := range []int{0, 50, 100} {
		p := microParams(o)
		p.Hierarchy.MigrationStickPct = stick
		lbl := fmt.Sprintf("stick=%d%%", stick)
		r1 := ablationFig3Point(p, 5, warm, meas)
		r2 := ablationFig3Point(p, 9, warm, meas)
		bloat.Add(lbl, float64(i), r1.W("xmem").LLCMissRate)
		dir.Add(lbl, float64(i), r2.W("xmem").LLCMissRate)
	}
	return rep
}

// AblationVictimRandomness sweeps the QLRU-noise percentage. With perfect
// LRU (0%) the latent contention against DPDK-T collapses because X-Mem's
// hot lines are never collateral victims.
func AblationVictimRandomness(o Options) *Report {
	rep := &Report{
		ID:    "ab-plru",
		Title: "Ablation: imperfect-LRU percentage vs. latent contention",
	}
	latent := rep.AddSeries("xmem-miss@[0:1]")
	clean := rep.AddSeries("xmem-miss@[3:4]")
	warm, meas := o.windows(2, 3)
	for i, pct := range []int{0, 10, 25} {
		p := microParams(o)
		p.Hierarchy.LLCVictimRandPct = pct
		lbl := fmt.Sprintf("rand=%d%%", pct)
		r1 := ablationFig3Point(p, 0, warm, meas)
		r2 := ablationFig3Point(p, 3, warm, meas)
		latent.Add(lbl, float64(i), r1.W("xmem").LLCMissRate)
		clean.Add(lbl, float64(i), r2.W("xmem").LLCMissRate)
	}
	return rep
}

// AblationBurstShaping compares bursty vs. smooth packet arrivals. Smooth
// arrivals drain rings almost instantly, hiding the queueing latencies the
// paper measures in the hundreds of microseconds.
func AblationBurstShaping(o Options) *Report {
	rep := &Report{
		ID:    "ab-burst",
		Title: "Ablation: NIC burst shaping vs. network latency realism",
	}
	al := rep.AddSeries("net-avg-us")
	tl := rep.AddSeries("net-p99-us")
	warm, meas := o.windows(2, 3)
	cases := []struct {
		label  string
		period sim.Tick
	}{
		{"bursty", 0 /* default shaping */},
		{"smooth", -1 /* explicit smooth */},
	}
	for i, c := range cases {
		p := microParams(o)
		p.NICBurstPeriod = c.period
		s := harness.NewScenario(p)
		d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.Start(harness.Default())
		pin(s, 1, d.Cores(), 4, 5)
		res := s.Run(warm, meas)
		al.Add(c.label, float64(i), res.W("dpdk-t").AvgLatUs)
		tl.Add(c.label, float64(i), res.W("dpdk-t").P99LatUs)
	}
	return rep
}

// AblationSSDParallelism sweeps the array's internal concurrency window,
// which sets where the DMA-leak onset falls on the block-size axis (Fig. 5).
func AblationSSDParallelism(o Options) *Report {
	rep := &Report{
		ID:    "ab-ssdpar",
		Title: "Ablation: SSD parallelism window vs. DMA-leak onset",
	}
	leak128 := rep.AddSeries("leak-rate@128KB")
	leak512 := rep.AddSeries("leak-rate@512KB")
	warm, meas := o.windows(2, 3)
	run := func(p harness.Params, kb int) *harness.Result {
		s := harness.NewScenario(p)
		f := s.AddFIO("fio", []int{0, 1, 2, 3}, kb<<10, 32, workload.LPW)
		s.Start(harness.Default())
		pin(s, 1, f.Cores(), 2, 3)
		return s.Run(warm, meas)
	}
	for i, par := range []int{8, 64} {
		p := microParams(o)
		p.SSDParallelism = par
		lbl := fmt.Sprintf("par=%d", par)
		leak128.Add(lbl, float64(i), run(p, 128).W("fio").LeakRate)
		leak512.Add(lbl, float64(i), run(p, 512).W("fio").LeakRate)
	}
	return rep
}
