package figures

import (
	"fmt"

	"a4sim/internal/harness"
	"a4sim/internal/sim"
	"a4sim/internal/workload"
)

// Ablations probe the modeling decisions documented in DESIGN.md §4: the
// migration race split, the imperfect-LRU approximation, NIC burst shaping,
// and the SSD parallelism window. Each reruns a motivation experiment under
// variants of one knob so reviewers can see which reproduced effects depend
// on which assumption. Like the figures, every ablation point is an
// independent scenario and runs on the sweep worker pool.

// AblationRegistry maps ablation IDs to generators, mirroring Registry.
var AblationRegistry = map[string]func(Options) *Report{
	"ab-migration": AblationMigrationRace,
	"ab-plru":      AblationVictimRandomness,
	"ab-burst":     AblationBurstShaping,
	"ab-ssdpar":    AblationSSDParallelism,
}

// AblationIDs returns the ablation keys in presentation order.
func AblationIDs() []string {
	return []string{"ab-migration", "ab-plru", "ab-burst", "ab-ssdpar"}
}

// ablationFig3Point reruns one Fig. 3b point (DPDK-T at way[5:6], X-Mem at
// way[xlo:xlo+1]) under the given parameters.
func ablationFig3Point(p harness.Params, xlo int, warm, meas float64) *harness.Result {
	s := harness.NewScenario(p)
	d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	x := s.AddXMem("xmem", []int{4, 5}, defaultXMemWS, workload.Sequential, false, workload.HPW)
	s.Start(harness.Default())
	pin(s, 1, d.Cores(), 5, 6)
	pin(s, 2, x.Cores(), xlo, xlo+1)
	return s.Run(warm, meas)
}

// ablationFig3Sweep runs the (knob value, X-Mem position) grid used by the
// migration and PLRU ablations: for each knob index the scenario params are
// customized by prep, and both probe positions are measured.
func ablationFig3Sweep(o Options, n int, prep func(i int) harness.Params, positions [2]int, warm, meas float64) [][2]*harness.Result {
	out := make([][2]*harness.Result, n)
	forEachPoint(o, n*2, func(j int) {
		i, side := j/2, j%2
		out[i][side] = ablationFig3Point(prep(i), positions[side], warm, meas)
	})
	return out
}

// AblationMigrationRace sweeps MigrationStickPct: at 100 every consumed DMA
// line migrates (directory contention only), at 0 every one takes the bloat
// path (DMA bloat only). Fig. 3b needs both, which is why the default is 50.
func AblationMigrationRace(o Options) *Report {
	rep := &Report{
		ID:    "ab-migration",
		Title: "Ablation: migration race split vs. the two §3.1 contentions",
	}
	bloat := rep.AddSeries("xmem-miss@[5:6]")
	dir := rep.AddSeries("xmem-miss@[9:10]")
	warm, meas := o.windows(2, 3)
	sticks := []int{0, 50, 100}
	results := ablationFig3Sweep(o, len(sticks), func(i int) harness.Params {
		p := microParams(o)
		p.Hierarchy.MigrationStickPct = sticks[i]
		return p
	}, [2]int{5, 9}, warm, meas)
	for i, stick := range sticks {
		lbl := fmt.Sprintf("stick=%d%%", stick)
		bloat.Add(lbl, float64(i), results[i][0].W("xmem").LLCMissRate)
		dir.Add(lbl, float64(i), results[i][1].W("xmem").LLCMissRate)
	}
	return rep
}

// AblationVictimRandomness sweeps the QLRU-noise percentage. With perfect
// LRU (0%) the latent contention against DPDK-T collapses because X-Mem's
// hot lines are never collateral victims.
func AblationVictimRandomness(o Options) *Report {
	rep := &Report{
		ID:    "ab-plru",
		Title: "Ablation: imperfect-LRU percentage vs. latent contention",
	}
	latent := rep.AddSeries("xmem-miss@[0:1]")
	clean := rep.AddSeries("xmem-miss@[3:4]")
	warm, meas := o.windows(2, 3)
	pcts := []int{0, 10, 25}
	results := ablationFig3Sweep(o, len(pcts), func(i int) harness.Params {
		p := microParams(o)
		p.Hierarchy.LLCVictimRandPct = pcts[i]
		return p
	}, [2]int{0, 3}, warm, meas)
	for i, pct := range pcts {
		lbl := fmt.Sprintf("rand=%d%%", pct)
		latent.Add(lbl, float64(i), results[i][0].W("xmem").LLCMissRate)
		clean.Add(lbl, float64(i), results[i][1].W("xmem").LLCMissRate)
	}
	return rep
}

// AblationBurstShaping compares bursty vs. smooth packet arrivals. Smooth
// arrivals drain rings almost instantly, hiding the queueing latencies the
// paper measures in the hundreds of microseconds.
func AblationBurstShaping(o Options) *Report {
	rep := &Report{
		ID:    "ab-burst",
		Title: "Ablation: NIC burst shaping vs. network latency realism",
	}
	al := rep.AddSeries("net-avg-us")
	tl := rep.AddSeries("net-p99-us")
	warm, meas := o.windows(2, 3)
	cases := []struct {
		label  string
		period sim.Tick
	}{
		{"bursty", 0 /* default shaping */},
		{"smooth", -1 /* explicit smooth */},
	}
	results := runPoints(o, len(cases), func(i int) *harness.Result {
		p := microParams(o)
		p.NICBurstPeriod = cases[i].period
		s := harness.NewScenario(p)
		d := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
		s.Start(harness.Default())
		pin(s, 1, d.Cores(), 4, 5)
		return s.Run(warm, meas)
	})
	for i, c := range cases {
		al.Add(c.label, float64(i), results[i].W("dpdk-t").AvgLatUs)
		tl.Add(c.label, float64(i), results[i].W("dpdk-t").P99LatUs)
	}
	return rep
}

// AblationSSDParallelism sweeps the array's internal concurrency window,
// which sets where the DMA-leak onset falls on the block-size axis (Fig. 5).
func AblationSSDParallelism(o Options) *Report {
	rep := &Report{
		ID:    "ab-ssdpar",
		Title: "Ablation: SSD parallelism window vs. DMA-leak onset",
	}
	leak128 := rep.AddSeries("leak-rate@128KB")
	leak512 := rep.AddSeries("leak-rate@512KB")
	warm, meas := o.windows(2, 3)
	pars := []int{8, 64}
	kbs := []int{128, 512}
	// Point order: (par, kb) grid, kb-minor.
	results := runPoints(o, len(pars)*len(kbs), func(i int) *harness.Result {
		p := microParams(o)
		p.SSDParallelism = pars[i/len(kbs)]
		s := harness.NewScenario(p)
		f := s.AddFIO("fio", []int{0, 1, 2, 3}, kbs[i%len(kbs)]<<10, 32, workload.LPW)
		s.Start(harness.Default())
		pin(s, 1, f.Cores(), 2, 3)
		return s.Run(warm, meas)
	})
	for i, par := range pars {
		lbl := fmt.Sprintf("par=%d", par)
		leak128.Add(lbl, float64(i), results[i*len(kbs)].W("fio").LeakRate)
		leak512.Add(lbl, float64(i), results[i*len(kbs)+1].W("fio").LeakRate)
	}
	return rep
}
