package workload

import (
	"fmt"

	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/nic"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/ssd"
)

// SPECProfile captures the memory behaviour of one SPEC CPU2017 benchmark
// as characterized by Singh & Awasthi (ICPE'19) and the paper's own
// discussion: working set, locality, and compute intensity.
type SPECProfile struct {
	Name       string
	WSBytes    int64
	Pattern    Pattern
	Skew       float64
	WriteFrac  float64
	InstrPerOp int
	CPIBase    float64
	Overlap    int
}

// SPECProfiles is the benchmark set used in Fig. 13. Streaming,
// low-locality benchmarks (lbm, bwaves, fotonik3d, mcf) are the paper's
// non-I/O antagonists; x264 saturates at small cache; parest and xalancbmk
// benefit steadily from capacity.
var SPECProfiles = map[string]SPECProfile{
	"x264":      {Name: "x264", WSBytes: 2 << 20, Pattern: Zipf, Skew: 0.8, WriteFrac: 0.3, InstrPerOp: 30, CPIBase: 0.45, Overlap: 2},
	"parest":    {Name: "parest", WSBytes: 12 << 20, Pattern: Zipf, Skew: 0.40, WriteFrac: 0.2, InstrPerOp: 12, CPIBase: 0.5, Overlap: 1},
	"xalancbmk": {Name: "xalancbmk", WSBytes: 8 << 20, Pattern: Zipf, Skew: 0.45, WriteFrac: 0.15, InstrPerOp: 10, CPIBase: 0.5, Overlap: 1},
	"omnetpp":   {Name: "omnetpp", WSBytes: 24 << 20, Pattern: Zipf, Skew: 0.60, WriteFrac: 0.25, InstrPerOp: 8, CPIBase: 0.55, Overlap: 1},
	"exchange2": {Name: "exchange2", WSBytes: 512 << 10, Pattern: Zipf, Skew: 0.9, WriteFrac: 0.3, InstrPerOp: 60, CPIBase: 0.4, Overlap: 1},
	"lbm":       {Name: "lbm", WSBytes: 128 << 20, Pattern: Sequential, WriteFrac: 0.5, InstrPerOp: 4, CPIBase: 0.5, Overlap: 4},
	"bwaves":    {Name: "bwaves", WSBytes: 96 << 20, Pattern: Sequential, WriteFrac: 0.3, InstrPerOp: 5, CPIBase: 0.5, Overlap: 4},
	"fotonik3d": {Name: "fotonik3d", WSBytes: 80 << 20, Pattern: Sequential, WriteFrac: 0.4, InstrPerOp: 4, CPIBase: 0.5, Overlap: 4},
	"mcf":       {Name: "mcf", WSBytes: 64 << 20, Pattern: Random, WriteFrac: 0.2, InstrPerOp: 6, CPIBase: 0.6, Overlap: 1},
	"blender":   {Name: "blender", WSBytes: 6 << 20, Pattern: Zipf, Skew: 0.7, WriteFrac: 0.3, InstrPerOp: 25, CPIBase: 0.45, Overlap: 2},
}

// NewSPEC builds a single-core SPEC CPU2017 proxy by benchmark name.
func NewSPEC(bench string, core int, h *hierarchy.Hierarchy, alloc *mem.AddressSpace, rng *sim.RNG, rateScale float64) (*Synthetic, error) {
	p, ok := SPECProfiles[bench]
	if !ok {
		return nil, fmt.Errorf("workload: unknown SPEC benchmark %q", bench)
	}
	return NewSynthetic(SyntheticConfig{
		Name:       p.Name,
		Cores:      []int{core},
		WSBytes:    p.WSBytes,
		Pattern:    p.Pattern,
		Skew:       p.Skew,
		WriteFrac:  p.WriteFrac,
		InstrPerOp: p.InstrPerOp,
		CPIBase:    p.CPIBase,
		Overlap:    p.Overlap,
		RateScale:  rateScale,
	}, h, alloc, rng), nil
}

// NewRedisServer builds the Redis-S proxy: a single-core persistent KV store
// under YCSB workload A (update-heavy, zipfian keys) over a tens-of-MB
// dataset whose hot set is LLC-cacheable.
func NewRedisServer(core int, h *hierarchy.Hierarchy, alloc *mem.AddressSpace, rng *sim.RNG, rateScale float64) *Synthetic {
	return NewSynthetic(SyntheticConfig{
		Name:       "redis-s",
		Cores:      []int{core},
		WSBytes:    32 << 20,
		Pattern:    Zipf,
		Skew:       0.85,
		WriteFrac:  0.5, // YCSB-A: 50% updates
		InstrPerOp: 20,
		CPIBase:    0.5,
		Overlap:    1,
		RateScale:  rateScale,
	}, h, alloc, rng)
}

// NewRedisClient builds the Redis-C proxy: the YCSB client, a mostly
// compute-bound request generator with a small working set.
func NewRedisClient(core int, h *hierarchy.Hierarchy, alloc *mem.AddressSpace, rng *sim.RNG, rateScale float64) *Synthetic {
	return NewSynthetic(SyntheticConfig{
		Name:       "redis-c",
		Cores:      []int{core},
		WSBytes:    2 << 20,
		Pattern:    Zipf,
		Skew:       0.9,
		WriteFrac:  0.2,
		InstrPerOp: 40,
		CPIBase:    0.45,
		Overlap:    1,
		RateScale:  rateScale,
	}, h, alloc, rng)
}

// NewFastclick builds the Fastclick proxy: DPDK-style touch-and-forward
// packet processing over one ring per core (Table 2: 1024 B packets,
// 2048-entry rings, 4 cores).
func NewFastclick(cores []int, h *hierarchy.Hierarchy, n *nic.NIC, id pcm.WorkloadID, rateScale float64) *DPDK {
	return NewDPDK(DPDKConfig{
		Name:        "fastclick",
		Cores:       cores,
		Touch:       true,
		Forward:     true,
		InstrPerPkt: 800,
		CPIBase:     0.5,
		Overlap:     4,
		RateScale:   rateScale,
	}, h, n, id)
}

// NewFFSB builds an FFSB proxy on the FIO engine: heavy (2 MB blocks,
// 3 cores) or light (32 KB blocks, 1 core), with a mixed read/write command
// stream and regex processing per Table 2.
func NewFFSB(name string, heavy bool, cores []int, h *hierarchy.Hierarchy, dev *ssd.SSD,
	id pcm.WorkloadID, alloc *mem.AddressSpace, rng *sim.RNG, rateScale float64) *FIO {
	block := 32 << 10
	if heavy {
		block = 2 << 20
	}
	return NewFIO(FIOConfig{
		Name:         name,
		Cores:        cores,
		BlockBytes:   block,
		QueueDepth:   32,
		WriteFrac:    0.3,
		InstrPerLine: 6,
		CPIBase:      0.5,
		Overlap:      8,
		RateScale:    rateScale,
	}, h, dev, id, alloc, rng)
}
