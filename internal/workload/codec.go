package workload

import (
	"a4sim/internal/codec"
	"a4sim/internal/ssd"
)

// encodeState appends a stream's dynamic state: the RNG position and the
// sequential cursor. Working-set geometry is structural.
func (s *Stream) encodeState(w *codec.Writer) {
	w.U64(s.rng.State())
	w.U64(s.pos)
}

func (s *Stream) decodeState(r *codec.Reader) {
	s.rng.SetState(r.U64())
	pos := r.U64()
	if r.Err() != nil {
		return
	}
	if pos >= s.Lines {
		r.Failf("workload: snapshot stream cursor %d exceeds %d lines", pos, s.Lines)
		return
	}
	s.pos = pos
}

// encodeState appends the shared bookkeeping's dynamic state: the progress
// counter. Everything else in Base is structural.
func (b *Base) encodeState(w *codec.Writer) { w.I64(b.progress) }

func (b *Base) decodeState(r *codec.Reader) { b.progress = r.I64() }

// EncodeState appends the workload's dynamic state. Stream aliasing is
// encoded explicitly — per-slot indices into a unique-stream table — so a
// SharedWS workload round-trips with its sharing intact, mirroring Fork.
func (s *Synthetic) EncodeState(w *codec.Writer) {
	s.Base.encodeState(w)
	w.Int(s.rr)
	w.F64(s.instAcc)
	w.I64(s.obsAcc)
	w.I64(s.obsCyc)
	w.F64(s.ffAcc)
	w.U64(s.rng.State())
	unique, slotIdx := s.streamTable()
	w.Int(len(slotIdx))
	for _, i := range slotIdx {
		w.Int(i)
	}
	w.Int(len(unique))
	for _, st := range unique {
		st.encodeState(w)
	}
}

// streamTable returns the distinct streams in first-appearance order and
// each slot's index into that table.
func (s *Synthetic) streamTable() (unique []*Stream, slotIdx []int) {
	index := make(map[*Stream]int, len(s.streams))
	slotIdx = make([]int, len(s.streams))
	for i, st := range s.streams {
		idx, ok := index[st]
		if !ok {
			idx = len(unique)
			index[st] = idx
			unique = append(unique, st)
		}
		slotIdx[i] = idx
	}
	return unique, slotIdx
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose slot count or aliasing pattern disagrees with the receiver's (the
// pattern is fixed by SharedWS at construction).
func (s *Synthetic) DecodeState(r *codec.Reader) {
	s.Base.decodeState(r)
	rr := r.Int()
	instAcc := r.F64()
	obsAcc := r.I64()
	obsCyc := r.I64()
	ffAcc := r.F64()
	rngState := r.U64()
	nSlots := r.Int()
	if r.Err() != nil {
		return
	}
	unique, slotIdx := s.streamTable()
	if nSlots != len(slotIdx) {
		r.Failf("workload: snapshot has %d stream slots, workload has %d", nSlots, len(slotIdx))
		return
	}
	for i := 0; i < nSlots; i++ {
		if idx := r.Int(); r.Err() == nil && idx != slotIdx[i] {
			r.Failf("workload: snapshot stream aliasing differs at slot %d", i)
		}
	}
	nUnique := r.Int()
	if r.Err() != nil {
		return
	}
	if nUnique != len(unique) {
		r.Failf("workload: snapshot has %d distinct streams, workload has %d", nUnique, len(unique))
		return
	}
	for _, st := range unique {
		st.decodeState(r)
	}
	if r.Err() != nil {
		return
	}
	s.rr = rr
	s.instAcc = instAcc
	s.obsAcc = obsAcc
	s.obsCyc = obsCyc
	s.ffAcc = ffAcc
	s.rng.SetState(rngState)
}

// EncodeState appends the workload's dynamic state: poll cursor,
// instruction accumulator, and the latency reservoirs (including their
// sampling RNG streams).
func (d *DPDK) EncodeState(w *codec.Writer) {
	d.Base.encodeState(w)
	w.Int(d.rr)
	w.F64(d.instAcc)
	d.lat.EncodeState(w)
	d.waitLat.EncodeState(w)
	d.descLat.EncodeState(w)
	d.procLat.EncodeState(w)
}

// DecodeState restores state written by EncodeState.
func (d *DPDK) DecodeState(r *codec.Reader) {
	d.Base.decodeState(r)
	d.rr = r.Int()
	d.instAcc = r.F64()
	d.lat.DecodeState(r)
	d.waitLat.DecodeState(r)
	d.descLat.DecodeState(r)
	d.procLat.DecodeState(r)
}

// EncodeState appends the workload's dynamic state: the submission RNG,
// latency reservoirs, poll cursor, startup flag, instruction accumulator,
// and the per-thread processing state (queued completions and the command
// being scanned). Buffer pools are structural.
func (f *FIO) EncodeState(w *codec.Writer) {
	f.Base.encodeState(w)
	w.U64(f.rng.State())
	f.readLat.EncodeState(w)
	f.procLat.EncodeState(w)
	w.Int(f.rr)
	w.Bool(f.started)
	w.F64(f.instAcc)
	w.Int(len(f.cores))
	for t := range f.cores {
		w.Int(f.curLine[t])
		w.F64(f.curStarted[t])
		w.Int(len(f.completed[t]))
		for _, c := range f.completed[t] {
			c.EncodeState(w)
		}
		w.Bool(f.curCmd[t] != nil)
		if f.curCmd[t] != nil {
			f.curCmd[t].EncodeState(w)
		}
	}
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose thread count disagrees with the receiver's.
func (f *FIO) DecodeState(r *codec.Reader) {
	f.Base.decodeState(r)
	rngState := r.U64()
	f.readLat.DecodeState(r)
	f.procLat.DecodeState(r)
	rr := r.Int()
	started := r.Bool()
	instAcc := r.F64()
	nThreads := r.Int()
	if r.Err() != nil {
		return
	}
	if nThreads != len(f.cores) {
		r.Failf("workload: snapshot has %d FIO threads, workload has %d", nThreads, len(f.cores))
		return
	}
	curLine := make([]int, nThreads)
	curStarted := make([]float64, nThreads)
	completed := make([][]*ssd.Command, nThreads)
	curCmd := make([]*ssd.Command, nThreads)
	for t := 0; t < nThreads; t++ {
		curLine[t] = r.Int()
		curStarted[t] = r.F64()
		nq := r.Int()
		if r.Err() != nil {
			return
		}
		if nq < 0 || nq > r.Remaining() {
			r.Failf("workload: snapshot claims %d queued completions", nq)
			return
		}
		for i := 0; i < nq; i++ {
			c := ssd.DecodeCommand(r)
			if r.Err() != nil {
				return
			}
			completed[t] = append(completed[t], c)
		}
		if r.Bool() {
			curCmd[t] = ssd.DecodeCommand(r)
		}
		if r.Err() != nil {
			return
		}
	}
	f.rng.SetState(rngState)
	f.rr = rr
	f.started = started
	f.instAcc = instAcc
	f.curLine = curLine
	f.curStarted = curStarted
	f.completed = completed
	f.curCmd = curCmd
}
