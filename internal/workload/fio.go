package workload

import (
	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/ssd"
	"a4sim/internal/stats"
)

// FIOConfig describes an asynchronous storage workload: the paper's modified
// FIO (libaio threads doing O_DIRECT random reads plus regex matching over
// each completed block), and via WriteFrac also the FFSB profiles.
type FIOConfig struct {
	Name       string
	Cores      []int // one libaio thread per core
	BlockBytes int
	QueueDepth int // per thread
	// WriteFrac is the fraction of commands that are writes (FFSB).
	WriteFrac float64
	// Buffered selects the buffered-I/O ingress path of Fig. 2 (blue): the
	// device fills a kernel buffer and the CPU copies each line into a
	// separate user buffer, doubling the CPU-side traffic. The default is
	// Direct I/O (O_DIRECT), where the DMA target is the user buffer.
	Buffered bool
	// InstrPerLine is the regex-matching instruction count per 64 B line.
	InstrPerLine int
	CPIBase      float64
	Overlap      int
	PollCycles   int
	RateScale    float64
}

// FIO is the storage consumer bound to one SSD array.
type FIO struct {
	Base
	cfg FIOConfig
	dev *ssd.SSD
	rng *sim.RNG

	// Per-thread buffer pools: slots[t][q] is the base line address of the
	// q-th DMA-target buffer of thread t (the user buffer under Direct I/O,
	// the kernel buffer under buffered I/O).
	slots [][]uint64
	// userSlots mirror slots with the user-space destination buffers when
	// the buffered path is enabled.
	userSlots [][]uint64
	// completed[t] queues blocks awaiting regex processing.
	completed [][]*ssd.Command

	readLat *stats.Reservoir // submit-to-complete, ticks
	procLat *stats.Reservoir // regex time, ticks

	rr         int
	started    bool
	instAcc    float64
	curCmd     []*ssd.Command // per-thread command being processed
	curLine    []int
	curStarted []float64
}

// NewFIO builds the workload and its buffer pools.
func NewFIO(cfg FIOConfig, h *hierarchy.Hierarchy, dev *ssd.SSD, id pcm.WorkloadID,
	alloc *mem.AddressSpace, rng *sim.RNG) *FIO {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.Overlap <= 0 {
		// Storage block scans stream well; deep MLP hides most of the miss
		// latency, keeping consumption faster than the array (Fig. 5).
		cfg.Overlap = 8
	}
	if cfg.CPIBase <= 0 {
		cfg.CPIBase = 0.5
	}
	if cfg.PollCycles <= 0 {
		cfg.PollCycles = 200
	}
	f := &FIO{
		Base:    NewBase(cfg.Name, id, cfg.Cores, ClassStorage, devPort(dev), h, cfg.RateScale),
		cfg:     cfg,
		dev:     dev,
		rng:     rng,
		readLat: stats.NewReservoir(4096),
		procLat: stats.NewReservoir(4096),
	}
	blockLines := (cfg.BlockBytes + mem.LineBytes - 1) / mem.LineBytes
	for range cfg.Cores {
		pool := make([]uint64, cfg.QueueDepth)
		for q := range pool {
			pool[q] = alloc.AllocLines(int64(blockLines))
		}
		f.slots = append(f.slots, pool)
		f.completed = append(f.completed, nil)
		if cfg.Buffered {
			user := make([]uint64, cfg.QueueDepth)
			for q := range user {
				user[q] = alloc.AllocLines(int64(blockLines))
			}
			f.userSlots = append(f.userSlots, user)
		}
	}
	f.curCmd = make([]*ssd.Command, len(cfg.Cores))
	f.curLine = make([]int, len(cfg.Cores))
	f.curStarted = make([]float64, len(cfg.Cores))
	return f
}

// Fork returns an independent deep copy of the workload wired to the given
// (already forked) hierarchy and SSD array. Buffer pool addresses are shared
// immutable data and copied as values; queued completions and the per-thread
// in-processing commands are cloned, since commands drained from the array
// are owned by this workload.
func (f *FIO) Fork(h *hierarchy.Hierarchy, dev *ssd.SSD) *FIO {
	n := &FIO{
		Base:       f.Base.fork(h),
		cfg:        f.cfg,
		dev:        dev,
		rng:        f.rng.Clone(),
		readLat:    f.readLat.Clone(),
		procLat:    f.procLat.Clone(),
		rr:         f.rr,
		started:    f.started,
		instAcc:    f.instAcc,
		curLine:    append([]int(nil), f.curLine...),
		curStarted: append([]float64(nil), f.curStarted...),
	}
	n.cfg.Cores = append([]int(nil), f.cfg.Cores...)
	n.slots = make([][]uint64, len(f.slots))
	for t, pool := range f.slots {
		n.slots[t] = append([]uint64(nil), pool...)
	}
	if f.userSlots != nil {
		n.userSlots = make([][]uint64, len(f.userSlots))
		for t, pool := range f.userSlots {
			n.userSlots[t] = append([]uint64(nil), pool...)
		}
	}
	n.completed = make([][]*ssd.Command, len(f.completed))
	for t, q := range f.completed {
		if q == nil {
			continue
		}
		n.completed[t] = make([]*ssd.Command, len(q))
		for i, c := range q {
			n.completed[t][i] = c.Clone()
		}
	}
	n.curCmd = make([]*ssd.Command, len(f.curCmd))
	for t, c := range f.curCmd {
		if c != nil {
			n.curCmd[t] = c.Clone()
		}
	}
	return n
}

func devPort(d *ssd.SSD) int {
	// The SSD's port is part of its config; expose through a tiny accessor.
	return d.Port()
}

// BlockLines returns the block size in lines.
func (f *FIO) BlockLines() int {
	return (f.cfg.BlockBytes + mem.LineBytes - 1) / mem.LineBytes
}

// ReadLatency returns the device-read latency reservoir (ticks).
func (f *FIO) ReadLatency() *stats.Reservoir { return f.readLat }

// ProcLatency returns the regex processing latency reservoir (ticks).
func (f *FIO) ProcLatency() *stats.Reservoir { return f.procLat }

// ResetLatency clears the latency reservoirs.
func (f *FIO) ResetLatency() {
	f.readLat.Reset()
	f.procLat.Reset()
}

// FastForward implements sim.FastForwarder with the freeze-and-shift model:
// the I/O pipeline (queued completions and the block each thread is
// mid-regex over) is frozen in place, and every workload-owned timestamp
// moves with the clock so latencies booked when processing resumes exclude
// the skipped interval. Commands still inside the device are shifted by the
// SSD's own FastForward. No RNG draws are skipped: submissions only happen
// on completion, and a frozen pipeline completes nothing.
func (f *FIO) FastForward(now, dt sim.Tick) {
	d := float64(dt)
	for t := range f.cores {
		if f.curCmd[t] != nil {
			f.curCmd[t].Submit += d
			f.curCmd[t].Complete += d
			f.curStarted[t] += d
		}
		for _, c := range f.completed[t] {
			c.Submit += d
			c.Complete += d
		}
	}
}

// submit issues a fresh command for thread t, slot q.
func (f *FIO) submit(t, q int, now float64) {
	op := ssd.OpRead
	if f.cfg.WriteFrac > 0 && f.rng.Float64() < f.cfg.WriteFrac {
		op = ssd.OpWrite
	}
	f.dev.Submit(&ssd.Command{
		Op:     op,
		Buf:    f.slots[t][q],
		Lines:  f.BlockLines(),
		WL:     f.id,
		Cookie: t*f.cfg.QueueDepth + q,
		Submit: now,
	})
}

// Step implements sim.Actor.
func (f *FIO) Step(now sim.Tick, budget int) int {
	if !f.started {
		f.started = true
		for t := range f.cores {
			for q := 0; q < f.cfg.QueueDepth; q++ {
				f.submit(t, q, float64(now))
			}
		}
	}
	// Collect this workload's completions into per-thread queues.
	for _, c := range f.dev.DrainFor(f.id) {
		t := c.Cookie / f.cfg.QueueDepth
		f.readLat.Add(c.Complete - c.Submit)
		f.completed[t] = append(f.completed[t], c)
	}

	spent := 0
	var inst int64
	idleThreads := 0
	for spent < budget {
		t := f.rr % len(f.cores)
		f.rr++
		core := f.cores[t]

		if f.curCmd[t] == nil {
			if len(f.completed[t]) == 0 {
				spent += f.cfg.PollCycles
				idleThreads++
				if idleThreads >= len(f.cores) {
					spent = budget
					break
				}
				continue
			}
			f.curCmd[t] = f.completed[t][0]
			f.completed[t] = f.completed[t][1:]
			f.curLine[t] = 0
			f.curStarted[t] = float64(now)
		}
		idleThreads = 0

		// Process a batch of lines of the current block (regex matching).
		c := f.curCmd[t]
		batch := 16
		for i := 0; i < batch && f.curLine[t] < c.Lines; i++ {
			addr := c.Buf + uint64(f.curLine[t])
			var res hierarchy.Result
			if c.Op == ssd.OpWrite {
				// FFSB write path: the CPU generates the data.
				res = f.h.CPUWrite(core, f.id, addr, true)
			} else {
				res = f.h.CPURead(core, f.id, addr, true)
			}
			stall := res.Cycles / f.cfg.Overlap
			if stall < 1 {
				stall = 1
			}
			if f.cfg.Buffered && c.Op == ssd.OpRead {
				// Kernel-to-user copy: one store into the user buffer.
				q := c.Cookie % f.cfg.QueueDepth
				ures := f.h.CPUWrite(core, f.id, f.userSlots[t][q]+uint64(f.curLine[t]), false)
				us := ures.Cycles / f.cfg.Overlap
				if us < 1 {
					us = 1
				}
				stall += us
				inst++
			}
			f.instAcc += float64(f.cfg.InstrPerLine) * f.cfg.CPIBase
			work := int(f.instAcc)
			f.instAcc -= float64(work)
			spent += stall + work
			inst += int64(f.cfg.InstrPerLine) + 1
			f.curLine[t]++
		}
		if f.curLine[t] >= c.Lines {
			f.procLat.Add(float64(now) - f.curStarted[t])
			f.progress += int64(c.Lines) * mem.LineBytes
			q := c.Cookie % f.cfg.QueueDepth
			f.submit(t, q, float64(now))
			f.curCmd[t] = nil
		}
	}
	f.charge(inst, int64(spent))
	return spent
}
