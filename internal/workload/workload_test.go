package workload

import (
	"testing"
	"testing/quick"

	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/nic"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/ssd"
)

func newEnv(t *testing.T) (*hierarchy.Hierarchy, *pcm.Fabric, *mem.AddressSpace, *sim.RNG) {
	t.Helper()
	f := pcm.NewFabric(1)
	h := hierarchy.New(hierarchy.TestConfig(), f)
	return h, f, mem.NewAddressSpace(), sim.NewRNG(7)
}

func TestStreamPatternsStayInRange(t *testing.T) {
	_, _, alloc, rng := newEnv(t)
	patterns := []Pattern{Sequential, Random, Zipf}
	for _, p := range patterns {
		s := NewStream(alloc, 64*100, p, 0.8, rng.Fork())
		for i := 0; i < 1000; i++ {
			a := s.Next()
			if a < s.Base || a >= s.Base+s.Lines {
				t.Fatalf("pattern %d escaped working set: %d not in [%d,%d)", p, a, s.Base, s.Base+s.Lines)
			}
		}
	}
}

func TestStreamSequentialWraps(t *testing.T) {
	_, _, alloc, rng := newEnv(t)
	s := NewStream(alloc, 64*4, Sequential, 0, rng)
	want := []uint64{0, 1, 2, 3, 0, 1}
	for i, off := range want {
		if got := s.Next(); got != s.Base+off {
			t.Fatalf("step %d: got %d, want base+%d", i, got, off)
		}
	}
}

func TestStreamPropertyQuick(t *testing.T) {
	_, _, alloc, rng := newEnv(t)
	f := func(ws uint16, pat uint8) bool {
		wsB := int64(ws%2000+1) * 64
		s := NewStream(alloc, wsB, Pattern(pat%3), 0.7, rng.Fork())
		for i := 0; i < 50; i++ {
			a := s.Next()
			if a < s.Base || a >= s.Base+s.Lines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSyntheticChargesCounters(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	w := NewSynthetic(SyntheticConfig{
		Name: "syn", Cores: []int{0, 1}, WSBytes: 64 * 256,
		Pattern: Sequential, InstrPerOp: 10, RateScale: 1,
	}, h, alloc, rng)
	if w.Class() != ClassCompute || w.Port() != -1 {
		t.Errorf("identity wrong")
	}
	spent := w.Step(0, 10000)
	if spent < 10000 {
		t.Fatalf("budget underused: %d", spent)
	}
	c := f.C(w.ID())
	if c.Instructions.Total() == 0 || c.Cycles.Total() == 0 {
		t.Fatalf("counters not charged")
	}
	if w.Progress() == 0 {
		t.Fatalf("no progress")
	}
	if w.OpsPerSecond(0) != 2*CyclesPerSecond {
		t.Errorf("cycle rate wrong: %v", w.OpsPerSecond(0))
	}
}

func TestSyntheticSharedWS(t *testing.T) {
	h, _, alloc, rng := newEnv(t)
	w := NewSynthetic(SyntheticConfig{
		Name: "shared", Cores: []int{0, 1}, WSBytes: 64 * 64,
		Pattern: Sequential, SharedWS: true, RateScale: 1,
	}, h, alloc, rng)
	w.Step(0, 5000)
	// With a shared stream both cores walk one region; nothing to assert
	// beyond it not crashing and making progress.
	if w.Progress() == 0 {
		t.Fatalf("no progress on shared WS")
	}
}

func TestXMemPresets(t *testing.T) {
	h, _, alloc, rng := newEnv(t)
	r := NewXMem(XMemConfig{Name: "xm", Cores: []int{0}, WSBytes: 64 * 128, Pattern: Random, Write: true, RateScale: 1}, h, alloc, rng)
	r.Step(0, 2000)
	if r.Progress() == 0 {
		t.Fatalf("xmem made no progress")
	}
}

func TestSPECProfilesComplete(t *testing.T) {
	h, _, alloc, rng := newEnv(t)
	for name := range SPECProfiles {
		w, err := NewSPEC(name, 0, h, alloc, rng, 1)
		if err != nil {
			t.Fatalf("NewSPEC(%s): %v", name, err)
		}
		w.Step(0, 500)
	}
	if _, err := NewSPEC("nonexistent", 0, h, alloc, rng, 1); err == nil {
		t.Errorf("unknown benchmark must error")
	}
}

func TestDPDKConsumesPackets(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	_ = rng
	id := f.Register("net")
	n := nic.New(nic.Config{
		Name: "nic0", Port: 0, LinesPerSec: 1e6, PacketBytes: 256,
		RingEntries: 32, NumRings: 2,
	}, h, id, alloc)
	d := NewDPDK(DPDKConfig{
		Name: "net", Cores: []int{0, 1}, Touch: true, InstrPerPkt: 100, RateScale: 1,
	}, h, n, id)
	// Deliver some packets, then poll.
	n.Step(0, 64)
	delivered := n.WrittenPackets()
	if delivered == 0 {
		t.Fatalf("nic delivered nothing")
	}
	d.Step(0, 1_000_000)
	if d.Progress() != delivered {
		t.Fatalf("consumed %d of %d packets", d.Progress(), delivered)
	}
	if d.Latency().Count() != delivered {
		t.Fatalf("latency samples %d != %d", d.Latency().Count(), delivered)
	}
	wait, desc, proc := d.LatencyBreakdown()
	if desc.Count() == 0 || proc.Count() == 0 || wait.Count() == 0 {
		t.Fatalf("breakdown reservoirs empty")
	}
	d.ResetLatency()
	if d.Latency().Count() != 0 {
		t.Fatalf("ResetLatency incomplete")
	}
	// Idle polling must not spin forever.
	if spent := d.Step(0, 1000); spent != 1000 {
		t.Fatalf("idle poll should consume the budget, spent %d", spent)
	}
}

func TestDPDKForwardEgress(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	_ = rng
	id := f.Register("fwd")
	n := nic.New(nic.Config{
		Name: "nic0", Port: 0, LinesPerSec: 1e6, PacketBytes: 128,
		RingEntries: 16, NumRings: 1,
	}, h, id, alloc)
	d := NewDPDK(DPDKConfig{
		Name: "fwd", Cores: []int{0}, Touch: true, Forward: true, InstrPerPkt: 50, RateScale: 1,
	}, h, n, id)
	n.Step(0, 8)
	d.Step(0, 100000)
	if h.PCIe().Port(0).OutboundBytes() == 0 {
		t.Fatalf("forwarding should produce egress DMA reads")
	}
}

func TestDPDKRingMismatchPanics(t *testing.T) {
	h, f, alloc, _ := newEnv(t)
	id := f.Register("net")
	n := nic.New(nic.Config{
		Name: "nic0", Port: 0, LinesPerSec: 1e6, PacketBytes: 128,
		RingEntries: 16, NumRings: 1,
	}, h, id, alloc)
	defer func() {
		if recover() == nil {
			t.Errorf("core/ring mismatch should panic")
		}
	}()
	NewDPDK(DPDKConfig{Name: "net", Cores: []int{0, 1}, RateScale: 1}, h, n, id)
}

func TestFIOSubmitsProcessesResubmits(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	id := f.Register("fio")
	dev := ssd.New(ssd.Config{Name: "ssd0", Port: 1, LinesPerSec: 1e6}, h)
	fio := NewFIO(FIOConfig{
		Name: "fio", Cores: []int{0}, BlockBytes: 4096, QueueDepth: 4,
		InstrPerLine: 2, RateScale: 1,
	}, h, dev, id, alloc, rng)
	if fio.BlockLines() != 64 {
		t.Fatalf("BlockLines = %d", fio.BlockLines())
	}
	// First step submits the initial queue depth.
	fio.Step(0, 1000)
	if dev.QueueDepth() != 4 {
		t.Fatalf("initial submissions = %d, want 4", dev.QueueDepth())
	}
	// Service the device, then let the thread consume and resubmit.
	dev.Step(0, 64*4+1000)
	fio.Step(0, 10_000_000)
	if fio.Progress() == 0 {
		t.Fatalf("no blocks consumed")
	}
	if fio.ReadLatency().Count() == 0 {
		t.Fatalf("read latency not recorded")
	}
	if dev.QueueDepth() == 0 {
		t.Fatalf("slots not resubmitted")
	}
	c := f.C(id)
	if c.Instructions.Total() == 0 {
		t.Fatalf("regex instructions not charged")
	}
	fio.ResetLatency()
	if fio.ReadLatency().Count() != 0 || fio.ProcLatency().Count() != 0 {
		t.Fatalf("ResetLatency incomplete")
	}
}

func TestFFSBWriteMix(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	id := f.Register("ffsb")
	dev := ssd.New(ssd.Config{Name: "ssd0", Port: 1, LinesPerSec: 1e6}, h)
	w := NewFFSB("ffsb", false, []int{0}, h, dev, id, alloc, rng, 1)
	w.Step(0, 1000)
	// Drive device and consumer for a while; both command kinds complete.
	for i := 0; i < 50; i++ {
		dev.Step(sim.Tick(i), 100000)
		w.Step(sim.Tick(i), 1_000_000)
	}
	if w.Progress() == 0 {
		t.Fatalf("ffsb made no progress")
	}
	out := h.PCIe().Port(1).OutboundBytes()
	in := h.PCIe().Port(1).InboundBytes()
	if in == 0 || out == 0 {
		t.Fatalf("expected mixed read/write traffic: in=%d out=%d", in, out)
	}
}

func TestClassAndPriorityStrings(t *testing.T) {
	if ClassCompute.String() != "compute" || ClassNetwork.String() != "network" || ClassStorage.String() != "storage" {
		t.Errorf("class names wrong")
	}
	if HPW.String() != "HPW" || LPW.String() != "LPW" {
		t.Errorf("priority names wrong")
	}
}

func TestFIOBufferedPathCopies(t *testing.T) {
	h, f, alloc, rng := newEnv(t)
	id := f.Register("buffered")
	dev := ssd.New(ssd.Config{Name: "ssd0", Port: 1, LinesPerSec: 1e6}, h)
	fio := NewFIO(FIOConfig{
		Name: "buffered", Cores: []int{0}, BlockBytes: 4096, QueueDepth: 2,
		Buffered: true, InstrPerLine: 1, RateScale: 1,
	}, h, dev, id, alloc, rng)
	fio.Step(0, 100)
	dev.Step(0, 100000)
	fio.Step(0, 10_000_000)
	if fio.Progress() == 0 {
		t.Fatalf("buffered FIO made no progress")
	}
	// The kernel-to-user copy dirties user-buffer lines: flushing one block
	// of dirty lines through the hierarchy shows up as memory writes once
	// the MLC evicts them; at minimum the stores must have happened.
	c := f.C(id)
	if c.MLCHits.Total()+c.MLCMisses.Total() < 2*64 {
		t.Fatalf("buffered path should roughly double CPU accesses, got %d",
			c.MLCHits.Total()+c.MLCMisses.Total())
	}
}
