package workload

import (
	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/nic"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/stats"
)

// DPDKConfig describes a poll-mode network workload. With Touch=false it is
// DPDK-NT (reads only descriptors and drops packets); with Touch=true it is
// DPDK-T (touches every payload line, e.g. deep packet inspection); with
// Forward=true it additionally DMA-reads the packet back out (Fastclick-like
// forwarding).
type DPDKConfig struct {
	Name    string
	Cores   []int
	Touch   bool
	Forward bool
	// InstrPerPkt is the per-packet processing instruction count.
	InstrPerPkt int
	CPIBase     float64
	// Overlap divides payload-line stall cycles (prefetch/MLP).
	Overlap int
	// PollCycles is the cost of an empty poll iteration.
	PollCycles int
	RateScale  float64
}

// DPDK is the poll-mode consumer bound to one NIC (one ring per core).
type DPDK struct {
	Base
	cfg DPDKConfig
	nic *nic.NIC
	rr  int

	lat     *stats.Reservoir // total packet latency, microseconds (unscaled)
	waitLat *stats.Reservoir // ring queueing portion
	descLat *stats.Reservoir // pointer (descriptor) access portion
	procLat *stats.Reservoir // payload processing portion

	instAcc float64
}

// NewDPDK builds the workload; the NIC must have one ring per core.
func NewDPDK(cfg DPDKConfig, h *hierarchy.Hierarchy, n *nic.NIC, id pcm.WorkloadID) *DPDK {
	if n.NumRings() != len(cfg.Cores) {
		panic("workload: DPDK needs one NIC ring per core")
	}
	if cfg.Overlap <= 0 {
		cfg.Overlap = 4
	}
	if cfg.CPIBase <= 0 {
		cfg.CPIBase = 0.5
	}
	if cfg.PollCycles <= 0 {
		cfg.PollCycles = 100
	}
	return &DPDK{
		Base:    NewBase(cfg.Name, id, cfg.Cores, ClassNetwork, n.Port(), h, cfg.RateScale),
		cfg:     cfg,
		nic:     n,
		lat:     stats.NewReservoir(8192),
		waitLat: stats.NewReservoir(4096),
		descLat: stats.NewReservoir(4096),
		procLat: stats.NewReservoir(4096),
	}
}

// Fork returns an independent deep copy of the workload wired to the given
// (already forked) hierarchy and NIC: poll cursor, instruction accumulator,
// and latency reservoirs (including their sampling RNG streams) carry over.
func (d *DPDK) Fork(h *hierarchy.Hierarchy, n *nic.NIC) *DPDK {
	f := &DPDK{
		Base:    d.Base.fork(h),
		cfg:     d.cfg,
		nic:     n,
		rr:      d.rr,
		lat:     d.lat.Clone(),
		waitLat: d.waitLat.Clone(),
		descLat: d.descLat.Clone(),
		procLat: d.procLat.Clone(),
		instAcc: d.instAcc,
	}
	f.cfg.Cores = append([]int(nil), d.cfg.Cores...)
	return f
}

// SetPort records the NIC's PCIe port for A4's device mapping.
func (d *DPDK) SetPort(p int) { d.port = p }

// Latency returns the total-latency reservoir (microseconds, unscaled by
// the harness at report time).
func (d *DPDK) Latency() *stats.Reservoir { return d.lat }

// LatencyBreakdown returns (queueing, pointer-access, processing)
// reservoirs for the Fig. 14a breakdown.
func (d *DPDK) LatencyBreakdown() (wait, desc, proc *stats.Reservoir) {
	return d.waitLat, d.descLat, d.procLat
}

// ResetLatency clears all latency reservoirs (between measurement windows).
func (d *DPDK) ResetLatency() {
	d.lat.Reset()
	d.waitLat.Reset()
	d.descLat.Reset()
	d.procLat.Reset()
}

// FastForward implements sim.FastForwarder as a documented no-op: the poll
// loop owns no timestamps — packet arrival stamps live in the NIC rings,
// which rebase them in their own FastForward during the same pass — and a
// frozen pipeline adds nothing to the latency reservoirs, so their sampling
// streams consume no draws over the gap.
func (d *DPDK) FastForward(now, dt sim.Tick) {}

// Step implements sim.Actor: poll rings and process packets until the cycle
// budget is spent.
func (d *DPDK) Step(now sim.Tick, budget int) int {
	spent := 0
	var inst int64
	width := float64(sim.TicksPerEpoch / sim.InterleaveSlices)
	emptyPolls := 0
	for spent < budget {
		i := d.rr % len(d.cores)
		d.rr++
		core := d.cores[i]
		ring := d.nic.Ring(i)
		slot, arrival, ok := ring.Pop()
		if !ok {
			spent += d.cfg.PollCycles
			emptyPolls++
			if emptyPolls >= len(d.cores) {
				// All rings empty: idle out the remaining budget cheaply.
				spent = budget
				break
			}
			continue
		}
		emptyPolls = 0

		// Pointer access: read the descriptor line.
		resDesc := d.h.CPURead(core, d.id, ring.DescAddr(slot), true)
		descCycles := resDesc.Cycles

		// Payload processing.
		procCycles := 0
		if d.cfg.Touch {
			base := ring.SlotAddr(slot)
			for l := 0; l < ring.PktLines; l++ {
				res := d.h.CPURead(core, d.id, base+uint64(l), true)
				s := res.Cycles / d.cfg.Overlap
				if s < 1 {
					s = 1
				}
				procCycles += s
			}
		}
		d.instAcc += float64(d.cfg.InstrPerPkt) * d.cfg.CPIBase
		work := int(d.instAcc)
		d.instAcc -= float64(work)
		procCycles += work

		if d.cfg.Forward {
			base := ring.SlotAddr(slot)
			for l := 0; l < ring.PktLines; l++ {
				d.h.DMARead(d.port, d.id, base+uint64(l))
			}
		}

		cost := descCycles + procCycles
		spent += cost
		inst += int64(d.cfg.InstrPerPkt) + int64(ring.PktLines) + 1
		d.progress++

		// Latency: ring wait in ticks plus service time in cycles. The
		// harness divides the tick portion by RateScale when reporting.
		tNow := float64(now) + float64(spent)/float64(budget)*width
		wait := tNow - arrival
		if wait < 0 {
			wait = 0
		}
		svc := float64(cost) / (mem.CyclesPerMicro / d.cfg.RateScale)
		d.lat.Add(wait + svc)
		d.waitLat.Add(wait)
		d.descLat.Add(float64(descCycles) / (mem.CyclesPerMicro / d.cfg.RateScale))
		d.procLat.Add(float64(procCycles) / (mem.CyclesPerMicro / d.cfg.RateScale))
	}
	d.charge(inst, int64(spent))
	return spent
}
