// Package workload implements every benchmark the paper runs, as synthetic
// traffic generators over the simulated hierarchy: the DPDK-T/NT and X-Mem
// microbenchmarks, FIO with regex post-processing, and the real-world set of
// Table 2 (Fastclick, FFSB-H/L, Redis-S/C, and SPEC CPU2017 proxies).
//
// CPU workloads are cycle-budgeted actors: one engine "op" is one (scaled)
// core cycle, and a Step issues memory accesses until its cycle budget is
// spent. Service rates therefore respond to cache behaviour — more misses
// mean fewer packets or blocks processed per second — which is the feedback
// loop behind every latency and throughput effect in the paper's figures.
package workload

import (
	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
)

// Class labels a workload's I/O attachment.
type Class uint8

// Workload classes.
const (
	ClassCompute Class = iota
	ClassNetwork
	ClassStorage
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNetwork:
		return "network"
	case ClassStorage:
		return "storage"
	default:
		return "compute"
	}
}

// Priority is a workload's QoS class, provided by the operator.
type Priority uint8

// Priorities.
const (
	LPW Priority = iota // low-priority (best-effort)
	HPW                 // high-priority (latency-sensitive)
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	if p == HPW {
		return "HPW"
	}
	return "LPW"
}

// Workload is the interface the harness and the A4 daemon program against.
type Workload interface {
	sim.Actor
	ID() pcm.WorkloadID
	Cores() []int
	Class() Class
	// Port is the PCIe port of the attached device, or -1.
	Port() int
	// Progress is a monotonic work counter in workload-specific units
	// (instructions, packets, or bytes); the harness differentiates it to
	// obtain the performance metric of §7 (throughput or IPC proxies).
	Progress() int64
}

// CyclesPerSecond is the unscaled core clock (2.3 GHz Xeon Gold 6140).
const CyclesPerSecond = 2.3e9

// Base carries the bookkeeping shared by all CPU workloads.
type Base struct {
	name     string
	id       pcm.WorkloadID
	cores    []int
	class    Class
	port     int
	h        *hierarchy.Hierarchy
	cyclesPS float64 // aggregate scaled cycles/second across cores
	progress int64
}

// NewBase wires the shared fields. rateScale divides the core clock.
func NewBase(name string, id pcm.WorkloadID, cores []int, class Class, port int,
	h *hierarchy.Hierarchy, rateScale float64) Base {
	if len(cores) == 0 {
		panic("workload: no cores")
	}
	if rateScale <= 0 {
		rateScale = 1
	}
	return Base{
		name:     name,
		id:       id,
		cores:    cores,
		class:    class,
		port:     port,
		h:        h,
		cyclesPS: CyclesPerSecond / rateScale * float64(len(cores)),
	}
}

// fork returns a copy of the shared bookkeeping re-wired to the given
// (already forked) hierarchy.
func (b *Base) fork(h *hierarchy.Hierarchy) Base {
	n := *b
	n.h = h
	n.cores = append([]int(nil), b.cores...)
	return n
}

// Name implements sim.Actor.
func (b *Base) Name() string { return b.name }

// ID returns the pcm workload ID.
func (b *Base) ID() pcm.WorkloadID { return b.id }

// Cores returns the pinned cores.
func (b *Base) Cores() []int { return b.cores }

// Class returns the I/O class.
func (b *Base) Class() Class { return b.class }

// Port returns the attached PCIe port or -1.
func (b *Base) Port() int { return b.port }

// Progress returns the monotonic work counter.
func (b *Base) Progress() int64 { return b.progress }

// OpsPerSecond implements sim.Actor: the aggregate scaled cycle rate.
func (b *Base) OpsPerSecond(now sim.Tick) float64 { return b.cyclesPS }

// charge books instructions and cycles to the pcm fabric.
func (b *Base) charge(inst, cycles int64) {
	c := b.h.Fabric().C(b.id)
	c.Instructions.Add(inst)
	c.Cycles.Add(cycles)
}

// Pattern selects an address-stream shape.
type Pattern uint8

// Access patterns.
const (
	Sequential Pattern = iota
	Random
	Zipf
)

// Stream produces a line-address stream over a working set.
type Stream struct {
	Base    uint64 // first line address
	Lines   uint64
	Pattern Pattern
	Skew    float64 // Zipf skew
	rng     *sim.RNG
	pos     uint64
}

// NewStream allocates a working set of wsBytes from the address space and
// returns a stream over it.
func NewStream(alloc *mem.AddressSpace, wsBytes int64, p Pattern, skew float64, rng *sim.RNG) *Stream {
	lines := uint64((wsBytes + mem.LineBytes - 1) / mem.LineBytes)
	if lines == 0 {
		lines = 1
	}
	return &Stream{
		Base:    alloc.Alloc(wsBytes),
		Lines:   lines,
		Pattern: p,
		Skew:    skew,
		rng:     rng,
	}
}

// clone returns an independent copy of the stream: same working set, same
// RNG position, same sequential cursor.
func (s *Stream) clone() *Stream {
	n := *s
	n.rng = s.rng.Clone()
	return &n
}

// skip advances the stream past n accesses without producing addresses: the
// random and Zipf patterns consume exactly one RNG draw per Next call, so
// skipping is an O(1) RNG.Skip; the sequential pattern moves its cursor
// modulo the working set. After skip(n) the stream produces the same
// addresses it would after n discarded Next calls — the fast-forward path's
// draw accounting depends on this equivalence.
func (s *Stream) skip(n uint64) {
	switch s.Pattern {
	case Random, Zipf:
		s.rng.Skip(n)
	default:
		s.pos = (s.pos + n) % s.Lines
	}
}

// Next returns the next line address.
func (s *Stream) Next() uint64 {
	switch s.Pattern {
	case Random:
		return s.Base + s.rng.Uint64n(s.Lines)
	case Zipf:
		// Hash the rank so hot lines spread across sets.
		rank := uint64(s.rng.Zipf(int(s.Lines), s.Skew))
		return s.Base + (rank*0x9E3779B97F4A7C15)%s.Lines
	default:
		a := s.Base + s.pos
		s.pos++
		if s.pos >= s.Lines {
			s.pos = 0
		}
		return a
	}
}
