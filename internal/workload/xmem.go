package workload

import (
	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/sim"
)

// SyntheticConfig describes a CPU-only workload as a memory-access profile:
// working set, pattern, read/write mix, and compute intensity. X-Mem, the
// Redis pair, and the SPEC CPU2017 proxies are all presets of this type.
type SyntheticConfig struct {
	Name    string
	Cores   []int
	WSBytes int64
	Pattern Pattern
	// Skew is the Zipf skew when Pattern == Zipf.
	Skew float64
	// WriteFrac is the probability an access is a store.
	WriteFrac float64
	// InstrPerOp is the number of non-memory instructions per memory access;
	// higher values mean a more compute-bound workload.
	InstrPerOp int
	// CPIBase is the core CPI of those instructions.
	CPIBase float64
	// Overlap divides memory stall cycles, modeling MLP/prefetching.
	Overlap int
	// SharedWS makes all cores walk one shared region instead of private
	// partitions.
	SharedWS  bool
	RateScale float64
}

// Synthetic is the generic cycle-budgeted compute workload.
type Synthetic struct {
	Base
	streams []*Stream
	cfg     SyntheticConfig
	rng     *sim.RNG
	rr      int
	instAcc float64
	// Observed detailed-mode totals (accesses issued, cycles spent) feed the
	// fast-forward extrapolation; ffAcc carries the fractional access count
	// across gaps so long sampled runs stay unbiased.
	obsAcc int64
	obsCyc int64
	ffAcc  float64
}

// NewSynthetic builds a compute workload. Each core receives a private
// partition of the working set unless SharedWS is set.
func NewSynthetic(cfg SyntheticConfig, h *hierarchy.Hierarchy, alloc *mem.AddressSpace, rng *sim.RNG) *Synthetic {
	wid := h.Fabric().Register(cfg.Name)
	if cfg.Overlap <= 0 {
		cfg.Overlap = 1
	}
	if cfg.CPIBase <= 0 {
		cfg.CPIBase = 0.5
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 0.9
	}
	s := &Synthetic{
		Base: NewBase(cfg.Name, wid, cfg.Cores, ClassCompute, -1, h, cfg.RateScale),
		cfg:  cfg,
		rng:  rng.Fork(),
	}
	if cfg.SharedWS {
		shared := NewStream(alloc, cfg.WSBytes, cfg.Pattern, cfg.Skew, rng.Fork())
		for range cfg.Cores {
			s.streams = append(s.streams, shared)
		}
		return s
	}
	per := cfg.WSBytes / int64(len(cfg.Cores))
	if per <= 0 {
		per = mem.LineBytes
	}
	for range cfg.Cores {
		s.streams = append(s.streams, NewStream(alloc, per, cfg.Pattern, cfg.Skew, rng.Fork()))
	}
	return s
}

// Fork returns an independent deep copy of the workload wired to the given
// (already forked) hierarchy. Stream aliasing is preserved: under SharedWS
// every core slot points at one Stream, and the fork keeps that sharing
// (with one cloned Stream) instead of splitting it into per-core cursors,
// which would diverge from the original's access order.
func (s *Synthetic) Fork(h *hierarchy.Hierarchy) *Synthetic {
	n := &Synthetic{
		Base:    s.Base.fork(h),
		cfg:     s.cfg,
		rng:     s.rng.Clone(),
		rr:      s.rr,
		instAcc: s.instAcc,
		obsAcc:  s.obsAcc,
		obsCyc:  s.obsCyc,
		ffAcc:   s.ffAcc,
	}
	n.cfg.Cores = append([]int(nil), s.cfg.Cores...)
	clones := make(map[*Stream]*Stream, len(s.streams))
	n.streams = make([]*Stream, len(s.streams))
	for i, st := range s.streams {
		c, ok := clones[st]
		if !ok {
			c = st.clone()
			clones[st] = c
		}
		n.streams[i] = c
	}
	return n
}

// Step implements sim.Actor: issue accesses until the cycle budget is spent.
func (s *Synthetic) Step(now sim.Tick, budget int) int {
	spent := 0
	var inst int64
	for spent < budget {
		i := s.rr % len(s.cores)
		s.rr++
		core := s.cores[i]
		addr := s.streams[i].Next()
		var res hierarchy.Result
		if s.cfg.WriteFrac > 0 && s.rng.Float64() < s.cfg.WriteFrac {
			res = s.h.CPUWrite(core, s.id, addr, false)
		} else {
			res = s.h.CPURead(core, s.id, addr, false)
		}
		stall := res.Cycles / s.cfg.Overlap
		if stall < 1 {
			stall = 1
		}
		s.instAcc += float64(s.cfg.InstrPerOp) * s.cfg.CPIBase
		work := int(s.instAcc)
		s.instAcc -= float64(work)
		spent += stall + work
		inst += int64(s.cfg.InstrPerOp) + 1 // +1 for the memory op itself
	}
	s.charge(inst, int64(spent))
	s.progress += inst
	// inst grows by exactly InstrPerOp+1 per access, so the access count is
	// recoverable without an inner-loop counter.
	s.obsAcc += inst / int64(s.cfg.InstrPerOp+1)
	s.obsCyc += int64(spent)
	return spent
}

// FastForward implements sim.FastForwarder. It advances the workload's RNG
// and stream cursors past the accesses its cycle budget would have issued
// over dt, without touching the hierarchy, the pcm fabric, or the progress
// counter (the monitor extrapolates those from the detailed windows). The
// access count is the cycle budget for dt times the observed detailed-mode
// access/cycle rate, with a fractional carry. Draw accounting mirrors Step
// exactly: one stream draw per access for random and Zipf patterns plus one
// write-mix draw per access when WriteFrac > 0, distributed round-robin
// across core slots so per-slot stream cursors land where detailed
// execution's interleaving would put them.
func (s *Synthetic) FastForward(now, dt sim.Tick) {
	if s.obsCyc == 0 {
		return
	}
	cycles := s.cyclesPS * float64(dt) / sim.TicksPerSecond
	want := cycles*float64(s.obsAcc)/float64(s.obsCyc) + s.ffAcc
	n := uint64(want)
	s.ffAcc = want - float64(n)
	if n == 0 {
		return
	}
	slots := uint64(len(s.cores))
	start := uint64(s.rr) % slots
	for j := uint64(0); j < slots; j++ {
		cnt := n / slots
		if (j+slots-start)%slots < n%slots {
			cnt++
		}
		if cnt > 0 {
			// Under SharedWS all slots alias one Stream; per-slot skips
			// accumulate to the same total n draws Step would have made.
			s.streams[j].skip(cnt)
		}
	}
	s.rr += int(n)
	if s.cfg.WriteFrac > 0 {
		s.rng.Skip(n)
	}
}

// XMemConfig describes one X-Mem instance (Table 3 of the paper).
type XMemConfig struct {
	Name      string
	Cores     []int
	WSBytes   int64
	Pattern   Pattern
	Write     bool
	RateScale float64
}

// NewXMem builds an X-Mem instance: a bandwidth-oriented cache-sensitivity
// probe (few instructions per access, streaming-friendly MLP).
func NewXMem(cfg XMemConfig, h *hierarchy.Hierarchy, alloc *mem.AddressSpace, rng *sim.RNG) *Synthetic {
	wf := 0.0
	if cfg.Write {
		wf = 1.0
	}
	overlap := 4
	if cfg.Pattern == Random {
		overlap = 2
	}
	return NewSynthetic(SyntheticConfig{
		Name:       cfg.Name,
		Cores:      cfg.Cores,
		WSBytes:    cfg.WSBytes,
		Pattern:    cfg.Pattern,
		WriteFrac:  wf,
		InstrPerOp: 4,
		CPIBase:    0.4,
		Overlap:    overlap,
		RateScale:  cfg.RateScale,
	}, h, alloc, rng)
}
