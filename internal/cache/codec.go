package cache

import "a4sim/internal/codec"

// EncodeState appends the array's dynamic state: slot words, per-set LRU
// permutations and valid bitmaps, the incremental occupancy counters, and
// the victim-randomness stream. Geometry (sets, ways, randPct) is
// structural — a decoder rebuilds the array from configuration and only
// restores this state on top.
func (c *Cache) EncodeState(w *codec.Writer) {
	w.U64s(c.slots)
	w.U64s(c.order)
	w.U32s(c.valid)
	w.I32s(c.validByWay)
	w.Int(len(c.ownerByWay))
	for _, s := range c.ownerByWay {
		w.I32s(s)
	}
	w.U64(c.rngs)
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose geometry disagrees with the receiver's.
func (c *Cache) DecodeState(r *codec.Reader) {
	slots := r.U64s()
	order := r.U64s()
	valid := r.U32s()
	validByWay := r.I32s()
	nOwner := r.Int()
	if r.Err() != nil {
		return
	}
	if len(slots) != len(c.slots) || len(order) != len(c.order) ||
		len(valid) != len(c.valid) || len(validByWay) != len(c.validByWay) ||
		nOwner != len(c.ownerByWay) {
		r.Failf("cache: snapshot geometry mismatch (%d slots, array has %d)", len(slots), len(c.slots))
		return
	}
	ownerByWay := make([][]int32, nOwner)
	for i := range ownerByWay {
		ownerByWay[i] = r.I32s()
	}
	rngs := r.U64()
	if r.Err() != nil {
		return
	}
	c.slots = slots
	c.order = order
	c.valid = valid
	c.validByWay = validByWay
	c.ownerByWay = ownerByWay
	c.rngs = rngs
}
