package cache

import (
	"fmt"
	"testing"
)

// This file pins the packed structure-of-arrays Cache against a reference
// reimplementation of the original array-of-structs design (stamp-based
// LRU, linear scans, full-array occupancy walks). Both are driven with an
// identical deterministic operation stream — including the imperfect-LRU
// victim randomness, whose RNG consumption pattern must match exactly —
// and every observable output is compared: hit ways, victim choices,
// eviction copies, migration semantics, and occupancy counts.

// refLine mirrors the original Line layout (recency stamp per line).
type refLine struct {
	Addr  uint64
	LRU   uint64
	Owner int16
	Port  int8
	Flags LineFlags
	Valid bool
}

// refCache is the original implementation, kept verbatim in spirit: an
// array of structs scanned linearly, strict stamp LRU, and the same
// xorshift victim-randomness stream.
type refCache struct {
	sets    []refLine
	ways    int
	setMask uint64
	stamp   uint64
	randPct int
	rngs    uint64
}

func newRef(numSets, ways int) *refCache {
	return &refCache{
		sets:    make([]refLine, numSets*ways),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
}

func (c *refCache) setVictimRandomness(pct int, seed uint64) {
	c.randPct = pct
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	c.rngs = seed
}

func (c *refCache) nextRand() uint64 {
	c.rngs ^= c.rngs << 13
	c.rngs ^= c.rngs >> 7
	c.rngs ^= c.rngs << 17
	return c.rngs
}

func (c *refCache) set(idx int) []refLine {
	base := idx * c.ways
	return c.sets[base : base+c.ways]
}

func (c *refCache) lookup(addr uint64) (*refLine, int) {
	s := c.set(int(addr & c.setMask))
	for w := range s {
		if s[w].Valid && s[w].Addr == addr {
			return &s[w], w
		}
	}
	return nil, -1
}

func (c *refCache) touch(l *refLine) {
	c.stamp++
	l.LRU = c.stamp
}

func (c *refCache) victim(addr uint64, mask WayMask) (*refLine, int) {
	s := c.set(int(addr & c.setMask))
	var victim *refLine
	way := -1
	nMasked := 0
	for w := range s {
		if !mask.Has(w) {
			continue
		}
		nMasked++
		if !s[w].Valid {
			return &s[w], w
		}
		if victim == nil || s[w].LRU < victim.LRU {
			victim = &s[w]
			way = w
		}
	}
	if victim != nil && c.randPct > 0 && int(c.nextRand()%100) < c.randPct {
		k := int(c.nextRand() % uint64(nMasked))
		for w := range s {
			if !mask.Has(w) {
				continue
			}
			if k == 0 {
				return &s[w], w
			}
			k--
		}
	}
	return victim, way
}

func (c *refCache) insert(addr uint64, mask WayMask, owner int16, port int8, flags LineFlags) (refLine, int) {
	slot, w := c.victim(addr, mask)
	if slot == nil {
		return refLine{}, -1
	}
	ev := *slot
	c.stamp++
	*slot = refLine{Addr: addr, LRU: c.stamp, Owner: owner, Port: port, Flags: flags, Valid: true}
	return ev, w
}

func (c *refCache) invalidate(addr uint64) (refLine, bool) {
	if l, _ := c.lookup(addr); l != nil {
		old := *l
		l.Valid = false
		l.Flags = 0
		return old, true
	}
	return refLine{}, false
}

func (c *refCache) moveToWay(addr uint64, mask WayMask) (*refLine, int, refLine) {
	l, w := c.lookup(addr)
	if l == nil {
		return nil, -1, refLine{}
	}
	if mask.Has(w) {
		c.touch(l)
		return l, w, refLine{}
	}
	saved := *l
	l.Valid = false
	l.Flags = 0
	slot, dw := c.victim(addr, mask)
	if slot == nil {
		*l = saved
		return l, w, refLine{}
	}
	ev := *slot
	c.stamp++
	saved.LRU = c.stamp
	*slot = saved
	return slot, dw, ev
}

func (c *refCache) occupancyByOwner(mask WayMask, out map[int16]int) {
	for i := range c.sets {
		if !mask.Has(i % c.ways) {
			continue
		}
		l := &c.sets[i]
		if l.Valid && l.Owner >= 0 {
			out[l.Owner]++
		}
	}
}

func (c *refCache) countValid(mask WayMask) int {
	n := 0
	for i := range c.sets {
		if mask.Has(i%c.ways) && c.sets[i].Valid {
			n++
		}
	}
	return n
}

// opRNG is a deterministic generator for the op stream, independent of the
// victim-randomness streams inside the caches.
type opRNG uint64

func (r *opRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = opRNG(x)
	return x
}

// checkState compares every observable of the two implementations.
func checkState(t *testing.T, step int, c *Cache, r *refCache, numSets, ways int) {
	t.Helper()
	all := MaskAll(ways)
	if got, want := c.CountValid(all), r.countValid(all); got != want {
		t.Fatalf("step %d: CountValid = %d, ref %d", step, got, want)
	}
	gotOcc, wantOcc := map[int16]int{}, map[int16]int{}
	c.OccupancyByOwner(all, gotOcc)
	r.occupancyByOwner(all, wantOcc)
	if fmt.Sprint(gotOcc) != fmt.Sprint(wantOcc) {
		t.Fatalf("step %d: occupancy %v, ref %v", step, gotOcc, wantOcc)
	}
}

func compareLine(t *testing.T, step int, what string, got Line, gw int, want refLine, ww int) {
	t.Helper()
	if gw != ww {
		t.Fatalf("step %d: %s way = %d, ref %d", step, what, gw, ww)
	}
	if got.Valid != want.Valid {
		t.Fatalf("step %d: %s valid = %v, ref %v", step, what, got.Valid, want.Valid)
	}
	if !got.Valid {
		return
	}
	if got.Addr != want.Addr || got.Owner != want.Owner || got.Port != want.Port || got.Flags != want.Flags {
		t.Fatalf("step %d: %s = %+v, ref %+v", step, what, got, want)
	}
}

// runEquivalence drives both implementations through the same randomized
// op stream and compares everything observable.
func runEquivalence(t *testing.T, numSets, ways, randPct int, steps int, seed uint64) {
	c := New(numSets, ways)
	r := newRef(numSets, ways)
	c.SetVictimRandomness(randPct, 99)
	r.setVictimRandomness(randPct, 99)

	rng := opRNG(seed)
	addrSpace := uint64(numSets * ways * 3) // enough aliasing to force evictions
	for step := 0; step < steps; step++ {
		addr := rng.next()%addrSpace + 1
		op := rng.next() % 100
		mask := WayMask(rng.next()) & MaskAll(ways)
		if mask == 0 {
			mask = MaskAll(ways)
		}
		owner := int16(rng.next()%5) - 1
		port := int8(rng.next()%3) - 1
		flags := LineFlags(rng.next() % 16)
		switch {
		case op < 45: // insert
			gev, gw := c.Insert(addr, mask, owner, port, flags)
			rev, rw := r.insert(addr, mask, owner, port, flags)
			compareLine(t, step, "evicted",
				gev, gw,
				refLine{Addr: rev.Addr, Owner: rev.Owner, Port: rev.Port, Flags: rev.Flags, Valid: rev.Valid}, rw)
		case op < 65: // probe + touch
			gl, gw := c.Probe(addr)
			rl, rw := r.lookup(addr)
			want := refLine{}
			if rl != nil {
				want = *rl
			}
			compareLine(t, step, "probe", gl, gw, refLine{Addr: want.Addr, Owner: want.Owner, Port: want.Port, Flags: want.Flags, Valid: want.Valid}, rw)
			if gw >= 0 {
				c.Touch(addr, gw)
				r.touch(rl)
			}
		case op < 75: // invalidate
			gl, gok := c.Invalidate(addr)
			rl, rok := r.invalidate(addr)
			if gok != rok {
				t.Fatalf("step %d: invalidate ok=%v ref %v", step, gok, rok)
			}
			if gok && (gl.Addr != rl.Addr || gl.Owner != rl.Owner || gl.Flags != rl.Flags) {
				t.Fatalf("step %d: invalidate copy %+v ref %+v", step, gl, rl)
			}
		case op < 85: // move (the O1 migration primitive)
			gl, gw, gev := c.MoveToWay(addr, mask)
			rl, rw, rev := r.moveToWay(addr, mask)
			if (rl == nil) != (gw < 0) {
				t.Fatalf("step %d: move miss mismatch", step)
			}
			if gw >= 0 {
				if gw != rw {
					t.Fatalf("step %d: move way %d ref %d", step, gw, rw)
				}
				if gl.Addr != rl.Addr {
					t.Fatalf("step %d: moved %+v ref %+v", step, gl, *rl)
				}
				compareLine(t, step, "move-evicted", gev, 0, refLine{Addr: rev.Addr, Owner: rev.Owner, Port: rev.Port, Flags: rev.Flags, Valid: rev.Valid}, 0)
			}
		case op < 92: // victim preview (consumes the randomness stream)
			gl, gw := c.Victim(addr, mask)
			rl, rw := r.victim(addr, mask)
			if gw != rw {
				t.Fatalf("step %d: victim way %d ref %d (mask %#x)", step, gw, rw, uint32(mask))
			}
			if rl != nil && rl.Valid != gl.Valid {
				t.Fatalf("step %d: victim valid %v ref %v", step, gl.Valid, rl.Valid)
			}
		case op < 96: // flag mutation on a resident line
			if gl, gw := c.Probe(addr); gw >= 0 {
				set := LineFlags(rng.next() % 16)
				clr := LineFlags(rng.next() % 16)
				c.MutateFlags(addr, gw, set, clr)
				rl, _ := r.lookup(addr)
				rl.Flags = (rl.Flags | set) &^ clr
				_ = gl
			}
		default: // owner/port reassignment (the DDIO write-update path)
			if _, gw := c.Probe(addr); gw >= 0 {
				c.SetOwnerPort(addr, gw, owner, port)
				rl, _ := r.lookup(addr)
				rl.Owner = owner
				rl.Port = port
			}
		}
		if step%64 == 0 {
			checkState(t, step, c, r, numSets, ways)
		}
	}
	checkState(t, steps, c, r, numSets, ways)
}

func TestEquivalenceStrictLRU(t *testing.T) {
	runEquivalence(t, 16, 8, 0, 6000, 0xA4A4)
}

func TestEquivalenceVictimRandomness(t *testing.T) {
	// The imperfect-LRU path must consume the RNG stream exactly as the
	// original did, so victim choices stay aligned over thousands of ops.
	runEquivalence(t, 8, 11, 25, 6000, 0xBEEF)
}

func TestEquivalenceFullRandom(t *testing.T) {
	runEquivalence(t, 4, 16, 100, 4000, 0xF00D)
}

func TestEquivalenceSingleWay(t *testing.T) {
	runEquivalence(t, 32, 1, 10, 2000, 0x1234)
}

func TestInvalidateAllResets(t *testing.T) {
	c := New(8, 4)
	for a := uint64(1); a < 40; a++ {
		c.Insert(a, MaskAll(4), int16(a%3), -1, 0)
	}
	c.InvalidateAll()
	if n := c.CountValid(MaskAll(4)); n != 0 {
		t.Fatalf("CountValid after InvalidateAll = %d", n)
	}
	occ := map[int16]int{}
	c.OccupancyByOwner(MaskAll(4), occ)
	if len(occ) != 0 {
		t.Fatalf("occupancy after InvalidateAll = %v", occ)
	}
	// Refill behaves like a fresh cache.
	ev, w := c.Insert(1, MaskAll(4), 0, -1, 0)
	if ev.Valid || w != 0 {
		t.Fatalf("refill after InvalidateAll: ev=%+v w=%d", ev, w)
	}
}

func TestWaysBounds(t *testing.T) {
	for _, bad := range []int{0, -1, MaxWays + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with %d ways should panic", bad)
				}
			}()
			New(8, bad)
		}()
	}
	New(8, MaxWays) // 16 ways is the documented maximum and must work
}

func TestAddressRangeGuard(t *testing.T) {
	c := New(8, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("Insert beyond the 32-bit tag range should panic")
		}
	}()
	c.Insert(uint64(invalidTag), MaskAll(2), -1, -1, 0)
}
