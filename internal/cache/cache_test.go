package cache

import (
	"testing"
	"testing/quick"
)

func TestMaskHelpers(t *testing.T) {
	if got := MaskAll(11); got != 0x7FF {
		t.Errorf("MaskAll(11) = %#x, want 0x7ff", uint32(got))
	}
	if got := MaskRange(0, 1); got != 0x3 {
		t.Errorf("MaskRange(0,1) = %#x, want 0x3", uint32(got))
	}
	if got := MaskRange(9, 10); got != 0x600 {
		t.Errorf("MaskRange(9,10) = %#x, want 0x600", uint32(got))
	}
	if got := MaskRange(5, 4); got != 0 {
		t.Errorf("MaskRange(5,4) = %#x, want 0", uint32(got))
	}
	if MaskRange(2, 5).Count() != 4 {
		t.Errorf("Count of [2:5] should be 4")
	}
	if !MaskRange(3, 7).Contiguous() {
		t.Errorf("[3:7] should be contiguous")
	}
	if (MaskRange(0, 1) | MaskRange(5, 6)).Contiguous() {
		t.Errorf("split mask should not be contiguous")
	}
	if WayMask(0).Contiguous() {
		t.Errorf("empty mask is not contiguous")
	}
	if !MaskRange(4, 6).Has(5) || MaskRange(4, 6).Has(7) {
		t.Errorf("Has membership wrong")
	}
}

func TestMaskContiguousQuick(t *testing.T) {
	// Property: MaskRange always produces a contiguous mask with the right
	// population count.
	f := func(lo, span uint8) bool {
		l := int(lo % 20)
		h := l + int(span%12)
		m := MaskRange(l, h)
		return m.Contiguous() && m.Count() == h-l+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{
		{0, 4}, {3, 4}, {-8, 4}, {8, 0}, {8, 33},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", bad.sets, bad.ways)
				}
			}()
			New(bad.sets, bad.ways)
		}()
	}
}

func TestInsertLookupInvalidate(t *testing.T) {
	c := New(16, 4)
	all := MaskAll(4)
	ev, way := c.Insert(100, all, 7, 2, FlagIO)
	if ev.Valid || way < 0 {
		t.Fatalf("first insert should use an empty slot, got ev=%+v way=%d", ev, way)
	}
	l, w := c.Probe(100)
	if !l.Valid || w != way {
		t.Fatalf("probe after insert failed")
	}
	if l.Owner != 7 || l.Port != 2 || !l.IO() || l.Dirty() {
		t.Errorf("metadata not preserved: %+v", l)
	}
	if old, ok := c.Invalidate(100); !ok || old.Addr != 100 {
		t.Fatalf("invalidate failed")
	}
	if l, _ := c.Probe(100); l.Valid {
		t.Fatalf("probe after invalidate should miss")
	}
	if _, ok := c.Invalidate(100); ok {
		t.Errorf("double invalidate should report false")
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(1, 4) // single set
	all := MaskAll(4)
	for a := uint64(0); a < 4; a++ {
		c.Insert(a, all, -1, -1, 0)
	}
	// Touch 0 so 1 becomes LRU.
	_, w := c.Probe(0)
	c.Touch(0, w)
	ev, _ := c.Insert(99, all, -1, -1, 0)
	if !ev.Valid || ev.Addr != 1 {
		t.Errorf("expected LRU victim addr 1, got %+v", ev)
	}
}

func TestMaskedVictimSelection(t *testing.T) {
	c := New(1, 4)
	all := MaskAll(4)
	for a := uint64(0); a < 4; a++ {
		c.Insert(a, all, -1, -1, 0)
	}
	// Restrict allocation to ways 2-3: the victim must come from there.
	_, way := c.Insert(50, MaskRange(2, 3), -1, -1, 0)
	if way != 2 && way != 3 {
		t.Errorf("victim way %d outside mask [2:3]", way)
	}
	if l, w := c.Probe(50); !l.Valid || (w != 2 && w != 3) {
		t.Errorf("new line not placed in masked ways")
	}
}

func TestInsertEmptyMask(t *testing.T) {
	c := New(4, 4)
	ev, way := c.Insert(1, 0, -1, -1, 0)
	if way != -1 || ev.Valid {
		t.Errorf("empty mask should not allocate")
	}
}

func TestMoveToWay(t *testing.T) {
	c := New(1, 4)
	all := MaskAll(4)
	for a := uint64(0); a < 4; a++ {
		c.Insert(a, all, int16(a), -1, 0)
	}
	// Move addr 0 into ways [2:3]; the victim must be evicted from there.
	moved, mw, ev := c.MoveToWay(0, MaskRange(2, 3))
	if mw < 0 || moved.Addr != 0 {
		t.Fatalf("move failed: %+v way %d", moved, mw)
	}
	if w := c.WayOf(0); w != 2 && w != 3 {
		t.Errorf("moved line in way %d, want 2 or 3", w)
	}
	if !ev.Valid || (ev.Addr != 2 && ev.Addr != 3) {
		t.Errorf("unexpected eviction %+v", ev)
	}
	// Moving a line already inside the mask is a no-op with a touch.
	_, _, ev2 := c.MoveToWay(0, MaskRange(2, 3))
	if ev2.Valid {
		t.Errorf("in-place move should not evict")
	}
	// Moving a missing line reports way -1.
	if _, w, _ := c.MoveToWay(999, all); w >= 0 {
		t.Errorf("moving a missing line should report a miss")
	}
}

func TestFlags(t *testing.T) {
	var l Line
	l.Set(FlagDirty | FlagIO)
	if !l.Dirty() || !l.IO() || l.Consumed() || l.Inclusive() {
		t.Errorf("flag set/test broken: %+v", l.Flags)
	}
	l.Set(FlagConsumed | FlagInclusive)
	l.Clear(FlagDirty)
	if l.Dirty() || !l.Consumed() || !l.Inclusive() {
		t.Errorf("flag clear broken: %+v", l.Flags)
	}
}

func TestOccupancyAndCount(t *testing.T) {
	c := New(4, 4)
	all := MaskAll(4)
	for a := uint64(0); a < 8; a++ {
		c.Insert(a, all, int16(a%2), -1, 0)
	}
	if n := c.CountValid(all); n != 8 {
		t.Errorf("CountValid = %d, want 8", n)
	}
	occ := map[int16]int{}
	c.OccupancyByOwner(all, occ)
	if occ[0]+occ[1] != 8 || occ[0] != 4 {
		t.Errorf("occupancy wrong: %v", occ)
	}
	c.InvalidateAll()
	if n := c.CountValid(all); n != 0 {
		t.Errorf("CountValid after InvalidateAll = %d", n)
	}
}

func TestCacheNeverExceedsAssociativity(t *testing.T) {
	// Property: after arbitrary inserts, each set holds at most `ways`
	// valid lines and Lookup finds exactly the lines most recently present.
	c := New(8, 3)
	all := MaskAll(3)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Insert(uint64(a), all, -1, -1, 0)
		}
		counts := make(map[int]int)
		c.ForEach(func(set, way int, l *Line) { counts[set]++ })
		for _, n := range counts {
			if n > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomVictimStaysInMask(t *testing.T) {
	c := New(1, 8)
	c.SetVictimRandomness(100, 42)
	all := MaskAll(8)
	for a := uint64(0); a < 8; a++ {
		c.Insert(a, all, -1, -1, 0)
	}
	for i := 0; i < 200; i++ {
		_, way := c.Victim(0, MaskRange(2, 4))
		if way < 2 || way > 4 {
			t.Fatalf("random victim way %d escaped mask [2:4]", way)
		}
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(1, 4)
	c.SetVictimRandomness(100, 7)
	all := MaskAll(4)
	c.Insert(1, all, -1, -1, 0)
	// Ways 1-3 are invalid; victim must be one of them even with full
	// randomness, because invalid slots take priority.
	for i := 0; i < 50; i++ {
		l, _ := c.Victim(2, all)
		if l.Valid {
			t.Fatalf("victim should prefer an invalid slot")
		}
	}
}
