// Package cache implements the generic set-associative cache array used by
// both the private mid-level caches (MLCs) and the shared last-level cache
// (LLC). It provides way-masked victim selection (the primitive beneath
// Intel CAT and the DDIO way mask), LRU replacement, and per-line metadata
// needed by the A4 reproduction: I/O origin, consumption status, and the
// owning workload.
//
// The array is stored structure-of-arrays with one packed 64-bit word per
// slot (address tag, owner, port, and flags — invalidTag marks empty
// slots), so a whole 16-way set spans two cache lines and the simulated
// LLC's entire state stays resident in a host CPU's caches. Per-set LRU
// state is a nibble permutation packed into a second uint64 (way indices
// ordered MRU to LRU), so victim selection reads a single word instead of
// striding per-line recency stamps. This caps associativity at 16 ways
// (MaxWays), enough for the Skylake-SP geometries the reproduction models
// (11-way LLC, 16-way MLC, 12-way directory), and line addresses must fit
// in 32 bits (256 GiB of simulated memory at 64-byte lines) — Insert
// panics loudly if one does not.
//
// The API is copy-based: Probe and Victim return Line values, and resident
// lines are modified through Touch, MutateFlags, and SetOwnerPort, which
// also keep the incremental per-(owner, way) occupancy counters consistent
// (OccupancyByOwner and CountValid cost O(ways) instead of a full walk).
package cache

import "math/bits"

// LineFlags records per-line metadata bits.
type LineFlags uint8

const (
	// FlagDirty marks a modified line that must be written back on eviction.
	FlagDirty LineFlags = 1 << iota
	// FlagIO marks a line whose data was DMA-written by an I/O device.
	FlagIO
	// FlagConsumed marks an I/O line that has been read by a CPU core since
	// the last DMA write. An I/O line evicted before consumption is a DMA
	// leak.
	FlagConsumed
	// FlagInclusive marks an LLC line that is simultaneously resident in at
	// least one MLC (LLC-inclusive state); such lines may live only in the
	// inclusive ways.
	FlagInclusive
)

// invalidTag marks an empty slot's address bits; maxLineAddr is the largest
// representable line address (the address-space bump allocator stays far
// below it for any realistic scenario).
const (
	invalidTag  = ^uint32(0)
	maxLineAddr = uint64(invalidTag) - 1
	invalidSlot = uint64(invalidTag) // empty slot word: sentinel addr, zero metadata
)

// Packed slot layout.
const (
	ownerShift = 32
	portShift  = 48
	flagsShift = 56
)

// IdentityOrder is the initial packed LRU permutation: way i at recency
// position i (way 0 MRU ... way 15 LRU). Shared with internal/directory,
// whose set storage mirrors this package's layout.
const IdentityOrder = uint64(0xFEDCBA9876543210)

// MaxWays is the highest supported associativity, bounded by the packed
// per-set LRU permutation (16 ways x 4 bits).
const MaxWays = 16

// Line is a copy of one cache line's tag and metadata. Addr is the full
// line address (byte address >> 6); Valid distinguishes empty slots.
// Lines are values: mutating a resident line goes through Touch,
// MutateFlags, and SetOwnerPort on the owning Cache.
type Line struct {
	Addr  uint64
	Owner int16 // workload ID that allocated the line, -1 if unknown
	Port  int8  // PCIe port that DMA-wrote the line, -1 for CPU lines
	Flags LineFlags
	Valid bool
}

// Dirty reports whether the line is modified.
func (l *Line) Dirty() bool { return l.Flags&FlagDirty != 0 }

// IO reports whether the line was DMA-written.
func (l *Line) IO() bool { return l.Flags&FlagIO != 0 }

// Consumed reports whether an I/O line has been read by a core.
func (l *Line) Consumed() bool { return l.Flags&FlagConsumed != 0 }

// Inclusive reports whether the line is in the LLC-inclusive state.
func (l *Line) Inclusive() bool { return l.Flags&FlagInclusive != 0 }

// Set sets the given flag bits on the copy.
func (l *Line) Set(f LineFlags) { l.Flags |= f }

// Clear clears the given flag bits on the copy.
func (l *Line) Clear(f LineFlags) { l.Flags &^= f }

// pack encodes a line into its slot word.
func pack(addr uint64, owner int16, port int8, flags LineFlags) uint64 {
	return addr&0xFFFFFFFF |
		uint64(uint16(owner))<<ownerShift |
		uint64(uint8(port))<<portShift |
		uint64(flags)<<flagsShift
}

// unpack decodes a valid slot word.
func unpack(w uint64) Line {
	return Line{
		Addr:  w & 0xFFFFFFFF,
		Owner: int16(uint16(w >> ownerShift)),
		Port:  int8(uint8(w >> portShift)),
		Flags: LineFlags(w >> flagsShift),
		Valid: true,
	}
}

// slotOwner extracts the owner field of a slot word.
func slotOwner(w uint64) int16 { return int16(uint16(w >> ownerShift)) }

// WayMask selects a subset of ways for allocation; bit i enables way i.
type WayMask uint32

// MaskAll returns a mask enabling ways [0, n).
func MaskAll(n int) WayMask { return WayMask(1<<uint(n)) - 1 }

// MaskRange returns a mask enabling ways [lo, hi] inclusive.
func MaskRange(lo, hi int) WayMask {
	if hi < lo {
		return 0
	}
	return (WayMask(1<<uint(hi-lo+1)) - 1) << uint(lo)
}

// Count returns the number of enabled ways.
func (m WayMask) Count() int { return bits.OnesCount32(uint32(m)) }

// Has reports whether way w is enabled.
func (m WayMask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// Contiguous reports whether the enabled ways form one contiguous run.
// Intel CAT requires contiguous capacity bitmasks.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint32(m) >> uint(bits.TrailingZeros32(uint32(m)))
	return v&(v+1) == 0
}

// Cache is a set-associative array. It is not safe for concurrent use; the
// simulation engine is single-threaded by design.
type Cache struct {
	slots   []uint64 // flattened [set][way]; packed line or invalidSlot
	order   []uint64 // per-set LRU permutation, nibble 0 = MRU way
	valid   []uint32 // per-set bitmask of valid ways
	ways    int
	wayBits uint32 // (1<<ways)-1, clips masks to real ways
	setMask uint64

	// validByWay[w] counts valid lines in way w; ownerByWay[w][owner] counts
	// valid lines per owner (owners are small non-negative workload IDs).
	// Both are maintained incrementally by every mutating operation.
	validByWay []int32
	ownerByWay [][]int32

	// randPct makes victim selection imperfect: with probability
	// randPct/100 the victim is drawn uniformly from the masked ways
	// instead of strict LRU, approximating the quad-age PLRU of Skylake
	// LLCs whose collateral evictions drive the latent contention of §3.1.
	randPct int
	rngs    uint64
}

// New constructs a cache with numSets sets (must be a power of two) and
// ways ways.
func New(numSets, ways int) *Cache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("cache: numSets must be a positive power of two")
	}
	if ways <= 0 || ways > MaxWays {
		panic("cache: ways must be in [1, 16]")
	}
	c := &Cache{
		slots:      make([]uint64, numSets*ways),
		order:      make([]uint64, numSets),
		valid:      make([]uint32, numSets),
		ways:       ways,
		wayBits:    uint32((uint64(1) << uint(ways)) - 1),
		setMask:    uint64(numSets - 1),
		validByWay: make([]int32, ways),
		ownerByWay: make([][]int32, ways),
	}
	for i := range c.slots {
		c.slots[i] = invalidSlot
	}
	for i := range c.order {
		c.order[i] = IdentityOrder
	}
	return c
}

// Clone returns an independent deep copy of the array: slots, LRU
// permutations, valid bitmaps, the incremental occupancy counters, and the
// victim-randomness stream. The copy shares no memory with the original, so
// the two diverge freely — this is the cache's half of the simulation
// snapshot/fork contract. Clone only reads the receiver and is safe to call
// concurrently with other Clone calls on the same array.
func (c *Cache) Clone() *Cache {
	n := &Cache{
		slots:      append([]uint64(nil), c.slots...),
		order:      append([]uint64(nil), c.order...),
		valid:      append([]uint32(nil), c.valid...),
		ways:       c.ways,
		wayBits:    c.wayBits,
		setMask:    c.setMask,
		validByWay: append([]int32(nil), c.validByWay...),
		ownerByWay: make([][]int32, len(c.ownerByWay)),
		randPct:    c.randPct,
		rngs:       c.rngs,
	}
	for w, s := range c.ownerByWay {
		if s != nil {
			n.ownerByWay[w] = append([]int32(nil), s...)
		}
	}
	return n
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.slots) / c.ways }

// SizeBytes returns the capacity in bytes assuming 64-byte lines.
func (c *Cache) SizeBytes() int64 { return int64(len(c.slots)) * 64 }

// SetIndex maps a line address to its set.
func (c *Cache) SetIndex(addr uint64) int { return int(addr & c.setMask) }

// SetVictimRandomness configures imperfect replacement: pct (0-100) is the
// percentage of victim selections drawn uniformly from the masked ways
// instead of LRU. seed feeds the internal generator.
func (c *Cache) SetVictimRandomness(pct int, seed uint64) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	c.randPct = pct
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	c.rngs = seed
}

func (c *Cache) nextRand() uint64 {
	c.rngs ^= c.rngs << 13
	c.rngs ^= c.rngs >> 7
	c.rngs ^= c.rngs << 17
	return c.rngs
}

// PromoteMRU moves way w to the MRU position of a packed LRU permutation
// (as initialized by IdentityOrder). The permutation holds each way index
// in exactly one nibble, so w's position is found branch-free with a SWAR
// zero-nibble test. Shared with internal/directory.
func PromoteMRU(order uint64, w int) uint64 {
	uw := uint64(w)
	x := order ^ uw*0x1111111111111111
	z := (x - 0x1111111111111111) &^ x & 0x8888888888888888
	p := uint(bits.TrailingZeros64(z)) &^ 3
	if p == 0 {
		return order
	}
	low := order & (uint64(1)<<p - 1)
	high := order >> (p + 4) << (p + 4)
	return high | low<<4 | uw
}

// noteInsert and noteEvict keep the incremental occupancy counters in sync.
func (c *Cache) noteInsert(way int, owner int16) {
	c.validByWay[way]++
	c.ownerAdd(way, owner, 1)
}

func (c *Cache) noteEvict(way int, owner int16) {
	c.validByWay[way]--
	c.ownerAdd(way, owner, -1)
}

func (c *Cache) ownerAdd(way int, owner int16, delta int32) {
	if owner < 0 {
		return
	}
	s := c.ownerByWay[way]
	if int(owner) >= len(s) {
		ns := make([]int32, int(owner)+1)
		copy(ns, s)
		s = ns
		c.ownerByWay[way] = s
	}
	s[owner] += delta
}

// Probe looks up addr and returns a copy of its line and its way, or
// (Line{}, -1) on a miss. A hit does not update LRU; call Touch for that.
func (c *Cache) Probe(addr uint64) (Line, int) {
	if addr > maxLineAddr {
		return Line{}, -1 // Insert forbids such addresses, so none is resident
	}
	base := int(addr&c.setMask) * c.ways
	slots := c.slots[base : base+c.ways]
	t32 := uint32(addr)
	for w, s := range slots {
		if uint32(s) == t32 {
			return unpack(s), w
		}
	}
	return Line{}, -1
}

// ProbeWay returns the way addr occupies, or -1, without materializing the
// line metadata (the cheapest hit test for hot paths).
func (c *Cache) ProbeWay(addr uint64) int {
	if addr > maxLineAddr {
		return -1
	}
	base := int(addr&c.setMask) * c.ways
	slots := c.slots[base : base+c.ways]
	t32 := uint32(addr)
	for w, s := range slots {
		if uint32(s) == t32 {
			return w
		}
	}
	return -1
}

// Touch marks the resident line at (addr's set, way) most-recently-used.
// The way is the one Probe returned for addr.
func (c *Cache) Touch(addr uint64, way int) {
	set := int(addr & c.setMask)
	c.order[set] = PromoteMRU(c.order[set], way)
}

// MutateFlags sets then clears flag bits on the resident line at (addr's
// set, way). The way is the one Probe returned for addr.
func (c *Cache) MutateFlags(addr uint64, way int, set, clear LineFlags) {
	idx := int(addr&c.setMask)*c.ways + way
	s := c.slots[idx]
	f := (LineFlags(s>>flagsShift) | set) &^ clear
	c.slots[idx] = s&^(uint64(0xFF)<<flagsShift) | uint64(f)<<flagsShift
}

// SetOwnerPort reassigns the owner and port of the resident line at (addr's
// set, way), keeping the occupancy counters consistent.
func (c *Cache) SetOwnerPort(addr uint64, way int, owner int16, port int8) {
	idx := int(addr&c.setMask)*c.ways + way
	s := c.slots[idx]
	if uint32(s) == invalidTag {
		return
	}
	if old := slotOwner(s); old != owner {
		c.ownerAdd(way, old, -1)
		c.ownerAdd(way, owner, 1)
	}
	s &^= uint64(0xFFFF)<<ownerShift | uint64(0xFF)<<portShift
	c.slots[idx] = s | uint64(uint16(owner))<<ownerShift | uint64(uint8(port))<<portShift
}

// victimWay selects the allocation victim way for addr among the ways
// enabled in mask, or -1 if the mask is empty: an invalid way if one
// exists, otherwise the LRU (or, with victim randomness, a uniformly drawn)
// masked way.
func (c *Cache) victimWay(addr uint64, mask WayMask) int {
	m := uint32(mask) & c.wayBits
	if m == 0 {
		return -1
	}
	set := int(addr & c.setMask)
	if inv := m &^ c.valid[set]; inv != 0 {
		return bits.TrailingZeros32(inv)
	}
	if c.randPct > 0 && int(c.nextRand()%100) < c.randPct {
		// Imperfect replacement: pick the k-th masked way uniformly.
		k := int(c.nextRand() % uint64(bits.OnesCount32(m)))
		bm := m
		for ; k > 0; k-- {
			bm &= bm - 1
		}
		return bits.TrailingZeros32(bm)
	}
	// All masked ways valid: walk the permutation from the LRU end.
	order := c.order[set]
	for p := 4 * (c.ways - 1); p >= 0; p -= 4 {
		w := int(order >> uint(p) & 0xF)
		if m&(1<<uint(w)) != 0 {
			return w
		}
	}
	return -1 // unreachable: m is a non-empty subset of the permutation
}

// Victim returns a copy of the line the next Insert for addr under mask
// would displace (Valid=false if the chosen slot is empty) and its way, or
// (Line{}, -1) if the mask is empty. Victim does not reorder recency state,
// but it does advance the victim-randomness stream exactly as Insert would.
func (c *Cache) Victim(addr uint64, mask WayMask) (Line, int) {
	w := c.victimWay(addr, mask)
	if w < 0 {
		return Line{}, -1
	}
	s := c.slots[int(addr&c.setMask)*c.ways+w]
	if uint32(s) == invalidTag {
		return Line{}, w
	}
	return unpack(s), w
}

// Insert allocates addr into the slot chosen by victim selection and
// returns a copy of the evicted line (Valid=false copy when the slot was
// empty). The new line is installed MRU with the given metadata.
func (c *Cache) Insert(addr uint64, mask WayMask, owner int16, port int8, flags LineFlags) (evicted Line, way int) {
	if addr > maxLineAddr {
		panic("cache: line address exceeds the 32-bit tag range")
	}
	w := c.victimWay(addr, mask)
	if w < 0 {
		return Line{}, -1
	}
	set := int(addr & c.setMask)
	idx := set*c.ways + w
	if old := c.slots[idx]; uint32(old) != invalidTag {
		evicted = unpack(old)
		// Replacement: the way's valid count is unchanged.
		c.ownerAdd(w, evicted.Owner, -1)
	} else {
		c.validByWay[w]++
	}
	c.slots[idx] = pack(addr, owner, port, flags)
	c.order[set] = PromoteMRU(c.order[set], w)
	c.valid[set] |= 1 << uint(w)
	c.ownerAdd(w, owner, 1)
	return evicted, w
}

// Invalidate removes addr if present and returns a copy of the removed line.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	l, w := c.Probe(addr)
	if w < 0 {
		return Line{}, false
	}
	c.invalidateAt(int(addr&c.setMask), w, l.Owner)
	return l, true
}

// InvalidateWay removes the resident line at (addr's set, way) — the way a
// preceding Probe returned for addr — returning a copy of it, without
// re-scanning the set.
func (c *Cache) InvalidateWay(addr uint64, way int) Line {
	set := int(addr & c.setMask)
	s := c.slots[set*c.ways+way]
	if uint32(s) == invalidTag {
		return Line{}
	}
	l := unpack(s)
	c.invalidateAt(set, way, l.Owner)
	return l
}

func (c *Cache) invalidateAt(set, way int, owner int16) {
	c.noteEvict(way, owner)
	c.slots[set*c.ways+way] = invalidSlot
	c.valid[set] &^= 1 << uint(way)
}

// InvalidateAll clears the whole cache.
func (c *Cache) InvalidateAll() {
	for i := range c.slots {
		c.slots[i] = invalidSlot
	}
	for i := range c.order {
		c.order[i] = IdentityOrder
		c.valid[i] = 0
	}
	for w := range c.validByWay {
		c.validByWay[w] = 0
		clear(c.ownerByWay[w])
	}
}

// WayOf returns the way a resident addr occupies, or -1.
func (c *Cache) WayOf(addr uint64) int {
	_, w := c.Probe(addr)
	return w
}

// MoveToWay relocates a resident line to a victim slot among the ways in
// mask within the same set (the O1 migration primitive). It returns a copy
// of the line in its new position with its way, and a copy of the line
// evicted from the destination slot. If addr is not resident, movedWay is
// -1; if the line already sits in an enabled way, no move happens (beyond a
// Touch) and evicted.Valid is false.
func (c *Cache) MoveToWay(addr uint64, mask WayMask) (moved Line, movedWay int, evicted Line) {
	l, w := c.Probe(addr)
	if w < 0 {
		return Line{}, -1, Line{}
	}
	if mask.Has(w) {
		c.Touch(addr, w)
		return l, w, Line{}
	}
	set := int(addr & c.setMask)
	base := set * c.ways
	saved := c.slots[base+w]
	c.noteEvict(w, l.Owner)
	c.slots[base+w] = invalidSlot
	c.valid[set] &^= 1 << uint(w)
	dw := c.victimWay(addr, mask)
	if dw < 0 {
		// Destination mask empty: restore in place, recency unchanged.
		c.slots[base+w] = saved
		c.valid[set] |= 1 << uint(w)
		c.noteInsert(w, l.Owner)
		return l, w, Line{}
	}
	if old := c.slots[base+dw]; uint32(old) != invalidTag {
		evicted = unpack(old)
		c.noteEvict(dw, evicted.Owner)
	}
	c.slots[base+dw] = saved
	c.order[set] = PromoteMRU(c.order[set], dw)
	c.valid[set] |= 1 << uint(dw)
	c.noteInsert(dw, l.Owner)
	return l, dw, evicted
}

// OccupancyByOwner counts valid lines per owner in the ways enabled by mask,
// writing counts into out (keyed by owner ID); lines with owner -1 are
// skipped. Served from the incremental counters in O(ways x owners).
func (c *Cache) OccupancyByOwner(mask WayMask, out map[int16]int) {
	for bm := uint32(mask) & c.wayBits; bm != 0; bm &= bm - 1 {
		w := bits.TrailingZeros32(bm)
		for owner, n := range c.ownerByWay[w] {
			if n != 0 {
				out[int16(owner)] += int(n)
			}
		}
	}
}

// CountValid returns the number of valid lines in the ways enabled by mask.
// Served from the incremental counters in O(ways).
func (c *Cache) CountValid(mask WayMask) int {
	n := int32(0)
	for bm := uint32(mask) & c.wayBits; bm != 0; bm &= bm - 1 {
		n += c.validByWay[bits.TrailingZeros32(bm)]
	}
	return int(n)
}

// ValidInWay returns the number of valid lines in way w.
func (c *Cache) ValidInWay(w int) int {
	if w < 0 || w >= c.ways {
		return 0
	}
	return int(c.validByWay[w])
}

// OwnersInWay visits the (owner, count) pairs with non-zero counts in way w.
func (c *Cache) OwnersInWay(w int, fn func(owner int16, n int)) {
	if w < 0 || w >= c.ways {
		return
	}
	for owner, n := range c.ownerByWay[w] {
		if n != 0 {
			fn(int16(owner), int(n))
		}
	}
}

// ForEach visits a copy of every valid line; mutations of the copy are not
// written back (use MutateFlags and friends for that).
func (c *Cache) ForEach(fn func(set, way int, l *Line)) {
	for i, s := range c.slots {
		if uint32(s) != invalidTag {
			l := unpack(s)
			fn(i/c.ways, i%c.ways, &l)
		}
	}
}
