// Package cache implements the generic set-associative cache array used by
// both the private mid-level caches (MLCs) and the shared last-level cache
// (LLC). It provides way-masked victim selection (the primitive beneath
// Intel CAT and the DDIO way mask), LRU replacement, and per-line metadata
// needed by the A4 reproduction: I/O origin, consumption status, and the
// owning workload.
package cache

// LineFlags records per-line metadata bits.
type LineFlags uint8

const (
	// FlagDirty marks a modified line that must be written back on eviction.
	FlagDirty LineFlags = 1 << iota
	// FlagIO marks a line whose data was DMA-written by an I/O device.
	FlagIO
	// FlagConsumed marks an I/O line that has been read by a CPU core since
	// the last DMA write. An I/O line evicted before consumption is a DMA
	// leak.
	FlagConsumed
	// FlagInclusive marks an LLC line that is simultaneously resident in at
	// least one MLC (LLC-inclusive state); such lines may live only in the
	// inclusive ways.
	FlagInclusive
)

// Line is one cache line's tag and metadata. Addr is the full line address
// (byte address >> 6); Valid distinguishes empty slots.
type Line struct {
	Addr  uint64
	LRU   uint64
	Owner int16 // workload ID that allocated the line, -1 if unknown
	Port  int8  // PCIe port that DMA-wrote the line, -1 for CPU lines
	Flags LineFlags
	Valid bool
}

// Dirty reports whether the line is modified.
func (l *Line) Dirty() bool { return l.Flags&FlagDirty != 0 }

// IO reports whether the line was DMA-written.
func (l *Line) IO() bool { return l.Flags&FlagIO != 0 }

// Consumed reports whether an I/O line has been read by a core.
func (l *Line) Consumed() bool { return l.Flags&FlagConsumed != 0 }

// Inclusive reports whether the line is in the LLC-inclusive state.
func (l *Line) Inclusive() bool { return l.Flags&FlagInclusive != 0 }

// Set sets the given flag bits.
func (l *Line) Set(f LineFlags) { l.Flags |= f }

// Clear clears the given flag bits.
func (l *Line) Clear(f LineFlags) { l.Flags &^= f }

// WayMask selects a subset of ways for allocation; bit i enables way i.
type WayMask uint32

// MaskAll returns a mask enabling ways [0, n).
func MaskAll(n int) WayMask { return WayMask(1<<uint(n)) - 1 }

// MaskRange returns a mask enabling ways [lo, hi] inclusive.
func MaskRange(lo, hi int) WayMask {
	if hi < lo {
		return 0
	}
	return (WayMask(1<<uint(hi-lo+1)) - 1) << uint(lo)
}

// Count returns the number of enabled ways.
func (m WayMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Has reports whether way w is enabled.
func (m WayMask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// Contiguous reports whether the enabled ways form one contiguous run.
// Intel CAT requires contiguous capacity bitmasks.
func (m WayMask) Contiguous() bool {
	if m == 0 {
		return false
	}
	v := uint32(m)
	v >>= trailingZeros(v)
	return v&(v+1) == 0
}

func trailingZeros(v uint32) uint {
	var n uint
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// Cache is a set-associative array. It is not safe for concurrent use; the
// simulation engine is single-threaded by design.
type Cache struct {
	sets    []Line // flattened [set][way]
	ways    int
	setMask uint64
	stamp   uint64

	// randPct makes victim selection imperfect: with probability
	// randPct/100 the victim is drawn uniformly from the masked ways
	// instead of strict LRU, approximating the quad-age PLRU of Skylake
	// LLCs whose collateral evictions drive the latent contention of §3.1.
	randPct int
	rngs    uint64
}

// New constructs a cache with numSets sets (must be a power of two) and
// ways ways.
func New(numSets, ways int) *Cache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("cache: numSets must be a positive power of two")
	}
	if ways <= 0 || ways > 32 {
		panic("cache: ways must be in [1, 32]")
	}
	return &Cache{
		sets:    make([]Line, numSets*ways),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) / c.ways }

// SizeBytes returns the capacity in bytes assuming 64-byte lines.
func (c *Cache) SizeBytes() int64 { return int64(len(c.sets)) * 64 }

// SetIndex maps a line address to its set.
func (c *Cache) SetIndex(addr uint64) int { return int(addr & c.setMask) }

// SetVictimRandomness configures imperfect replacement: pct (0-100) is the
// percentage of victim selections drawn uniformly from the masked ways
// instead of LRU. seed feeds the internal generator.
func (c *Cache) SetVictimRandomness(pct int, seed uint64) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	c.randPct = pct
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	c.rngs = seed
}

func (c *Cache) nextRand() uint64 {
	c.rngs ^= c.rngs << 13
	c.rngs ^= c.rngs >> 7
	c.rngs ^= c.rngs << 17
	return c.rngs
}

// set returns the slice of ways for the given set index.
func (c *Cache) set(idx int) []Line {
	base := idx * c.ways
	return c.sets[base : base+c.ways]
}

// Lookup probes for addr and returns the line and its way, or (nil, -1).
// A hit does not update LRU; call Touch for that.
func (c *Cache) Lookup(addr uint64) (*Line, int) {
	s := c.set(c.SetIndex(addr))
	for w := range s {
		if s[w].Valid && s[w].Addr == addr {
			return &s[w], w
		}
	}
	return nil, -1
}

// Touch marks the line most-recently-used.
func (c *Cache) Touch(l *Line) {
	c.stamp++
	l.LRU = c.stamp
}

// Victim selects the allocation victim for addr among the ways enabled in
// mask: an invalid way if one exists, otherwise the LRU line. It returns the
// line slot and its way, or (nil, -1) if the mask is empty.
func (c *Cache) Victim(addr uint64, mask WayMask) (*Line, int) {
	s := c.set(c.SetIndex(addr))
	var victim *Line
	way := -1
	nMasked := 0
	for w := range s {
		if !mask.Has(w) {
			continue
		}
		nMasked++
		if !s[w].Valid {
			return &s[w], w
		}
		if victim == nil || s[w].LRU < victim.LRU {
			victim = &s[w]
			way = w
		}
	}
	if victim != nil && c.randPct > 0 && int(c.nextRand()%100) < c.randPct {
		// Imperfect replacement: pick the k-th masked way uniformly.
		k := int(c.nextRand() % uint64(nMasked))
		for w := range s {
			if !mask.Has(w) {
				continue
			}
			if k == 0 {
				return &s[w], w
			}
			k--
		}
	}
	return victim, way
}

// Insert allocates addr into the slot returned by Victim and returns a copy
// of the evicted line (Valid=false copy when the slot was empty). The new
// line is installed MRU with the given metadata.
func (c *Cache) Insert(addr uint64, mask WayMask, owner int16, port int8, flags LineFlags) (evicted Line, way int) {
	slot, w := c.Victim(addr, mask)
	if slot == nil {
		return Line{}, -1
	}
	evicted = *slot
	c.stamp++
	*slot = Line{
		Addr:  addr,
		LRU:   c.stamp,
		Owner: owner,
		Port:  port,
		Flags: flags,
		Valid: true,
	}
	return evicted, w
}

// Invalidate removes addr if present and returns a copy of the removed line.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	if l, _ := c.Lookup(addr); l != nil {
		old := *l
		l.Valid = false
		l.Flags = 0
		return old, true
	}
	return Line{}, false
}

// InvalidateAll clears the whole cache.
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		c.sets[i] = Line{}
	}
}

// WayOf returns the way a resident addr occupies, or -1.
func (c *Cache) WayOf(addr uint64) int {
	_, w := c.Lookup(addr)
	return w
}

// MoveToWay relocates a resident line to a victim slot among the ways in
// mask within the same set (the O1 migration primitive). It returns the line
// evicted from the destination slot. If the line already sits in an enabled
// way, no move happens and evicted.Valid is false.
func (c *Cache) MoveToWay(addr uint64, mask WayMask) (moved *Line, evicted Line) {
	l, w := c.Lookup(addr)
	if l == nil {
		return nil, Line{}
	}
	if mask.Has(w) {
		c.Touch(l)
		return l, Line{}
	}
	saved := *l
	l.Valid = false
	l.Flags = 0
	slot, _ := c.Victim(addr, mask)
	if slot == nil {
		// Destination mask empty: restore in place.
		*l = saved
		return l, Line{}
	}
	evicted = *slot
	c.stamp++
	saved.LRU = c.stamp
	*slot = saved
	return slot, evicted
}

// OccupancyByOwner counts valid lines per owner in the ways enabled by mask,
// writing counts into out (keyed by owner ID); lines with owner -1 are
// skipped. Used by way-occupancy statistics.
func (c *Cache) OccupancyByOwner(mask WayMask, out map[int16]int) {
	for i := range c.sets {
		w := i % c.ways
		if !mask.Has(w) {
			continue
		}
		l := &c.sets[i]
		if l.Valid && l.Owner >= 0 {
			out[l.Owner]++
		}
	}
}

// CountValid returns the number of valid lines in the ways enabled by mask.
func (c *Cache) CountValid(mask WayMask) int {
	n := 0
	for i := range c.sets {
		if mask.Has(i%c.ways) && c.sets[i].Valid {
			n++
		}
	}
	return n
}

// ForEach visits every valid line; mutate with care.
func (c *Cache) ForEach(fn func(set, way int, l *Line)) {
	for i := range c.sets {
		if c.sets[i].Valid {
			fn(i/c.ways, i%c.ways, &c.sets[i])
		}
	}
}
