package directory

import "testing"

// This file pins the packed structure-of-arrays Directory against a
// reference reimplementation of the original array-of-structs design
// (stamp-based LRU, linear scans), driving both with the same
// deterministic op stream and comparing lookups, victim choices, and
// back-invalidation counts.

type refEntry struct {
	Addr  uint64
	Core  int16
	LRU   uint64
	Valid bool
}

type refDirectory struct {
	sets              []refEntry
	ways              int
	setMask           uint64
	stamp             uint64
	backInvalidations int64
}

func newRefDir(numSets, ways int) *refDirectory {
	return &refDirectory{
		sets:    make([]refEntry, numSets*ways),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
}

func (d *refDirectory) set(addr uint64) []refEntry {
	idx := int(addr&d.setMask) * d.ways
	return d.sets[idx : idx+d.ways]
}

func (d *refDirectory) lookup(addr uint64) int {
	s := d.set(addr)
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			return int(s[i].Core)
		}
	}
	return -1
}

func (d *refDirectory) track(addr uint64, core int16) (refEntry, bool) {
	s := d.set(addr)
	var lru *refEntry
	for i := range s {
		e := &s[i]
		if e.Valid && e.Addr == addr {
			e.Core = core
			d.stamp++
			e.LRU = d.stamp
			return refEntry{}, false
		}
		if !e.Valid {
			d.stamp++
			*e = refEntry{Addr: addr, Core: core, LRU: d.stamp, Valid: true}
			return refEntry{}, false
		}
		if lru == nil || e.LRU < lru.LRU {
			lru = e
		}
	}
	victim := *lru
	d.stamp++
	*lru = refEntry{Addr: addr, Core: core, LRU: d.stamp, Valid: true}
	d.backInvalidations++
	return victim, true
}

func (d *refDirectory) untrack(addr uint64) {
	s := d.set(addr)
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			s[i] = refEntry{}
			return
		}
	}
}

func (d *refDirectory) countValid() int {
	n := 0
	for i := range d.sets {
		if d.sets[i].Valid {
			n++
		}
	}
	return n
}

type opRNG uint64

func (r *opRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = opRNG(x)
	return x
}

func TestDirectoryEquivalence(t *testing.T) {
	const (
		numSets = 8
		ways    = 12
		steps   = 8000
	)
	d := New(numSets, ways)
	r := newRefDir(numSets, ways)
	rng := opRNG(0xD1AEC7)
	addrSpace := uint64(numSets * ways * 2)
	for step := 0; step < steps; step++ {
		addr := rng.next()%addrSpace + 1
		core := int16(rng.next() % 18)
		switch rng.next() % 10 {
		case 0, 1:
			d.Untrack(addr)
			r.untrack(addr)
		case 2:
			if got, want := d.Lookup(addr), r.lookup(addr); got != want {
				t.Fatalf("step %d: Lookup(%d) = %d, ref %d", step, addr, got, want)
			}
		default:
			gv, ge := d.Track(addr, core)
			rv, re := r.track(addr, core)
			if ge != re {
				t.Fatalf("step %d: Track evicted=%v, ref %v", step, ge, re)
			}
			if ge && (gv.Addr != rv.Addr || gv.Core != rv.Core || !gv.Valid) {
				t.Fatalf("step %d: Track victim %+v, ref %+v", step, gv, rv)
			}
		}
		if step%128 == 0 {
			if got, want := d.CountValid(), r.countValid(); got != want {
				t.Fatalf("step %d: CountValid = %d, ref %d", step, got, want)
			}
			if d.BackInvalidations != r.backInvalidations {
				t.Fatalf("step %d: BackInvalidations = %d, ref %d", step, d.BackInvalidations, r.backInvalidations)
			}
		}
	}
}
