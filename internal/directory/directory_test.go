package directory

import (
	"testing"
	"testing/quick"
)

func TestTrackLookupUntrack(t *testing.T) {
	d := New(4, 3)
	if core := d.Lookup(10); core != -1 {
		t.Fatalf("empty directory lookup = %d, want -1", core)
	}
	if _, ev := d.Track(10, 2); ev {
		t.Fatalf("tracking into empty set should not evict")
	}
	if core := d.Lookup(10); core != 2 {
		t.Fatalf("lookup = %d, want 2", core)
	}
	// Ownership transfer.
	if _, ev := d.Track(10, 3); ev {
		t.Fatalf("re-tracking should not evict")
	}
	if core := d.Lookup(10); core != 3 {
		t.Fatalf("after transfer lookup = %d, want 3", core)
	}
	d.Untrack(10)
	if core := d.Lookup(10); core != -1 {
		t.Fatalf("after untrack lookup = %d, want -1", core)
	}
	// Untracking a missing address is a no-op.
	d.Untrack(12345)
}

func TestBackInvalidationOnOverflow(t *testing.T) {
	d := New(1, 2) // one set, two entries
	d.Track(1, 0)
	d.Track(2, 1)
	victim, evicted := d.Track(3, 2)
	if !evicted {
		t.Fatalf("third entry must evict")
	}
	if victim.Addr != 1 || victim.Core != 0 {
		t.Errorf("expected LRU victim addr=1 core=0, got %+v", victim)
	}
	if d.BackInvalidations != 1 {
		t.Errorf("BackInvalidations = %d, want 1", d.BackInvalidations)
	}
	// The evicted address is gone; the others remain.
	if d.Lookup(1) != -1 || d.Lookup(2) != 1 || d.Lookup(3) != 2 {
		t.Errorf("post-eviction state wrong")
	}
}

func TestResetAndCount(t *testing.T) {
	d := New(8, 4)
	for a := uint64(0); a < 20; a++ {
		d.Track(a, int16(a%4))
	}
	if d.CountValid() == 0 {
		t.Fatalf("expected tracked entries")
	}
	d.Reset()
	if d.CountValid() != 0 || d.BackInvalidations != 0 {
		t.Errorf("reset incomplete")
	}
}

func TestDirectoryCapacityProperty(t *testing.T) {
	// Property: the directory never holds more than sets*ways entries, and
	// every tracked address is findable immediately after Track.
	d := New(4, 3)
	f := func(addrs []uint16, cores []uint8) bool {
		if len(cores) == 0 {
			return true
		}
		for i, a := range addrs {
			c := int16(cores[i%len(cores)] % 8)
			d.Track(uint64(a), c)
			if d.Lookup(uint64(a)) != int(c) {
				return false
			}
		}
		return d.CountValid() <= 4*3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 2}, {3, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", bad.sets, bad.ways)
				}
			}()
			New(bad.sets, bad.ways)
		}()
	}
}
