package directory

import "a4sim/internal/codec"

// EncodeState appends the directory's dynamic state: slot words, LRU
// permutations, valid bitmaps, the tracked-line count, and the
// back-invalidation diagnostic. Geometry is structural.
func (d *Directory) EncodeState(w *codec.Writer) {
	w.U64s(d.slots)
	w.U64s(d.order)
	w.U32s(d.used)
	w.Int(d.valid)
	w.I64(d.BackInvalidations)
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose geometry disagrees with the receiver's.
func (d *Directory) DecodeState(r *codec.Reader) {
	slots := r.U64s()
	order := r.U64s()
	used := r.U32s()
	valid := r.Int()
	backInv := r.I64()
	if r.Err() != nil {
		return
	}
	if len(slots) != len(d.slots) || len(order) != len(d.order) || len(used) != len(d.used) {
		r.Failf("directory: snapshot geometry mismatch (%d slots, directory has %d)", len(slots), len(d.slots))
		return
	}
	d.slots = slots
	d.order = order
	d.used = used
	d.valid = valid
	d.BackInvalidations = backInv
}
