// Package directory models the snoop-filter directory of Intel Skylake-SP's
// non-inclusive cache hierarchy, as reverse-engineered by Yan et al. (S&P'19)
// and relied on by the A4 paper: 11 traditional directory ways track lines
// resident in the LLC, and a 12-way extended directory tracks lines resident
// in the private MLCs. Two ways are shared between the groups; those shared
// entries are coupled one-to-one with the two "inclusive" LLC ways, which is
// why LLC-inclusive lines (cached in both LLC and an MLC) can live only in
// those two ways.
//
// The traditional directory is implicit in the LLC tag array; this package
// implements the extended directory: which MLC holds which line. Evicting an
// extended-directory entry back-invalidates the line from the owning MLC,
// the mechanism behind directory-conflict attacks and part of why inclusive
// ways are precious.
package directory

// Entry tracks one MLC-resident line.
type Entry struct {
	Addr  uint64
	Core  int16
	LRU   uint64
	Valid bool
}

// Directory is the extended (MLC-tracking) directory. Sets are indexed by
// the same hash as the LLC so directory pressure aligns with LLC sets.
type Directory struct {
	sets    []Entry // flattened [set][way]
	ways    int
	setMask uint64
	stamp   uint64

	// Hits/misses on directory lookups, for diagnostics.
	BackInvalidations int64
}

// New constructs a directory with numSets sets (power of two) and ways
// extended-directory ways (12 on Skylake-SP).
func New(numSets, ways int) *Directory {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("directory: numSets must be a positive power of two")
	}
	if ways <= 0 {
		panic("directory: ways must be positive")
	}
	return &Directory{
		sets:    make([]Entry, numSets*ways),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
}

func (d *Directory) set(addr uint64) []Entry {
	idx := int(addr&d.setMask) * d.ways
	return d.sets[idx : idx+d.ways]
}

// Lookup returns the core holding addr in its MLC, or -1 if untracked.
// Skylake MLCs are private and the simulator never shares a line across
// MLCs, so a single owner suffices.
func (d *Directory) Lookup(addr uint64) int {
	s := d.set(addr)
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			return int(s[i].Core)
		}
	}
	return -1
}

// Track records that core now holds addr in its MLC. If the directory set is
// full, the LRU entry is evicted and returned so the caller can
// back-invalidate the victim line from its MLC. ok is false when an eviction
// occurred.
func (d *Directory) Track(addr uint64, core int16) (victim Entry, evicted bool) {
	s := d.set(addr)
	var lru *Entry
	for i := range s {
		e := &s[i]
		if e.Valid && e.Addr == addr {
			// Ownership transfer (line moved between MLCs).
			e.Core = core
			d.stamp++
			e.LRU = d.stamp
			return Entry{}, false
		}
		if !e.Valid {
			d.stamp++
			*e = Entry{Addr: addr, Core: core, LRU: d.stamp, Valid: true}
			return Entry{}, false
		}
		if lru == nil || e.LRU < lru.LRU {
			lru = e
		}
	}
	victim = *lru
	d.stamp++
	*lru = Entry{Addr: addr, Core: core, LRU: d.stamp, Valid: true}
	d.BackInvalidations++
	return victim, true
}

// Untrack removes addr from the directory (MLC eviction or invalidation).
func (d *Directory) Untrack(addr uint64) {
	s := d.set(addr)
	for i := range s {
		if s[i].Valid && s[i].Addr == addr {
			s[i] = Entry{}
			return
		}
	}
}

// Reset clears all entries.
func (d *Directory) Reset() {
	for i := range d.sets {
		d.sets[i] = Entry{}
	}
	d.BackInvalidations = 0
}

// CountValid returns the number of tracked lines (for tests).
func (d *Directory) CountValid() int {
	n := 0
	for i := range d.sets {
		if d.sets[i].Valid {
			n++
		}
	}
	return n
}
