// Package directory models the snoop-filter directory of Intel Skylake-SP's
// non-inclusive cache hierarchy, as reverse-engineered by Yan et al. (S&P'19)
// and relied on by the A4 paper: 11 traditional directory ways track lines
// resident in the LLC, and a 12-way extended directory tracks lines resident
// in the private MLCs. Two ways are shared between the groups; those shared
// entries are coupled one-to-one with the two "inclusive" LLC ways, which is
// why LLC-inclusive lines (cached in both LLC and an MLC) can live only in
// those two ways.
//
// The traditional directory is implicit in the LLC tag array; this package
// implements the extended directory: which MLC holds which line. Evicting an
// extended-directory entry back-invalidates the line from the owning MLC,
// the mechanism behind directory-conflict attacks and part of why inclusive
// ways are precious.
//
// Storage mirrors internal/cache: one packed 64-bit word per entry (32-bit
// address tag plus the holding core; invalidTag marks empty slots) and a
// per-set LRU nibble permutation in a single uint64, so Lookup, Track, and
// Untrack stay within two cache lines per set and the whole directory stays
// resident in a host CPU's caches. Line addresses must fit in 32 bits;
// Track panics loudly if one does not.
package directory

import (
	"math/bits"

	"a4sim/internal/cache"
)

// invalidTag marks an empty slot's address bits; maxLineAddr is the largest
// representable line address.
const (
	invalidTag  = ^uint32(0)
	maxLineAddr = uint64(invalidTag) - 1
	invalidSlot = uint64(invalidTag)
	coreShift   = 32
)

// MaxWays is the highest supported associativity, bounded by the packed
// per-set LRU permutation shared with internal/cache.
const MaxWays = cache.MaxWays

// Entry is a copy of one tracked MLC-resident line.
type Entry struct {
	Addr  uint64
	Core  int16
	Valid bool
}

// Directory is the extended (MLC-tracking) directory. Sets are indexed by
// the same hash as the LLC so directory pressure aligns with LLC sets.
type Directory struct {
	slots   []uint64 // flattened [set][way]; packed entry or invalidSlot
	order   []uint64 // per-set LRU permutation, nibble 0 = MRU way
	used    []uint32 // per-set bitmask of valid ways
	ways    int
	setMask uint64
	valid   int // incremental count of tracked lines

	// Hits/misses on directory lookups, for diagnostics.
	BackInvalidations int64
}

// New constructs a directory with numSets sets (power of two) and ways
// extended-directory ways (12 on Skylake-SP).
func New(numSets, ways int) *Directory {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("directory: numSets must be a positive power of two")
	}
	if ways <= 0 || ways > MaxWays {
		panic("directory: ways must be in [1, 16]")
	}
	d := &Directory{
		slots:   make([]uint64, numSets*ways),
		order:   make([]uint64, numSets),
		used:    make([]uint32, numSets),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
	for i := range d.slots {
		d.slots[i] = invalidSlot
	}
	for i := range d.order {
		d.order[i] = cache.IdentityOrder
	}
	return d
}

// Clone returns an independent deep copy of the directory, including the
// tracked-line count and back-invalidation diagnostics, for the simulation
// snapshot/fork contract.
func (d *Directory) Clone() *Directory {
	return &Directory{
		slots:             append([]uint64(nil), d.slots...),
		order:             append([]uint64(nil), d.order...),
		used:              append([]uint32(nil), d.used...),
		ways:              d.ways,
		setMask:           d.setMask,
		valid:             d.valid,
		BackInvalidations: d.BackInvalidations,
	}
}

func pack(addr uint64, core int16) uint64 {
	return addr&0xFFFFFFFF | uint64(uint16(core))<<coreShift
}

func unpack(s uint64) Entry {
	return Entry{Addr: s & 0xFFFFFFFF, Core: int16(uint16(s >> coreShift)), Valid: true}
}

// Lookup returns the core holding addr in its MLC, or -1 if untracked.
// Skylake MLCs are private and the simulator never shares a line across
// MLCs, so a single owner suffices.
func (d *Directory) Lookup(addr uint64) int {
	if addr > maxLineAddr {
		return -1 // Track forbids such addresses, so none is tracked
	}
	base := int(addr&d.setMask) * d.ways
	slots := d.slots[base : base+d.ways]
	t32 := uint32(addr)
	for _, s := range slots {
		if uint32(s) == t32 {
			return int(int16(uint16(s >> coreShift)))
		}
	}
	return -1
}

// Track records that core now holds addr in its MLC. If the directory set is
// full, the LRU entry is evicted and returned so the caller can
// back-invalidate the victim line from its MLC. ok is false when an eviction
// occurred.
func (d *Directory) Track(addr uint64, core int16) (victim Entry, evicted bool) {
	if addr > maxLineAddr {
		panic("directory: line address exceeds the 32-bit tag range")
	}
	set := int(addr & d.setMask)
	base := set * d.ways
	slots := d.slots[base : base+d.ways]
	t32 := uint32(addr)
	// A historical quirk preserved from the scan-based implementation: the
	// single pass claimed the first invalid slot even when a matching entry
	// sat beyond it, so the match scan stops at the first free way.
	free := d.ways
	if inv := ^d.used[set] & (uint32(1)<<uint(d.ways) - 1); inv != 0 {
		free = bits.TrailingZeros32(inv)
	}
	for i := 0; i < free; i++ {
		if uint32(slots[i]) == t32 {
			// Ownership transfer (line moved between MLCs).
			slots[i] = pack(addr, core)
			d.order[set] = cache.PromoteMRU(d.order[set], i)
			return Entry{}, false
		}
	}
	if free < d.ways {
		slots[free] = pack(addr, core)
		d.order[set] = cache.PromoteMRU(d.order[set], free)
		d.used[set] |= 1 << uint(free)
		d.valid++
		return Entry{}, false
	}
	// Set full: evict the LRU entry (the permutation's last nibble).
	lru := int(d.order[set] >> uint(4*(d.ways-1)) & 0xF)
	victim = unpack(slots[lru])
	slots[lru] = pack(addr, core)
	d.order[set] = cache.PromoteMRU(d.order[set], lru)
	d.BackInvalidations++
	return victim, true
}

// Untrack removes addr from the directory (MLC eviction or invalidation).
func (d *Directory) Untrack(addr uint64) {
	if addr > maxLineAddr {
		return
	}
	base := int(addr&d.setMask) * d.ways
	slots := d.slots[base : base+d.ways]
	t32 := uint32(addr)
	for i, s := range slots {
		if uint32(s) == t32 {
			slots[i] = invalidSlot
			d.used[int(addr&d.setMask)] &^= 1 << uint(i)
			d.valid--
			return
		}
	}
}

// Reset clears all entries.
func (d *Directory) Reset() {
	for i := range d.slots {
		d.slots[i] = invalidSlot
	}
	for i := range d.order {
		d.order[i] = cache.IdentityOrder
		d.used[i] = 0
	}
	d.valid = 0
	d.BackInvalidations = 0
}

// CountValid returns the number of tracked lines (for tests).
func (d *Directory) CountValid() int { return d.valid }
