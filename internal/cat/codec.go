package cat

import (
	"a4sim/internal/cache"
	"a4sim/internal/codec"
)

// EncodeState appends the CAT state: every CLOS mask and the per-core CLOS
// associations. The core count and way count are structural.
func (a *Allocator) EncodeState(w *codec.Writer) {
	for _, m := range a.masks {
		w.U32(uint32(m))
	}
	w.Blob(a.clos)
}

// DecodeState restores state written by EncodeState, rejecting snapshots
// whose core count disagrees with the receiver's.
func (a *Allocator) DecodeState(r *codec.Reader) {
	var masks [MaxCLOS]cache.WayMask
	for i := range masks {
		masks[i] = cache.WayMask(r.U32())
	}
	clos := r.Blob()
	if r.Err() != nil {
		return
	}
	if len(clos) != len(a.clos) {
		r.Failf("cat: snapshot has %d cores, allocator has %d", len(clos), len(a.clos))
		return
	}
	a.masks = masks
	a.clos = clos
}
