package cat

import (
	"testing"

	"a4sim/internal/cache"
)

func TestDefaults(t *testing.T) {
	a := New(4, 11)
	if a.NumCores() != 4 || a.Ways() != 11 {
		t.Fatalf("geometry wrong")
	}
	full := cache.MaskAll(11)
	for c := 0; c < 4; c++ {
		if a.CLOSOf(c) != 0 {
			t.Errorf("core %d not in CLOS 0 at reset", c)
		}
		if a.MaskOf(c) != full {
			t.Errorf("core %d mask not full at reset", c)
		}
	}
}

func TestSetMaskValidation(t *testing.T) {
	a := New(2, 11)
	if err := a.SetMask(1, 0); err == nil {
		t.Errorf("empty mask must be rejected")
	}
	if err := a.SetMask(1, cache.MaskRange(0, 1)|cache.MaskRange(5, 6)); err == nil {
		t.Errorf("non-contiguous mask must be rejected")
	}
	if err := a.SetMask(1, cache.MaskRange(9, 12)); err == nil {
		t.Errorf("out-of-range mask must be rejected")
	}
	if err := a.SetMask(-1, cache.MaskRange(0, 1)); err == nil {
		t.Errorf("negative CLOS must be rejected")
	}
	if err := a.SetMask(MaxCLOS, cache.MaskRange(0, 1)); err == nil {
		t.Errorf("CLOS >= MaxCLOS must be rejected")
	}
	if err := a.SetMask(1, cache.MaskRange(2, 4)); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
	if a.Mask(1) != cache.MaskRange(2, 4) {
		t.Errorf("mask not stored")
	}
	if a.Mask(-3) != 0 || a.Mask(99) != 0 {
		t.Errorf("out-of-range Mask() should be 0")
	}
}

func TestAssociate(t *testing.T) {
	a := New(2, 11)
	if err := a.Associate(0, 3); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if a.CLOSOf(0) != 3 {
		t.Errorf("CLOSOf(0) = %d", a.CLOSOf(0))
	}
	if err := a.Associate(5, 1); err == nil {
		t.Errorf("out-of-range core must be rejected")
	}
	if err := a.Associate(0, 99); err == nil {
		t.Errorf("out-of-range CLOS must be rejected")
	}
	if a.CLOSOf(-1) != 0 || a.CLOSOf(9) != 0 {
		t.Errorf("out-of-range CLOSOf should default to 0")
	}
}

func TestSetWayRangeAndReset(t *testing.T) {
	a := New(2, 11)
	if err := a.SetWayRange(2, 9, 10); err != nil {
		t.Fatalf("SetWayRange: %v", err)
	}
	if err := a.Associate(1, 2); err != nil {
		t.Fatal(err)
	}
	if a.MaskOf(1) != cache.MaskRange(9, 10) {
		t.Errorf("MaskOf(1) = %#x", uint32(a.MaskOf(1)))
	}
	a.Reset()
	if a.CLOSOf(1) != 0 || a.Mask(2) != cache.MaskAll(11) {
		t.Errorf("reset incomplete")
	}
}
