// Package cat models Intel Cache Allocation Technology (CAT) as exposed by
// intel-cmt-cat/resctrl: classes of service (CLOS) each carrying a capacity
// bitmask over LLC ways, and a core-to-CLOS association. Real CAT requires
// contiguous non-empty masks; the model enforces the same restriction so the
// A4 controller cannot cheat.
//
// CAT semantics matter to A4 in one subtle way the paper calls out in §5.5:
// a mask change affects only *newly allocated* lines; resident lines stay
// where they are until naturally evicted. The model preserves this because
// masks gate victim selection only.
package cat

import (
	"fmt"

	"a4sim/internal/cache"
)

// MaxCLOS mirrors the 16 classes of service on Skylake-SP.
const MaxCLOS = 16

// Allocator is the CAT state: per-CLOS way masks and core associations.
type Allocator struct {
	ways  int
	masks [MaxCLOS]cache.WayMask
	clos  []uint8 // per-core CLOS
}

// New returns an allocator for numCores cores over an LLC with ways ways.
// All cores start in CLOS 0 with a full mask, matching hardware reset state.
func New(numCores, ways int) *Allocator {
	a := &Allocator{ways: ways, clos: make([]uint8, numCores)}
	full := cache.MaskAll(ways)
	for i := range a.masks {
		a.masks[i] = full
	}
	return a
}

// Clone returns an independent deep copy of the CAT state (masks and
// core-to-CLOS associations).
func (a *Allocator) Clone() *Allocator {
	n := &Allocator{ways: a.ways, masks: a.masks, clos: append([]uint8(nil), a.clos...)}
	return n
}

// NumCores returns the number of managed cores.
func (a *Allocator) NumCores() int { return len(a.clos) }

// Ways returns the LLC associativity the masks cover.
func (a *Allocator) Ways() int { return a.ways }

// SetMask programs the capacity bitmask of a CLOS. It rejects empty,
// non-contiguous, or out-of-range masks, like the real MSR interface.
func (a *Allocator) SetMask(clos int, m cache.WayMask) error {
	if clos < 0 || clos >= MaxCLOS {
		return fmt.Errorf("cat: CLOS %d out of range", clos)
	}
	if m == 0 {
		return fmt.Errorf("cat: empty capacity mask for CLOS %d", clos)
	}
	if !m.Contiguous() {
		return fmt.Errorf("cat: non-contiguous mask %#x for CLOS %d", uint32(m), clos)
	}
	if m&^cache.MaskAll(a.ways) != 0 {
		return fmt.Errorf("cat: mask %#x exceeds %d ways", uint32(m), a.ways)
	}
	a.masks[clos] = m
	return nil
}

// SetWayRange programs CLOS to cover ways [lo, hi] inclusive.
func (a *Allocator) SetWayRange(clos, lo, hi int) error {
	return a.SetMask(clos, cache.MaskRange(lo, hi))
}

// Mask returns the capacity bitmask of a CLOS.
func (a *Allocator) Mask(clos int) cache.WayMask {
	if clos < 0 || clos >= MaxCLOS {
		return 0
	}
	return a.masks[clos]
}

// Associate binds a core to a CLOS.
func (a *Allocator) Associate(core, clos int) error {
	if core < 0 || core >= len(a.clos) {
		return fmt.Errorf("cat: core %d out of range", core)
	}
	if clos < 0 || clos >= MaxCLOS {
		return fmt.Errorf("cat: CLOS %d out of range", clos)
	}
	a.clos[core] = uint8(clos)
	return nil
}

// CLOSOf returns the CLOS a core is associated with.
func (a *Allocator) CLOSOf(core int) int {
	if core < 0 || core >= len(a.clos) {
		return 0
	}
	return int(a.clos[core])
}

// MaskOf returns the effective allocation mask for a core.
func (a *Allocator) MaskOf(core int) cache.WayMask {
	return a.masks[a.CLOSOf(core)]
}

// Reset restores the hardware default: every CLOS full-mask, all cores in
// CLOS 0.
func (a *Allocator) Reset() {
	full := cache.MaskAll(a.ways)
	for i := range a.masks {
		a.masks[i] = full
	}
	for i := range a.clos {
		a.clos[i] = 0
	}
}
