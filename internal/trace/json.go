package trace

import "encoding/json"

// wireEvent is the canonical JSON shape of one controller event: the
// simulated-time offset in seconds plus the typed payload. Simulated time
// is deterministic, so event bodies — unlike span bodies — may carry it.
type wireEvent struct {
	AtSec   float64 `json:"at_s"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	A       int64   `json:"a"`
	B       int64   `json:"b"`
	Msg     string  `json:"msg,omitempty"`
}

// wireLog is the canonical body served by GET /trace/events/<hash>: the
// retained events oldest-first and how many older ones the ring dropped.
type wireLog struct {
	Events  []wireEvent `json:"events"`
	Dropped int64       `json:"dropped"`
}

// EncodeEvents renders events (oldest-first, as Events/Tail return them)
// and the ring's drop count as canonical JSON. Deterministic: the same
// simulated run always produces the same bytes.
func EncodeEvents(events []Event, dropped int64) ([]byte, error) {
	w := wireLog{Events: make([]wireEvent, len(events)), Dropped: dropped}
	for i, e := range events {
		w.Events[i] = wireEvent{
			AtSec:   e.At.Seconds(),
			Kind:    e.Kind.String(),
			Subject: e.Subject,
			A:       e.A,
			B:       e.B,
			Msg:     e.Msg,
		}
	}
	return json.Marshal(w)
}
