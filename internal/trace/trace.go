// Package trace provides a bounded, allocation-free event log for the
// simulator: controller decisions, DCA knob flips, zone changes, and
// workload phase events. Components append typed events; tools render the
// tail. Unlike fmt-based logging, recording is cheap enough to stay enabled
// inside the simulation loop.
package trace

import (
	"fmt"
	"strings"

	"a4sim/internal/sim"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KindAlloc    Kind = iota // CAT mask programmed
	KindDCA                  // DCA knob flipped
	KindDetect               // antagonist / phase detection
	KindZone                 // LP/HP zone movement
	KindWorkload             // workload lifecycle
	KindNote                 // free-form
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindDCA:
		return "dca"
	case KindDetect:
		return "detect"
	case KindZone:
		return "zone"
	case KindWorkload:
		return "workload"
	default:
		return "note"
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Tick
	Kind Kind
	// Subject names the affected entity (workload, port, CLOS).
	Subject string
	// A and B are event-specific integers (e.g. old/new mask).
	A, B int64
	Msg  string
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("[%8.3fs] %-8s %-12s a=%-6d b=%-6d %s",
		e.At.Seconds(), e.Kind, e.Subject, e.A, e.B, e.Msg)
}

// Log is a fixed-capacity ring of events.
type Log struct {
	buf   []Event
	next  int
	count int
	// Dropped counts events lost to capacity (always 0 until wrap).
	Dropped int64
}

// NewLog returns a log holding up to capacity events (default 4096).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Log{buf: make([]Event, capacity)}
}

// Add appends an event, overwriting the oldest when full.
func (l *Log) Add(e Event) {
	if l.count == len(l.buf) {
		l.Dropped++
	} else {
		l.count++
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
}

// Addf appends a formatted note-style event.
func (l *Log) Addf(at sim.Tick, kind Kind, subject, format string, args ...any) {
	l.Add(Event{At: at, Kind: kind, Subject: subject, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained events.
func (l *Log) Len() int { return l.count }

// Events returns retained events oldest-first.
func (l *Log) Events() []Event {
	out := make([]Event, 0, l.count)
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Tail returns the most recent n events, oldest-first.
func (l *Log) Tail(n int) []Event {
	ev := l.Events()
	if n >= len(ev) {
		return ev
	}
	return ev[len(ev)-n:]
}

// Filter returns retained events of the given kind, oldest-first.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole log.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
