package trace

import (
	"strings"
	"testing"

	"a4sim/internal/sim"
)

func TestAddAndEvents(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Add(Event{At: sim.Tick(i), Kind: KindZone, Subject: "lp", A: int64(i)})
	}
	if l.Len() != 3 || l.Dropped != 0 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
	ev := l.Events()
	for i, e := range ev {
		if e.A != int64(i) {
			t.Fatalf("order wrong at %d: %+v", i, e)
		}
	}
}

func TestRingOverwrite(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Add(Event{A: int64(i)})
	}
	if l.Len() != 3 || l.Dropped != 2 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
	ev := l.Events()
	if ev[0].A != 2 || ev[2].A != 4 {
		t.Fatalf("oldest-first order wrong: %+v", ev)
	}
}

func TestTailAndFilter(t *testing.T) {
	l := NewLog(10)
	l.Add(Event{Kind: KindDCA, A: 1})
	l.Add(Event{Kind: KindZone, A: 2})
	l.Add(Event{Kind: KindDCA, A: 3})
	if tail := l.Tail(2); len(tail) != 2 || tail[1].A != 3 {
		t.Fatalf("tail wrong: %+v", tail)
	}
	if tail := l.Tail(99); len(tail) != 3 {
		t.Fatalf("oversized tail should return all")
	}
	dca := l.Filter(KindDCA)
	if len(dca) != 2 || dca[0].A != 1 || dca[1].A != 3 {
		t.Fatalf("filter wrong: %+v", dca)
	}
}

func TestAddfAndString(t *testing.T) {
	l := NewLog(0) // default capacity
	l.Addf(sim.TicksPerSecond, KindDetect, "fio", "leak rate %.2f", 0.5)
	out := l.String()
	if !strings.Contains(out, "detect") || !strings.Contains(out, "leak rate 0.50") {
		t.Errorf("rendered log missing content: %q", out)
	}
	for _, k := range []Kind{KindAlloc, KindDCA, KindDetect, KindZone, KindWorkload, KindNote} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}
