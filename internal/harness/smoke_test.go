package harness

import (
	"testing"

	"a4sim/internal/cache"
	"a4sim/internal/workload"
)

// TestSmokeFig3Point reproduces one point of Fig. 3b manually: DPDK-T at
// way[5:6], X-Mem at way[9:10] (the directory-contention position), and
// checks that the basic plumbing produces sane metrics.
func TestSmokeFig3Point(t *testing.T) {
	p := DefaultParams()
	p.RateScale = 256
	s := NewScenario(p)
	dpdk := s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	xmem := s.AddXMem("xmem", []int{4, 5}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(Default())
	// Manual CAT, as in §3.1.
	must(t, s.H.CAT().SetMask(1, cache.MaskRange(5, 6)))
	for _, c := range dpdk.Cores() {
		must(t, s.H.CAT().Associate(c, 1))
	}
	must(t, s.H.CAT().SetMask(2, cache.MaskRange(9, 10)))
	for _, c := range xmem.Cores() {
		must(t, s.H.CAT().Associate(c, 2))
	}
	res := s.Run(2, 3)
	xr := res.W("xmem")
	dr := res.W("dpdk-t")
	t.Logf("xmem: llcMiss=%.3f mlcMiss=%.3f ipc=%.3f", xr.LLCMissRate, xr.MLCMissRate, xr.IPC)
	t.Logf("dpdk: miss=%.3f avgLat=%.1fus p99=%.1fus tput=%.0f pkt/s leak=%d",
		dr.LLCMissRate, dr.AvgLatUs, dr.P99LatUs, dr.ProgressRate, dr.DMALeaks)
	t.Logf("mem rd=%.2f wr=%.2f GB/s, nic in=%.2f GB/s", res.MemReadGBps, res.MemWriteGBps, res.PortInGBps["nic0"])
	if xr.LLCMissRate <= 0.05 {
		t.Errorf("expected directory contention to raise X-Mem miss rate at way[9:10], got %.3f", xr.LLCMissRate)
	}
	if dr.ProgressRate <= 0 {
		t.Errorf("DPDK made no progress")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
