package harness

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"a4sim/internal/core"
	"a4sim/internal/workload"
)

// monitorTestScenario builds a small, fast scenario exercising the NIC,
// the SSD, and a compute workload.
func monitorTestScenario(mgr ManagerSpec, opts SeriesOpts) *Scenario {
	p := DefaultParams()
	p.RateScale = 8192
	s := NewScenario(p)
	s.AddDPDK("dpdk-t", []int{0, 1}, true, workload.HPW)
	s.AddFIO("fio", []int{2, 3}, 128<<10, 16, workload.LPW)
	s.AddXMem("xmem", []int{4}, 4<<20, workload.Random, false, workload.LPW)
	s.Start(mgr)
	s.Monitor.EnableSeries(opts)
	return s
}

// A zero-length measurement window (BeginMeasure immediately followed by
// EndMeasure) must produce a well-formed zero Result and an empty series —
// no NaNs, no divide-by-zero, no phantom port entries.
func TestZeroLengthMeasurementWindow(t *testing.T) {
	s := monitorTestScenario(Default(), SeriesOpts{Devices: true, Occupancy: true, Export: true})
	s.Warm(1)
	s.BeginMeasure()
	res := s.EndMeasure()

	if res.Seconds != 1 {
		t.Errorf("Seconds = %g, want the 1 s clamp", res.Seconds)
	}
	if len(res.PortInGBps) != 0 || len(res.PortOutGBps) != 0 {
		t.Errorf("zero window should leave port maps empty, got %v / %v", res.PortInGBps, res.PortOutGBps)
	}
	if res.MemReadGBps != 0 || res.MemWriteGBps != 0 {
		t.Errorf("zero window memory BW = %g/%g, want 0", res.MemReadGBps, res.MemWriteGBps)
	}
	if len(res.Workloads) != 3 {
		t.Fatalf("zero window should still report all %d workloads, got %d", 3, len(res.Workloads))
	}
	for name, wr := range res.Workloads {
		v := reflect.ValueOf(*wr)
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() == reflect.Float64 && math.IsNaN(f.Float()) {
				t.Errorf("workload %s field %s is NaN", name, v.Type().Field(i).Name)
			}
		}
		if wr.IPC != 0 || wr.LLCHitRate != 0 {
			t.Errorf("workload %s has nonzero rates in a zero window: %+v", name, wr)
		}
	}
	if res.Series == nil {
		t.Fatal("exporting monitor returned no series")
	}
	if res.Series.Len() != 0 {
		t.Errorf("zero window series has %d rows, want 0", res.Series.Len())
	}
	if _, err := res.Series.Encode(); err != nil {
		t.Errorf("empty series does not encode: %v", err)
	}
}

// The aggregates of a measured window must be exact reductions of the
// per-second series: means are column sums over the row count, counts are
// exact integer sums.
func TestResultIsSeriesReduction(t *testing.T) {
	s := monitorTestScenario(A4(core.VariantD), SeriesOpts{Devices: true, Occupancy: true, Controller: true, Export: true})
	s.Warm(1)
	s.BeginMeasure()
	s.Measure(3)
	res := s.EndMeasure()

	ser := res.Series
	if ser == nil || ser.Len() != 3 {
		t.Fatalf("series rows = %v, want 3", ser)
	}
	if got := ser.Sum("mem.rd_gbps") / 3; got != res.MemReadGBps {
		t.Errorf("mem read reduction %v != result %v", got, res.MemReadGBps)
	}
	for name, wr := range res.Workloads {
		if got := ser.Sum("wl."+name+".ipc") / 3; got != wr.IPC {
			t.Errorf("%s ipc reduction %v != result %v", name, got, wr.IPC)
		}
		if got := ser.SumInt("wl." + name + ".dma_leaks"); got != wr.DMALeaks {
			t.Errorf("%s dma_leaks reduction %d != result %d", name, got, wr.DMALeaks)
		}
	}
	for port, v := range res.PortInGBps {
		if got := ser.Sum("port."+port+".in_gbps") / 3; got != v {
			t.Errorf("port %s reduction %v != result %v", port, got, v)
		}
	}
	// Extended groups are present and plausible.
	if ser.Column("nic.ring_depth") == nil || ser.Column("ssd.queue_depth") == nil {
		t.Error("devices group missing")
	}
	if ser.Column("wl.dpdk-t.llc_lines") == nil {
		t.Error("occupancy group missing")
	}
	if st := ser.Column("a4.state"); len(st) != 3 {
		t.Errorf("controller group missing or short: %v", st)
	} else {
		for _, v := range st {
			if v < 0 || v > 3 {
				t.Errorf("a4.state out of range: %v", st)
			}
		}
	}
	var lines float64
	for _, v := range ser.Column("wl.xmem.llc_lines") {
		lines += v
	}
	if lines <= 0 {
		t.Error("xmem held no LLC lines over 3 measured seconds")
	}
}

// A window split by a fork must close on the fork with a series
// byte-identical to an uninterrupted run's: the fork clones the open
// window's rows and delta baselines, and appended seconds line up exactly.
func TestForkedWindowSeriesByteIdentical(t *testing.T) {
	opts := SeriesOpts{Devices: true, Occupancy: true, Controller: true, Export: true}

	whole := monitorTestScenario(A4(core.VariantD), opts)
	whole.Warm(2)
	whole.BeginMeasure()
	whole.Measure(4)
	wholeRes := whole.EndMeasure()

	split := monitorTestScenario(A4(core.VariantD), opts)
	split.Warm(2)
	split.BeginMeasure()
	split.Measure(2)
	forked := split.Fork()
	forked.Measure(2)
	forkRes := forked.EndMeasure()

	a, err := wholeRes.Series.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := forkRes.Series.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("forked-window series differs from uninterrupted run\nwhole: %.200s\nfork:  %.200s", a, b)
	}
	// The original keeps its own window open and unaffected by the fork.
	split.Measure(2)
	origRes := split.EndMeasure()
	c, err := origRes.Series.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Errorf("fork corrupted the original's window series")
	}
}
