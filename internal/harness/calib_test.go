package harness

import (
	"testing"

	"a4sim/internal/cache"
	"a4sim/internal/workload"
)

// buildFig3 constructs the §3.1 microbenchmark: a DPDK variant at way[5:6]
// and X-Mem (4 MB sequential read, 2 cores) at way[xlo:xlo+1].
func buildFig3(t *testing.T, touch bool, xlo int, dcaOn bool) *Result {
	t.Helper()
	p := DefaultParams()
	p.RateScale = 256
	s := NewScenario(p)
	d := s.AddDPDK("dpdk", []int{0, 1, 2, 3}, touch, workload.HPW)
	x := s.AddXMem("xmem", []int{4, 5}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(Default())
	if !dcaOn {
		s.H.PCIe().SetGlobalDCA(false)
	}
	pin(t, s, d.Cores(), 1, 5, 6)
	pin(t, s, x.Cores(), 2, xlo, xlo+1)
	return s.Run(2, 3)
}

func pin(t *testing.T, s *Scenario, cores []int, clos, lo, hi int) {
	t.Helper()
	if err := s.H.CAT().SetMask(clos, cache.MaskRange(lo, hi)); err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		if err := s.H.CAT().Associate(c, clos); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCalibFig3Contrasts checks the contention positions of Fig. 3a/3b.
func TestCalibFig3Contrasts(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	type pt struct {
		touch bool
		xlo   int
	}
	cases := []pt{
		{false, 0}, {false, 3}, {false, 5}, {false, 9},
		{true, 0}, {true, 3}, {true, 5}, {true, 9},
	}
	miss := map[pt]float64{}
	for _, c := range cases {
		r := buildFig3(t, c.touch, c.xlo, true)
		miss[c] = r.W("xmem").LLCMissRate
		t.Logf("touch=%v xmem@[%d:%d]: xmemMiss=%.3f dpdkLat=%.1fus dpdkTput=%.0f memRd=%.1f",
			c.touch, c.xlo, c.xlo+1, miss[c], r.W("dpdk").AvgLatUs, r.W("dpdk").ProgressRate, r.MemReadGBps)
	}
	// Fig 3a (DPDK-NT): only the DCA overlap position contends.
	if !(miss[pt{false, 0}] > miss[pt{false, 3}]+0.1) {
		t.Errorf("latent contention missing: NT@[0:1]=%.3f vs [3:4]=%.3f", miss[pt{false, 0}], miss[pt{false, 3}])
	}
	if miss[pt{false, 9}] > miss[pt{false, 3}]+0.1 {
		t.Errorf("unexpected directory contention with DPDK-NT: [9:10]=%.3f vs [3:4]=%.3f", miss[pt{false, 9}], miss[pt{false, 3}])
	}
	// Fig 3b (DPDK-T): DCA overlap, bloat overlap, and inclusive ways all
	// contend. The latent effect is weaker than with DPDK-NT because
	// consumption continuously frees DCA slots (see EXPERIMENTS.md).
	if !(miss[pt{true, 0}] > miss[pt{true, 3}]+0.05) {
		t.Errorf("latent contention missing with DPDK-T")
	}
	if !(miss[pt{true, 5}] > miss[pt{true, 3}]+0.1) {
		t.Errorf("DMA bloat contention missing: T@[5:6]=%.3f vs [3:4]=%.3f", miss[pt{true, 5}], miss[pt{true, 3}])
	}
	if !(miss[pt{true, 9}] > miss[pt{true, 3}]+0.1) {
		t.Errorf("directory contention missing: T@[9:10]=%.3f vs [3:4]=%.3f", miss[pt{true, 9}], miss[pt{true, 3}])
	}
}

// TestCalibFig4DCAOff checks that disabling DCA removes the directory
// contention but raises DPDK-T latency.
func TestCalibFig4DCAOff(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	on := buildFig3(t, true, 9, true)
	off := buildFig3(t, true, 9, false)
	t.Logf("DCA on : xmemMiss=%.3f dpdkLat=%.1f/%.1fus tput=%.0f", on.W("xmem").LLCMissRate, on.W("dpdk").AvgLatUs, on.W("dpdk").P99LatUs, on.W("dpdk").ProgressRate)
	t.Logf("DCA off: xmemMiss=%.3f dpdkLat=%.1f/%.1fus tput=%.0f", off.W("xmem").LLCMissRate, off.W("dpdk").AvgLatUs, off.W("dpdk").P99LatUs, off.W("dpdk").ProgressRate)
	if !(off.W("xmem").LLCMissRate < on.W("xmem").LLCMissRate-0.1) {
		t.Errorf("DCA off should remove directory contention")
	}
	if !(off.W("dpdk").P99LatUs > on.W("dpdk").P99LatUs) {
		t.Errorf("DCA off should raise DPDK-T tail latency")
	}
}

// TestCalibFig5Storage checks the storage characteristics: throughput is
// DCA-insensitive at large blocks and memory reads stay high despite DCA
// (DMA leak).
func TestCalibFig5Storage(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	run := func(blockKB int, dcaOn bool) *Result {
		p := DefaultParams()
		p.RateScale = 256
		s := NewScenario(p)
		f := s.AddFIO("fio", []int{0, 1, 2, 3}, blockKB<<10, 32, workload.LPW)
		s.Start(Default())
		if !dcaOn {
			s.H.PCIe().SetGlobalDCA(false)
		}
		pin(t, s, f.Cores(), 1, 2, 3)
		return s.Run(2, 3)
	}
	for _, kb := range []int{4, 32, 128, 512, 2048} {
		on := run(kb, true)
		off := run(kb, false)
		t.Logf("block=%4dKB: TP on=%.2f off=%.2f GB/s, memRd on=%.2f off=%.2f, leakRate=%.2f dcaMiss=%.2f",
			kb, on.W("fio").IOReadGBps, off.W("fio").IOReadGBps,
			on.MemReadGBps, off.MemReadGBps, on.W("fio").LeakRate, on.W("fio").DCAMissRate)
	}
	on := run(512, true)
	off := run(512, false)
	if Fluct(on.W("fio").IOReadGBps, off.W("fio").IOReadGBps) > 0.15 {
		t.Errorf("storage throughput should be DCA-insensitive at large blocks: on=%.2f off=%.2f",
			on.W("fio").IOReadGBps, off.W("fio").IOReadGBps)
	}
	if on.MemReadGBps < 0.3*on.W("fio").IOReadGBps {
		t.Errorf("DMA leak should keep memory reads high with DCA on: memRd=%.2f tp=%.2f",
			on.MemReadGBps, on.W("fio").IOReadGBps)
	}
}

// TestCalibFig6Contention checks that FIO co-running raises DPDK-T latency,
// peaking at intermediate block sizes.
func TestCalibFig6Contention(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	run := func(blockKB int) *Result {
		p := DefaultParams()
		p.RateScale = 256
		s := NewScenario(p)
		d := s.AddDPDK("dpdk", []int{0, 1, 2, 3}, true, workload.HPW)
		f := s.AddFIO("fio", []int{4, 5, 6, 7}, blockKB<<10, 32, workload.LPW)
		s.Start(Default())
		pin(t, s, f.Cores(), 1, 2, 3)
		pin(t, s, d.Cores(), 2, 4, 5)
		return s.Run(2, 3)
	}
	solo := buildFig3(t, true, 9, true) // approx solo reference
	t.Logf("solo-ish: lat=%.1fus", solo.W("dpdk").AvgLatUs)
	for _, kb := range []int{16, 64, 128, 512, 2048} {
		r := run(kb)
		t.Logf("block=%4dKB: dpdkLat=%.1f/%.1fus tput=%.0f fioTP=%.2f memRd=%.1f",
			kb, r.W("dpdk").AvgLatUs, r.W("dpdk").P99LatUs, r.W("dpdk").ProgressRate, r.W("fio").IOReadGBps, r.MemReadGBps)
	}
}
