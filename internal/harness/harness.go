// Package harness assembles full experiments: it wires the simulated
// hierarchy, devices, and workloads into a sim.Engine, attaches an LLC
// manager (Default, Isolate, or an A4 variant), runs warm-up and
// measurement windows, and reports the metrics the paper's figures plot.
package harness

import (
	"fmt"
	"math"

	"a4sim/internal/baseline"
	"a4sim/internal/core"
	"a4sim/internal/hierarchy"
	"a4sim/internal/mem"
	"a4sim/internal/nic"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/ssd"
	"a4sim/internal/workload"
)

// Params are the global experiment knobs. Zero fields take defaults from
// DefaultParams.
type Params struct {
	// RateScale divides every real-world rate (see DESIGN.md §4).
	RateScale float64
	Seed      uint64
	Hierarchy hierarchy.Config

	// NICGbps is the offered network load (paper: 100 Gbps ConnectX-6).
	NICGbps     float64
	PacketBytes int
	RingEntries int
	// NICBurstPeriod/NICBurstDuty shape packet arrivals (see nic.Config);
	// the defaults reproduce generator burstiness so receive rings carry
	// realistic queue depths.
	NICBurstPeriod sim.Tick
	NICBurstDuty   float64

	// SSDGBps is the RAID-0 array's saturation bandwidth (paper: ~13 GB/s
	// behind PCIe Gen3 x16).
	SSDGBps          float64
	SSDOverheadLines int
	// SSDParallelism is the array's internal concurrency window (lanes).
	SSDParallelism int

	// Sample is the sampled-execution schedule. The zero value runs every
	// epoch in detail (the default, byte-identical to pre-sampling builds).
	Sample SampleSpec
}

// SampleSpec schedules sampled execution inside measurement windows: of
// every PeriodUs microseconds of measured time, the first DetailUs run in
// full detail and the remainder fast-forwards (sim.FastForwarder). Warm-up
// is always detailed, and the schedule's phase is anchored at BeginMeasure,
// so a window always opens with a detailed interval and a forked
// continuation stays aligned with the run it forked from. The zero value
// disables sampling.
type SampleSpec struct {
	// DetailUs is the detailed interval per period, in simulated µs. It must
	// be a positive whole number of epochs (multiples of 1000 µs).
	DetailUs int64
	// PeriodUs is the schedule period in simulated µs: a whole number of
	// seconds (multiples of 1 000 000), at least DetailUs. DetailUs equal to
	// PeriodUs degenerates to fully detailed execution.
	PeriodUs int64
}

// Enabled reports whether the spec schedules any sampling.
func (sp SampleSpec) Enabled() bool { return sp.DetailUs > 0 || sp.PeriodUs > 0 }

// Validate checks the schedule's alignment constraints.
func (sp SampleSpec) Validate() error {
	if !sp.Enabled() {
		return nil
	}
	if sp.DetailUs < sim.TicksPerEpoch || sp.DetailUs%sim.TicksPerEpoch != 0 {
		return fmt.Errorf("harness: sampling detail_us %d must be a positive multiple of %d", sp.DetailUs, sim.TicksPerEpoch)
	}
	if sp.PeriodUs < sim.TicksPerSecond || sp.PeriodUs%sim.TicksPerSecond != 0 {
		return fmt.Errorf("harness: sampling period_us %d must be a positive multiple of %d", sp.PeriodUs, sim.TicksPerSecond)
	}
	if sp.DetailUs > sp.PeriodUs {
		return fmt.Errorf("harness: sampling detail_us %d exceeds period_us %d", sp.DetailUs, sp.PeriodUs)
	}
	return nil
}

// DefaultParams mirrors the Table 1 testbed.
func DefaultParams() Params {
	return Params{
		RateScale:        256,
		Seed:             1,
		Hierarchy:        hierarchy.SkylakeConfig(),
		NICGbps:          100,
		PacketBytes:      1024,
		RingEntries:      2048,
		NICBurstDuty:     0.25,
		SSDGBps:          13,
		SSDOverheadLines: 320,
		SSDParallelism:   64,
	}
}

// NICPort and SSDPort are the PCIe port indices of SkylakeConfig.
const (
	NICPort = 0
	SSDPort = 1
)

// ManagerKind selects the LLC management scheme under test.
type ManagerKind int

// Manager kinds.
const (
	ManagerDefault ManagerKind = iota
	ManagerIsolate
	ManagerA4
)

// ManagerSpec fully describes a manager configuration.
type ManagerSpec struct {
	Kind ManagerKind
	// A4 holds the controller configuration when Kind == ManagerA4.
	A4 core.Config
}

// Default returns the share-everything baseline.
func Default() ManagerSpec { return ManagerSpec{Kind: ManagerDefault} }

// Isolate returns the static-partitioning baseline.
func Isolate() ManagerSpec { return ManagerSpec{Kind: ManagerIsolate} }

// A4 returns an A4 manager with the given feature set and default
// thresholds/timing.
func A4(features core.Feature) ManagerSpec {
	cfg := core.DefaultConfig()
	cfg.Features = features
	return ManagerSpec{Kind: ManagerA4, A4: cfg}
}

// A4With returns an A4 manager with a fully custom configuration.
func A4With(cfg core.Config) ManagerSpec { return ManagerSpec{Kind: ManagerA4, A4: cfg} }

// Name labels the spec for tables.
func (m ManagerSpec) Name() string {
	switch m.Kind {
	case ManagerDefault:
		return "default"
	case ManagerIsolate:
		return "isolate"
	default:
		switch m.A4.Features {
		case core.VariantA:
			return "a4-a"
		case core.VariantB:
			return "a4-b"
		case core.VariantC:
			return "a4-c"
		case core.VariantD:
			return "a4-d"
		default:
			return "a4"
		}
	}
}

// Scenario is one experiment under construction.
type Scenario struct {
	P      Params
	Engine *sim.Engine
	H      *hierarchy.Hierarchy
	Fabric *pcm.Fabric
	Alloc  *mem.AddressSpace
	NIC    *nic.NIC
	SSD    *ssd.SSD

	Workloads []workload.Workload
	Infos     []core.WorkloadInfo

	Monitor    *Monitor
	Controller *core.Controller

	rng     *sim.RNG
	started bool
	// measureStart anchors the sampling schedule's phase: set by
	// BeginMeasure, carried by fork and snapshot, so split and forked
	// measurement windows keep the exact detailed/skipped interval sequence
	// of an uninterrupted run.
	measureStart sim.Tick
}

// NewScenario builds an empty scenario environment.
func NewScenario(p Params) *Scenario {
	d := DefaultParams()
	if p.RateScale <= 0 {
		p.RateScale = d.RateScale
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Hierarchy.NumCores == 0 {
		p.Hierarchy = d.Hierarchy
	}
	if p.NICGbps <= 0 {
		p.NICGbps = d.NICGbps
	}
	if p.PacketBytes <= 0 {
		p.PacketBytes = d.PacketBytes
	}
	if p.RingEntries <= 0 {
		p.RingEntries = d.RingEntries
	}
	if p.SSDGBps <= 0 {
		p.SSDGBps = d.SSDGBps
	}
	if p.SSDOverheadLines <= 0 {
		p.SSDOverheadLines = d.SSDOverheadLines
	}
	if p.SSDParallelism <= 0 {
		p.SSDParallelism = d.SSDParallelism
	}
	// Burst shaping defaults to the generator-like profile. The period
	// scales with RateScale so that burst backlogs (in packets) are
	// invariant under rate scaling; a negative period requests smooth
	// arrivals explicitly.
	if p.NICBurstPeriod == 0 {
		p.NICBurstPeriod = sim.Tick(391 * p.RateScale) // 100 ms at scale 256
		if p.NICBurstDuty <= 0 {
			p.NICBurstDuty = d.NICBurstDuty
		}
	} else if p.NICBurstPeriod < 0 {
		p.NICBurstPeriod = 0
	}

	fabric := pcm.NewFabric(p.RateScale)
	s := &Scenario{
		P:      p,
		Engine: sim.NewEngine(p.Seed),
		Fabric: fabric,
		H:      hierarchy.New(p.Hierarchy, fabric),
		Alloc:  mem.NewAddressSpace(),
	}
	s.rng = s.Engine.RNG().Fork()
	s.Monitor = NewMonitor(s)
	return s
}

// nicLinesPerSec converts the offered Gbps into scaled lines/second.
func (s *Scenario) nicLinesPerSec() float64 {
	return s.P.NICGbps * 1e9 / 8 / mem.LineBytes / s.P.RateScale
}

// ssdLinesPerSec converts the array bandwidth into scaled lines/second.
func (s *Scenario) ssdLinesPerSec() float64 {
	return s.P.SSDGBps * 1e9 / mem.LineBytes / s.P.RateScale
}

// EnsureNIC lazily creates the NIC with numRings rings; the NIC's DMA
// traffic is attributed to wl.
func (s *Scenario) EnsureNIC(numRings int, wl pcm.WorkloadID) *nic.NIC {
	if s.NIC != nil {
		return s.NIC
	}
	s.NIC = nic.New(nic.Config{
		Name:        "nic0",
		Port:        NICPort,
		LinesPerSec: s.nicLinesPerSec(),
		PacketBytes: s.P.PacketBytes,
		RingEntries: s.P.RingEntries,
		NumRings:    numRings,
		BurstPeriod: s.P.NICBurstPeriod,
		BurstDuty:   s.P.NICBurstDuty,
	}, s.H, wl, s.Alloc)
	s.Engine.AddActor(s.NIC)
	return s.NIC
}

// EnsureSSD lazily creates the SSD array.
func (s *Scenario) EnsureSSD() *ssd.SSD {
	if s.SSD != nil {
		return s.SSD
	}
	s.SSD = ssd.New(ssd.Config{
		Name:          "ssd0",
		Port:          SSDPort,
		LinesPerSec:   s.ssdLinesPerSec(),
		OverheadLines: s.P.SSDOverheadLines,
		ChunkLines:    64,
		Parallelism:   s.P.SSDParallelism,
	}, s.H)
	s.Engine.AddActor(s.SSD)
	return s.SSD
}

// register adds a constructed workload to the scenario.
func (s *Scenario) register(w workload.Workload, prio workload.Priority) {
	s.Workloads = append(s.Workloads, w)
	s.Infos = append(s.Infos, core.WorkloadInfo{
		ID:       w.ID(),
		Name:     w.Name(),
		Cores:    w.Cores(),
		Class:    w.Class(),
		Port:     w.Port(),
		Priority: prio,
	})
	s.Engine.AddActor(w)
}

// AddDPDK adds a DPDK-T (touch=true) or DPDK-NT workload on the given
// cores, creating the NIC on demand.
func (s *Scenario) AddDPDK(name string, cores []int, touch bool, prio workload.Priority) *workload.DPDK {
	id := s.Fabric.Register(name)
	n := s.EnsureNIC(len(cores), id)
	d := workload.NewDPDK(workload.DPDKConfig{
		Name:        name,
		Cores:       cores,
		Touch:       touch,
		InstrPerPkt: 800,
		CPIBase:     0.5,
		Overlap:     4,
		RateScale:   s.P.RateScale,
	}, s.H, n, id)
	s.register(d, prio)
	return d
}

// AddFastclick adds the Fastclick proxy.
func (s *Scenario) AddFastclick(cores []int, prio workload.Priority) *workload.DPDK {
	id := s.Fabric.Register("fastclick")
	n := s.EnsureNIC(len(cores), id)
	d := workload.NewFastclick(cores, s.H, n, id, s.P.RateScale)
	s.register(d, prio)
	return d
}

// AddFIO adds the FIO workload with the given block size.
func (s *Scenario) AddFIO(name string, cores []int, blockBytes, queueDepth int, prio workload.Priority) *workload.FIO {
	id := s.Fabric.Register(name)
	dev := s.EnsureSSD()
	f := workload.NewFIO(workload.FIOConfig{
		Name:         name,
		Cores:        cores,
		BlockBytes:   blockBytes,
		QueueDepth:   queueDepth,
		InstrPerLine: 4,
		CPIBase:      0.5,
		Overlap:      8,
		RateScale:    s.P.RateScale,
	}, s.H, dev, id, s.Alloc, s.rng.Fork())
	s.register(f, prio)
	return f
}

// AddFFSB adds the FFSB-H (heavy=true) or FFSB-L proxy.
func (s *Scenario) AddFFSB(name string, heavy bool, cores []int, prio workload.Priority) *workload.FIO {
	id := s.Fabric.Register(name)
	dev := s.EnsureSSD()
	f := workload.NewFFSB(name, heavy, cores, s.H, dev, id, s.Alloc, s.rng.Fork(), s.P.RateScale)
	s.register(f, prio)
	return f
}

// AddXMem adds an X-Mem instance.
func (s *Scenario) AddXMem(name string, cores []int, wsBytes int64, pattern workload.Pattern, write bool, prio workload.Priority) *workload.Synthetic {
	x := workload.NewXMem(workload.XMemConfig{
		Name:      name,
		Cores:     cores,
		WSBytes:   wsBytes,
		Pattern:   pattern,
		Write:     write,
		RateScale: s.P.RateScale,
	}, s.H, s.Alloc, s.rng.Fork())
	s.register(x, prio)
	return x
}

// AddSPEC adds a single-core SPEC CPU2017 proxy.
func (s *Scenario) AddSPEC(bench string, core int, prio workload.Priority) *workload.Synthetic {
	w, err := workload.NewSPEC(bench, core, s.H, s.Alloc, s.rng.Fork(), s.P.RateScale)
	if err != nil {
		panic(err)
	}
	s.register(w, prio)
	return w
}

// AddRedisPair adds Redis-S and Redis-C on two cores.
func (s *Scenario) AddRedisPair(serverCore, clientCore int, prioS, prioC workload.Priority) (*workload.Synthetic, *workload.Synthetic) {
	srv := workload.NewRedisServer(serverCore, s.H, s.Alloc, s.rng.Fork(), s.P.RateScale)
	s.register(srv, prioS)
	cli := workload.NewRedisClient(clientCore, s.H, s.Alloc, s.rng.Fork(), s.P.RateScale)
	s.register(cli, prioC)
	return srv, cli
}

// AddSynthetic adds a custom compute workload.
func (s *Scenario) AddSynthetic(cfg workload.SyntheticConfig, prio workload.Priority) *workload.Synthetic {
	cfg.RateScale = s.P.RateScale
	w := workload.NewSynthetic(cfg, s.H, s.Alloc, s.rng.Fork())
	s.register(w, prio)
	return w
}

// Start applies the manager and registers the per-second observers. It must
// be called once, after all workloads are added and before Run.
func (s *Scenario) Start(m ManagerSpec) {
	if s.started {
		panic("harness: Start called twice")
	}
	s.started = true
	if s.P.Sample.Enabled() {
		if err := s.P.Sample.Validate(); err != nil {
			panic(err)
		}
		// Fail at assembly time, not mid-gap, if any actor cannot
		// fast-forward.
		for _, a := range s.Engine.Actors() {
			if _, ok := a.(sim.FastForwarder); !ok {
				panic(fmt.Sprintf("harness: sampling enabled but actor %s does not implement sim.FastForwarder", a.Name()))
			}
		}
	}
	s.Engine.AddObserver(s.Monitor)
	switch m.Kind {
	case ManagerDefault:
		baseline.ApplyDefault(s.H)
	case ManagerIsolate:
		baseline.ApplyIsolate(s.H, s.Infos)
	case ManagerA4:
		baseline.ApplyDefault(s.H)
		s.Controller = core.New(m.A4, s.H, s.Infos,
			func() []pcm.Sample { return s.Monitor.Last() },
			func() float64 { return s.Monitor.LastMemBW() })
		s.Engine.AddObserver(s.Controller)
	default:
		panic(fmt.Sprintf("harness: unknown manager kind %d", m.Kind))
	}
}

// Run executes warm-up then a measurement window, returning the collected
// result. It may be called repeatedly for multi-phase experiments. It is
// exactly Warm + BeginMeasure + Measure + EndMeasure; callers that fork
// mid-run (the prefix-sharing sweep runners, the service's snapshot cache)
// drive the phases directly, and splitting a phase across multiple Measure
// calls is equivalent to one longer call.
func (s *Scenario) Run(warmupSec, measureSec float64) *Result {
	s.Warm(warmupSec)
	s.BeginMeasure()
	s.Measure(measureSec)
	return s.EndMeasure()
}

// Warm advances simulated time outside any measurement window.
func (s *Scenario) Warm(sec float64) {
	if !s.started {
		panic("harness: Run before Start")
	}
	s.Engine.Run(sec)
}

// BeginMeasure opens a measurement window at the current instant.
func (s *Scenario) BeginMeasure() {
	if !s.started {
		panic("harness: Run before Start")
	}
	s.measureStart = s.Engine.Now()
	s.Monitor.BeginWindow()
}

// Measure advances simulated time inside the open window. Successive calls
// accumulate into the same window, so a run can be extended from a forked
// snapshot: fork, Measure the remainder, EndMeasure.
//
// With sampling enabled, Measure alternates detailed intervals and
// fast-forward gaps per the schedule, phase-anchored at BeginMeasure: epochs
// whose offset into the current period falls inside DetailUs execute in full
// detail, the rest fast-forward (the hierarchy's passive seam first, then
// every engine actor). Splitting a window across Measure calls lands each
// piece at the phase an unsplit run would have reached.
func (s *Scenario) Measure(sec float64) {
	if !s.P.Sample.Enabled() {
		s.Engine.Run(sec)
		return
	}
	epochs := int(math.Floor(sec*sim.EpochsPerSecond + 0.5))
	detailE := int(s.P.Sample.DetailUs / sim.TicksPerEpoch)
	periodE := int(s.P.Sample.PeriodUs / sim.TicksPerEpoch)
	for epochs > 0 {
		phase := int((s.Engine.Now()-s.measureStart)/sim.TicksPerEpoch) % periodE
		if phase < detailE {
			run := detailE - phase
			if run > epochs {
				run = epochs
			}
			s.Engine.RunEpochsBatched(run)
			epochs -= run
			continue
		}
		gap := periodE - phase
		if gap > epochs {
			gap = epochs
		}
		s.H.FastForward(s.Engine.Now(), sim.Tick(gap)*sim.TicksPerEpoch)
		s.Engine.FastForward(gap)
		epochs -= gap
	}
}

// EndMeasure closes the window and returns its result.
func (s *Scenario) EndMeasure() *Result {
	return s.Monitor.EndWindow()
}
