package harness

import (
	"testing"

	"a4sim/internal/core"
	"a4sim/internal/workload"
)

// buildMix builds the §7.1 microbenchmark mix: DPDK-T (HPW) + FIO 2 MB
// blocks (LPW) + a cache-sensitive X-Mem (HPW).
func buildMix(mgr ManagerSpec) (*Scenario, *Result) {
	p := DefaultParams()
	p.RateScale = 256
	s := NewScenario(p)
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 32, workload.LPW)
	s.AddXMem("xmem1", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
	s.Start(mgr)
	res := s.Run(14, 4)
	return s, res
}

// TestA4EndToEnd verifies that the full A4-d controller improves the HPWs
// over the Default model: it should reserve the DCA ways, keep LPWs off the
// inclusive ways, detect FIO's DMA leak, disable the SSD's DCA, and squeeze
// it onto trash ways.
func TestA4EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end runs are slow")
	}
	_, def := buildMix(Default())
	sa4, a4 := buildMix(A4(core.VariantD))

	for _, ev := range sa4.Controller.Events {
		t.Log("a4:", ev)
	}
	t.Logf("default: dpdkLat=%.1f/%.1fus xmemHit=%.3f fioTP=%.2f",
		def.W("dpdk-t").AvgLatUs, def.W("dpdk-t").P99LatUs, def.W("xmem1").LLCHitRate, def.W("fio").IOReadGBps)
	t.Logf("a4-d   : dpdkLat=%.1f/%.1fus xmemHit=%.3f fioTP=%.2f",
		a4.W("dpdk-t").AvgLatUs, a4.W("dpdk-t").P99LatUs, a4.W("xmem1").LLCHitRate, a4.W("fio").IOReadGBps)

	if !sa4.Controller.IsDemoted(sa4.Workloads[1].ID()) {
		t.Errorf("A4 should demote FIO (storage antagonist)")
	}
	if sa4.H.PCIe().DCAActive(SSDPort) {
		t.Errorf("A4 should have disabled DCA for the SSD port")
	}
	if sa4.H.PCIe().DCAActive(NICPort) != true {
		t.Errorf("NIC DCA must stay enabled")
	}
	if !(a4.W("dpdk-t").AvgLatUs < def.W("dpdk-t").AvgLatUs*0.9) {
		t.Errorf("A4 should reduce DPDK-T latency: a4=%.1f default=%.1f",
			a4.W("dpdk-t").AvgLatUs, def.W("dpdk-t").AvgLatUs)
	}
	if Fluct(a4.W("fio").IOReadGBps, def.W("fio").IOReadGBps) > 0.2 {
		t.Errorf("A4 should not hurt FIO throughput much: a4=%.2f default=%.2f",
			a4.W("fio").IOReadGBps, def.W("fio").IOReadGBps)
	}
}
