package harness

import (
	"testing"

	"a4sim/internal/core"
	"a4sim/internal/workload"
)

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.RateScale <= 0 || p.NICGbps != 100 || p.SSDGBps != 13 {
		t.Errorf("defaults changed unexpectedly: %+v", p)
	}
	if p.Hierarchy.LLC.Ways != 11 || p.Hierarchy.LLC.NumDCA != 2 || p.Hierarchy.LLC.NumInclusive != 2 {
		t.Errorf("LLC geometry deviates from the testbed")
	}
	if p.Hierarchy.NumCores != 18 {
		t.Errorf("core count deviates from the Xeon 6140")
	}
}

func TestManagerNames(t *testing.T) {
	cases := map[string]ManagerSpec{
		"default": Default(),
		"isolate": Isolate(),
		"a4-a":    A4(core.VariantA),
		"a4-b":    A4(core.VariantB),
		"a4-c":    A4(core.VariantC),
		"a4-d":    A4(core.VariantD),
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	custom := A4With(core.Config{Features: core.FeatPriority | core.FeatBypass})
	if custom.Name() != "a4" {
		t.Errorf("custom feature set should be named a4, got %q", custom.Name())
	}
}

func TestScenarioZeroParamsFilled(t *testing.T) {
	s := NewScenario(Params{})
	if s.P.RateScale != DefaultParams().RateScale {
		t.Errorf("RateScale not defaulted")
	}
	if s.P.NICBurstPeriod <= 0 {
		t.Errorf("burst period not defaulted")
	}
	// Negative period requests smooth arrivals.
	s2 := NewScenario(Params{NICBurstPeriod: -1})
	if s2.P.NICBurstPeriod != 0 {
		t.Errorf("negative burst period should disable shaping")
	}
}

func TestStartGuards(t *testing.T) {
	s := NewScenario(Params{})
	s.AddXMem("x", []int{0}, 1<<20, workload.Sequential, false, workload.HPW)
	s.Start(Default())
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("double Start must panic")
			}
		}()
		s.Start(Default())
	}()
	s2 := NewScenario(Params{})
	defer func() {
		if recover() == nil {
			t.Errorf("Run before Start must panic")
		}
	}()
	s2.Run(0.1, 0.1)
}

func TestRegistrationInfos(t *testing.T) {
	s := NewScenario(Params{})
	d := s.AddDPDK("net", []int{0, 1}, true, workload.HPW)
	f := s.AddFIO("disk", []int{2}, 64<<10, 8, workload.LPW)
	x := s.AddXMem("cpu", []int{3}, 1<<20, workload.Random, false, workload.LPW)
	if len(s.Infos) != 3 || len(s.Workloads) != 3 {
		t.Fatalf("registration incomplete")
	}
	if s.Infos[0].Class != workload.ClassNetwork || s.Infos[0].Port != NICPort {
		t.Errorf("network info wrong: %+v", s.Infos[0])
	}
	if s.Infos[1].Class != workload.ClassStorage || s.Infos[1].Port != SSDPort {
		t.Errorf("storage info wrong: %+v", s.Infos[1])
	}
	if s.Infos[2].Class != workload.ClassCompute || s.Infos[2].Port != -1 {
		t.Errorf("compute info wrong: %+v", s.Infos[2])
	}
	if d.ID() != s.Infos[0].ID || f.ID() != s.Infos[1].ID || x.ID() != s.Infos[2].ID {
		t.Errorf("IDs mismatched")
	}
	// The NIC and SSD are created lazily, once.
	if s.NIC == nil || s.SSD == nil {
		t.Fatalf("devices missing")
	}
	if s.EnsureSSD() != s.SSD {
		t.Errorf("EnsureSSD should be idempotent")
	}
}

func TestMonitorWindowMetrics(t *testing.T) {
	p := DefaultParams()
	p.RateScale = 1024 // tiny rates: fast test
	s := NewScenario(p)
	s.AddXMem("x", []int{0, 1}, 1<<20, workload.Sequential, false, workload.HPW)
	s.Start(Default())
	res := s.Run(1, 2)
	if res.Seconds != 2 {
		t.Errorf("window length = %v, want 2", res.Seconds)
	}
	w := res.W("x")
	if w.IPC <= 0 || w.ProgressRate <= 0 {
		t.Errorf("metrics empty: %+v", w)
	}
	// Unknown workloads return a zero value, not nil.
	if res.W("ghost") == nil || res.W("ghost").IPC != 0 {
		t.Errorf("missing workload should yield zero result")
	}
}

func TestRunResultsAreWindowed(t *testing.T) {
	p := DefaultParams()
	p.RateScale = 1024
	s := NewScenario(p)
	s.AddXMem("x", []int{0}, 1<<20, workload.Sequential, false, workload.HPW)
	s.Start(Default())
	r1 := s.Run(1, 1)
	r2 := s.Run(0, 1)
	// Consecutive windows measure comparable steady-state rates.
	if r2.W("x").ProgressRate <= 0 {
		t.Fatalf("second window empty")
	}
	ratio := r1.W("x").ProgressRate / r2.W("x").ProgressRate
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("windows wildly inconsistent: %v vs %v", r1.W("x").ProgressRate, r2.W("x").ProgressRate)
	}
}

func TestIsolateManagerAssignsDisjointWays(t *testing.T) {
	p := DefaultParams()
	p.RateScale = 1024
	s := NewScenario(p)
	a := s.AddXMem("a", []int{0, 1}, 1<<20, workload.Sequential, false, workload.HPW)
	b := s.AddXMem("b", []int{2}, 1<<20, workload.Sequential, false, workload.LPW)
	s.Start(Isolate())
	ma := s.H.CAT().MaskOf(a.Cores()[0])
	mb := s.H.CAT().MaskOf(b.Cores()[0])
	if ma&mb != 0 {
		t.Errorf("isolate masks overlap: %#x %#x", uint32(ma), uint32(mb))
	}
	if ma.Count() < mb.Count() {
		t.Errorf("2-core workload should get at least as many ways")
	}
}
