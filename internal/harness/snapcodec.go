package harness

import (
	"fmt"
	"sort"

	"a4sim/internal/codec"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/stats"
	"a4sim/internal/workload"
)

// This file implements the durable form of the snapshot/fork contract:
// Snapshot.Encode serializes a captured scenario's dynamic state to bytes,
// and DecodeSnapshot restores it onto a freshly constructed scenario built
// from the same spec. The split is "structure from spec, state from blob":
// the byte stream carries only mutable state (RNG streams, cache arrays,
// ring/command queues, controller state machine, open telemetry window),
// while everything structural — geometry, workload set, column layout — is
// rebuilt by the receiver from the canonical spec and validated against the
// stream's fingerprint. A decoded snapshot forks into continuations that
// are byte-identical to the original's (pinned by internal/scenario's
// round-trip tests), which is what lets the service spill warm state to
// disk and the cluster ship it between backends: anything restored can be
// re-derived by plain re-execution, so a failed decode degrades to a fresh
// run, never to wrong bytes.

// snapMagic and snapVersion identify the encoding. The version covers the
// entire layer order and every per-package wire shape; any change to either
// must bump it, and decoders reject versions they do not know — stale
// snapshots are then re-executed, never misparsed.
// Version history: v2 added the sampled-execution state (engine skipped-tick
// counter, Synthetic fast-forward rate trackers, the window's schedule
// anchor and detailed-second tally, and the sampling-spec fingerprint).
const (
	snapMagic   = "A4SN"
	snapVersion = 2
)

// Workload kind tags in the encoded stream.
const (
	wlKindDPDK      = 1
	wlKindFIO       = 2
	wlKindSynthetic = 3
)

func wlKind(w workload.Workload) (uint8, error) {
	switch w.(type) {
	case *workload.DPDK:
		return wlKindDPDK, nil
	case *workload.FIO:
		return wlKindFIO, nil
	case *workload.Synthetic:
		return wlKindSynthetic, nil
	default:
		return 0, fmt.Errorf("harness: cannot encode workload type %T", w)
	}
}

// Encode serializes the captured state. The result decodes only onto a
// scenario built from the same spec (same workloads, geometry, manager, and
// series options); DecodeSnapshot validates that structurally.
func (sn *Snapshot) Encode() ([]byte, error) {
	s := sn.frozen
	w := &codec.Writer{}
	w.Raw([]byte(snapMagic))
	w.U32(snapVersion)

	// Structural fingerprint, checked before any state is touched.
	w.Int(len(s.Engine.Actors()))
	w.Int(len(s.Workloads))
	w.Bool(s.NIC != nil)
	w.Bool(s.SSD != nil)
	w.Int(s.Fabric.NumWorkloads())
	w.Bool(s.Controller != nil)
	// The sampling schedule is structural (it changes which state the blob
	// carries meaning): fingerprint it so a sampled snapshot never restores
	// onto a detailed scenario or vice versa.
	w.I64(s.P.Sample.DetailUs)
	w.I64(s.P.Sample.PeriodUs)

	s.Engine.EncodeState(w)
	w.I64(int64(s.measureStart))
	w.U64(s.rng.State())
	s.Fabric.EncodeState(w)
	s.H.EncodeState(w)
	s.Alloc.EncodeState(w)
	if s.NIC != nil {
		s.NIC.EncodeState(w)
	}
	if s.SSD != nil {
		s.SSD.EncodeState(w)
	}
	for _, wl := range s.Workloads {
		kind, err := wlKind(wl)
		if err != nil {
			return nil, err
		}
		w.U8(kind)
		switch wl := wl.(type) {
		case *workload.DPDK:
			wl.EncodeState(w)
		case *workload.FIO:
			wl.EncodeState(w)
		case *workload.Synthetic:
			wl.EncodeState(w)
		}
	}
	s.Monitor.encodeState(w)
	if s.Controller != nil {
		s.Controller.EncodeState(w)
	}
	return w.Bytes(), nil
}

// DecodeSnapshot restores encoded state onto fresh, a just-started scenario
// built from the same spec the snapshot was taken from (the caller obtains
// it by re-running the spec's construction — cheap, no simulation). It
// takes ownership of fresh: on success the returned snapshot wraps it (fork
// the snapshot to obtain runnable scenarios); on error fresh is in an
// undefined state and must be discarded.
func DecodeSnapshot(data []byte, fresh *Scenario) (*Snapshot, error) {
	if !fresh.started {
		return nil, fmt.Errorf("harness: DecodeSnapshot needs a started scenario")
	}
	r := codec.NewReader(data)
	if string(r.Raw(len(snapMagic))) != snapMagic {
		return nil, fmt.Errorf("harness: not a snapshot (bad magic)")
	}
	if v := r.U32(); v != snapVersion {
		return nil, fmt.Errorf("harness: snapshot version %d, want %d", v, snapVersion)
	}

	nActors := r.Int()
	nWorkloads := r.Int()
	hasNIC := r.Bool()
	hasSSD := r.Bool()
	nFabric := r.Int()
	hasController := r.Bool()
	sampleDetail := r.I64()
	samplePeriod := r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch {
	case nActors != len(fresh.Engine.Actors()):
		return nil, fmt.Errorf("harness: snapshot has %d actors, scenario has %d", nActors, len(fresh.Engine.Actors()))
	case nWorkloads != len(fresh.Workloads):
		return nil, fmt.Errorf("harness: snapshot has %d workloads, scenario has %d", nWorkloads, len(fresh.Workloads))
	case hasNIC != (fresh.NIC != nil):
		return nil, fmt.Errorf("harness: snapshot and scenario disagree on NIC presence")
	case hasSSD != (fresh.SSD != nil):
		return nil, fmt.Errorf("harness: snapshot and scenario disagree on SSD presence")
	case nFabric != fresh.Fabric.NumWorkloads():
		return nil, fmt.Errorf("harness: snapshot has %d fabric workloads, scenario has %d", nFabric, fresh.Fabric.NumWorkloads())
	case hasController != (fresh.Controller != nil):
		return nil, fmt.Errorf("harness: snapshot and scenario disagree on controller presence")
	case sampleDetail != fresh.P.Sample.DetailUs || samplePeriod != fresh.P.Sample.PeriodUs:
		return nil, fmt.Errorf("harness: snapshot sampling schedule %d/%d differs from scenario's %d/%d",
			sampleDetail, samplePeriod, fresh.P.Sample.DetailUs, fresh.P.Sample.PeriodUs)
	}

	fresh.Engine.DecodeState(r)
	fresh.measureStart = sim.Tick(r.I64())
	fresh.rng.SetState(r.U64())
	fresh.Fabric.DecodeState(r)
	fresh.H.DecodeState(r)
	fresh.Alloc.DecodeState(r)
	if fresh.NIC != nil {
		fresh.NIC.DecodeState(r)
	}
	if fresh.SSD != nil {
		fresh.SSD.DecodeState(r)
	}
	for i, wl := range fresh.Workloads {
		want, err := wlKind(wl)
		if err != nil {
			return nil, err
		}
		if got := r.U8(); r.Err() == nil && got != want {
			return nil, fmt.Errorf("harness: snapshot workload %d has kind %d, scenario has %d", i, got, want)
		}
		switch wl := wl.(type) {
		case *workload.DPDK:
			wl.DecodeState(r)
		case *workload.FIO:
			wl.DecodeState(r)
		case *workload.Synthetic:
			wl.DecodeState(r)
		}
	}
	fresh.Monitor.decodeState(r)
	if fresh.Controller != nil {
		fresh.Controller.DecodeState(r)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("harness: decode snapshot: %w", err)
	}
	if n := r.Remaining(); n != 0 {
		return nil, fmt.Errorf("harness: snapshot has %d trailing bytes", n)
	}
	return &Snapshot{frozen: fresh}, nil
}

// encodeState appends the sampler's dynamic state: the last sample set,
// memory-bandwidth baselines, window progress, the progress marks, and an
// open measurement window's series and delta baselines. The series options
// are structural (the scenario layer derives them from the spec) but are
// encoded for validation.
func (m *Monitor) encodeState(w *codec.Writer) {
	w.Int(len(m.last))
	for i := range m.last {
		m.last[i].EncodeState(w)
	}
	w.F64(m.lastMemRd)
	w.F64(m.lastMemWr)
	w.Bool(m.collecting)
	w.Int(m.secs)
	w.F64(m.detailSecs)
	w.Bool(m.opts.Devices)
	w.Bool(m.opts.Occupancy)
	w.Bool(m.opts.Controller)
	w.Bool(m.opts.Export)

	w.Bool(m.progressMark != nil)
	if m.progressMark != nil {
		ids := make([]pcm.WorkloadID, 0, len(m.progressMark))
		for id := range m.progressMark {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Int(len(ids))
		for _, id := range ids {
			w.I64(int64(id))
			w.I64(m.progressMark[id])
		}
	}

	w.Bool(m.win != nil)
	if m.win != nil {
		m.win.series.EncodeState(w)
		w.I64s(m.win.lastProg)
		w.I64(m.win.lastNICDrops)
	}
}

// decodeState restores state written by encodeState. The window's column
// layout is rebuilt with newWindow (a pure function of the scenario and the
// options) and validated against the encoded series' column names, so a
// snapshot from a structurally different scenario fails the read instead
// of misaligning columns.
func (m *Monitor) decodeState(r *codec.Reader) {
	nLast := r.Int()
	if r.Err() != nil {
		return
	}
	if nLast < 0 || nLast > r.Remaining() {
		r.Failf("harness: snapshot claims %d samples", nLast)
		return
	}
	last := make([]pcm.Sample, nLast)
	for i := range last {
		last[i].DecodeState(r)
	}
	lastMemRd := r.F64()
	lastMemWr := r.F64()
	collecting := r.Bool()
	secs := r.Int()
	detailSecs := r.F64()
	opts := SeriesOpts{
		Devices:    r.Bool(),
		Occupancy:  r.Bool(),
		Controller: r.Bool(),
		Export:     r.Bool(),
	}
	if r.Err() != nil {
		return
	}
	if opts != m.opts {
		r.Failf("harness: snapshot series options %+v differ from scenario's %+v", opts, m.opts)
		return
	}

	var progressMark map[pcm.WorkloadID]int64
	if r.Bool() {
		n := r.Int()
		if r.Err() != nil {
			return
		}
		if n < 0 || n*16 > r.Remaining() {
			r.Failf("harness: snapshot claims %d progress marks", n)
			return
		}
		progressMark = make(map[pcm.WorkloadID]int64, n)
		for i := 0; i < n; i++ {
			id := pcm.WorkloadID(r.I64())
			progressMark[id] = r.I64()
		}
	}

	var win *window
	if r.Bool() {
		series := stats.DecodeSeriesState(r)
		lastProg := r.I64s()
		lastNICDrops := r.I64()
		if r.Err() != nil {
			return
		}
		win = m.newWindow()
		want := win.series.Names()
		got := series.Names()
		if len(got) != len(want) {
			r.Failf("harness: snapshot window has %d columns, scenario lays out %d", len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				r.Failf("harness: snapshot window column %d is %q, scenario lays out %q", i, got[i], want[i])
				return
			}
		}
		if len(lastProg) != len(win.lastProg) {
			r.Failf("harness: snapshot window has %d progress baselines, scenario has %d", len(lastProg), len(win.lastProg))
			return
		}
		win.series = series
		copy(win.lastProg, lastProg)
		win.lastNICDrops = lastNICDrops
		if n := series.Len(); n > 0 {
			// Re-prime the row scratch from the last recorded row: the
			// sampled path replicates it across fully skipped seconds.
			series.Row(n-1, win.row[:0])
		}
	}
	if r.Err() != nil {
		return
	}

	m.last = last
	m.lastMemRd = lastMemRd
	m.lastMemWr = lastMemWr
	m.collecting = collecting
	m.secs = secs
	m.detailSecs = detailSecs
	m.progressMark = progressMark
	m.win = win
}
