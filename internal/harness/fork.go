package harness

import (
	"fmt"

	"a4sim/internal/core"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/workload"
)

// This file implements the scenario snapshot/fork contract: a running
// scenario can be deep-copied mid-flight into an independent copy whose
// continued execution is byte-identical to the original's would-be
// continuation. Every stateful layer participates — engine (time, RNG
// streams, budget carries), hierarchy (caches, directory, CAT, PCIe, memory
// accounting), devices (ring and command queues), workloads (streams,
// cursors, latency reservoirs), the per-second monitor (including an open
// measurement window), and the A4 controller's state machine. Forks never
// alias mutable state, so original and copies run concurrently on separate
// goroutines; the packed SoA cache layouts copy as flat slices.
//
// The contract is what makes warm-state reuse sound: sweeps whose points
// share a scenario prefix (same construction, same warm-up) run the prefix
// once, fork per point, and diverge — see internal/figures' prefix runner
// and internal/service's snapshot cache.

// Fork returns an independent deep copy of the scenario at its current
// instant. The copy has its own engine, hierarchy, devices, workloads,
// monitor, and (if attached) controller, re-wired to each other and ordered
// exactly as the original's engine steps them, so both sides produce
// identical event streams from the fork point.
//
// Fork only reads the receiver, so multiple goroutines may fork one
// scenario concurrently; the forks themselves are independent. Scenarios
// carrying observers the harness did not register (e.g. streaming
// sim.FuncObservers attached by a CLI) cannot be forked and panic with the
// offending type.
func (s *Scenario) Fork() *Scenario {
	f := &Scenario{P: s.P, started: s.started, measureStart: s.measureStart}
	f.P.Hierarchy.PortNames = append([]string(nil), s.P.Hierarchy.PortNames...)
	f.Fabric = s.Fabric.Clone()
	f.H = s.H.Fork(f.Fabric)
	f.Alloc = s.Alloc.Clone()
	f.rng = s.rng.Clone()

	// Clone devices and workloads, remembering old -> new actor identities
	// so the engine's registration order can be replayed.
	clones := make(map[sim.Actor]sim.Actor)
	if s.NIC != nil {
		f.NIC = s.NIC.Fork(f.H)
		clones[s.NIC] = f.NIC
	}
	if s.SSD != nil {
		f.SSD = s.SSD.Fork(f.H)
		clones[s.SSD] = f.SSD
	}
	f.Workloads = make([]workload.Workload, len(s.Workloads))
	for i, w := range s.Workloads {
		var fw workload.Workload
		switch w := w.(type) {
		case *workload.DPDK:
			fw = w.Fork(f.H, f.NIC)
		case *workload.FIO:
			fw = w.Fork(f.H, f.SSD)
		case *workload.Synthetic:
			fw = w.Fork(f.H)
		default:
			panic(fmt.Sprintf("harness: cannot fork workload type %T", w))
		}
		f.Workloads[i] = fw
		clones[w] = fw
	}
	f.Infos = make([]core.WorkloadInfo, len(s.Infos))
	for i, in := range s.Infos {
		f.Infos[i] = in
		f.Infos[i].Cores = append([]int(nil), in.Cores...)
	}

	f.Monitor = s.Monitor.fork(f)
	var observers []sim.Observer
	for _, o := range s.Engine.Observers() {
		switch o := o.(type) {
		case *Monitor:
			if o != s.Monitor {
				panic("harness: cannot fork a scenario with a foreign Monitor observer")
			}
			observers = append(observers, f.Monitor)
		case *core.Controller:
			if o != s.Controller {
				panic("harness: cannot fork a scenario with a foreign Controller observer")
			}
			f.Controller = o.Fork(f.H,
				func() []pcm.Sample { return f.Monitor.Last() },
				func() float64 { return f.Monitor.LastMemBW() })
			observers = append(observers, f.Controller)
		default:
			panic(fmt.Sprintf("harness: cannot fork observer type %T", o))
		}
	}

	actors := make([]sim.Actor, 0, len(clones))
	for _, a := range s.Engine.Actors() {
		ca, ok := clones[a]
		if !ok {
			panic(fmt.Sprintf("harness: cannot fork actor type %T", a))
		}
		actors = append(actors, ca)
	}
	f.Engine = s.Engine.Fork(actors, observers)
	return f
}

// Snapshot is an immutable capture of a scenario's full state. It is safe
// to fork from multiple goroutines concurrently; each Fork yields a fresh,
// independently runnable scenario, so one warmed prefix fans out to any
// number of divergent continuations.
type Snapshot struct {
	frozen *Scenario
}

// Snapshot captures the scenario's state at the current instant. The
// snapshot is a private deep copy: the live scenario keeps running without
// affecting it.
func (s *Scenario) Snapshot() *Snapshot {
	return &Snapshot{frozen: s.Fork()}
}

// Fork materializes a runnable scenario from the captured state.
func (sn *Snapshot) Fork() *Scenario {
	return sn.frozen.Fork()
}
