package harness

import (
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/stats"
	"a4sim/internal/workload"
)

// Monitor is the single per-second sampler. It owns the pcm delta stream
// (so the A4 controller and the result collector see the same samples) and
// records measurement windows as per-second series: OnSecond appends one
// row of named columns per simulated second, and EndWindow reduces the
// columns to the window aggregates. The reduction performs exactly the
// additions, in exactly the order, that the old incremental accumulators
// did, so aggregates are bit-identical to the pre-series measurement path
// (pinned by the golden tests in internal/scenario).
type Monitor struct {
	s *Scenario

	last      []pcm.Sample
	lastMemRd float64 // GB/s over the last second
	lastMemWr float64

	collecting bool
	secs       int
	// detailSecs is the detailed (non-fast-forwarded) portion of the open
	// window in seconds. It equals secs in unsampled runs; sampled windows
	// use it to rate progress counters, which only advance in detail.
	detailSecs float64
	win        *window
	opts       SeriesOpts

	progressMark map[pcm.WorkloadID]int64

	// rowHook, when set, is called after each appended series row with the
	// window's live series — the streaming plane's per-second tap. It is
	// deliberately not carried by fork: a forked scenario (a cached warm
	// snapshot continuing under a new request) must not publish into the
	// original request's stream, so whoever forks attaches its own hook.
	rowHook func(*stats.Series)
}

// SetRowHook installs (or, with nil, removes) the per-second row callback.
// The hook runs on the simulating goroutine after each second's row is
// appended, so it must be cheap and non-blocking.
func (m *Monitor) SetRowHook(hook func(*stats.Series)) { m.rowHook = hook }

// SeriesOpts selects the telemetry plane's extended per-second columns.
// The core columns (per-workload rates/IPC/IO, memory and port bandwidth,
// progress) are always recorded while a window is open — they are the
// measurement path itself; the option groups add observability columns
// that aggregates do not need.
type SeriesOpts struct {
	// Devices records NIC drop/ring-depth and SSD queue-depth columns.
	Devices bool
	// Occupancy records per-workload LLC line counts (wl.<name>.llc_lines).
	Occupancy bool
	// Controller records the A4 state machine columns (a4.state,
	// a4.features, a4.lp_left, a4.lp_right); no-op without an A4 manager.
	Controller bool
	// Export attaches the recorded series to EndWindow's Result, and hence
	// to the scenario report.
	Export bool
}

// Per-workload core column layout, in order, within a workload's block.
const (
	colLLCHit = iota
	colMLCMiss
	colLLCMiss
	colDCAMiss
	colLeakRate
	colIPC
	colIORd
	colIOWr
	colDMALeaks
	colDMABloats
	colProgress
	perWLCols
)

var wlColNames = [perWLCols]string{
	"llc_hit", "mlc_miss", "llc_miss", "dca_miss", "leak_rate",
	"ipc", "io_rd_gbps", "io_wr_gbps", "dma_leaks", "dma_bloats", "progress",
}

// window is one measurement window's per-second recording: the columnar
// series plus the index layout and delta baselines OnSecond needs to fill
// one row without allocating.
type window struct {
	series *stats.Series
	row    []float64

	memRd, memWr int
	portBase     int                    // 2 columns per port, in PCIe port order
	wlBase       map[pcm.WorkloadID]int // base of each workload's column block

	// Extended-group offsets; -1 when the group (or device) is absent.
	nicDrops, nicDepth, ssdDepth int
	occBase                      int // 1 column per workload, scenario order
	a4Base                       int // 4 columns: state, features, lp_left, lp_right

	lastProg     []int64 // per-second progress baselines, scenario order
	lastNICDrops int64
	occScratch   map[int16]int
}

// NewMonitor builds the sampler for a scenario.
func NewMonitor(s *Scenario) *Monitor {
	return &Monitor{s: s}
}

// EnableSeries selects the extended telemetry columns for subsequent
// measurement windows. It must be called before BeginWindow (the scenario
// layer calls it between Start and the first measurement).
func (m *Monitor) EnableSeries(opts SeriesOpts) { m.opts = opts }

// SeriesOptions returns the current selection.
func (m *Monitor) SeriesOptions() SeriesOpts { return m.opts }

// Series returns the open (or just-closed) measurement window's per-second
// series, or nil if no window was ever opened. The series is live: the
// monitor appends to it at every second boundary while collecting.
func (m *Monitor) Series() *stats.Series {
	if m.win == nil {
		return nil
	}
	return m.win.series
}

// fork returns an independent deep copy of the sampler bound to the forked
// scenario: the last sample set, any open measurement window's series and
// delta baselines, and the progress marks all carry over, so a window
// opened before the fork closes on the fork with exactly the metrics — and
// exactly the series rows — an uninterrupted run reports.
func (m *Monitor) fork(s *Scenario) *Monitor {
	n := &Monitor{
		s:          s,
		last:       append([]pcm.Sample(nil), m.last...),
		lastMemRd:  m.lastMemRd,
		lastMemWr:  m.lastMemWr,
		collecting: m.collecting,
		secs:       m.secs,
		detailSecs: m.detailSecs,
		opts:       m.opts,
	}
	if m.win != nil {
		w := *m.win
		w.series = m.win.series.Clone()
		// Copy the row scratch's values, not just its shape: the sampled
		// path replicates the previous row across fully skipped seconds.
		w.row = append([]float64(nil), m.win.row...)
		w.lastProg = append([]int64(nil), m.win.lastProg...)
		if m.win.wlBase != nil {
			w.wlBase = make(map[pcm.WorkloadID]int, len(m.win.wlBase))
			for id, v := range m.win.wlBase {
				w.wlBase[id] = v
			}
		}
		if m.win.occScratch != nil {
			w.occScratch = make(map[int16]int, len(m.win.occScratch))
		}
		n.win = &w
	}
	if m.progressMark != nil {
		n.progressMark = make(map[pcm.WorkloadID]int64, len(m.progressMark))
		for id, v := range m.progressMark {
			n.progressMark[id] = v
		}
	}
	return n
}

// Last returns the most recent per-second samples.
func (m *Monitor) Last() []pcm.Sample { return m.last }

// LastMemBW returns the last second's total memory bandwidth in GB/s.
func (m *Monitor) LastMemBW() float64 { return m.lastMemRd + m.lastMemWr }

// OnSecond implements sim.Observer.
func (m *Monitor) OnSecond(now sim.Tick) {
	if skipped := m.s.Engine.SkippedTicks(); skipped > 0 {
		// Sampled second: extrapolate from the detailed fraction. Unsampled
		// runs never reach this branch (SkippedTicks is always zero), so the
		// default path below stays byte-identical to pre-sampling builds.
		m.onSecondSampled(now, skipped)
		return
	}
	m.last = m.s.Fabric.SampleAll(1)
	rd, wr := m.s.H.Memory().DeltaBytes()
	m.lastMemRd = m.s.Fabric.GBps(rd, 1)
	m.lastMemWr = m.s.Fabric.GBps(wr, 1)

	if !m.collecting {
		// Keep port deltas drained so windows start clean.
		for _, p := range m.s.H.PCIe().Ports() {
			p.DeltaBytes()
		}
		return
	}
	m.secs++
	m.detailSecs++
	w := m.win
	row := w.row
	for i := range row {
		row[i] = 0
	}
	row[w.memRd] = m.lastMemRd
	row[w.memWr] = m.lastMemWr
	for pi, p := range m.s.H.PCIe().Ports() {
		in, out := p.DeltaBytes()
		row[w.portBase+2*pi] = m.s.Fabric.GBps(in, 1)
		row[w.portBase+2*pi+1] = m.s.Fabric.GBps(out, 1)
	}
	for _, smp := range m.last {
		base, ok := w.wlBase[smp.ID]
		if !ok {
			continue
		}
		row[base+colLLCHit] = smp.LLCHitRate
		row[base+colMLCMiss] = smp.MLCMissRate
		row[base+colLLCMiss] = smp.LLCMissRate
		row[base+colDCAMiss] = smp.DCAMissRate
		row[base+colLeakRate] = smp.LeakRate
		row[base+colIPC] = smp.IPC
		row[base+colIORd] = smp.IOReadGBps
		row[base+colIOWr] = smp.IOWriteGBps
		row[base+colDMALeaks] = float64(smp.DMALeaks)
		row[base+colDMABloats] = float64(smp.DMABloats)
	}
	for i, wl := range m.s.Workloads {
		p := wl.Progress()
		row[w.wlBase[wl.ID()]+colProgress] = float64(p - w.lastProg[i])
		w.lastProg[i] = p
	}

	if w.nicDrops >= 0 {
		d := m.s.NIC.Dropped()
		row[w.nicDrops] = float64(d - w.lastNICDrops)
		w.lastNICDrops = d
		row[w.nicDepth] = float64(m.s.NIC.RingDepth())
	}
	if w.ssdDepth >= 0 {
		row[w.ssdDepth] = float64(m.s.SSD.QueueDepth())
	}
	if w.occBase >= 0 {
		m.s.H.LLC().LinesByOwner(w.occScratch)
		for i, wl := range m.s.Workloads {
			row[w.occBase+i] = float64(w.occScratch[int16(wl.ID())])
		}
	}
	if w.a4Base >= 0 {
		c := m.s.Controller
		// The controller observer runs after the monitor at each boundary,
		// so these columns record the state that was in effect during the
		// just-ended second — aligned with the metrics in the same row.
		row[w.a4Base] = float64(c.StateCode())
		row[w.a4Base+1] = float64(c.FeatureMask())
		l, r := c.LPZone()
		row[w.a4Base+2] = float64(l)
		row[w.a4Base+3] = float64(r)
	}
	w.series.Append(row...)
	if m.rowHook != nil {
		m.rowHook(w.series)
	}
}

// onSecondSampled records a second of which skipped ticks were
// fast-forwarded. Counters only accumulated over the detailed fraction frac
// of the second, so rate and ratio metrics are sampled over frac (pcm already
// normalizes by the interval) and count columns — DMA leak/bloat events,
// progress deltas, NIC drops — scale by 1/frac, extrapolating each row to a
// full-second-equivalent estimate. A fully skipped second (frac == 0)
// carries the previous row's traffic estimates forward, which is exactly the
// freeze model's steady-state assumption, while instantaneous gauges (queue
// depths, LLC occupancy, controller state) are re-read live since the
// frozen state remains current.
func (m *Monitor) onSecondSampled(now sim.Tick, skipped sim.Tick) {
	frac := float64(sim.TicksPerSecond-skipped) / float64(sim.TicksPerSecond)
	if frac > 0 {
		m.last = m.s.Fabric.SampleAll(frac)
		rd, wr := m.s.H.Memory().DeltaBytes()
		m.lastMemRd = m.s.Fabric.GBps(rd, frac)
		m.lastMemWr = m.s.Fabric.GBps(wr, frac)
	}
	// frac == 0 keeps the previous sample set: the controller (and any
	// series consumer) steers on the last detailed observation.
	if !m.collecting {
		for _, p := range m.s.H.PCIe().Ports() {
			p.DeltaBytes()
		}
		return
	}
	m.secs++
	m.detailSecs += frac
	w := m.win
	row := w.row
	if frac > 0 {
		for i := range row {
			row[i] = 0
		}
		row[w.memRd] = m.lastMemRd
		row[w.memWr] = m.lastMemWr
		for pi, p := range m.s.H.PCIe().Ports() {
			in, out := p.DeltaBytes()
			row[w.portBase+2*pi] = m.s.Fabric.GBps(in, frac)
			row[w.portBase+2*pi+1] = m.s.Fabric.GBps(out, frac)
		}
		for _, smp := range m.last {
			base, ok := w.wlBase[smp.ID]
			if !ok {
				continue
			}
			row[base+colLLCHit] = smp.LLCHitRate
			row[base+colMLCMiss] = smp.MLCMissRate
			row[base+colLLCMiss] = smp.LLCMissRate
			row[base+colDCAMiss] = smp.DCAMissRate
			row[base+colLeakRate] = smp.LeakRate
			row[base+colIPC] = smp.IPC
			row[base+colIORd] = smp.IOReadGBps
			row[base+colIOWr] = smp.IOWriteGBps
			row[base+colDMALeaks] = float64(smp.DMALeaks) / frac
			row[base+colDMABloats] = float64(smp.DMABloats) / frac
		}
		for i, wl := range m.s.Workloads {
			p := wl.Progress()
			row[w.wlBase[wl.ID()]+colProgress] = float64(p-w.lastProg[i]) / frac
			w.lastProg[i] = p
		}
		if w.nicDrops >= 0 {
			d := m.s.NIC.Dropped()
			row[w.nicDrops] = float64(d-w.lastNICDrops) / frac
			w.lastNICDrops = d
		}
	}
	// Row scratch persists between seconds, so with frac == 0 the rate
	// columns above still hold the previous row's estimates; only the live
	// gauges below are refreshed.
	if w.nicDrops >= 0 {
		row[w.nicDepth] = float64(m.s.NIC.RingDepth())
	}
	if w.ssdDepth >= 0 {
		row[w.ssdDepth] = float64(m.s.SSD.QueueDepth())
	}
	if w.occBase >= 0 {
		m.s.H.LLC().LinesByOwner(w.occScratch)
		for i, wl := range m.s.Workloads {
			row[w.occBase+i] = float64(w.occScratch[int16(wl.ID())])
		}
	}
	if w.a4Base >= 0 {
		c := m.s.Controller
		row[w.a4Base] = float64(c.StateCode())
		row[w.a4Base+1] = float64(c.FeatureMask())
		l, r := c.LPZone()
		row[w.a4Base+2] = float64(l)
		row[w.a4Base+3] = float64(r)
	}
	w.series.Append(row...)
	if m.rowHook != nil {
		m.rowHook(w.series)
	}
}

// newWindow lays out the window's columns. The order is deterministic —
// memory, ports in PCIe order, workloads in scenario order, then the
// enabled extended groups — so the series' canonical encoding is a pure
// function of the scenario and the selection.
func (m *Monitor) newWindow() *window {
	w := &window{
		wlBase:   make(map[pcm.WorkloadID]int, len(m.s.Workloads)),
		lastProg: make([]int64, len(m.s.Workloads)),
		nicDrops: -1, nicDepth: -1, ssdDepth: -1, occBase: -1, a4Base: -1,
	}
	var names []string
	add := func(name string) int {
		names = append(names, name)
		return len(names) - 1
	}
	w.memRd = add("mem.rd_gbps")
	w.memWr = add("mem.wr_gbps")
	ports := m.s.H.PCIe().Ports()
	w.portBase = len(names)
	for _, p := range ports {
		add("port." + p.Name() + ".in_gbps")
		add("port." + p.Name() + ".out_gbps")
	}
	for _, wl := range m.s.Workloads {
		w.wlBase[wl.ID()] = len(names)
		for _, c := range wlColNames {
			add("wl." + wl.Name() + "." + c)
		}
	}
	if m.opts.Devices {
		if m.s.NIC != nil {
			w.nicDrops = add("nic.drops")
			w.nicDepth = add("nic.ring_depth")
			w.lastNICDrops = m.s.NIC.Dropped()
		}
		if m.s.SSD != nil {
			w.ssdDepth = add("ssd.queue_depth")
		}
	}
	if m.opts.Occupancy {
		w.occBase = len(names)
		for _, wl := range m.s.Workloads {
			add("wl." + wl.Name() + ".llc_lines")
		}
		w.occScratch = make(map[int16]int, len(m.s.Workloads))
	}
	if m.opts.Controller && m.s.Controller != nil {
		w.a4Base = add("a4.state")
		add("a4.features")
		add("a4.lp_left")
		add("a4.lp_right")
	}
	w.series = stats.NewSeries(names...)
	w.row = make([]float64, len(names))
	for i, wl := range m.s.Workloads {
		w.lastProg[i] = wl.Progress()
	}
	return w
}

// BeginWindow starts a measurement window: the per-second series is laid
// out, progress marks are taken, and latency reservoirs reset.
func (m *Monitor) BeginWindow() {
	m.collecting = true
	m.secs = 0
	m.detailSecs = 0
	m.win = m.newWindow()
	m.progressMark = make(map[pcm.WorkloadID]int64)
	for _, w := range m.s.Workloads {
		m.progressMark[w.ID()] = w.Progress()
		if d, ok := w.(*workload.DPDK); ok {
			d.ResetLatency()
		}
		if f, ok := w.(*workload.FIO); ok {
			f.ResetLatency()
		}
	}
}

// EndWindow closes the window and builds the result by reducing the
// per-second series. Rate and bandwidth aggregates are column sums divided
// by the window length (left-to-right addition, identical to the former
// incremental accumulators); event counts reduce with exact integer
// addition; progress and latency aggregates come from the progress marks
// and reservoirs, which also cover fractional trailing seconds that never
// reached a series row.
func (m *Monitor) EndWindow() *Result {
	m.collecting = false
	w := m.win
	secs := float64(m.secs)
	if secs == 0 {
		secs = 1
	}
	// Progress counters only advance during detailed execution, so sampled
	// windows rate them over the detailed seconds. Unsampled runs keep the
	// historical secs denominator (identical value, identical bytes).
	progSecs := secs
	if m.s.P.Sample.Enabled() {
		progSecs = m.detailSecs
		if progSecs == 0 {
			progSecs = 1
		}
	}
	rows := w.series.Len()
	res := &Result{
		Seconds:      secs,
		Workloads:    make(map[string]*WorkloadResult),
		PortInGBps:   map[string]float64{},
		PortOutGBps:  map[string]float64{},
		MemReadGBps:  w.series.Sum("mem.rd_gbps") / secs,
		MemWriteGBps: w.series.Sum("mem.wr_gbps") / secs,
	}
	if rows > 0 {
		// A window with no whole seconds leaves the port maps empty, like
		// the accumulator path did (entries appeared on first collection).
		for _, p := range m.s.H.PCIe().Ports() {
			res.PortInGBps[p.Name()] = w.series.Sum("port."+p.Name()+".in_gbps") / secs
			res.PortOutGBps[p.Name()] = w.series.Sum("port."+p.Name()+".out_gbps") / secs
		}
	}
	scale := m.s.P.RateScale
	for _, wl := range m.s.Workloads {
		name := wl.Name()
		n := float64(rows)
		if n == 0 {
			n = 1
		}
		col := func(c int) float64 { return w.series.Sum("wl." + name + "." + wlColNames[c]) }
		wr := &WorkloadResult{
			Name:         name,
			Class:        wl.Class(),
			LLCHitRate:   col(colLLCHit) / n,
			MLCMissRate:  col(colMLCMiss) / n,
			LLCMissRate:  col(colLLCMiss) / n,
			DCAMissRate:  col(colDCAMiss) / n,
			LeakRate:     col(colLeakRate) / n,
			IPC:          col(colIPC) / n,
			IOReadGBps:   col(colIORd) / n,
			IOWriteGBps:  col(colIOWr) / n,
			DMALeaks:     w.series.SumInt("wl." + name + "." + wlColNames[colDMALeaks]),
			DMABloats:    w.series.SumInt("wl." + name + "." + wlColNames[colDMABloats]),
			ProgressRate: float64(wl.Progress()-m.progressMark[wl.ID()]) / progSecs,
		}
		if d, ok := wl.(*workload.DPDK); ok {
			wr.AvgLatUs = d.Latency().Mean() / scale
			wr.P99LatUs = d.Latency().P99() / scale
			wait, desc, proc := d.LatencyBreakdown()
			wr.WaitUs = wait.Mean() / scale
			wr.DescUs = desc.Mean() / scale
			wr.ProcUs = proc.Mean() / scale
		}
		if f, ok := wl.(*workload.FIO); ok {
			wr.ReadLatMs = f.ReadLatency().Mean() / scale / 1000
			wr.ProcLatMs = f.ProcLatency().Mean() / scale / 1000
		}
		res.Workloads[name] = wr
	}
	if m.opts.Export {
		res.Series = w.series
	}
	return res
}

// Result is one measurement window's metrics.
type Result struct {
	Seconds   float64
	Workloads map[string]*WorkloadResult

	MemReadGBps  float64
	MemWriteGBps float64
	PortInGBps   map[string]float64 // device-to-host, by port name
	PortOutGBps  map[string]float64

	// Series is the window's per-second telemetry (nil unless the monitor
	// was configured to export it). It is the same series the aggregates
	// above were reduced from.
	Series *stats.Series
}

// WorkloadResult carries one workload's window metrics.
type WorkloadResult struct {
	Name  string
	Class workload.Class

	LLCHitRate  float64
	MLCMissRate float64
	LLCMissRate float64
	DCAMissRate float64
	LeakRate    float64
	IPC         float64

	IOReadGBps  float64
	IOWriteGBps float64

	// ProgressRate is work units per second (packets, bytes, instructions).
	ProgressRate float64

	// Network latency metrics (µs, real scale).
	AvgLatUs float64
	P99LatUs float64
	WaitUs   float64
	DescUs   float64
	ProcUs   float64

	// Storage latency metrics (ms, real scale).
	ReadLatMs float64
	ProcLatMs float64

	DMALeaks  int64
	DMABloats int64
}

// W returns a workload's result by name, or a zero value if missing.
func (r *Result) W(name string) *WorkloadResult {
	if w, ok := r.Workloads[name]; ok {
		return w
	}
	return &WorkloadResult{Name: name}
}

// Fluct is re-exported for experiment code building stability checks.
func Fluct(a, b float64) float64 { return stats.Fluctuation(a, b) }
