package harness

import (
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/stats"
	"a4sim/internal/workload"
)

// Monitor is the single per-second sampler. It owns the pcm delta stream
// (so the A4 controller and the result collector see the same samples) and
// accumulates measurement windows.
type Monitor struct {
	s *Scenario

	last      []pcm.Sample
	lastMemRd float64 // GB/s over the last second
	lastMemWr float64

	collecting bool
	secs       int
	acc        map[pcm.WorkloadID]*wlAccum
	memRdSum   float64
	memWrSum   float64
	portInSum  map[string]float64
	portOutSum map[string]float64

	progressMark map[pcm.WorkloadID]int64
}

type wlAccum struct {
	samples int
	llcHit  float64
	mlcMiss float64
	llcMiss float64
	dcaMiss float64
	leak    float64
	ipc     float64
	ioRd    float64
	ioWr    float64
	leaks   int64
	bloats  int64
}

// NewMonitor builds the sampler for a scenario.
func NewMonitor(s *Scenario) *Monitor {
	return &Monitor{s: s}
}

// fork returns an independent deep copy of the sampler bound to the forked
// scenario: the last sample set, any open measurement window's accumulators,
// and the progress marks all carry over, so a window opened before the fork
// closes on the fork with exactly the metrics an uninterrupted run reports.
func (m *Monitor) fork(s *Scenario) *Monitor {
	n := &Monitor{
		s:          s,
		last:       append([]pcm.Sample(nil), m.last...),
		lastMemRd:  m.lastMemRd,
		lastMemWr:  m.lastMemWr,
		collecting: m.collecting,
		secs:       m.secs,
		memRdSum:   m.memRdSum,
		memWrSum:   m.memWrSum,
	}
	if m.acc != nil {
		n.acc = make(map[pcm.WorkloadID]*wlAccum, len(m.acc))
		for id, a := range m.acc {
			ac := *a
			n.acc[id] = &ac
		}
	}
	if m.portInSum != nil {
		n.portInSum = make(map[string]float64, len(m.portInSum))
		for k, v := range m.portInSum {
			n.portInSum[k] = v
		}
	}
	if m.portOutSum != nil {
		n.portOutSum = make(map[string]float64, len(m.portOutSum))
		for k, v := range m.portOutSum {
			n.portOutSum[k] = v
		}
	}
	if m.progressMark != nil {
		n.progressMark = make(map[pcm.WorkloadID]int64, len(m.progressMark))
		for id, v := range m.progressMark {
			n.progressMark[id] = v
		}
	}
	return n
}

// Last returns the most recent per-second samples.
func (m *Monitor) Last() []pcm.Sample { return m.last }

// LastMemBW returns the last second's total memory bandwidth in GB/s.
func (m *Monitor) LastMemBW() float64 { return m.lastMemRd + m.lastMemWr }

// OnSecond implements sim.Observer.
func (m *Monitor) OnSecond(now sim.Tick) {
	m.last = m.s.Fabric.SampleAll(1)
	rd, wr := m.s.H.Memory().DeltaBytes()
	m.lastMemRd = m.s.Fabric.GBps(rd, 1)
	m.lastMemWr = m.s.Fabric.GBps(wr, 1)

	if !m.collecting {
		// Keep port deltas drained so windows start clean.
		for _, p := range m.s.H.PCIe().Ports() {
			p.DeltaBytes()
		}
		return
	}
	m.secs++
	m.memRdSum += m.lastMemRd
	m.memWrSum += m.lastMemWr
	for _, p := range m.s.H.PCIe().Ports() {
		in, out := p.DeltaBytes()
		m.portInSum[p.Name()] += m.s.Fabric.GBps(in, 1)
		m.portOutSum[p.Name()] += m.s.Fabric.GBps(out, 1)
	}
	for _, smp := range m.last {
		a := m.acc[smp.ID]
		if a == nil {
			a = &wlAccum{}
			m.acc[smp.ID] = a
		}
		a.samples++
		a.llcHit += smp.LLCHitRate
		a.mlcMiss += smp.MLCMissRate
		a.llcMiss += smp.LLCMissRate
		a.dcaMiss += smp.DCAMissRate
		a.leak += smp.LeakRate
		a.ipc += smp.IPC
		a.ioRd += smp.IOReadGBps
		a.ioWr += smp.IOWriteGBps
		a.leaks += smp.DMALeaks
		a.bloats += smp.DMABloats
	}
}

// BeginWindow starts a measurement window: progress marks are taken and
// latency reservoirs reset.
func (m *Monitor) BeginWindow() {
	m.collecting = true
	m.secs = 0
	m.acc = make(map[pcm.WorkloadID]*wlAccum)
	m.memRdSum, m.memWrSum = 0, 0
	m.portInSum = make(map[string]float64)
	m.portOutSum = make(map[string]float64)
	m.progressMark = make(map[pcm.WorkloadID]int64)
	for _, w := range m.s.Workloads {
		m.progressMark[w.ID()] = w.Progress()
		if d, ok := w.(*workload.DPDK); ok {
			d.ResetLatency()
		}
		if f, ok := w.(*workload.FIO); ok {
			f.ResetLatency()
		}
	}
}

// EndWindow closes the window and builds the result.
func (m *Monitor) EndWindow() *Result {
	m.collecting = false
	secs := float64(m.secs)
	if secs == 0 {
		secs = 1
	}
	res := &Result{
		Seconds:    secs,
		Workloads:  make(map[string]*WorkloadResult),
		PortInGBps: m.portInSum, PortOutGBps: m.portOutSum,
		MemReadGBps:  m.memRdSum / secs,
		MemWriteGBps: m.memWrSum / secs,
	}
	for k := range res.PortInGBps {
		res.PortInGBps[k] /= secs
	}
	for k := range res.PortOutGBps {
		res.PortOutGBps[k] /= secs
	}
	scale := m.s.P.RateScale
	for _, w := range m.s.Workloads {
		a := m.acc[w.ID()]
		if a == nil || a.samples == 0 {
			a = &wlAccum{samples: 1}
		}
		n := float64(a.samples)
		wr := &WorkloadResult{
			Name:         w.Name(),
			Class:        w.Class(),
			LLCHitRate:   a.llcHit / n,
			MLCMissRate:  a.mlcMiss / n,
			LLCMissRate:  a.llcMiss / n,
			DCAMissRate:  a.dcaMiss / n,
			LeakRate:     a.leak / n,
			IPC:          a.ipc / n,
			IOReadGBps:   a.ioRd / n,
			IOWriteGBps:  a.ioWr / n,
			DMALeaks:     a.leaks,
			DMABloats:    a.bloats,
			ProgressRate: float64(w.Progress()-m.progressMark[w.ID()]) / secs,
		}
		if d, ok := w.(*workload.DPDK); ok {
			wr.AvgLatUs = d.Latency().Mean() / scale
			wr.P99LatUs = d.Latency().P99() / scale
			wait, desc, proc := d.LatencyBreakdown()
			wr.WaitUs = wait.Mean() / scale
			wr.DescUs = desc.Mean() / scale
			wr.ProcUs = proc.Mean() / scale
		}
		if f, ok := w.(*workload.FIO); ok {
			wr.ReadLatMs = f.ReadLatency().Mean() / scale / 1000
			wr.ProcLatMs = f.ProcLatency().Mean() / scale / 1000
		}
		res.Workloads[w.Name()] = wr
	}
	return res
}

// Result is one measurement window's metrics.
type Result struct {
	Seconds   float64
	Workloads map[string]*WorkloadResult

	MemReadGBps  float64
	MemWriteGBps float64
	PortInGBps   map[string]float64 // device-to-host, by port name
	PortOutGBps  map[string]float64
}

// WorkloadResult carries one workload's window metrics.
type WorkloadResult struct {
	Name  string
	Class workload.Class

	LLCHitRate  float64
	MLCMissRate float64
	LLCMissRate float64
	DCAMissRate float64
	LeakRate    float64
	IPC         float64

	IOReadGBps  float64
	IOWriteGBps float64

	// ProgressRate is work units per second (packets, bytes, instructions).
	ProgressRate float64

	// Network latency metrics (µs, real scale).
	AvgLatUs float64
	P99LatUs float64
	WaitUs   float64
	DescUs   float64
	ProcUs   float64

	// Storage latency metrics (ms, real scale).
	ReadLatMs float64
	ProcLatMs float64

	DMALeaks  int64
	DMABloats int64
}

// W returns a workload's result by name, or a zero value if missing.
func (r *Result) W(name string) *WorkloadResult {
	if w, ok := r.Workloads[name]; ok {
		return w
	}
	return &WorkloadResult{Name: name}
}

// Fluct is re-exported for experiment code building stability checks.
func Fluct(a, b float64) float64 { return stats.Fluctuation(a, b) }
