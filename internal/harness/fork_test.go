package harness

import (
	"reflect"
	"testing"

	"a4sim/internal/core"
	"a4sim/internal/workload"
)

// forkTestParams keeps the fork tests fast: the full Skylake geometry (so
// every layer's state is exercised) at a high rate scale.
func forkTestParams() Params {
	p := DefaultParams()
	p.RateScale = 4096
	return p
}

// buildForkScenario wires a scenario touching every forkable component:
// NIC + DPDK, SSD + FIO, and two synthetics (one shared-WS).
func buildForkScenario(t testing.TB) *Scenario {
	t.Helper()
	s := NewScenario(forkTestParams())
	s.AddDPDK("dpdk-t", []int{0, 1, 2, 3}, true, workload.HPW)
	s.AddFIO("fio", []int{4, 5, 6, 7}, 128<<10, 16, workload.LPW)
	s.AddXMem("xmem", []int{8, 9}, 4<<20, workload.Sequential, false, workload.HPW)
	s.AddSynthetic(workload.SyntheticConfig{
		Name: "shared", Cores: []int{10, 11}, WSBytes: 2 << 20,
		Pattern: workload.Zipf, Skew: 0.8, WriteFrac: 0.3, InstrPerOp: 8, SharedWS: true,
	}, workload.LPW)
	return s
}

// runFresh executes the scenario uninterrupted.
func runFresh(t testing.TB, mgr ManagerSpec, warm, meas float64) *Result {
	s := buildForkScenario(t)
	s.Start(mgr)
	return s.Run(warm, meas)
}

// TestForkContinuationMatchesFresh is the tentpole property at the harness
// level: forking at any second boundary — during warm-up or inside the
// measurement window — and finishing the run on the fork yields a result
// identical to an uninterrupted fresh run, and the abandoned original is
// not disturbed by its forks running.
func TestForkContinuationMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario runs are slow")
	}
	const warm, meas = 2, 2
	for _, mgr := range []ManagerSpec{Default(), Isolate(), A4(core.VariantD)} {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			want := runFresh(t, mgr, warm, meas)
			for k := 1; k < warm+meas; k++ {
				s := buildForkScenario(t)
				s.Start(mgr)
				var f *Scenario
				if k <= warm {
					s.Warm(float64(k))
					f = s.Fork()
					f.Warm(float64(warm - k))
					f.BeginMeasure()
					f.Measure(meas)
				} else {
					s.Warm(warm)
					s.BeginMeasure()
					s.Measure(float64(k - warm))
					f = s.Fork()
					f.Measure(float64(warm + meas - k))
				}
				got := f.EndMeasure()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("fork at t=%ds diverged from fresh run\nfresh: %+v\nfork:  %+v", k, want, got)
				}
			}
		})
	}
}

// TestForkedSiblingsAreIndependent forks one warmed prefix twice and runs
// the siblings with divergent knobs: each sibling must match the fresh run
// of its own configuration, proving the forks share no mutable state.
func TestForkedSiblingsAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scenario runs are slow")
	}
	base := buildForkScenario(t)
	base.Start(Default())
	base.Warm(2)
	snap := base.Snapshot()

	measure := func(s *Scenario, dca bool) *Result {
		s.H.PCIe().SetPortDCA(SSDPort, dca)
		s.BeginMeasure()
		s.Measure(2)
		return s.EndMeasure()
	}
	gotOn := measure(snap.Fork(), true)
	gotOff := measure(snap.Fork(), false)

	freshRun := func(dca bool) *Result {
		s := buildForkScenario(t)
		s.Start(Default())
		s.Warm(2)
		return measure(s, dca)
	}
	if want := freshRun(true); !reflect.DeepEqual(want, gotOn) {
		t.Errorf("DCA-on sibling diverged from fresh run")
	}
	if want := freshRun(false); !reflect.DeepEqual(want, gotOff) {
		t.Errorf("DCA-off sibling diverged from fresh run")
	}
	// The two siblings must actually have diverged from each other.
	if reflect.DeepEqual(gotOn, gotOff) {
		t.Errorf("DCA on/off siblings produced identical results; divergence knob had no effect")
	}
}
