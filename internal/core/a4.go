// Package core implements A4 itself: the runtime, microarchitecture-aware
// LLC management framework of the paper (§5). The controller is a
// per-simulated-second state machine that reads hardware counters from the
// pcm fabric and drives two knobs — CAT way masks and the hidden per-port
// DCA switch — through the same narrow interfaces a real deployment would
// use (resctrl and perfctrlsts_0).
//
// The framework composes four features, enabled cumulatively to form the
// paper's A4-a .. A4-d variants:
//
//	F-Priority  (A4-a, §5.2) priority-based HP/LP zones with iterative LP
//	            Zone expansion guarded by HPW LLC hit rates (T1);
//	F-Safeguard (A4-b, §5.3) DCA Zone reserved for I/O HPWs and inclusive
//	            ways removed from LP Zone;
//	F-DCAOff    (A4-c, §5.4) selective DCA disabling for storage devices
//	            suffering DMA leak (T2–T4), demoting them to LPW;
//	F-Bypass    (A4-d, §5.5) pseudo LLC bypassing: antagonists (T5) are
//	            squeezed toward a single trash way.
package core

import (
	"fmt"

	"a4sim/internal/cache"
	"a4sim/internal/hierarchy"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/stats"
	"a4sim/internal/trace"
	"a4sim/internal/workload"
)

// Feature is a bit set selecting A4 sub-mechanisms.
type Feature uint8

// Features, cumulative in the paper's variants.
const (
	FeatPriority Feature = 1 << iota
	FeatSafeguard
	FeatDCAOff
	FeatBypass
	// FeatNetBloat is the extension sketched in §1: a low-priority
	// network-I/O workload whose consumed packets heavily DMA-bloat the
	// standard ways is confined to trash ways, like storage antagonists.
	FeatNetBloat
)

// VariantA..VariantD are the evaluated configurations.
const (
	VariantA = FeatPriority
	VariantB = FeatPriority | FeatSafeguard
	VariantC = FeatPriority | FeatSafeguard | FeatDCAOff
	VariantD = FeatPriority | FeatSafeguard | FeatDCAOff | FeatBypass
	// VariantExt adds the network-bloat extension on top of A4-d.
	VariantExt = VariantD | FeatNetBloat
)

// Thresholds are T1–T5 of Table 1.
type Thresholds struct {
	HPWLLCHitThr    float64 // T1: tolerated relative drop in HPW LLC hit rate
	DMALkDCAMsThr   float64 // T2: DCA miss rate indicating leak
	DMALkIOTpThr    float64 // T3: storage share of PCIe write throughput
	DMALkLLCMsThr   float64 // T4: storage workload LLC miss rate
	AntCacheMissThr float64 // T5: MLC & LLC miss rate marking an antagonist
}

// DefaultThresholds returns Table 1's values.
func DefaultThresholds() Thresholds {
	return Thresholds{
		HPWLLCHitThr:    0.20,
		DMALkDCAMsThr:   0.40,
		DMALkIOTpThr:    0.35,
		DMALkLLCMsThr:   0.40,
		AntCacheMissThr: 0.90,
	}
}

// Timing are the controller's intervals, in simulated seconds.
type Timing struct {
	ExpandInterval int  // LP Zone grows one way per this many seconds
	StableInterval int  // seconds of stability before a revert probe
	RevertSeconds  int  // how long a revert probe lasts
	Oracle         bool // disable revert probes entirely (Fig. 15c oracle)
}

// DefaultTiming returns the paper's 2 s / 10 s / 1 s values.
func DefaultTiming() Timing {
	return Timing{ExpandInterval: 2, StableInterval: 10, RevertSeconds: 1}
}

// WorkloadInfo is what the operator (or cluster manager) tells A4 about a
// workload, per §5.1.
type WorkloadInfo struct {
	ID       pcm.WorkloadID
	Name     string
	Cores    []int
	Class    workload.Class
	Port     int // PCIe port of the attached device, -1 for none
	Priority workload.Priority
}

// Config assembles a controller.
type Config struct {
	Features   Feature
	Thresholds Thresholds
	Timing     Timing
	// StabilityFluct is the "fluctuations greater than 10%" bound of §5.5.
	StabilityFluct float64
}

// DefaultConfig returns the full A4-d configuration with Table 1 values.
func DefaultConfig() Config {
	return Config{
		Features:       VariantD,
		Thresholds:     DefaultThresholds(),
		Timing:         DefaultTiming(),
		StabilityFluct: 0.10,
	}
}

// searchState tracks the LP Zone expansion of §5.2.
type searchState int

const (
	stateInit      searchState = iota // apply initial partitions, collect reference
	stateSearching                    // expanding LP Zone
	stateSettled                      // allocation fixed; monitoring
	stateReverting                    // temporary revert probe in progress
)

// antagonist records a workload under pseudo LLC bypassing.
type antagonist struct {
	// left is the current left edge of the trash-way range.
	left int
	// missAtDetect is the LLC miss rate when flagged (restore reference).
	missAtDetect float64
	// ioTPAtDetect is the I/O throughput when flagged (storage restore).
	ioTPAtDetect float64
	// storage marks a DCA-disabled storage antagonist (vs. non-I/O, T5).
	storage bool
	// settled stops further trash-way shrinking.
	settled bool
	// baselined is set once the post-transition stability references have
	// been captured (disabling DCA itself moves the miss rate, so the
	// detection-time values are not valid fluctuation references).
	baselined bool
}

// Controller is the A4 daemon.
type Controller struct {
	cfg  Config
	h    *hierarchy.Hierarchy
	info []WorkloadInfo

	ways     int
	secs     int // simulated seconds elapsed
	state    searchState
	stateAge int // seconds in current state

	// LP Zone [lpLeft, lpRight]; initial values depend on the mode.
	lpLeft, lpRight int
	minLeft         int

	// Reference HPW hit rates measured at the initial partitions.
	hitRef   map[pcm.WorkloadID]float64
	lastHit  map[pcm.WorkloadID]float64
	lastSeen map[pcm.WorkloadID]pcm.Sample

	antagonists map[pcm.WorkloadID]*antagonist
	demoted     map[pcm.WorkloadID]bool

	// Stability references for trash-way shrinking.
	lastMemBW float64

	// savedLPLeft preserves the settled allocation across a revert probe.
	savedLPLeft int

	// Events records controller decisions for traces and tests.
	Events []string
	// tlog optionally mirrors events into a bounded trace ring.
	tlog *trace.Log

	// sampler provides per-second pcm samples; the harness supplies it so
	// sampling happens exactly once per second across all consumers.
	sampler func() []pcm.Sample
	// memBW returns system memory bandwidth (GB/s) for the last second.
	memBW func() float64
}

// New builds a controller over the hierarchy for the given workload set.
func New(cfg Config, h *hierarchy.Hierarchy, info []WorkloadInfo,
	sampler func() []pcm.Sample, memBW func() float64) *Controller {
	c := &Controller{
		cfg:         cfg,
		h:           h,
		info:        info,
		ways:        h.Config().LLC.Ways,
		hitRef:      make(map[pcm.WorkloadID]float64),
		lastHit:     make(map[pcm.WorkloadID]float64),
		lastSeen:    make(map[pcm.WorkloadID]pcm.Sample),
		antagonists: make(map[pcm.WorkloadID]*antagonist),
		demoted:     make(map[pcm.WorkloadID]bool),
		sampler:     sampler,
		memBW:       memBW,
	}
	c.resetPartitions()
	c.apply()
	return c
}

// Fork returns an independent deep copy of the controller's state machine
// wired to the given (already forked) hierarchy and sampler closures: zone
// bounds, search state, references, antagonist records, demotions, and the
// decision log all carry over, so the fork's next OnSecond decides exactly
// what the original's would. The optional trace mirror is not carried —
// attach a fresh one with SetTraceLog if the fork should trace.
func (c *Controller) Fork(h *hierarchy.Hierarchy,
	sampler func() []pcm.Sample, memBW func() float64) *Controller {
	n := &Controller{
		cfg:         c.cfg,
		h:           h,
		ways:        c.ways,
		secs:        c.secs,
		state:       c.state,
		stateAge:    c.stateAge,
		lpLeft:      c.lpLeft,
		lpRight:     c.lpRight,
		minLeft:     c.minLeft,
		hitRef:      make(map[pcm.WorkloadID]float64, len(c.hitRef)),
		lastHit:     make(map[pcm.WorkloadID]float64, len(c.lastHit)),
		lastSeen:    make(map[pcm.WorkloadID]pcm.Sample, len(c.lastSeen)),
		antagonists: make(map[pcm.WorkloadID]*antagonist, len(c.antagonists)),
		demoted:     make(map[pcm.WorkloadID]bool, len(c.demoted)),
		lastMemBW:   c.lastMemBW,
		savedLPLeft: c.savedLPLeft,
		Events:      append([]string(nil), c.Events...),
		sampler:     sampler,
		memBW:       memBW,
	}
	n.info = make([]WorkloadInfo, len(c.info))
	for i, w := range c.info {
		n.info[i] = w
		n.info[i].Cores = append([]int(nil), w.Cores...)
	}
	for id, v := range c.hitRef {
		n.hitRef[id] = v
	}
	for id, v := range c.lastHit {
		n.lastHit[id] = v
	}
	for id, s := range c.lastSeen {
		n.lastSeen[id] = s
	}
	for id, a := range c.antagonists {
		ac := *a
		n.antagonists[id] = &ac
	}
	for id, v := range c.demoted {
		n.demoted[id] = v
	}
	return n
}

// hasIOHPW reports whether any I/O workload currently holds HPW priority.
func (c *Controller) hasIOHPW() bool {
	for _, w := range c.info {
		if w.Priority == workload.HPW && w.Class != workload.ClassCompute && !c.demoted[w.ID] {
			return true
		}
	}
	return false
}

// safeguarding reports whether the F-Safeguard zone layout is active.
func (c *Controller) safeguarding() bool {
	return c.cfg.Features&FeatSafeguard != 0 && c.hasIOHPW()
}

// resetPartitions restores the initial partitions of the active mode and
// re-enters the searching flow.
func (c *Controller) resetPartitions() {
	if c.safeguarding() {
		// Fig. 10b: LP Zone starts at way[7:8]; inclusive ways reserved for
		// the HP Zone, DCA ways for I/O HPWs.
		c.lpLeft, c.lpRight = c.ways-4, c.ways-3
		c.minLeft = 2
	} else {
		// Fig. 10a: LP Zone starts at the two rightmost ways.
		c.lpLeft, c.lpRight = c.ways-2, c.ways-1
		c.minLeft = 1
	}
	c.state = stateInit
	c.stateAge = 0
	c.hitRef = make(map[pcm.WorkloadID]float64)
}

// priorityOf returns the effective priority (demotions applied).
func (c *Controller) priorityOf(w WorkloadInfo) workload.Priority {
	if c.demoted[w.ID] {
		return workload.LPW
	}
	if _, ok := c.antagonists[w.ID]; ok {
		return workload.LPW
	}
	return w.Priority
}

// maskFor computes the CAT mask of one workload under the current state.
func (c *Controller) maskFor(w WorkloadInfo) cache.WayMask {
	if c.cfg.Features&FeatPriority == 0 {
		return cache.MaskAll(c.ways)
	}
	if ant, ok := c.antagonists[w.ID]; ok && c.cfg.Features&FeatBypass != 0 {
		right := c.trashRight()
		left := ant.left
		if left > right {
			left = right
		}
		return cache.MaskRange(left, right)
	}
	if c.priorityOf(w) == workload.LPW {
		return cache.MaskRange(c.lpLeft, c.lpRight)
	}
	// HPWs: I/O HPWs are left unconstrained (full mask); non-I/O HPWs are
	// kept out of the DCA ways when safeguarding is active.
	if c.safeguarding() && w.Class == workload.ClassCompute {
		return cache.MaskRange(c.h.LLC().Geometry().NumDCA, c.ways-1)
	}
	return cache.MaskAll(c.ways)
}

// trashRight is the terminal trash way: the rightmost way of the LP Zone
// that is still a standard way (way[8] when safeguarding).
func (c *Controller) trashRight() int {
	r := c.lpRight
	if inc := c.h.LLC().Geometry().NumInclusive; r > c.ways-1-inc {
		if c.safeguarding() {
			r = c.ways - 1 - inc
		}
	}
	return r
}

// apply programs CAT for every workload. Each workload gets its own CLOS
// (index+1; CLOS 0 stays the full-mask default).
func (c *Controller) apply() {
	cat := c.h.CAT()
	for i, w := range c.info {
		clos := i + 1
		if err := cat.SetMask(clos, c.maskFor(w)); err != nil {
			panic(fmt.Sprintf("a4: programming CLOS %d: %v", clos, err))
		}
		for _, core := range w.Cores {
			if err := cat.Associate(core, clos); err != nil {
				panic(fmt.Sprintf("a4: associating core %d: %v", core, err))
			}
		}
	}
}

// SetTraceLog mirrors controller decisions into a bounded trace ring.
func (c *Controller) SetTraceLog(l *trace.Log) { c.tlog = l }

// logf appends a controller event.
func (c *Controller) logf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.Events = append(c.Events, fmt.Sprintf("t=%ds %s", c.secs, msg))
	if c.tlog != nil {
		c.tlog.Addf(sim.Tick(c.secs)*sim.TicksPerSecond, trace.KindDetect, "a4", "%s", msg)
	}
}

// LPZone returns the current LP Zone bounds (tests, traces).
func (c *Controller) LPZone() (left, right int) { return c.lpLeft, c.lpRight }

// State returns a short name of the controller state.
func (c *Controller) State() string {
	switch c.state {
	case stateInit:
		return "init"
	case stateSearching:
		return "searching"
	case stateSettled:
		return "settled"
	default:
		return "reverting"
	}
}

// StateCode returns the numeric search state (0 init, 1 searching,
// 2 settled, 3 reverting) — the telemetry plane records it per second so
// transient figures can align controller transitions with workload metrics.
func (c *Controller) StateCode() int { return int(c.state) }

// FeatureMask returns the configured feature bit set.
func (c *Controller) FeatureMask() Feature { return c.cfg.Features }

// IsAntagonist reports whether id is under pseudo LLC bypassing.
func (c *Controller) IsAntagonist(id pcm.WorkloadID) bool {
	_, ok := c.antagonists[id]
	return ok
}

// IsDemoted reports whether id was demoted to LPW by F-DCAOff.
func (c *Controller) IsDemoted(id pcm.WorkloadID) bool { return c.demoted[id] }

// OnSecond implements sim.Observer: the 1 s monitoring loop of Fig. 9.
func (c *Controller) OnSecond(now sim.Tick) {
	c.secs++
	samples := c.sampler()
	byID := make(map[pcm.WorkloadID]pcm.Sample, len(samples))
	for _, s := range samples {
		byID[s.ID] = s
	}
	memBW := c.memBW()

	if c.cfg.Features&FeatPriority == 0 {
		return
	}

	// F-DCAOff: detect storage-driven DMA leak (§5.4) at any point.
	if c.cfg.Features&FeatDCAOff != 0 {
		c.detectStorageAntagonists(byID)
	}

	c.stateAge++
	switch c.state {
	case stateInit:
		// One full second at the initial partitions: record references.
		for _, w := range c.info {
			if c.priorityOf(w) == workload.HPW {
				c.hitRef[w.ID] = byID[w.ID].LLCHitRate
			}
		}
		c.state = stateSearching
		c.stateAge = 0

	case stateSearching:
		if c.stateAge < c.cfg.Timing.ExpandInterval {
			break
		}
		c.stateAge = 0
		if c.hpwDegraded(byID) {
			// Last expansion hurt an HPW: revert it and settle.
			if c.lpLeft < c.lpRight {
				c.lpLeft++
				c.apply()
			}
			c.settle()
			break
		}
		if c.lpLeft <= c.minLeft {
			c.settle()
			break
		}
		c.lpLeft--
		c.logf("expand LP zone to [%d:%d]", c.lpLeft, c.lpRight)
		c.apply()

	case stateSettled:
		// Phase-change detection (§5.6 condition 2).
		if c.hpwDegraded(byID) && c.stateAge > 1 {
			c.logf("phase change detected; re-searching")
			c.resetPartitions()
			c.apply()
			break
		}
		// F-Bypass: antagonist detection and trash-way shrinking.
		if c.cfg.Features&FeatBypass != 0 {
			c.detectNonIOAntagonists(byID)
			if c.cfg.Features&FeatNetBloat != 0 {
				c.detectNetworkBloat(byID)
			}
			c.shrinkTrashWays(byID, memBW)
			c.restoreRecoveredAntagonists(byID)
		}
		// Revert probe (§5.6 condition 3) unless running as the oracle.
		if !c.cfg.Timing.Oracle && c.stateAge >= c.cfg.Timing.StableInterval {
			c.savedLPLeft = c.lpLeft
			c.lpLeft, c.lpRight = c.initialPartition()
			c.state = stateReverting
			c.stateAge = 0
			c.logf("revert probe: LP zone to initial [%d:%d]", c.lpLeft, c.lpRight)
			c.apply()
		}

	case stateReverting:
		if c.stateAge < c.cfg.Timing.RevertSeconds {
			break
		}
		// Compare attainable hit rates at the initial partition against the
		// references; a large gain means the phase changed under us.
		changed := false
		for _, w := range c.info {
			if c.priorityOf(w) != workload.HPW {
				continue
			}
			ref, ok := c.hitRef[w.ID]
			if !ok {
				continue
			}
			cur := byID[w.ID].LLCHitRate
			if cur > ref && (cur-ref) > c.cfg.Thresholds.HPWLLCHitThr*maxf(ref, 1e-9) {
				changed = true
			}
		}
		if changed {
			c.logf("revert probe found phase change; re-searching")
			c.resetPartitions()
		} else {
			c.lpLeft = c.savedLPLeft
			c.state = stateSettled
			c.stateAge = 0
		}
		c.apply()
	}

	c.lastMemBW = memBW
	for id, s := range byID {
		c.lastSeen[id] = s
		c.lastHit[id] = s.LLCHitRate
	}
}

// initialPartition returns the mode's initial LP Zone bounds.
func (c *Controller) initialPartition() (left, right int) {
	if c.safeguarding() {
		return c.ways - 4, c.ways - 3
	}
	return c.ways - 2, c.ways - 1
}

// settle freezes the LP Zone.
func (c *Controller) settle() {
	c.state = stateSettled
	c.stateAge = 0
	c.logf("LP zone settled at [%d:%d]", c.lpLeft, c.lpRight)
}

// hpwDegraded reports whether any HPW's LLC hit rate dropped more than T1
// relative to its reference.
func (c *Controller) hpwDegraded(byID map[pcm.WorkloadID]pcm.Sample) bool {
	for _, w := range c.info {
		if c.priorityOf(w) != workload.HPW {
			continue
		}
		ref, ok := c.hitRef[w.ID]
		if !ok || ref <= 0 {
			continue
		}
		cur := byID[w.ID].LLCHitRate
		if (ref-cur)/ref > c.cfg.Thresholds.HPWLLCHitThr {
			return true
		}
	}
	return false
}

// detectStorageAntagonists applies the three-condition DMA-leak test of
// §5.4 and disables DCA for the offending storage device.
func (c *Controller) detectStorageAntagonists(byID map[pcm.WorkloadID]pcm.Sample) {
	// Total PCIe write (device-to-host) throughput across I/O workloads.
	var totalIn float64
	for _, w := range c.info {
		if w.Class != workload.ClassCompute {
			totalIn += byID[w.ID].IOReadGBps
		}
	}
	for _, w := range c.info {
		if w.Class != workload.ClassStorage || c.demoted[w.ID] || w.Port < 0 {
			continue
		}
		s := byID[w.ID]
		if !s.IsIOActive() || totalIn <= 0 {
			continue
		}
		share := s.IOReadGBps / totalIn
		t := c.cfg.Thresholds
		if s.DCAMissRate > t.DMALkDCAMsThr && s.LLCMissRate > t.DMALkLLCMsThr && share > t.DMALkIOTpThr {
			c.h.PCIe().SetPortDCA(w.Port, false)
			c.demoted[w.ID] = true
			c.antagonists[w.ID] = &antagonist{
				left:         c.lpLeft,
				missAtDetect: s.LLCMissRate,
				ioTPAtDetect: s.IOReadGBps,
				storage:      true,
			}
			c.logf("storage antagonist %s: DCA off for port %d, demoted to LPW", w.Name, w.Port)
			// §5.4: LP Zone is reallocated including the demoted workload.
			c.resetPartitions()
			c.apply()
			return
		}
	}
}

// detectNonIOAntagonists applies the T5 test of §5.5.
func (c *Controller) detectNonIOAntagonists(byID map[pcm.WorkloadID]pcm.Sample) {
	t := c.cfg.Thresholds.AntCacheMissThr
	for _, w := range c.info {
		if w.Class != workload.ClassCompute {
			continue
		}
		if _, ok := c.antagonists[w.ID]; ok {
			continue
		}
		s := byID[w.ID]
		if s.MLCMissRate > t && s.LLCMissRate > t {
			c.antagonists[w.ID] = &antagonist{
				left:         c.lpLeft,
				missAtDetect: s.LLCMissRate,
			}
			c.logf("non-I/O antagonist %s detected (MLC miss %.2f, LLC miss %.2f)", w.Name, s.MLCMissRate, s.LLCMissRate)
			c.apply()
		}
	}
}

// detectNetworkBloat flags low-priority network workloads whose consumed
// packets bloat the standard ways at a high rate relative to their LLC use
// (§1 extension). They keep DCA (latency still matters) but their MLC
// evictions are steered into trash ways.
func (c *Controller) detectNetworkBloat(byID map[pcm.WorkloadID]pcm.Sample) {
	for _, w := range c.info {
		if w.Class != workload.ClassNetwork || w.Priority == workload.HPW {
			continue
		}
		if _, ok := c.antagonists[w.ID]; ok {
			continue
		}
		s := byID[w.ID]
		// Heavy bloat with poor reuse: most of what it evicts never hits.
		if s.DMABloats > 0 && s.LLCHitRate < 1-c.cfg.Thresholds.AntCacheMissThr &&
			float64(s.DMABloats) > 0.5*float64(s.DMABloats+s.DMALeaks) {
			c.antagonists[w.ID] = &antagonist{
				left:         c.lpLeft,
				missAtDetect: s.LLCMissRate,
			}
			c.logf("network-bloat antagonist %s: confined to trash ways", w.Name)
			c.apply()
		}
	}
}

// shrinkTrashWays progressively narrows each antagonist's ways toward the
// terminal trash way, pausing on instability (§5.5).
func (c *Controller) shrinkTrashWays(byID map[pcm.WorkloadID]pcm.Sample, memBW float64) {
	if c.stateAge%c.cfg.Timing.ExpandInterval != 0 {
		return
	}
	unstable := c.lastMemBW > 0 && stats.Fluctuation(memBW, c.lastMemBW) > c.cfg.StabilityFluct
	for id, ant := range c.antagonists {
		// Shrinking is relative to the settled LP Zone (§5.5 ❷).
		if ant.left < c.lpLeft {
			ant.left = c.lpLeft
		}
		if ant.settled || ant.left >= c.trashRight() {
			ant.settled = true
			continue
		}
		s := byID[id]
		if !ant.baselined {
			ant.missAtDetect = s.LLCMissRate
			if ant.storage {
				ant.ioTPAtDetect = s.IOReadGBps
			}
			ant.baselined = true
			continue
		}
		if unstable ||
			stats.Fluctuation(s.LLCMissRate, ant.missAtDetect) > 3*c.cfg.StabilityFluct ||
			(ant.storage && ant.ioTPAtDetect > 0 && stats.Fluctuation(s.IOReadGBps, ant.ioTPAtDetect) > c.cfg.StabilityFluct) {
			ant.settled = true
			c.logf("trash shrink for %s stopped (instability)", c.nameOf(id))
			continue
		}
		ant.left++
		c.logf("trash ways for %s now [%d:%d]", c.nameOf(id), ant.left, c.trashRight())
		c.apply()
	}
}

// restoreRecoveredAntagonists undoes bypassing/demotion when behaviour
// changes (§5.6 "re-assigning priorities").
func (c *Controller) restoreRecoveredAntagonists(byID map[pcm.WorkloadID]pcm.Sample) {
	for id, ant := range c.antagonists {
		s := byID[id]
		recovered := false
		if ant.storage {
			// A large storage throughput change signals a phase change.
			if ant.ioTPAtDetect > 0 && stats.Fluctuation(s.IOReadGBps, ant.ioTPAtDetect) > 5*c.cfg.StabilityFluct {
				recovered = true
			}
		} else if ant.settled {
			// Antagonistic access pattern ended: miss rate dropped well
			// below the detection point.
			if ant.missAtDetect > 0 && s.LLCMissRate < ant.missAtDetect*(1-5*c.cfg.StabilityFluct) {
				recovered = true
			}
		}
		if !recovered {
			continue
		}
		delete(c.antagonists, id)
		if ant.storage {
			if w := c.findInfo(id); w != nil && w.Port >= 0 {
				c.h.PCIe().SetPortDCA(w.Port, true)
			}
			delete(c.demoted, id)
			c.logf("storage workload %s restored (DCA re-enabled)", c.nameOf(id))
			c.resetPartitions()
		} else {
			c.logf("non-I/O workload %s restored to its QoS pool", c.nameOf(id))
		}
		c.apply()
	}
}

func (c *Controller) findInfo(id pcm.WorkloadID) *WorkloadInfo {
	for i := range c.info {
		if c.info[i].ID == id {
			return &c.info[i]
		}
	}
	return nil
}

func (c *Controller) nameOf(id pcm.WorkloadID) string {
	if w := c.findInfo(id); w != nil {
		return w.Name
	}
	return fmt.Sprintf("wl%d", id)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
