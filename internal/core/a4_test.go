package core

import (
	"testing"

	"a4sim/internal/cache"
	"a4sim/internal/hierarchy"
	"a4sim/internal/pcm"
	"a4sim/internal/sim"
	"a4sim/internal/workload"
)

// rig drives the controller with hand-crafted samples, no simulation.
type rig struct {
	h       *hierarchy.Hierarchy
	fabric  *pcm.Fabric
	ctrl    *Controller
	samples map[pcm.WorkloadID]pcm.Sample
	memBW   float64
	now     sim.Tick
}

func newRig(t *testing.T, cfg Config, infos []WorkloadInfo) *rig {
	t.Helper()
	f := pcm.NewFabric(1)
	// Mirror the registration order expected by the infos.
	for _, w := range infos {
		if got := f.Register(w.Name); got != w.ID {
			t.Fatalf("rig registration mismatch for %s: %d != %d", w.Name, got, w.ID)
		}
	}
	hcfg := hierarchy.TestConfig()
	hcfg.NumCores = 8
	h := hierarchy.New(hcfg, f)
	r := &rig{h: h, fabric: f, samples: map[pcm.WorkloadID]pcm.Sample{}}
	r.ctrl = New(cfg, h, infos,
		func() []pcm.Sample {
			out := make([]pcm.Sample, 0, len(r.samples))
			for _, s := range r.samples {
				out = append(out, s)
			}
			return out
		},
		func() float64 { return r.memBW })
	return r
}

func (r *rig) tick(n int) {
	for i := 0; i < n; i++ {
		r.now += sim.TicksPerSecond
		r.ctrl.OnSecond(r.now)
	}
}

func (r *rig) set(id pcm.WorkloadID, s pcm.Sample) {
	s.ID = id
	r.samples[id] = s
}

func twoWorkloads() []WorkloadInfo {
	return []WorkloadInfo{
		{ID: 0, Name: "hp", Cores: []int{0, 1}, Class: workload.ClassCompute, Port: -1, Priority: workload.HPW},
		{ID: 1, Name: "lp", Cores: []int{2, 3}, Class: workload.ClassCompute, Port: -1, Priority: workload.LPW},
	}
}

func TestInitialPartitionsModeA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Features = VariantA
	r := newRig(t, cfg, twoWorkloads())
	// Without I/O HPWs, LP Zone starts at the two rightmost ways.
	l, hi := r.ctrl.LPZone()
	if l != 9 || hi != 10 {
		t.Fatalf("initial LP zone [%d:%d], want [9:10]", l, hi)
	}
	// HPW mask is full; LPW mask is the LP zone.
	if got := r.h.CAT().MaskOf(0); got != cache.MaskAll(11) {
		t.Errorf("HPW mask %#x, want full", uint32(got))
	}
	if got := r.h.CAT().MaskOf(2); got != cache.MaskRange(9, 10) {
		t.Errorf("LPW mask %#x, want [9:10]", uint32(got))
	}
}

func TestLPZoneExpansionAndSettle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Features = VariantA
	r := newRig(t, cfg, twoWorkloads())
	// Healthy HPW hit rates: expansion proceeds one way per 2 s.
	r.set(0, pcm.Sample{LLCHitRate: 0.9})
	r.set(1, pcm.Sample{LLCHitRate: 0.5})
	r.tick(1) // init: reference capture
	r.tick(2) // one expansion
	if l, _ := r.ctrl.LPZone(); l != 8 {
		t.Fatalf("LP zone left = %d after first expansion, want 8", l)
	}
	// Now the HPW degrades beyond T1 (20% relative): revert and settle.
	r.set(0, pcm.Sample{LLCHitRate: 0.6})
	r.tick(2)
	if l, _ := r.ctrl.LPZone(); l != 9 {
		t.Fatalf("LP zone left = %d after degradation, want reverted to 9", l)
	}
	if r.ctrl.State() != "settled" {
		t.Fatalf("state = %s, want settled", r.ctrl.State())
	}
}

func TestSafeguardingLayout(t *testing.T) {
	infos := []WorkloadInfo{
		{ID: 0, Name: "net", Cores: []int{0, 1}, Class: workload.ClassNetwork, Port: 0, Priority: workload.HPW},
		{ID: 1, Name: "cpu", Cores: []int{2, 3}, Class: workload.ClassCompute, Port: -1, Priority: workload.HPW},
		{ID: 2, Name: "lp", Cores: []int{4, 5}, Class: workload.ClassCompute, Port: -1, Priority: workload.LPW},
	}
	cfg := DefaultConfig()
	cfg.Features = VariantB
	r := newRig(t, cfg, infos)
	// LP Zone starts at way[7:8], excluded from the inclusive ways.
	if l, hi := r.ctrl.LPZone(); l != 7 || hi != 8 {
		t.Fatalf("safeguarded LP zone [%d:%d], want [7:8]", l, hi)
	}
	// I/O HPW keeps the full mask (it may use the DCA Zone).
	if got := r.h.CAT().MaskOf(0); got != cache.MaskAll(11) {
		t.Errorf("I/O HPW mask %#x, want full", uint32(got))
	}
	// Non-I/O HPW is kept out of the DCA ways.
	if got := r.h.CAT().MaskOf(2); got != cache.MaskRange(2, 10) {
		t.Errorf("non-I/O HPW mask %#x, want [2:10]", uint32(got))
	}
	// LPW is confined to the LP zone.
	if got := r.h.CAT().MaskOf(4); got != cache.MaskRange(7, 8) {
		t.Errorf("LPW mask %#x, want [7:8]", uint32(got))
	}
}

func storageInfos() []WorkloadInfo {
	return []WorkloadInfo{
		{ID: 0, Name: "net", Cores: []int{0, 1}, Class: workload.ClassNetwork, Port: 0, Priority: workload.HPW},
		{ID: 1, Name: "fio", Cores: []int{2, 3}, Class: workload.ClassStorage, Port: 1, Priority: workload.LPW},
	}
}

func TestStorageAntagonistDetection(t *testing.T) {
	r := newRig(t, DefaultConfig(), storageInfos())
	// FIO exhibits the three DMA-leak symptoms of §5.4.
	r.set(0, pcm.Sample{Name: "net", LLCHitRate: 0.9, IOReadGBps: 10})
	r.set(1, pcm.Sample{Name: "fio", LLCHitRate: 0.3, LLCMissRate: 0.7, DCAMissRate: 0.9, IOReadGBps: 12})
	r.tick(2)
	if !r.ctrl.IsDemoted(1) {
		t.Fatalf("storage workload should be demoted")
	}
	if r.h.PCIe().DCAActive(1) {
		t.Fatalf("SSD port DCA should be off")
	}
	if !r.h.PCIe().DCAActive(0) {
		t.Fatalf("NIC port DCA must stay on")
	}
}

func TestStorageDetectionRespectsThresholds(t *testing.T) {
	r := newRig(t, DefaultConfig(), storageInfos())
	// Low DCA miss rate: no demotion even with high share and misses.
	r.set(0, pcm.Sample{LLCHitRate: 0.9, IOReadGBps: 1})
	r.set(1, pcm.Sample{LLCHitRate: 0.3, LLCMissRate: 0.9, DCAMissRate: 0.1, IOReadGBps: 12})
	r.tick(3)
	if r.ctrl.IsDemoted(1) {
		t.Fatalf("should not demote below T2")
	}
	// Low traffic share: no demotion.
	r.set(1, pcm.Sample{LLCMissRate: 0.9, DCAMissRate: 0.9, IOReadGBps: 1})
	r.set(0, pcm.Sample{LLCHitRate: 0.9, IOReadGBps: 50})
	r.tick(3)
	if r.ctrl.IsDemoted(1) {
		t.Fatalf("should not demote below T3 share")
	}
}

func TestNonIOAntagonistAndTrashShrink(t *testing.T) {
	cfg := DefaultConfig()
	infos := twoWorkloads()
	r := newRig(t, cfg, infos)
	healthy := pcm.Sample{LLCHitRate: 0.9, MLCMissRate: 0.2, LLCMissRate: 0.2}
	r.set(0, healthy)
	r.set(1, healthy)
	// Let the LP zone search settle fully (expansion to minLeft).
	r.tick(1 + 2*12)
	if r.ctrl.State() != "settled" {
		t.Fatalf("state = %s, want settled", r.ctrl.State())
	}
	// The LPW turns antagonistic (T5) with stable miss rates thereafter.
	ant := pcm.Sample{LLCHitRate: 0.05, MLCMissRate: 0.95, LLCMissRate: 0.95}
	r.set(1, ant)
	r.memBW = 50
	r.tick(1)
	if !r.ctrl.IsAntagonist(1) {
		t.Fatalf("LPW should be flagged as antagonist")
	}
	// With stability, trash ways shrink toward the terminal single way.
	r.tick(40)
	m := r.h.CAT().MaskOf(2)
	if m.Count() > 2 {
		t.Fatalf("trash mask should have shrunk to the terminal way, got %#x", uint32(m))
	}
}

func TestAntagonistRestore(t *testing.T) {
	r := newRig(t, DefaultConfig(), twoWorkloads())
	healthy := pcm.Sample{LLCHitRate: 0.9, MLCMissRate: 0.2, LLCMissRate: 0.2}
	r.set(0, healthy)
	r.set(1, pcm.Sample{LLCHitRate: 0.02, MLCMissRate: 0.97, LLCMissRate: 0.97})
	r.memBW = 50
	r.tick(40) // settle + detect + shrink to terminal
	if !r.ctrl.IsAntagonist(1) {
		t.Fatalf("setup: LPW should be an antagonist")
	}
	// The antagonistic phase ends: miss rate collapses.
	r.set(1, pcm.Sample{LLCHitRate: 0.8, MLCMissRate: 0.3, LLCMissRate: 0.2})
	r.tick(3)
	if r.ctrl.IsAntagonist(1) {
		t.Fatalf("antagonist should be restored after recovery")
	}
}

func TestRevertProbeCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Features = VariantA
	r := newRig(t, cfg, twoWorkloads())
	r.set(0, pcm.Sample{LLCHitRate: 0.9})
	r.set(1, pcm.Sample{LLCHitRate: 0.5})
	r.tick(1 + 2*12) // settle at full expansion
	if r.ctrl.State() != "settled" {
		t.Fatalf("want settled, got %s", r.ctrl.State())
	}
	// Within the next stable interval a revert probe must appear, and it
	// must end back in the settled state.
	sawRevert := false
	for i := 0; i < cfg.Timing.StableInterval+2; i++ {
		r.tick(1)
		if r.ctrl.State() == "reverting" {
			sawRevert = true
		}
	}
	if !sawRevert {
		t.Fatalf("no revert probe within the stable interval")
	}
	r.tick(cfg.Timing.RevertSeconds + 1)
	if r.ctrl.State() != "settled" {
		t.Fatalf("want settled after probe, got %s", r.ctrl.State())
	}
}

func TestOracleNeverReverts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Features = VariantA
	cfg.Timing.Oracle = true
	r := newRig(t, cfg, twoWorkloads())
	r.set(0, pcm.Sample{LLCHitRate: 0.9})
	r.set(1, pcm.Sample{LLCHitRate: 0.5})
	r.tick(60)
	if r.ctrl.State() == "reverting" {
		t.Fatalf("oracle must never revert")
	}
}

func TestNoFeaturesMeansNoProgramming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Features = 0
	r := newRig(t, cfg, twoWorkloads())
	r.set(0, pcm.Sample{LLCHitRate: 0.9})
	r.tick(5)
	if got := r.h.CAT().MaskOf(2); got != cache.MaskAll(11) {
		t.Errorf("feature-less controller must leave masks full")
	}
}

func TestDefaultThresholdsMatchTable1(t *testing.T) {
	th := DefaultThresholds()
	if th.HPWLLCHitThr != 0.20 || th.DMALkDCAMsThr != 0.40 ||
		th.DMALkIOTpThr != 0.35 || th.DMALkLLCMsThr != 0.40 || th.AntCacheMissThr != 0.90 {
		t.Errorf("thresholds deviate from Table 1: %+v", th)
	}
	tm := DefaultTiming()
	if tm.ExpandInterval != 2 || tm.StableInterval != 10 || tm.RevertSeconds != 1 {
		t.Errorf("timing deviates from the paper: %+v", tm)
	}
}

func TestVariantComposition(t *testing.T) {
	if VariantA != FeatPriority {
		t.Errorf("VariantA wrong")
	}
	if VariantD&FeatBypass == 0 || VariantD&FeatPriority == 0 {
		t.Errorf("VariantD must include all features")
	}
	if VariantB&FeatDCAOff != 0 {
		t.Errorf("VariantB must not include DCA-off")
	}
}

func TestNetworkBloatExtension(t *testing.T) {
	infos := []WorkloadInfo{
		{ID: 0, Name: "net-hp", Cores: []int{0, 1}, Class: workload.ClassNetwork, Port: 0, Priority: workload.HPW},
		{ID: 1, Name: "net-lp", Cores: []int{2, 3}, Class: workload.ClassNetwork, Port: 0, Priority: workload.LPW},
	}
	cfg := DefaultConfig()
	cfg.Features = VariantExt
	r := newRig(t, cfg, infos)
	r.set(0, pcm.Sample{Name: "net-hp", LLCHitRate: 0.9, IOReadGBps: 10})
	// The LPW network workload bloats heavily with terrible reuse.
	r.set(1, pcm.Sample{Name: "net-lp", LLCHitRate: 0.05, LLCMissRate: 0.95,
		MLCMissRate: 0.5, IOReadGBps: 5, DMABloats: 100000, DMALeaks: 1000})
	r.tick(1 + 2*12) // settle the LP zone first
	r.tick(2)
	if !r.ctrl.IsAntagonist(1) {
		t.Fatalf("bloating network LPW should be confined to trash ways")
	}
	// The HPW network workload must never be flagged by this extension.
	if r.ctrl.IsAntagonist(0) {
		t.Fatalf("network HPW wrongly flagged")
	}
	// Without the feature bit, nothing happens.
	cfg2 := DefaultConfig()
	r2 := newRig(t, cfg2, infos)
	r2.set(0, pcm.Sample{LLCHitRate: 0.9, IOReadGBps: 10})
	r2.set(1, pcm.Sample{LLCHitRate: 0.05, LLCMissRate: 0.95, MLCMissRate: 0.5,
		IOReadGBps: 5, DMABloats: 100000, DMALeaks: 1000})
	r2.tick(30)
	if r2.ctrl.IsAntagonist(1) {
		t.Fatalf("extension must be off in VariantD")
	}
}
