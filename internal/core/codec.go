package core

import (
	"sort"

	"a4sim/internal/codec"
	"a4sim/internal/pcm"
)

// sortedIDs returns map keys in ascending order, pinning the wire order of
// the controller's per-workload maps.
func sortedIDs[V any](m map[pcm.WorkloadID]V) []pcm.WorkloadID {
	ids := make([]pcm.WorkloadID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EncodeState appends the controller's dynamic state machine: zone bounds,
// search state, per-workload references, antagonist records, demotions, and
// the decision log. Configuration, the workload info set, and the sampler
// closures are structural.
func (c *Controller) EncodeState(w *codec.Writer) {
	w.Int(c.secs)
	w.Int(int(c.state))
	w.Int(c.stateAge)
	w.Int(c.lpLeft)
	w.Int(c.lpRight)
	w.Int(c.minLeft)
	w.F64(c.lastMemBW)
	w.Int(c.savedLPLeft)

	w.Int(len(c.hitRef))
	for _, id := range sortedIDs(c.hitRef) {
		w.I64(int64(id))
		w.F64(c.hitRef[id])
	}
	w.Int(len(c.lastHit))
	for _, id := range sortedIDs(c.lastHit) {
		w.I64(int64(id))
		w.F64(c.lastHit[id])
	}
	w.Int(len(c.lastSeen))
	for _, id := range sortedIDs(c.lastSeen) {
		w.I64(int64(id))
		s := c.lastSeen[id]
		s.EncodeState(w)
	}
	w.Int(len(c.antagonists))
	for _, id := range sortedIDs(c.antagonists) {
		w.I64(int64(id))
		a := c.antagonists[id]
		w.Int(a.left)
		w.F64(a.missAtDetect)
		w.F64(a.ioTPAtDetect)
		w.Bool(a.storage)
		w.Bool(a.settled)
		w.Bool(a.baselined)
	}
	w.Int(len(c.demoted))
	for _, id := range sortedIDs(c.demoted) {
		w.I64(int64(id))
		w.Bool(c.demoted[id])
	}
	w.Int(len(c.Events))
	for _, e := range c.Events {
		w.String(e)
	}
}

// mapCount reads a count prefix and bounds it by the remaining bytes (each
// entry occupies at least the given size).
func mapCount(r *codec.Reader, entrySize int) int {
	n := r.Int()
	if r.Err() != nil {
		return 0
	}
	if n < 0 || n*entrySize > r.Remaining() {
		r.Failf("core: snapshot claims %d map entries", n)
		return 0
	}
	return n
}

// DecodeState restores state written by EncodeState. The maps are replaced
// wholesale; a partial failure leaves the sticky error set and the caller
// discards the controller.
func (c *Controller) DecodeState(r *codec.Reader) {
	secs := r.Int()
	state := searchState(r.Int())
	stateAge := r.Int()
	lpLeft := r.Int()
	lpRight := r.Int()
	minLeft := r.Int()
	lastMemBW := r.F64()
	savedLPLeft := r.Int()
	if r.Err() != nil {
		return
	}
	if state < stateInit || state > stateReverting {
		r.Failf("core: snapshot has invalid controller state %d", state)
		return
	}

	hitRef := make(map[pcm.WorkloadID]float64)
	for i, n := 0, mapCount(r, 16); i < n; i++ {
		id := pcm.WorkloadID(r.I64())
		hitRef[id] = r.F64()
	}
	lastHit := make(map[pcm.WorkloadID]float64)
	for i, n := 0, mapCount(r, 16); i < n; i++ {
		id := pcm.WorkloadID(r.I64())
		lastHit[id] = r.F64()
	}
	lastSeen := make(map[pcm.WorkloadID]pcm.Sample)
	for i, n := 0, mapCount(r, 16); i < n; i++ {
		id := pcm.WorkloadID(r.I64())
		var s pcm.Sample
		s.DecodeState(r)
		lastSeen[id] = s
	}
	antagonists := make(map[pcm.WorkloadID]*antagonist)
	for i, n := 0, mapCount(r, 16); i < n; i++ {
		id := pcm.WorkloadID(r.I64())
		a := &antagonist{
			left:         r.Int(),
			missAtDetect: r.F64(),
			ioTPAtDetect: r.F64(),
			storage:      r.Bool(),
			settled:      r.Bool(),
			baselined:    r.Bool(),
		}
		antagonists[id] = a
	}
	demoted := make(map[pcm.WorkloadID]bool)
	for i, n := 0, mapCount(r, 9); i < n; i++ {
		id := pcm.WorkloadID(r.I64())
		demoted[id] = r.Bool()
	}
	nEvents := mapCount(r, 4)
	events := make([]string, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		events = append(events, r.String())
	}
	if r.Err() != nil {
		return
	}

	c.secs = secs
	c.state = state
	c.stateAge = stateAge
	c.lpLeft = lpLeft
	c.lpRight = lpRight
	c.minLeft = minLeft
	c.lastMemBW = lastMemBW
	c.savedLPLeft = savedLPLeft
	c.hitRef = hitRef
	c.lastHit = lastHit
	c.lastSeen = lastSeen
	c.antagonists = antagonists
	c.demoted = demoted
	if len(events) == 0 {
		events = nil
	}
	c.Events = events
}
