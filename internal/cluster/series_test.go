package cluster

import (
	"bytes"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// seriesSpec is testSpec with the telemetry plane enabled.
func seriesSpec(seed uint64, measure float64) *scenario.Spec {
	sp := testSpec(seed)
	sp.MeasureSec = measure
	sp.Series = &scenario.SeriesSpec{}
	return sp
}

// TestClusterSeriesByteIdenticalToSingleNode pins the coordinator half of
// the telemetry determinism contract: a series-enabled run served through
// the sharded fleet — and its /series retrieval, routed by the content
// index — returns byte-identical report and series to a single local node.
func TestClusterSeriesByteIdenticalToSingleNode(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL, newBackend(t).URL)

	local := service.New(service.Config{Workers: 1})
	defer local.Close()

	for _, seed := range []uint64{1, 2, 3, 4} {
		res, err := coord.Submit(seriesSpec(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		want, err := local.Submit(seriesSpec(seed, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Report, want.Report) {
			t.Fatalf("seed %d: coordinator report differs from single node", seed)
		}
		got, ok := coord.Series(res.Hash)
		if !ok {
			t.Fatalf("seed %d: coordinator cannot retrieve series %s", seed, res.Hash)
		}
		wantSeries, ok := local.Series(want.Hash)
		if !ok {
			t.Fatalf("seed %d: local node has no series", seed)
		}
		if !bytes.Equal(got, wantSeries) {
			t.Fatalf("seed %d: cluster-served series differs from single node", seed)
		}
	}
	if _, ok := coord.Series("deadbeef"); ok {
		t.Error("coordinator served a series for an unknown hash")
	}
}

// TestClusterExtendAppendsSeries pins that /extend through the coordinator
// lands on the snapshot-owning backend and appends to its series, matching
// a fresh longer run bit for bit.
func TestClusterExtendAppendsSeries(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)

	first, err := coord.Submit(seriesSpec(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := coord.Extend(first.Hash, 3)
	if err != nil {
		t.Fatal(err)
	}
	local := service.New(service.Config{Workers: 1, SnapshotEntries: -1})
	defer local.Close()
	fresh, err := local.Submit(seriesSpec(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext.Report, fresh.Report) {
		t.Error("cluster-extended report differs from fresh longer run")
	}
	got, ok := coord.Series(ext.Hash)
	if !ok {
		t.Fatal("extended run's series not retrievable through the coordinator")
	}
	want, ok := local.Series(fresh.Hash)
	if !ok {
		t.Fatal("fresh run has no series")
	}
	if !bytes.Equal(got, want) {
		t.Error("cluster-extended series differs from fresh longer run")
	}
}
