package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"a4sim/internal/obs"
	"a4sim/internal/service"
)

// The coordinator's observability surface: the same optional interfaces the
// mux probes on a local service (Tracer, EventsSource, MetricsWriter,
// SeriesStreamer), implemented by delegation. Traces merge the coordinator's
// routing spans with the owning backend's execution spans (joined over the
// wire by the X-A4-Trace header); events and streams proxy to the backend
// that ran the request; metrics expose the fleet sum next to a per-backend
// breakdown.

// TraceRing exposes the coordinator's finished-request traces to the mux.
func (c *Coordinator) TraceRing() *obs.Ring { return c.traces }

// TraceJSON assembles the full cross-host trace for id: the coordinator's
// own spans (queue, handoff, backend_call, reroute) plus the spans each
// contacted backend recorded under the same trace ID. Backend spans carry
// microsecond offsets from that backend's own request start, so within one
// backend_call they nest exactly; across hosts ordering is by each host's
// local clock. Backend fetches are best-effort over the probe client — a
// dead backend costs its spans, never the trace.
func (c *Coordinator) TraceJSON(id string) ([]byte, bool) {
	t, ok := c.traces.Get(id)
	if !ok {
		return nil, false
	}
	spans := t.Snapshot()
	// One fetch per distinct backend this request touched, in first-contact
	// order.
	var urls []string
	seen := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == "backend_call" && sp.Backend != "" && !seen[sp.Backend] {
			seen[sp.Backend] = true
			urls = append(urls, sp.Backend)
		}
	}
	for _, url := range urls {
		remote, ok := c.fetchTrace(url, id)
		if !ok {
			continue
		}
		for i := range remote {
			if remote[i].Backend == "" {
				remote[i].Backend = url
			}
		}
		spans = append(spans, remote...)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUs < spans[j].StartUs })
	return obs.EncodeTrace(id, spans), true
}

func (c *Coordinator) fetchTrace(url, id string) ([]obs.Span, bool) {
	resp, err := c.probe.Get(url + "/trace/" + id)
	if err != nil {
		return nil, false
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	_, spans, err := obs.DecodeTrace(data)
	if err != nil {
		return nil, false
	}
	return spans, true
}

// TraceEvents proxies a cached run's simulator event log from the backend
// that executed it, routed exactly like Series.
func (c *Coordinator) TraceEvents(hash string, n int) ([]byte, bool) {
	path := "/trace/events/"
	if n > 0 {
		return c.fetchByHash(path, fmt.Sprintf("%s?n=%d", hash, n))
	}
	return c.fetchByHash(path, hash)
}

// ServeSeriesStream proxies the live (or replayed) series stream from the
// backend owning hash. The proxy request is bound to the client's context,
// so a subscriber disconnecting tears down the backend leg too, and every
// read is flushed through immediately to preserve the 1 Hz cadence. A 404
// falls through to the next backend in rendezvous order, mirroring Series.
func (c *Coordinator) ServeSeriesStream(w http.ResponseWriter, req *http.Request, hash string) {
	key, known := c.routeOf(hash)
	if !known {
		key = hash
	}
	for _, b := range c.rendezvous(key) {
		if !c.routable(b) {
			continue
		}
		preq, err := http.NewRequestWithContext(req.Context(), http.MethodGet, b.url+"/series/"+hash+"/stream", nil)
		if err != nil {
			continue
		}
		resp, err := c.stream.Do(preq)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxResponseBytes))
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyStream(w, resp.Body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusNotFound)
	json.NewEncoder(w).Encode(map[string]string{"error": "no series for " + hash + " on any backend"})
}

// copyStream relays SSE bytes, flushing after every read so frames are not
// pooled in the proxy's buffers.
func copyStream(w http.ResponseWriter, r io.Reader) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	f, _ := w.(http.Flusher)
	if f != nil {
		f.Flush()
	}
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// WriteMetrics exposes the fleet in one scrape: every service family first
// as an unlabeled fleet sum (so dashboards built against a single node read
// a coordinator identically), then once per reachable backend with a
// backend label, followed by the coordinator's own routing counters.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	st := c.Stats()
	rows := []service.LabeledStats{{Stats: st.Stats}}
	for _, bs := range st.Backends {
		if bs.Reachable {
			rows = append(rows, service.LabeledStats{Labels: obs.Label("backend", bs.URL), Stats: bs.Stats})
		}
	}
	service.WriteStatsProm(w, rows)
	e := obs.NewExpo(w)
	e.Family("a4_backend_up", "gauge")
	for _, bs := range st.Backends {
		up := 0.0
		if bs.Reachable {
			up = 1.0
		}
		e.Val("a4_backend_up", obs.Label("backend", bs.URL), up)
	}
	for _, f := range []struct {
		name string
		v    uint64
	}{
		{"a4_cluster_reroutes_total", st.Reroutes},
		{"a4_cluster_soft_retries_total", st.SoftRetries},
		{"a4_cluster_snapshot_handoffs_total", st.SnapshotHandoffs},
		{"a4_cluster_rejected_total", st.Rejected},
	} {
		e.Family(f.name, "counter")
		e.Val(f.name, "", float64(f.v))
	}
	e.Family("a4_traces", "gauge")
	e.Val("a4_traces", "", float64(c.traces.Len()))
	e.Family("a4_trace_ring_dropped_total", "counter")
	e.Val("a4_trace_ring_dropped_total", "", float64(c.traces.Dropped()))
}
