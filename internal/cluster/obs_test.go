package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"a4sim/internal/obs"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
	"a4sim/internal/store"
)

// newStoreBackend is newBackend with a durable store, so traced runs record
// store_write spans.
func newStoreBackend(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, CacheEntries: 64, Store: st})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)
	return srv
}

// TestCoordinatorTraceJoinAcrossReroute is the cross-host tracing
// acceptance pin: a traced POST /run through a 2-backend coordinator whose
// routing target is dead yields ONE trace that shows the failed hop, the
// reroute decision, and — merged from the surviving backend under the same
// forwarded ID — the execution's own lifecycle spans (queue, warm, measure,
// store), each labeled with the backend that ran them.
func TestCoordinatorTraceJoinAcrossReroute(t *testing.T) {
	dead := newStoreBackend(t)
	live := newStoreBackend(t)
	sp := testSpec(5)
	sp.Series = &scenario.SeriesSpec{}
	_, _, prefix, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}

	coord := newCoordinator(t, dead.URL, live.URL)
	// Kill whichever backend rendezvous routing picks first for this prefix,
	// so the submission must reroute to the other.
	order := coord.rendezvous(prefix)
	deadURL, liveURL := dead.URL, live.URL
	if order[0].url == live.URL {
		deadURL, liveURL = live.URL, dead.URL
	}
	if deadURL == dead.URL {
		dead.Close()
	} else {
		live.Close()
	}

	mux := service.NewMux(coord, func() any { return coord.Stats() }, nil)
	front := httptest.NewServer(mux)
	defer front.Close()

	body, _ := json.Marshal(sp)
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/run", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "join-across-reroute-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var wr struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}

	tresp, err := http.Get(front.URL + "/trace/join-across-reroute-1")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", tresp.StatusCode, tbody)
	}
	id, spans, err := obs.DecodeTrace(tbody)
	if err != nil {
		t.Fatal(err)
	}
	if id != "join-across-reroute-1" {
		t.Errorf("trace id %q", id)
	}

	byName := map[string][]obs.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	// The routing story: attempts against the dead backend (first call plus
	// the soft retry), the reroute decision, then the successful hop.
	deadCalls, liveCalls := 0, 0
	for _, s := range byName["backend_call"] {
		switch s.Backend {
		case deadURL:
			deadCalls++
		case liveURL:
			liveCalls++
		}
	}
	if deadCalls < 2 {
		t.Errorf("want >=2 backend_call spans to the dead backend (call + soft retry), got %d", deadCalls)
	}
	if liveCalls != 1 {
		t.Errorf("want 1 backend_call span to the live backend, got %d", liveCalls)
	}
	if len(byName["reroute"]) != 1 || byName["reroute"][0].Backend != deadURL {
		t.Errorf("reroute mark %v, want one naming %s", byName["reroute"], deadURL)
	}
	// The execution story, merged from the live backend and labeled with it.
	for _, want := range []string{"queue_wait", "warm", "measure", "store_write"} {
		ss := byName[want]
		if len(ss) == 0 {
			t.Errorf("merged trace missing %s span", want)
			continue
		}
		if ss[0].Backend != liveURL {
			t.Errorf("%s span labeled %q, want %q", want, ss[0].Backend, liveURL)
		}
	}

	// The same trace is also served directly by the backend that ran it —
	// the forwarded header joined the two hops under one ID.
	bresp, err := http.Get(liveURL + "/trace/join-across-reroute-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Errorf("backend does not serve the joined trace: status %d", bresp.StatusCode)
	}

	// And the run's series streams through the coordinator byte-identically
	// to the backend's stored encoding.
	stored, ok := coord.Series(wr.Hash)
	if !ok {
		t.Fatal("series not fetchable through coordinator")
	}
	sresp, err := http.Get(front.URL + "/series/" + wr.Hash + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	var final []byte
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		} else if strings.HasPrefix(line, "data: ") && event == "series" {
			final = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if !bytes.Equal(final, stored) {
		t.Errorf("proxied stream's terminal series differs from stored bytes")
	}
}

// TestCoordinatorMetricsExposition: one scrape serves the fleet sum
// unlabeled, each reachable backend labeled, backend liveness, and the
// coordinator's routing counters.
func TestCoordinatorMetricsExposition(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	coord := newCoordinator(t, b1.URL, b2.URL)
	if _, err := coord.Submit(testSpec(6)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	coord.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE a4_executions_total counter",
		"a4_executions_total 1\n", // fleet sum, unlabeled
		fmt.Sprintf(`a4_executions_total{backend="%s"}`, b1.URL),
		fmt.Sprintf(`a4_backend_up{backend="%s"} 1`, b2.URL),
		"a4_cluster_reroutes_total 0",
		"a4_cluster_rejected_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestCoordinatorTraceEventsProxy: the coordinator serves a cached run's
// controller event log from the backend that executed it.
func TestCoordinatorTraceEventsProxy(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)
	sp := testSpec(7)
	sp.MeasureSec = 8 // long enough for controller decisions to land
	res, err := coord.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := coord.TraceEvents(res.Hash, 0)
	if !ok {
		t.Fatal("event log not served through coordinator")
	}
	var log struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("event log not JSON: %v", err)
	}
	if len(log.Events) == 0 {
		t.Error("no controller events recorded")
	}
	if tail, ok := coord.TraceEvents(res.Hash, 1); ok {
		var tl struct {
			Events []json.RawMessage `json:"events"`
		}
		if json.Unmarshal(tail, &tl) != nil || len(tl.Events) != 1 {
			t.Errorf("n=1 tail served %s", tail)
		}
	} else {
		t.Error("tailed event log not served")
	}
	if _, ok := coord.TraceEvents("0000000000000000", 0); ok {
		t.Error("unknown hash served an event log")
	}
}
