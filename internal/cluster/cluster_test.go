package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"a4sim/internal/figures"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// testSpec is a fast-running scenario (high rate scale, short windows).
func testSpec(seed uint64) *scenario.Spec {
	return &scenario.Spec{
		Name:       "cluster-test",
		Manager:    "a4-d",
		Params:     scenario.ParamSpec{RateScale: 8192, Seed: seed},
		WarmupSec:  1,
		MeasureSec: 1,
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1}, Priority: "hpw", Touch: true},
			{Kind: "xmem", Name: "xmem", Cores: []int{2}, Priority: "lpw", WSKB: 1024, Pattern: "random"},
		},
	}
}

// newBackend starts one real a4serve backend (service + HTTP mux) and
// returns its server.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, CacheEntries: 64})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)
	return srv
}

// killableBackend aborts every request after the first `serve` have been
// served, simulating a backend dying mid-sweep: in-flight and subsequent
// requests fail at the transport level, exactly like a killed process.
type killableBackend struct {
	inner  http.Handler
	serve  int64
	served atomic.Int64
	armed  atomic.Bool
}

func (k *killableBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.armed.Load() && k.served.Add(1) > k.serve {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

func newCoordinator(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	c, err := New(Config{Backends: urls, ReviveAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sweepReq sweeps managers × measurement windows: two prefix groups whose
// rows chain through backend snapshots, exercising both the concurrent and
// the sequential routing paths.
func sweepReq() *service.SweepRequest {
	return &service.SweepRequest{
		Spec: *testSpec(1),
		Axes: []service.Axis{
			{Param: "manager", Managers: []string{"default", "a4-d"}},
			{Param: "measure_sec", Values: []float64{1, 2}},
		},
	}
}

// TestClusterSweepByteIdenticalToSerial is the acceptance pin: the same
// sweep through a 3-backend coordinator and serially on one local node must
// agree on every byte of every point.
func TestClusterSweepByteIdenticalToSerial(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL, newBackend(t).URL)
	got, err := coord.Sweep(sweepReq())
	if err != nil {
		t.Fatal(err)
	}

	serial := service.New(service.Config{Workers: 1})
	defer serial.Close()
	want, err := serial.Sweep(sweepReq())
	if err != nil {
		t.Fatal(err)
	}

	comparePoints(t, got, want)

	// The merged stats cover the whole fleet: executions sum to the grid
	// size and the per-backend breakdown is preserved.
	st := coord.Stats()
	if st.Executions != uint64(len(want)) {
		t.Errorf("merged executions = %d, want %d", st.Executions, len(want))
	}
	if len(st.Backends) != 3 {
		t.Fatalf("got %d backend entries, want 3", len(st.Backends))
	}
	var sum uint64
	for _, bs := range st.Backends {
		if !bs.Reachable {
			t.Errorf("backend %s unreachable in stats: %s", bs.URL, bs.Error)
		}
		sum += bs.Stats.Executions
	}
	if sum != st.Executions {
		t.Errorf("per-backend executions sum %d != merged %d", sum, st.Executions)
	}
}

func comparePoints(t *testing.T, got, want []service.SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Hash != want[i].Hash {
			t.Errorf("point %d hash %s, want %s", i, got[i].Hash, want[i].Hash)
		}
		if got[i].Cached != want[i].Cached {
			t.Errorf("point %d cached=%v, want %v", i, got[i].Cached, want[i].Cached)
		}
		if !bytes.Equal(got[i].Report, want[i].Report) {
			t.Errorf("point %d report differs from serial run", i)
		}
		if fmt.Sprint(got[i].Grid) != fmt.Sprint(want[i].Grid) {
			t.Errorf("point %d grid %v, want %v", i, got[i].Grid, want[i].Grid)
		}
	}
}

// TestClusterReroutesLostBackendMidSweep kills the busiest backend after it
// has served exactly one point and pins that every lost point is rerouted:
// the sweep completes and stays byte-identical to a serial run.
func TestClusterReroutesLostBackendMidSweep(t *testing.T) {
	// Three backends, the victim wrapped so it can be killed mid-flight.
	kills := make([]*killableBackend, 3)
	urls := make([]string, 3)
	for i := range kills {
		svc := service.New(service.Config{Workers: 2, CacheEntries: 64})
		t.Cleanup(svc.Close)
		kills[i] = &killableBackend{
			inner: service.NewMux(svc, func() any { return svc.Stats() }, nil),
			serve: 1,
		}
		srv := httptest.NewServer(kills[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord := newCoordinator(t, urls...)

	// Eight distinct-seed points: eight prefix groups. Pick the backend that
	// homes the most of them as the victim, so it is guaranteed to receive
	// at least one point after its single allowed request — httptest ports
	// are random, so the assignment must be derived, not assumed.
	specs := make([]*scenario.Spec, 8)
	homes := map[string]int{}
	for i := range specs {
		specs[i] = testSpec(uint64(100 + i))
		_, _, prefix, err := specs[i].Digest()
		if err != nil {
			t.Fatal(err)
		}
		homes[coord.rendezvous(prefix)[0].url]++
	}
	victim, most := "", 0
	for url, n := range homes {
		if n > most {
			victim, most = url, n
		}
	}
	if most < 2 {
		// 8 points over <=3 homes: pigeonhole guarantees a home with >=3.
		t.Fatalf("no backend homes 2+ points: %v", homes)
	}
	for i, url := range urls {
		if url == victim {
			kills[i].armed.Store(true)
		}
	}

	req := &service.SweepRequest{
		Spec: *testSpec(0),
		Axes: []service.Axis{{Param: "seed", Values: []float64{100, 101, 102, 103, 104, 105, 106, 107}}},
	}
	got, err := coord.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}

	serial := service.New(service.Config{Workers: 1})
	defer serial.Close()
	want, err := serial.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	comparePoints(t, got, want)

	st := coord.Stats()
	if st.Reroutes < uint64(most-1) {
		t.Errorf("reroutes = %d, want >= %d (victim homed %d points, served 1)", st.Reroutes, most-1, most)
	}
	downSeen := false
	for _, bs := range st.Backends {
		if bs.URL == victim && bs.Down {
			downSeen = true
		}
	}
	if !downSeen {
		t.Errorf("victim %s not marked down in stats: %+v", victim, st.Backends)
	}
}

// TestClusterExtendRoutesToOwner pins prefix affinity end to end: /run then
// Extend land on the same backend, whose warm snapshot serves the extension
// as a fork, and the result matches a cold serial run of the longer spec.
func TestClusterExtendRoutesToOwner(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)

	res, err := coord.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := coord.Extend(res.Hash, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Hash == res.Hash {
		t.Error("extension must re-address under the longer window's hash")
	}

	long := testSpec(7)
	long.MeasureSec = 3
	rep, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext.Report, fresh) {
		t.Fatal("extended report differs from a cold serial run of the longer spec")
	}

	// The fork happened on the owning backend instead of a cold restart.
	if st := coord.Stats(); st.SnapshotForks < 1 {
		t.Errorf("merged snapshot_forks = %d, want >= 1", st.SnapshotForks)
	}

	// The extended run is addressable through the coordinator too.
	if data, ok := coord.Lookup(ext.Hash); !ok || !bytes.Equal(data, ext.Report) {
		t.Error("Lookup did not serve the extended report by content address")
	}

	if _, err := coord.Extend("feedfacefeedface", 2); !errors.Is(err, service.ErrUnknownHash) {
		t.Errorf("unknown hash: got %v, want ErrUnknownHash", err)
	}
}

// TestRunSpecsOverCluster pins the figures fan-out path: spec points run
// through a coordinator come back in input order, byte-identical to running
// each spec serially in-process.
func TestRunSpecsOverCluster(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)
	specs := []*scenario.Spec{testSpec(11), testSpec(12), testSpec(11)}
	specs[2].MeasureSec = 2 // shares spec[0]'s prefix: chained on one backend

	got, err := figures.RunSpecs(figures.Options{Workers: 2}, coord, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d reports, want %d", len(got), len(specs))
	}
	for i, sp := range specs {
		rep, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := rep.Encode()
		have, _ := got[i].Encode()
		if !bytes.Equal(have, want) {
			t.Errorf("spec %d: cluster report differs from serial run", i)
		}
	}
}

func TestClusterSweepRejectsBadGridBeforeExecuting(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL)
	_, err := coord.Sweep(&service.SweepRequest{
		Spec: *testSpec(1),
		Axes: []service.Axis{{Param: "manager", Managers: []string{"default", "bogus"}}},
	})
	if err == nil {
		t.Fatal("sweep with an invalid point accepted")
	}
	if st := coord.Stats(); st.Executions != 0 {
		t.Errorf("invalid sweep executed points: %+v", st)
	}
}

func TestClusterUnavailableWhenFleetIsGone(t *testing.T) {
	srv := newBackend(t)
	url := srv.URL
	srv.Close()
	coord := newCoordinator(t, url)
	if _, err := coord.Submit(testSpec(1)); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

func TestRendezvousDeterministicAndSpreads(t *testing.T) {
	c, err := New(Config{Backends: []string{"http://a", "http://b", "http://c"}})
	if err != nil {
		t.Fatal(err)
	}
	homes := map[string]bool{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := c.rendezvous(key), c.rendezvous(key)
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("rendezvous order for %q not stable", key)
			}
		}
		seen := map[*backend]bool{}
		for _, b := range o1 {
			seen[b] = true
		}
		if len(seen) != 3 {
			t.Fatalf("rendezvous order for %q misses backends: %v", key, o1)
		}
		homes[o1[0].url] = true
	}
	if len(homes) != 3 {
		t.Errorf("64 keys homed to only %d/3 backends", len(homes))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("duplicate backends accepted")
	}
	if _, err := New(Config{Backends: []string{" "}}); err == nil {
		t.Error("blank backend accepted")
	}
}

// flakyBackend drops the next `drops` connections at the transport level,
// then serves normally — a transient hiccup, not a dead node.
type flakyBackend struct {
	inner http.Handler
	drops atomic.Int64
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.drops.Add(-1) >= 0 {
		panic(http.ErrAbortHandler)
	}
	f.inner.ServeHTTP(w, r)
}

// TestSoftRetrySurvivesTransientDrop pins the same-backend retry: one
// dropped connection costs a soft retry, not a down-mark — the point is
// served by the same backend, nothing is rerouted, and the backend keeps
// its place in the routing order (and its warm state with it).
func TestSoftRetrySurvivesTransientDrop(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	fb := &flakyBackend{inner: service.NewMux(svc, func() any { return svc.Stats() }, nil)}
	fb.drops.Store(1)
	srv := httptest.NewServer(fb)
	t.Cleanup(srv.Close)

	coord := newCoordinator(t, srv.URL)
	res, err := coord.Submit(testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := testSpec(21).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.Encode()
	if !bytes.Equal(res.Report, want) {
		t.Fatal("report served through a soft retry differs from a serial run")
	}

	st := coord.Stats()
	if st.SoftRetries != 1 {
		t.Errorf("soft_retries = %d, want 1", st.SoftRetries)
	}
	if st.Reroutes != 0 {
		t.Errorf("transient drop caused %d reroutes, want 0", st.Reroutes)
	}
	if st.Backends[0].Down {
		t.Error("transient drop down-marked the backend")
	}
}

// togglableBackend can be switched between alive and killed: while dead it
// aborts every connection (requests, healthz probes, snapshot GETs alike),
// exactly like a kill -9'd process behind the same port.
type togglableBackend struct {
	inner http.Handler
	dead  atomic.Bool
}

func (tb *togglableBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if tb.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	tb.inner.ServeHTTP(w, r)
}

// TestSnapshotHandoffOnRevival walks the full lose-and-revive cycle: the
// prefix's home backend dies (its points reroute cold — the fallback
// backend re-executes, which is always correct), then the home revives and
// the coordinator ships the fallback's warm snapshot back before routing
// the next same-prefix point there — the revived node continues from warm
// state instead of re-simulating the prefix.
func TestSnapshotHandoffOnRevival(t *testing.T) {
	toggles := make([]*togglableBackend, 2)
	urls := make([]string, 2)
	for i := range toggles {
		svc := service.New(service.Config{Workers: 2, CacheEntries: 64})
		t.Cleanup(svc.Close)
		toggles[i] = &togglableBackend{inner: service.NewMux(svc, func() any { return svc.Stats() }, nil)}
		srv := httptest.NewServer(toggles[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord, err := New(Config{Backends: urls, ReviveAfter: 75 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	sp := testSpec(22)
	_, _, prefix, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}
	home := coord.rendezvous(prefix)[0].url
	var homeToggle *togglableBackend
	for i, url := range urls {
		if url == home {
			homeToggle = toggles[i]
		}
	}

	// Warm the home backend, then kill it.
	if _, err := coord.Submit(sp); err != nil {
		t.Fatal(err)
	}
	homeToggle.dead.Store(true)

	// The next same-prefix point reroutes to the fallback, which re-executes
	// from scratch (the dead owner cannot export its snapshot — degradation,
	// not failure) and becomes the recorded owner.
	mid := testSpec(22)
	mid.MeasureSec = 2
	if _, err := coord.Submit(mid); err != nil {
		t.Fatal(err)
	}
	if st := coord.Stats(); st.SnapshotHandoffs != 0 {
		t.Errorf("handoff claimed from a dead owner: %+v", st)
	}

	// Revive the home; after ReviveAfter its healthz probe readmits it, and
	// the coordinator ships the fallback's warm snapshot over first.
	homeToggle.dead.Store(false)
	time.Sleep(150 * time.Millisecond)
	long := testSpec(22)
	long.MeasureSec = 3
	res, err := coord.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.Encode()
	if !bytes.Equal(res.Report, want) {
		t.Fatal("post-revival report differs from a serial run")
	}

	st := coord.Stats()
	if st.SnapshotHandoffs < 1 {
		t.Errorf("snapshot_handoffs = %d, want >= 1 after revival", st.SnapshotHandoffs)
	}
	for _, bs := range st.Backends {
		if bs.URL == home {
			if bs.Down {
				t.Error("revived home still marked down")
			}
			if bs.Stats.SnapshotForks < 1 {
				t.Errorf("revived home snapshot_forks = %d, want >= 1 (warm handoff unused)", bs.Stats.SnapshotForks)
			}
		}
	}
}

// snapshotCorruptor flips a byte in every snapshot export it proxies; all
// other traffic passes through untouched.
type snapshotCorruptor struct {
	inner http.Handler
}

func (sc *snapshotCorruptor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet || !strings.HasPrefix(r.URL.Path, "/snapshot/") {
		sc.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	sc.inner.ServeHTTP(rec, r)
	data := rec.Body.Bytes()
	if rec.Code == http.StatusOK && len(data) > 0 {
		data[len(data)-1] ^= 0x01
	}
	for k, v := range rec.Header() {
		w.Header()[k] = v
	}
	w.WriteHeader(rec.Code)
	w.Write(data)
}

// TestHandoffRejectsCorruptSnapshot ships deliberately corrupted snapshot
// bytes on the handoff path and pins the degradation contract: the target
// rejects the import (no handoff counted, no warm state seeded) and simply
// re-executes — byte-identically.
func TestHandoffRejectsCorruptSnapshot(t *testing.T) {
	// The previous owner sits outside the coordinator's fleet and serves its
	// snapshot through a corrupting proxy.
	ownerSvc := service.New(service.Config{Workers: 2})
	t.Cleanup(ownerSvc.Close)
	owner := httptest.NewServer(&snapshotCorruptor{
		inner: service.NewMux(ownerSvc, func() any { return ownerSvc.Stats() }, nil),
	})
	t.Cleanup(owner.Close)

	sp := testSpec(23)
	if _, err := ownerSvc.Submit(sp); err != nil {
		t.Fatal(err)
	}
	_, _, prefix, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}

	target := newBackend(t)
	coord := newCoordinator(t, target.URL)
	coord.mu.Lock()
	coord.owners[prefix] = owner.URL
	coord.mu.Unlock()

	long := testSpec(23)
	long.MeasureSec = 2
	res, err := coord.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.Encode()
	if !bytes.Equal(res.Report, want) {
		t.Fatal("report after a corrupt handoff differs from a serial run")
	}

	st := coord.Stats()
	if st.SnapshotHandoffs != 0 {
		t.Errorf("corrupt snapshot counted as a handoff: %+v", st)
	}
	if st.Backends[0].Stats.SnapshotForks != 0 {
		t.Errorf("corrupt snapshot seeded warm state: %+v", st.Backends[0].Stats)
	}
	if st.Backends[0].Stats.Executions != 1 {
		t.Errorf("target executions = %d, want 1 (re-execution)", st.Backends[0].Stats.Executions)
	}
}
