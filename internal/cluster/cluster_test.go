package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"a4sim/internal/figures"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// testSpec is a fast-running scenario (high rate scale, short windows).
func testSpec(seed uint64) *scenario.Spec {
	return &scenario.Spec{
		Name:       "cluster-test",
		Manager:    "a4-d",
		Params:     scenario.ParamSpec{RateScale: 8192, Seed: seed},
		WarmupSec:  1,
		MeasureSec: 1,
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1}, Priority: "hpw", Touch: true},
			{Kind: "xmem", Name: "xmem", Cores: []int{2}, Priority: "lpw", WSKB: 1024, Pattern: "random"},
		},
	}
}

// newBackend starts one real a4serve backend (service + HTTP mux) and
// returns its server.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, CacheEntries: 64})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(service.NewMux(svc, func() any { return svc.Stats() }))
	t.Cleanup(srv.Close)
	return srv
}

// killableBackend aborts every request after the first `serve` have been
// served, simulating a backend dying mid-sweep: in-flight and subsequent
// requests fail at the transport level, exactly like a killed process.
type killableBackend struct {
	inner  http.Handler
	serve  int64
	served atomic.Int64
	armed  atomic.Bool
}

func (k *killableBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.armed.Load() && k.served.Add(1) > k.serve {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

func newCoordinator(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	c, err := New(Config{Backends: urls, ReviveAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sweepReq sweeps managers × measurement windows: two prefix groups whose
// rows chain through backend snapshots, exercising both the concurrent and
// the sequential routing paths.
func sweepReq() *service.SweepRequest {
	return &service.SweepRequest{
		Spec: *testSpec(1),
		Axes: []service.Axis{
			{Param: "manager", Managers: []string{"default", "a4-d"}},
			{Param: "measure_sec", Values: []float64{1, 2}},
		},
	}
}

// TestClusterSweepByteIdenticalToSerial is the acceptance pin: the same
// sweep through a 3-backend coordinator and serially on one local node must
// agree on every byte of every point.
func TestClusterSweepByteIdenticalToSerial(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL, newBackend(t).URL)
	got, err := coord.Sweep(sweepReq())
	if err != nil {
		t.Fatal(err)
	}

	serial := service.New(service.Config{Workers: 1})
	defer serial.Close()
	want, err := serial.Sweep(sweepReq())
	if err != nil {
		t.Fatal(err)
	}

	comparePoints(t, got, want)

	// The merged stats cover the whole fleet: executions sum to the grid
	// size and the per-backend breakdown is preserved.
	st := coord.Stats()
	if st.Executions != uint64(len(want)) {
		t.Errorf("merged executions = %d, want %d", st.Executions, len(want))
	}
	if len(st.Backends) != 3 {
		t.Fatalf("got %d backend entries, want 3", len(st.Backends))
	}
	var sum uint64
	for _, bs := range st.Backends {
		if !bs.Reachable {
			t.Errorf("backend %s unreachable in stats: %s", bs.URL, bs.Error)
		}
		sum += bs.Stats.Executions
	}
	if sum != st.Executions {
		t.Errorf("per-backend executions sum %d != merged %d", sum, st.Executions)
	}
}

func comparePoints(t *testing.T, got, want []service.SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Hash != want[i].Hash {
			t.Errorf("point %d hash %s, want %s", i, got[i].Hash, want[i].Hash)
		}
		if got[i].Cached != want[i].Cached {
			t.Errorf("point %d cached=%v, want %v", i, got[i].Cached, want[i].Cached)
		}
		if !bytes.Equal(got[i].Report, want[i].Report) {
			t.Errorf("point %d report differs from serial run", i)
		}
		if fmt.Sprint(got[i].Grid) != fmt.Sprint(want[i].Grid) {
			t.Errorf("point %d grid %v, want %v", i, got[i].Grid, want[i].Grid)
		}
	}
}

// TestClusterReroutesLostBackendMidSweep kills the busiest backend after it
// has served exactly one point and pins that every lost point is rerouted:
// the sweep completes and stays byte-identical to a serial run.
func TestClusterReroutesLostBackendMidSweep(t *testing.T) {
	// Three backends, the victim wrapped so it can be killed mid-flight.
	kills := make([]*killableBackend, 3)
	urls := make([]string, 3)
	for i := range kills {
		svc := service.New(service.Config{Workers: 2, CacheEntries: 64})
		t.Cleanup(svc.Close)
		kills[i] = &killableBackend{
			inner: service.NewMux(svc, func() any { return svc.Stats() }),
			serve: 1,
		}
		srv := httptest.NewServer(kills[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord := newCoordinator(t, urls...)

	// Eight distinct-seed points: eight prefix groups. Pick the backend that
	// homes the most of them as the victim, so it is guaranteed to receive
	// at least one point after its single allowed request — httptest ports
	// are random, so the assignment must be derived, not assumed.
	specs := make([]*scenario.Spec, 8)
	homes := map[string]int{}
	for i := range specs {
		specs[i] = testSpec(uint64(100 + i))
		_, _, prefix, err := specs[i].Digest()
		if err != nil {
			t.Fatal(err)
		}
		homes[coord.rendezvous(prefix)[0].url]++
	}
	victim, most := "", 0
	for url, n := range homes {
		if n > most {
			victim, most = url, n
		}
	}
	if most < 2 {
		// 8 points over <=3 homes: pigeonhole guarantees a home with >=3.
		t.Fatalf("no backend homes 2+ points: %v", homes)
	}
	for i, url := range urls {
		if url == victim {
			kills[i].armed.Store(true)
		}
	}

	req := &service.SweepRequest{
		Spec: *testSpec(0),
		Axes: []service.Axis{{Param: "seed", Values: []float64{100, 101, 102, 103, 104, 105, 106, 107}}},
	}
	got, err := coord.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}

	serial := service.New(service.Config{Workers: 1})
	defer serial.Close()
	want, err := serial.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	comparePoints(t, got, want)

	st := coord.Stats()
	if st.Reroutes < uint64(most-1) {
		t.Errorf("reroutes = %d, want >= %d (victim homed %d points, served 1)", st.Reroutes, most-1, most)
	}
	downSeen := false
	for _, bs := range st.Backends {
		if bs.URL == victim && bs.Down {
			downSeen = true
		}
	}
	if !downSeen {
		t.Errorf("victim %s not marked down in stats: %+v", victim, st.Backends)
	}
}

// TestClusterExtendRoutesToOwner pins prefix affinity end to end: /run then
// Extend land on the same backend, whose warm snapshot serves the extension
// as a fork, and the result matches a cold serial run of the longer spec.
func TestClusterExtendRoutesToOwner(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)

	res, err := coord.Submit(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := coord.Extend(res.Hash, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Hash == res.Hash {
		t.Error("extension must re-address under the longer window's hash")
	}

	long := testSpec(7)
	long.MeasureSec = 3
	rep, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext.Report, fresh) {
		t.Fatal("extended report differs from a cold serial run of the longer spec")
	}

	// The fork happened on the owning backend instead of a cold restart.
	if st := coord.Stats(); st.SnapshotForks < 1 {
		t.Errorf("merged snapshot_forks = %d, want >= 1", st.SnapshotForks)
	}

	// The extended run is addressable through the coordinator too.
	if data, ok := coord.Lookup(ext.Hash); !ok || !bytes.Equal(data, ext.Report) {
		t.Error("Lookup did not serve the extended report by content address")
	}

	if _, err := coord.Extend("feedfacefeedface", 2); !errors.Is(err, service.ErrUnknownHash) {
		t.Errorf("unknown hash: got %v, want ErrUnknownHash", err)
	}
}

// TestRunSpecsOverCluster pins the figures fan-out path: spec points run
// through a coordinator come back in input order, byte-identical to running
// each spec serially in-process.
func TestRunSpecsOverCluster(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL, newBackend(t).URL)
	specs := []*scenario.Spec{testSpec(11), testSpec(12), testSpec(11)}
	specs[2].MeasureSec = 2 // shares spec[0]'s prefix: chained on one backend

	got, err := figures.RunSpecs(figures.Options{Workers: 2}, coord, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d reports, want %d", len(got), len(specs))
	}
	for i, sp := range specs {
		rep, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := rep.Encode()
		have, _ := got[i].Encode()
		if !bytes.Equal(have, want) {
			t.Errorf("spec %d: cluster report differs from serial run", i)
		}
	}
}

func TestClusterSweepRejectsBadGridBeforeExecuting(t *testing.T) {
	coord := newCoordinator(t, newBackend(t).URL)
	_, err := coord.Sweep(&service.SweepRequest{
		Spec: *testSpec(1),
		Axes: []service.Axis{{Param: "manager", Managers: []string{"default", "bogus"}}},
	})
	if err == nil {
		t.Fatal("sweep with an invalid point accepted")
	}
	if st := coord.Stats(); st.Executions != 0 {
		t.Errorf("invalid sweep executed points: %+v", st)
	}
}

func TestClusterUnavailableWhenFleetIsGone(t *testing.T) {
	srv := newBackend(t)
	url := srv.URL
	srv.Close()
	coord := newCoordinator(t, url)
	if _, err := coord.Submit(testSpec(1)); !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}

func TestRendezvousDeterministicAndSpreads(t *testing.T) {
	c, err := New(Config{Backends: []string{"http://a", "http://b", "http://c"}})
	if err != nil {
		t.Fatal(err)
	}
	homes := map[string]bool{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := c.rendezvous(key), c.rendezvous(key)
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("rendezvous order for %q not stable", key)
			}
		}
		seen := map[*backend]bool{}
		for _, b := range o1 {
			seen[b] = true
		}
		if len(seen) != 3 {
			t.Fatalf("rendezvous order for %q misses backends: %v", key, o1)
		}
		homes[o1[0].url] = true
	}
	if len(homes) != 3 {
		t.Errorf("64 keys homed to only %d/3 backends", len(homes))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("duplicate backends accepted")
	}
	if _, err := New(Config{Backends: []string{" "}}); err == nil {
		t.Error("blank backend accepted")
	}
}
