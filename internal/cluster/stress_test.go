package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCoordinatorStressRace is the cluster shape of the service stress
// test: mixed Submit/Extend/Lookup/Stats clients against a coordinator
// over two real backends, run under -race in CI. Cached responses must
// stay byte-identical across backends and retries, and the fleet-merged
// counters must account for every request the clients made.
func TestCoordinatorStressRace(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	c := newCoordinator(t, b1.URL, b2.URL)

	// Prime two popular specs; distinct seeds give distinct prefixes, so
	// with two backends they may land on either (or both on one).
	refs := make([]primedRun, 2)
	for i := range refs {
		res, err := c.Submit(testSpec(uint64(600 + i)))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = primedRun{hash: res.Hash, report: res.Report}
	}

	const clients = 6
	const iters = 20
	var cached, uncached atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ref := refs[i%len(refs)]
				switch i % 5 {
				case 3:
					// Same extension from every client: one execution on the
					// owning backend, the rest cache hits or dedups.
					res, err := c.Extend(ref.hash, 2)
					if err != nil {
						errs <- fmt.Errorf("client %d extend: %w", cl, err)
						return
					}
					tally(&cached, &uncached, res.Cached)
				case 4:
					if rep, ok := c.Lookup(ref.hash); !ok || !bytes.Equal(rep, ref.report) {
						errs <- fmt.Errorf("client %d: Lookup lost the reference report", cl)
						return
					}
				default:
					res, err := c.Submit(testSpec(uint64(600 + i%len(refs))))
					if err != nil {
						errs <- fmt.Errorf("client %d submit: %w", cl, err)
						return
					}
					if !bytes.Equal(res.Report, ref.report) {
						errs <- fmt.Errorf("client %d: cached report differs from reference", cl)
						return
					}
					tally(&cached, &uncached, res.Cached)
				}
			}
		}(cl)
	}
	// Concurrent fleet-stats scrapes (each fans out to every backend).
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				c.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Errors != 0 {
		t.Errorf("fleet errors = %d, want 0", st.Errors)
	}
	if st.Reroutes != 0 || st.SoftRetries != 0 {
		t.Errorf("reroutes=%d softRetries=%d, want 0 (no backend died)", st.Reroutes, st.SoftRetries)
	}
	if st.Hits != cached.Load() {
		t.Errorf("fleet hits = %d, want %d (clients observed)", st.Hits, cached.Load())
	}
	// +2 for the priming submissions.
	if st.Misses+st.Dedups != uncached.Load()+2 {
		t.Errorf("misses+dedups = %d+%d, want %d", st.Misses, st.Dedups, uncached.Load()+2)
	}
	if st.Executions != st.Misses {
		t.Errorf("executions = %d, misses = %d", st.Executions, st.Misses)
	}
}

// primedRun pins the reference bytes for one primed run.
type primedRun struct {
	hash   string
	report []byte
}

func tally(cached, uncached *atomic.Uint64, wasCached bool) {
	if wasCached {
		cached.Add(1)
	} else {
		uncached.Add(1)
	}
}
