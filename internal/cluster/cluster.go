// Package cluster shards scenario serving across a fleet of a4serve
// backends. A Coordinator implements the same service.Runner surface as the
// local worker pool, but routes each submission to one of N remote daemons
// by rendezvous-hashing its routing key — the spec's prefix hash — so that
// specs sharing a run prefix consistently land on the same backend and
// reuse its warm-snapshot LRU, while distinct prefixes spread across the
// fleet. Because execution is deterministic and content-addressed, any
// backend produces byte-identical results for a given spec; routing is
// therefore purely a performance policy, and losing a backend mid-sweep is
// handled by re-sending its points to the next backend in rendezvous order
// (idempotent: a re-executed point cannot differ).
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"a4sim/internal/obs"
	"a4sim/internal/scenario"
	"a4sim/internal/service"
)

// Config wires a Coordinator to its backends.
type Config struct {
	// Backends are the base URLs of the a4serve daemons to shard over.
	Backends []string
	// QueueDepth bounds the coordinator's in-flight requests per backend;
	// further points for that backend wait their turn instead of piling up
	// as unbounded goroutine state. 0 means 32.
	QueueDepth int
	// ReviveAfter is how long a lost backend stays out of the routing order
	// before the coordinator probes its /healthz again. 0 means 15s.
	ReviveAfter time.Duration
	// Client executes /run, /extend, and /result requests. Nil gets a
	// client with a 15-minute timeout (runs may legitimately simulate for
	// minutes; the backend's CheckBudget bounds them) over a keep-alive
	// transport whose per-host connection pool matches QueueDepth — the
	// per-backend in-flight cap — so routed traffic reuses sockets instead
	// of churning through dials.
	Client *http.Client
	// RouteEntries caps the content-hash → routing-key index used to send
	// /extend and /result/<hash> requests to the backend that owns the run.
	// Unknown hashes fall back to probing backends in a deterministic
	// order, so eviction costs latency, never correctness. 0 means 16384.
	RouteEntries int
}

// Coordinator shards a service.Runner over remote backends.
type Coordinator struct {
	backends    []*backend
	client      *http.Client // run/extend/result traffic
	probe       *http.Client // healthz and stats traffic, short timeout
	stream      *http.Client // /series/<hash>/stream proxying: no timeout, streams run for the window's length
	traces      *obs.Ring    // finished request traces, served merged with backend spans
	reviveAfter time.Duration

	// mu guards only the two routing maps; the counters below are atomics
	// so the submission hot path never takes the coordinator lock.
	mu       sync.Mutex
	routes   map[string]string // content hash -> routing key
	owners   map[string]string // routing key (prefix hash) -> backend URL last serving it
	routeCap int

	reroutes    atomic.Uint64 // points re-sent after losing a backend
	softRetries atomic.Uint64 // same-backend retries after a transient transport error
	handoffs    atomic.Uint64 // warm snapshots shipped between backends on reroute or revival
	rejected    atomic.Uint64 // submissions refused before any routing
}

type backend struct {
	url   string
	slots chan struct{} // bounded per-backend queue: one token per in-flight request

	// Health state is atomic: routable runs per submission per backend, and
	// a mutex here would serialize the whole fleet's dispatch on one node's
	// flapping. downSince is unix nanos; 0 while up.
	down      atomic.Bool
	downSince atomic.Int64
}

// New validates the backend list and returns a coordinator. It does not
// contact the backends: an unreachable one is discovered (and routed
// around) on first use.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 32
	}
	revive := cfg.ReviveAfter
	if revive <= 0 {
		revive = 15 * time.Second
	}
	// One keep-alive transport for all three clients: run/extend traffic,
	// health/stats probes, and stream proxying pool their connections
	// per-backend, capped at the per-backend in-flight depth.
	transport := service.NewTransport(depth)
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Minute, Transport: transport}
	}
	routeCap := cfg.RouteEntries
	if routeCap <= 0 {
		routeCap = 16384
	}
	c := &Coordinator{
		client:      client,
		probe:       &http.Client{Timeout: 10 * time.Second, Transport: transport},
		stream:      &http.Client{Transport: transport},
		traces:      obs.NewRing(0),
		reviveAfter: revive,
		routes:      make(map[string]string),
		owners:      make(map[string]string),
		routeCap:    routeCap,
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty backend URL in %q", cfg.Backends)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", u)
		}
		seen[u] = true
		c.backends = append(c.backends, &backend{url: u, slots: make(chan struct{}, depth)})
	}
	return c, nil
}

// Statically pin that a coordinator is interchangeable with the local pool.
var _ service.Runner = (*Coordinator)(nil)

// rendezvous orders the backends by descending highest-random-weight score
// for key. The first entry is the key's home; the rest are its failover
// order. The ordering is a pure function of (key, backend URLs), so every
// coordinator over the same fleet routes identically, and removing one
// backend only moves that backend's keys.
func (c *Coordinator) rendezvous(key string) []*backend {
	type scored struct {
		b *backend
		s uint64
	}
	order := make([]scored, len(c.backends))
	for i, b := range c.backends {
		// sha256 rather than a cheap multiplicative hash: backend URLs share
		// long prefixes, and weakly-avalanched hashes visibly bias the
		// highest-random-weight comparison across such near-identical seeds.
		sum := sha256.Sum256([]byte(b.url + "\x00" + key))
		order[i] = scored{b, binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].s != order[j].s {
			return order[i].s > order[j].s
		}
		return order[i].b.url < order[j].b.url
	})
	out := make([]*backend, len(order))
	for i, s := range order {
		out[i] = s.b
	}
	return out
}

// routable reports whether b should receive traffic. A lost backend is
// skipped until ReviveAfter has elapsed, after which one /healthz probe
// decides whether it rejoins the routing order or waits another interval.
func (c *Coordinator) routable(b *backend) bool {
	if !b.down.Load() {
		return true
	}
	if time.Since(time.Unix(0, b.downSince.Load())) < c.reviveAfter {
		return false
	}
	if c.healthy(b.url) {
		b.setDown(false)
		return true
	}
	b.setDown(true) // restart the revive clock
	return false
}

func (c *Coordinator) healthy(url string) bool {
	resp, err := c.probe.Get(url + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (b *backend) setDown(down bool) {
	if down {
		b.downSince.Store(time.Now().UnixNano())
	}
	b.down.Store(down)
}

func (b *backend) isDown() bool {
	return b.down.Load()
}

// callClass is what a backend's answer means for routing.
type callClass int

const (
	callOK       callClass = iota
	callTerminal           // a deterministic rejection or run failure: rerouting cannot help
	callLost               // transport failure or shutting-down backend: mark down, reroute
	callBusy               // backend alive but queue-full: reroute without marking down
)

// wireResult mirrors the /run and /extend response body.
type wireResult struct {
	Hash   string          `json:"hash"`
	Cached bool            `json:"cached"`
	Report json.RawMessage `json:"report"`
}

// maxResponseBytes bounds a single backend response read; a /run report is
// a few KB, so the cap only guards against a misbehaving peer.
const maxResponseBytes = 16 << 20

// call POSTs body to one backend and classifies the outcome. The bounded
// per-backend queue is held for the duration of the request. When tr is
// non-nil the backend joins the request's trace: the trace ID travels in
// the X-A4-Trace header, and the hop itself is recorded as a backend_call
// span labeled with the backend URL.
func (c *Coordinator) call(b *backend, path string, body []byte, tr *obs.Trace) (service.Result, callClass, error) {
	b.slots <- struct{}{}
	defer func() { <-b.slots }()
	req, err := http.NewRequest(http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return service.Result{}, callTerminal, fmt.Errorf("cluster: backend %s: %w", b.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID())
	}
	span := tr.Begin("backend_call").Annotate(b.url)
	resp, err := c.client.Do(req)
	span.End()
	if err != nil {
		return service.Result{}, callLost, fmt.Errorf("cluster: backend %s: %w", b.url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return service.Result{}, callLost, fmt.Errorf("cluster: backend %s: reading response: %w", b.url, err)
	}
	if len(data) > maxResponseBytes {
		// Deterministic runs reproduce the same oversized answer on every
		// backend, so treating this as a lost node would down-mark the whole
		// fleet one reroute at a time; it is the request's fault, not the
		// backend's.
		return service.Result{}, callTerminal, fmt.Errorf("cluster: backend %s: response exceeds %d bytes", b.url, maxResponseBytes)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return service.Result{}, callLost, translateStatus(b.url, resp.StatusCode, data)
	case http.StatusServiceUnavailable:
		// The backend is closing; its queued work still completes, but new
		// points belong elsewhere.
		return service.Result{}, callLost, translateStatus(b.url, resp.StatusCode, data)
	case http.StatusTooManyRequests:
		return service.Result{}, callBusy, translateStatus(b.url, resp.StatusCode, data)
	default:
		return service.Result{}, callTerminal, translateStatus(b.url, resp.StatusCode, data)
	}
	var wr wireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		// A half-written 200 from a dying backend. Re-executing the point
		// elsewhere is safe: runs are deterministic, so a retry cannot
		// produce different bytes.
		return service.Result{}, callLost, fmt.Errorf("cluster: backend %s: bad response: %w", b.url, err)
	}
	// The backend's body already is the canonical response envelope, so the
	// coordinator's HTTP layer forwards it verbatim instead of re-encoding.
	return service.Result{Hash: wr.Hash, Cached: wr.Cached, Report: wr.Report, Envelope: data}, callOK, nil
}

// translateStatus converts a backend's non-2xx answer back into the service
// error taxonomy via the shared inverse mapping (service.ErrFromStatus), so
// the coordinator's own HTTP layer (service.StatusForErr) round-trips the
// status to its client unchanged — 404, 429, 503, 500, and the 4xx family
// all survive the hop exactly.
func translateStatus(url string, status int, body []byte) error {
	return fmt.Errorf("cluster: backend %s: %w", url, service.ErrFromStatus(status, body))
}

// submitKey routes body down key's rendezvous order until a backend serves
// it. A lost call gets one same-backend retry (transient transport hiccups
// should not re-shard the keyspace and abandon a backend's warm state);
// backends lost twice in a row are marked down (so later points skip them
// without paying a timeout) and the point is re-sent to the next backend —
// the retry-with-reroute that keeps a sweep complete when a node dies
// mid-run. When the routing target differs from the backend that last
// served this key, the previous owner's warm snapshot is shipped over
// first, so reroutes and revivals continue from warm state instead of
// re-simulating the prefix.
func (c *Coordinator) submitKey(key, path string, body []byte, tr *obs.Trace) (service.Result, error) {
	var lastErr, lastBusy error
	sawLost := false
	for _, b := range c.rendezvous(key) {
		if !c.routable(b) {
			continue
		}
		c.maybeHandoff(key, b, tr)
		res, class, err := c.call(b, path, body, tr)
		if class == callLost {
			c.softRetries.Add(1)
			// Jittered backoff so a fleet of coordinator goroutines does not
			// re-hit a briefly-choking backend in lockstep.
			time.Sleep(time.Duration(50+rand.Intn(100)) * time.Millisecond)
			res, class, err = c.call(b, path, body, tr)
		}
		switch class {
		case callOK:
			c.recordOwner(key, b.url)
			return res, nil
		case callTerminal:
			return service.Result{}, err
		case callBusy:
			lastBusy = err
		case callLost:
			b.setDown(true)
			c.reroutes.Add(1)
			tr.Mark("reroute", b.url)
			sawLost = true
			lastErr = err
		}
	}
	if !sawLost && lastBusy != nil {
		// Every reachable backend is saturated: surface the backpressure
		// (429) rather than claiming the fleet is gone.
		return service.Result{}, lastBusy
	}
	if lastErr == nil {
		lastErr = errors.New("all backends marked down")
	}
	return service.Result{}, fmt.Errorf("cluster: %w: %v", service.ErrUnavailable, lastErr)
}

// maxSnapshotWireBytes bounds a shipped snapshot body, mirroring the
// backend's own POST /snapshot cap.
const maxSnapshotWireBytes = 64 << 20

// maybeHandoff ships the warm snapshot for routing key (a prefix hash)
// from the backend that last served it to target, the backend about to
// serve it now — the reroute/revival path that moves warm state instead of
// re-warming. Strictly best-effort and fully validated on the receiving
// side: any failure (previous owner gone, no snapshot, corrupt bytes,
// target rejecting) just means target re-executes from scratch, which is
// always correct. The short-timeout probe client bounds how long a dead
// owner can stall the submission path.
func (c *Coordinator) maybeHandoff(key string, target *backend, tr *obs.Trace) {
	c.mu.Lock()
	owner := c.owners[key]
	c.mu.Unlock()
	if owner == "" || owner == target.url {
		return
	}
	span := tr.Begin("snapshot_handoff").Annotate(target.url)
	defer span.End()
	resp, err := c.probe.Get(owner + "/snapshot/" + key)
	if err != nil {
		return
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotWireBytes+1))
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK || len(data) > maxSnapshotWireBytes {
		return
	}
	post, err := c.probe.Post(target.url+"/snapshot/"+key, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode == http.StatusOK {
		c.handoffs.Add(1)
	}
}

// recordOwner remembers which backend last served a routing key, bounded
// like the route index; eviction only costs a missed handoff opportunity.
func (c *Coordinator) recordOwner(key, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.owners[key]; ok {
		if cur != url {
			c.owners[key] = url
		}
		return
	}
	if len(c.owners) >= c.routeCap {
		for k := range c.owners {
			delete(c.owners, k)
			break
		}
	}
	c.owners[key] = url
}

// Submit routes one spec to the backend owning its prefix hash. Using the
// prefix (not the full content hash) as the routing key is what gives
// same-prefix submissions — a /run, its /extend, the measure_sec rows of a
// sweep — affinity to one backend's warm-snapshot LRU.
func (c *Coordinator) Submit(sp *scenario.Spec) (service.Result, error) {
	return c.submit(sp, nil)
}

// SubmitTraced is Submit with the request's trace threaded through routing:
// handoffs, reroutes, and the backend hop itself all land in tr, and the
// trace ID is forwarded so the owning backend's spans join the same trace.
func (c *Coordinator) SubmitTraced(sp *scenario.Spec, tr *obs.Trace) (service.Result, error) {
	return c.submit(sp, tr)
}

func (c *Coordinator) submit(sp *scenario.Spec, tr *obs.Trace) (service.Result, error) {
	canon, _, prefix, err := sp.Digest()
	if err == nil {
		// Mirror the local serving policy before spending a network hop:
		// a backend would reject the same spec with 422.
		err = sp.CheckBudget()
	}
	if err != nil {
		c.rejected.Add(1)
		return service.Result{}, err
	}
	res, err := c.submitKey(prefix, "/run", canon, tr)
	if err == nil {
		c.recordRoute(res.Hash, prefix)
	}
	return res, err
}

// Extend re-runs a served spec by content address with a new measurement
// window. The coordinator remembers which routing key served each hash, so
// the request lands on the backend holding the run's indexed spec and warm
// snapshot; unknown or evicted hashes fall back to probing the fleet in
// deterministic order, and only when every backend answers 404 does the
// client see ErrUnknownHash.
func (c *Coordinator) Extend(hash string, measureSec float64) (service.Result, error) {
	return c.extend(hash, measureSec, nil)
}

// ExtendTraced is Extend carrying the request's trace through the fleet
// probe, mirroring SubmitTraced.
func (c *Coordinator) ExtendTraced(hash string, measureSec float64, tr *obs.Trace) (service.Result, error) {
	return c.extend(hash, measureSec, tr)
}

func (c *Coordinator) extend(hash string, measureSec float64, tr *obs.Trace) (service.Result, error) {
	body, err := json.Marshal(service.ExtendRequest{Hash: hash, MeasureSec: measureSec})
	if err != nil {
		return service.Result{}, err
	}
	key, known := c.routeOf(hash)
	if !known {
		key = hash
	}
	var lastErr error
	sawUnknown, incomplete := false, false
	for _, b := range c.rendezvous(key) {
		if !c.routable(b) {
			// A skipped backend might hold the run; its silence must not be
			// read as a 404.
			incomplete = true
			continue
		}
		res, class, err := c.call(b, "/extend", body, tr)
		switch class {
		case callOK:
			// The extended run shares the original's prefix, so it lives
			// under the same routing key.
			c.recordRoute(res.Hash, key)
			return res, nil
		case callTerminal:
			if errors.Is(err, service.ErrUnknownHash) {
				// This backend never served the run (or evicted it); after a
				// failover it may live on any other node.
				sawUnknown = true
				lastErr = err
				continue
			}
			return service.Result{}, err
		case callBusy, callLost:
			if class == callLost {
				b.setDown(true)
				c.reroutes.Add(1)
				tr.Mark("reroute", b.url)
			}
			incomplete = true
			lastErr = err
		}
	}
	// 404 is only honest when every backend answered it; if any was down,
	// busy, or lost, the run may still exist there, so report the fleet as
	// unavailable (retryable) rather than the hash as unknown.
	if sawUnknown && !incomplete {
		return service.Result{}, fmt.Errorf("cluster: no backend has run %.12s: %w", hash, service.ErrUnknownHash)
	}
	if lastErr == nil {
		lastErr = errors.New("all backends marked down")
	}
	return service.Result{}, fmt.Errorf("cluster: %w: %v", service.ErrUnavailable, lastErr)
}

// Sweep expands the grid locally and shards its points over the fleet:
// same-prefix rows form a group that runs sequentially (shortest
// measurement first) against the backend owning that prefix, so later rows
// fork the warm snapshot earlier rows deposited; distinct prefixes run
// concurrently on their own backends. Results assemble by grid index, so
// the response is byte-identical to a single-node (or serial) run of the
// same request — backend count, like worker count, never reorders points.
func (c *Coordinator) Sweep(req *service.SweepRequest) ([]service.SweepPoint, error) {
	specs, grids, err := service.ExpandSweep(req)
	if err != nil {
		return nil, err
	}
	// Validate the whole grid before shipping any of it (mirroring the
	// single-node Sweep): a bad corner fails the request without wasting
	// backend work on the good corner.
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: sweep point %d: %w", i, err)
		}
		if err := sp.CheckBudget(); err != nil {
			return nil, fmt.Errorf("cluster: sweep point %d: %w", i, err)
		}
	}
	groups := service.GroupSpecsByPrefix(specs)
	points := make([]service.SweepPoint, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				res, err := c.Submit(specs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				points[i] = service.SweepPoint{Grid: grids[i], Hash: res.Hash, Cached: res.Cached, Report: res.Report}
			}
		}(idxs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: sweep point %d: %w", i, err)
		}
	}
	return points, nil
}

// Lookup fetches a cached report by content address from the backend that
// served it (via the route index), probing the rest of the fleet in
// rendezvous order if needed.
func (c *Coordinator) Lookup(hash string) ([]byte, bool) {
	return c.fetchByHash("/result/", hash)
}

// Series fetches a cached run's per-second telemetry by content address,
// routed exactly like Lookup: the route index points at the backend that
// executed the run (series live beside reports in its cache), and unknown
// hashes fall back to probing the fleet in rendezvous order.
func (c *Coordinator) Series(hash string) ([]byte, bool) {
	return c.fetchByHash("/series/", hash)
}

// fetchByHash GETs path+hash from the backend the route index names for
// hash, then from the rest of the fleet in deterministic rendezvous order.
func (c *Coordinator) fetchByHash(path, hash string) ([]byte, bool) {
	key, known := c.routeOf(hash)
	if !known {
		key = hash
	}
	for _, b := range c.rendezvous(key) {
		if !c.routable(b) {
			continue
		}
		resp, err := c.client.Get(b.url + path + hash)
		if err != nil {
			b.setDown(true)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			return data, true
		}
	}
	return nil, false
}

func (c *Coordinator) recordRoute(hash, key string) {
	if hash == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.routes[hash]; !ok && len(c.routes) >= c.routeCap {
		// Evict one arbitrary entry; a missed route only costs the probing
		// fallback, never correctness.
		for k := range c.routes {
			delete(c.routes, k)
			break
		}
	}
	c.routes[hash] = key
}

func (c *Coordinator) routeOf(hash string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.routes[hash]
	return key, ok
}

// BackendStats is one backend's view in the merged /stats payload.
type BackendStats struct {
	URL string `json:"url"`
	// Down reports the router's judgment (a lost backend awaiting revival);
	// Reachable reports whether this stats probe itself succeeded.
	Down      bool          `json:"down"`
	Reachable bool          `json:"reachable"`
	Error     string        `json:"error,omitempty"`
	Stats     service.Stats `json:"stats"`
}

// Stats is the merged cluster view: the embedded service.Stats counters are
// summed across reachable backends (so a coordinator's /stats reads exactly
// like a single node's, and tools such as the loadgen work unchanged),
// while Backends preserves the per-backend breakdown.
type Stats struct {
	service.Stats
	Reroutes         uint64         `json:"reroutes"`
	SoftRetries      uint64         `json:"soft_retries"`
	SnapshotHandoffs uint64         `json:"snapshot_handoffs"`
	Rejected         uint64         `json:"rejected"`
	Backends         []BackendStats `json:"backends"`
}

// Stats polls every backend's /stats concurrently and merges the counters.
func (c *Coordinator) Stats() Stats {
	out := Stats{Backends: make([]BackendStats, len(c.backends))}
	var wg sync.WaitGroup
	for i, b := range c.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			bs := BackendStats{URL: b.url, Down: b.isDown()}
			st, err := c.fetchStats(b.url)
			if err != nil {
				bs.Error = err.Error()
			} else {
				bs.Reachable = true
				bs.Stats = st
			}
			out.Backends[i] = bs
		}(i, b)
	}
	wg.Wait()
	for _, bs := range out.Backends {
		if !bs.Reachable {
			continue
		}
		out.Hits += bs.Stats.Hits
		out.Misses += bs.Stats.Misses
		out.Dedups += bs.Stats.Dedups
		out.Executions += bs.Stats.Executions
		out.Errors += bs.Stats.Errors
		out.Entries += bs.Stats.Entries
		out.Workers += bs.Stats.Workers
		out.Queued += bs.Stats.Queued
		out.SnapshotForks += bs.Stats.SnapshotForks
		out.SnapshotEntries += bs.Stats.SnapshotEntries
		out.StoreHits += bs.Stats.StoreHits
		out.StoreObjects += bs.Stats.StoreObjects
		out.StoreQuarantined += bs.Stats.StoreQuarantined
		out.TraceDropped += bs.Stats.TraceDropped
	}
	out.Reroutes = c.reroutes.Load()
	out.SoftRetries = c.softRetries.Load()
	out.SnapshotHandoffs = c.handoffs.Load()
	out.Rejected = c.rejected.Load()
	return out
}

func (c *Coordinator) fetchStats(url string) (service.Stats, error) {
	var st service.Stats
	resp, err := c.probe.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
