package baseline

import (
	"testing"

	"a4sim/internal/cache"
	"a4sim/internal/core"
	"a4sim/internal/hierarchy"
	"a4sim/internal/pcm"
	"a4sim/internal/workload"
)

func newH(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	return hierarchy.New(hierarchy.TestConfig(), pcm.NewFabric(1))
}

func TestApplyDefault(t *testing.T) {
	h := newH(t)
	// Dirty the state first.
	if err := h.CAT().SetWayRange(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.CAT().Associate(0, 1); err != nil {
		t.Fatal(err)
	}
	h.PCIe().SetPortDCA(0, false)
	h.PCIe().SetGlobalDCA(false)

	ApplyDefault(h)
	if h.CAT().MaskOf(0) != cache.MaskAll(11) {
		t.Errorf("Default must share the whole LLC")
	}
	if !h.PCIe().DCAActive(0) || !h.PCIe().DCAActive(1) {
		t.Errorf("Default must enable DCA everywhere")
	}
}

func infos(coreCounts ...int) []core.WorkloadInfo {
	var out []core.WorkloadInfo
	next := 0
	for i, n := range coreCounts {
		cores := make([]int, n)
		for j := range cores {
			cores[j] = next
			next++
		}
		out = append(out, core.WorkloadInfo{
			ID: pcm.WorkloadID(i), Name: "wl", Cores: cores,
			Class: workload.ClassCompute, Port: -1, Priority: workload.LPW,
		})
	}
	return out
}

func TestApplyIsolateProportional(t *testing.T) {
	cfg := hierarchy.TestConfig()
	cfg.NumCores = 8
	h := hierarchy.New(cfg, pcm.NewFabric(1))
	ws := infos(4, 2, 2) // proportional shares of 11 ways
	ApplyIsolate(h, ws)

	masks := make([]cache.WayMask, len(ws))
	total := 0
	for i, w := range ws {
		masks[i] = h.CAT().MaskOf(w.Cores[0])
		if masks[i] == 0 || !masks[i].Contiguous() {
			t.Fatalf("workload %d mask %#x invalid", i, uint32(masks[i]))
		}
		total += masks[i].Count()
		// Every core of a workload shares its CLOS.
		for _, c := range w.Cores[1:] {
			if h.CAT().MaskOf(c) != masks[i] {
				t.Errorf("cores of workload %d disagree", i)
			}
		}
	}
	// Slices must be pairwise disjoint.
	for i := 0; i < len(masks); i++ {
		for j := i + 1; j < len(masks); j++ {
			if masks[i]&masks[j] != 0 {
				t.Errorf("masks %d and %d overlap: %#x & %#x", i, j, uint32(masks[i]), uint32(masks[j]))
			}
		}
	}
	// The 4-core workload gets the largest share.
	if masks[0].Count() < masks[1].Count() {
		t.Errorf("shares not proportional: %d vs %d ways", masks[0].Count(), masks[1].Count())
	}
	if total > 11 {
		t.Errorf("assigned %d ways on an 11-way LLC", total)
	}
}

func TestApplyIsolateMoreWorkloadsThanWays(t *testing.T) {
	cfg := hierarchy.TestConfig()
	cfg.NumCores = 16
	h := hierarchy.New(cfg, pcm.NewFabric(1))
	counts := make([]int, 13) // more workloads than ways
	for i := range counts {
		counts[i] = 1
	}
	ws := infos(counts...)
	ApplyIsolate(h, ws)
	for _, w := range ws {
		m := h.CAT().MaskOf(w.Cores[0])
		if m == 0 {
			t.Fatalf("workload with empty mask")
		}
	}
}

func TestApplyIsolateEmpty(t *testing.T) {
	h := newH(t)
	ApplyIsolate(h, nil) // must not panic
}
