// Package baseline implements the two LLC management schemes A4 is compared
// against in §6: the Default model (all workloads share the whole LLC, no
// CAT programming) and the Isolate model (static workload-wise partitioning
// proportional to pinned core counts). Both leave DCA enabled for every
// device.
package baseline

import (
	"a4sim/internal/cache"
	"a4sim/internal/core"
	"a4sim/internal/hierarchy"
)

// ApplyDefault programs the Default model: every CLOS full-mask.
func ApplyDefault(h *hierarchy.Hierarchy) {
	h.CAT().Reset()
	for _, p := range h.PCIe().Ports() {
		h.PCIe().SetPortDCA(p.Index(), true)
	}
	h.PCIe().SetGlobalDCA(true)
}

// ApplyIsolate programs the Isolate model: each workload receives a
// contiguous, disjoint slice of LLC ways proportional to its core count.
// The slices are assigned left to right in workload order and cover all
// ways; every workload gets at least one way.
func ApplyIsolate(h *hierarchy.Hierarchy, infos []core.WorkloadInfo) {
	ApplyDefault(h)
	ways := h.Config().LLC.Ways
	total := 0
	for _, w := range infos {
		total += len(w.Cores)
	}
	if total == 0 || len(infos) == 0 {
		return
	}
	// Largest-remainder apportionment with a floor of one way.
	counts := make([]int, len(infos))
	assigned := 0
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	for i, w := range infos {
		exact := float64(ways) * float64(len(w.Cores)) / float64(total)
		c := int(exact)
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
		rems = append(rems, rem{i, exact - float64(int(exact))})
	}
	for assigned > ways {
		// Trim from the largest allocations.
		maxI := 0
		for i, c := range counts {
			if c > counts[maxI] {
				maxI = i
			}
		}
		if counts[maxI] <= 1 {
			break
		}
		counts[maxI]--
		assigned--
	}
	for assigned < ways {
		// Grant leftovers by largest remainder.
		best := -1
		var bestFrac float64 = -1
		for _, r := range rems {
			if r.frac > bestFrac {
				best, bestFrac = r.idx, r.frac
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		assigned++
		for i := range rems {
			if rems[i].idx == best {
				rems[i].frac = -2 // consume
			}
		}
	}
	// Program contiguous slices left to right.
	left := 0
	cat := h.CAT()
	for i, w := range infos {
		right := left + counts[i] - 1
		if right >= ways {
			right = ways - 1
		}
		if left > right {
			left, right = ways-1, ways-1
		}
		clos := i + 1
		if err := cat.SetMask(clos, cache.MaskRange(left, right)); err != nil {
			panic(err)
		}
		for _, c := range w.Cores {
			if err := cat.Associate(c, clos); err != nil {
				panic(err)
			}
		}
		left = right + 1
		if left >= ways {
			left = ways - 1
		}
	}
}
