package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEncodeResultEnvelopeMatchesJSON pins the hand-rolled envelope encoder
// against encoding/json on a real report: the serving fast path must stay
// byte-identical to what writeJSON of the equivalent map would have
// produced, or cached and uncached answers for the same run would differ.
func TestEncodeResultEnvelopeMatchesJSON(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	res, err := svc.Submit(testSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	for _, cached := range []bool{false, true} {
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		if err := enc.Encode(map[string]any{
			"cached": cached,
			"hash":   res.Hash,
			"report": json.RawMessage(res.Report),
		}); err != nil {
			t.Fatal(err)
		}
		got := encodeResultEnvelope(res.Hash, cached, res.Report)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("cached=%v: envelope differs from json.Encoder:\n got %q\nwant %q",
				cached, got, want.Bytes())
		}
	}
}

// TestServiceStressRace hammers one Service with mixed Run/Lookup/Series/
// Extend/Stats clients (run under -race in CI) and then checks the atomic
// counters against per-client tallies: every observation a client made must
// be visible in the merged stats — a lost atomic update or a torn cache
// entry fails the arithmetic, not just the race detector.
func TestServiceStressRace(t *testing.T) {
	svc := New(Config{Workers: 2, CacheEntries: 128})
	defer svc.Close()

	// Prime the popular spec so its report bytes are the reference.
	ref, err := svc.Submit(testSpec(500))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const iters = 40
	var cached, uncached atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var res Result
				var err error
				switch i % 8 {
				case 6:
					// A spec unique to this (client, iteration): always a miss.
					res, err = svc.Submit(testSpec(uint64(1000 + c*iters + i)))
				case 7:
					// All clients extend the same run to the same window: one
					// execution, the rest dedups or hits.
					res, err = svc.Extend(ref.Hash, 2)
				default:
					res, err = svc.Submit(testSpec(500))
					if err == nil && !bytes.Equal(res.Report, ref.Report) {
						errs <- fmt.Errorf("client %d: cached report differs from reference", c)
						return
					}
				}
				if err != nil {
					errs <- fmt.Errorf("client %d iter %d: %w", c, i, err)
					return
				}
				if res.Cached {
					cached.Add(1)
				} else {
					uncached.Add(1)
				}
				// Interleave the read-only surfaces.
				if rep, ok := svc.Lookup(ref.Hash); !ok || !bytes.Equal(rep, ref.Report) {
					errs <- fmt.Errorf("client %d: Lookup lost the reference report", c)
					return
				}
				svc.Series(ref.Hash) // no series block: a miss, but must not race
			}
		}(c)
	}
	// A scrape client runs alongside: /stats + /metrics readers must never
	// block or corrupt the writers.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				svc.Stats()
				svc.WriteMetrics(io.Discard)
			}
		}
	}()
	wg.Wait()
	close(done)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	// +1 for the priming submission (an uncached miss).
	ops := cached.Load() + uncached.Load() + 1
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	if st.Hits != cached.Load() {
		t.Errorf("hits = %d, want %d (clients observed)", st.Hits, cached.Load())
	}
	if st.Misses+st.Dedups != uncached.Load()+1 {
		t.Errorf("misses+dedups = %d+%d, want %d", st.Misses, st.Dedups, uncached.Load()+1)
	}
	if st.Executions != st.Misses {
		t.Errorf("executions = %d, misses = %d; every miss should execute exactly once", st.Executions, st.Misses)
	}
	if got := st.Hits + st.Misses + st.Dedups; got != ops {
		t.Errorf("hits+misses+dedups = %d, want %d ops", got, ops)
	}
}

// TestServeStressByteIdentical drives the HTTP surface concurrently with
// the same /run body (the repeat-body fast path) while /metrics and /stats
// scrape, and asserts every response after priming is byte-for-byte the
// same cached envelope.
func TestServeStressByteIdentical(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewMux(svc, func() any { return svc.Stats() }, nil))
	defer srv.Close()

	body, err := json.Marshal(testSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	post := func() ([]byte, error) {
		resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
		return data, nil
	}
	if _, err := post(); err != nil { // prime: executes
		t.Fatal(err)
	}
	ref, err := post() // first cached answer: the reference bytes
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				data, err := post()
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if !bytes.Equal(data, ref) {
					errs <- fmt.Errorf("client %d: response differs from reference:\n got %q\nwant %q", c, data, ref)
					return
				}
			}
		}(c)
	}
	// A scrape client runs alongside the posters until they finish.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				for _, path := range []string{"/stats", "/metrics"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if want := uint64(clients*iters + 1); st.Hits != want {
		t.Errorf("hits = %d, want %d", st.Hits, want)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
}
