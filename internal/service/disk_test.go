package service

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"a4sim/internal/scenario"
	"a4sim/internal/store"
)

// openStore opens the durable store at dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// seriesSpec is testSpec with the telemetry plane on, so series objects
// ride the disk plane too.
func diskSpec(seed uint64) *scenario.Spec {
	sp := testSpec(seed)
	sp.Series = &scenario.SeriesSpec{}
	return sp
}

// TestRestartServesPreCrashResults is the restart-rehydration property: a
// service is "killed" (abandoned without Close, as a crash would), a new
// one opens the same store directory, and the new instance serves the old
// instance's reports, series, and extends its runs — byte-identically,
// without re-executing what disk already holds.
func TestRestartServesPreCrashResults(t *testing.T) {
	dir := t.TempDir()

	svc1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	r1, err := svc1.Submit(diskSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	series1, ok := svc1.Series(r1.Hash)
	if !ok {
		t.Fatal("no series for the submitted run")
	}
	// No svc1.Close(): the daemon dies here. Puts are synced at return, so
	// everything the submission answered with is already durable.

	svc2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer svc2.Close()

	rep, ok := svc2.Lookup(r1.Hash)
	if !ok {
		t.Fatal("restarted service cannot serve the pre-crash report")
	}
	if !bytes.Equal(rep, r1.Report) {
		t.Fatal("pre-crash report served with different bytes after restart")
	}
	if series2, ok := svc2.Series(r1.Hash); !ok || !bytes.Equal(series2, series1) {
		t.Fatal("pre-crash series missing or changed after restart")
	}
	st := svc2.Stats()
	if st.StoreHits == 0 {
		t.Errorf("restart served without store hits: %+v", st)
	}
	if st.Executions != 0 {
		t.Errorf("restart re-executed a durably stored run: %+v", st)
	}

	// A re-submission of the same spec is a store-backed cache hit too.
	r2, err := svc2.Submit(diskSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || !bytes.Equal(r2.Report, r1.Report) {
		t.Error("re-submission after restart was not served from the store")
	}
	if st := svc2.Stats(); st.Executions != 0 {
		t.Errorf("re-submission after restart executed: %+v", st)
	}
}

// TestRestartExtendsPreCrashSnapshot pins warm-state durability: after a
// restart, extending a pre-crash run forks the snapshot rehydrated from
// disk — no fresh warm-up — and still renders bytes identical to running
// the longer spec from scratch.
func TestRestartExtendsPreCrashSnapshot(t *testing.T) {
	dir := t.TempDir()

	svc1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	r1, err := svc1.Submit(diskSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	// Crash. The warm snapshot at measure_sec=1 is on disk.

	svc2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer svc2.Close()
	ext, err := svc2.Extend(r1.Hash, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := svc2.Stats()
	if st.SnapshotForks != 1 {
		t.Errorf("extend after restart did not fork the disk snapshot: %+v", st)
	}

	// Byte-identity vs. a from-scratch run of the extended spec.
	longer := diskSpec(12)
	longer.MeasureSec = 2
	fresh := New(Config{Workers: 1})
	defer fresh.Close()
	want, err := fresh.Submit(longer)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Hash != want.Hash || !bytes.Equal(ext.Report, want.Report) {
		t.Fatal("extended-from-disk report differs from a from-scratch run")
	}
}

// corruptOneObject flips a payload bit in the single object of the given
// kind under dir, returning its key.
func corruptOneObject(t *testing.T, dir, kind string) string {
	t.Helper()
	var path string
	root := filepath.Join(dir, "objects", kind)
	filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatalf("no %s object found under %s", kind, root)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Base(path)
}

// TestCorruptObjectsQuarantinedAndReExecuted injects corruption into every
// kind the service spills and proves each path degrades to correct
// re-execution: a flipped report is quarantined and the run re-executes to
// the same bytes; a flipped snapshot is quarantined and the extension
// re-simulates from scratch — same bytes again; nothing is ever served
// from the damaged objects.
func TestCorruptObjectsQuarantinedAndReExecuted(t *testing.T) {
	dir := t.TempDir()
	svc1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	r1, err := svc1.Submit(diskSpec(13))
	if err != nil {
		t.Fatal(err)
	}

	corruptOneObject(t, dir, store.KindReport)
	corruptOneObject(t, dir, store.KindSnap)

	svc2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer svc2.Close()

	// The corrupt report must not be served; the resubmission re-executes
	// and lands on identical bytes.
	r2, err := svc2.Submit(diskSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Error("corrupt report was served as a cache hit")
	}
	if !bytes.Equal(r2.Report, r1.Report) {
		t.Fatal("re-executed report differs from the original")
	}
	st := svc2.Stats()
	if st.Executions != 1 {
		t.Errorf("corrupt report did not force a re-execution: %+v", st)
	}
	if st.StoreQuarantined == 0 {
		t.Errorf("corruption left no quarantine trace: %+v", st)
	}

	// The flipped snapshot was quarantined by the read above (the execute
	// path probed it before running fresh); the rewritten warm state
	// deposited by the re-execution extends correctly.
	ext, err := svc2.Extend(r2.Hash, 2)
	if err != nil {
		t.Fatal(err)
	}
	longer := diskSpec(13)
	longer.MeasureSec = 2
	fresh := New(Config{Workers: 1})
	defer fresh.Close()
	want, err := fresh.Submit(longer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext.Report, want.Report) {
		t.Fatal("extension after snapshot corruption diverged from a fresh run")
	}
}

// TestInstallSnapshotRejectsBadBytes pins the handoff import's validation:
// garbage, truncations, and prefix-mismatched payloads are rejected with an
// error (never a panic, never a poisoned cache), while re-installing a
// correctly exported snapshot succeeds and seeds warm state.
func TestInstallSnapshotRejectsBadBytes(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	sp := diskSpec(14)
	if _, err := svc.Submit(sp); err != nil {
		t.Fatal(err)
	}
	prefix, err := sp.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	wrapped, ok := svc.SnapshotBytes(prefix)
	if !ok {
		t.Fatal("no exportable snapshot after a run")
	}

	dst := New(Config{Workers: 2})
	defer dst.Close()
	if err := dst.InstallSnapshot(prefix, []byte("certainly not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	for _, n := range []int{0, 4, 12, len(wrapped) / 2, len(wrapped) - 1} {
		if err := dst.InstallSnapshot(prefix, wrapped[:n]); err == nil {
			t.Errorf("snapshot truncated to %d bytes accepted", n)
		}
	}
	if err := dst.InstallSnapshot(strings.Repeat("0", 64), append([]byte(nil), wrapped...)); err == nil {
		t.Error("snapshot installed under a foreign prefix")
	}
	if st := dst.Stats(); st.SnapshotEntries != 0 {
		t.Errorf("rejected installs leaked cache entries: %+v", st)
	}

	// The intact export installs, and the next longer run forks it.
	if err := dst.InstallSnapshot(prefix, wrapped); err != nil {
		t.Fatal(err)
	}
	longer := diskSpec(14)
	longer.MeasureSec = 2
	res, err := dst.Submit(longer)
	if err != nil {
		t.Fatal(err)
	}
	st := dst.Stats()
	if st.SnapshotForks != 1 {
		t.Errorf("installed snapshot was not forked: %+v", st)
	}

	// And the continued run matches a from-scratch execution byte for byte.
	fresh := New(Config{Workers: 1})
	defer fresh.Close()
	want, err := fresh.Submit(longer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Report, want.Report) {
		t.Fatal("run continued from an installed snapshot diverged from a fresh run")
	}
}
