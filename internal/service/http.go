package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"a4sim/internal/scenario"
)

// The HTTP surface of a4serve, factored over Runner so the same mux fronts
// a local worker pool (single-node daemon) or a cluster coordinator — the
// API a client sees is identical either way, which is what lets -cluster
// slot in without touching clients.

// SnapshotStore is the optional warm-state transfer surface a Runner may
// implement (the local Service does; a coordinator does not — it moves
// snapshots, it never holds them). When present, the mux exposes
// GET/POST /snapshot/<prefix> for snapshot shipping between nodes.
type SnapshotStore interface {
	// SnapshotBytes exports the wrapped warm snapshot for a prefix hash.
	SnapshotBytes(prefix string) ([]byte, bool)
	// InstallSnapshot validates and imports a wrapped warm snapshot.
	InstallSnapshot(prefix string, data []byte) error
}

// maxSnapshotBytes caps a POST /snapshot body. Warm snapshots are a few MB
// at the Skylake geometry; the cap only has to stop memory exhaustion.
const maxSnapshotBytes = 64 << 20

// NewMux serves r over the a4serve HTTP API. stats supplies the /stats
// payload: a Stats for a local service, a merged cluster view for a
// coordinator. healthy, when non-nil, gates /healthz: a false return serves
// 503, which is how a draining daemon tells probes and coordinators to
// route elsewhere before its listener closes.
func NewMux(r Runner, stats func() any, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		sp, err := scenario.Parse(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// No explicit Validate here: Submit's hashing validates the spec
		// and StatusForErr maps the rejection to 422.
		res, err := r.Submit(sp)
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		writeResult(w, res)
	})
	mux.HandleFunc("POST /extend", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var er ExtendRequest
		if err := scenario.StrictDecode(body, &er); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, err := r.Extend(er.Hash, er.MeasureSec)
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		writeResult(w, res)
	})
	mux.HandleFunc("POST /sweep", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var sr SweepRequest
		if err := scenario.StrictDecode(body, &sr); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		points, err := r.Sweep(&sr)
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		out := make([]map[string]any, len(points))
		for i, p := range points {
			out[i] = map[string]any{
				"grid":   p.Grid,
				"hash":   p.Hash,
				"cached": p.Cached,
				"report": json.RawMessage(p.Report),
			}
		}
		writeJSON(w, map[string]any{"points": out})
	})
	mux.HandleFunc("GET /result/{hash}", func(w http.ResponseWriter, req *http.Request) {
		hash := req.PathValue("hash")
		rep, ok := r.Lookup(hash)
		if !ok {
			httpError(w, http.StatusNotFound, "no cached result for "+hash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep)
	})
	mux.HandleFunc("GET /series/{hash}", func(w http.ResponseWriter, req *http.Request) {
		hash := req.PathValue("hash")
		series, ok := r.Series(hash)
		if !ok {
			httpError(w, http.StatusNotFound, "no cached series for "+hash+" (unknown hash, evicted, or run without a series block)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(series)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if healthy != nil && !healthy() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, stats())
	})
	if ss, ok := r.(SnapshotStore); ok {
		mux.HandleFunc("GET /snapshot/{prefix}", func(w http.ResponseWriter, req *http.Request) {
			data, ok := ss.SnapshotBytes(req.PathValue("prefix"))
			if !ok {
				httpError(w, http.StatusNotFound, "no warm snapshot for "+req.PathValue("prefix"))
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		})
		mux.HandleFunc("POST /snapshot/{prefix}", func(w http.ResponseWriter, req *http.Request) {
			data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSnapshotBytes))
			if err != nil {
				httpError(w, bodyErrStatus(err), err.Error())
				return
			}
			if err := ss.InstallSnapshot(req.PathValue("prefix"), data); err != nil {
				httpError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			writeJSON(w, map[string]string{"status": "installed"})
		})
	}
	return mux
}

// ExtendRequest is the POST /extend body: re-run the spec served under Hash
// with a different measurement window.
type ExtendRequest struct {
	Hash       string  `json:"hash"`
	MeasureSec float64 `json:"measure_sec"`
}

func writeResult(w http.ResponseWriter, res Result) {
	writeJSON(w, map[string]any{
		"hash":   res.Hash,
		"cached": res.Cached,
		"report": json.RawMessage(res.Report),
	})
}

// readBody reads a request body under the 1 MiB cap; MaxBytesReader
// rejects oversized bodies outright rather than silently truncating into
// different (but parseable) JSON.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
}

// bodyErrStatus distinguishes an oversized body (413) from a transport or
// encoding failure mid-read (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// StatusForErr classifies a serving failure: an unknown content address is
// 404, execution errors are the server's fault (500), a closing service is
// transient (503), no reachable capacity likewise (503), a full queue asks
// the client to back off (429), anything else is a spec or grid rejected
// before running (422). The cluster coordinator translates backend HTTP
// statuses back into this same error taxonomy, so forwarding round-trips
// statuses exactly.
func StatusForErr(err error) int {
	var re *RunError
	switch {
	case errors.Is(err, ErrUnknownHash):
		return http.StatusNotFound
	case errors.As(err, &re):
		return http.StatusInternalServerError
	case errors.Is(err, ErrClosed), errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
