package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"a4sim/internal/obs"
	"a4sim/internal/scenario"
)

// The HTTP surface of a4serve, factored over Runner so the same mux fronts
// a local worker pool (single-node daemon) or a cluster coordinator — the
// API a client sees is identical either way, which is what lets -cluster
// slot in without touching clients.

// SnapshotStore is the optional warm-state transfer surface a Runner may
// implement (the local Service does; a coordinator does not — it moves
// snapshots, it never holds them). When present, the mux exposes
// GET/POST /snapshot/<prefix> for snapshot shipping between nodes.
type SnapshotStore interface {
	// SnapshotBytes exports the wrapped warm snapshot for a prefix hash.
	SnapshotBytes(prefix string) ([]byte, bool)
	// InstallSnapshot validates and imports a wrapped warm snapshot.
	InstallSnapshot(prefix string, data []byte) error
}

// maxSnapshotBytes caps a POST /snapshot body. Warm snapshots are a few MB
// at the Skylake geometry; the cap only has to stop memory exhaustion.
const maxSnapshotBytes = 64 << 20

// Tracer is the optional per-request tracing surface a Runner may
// implement (both the local Service and the cluster Coordinator do). When
// present, every /run and /extend is traced — the ID minted here or
// accepted from the request's X-A4-Trace header, so a coordinator's hop to
// a backend joins one trace — and the mux serves GET /trace/<id> and
// GET /traces?n=K from the ring.
type Tracer interface {
	SubmitTraced(*scenario.Spec, *obs.Trace) (Result, error)
	ExtendTraced(string, float64, *obs.Trace) (Result, error)
	TraceRing() *obs.Ring
	// TraceJSON serves a retained trace's canonical body; a coordinator
	// merges in the spans of every backend the trace touched.
	TraceJSON(id string) ([]byte, bool)
}

// EventsSource is the optional controller-event surface: the canonical
// event-log JSON recorded when a cached run executed, for
// GET /trace/events/<hash>.
type EventsSource interface {
	TraceEvents(hash string, n int) ([]byte, bool)
}

// MetricsWriter is the optional Prometheus exposition surface for
// GET /metrics; the mux appends its own per-endpoint request-duration
// histograms after the Runner's families.
type MetricsWriter interface {
	WriteMetrics(w io.Writer)
}

// SeriesStreamer is the optional live-series surface for
// GET /series/<hash>/stream: SSE rows while the run executes, stored-series
// replay afterwards. A coordinator implements it by proxying the owning
// backend's stream.
type SeriesStreamer interface {
	ServeSeriesStream(w http.ResponseWriter, req *http.Request, hash string)
}

// BodyRunner is the optional repeat-body fast path a Runner may implement
// (the local Service does): RunCachedBody serves a /run whose exact body
// bytes were seen before and whose result is resident, skipping spec
// parsing and hashing; RememberBody feeds it after a full-path success.
// Sound because body -> (spec, hash) is deterministic.
type BodyRunner interface {
	RunCachedBody(body []byte, tr *obs.Trace) (Result, bool)
	RememberBody(body []byte, hash string)
}

// NewMux serves r over the a4serve HTTP API. stats supplies the /stats
// payload: a Stats for a local service, a merged cluster view for a
// coordinator. healthy, when non-nil, gates /healthz: a false return serves
// 503, which is how a draining daemon tells probes and coordinators to
// route elsewhere before its listener closes.
func NewMux(r Runner, stats func() any, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	tc, _ := r.(Tracer)
	// Per-endpoint request-duration histograms, exposed by /metrics.
	hm := obs.NewHTTPMetrics()
	// beginTrace starts a request's trace (joining the inbound header's ID
	// when valid) and echoes the ID so clients can fetch the trace back;
	// endTrace records it in the ring, errors included — a failed request's
	// timing is exactly what traces are for.
	beginTrace := func(w http.ResponseWriter, req *http.Request) *obs.Trace {
		if tc == nil {
			return nil
		}
		id := req.Header.Get(obs.TraceHeader)
		if !obs.ValidID(id) {
			id = obs.NewID()
		}
		w.Header().Set(obs.TraceHeader, id)
		return obs.NewTrace(id)
	}
	endTrace := func(tr *obs.Trace) {
		if tr != nil {
			tc.TraceRing().Add(tr)
		}
	}
	br, _ := r.(BodyRunner)
	mux.HandleFunc("POST /run", hm.Timed("run", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		// Repeat-body fast path: a body seen before whose result is still
		// cached skips parse+hash entirely. The trace begins first so the
		// fast path's cache_hit mark lands in the ring like any other hit.
		tr := beginTrace(w, req)
		defer endTrace(tr)
		if br != nil {
			if res, ok := br.RunCachedBody(body, tr); ok {
				writeResult(w, res)
				return
			}
		}
		sp, err := scenario.Parse(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// No explicit Validate here: Submit's hashing validates the spec
		// and StatusForErr maps the rejection to 422.
		var res Result
		if tc != nil {
			res, err = tc.SubmitTraced(sp, tr)
		} else {
			res, err = r.Submit(sp)
		}
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		if br != nil {
			br.RememberBody(body, res.Hash)
		}
		writeResult(w, res)
	}))
	mux.HandleFunc("POST /extend", hm.Timed("extend", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var er ExtendRequest
		if err := scenario.StrictDecode(body, &er); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		tr := beginTrace(w, req)
		defer endTrace(tr)
		var res Result
		if tc != nil {
			res, err = tc.ExtendTraced(er.Hash, er.MeasureSec, tr)
		} else {
			res, err = r.Extend(er.Hash, er.MeasureSec)
		}
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		writeResult(w, res)
	}))
	mux.HandleFunc("POST /sweep", hm.Timed("sweep", func(w http.ResponseWriter, req *http.Request) {
		body, err := readBody(w, req)
		if err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		var sr SweepRequest
		if err := scenario.StrictDecode(body, &sr); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		points, err := r.Sweep(&sr)
		if err != nil {
			httpError(w, StatusForErr(err), err.Error())
			return
		}
		out := make([]map[string]any, len(points))
		for i, p := range points {
			out[i] = map[string]any{
				"grid":   p.Grid,
				"hash":   p.Hash,
				"cached": p.Cached,
				"report": json.RawMessage(p.Report),
			}
		}
		writeJSON(w, map[string]any{"points": out})
	}))
	mux.HandleFunc("GET /result/{hash}", hm.Timed("result", func(w http.ResponseWriter, req *http.Request) {
		hash := req.PathValue("hash")
		rep, ok := r.Lookup(hash)
		if !ok {
			httpErrorHash(w, http.StatusNotFound, "no cached result for "+hash, hash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep)
	}))
	mux.HandleFunc("GET /series/{hash}", hm.Timed("series", func(w http.ResponseWriter, req *http.Request) {
		hash := req.PathValue("hash")
		series, ok := r.Series(hash)
		if !ok {
			httpErrorHash(w, http.StatusNotFound, "no cached series for "+hash+" (unknown hash, evicted, or run without a series block)", hash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(series)
	}))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if healthy != nil && !healthy() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if mw, ok := r.(MetricsWriter); ok {
			mw.WriteMetrics(w)
		}
		hm.WriteProm(w)
	})
	if sr, ok := r.(SeriesStreamer); ok {
		// Go 1.22 mux: the /stream suffix pattern is more specific than
		// GET /series/{hash}, so both routes coexist.
		mux.HandleFunc("GET /series/{hash}/stream", func(w http.ResponseWriter, req *http.Request) {
			sr.ServeSeriesStream(w, req, req.PathValue("hash"))
		})
	}
	if es, ok := r.(EventsSource); ok {
		mux.HandleFunc("GET /trace/events/{hash}", func(w http.ResponseWriter, req *http.Request) {
			hash := req.PathValue("hash")
			n, _ := strconv.Atoi(req.URL.Query().Get("n"))
			data, ok := es.TraceEvents(hash, n)
			if !ok {
				httpErrorHash(w, http.StatusNotFound, "no event log for "+hash+" (unknown hash, evicted, or rehydrated from disk)", hash)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		})
	}
	if tc != nil {
		mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, req *http.Request) {
			data, ok := tc.TraceJSON(req.PathValue("id"))
			if !ok {
				httpError(w, http.StatusNotFound, "no retained trace "+req.PathValue("id"))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		})
		mux.HandleFunc("GET /traces", func(w http.ResponseWriter, req *http.Request) {
			n, _ := strconv.Atoi(req.URL.Query().Get("n"))
			if n <= 0 {
				n = 16
			}
			if n > 128 {
				n = 128
			}
			recent := tc.TraceRing().Recent(n)
			bodies := make([]json.RawMessage, len(recent))
			for i, t := range recent {
				bodies[i] = t.JSON()
			}
			writeJSON(w, map[string]any{"traces": bodies})
		})
	}
	if ss, ok := r.(SnapshotStore); ok {
		mux.HandleFunc("GET /snapshot/{prefix}", func(w http.ResponseWriter, req *http.Request) {
			data, ok := ss.SnapshotBytes(req.PathValue("prefix"))
			if !ok {
				httpError(w, http.StatusNotFound, "no warm snapshot for "+req.PathValue("prefix"))
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		})
		mux.HandleFunc("POST /snapshot/{prefix}", func(w http.ResponseWriter, req *http.Request) {
			data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSnapshotBytes))
			if err != nil {
				httpError(w, bodyErrStatus(err), err.Error())
				return
			}
			if err := ss.InstallSnapshot(req.PathValue("prefix"), data); err != nil {
				httpError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			writeJSON(w, map[string]string{"status": "installed"})
		})
	}
	return mux
}

// ExtendRequest is the POST /extend body: re-run the spec served under Hash
// with a different measurement window.
type ExtendRequest struct {
	Hash       string  `json:"hash"`
	MeasureSec float64 `json:"measure_sec"`
}

func writeResult(w http.ResponseWriter, res Result) {
	body := res.Envelope
	if body == nil {
		body = encodeResultEnvelope(res.Hash, res.Cached, res.Report)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// encodeResultEnvelope renders the /run and /extend response body without
// going through encoding/json: the three keys in their (sorted) marshal
// order plus the json.Encoder trailing newline. Byte-identical to
// writeJSON of the equivalent map — the report is already canonical
// (HTML-escaped) JSON and the hash is hex, so no re-escaping can differ —
// and pinned against the encoder by TestEncodeResultEnvelopeMatchesJSON.
func encodeResultEnvelope(hash string, cached bool, report []byte) []byte {
	buf := make([]byte, 0, len(report)+len(hash)+32)
	buf = append(buf, `{"cached":`...)
	buf = strconv.AppendBool(buf, cached)
	buf = append(buf, `,"hash":"`...)
	buf = append(buf, hash...)
	buf = append(buf, `","report":`...)
	buf = append(buf, report...)
	buf = append(buf, '}', '\n')
	return buf
}

// readBody reads a request body under the 1 MiB cap; MaxBytesReader
// rejects oversized bodies outright rather than silently truncating into
// different (but parseable) JSON.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
}

// bodyErrStatus distinguishes an oversized body (413) from a transport or
// encoding failure mid-read (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// StatusForErr classifies a serving failure: an unknown content address is
// 404, execution errors are the server's fault (500), a closing service is
// transient (503), no reachable capacity likewise (503), a full queue asks
// the client to back off (429), a forwarded APIError keeps the status it
// was born with, and anything else is a spec or grid rejected before
// running (422). ErrFromStatus is the exact inverse: the cluster
// coordinator translates backend HTTP statuses through it back into this
// same error taxonomy, so forwarding round-trips statuses unchanged.
func StatusForErr(err error) int {
	var re *RunError
	var ae *APIError
	switch {
	case errors.Is(err, ErrUnknownHash):
		return http.StatusNotFound
	case errors.As(err, &re):
		return http.StatusInternalServerError
	case errors.As(err, &ae):
		return ae.Status
	case errors.Is(err, ErrClosed), errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// httpError writes the uniform error envelope: {"error", "status"} — the
// status is repeated in the body so a logged or proxied payload stays
// self-describing. Every error path in the service and cluster muxes goes
// through here (or httpErrorHash); no endpoint returns bare-text errors.
func httpError(w http.ResponseWriter, status int, msg string) {
	httpErrorHash(w, status, msg, "")
}

// httpErrorHash is httpError for failures about a specific run: the content
// address rides in the envelope's "hash" field so clients need not parse it
// out of the message.
func httpErrorHash(w http.ResponseWriter, status int, msg, hash string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: msg, Status: status, Hash: hash})
}
