package service

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"a4sim/internal/scenario"
)

// extendSpec is testSpec with an adjustable measurement window.
func extendSpec(seed uint64, measure float64) *scenario.Spec {
	sp := testSpec(seed)
	sp.MeasureSec = measure
	return sp
}

// freshReport runs sp serially out of band and returns its encoded report —
// the ground truth every snapshot-forked serving path must reproduce.
func freshReport(t *testing.T, sp *scenario.Spec) []byte {
	t.Helper()
	rep, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestExtendContinuesFromSnapshot pins the /extend contract: extending a
// previously served run to a longer measurement window forks the cached
// warm snapshot, simulates only the additional seconds, and still returns
// bytes identical to a fresh serial run of the longer spec.
func TestExtendContinuesFromSnapshot(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	first, err := svc.Submit(extendSpec(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := svc.Extend(first.Hash, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Hash == first.Hash {
		t.Fatal("extended run must have a new content address")
	}
	st := svc.Stats()
	if st.SnapshotForks == 0 {
		t.Error("extend did not fork the cached snapshot")
	}
	if st.SnapshotEntries == 0 {
		t.Error("no snapshot retained")
	}
	if want := freshReport(t, extendSpec(11, 3)); !bytes.Equal(ext.Report, want) {
		t.Fatalf("extended report differs from fresh serial run:\n%s\nvs\n%s", ext.Report, want)
	}
	// Extending the extension continues from the newer snapshot.
	ext2, err := svc.Extend(ext.Hash, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := freshReport(t, extendSpec(11, 5)); !bytes.Equal(ext2.Report, want) {
		t.Fatal("second extension diverged from fresh serial run")
	}

	if _, err := svc.Extend("no-such-hash", 2); !errors.Is(err, ErrUnknownHash) {
		t.Errorf("unknown hash: got %v, want ErrUnknownHash", err)
	}
	if _, err := svc.Extend(first.Hash, -1); err == nil {
		t.Error("negative measure_sec must be rejected")
	}
}

// TestSubmitReusesPrefixSnapshots pins that the plain /run path also forks
// a resident snapshot when a longer window of a known prefix arrives, with
// byte-identical output; and that a shorter-window request never misuses a
// longer snapshot.
func TestSubmitReusesPrefixSnapshots(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	if _, err := svc.Submit(extendSpec(12, 2)); err != nil {
		t.Fatal(err)
	}
	longer, err := svc.Submit(extendSpec(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().SnapshotForks; got != 1 {
		t.Errorf("snapshot forks = %d, want 1", got)
	}
	if want := freshReport(t, extendSpec(12, 4)); !bytes.Equal(longer.Report, want) {
		t.Fatal("snapshot-forked run differs from fresh serial run")
	}
	// Shorter than the resident snapshot: must run fresh, not reuse.
	shorter, err := svc.Submit(extendSpec(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().SnapshotForks; got != 1 {
		t.Errorf("shorter window reused a longer snapshot (forks = %d)", got)
	}
	if want := freshReport(t, extendSpec(12, 1)); !bytes.Equal(shorter.Report, want) {
		t.Fatal("shorter run differs from fresh serial run")
	}
}

// TestSnapshotsDisabled pins that SnapshotEntries < 0 turns the feature off
// without changing results.
func TestSnapshotsDisabled(t *testing.T) {
	svc := New(Config{Workers: 1, SnapshotEntries: -1})
	defer svc.Close()
	first, err := svc.Submit(extendSpec(13, 1))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := svc.Extend(first.Hash, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.SnapshotForks != 0 || st.SnapshotEntries != 0 {
		t.Errorf("snapshots should be disabled: %+v", st)
	}
	if want := freshReport(t, extendSpec(13, 2)); !bytes.Equal(ext.Report, want) {
		t.Fatal("snapshot-less extend differs from fresh serial run")
	}
}

// TestSweepChainsPrefixRows pins that a measure_sec-axis sweep forks later
// rows from earlier rows' snapshots and that every row stays byte-identical
// to its fresh serial run, at any worker count.
func TestSweepChainsPrefixRows(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()

	req := &SweepRequest{
		Spec: *extendSpec(14, 0),
		Axes: []Axis{{Param: "measure_sec", Values: []float64{1, 2, 3}}},
	}
	points, err := svc.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	if got := svc.Stats().SnapshotForks; got != 2 {
		t.Errorf("snapshot forks = %d, want 2 (rows 2 and 3 chained)", got)
	}
	for i, meas := range []float64{1, 2, 3} {
		if want := freshReport(t, extendSpec(14, meas)); !bytes.Equal(points[i].Report, want) {
			t.Errorf("sweep row %d (measure %g) differs from fresh serial run", i, meas)
		}
	}
}

// TestConcurrentExtendsAreConsistent hammers one prefix from several
// goroutines with growing windows; every response must match its fresh run.
func TestConcurrentExtendsAreConsistent(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()

	windows := []float64{1, 2, 3, 4}
	reports := make([][]byte, len(windows))
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	for i, m := range windows {
		wg.Add(1)
		go func(i int, m float64) {
			defer wg.Done()
			res, err := svc.Submit(extendSpec(15, m))
			reports[i], errs[i] = res.Report, err
		}(i, m)
	}
	wg.Wait()
	for i, m := range windows {
		if errs[i] != nil {
			t.Fatalf("window %g: %v", m, errs[i])
		}
		if want := freshReport(t, extendSpec(15, m)); !bytes.Equal(reports[i], want) {
			t.Errorf("window %g differs from fresh serial run", m)
		}
	}
}

// TestGroupByPrefix unit-tests the sweep grouping: same-prefix rows chain
// shortest-first; distinct prefixes split.
func TestGroupByPrefix(t *testing.T) {
	specs := []*scenario.Spec{
		extendSpec(1, 3),
		extendSpec(2, 1), // different seed -> different prefix
		extendSpec(1, 1),
		extendSpec(1, 0), // default window (3): ties keep grid order
	}
	groups := groupByPrefix(specs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// First-appearance order: seed-1 group first, sorted ascending by
	// effective measure with the tie (3 vs default 3) in grid order.
	want := []int{2, 0, 3}
	for i, idx := range groups[0] {
		if idx != want[i] {
			t.Fatalf("group 0 = %v, want %v", groups[0], want)
		}
	}
	if len(groups[1]) != 1 || groups[1][0] != 1 {
		t.Fatalf("group 1 = %v, want [1]", groups[1])
	}
}
