package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"a4sim/internal/obs"
	"a4sim/internal/stats"
)

// GET /series/<hash>/stream: the run's per-second telemetry as it records.
// The response is Server-Sent Events —
//
//	event: hello     data: {"hz":1,"columns":[...]}        column layout
//	event: row       data: {"i":N,"values":[...]}          one row per second
//	event: series    data: <canonical series JSON>          normal end
//	event: error     data: {"error":"..."}                  abnormal end
//
// A subscriber attaching mid-run replays from row 0, then follows live; a
// completed run replays its stored series through the same event shapes.
// The terminal series event carries exactly the bytes GET /series/<hash>
// serves, so a client can verify the rows it streamed against the stored
// encoding bit for bit.

// ServeSeriesStream implements the SeriesStreamer surface for the local
// service: live runs stream from the hub, finished runs replay the stored
// series, and everything else is the same 404 the plain series endpoint
// gives.
func (s *Service) ServeSeriesStream(w http.ResponseWriter, req *http.Request, hash string) {
	if sub, ok := s.streams.Attach(hash); ok {
		defer sub.Close()
		streamLive(w, req, sub)
		return
	}
	// A run finishing between the hub check and here is safe: Finish runs
	// after the cache put, so a missed live attach always finds the stored
	// series.
	if data, ok := s.Series(hash); ok {
		streamStored(w, req, data)
		return
	}
	httpError(w, http.StatusNotFound, "no series for "+hash+" (unknown hash, evicted, or run without a series block)")
}

func streamLive(w http.ResponseWriter, req *http.Request, sub *obs.SeriesSub) {
	sse, err := newSSEWriter(w)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	row := 0
	if sub.Names != nil {
		sse.hello(sub.Names)
	}
	for _, vals := range sub.Replay {
		sse.row(row, vals)
		row++
	}
	ctx := req.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case msg, ok := <-sub.C:
			switch {
			case !ok:
				// Closed without a terminal message: this subscriber fell
				// behind and was dropped by the hub.
				sse.errEvent("stream dropped: subscriber fell behind")
				return
			case msg.Names != nil:
				sse.hello(msg.Names)
			case msg.Row != nil:
				sse.row(row, msg.Row)
				row++
			case msg.End && msg.Err != "":
				sse.errEvent(msg.Err)
				return
			case msg.End:
				sse.series(msg.Final)
				return
			}
		}
	}
}

func streamStored(w http.ResponseWriter, req *http.Request, data []byte) {
	ser, err := stats.DecodeSeries(data)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "corrupt stored series: "+err.Error())
		return
	}
	sse, err := newSSEWriter(w)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sse.hello(ser.Names())
	var scratch []float64
	for i := 0; i < ser.Len(); i++ {
		scratch = ser.Row(i, scratch)
		sse.row(i, scratch)
	}
	sse.series(data)
}

// sseWriter frames Server-Sent Events, flushing after each so rows reach
// the subscriber at the 1 Hz cadence they record at instead of pooling in
// HTTP buffers.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, errors.New("service: response writer cannot stream")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, nil
}

func (s *sseWriter) event(name string, data []byte) {
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	s.f.Flush()
}

func (s *sseWriter) hello(names []string) {
	data, _ := json.Marshal(struct {
		Hz      int      `json:"hz"`
		Columns []string `json:"columns"`
	}{Hz: 1, Columns: names})
	s.event("hello", data)
}

func (s *sseWriter) row(i int, values []float64) {
	data, _ := json.Marshal(struct {
		I      int       `json:"i"`
		Values []float64 `json:"values"`
	}{I: i, Values: values})
	s.event("row", data)
}

func (s *sseWriter) series(data []byte) { s.event("series", data) }

func (s *sseWriter) errEvent(msg string) {
	data, _ := json.Marshal(map[string]string{"error": msg})
	s.event("error", data)
}
