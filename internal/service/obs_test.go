package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"a4sim/internal/obs"
	"a4sim/internal/stats"
)

// obsServer serves a fresh service over the full HTTP mux.
func obsServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{Workers: 2, CacheEntries: 32})
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(NewMux(svc, func() any { return svc.Stats() }, nil))
	t.Cleanup(srv.Close)
	return svc, srv
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses an event stream to completion.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{name: name, data: []byte(strings.TrimPrefix(line, "data: "))})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return events
}

// checkStreamAgainstStored verifies the core streaming contract on one SSE
// event list: the rows reconstruct the stored series exactly and the
// terminal series event is byte-identical to GET /series/<hash>.
func checkStreamAgainstStored(t *testing.T, events []sseEvent, stored []byte) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	ser, err := stats.DecodeSeries(stored)
	if err != nil {
		t.Fatal(err)
	}
	var hello struct {
		Hz      int      `json:"hz"`
		Columns []string `json:"columns"`
	}
	if events[0].name != "hello" {
		t.Fatalf("first event %q, want hello", events[0].name)
	}
	if err := json.Unmarshal(events[0].data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Hz != 1 {
		t.Errorf("hz = %d, want 1", hello.Hz)
	}
	wantNames := ser.Names()
	if strings.Join(hello.Columns, ",") != strings.Join(wantNames, ",") {
		t.Errorf("columns %v, want %v", hello.Columns, wantNames)
	}
	rows := 0
	var scratch []float64
	for _, ev := range events[1 : len(events)-1] {
		if ev.name != "row" {
			t.Fatalf("mid-stream event %q, want row", ev.name)
		}
		var r struct {
			I      int       `json:"i"`
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal(ev.data, &r); err != nil {
			t.Fatal(err)
		}
		if r.I != rows {
			t.Fatalf("row index %d, want %d", r.I, rows)
		}
		scratch = ser.Row(rows, scratch)
		for c, v := range r.Values {
			if v != scratch[c] {
				t.Fatalf("row %d col %d streamed %v, stored %v", rows, c, v, scratch[c])
			}
		}
		rows++
	}
	if rows != ser.Len() {
		t.Errorf("streamed %d rows, stored series has %d", rows, ser.Len())
	}
	last := events[len(events)-1]
	if last.name != "series" {
		t.Fatalf("terminal event %q, want series", last.name)
	}
	if !bytes.Equal(last.data, stored) {
		t.Errorf("terminal series bytes differ from stored:\n%s\n%s", last.data, stored)
	}
}

// TestStreamLiveAttachMatchesStored is the streaming acceptance pin: a
// subscriber attaching while the run executes receives rows and a terminal
// series byte-identical to what GET /series serves afterwards.
func TestStreamLiveAttachMatchesStored(t *testing.T) {
	_, srv := obsServer(t)
	sp := seriesSpec(91, 4)
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	_, hash, _, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("POST /run: status %d", resp.StatusCode)
			}
		}
		runDone <- err
	}()

	// Attach as soon as the stream answers: while the run executes this is
	// the live path; if execution already won the race we replay the stored
	// series through the same event shapes. Both must satisfy the contract.
	var events []sseEvent
	for {
		resp, err := http.Get(srv.URL + "/series/" + hash + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			// Raced ahead of the job being opened; try again.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type %q", ct)
		}
		events = readSSE(t, resp.Body)
		resp.Body.Close()
		break
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	stored, err := fetchOK(srv.URL + "/series/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamAgainstStored(t, events, stored)

	// A second attach now replays the stored series — same contract, same
	// bytes.
	resp, err := http.Get(srv.URL + "/series/" + hash + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp.Body)
	resp.Body.Close()
	checkStreamAgainstStored(t, replay, stored)
}

func fetchOK(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil && resp.StatusCode != http.StatusOK {
		err = io.ErrUnexpectedEOF
	}
	return data, err
}

// TestStreamUnknownHash404s mirrors the plain series endpoint.
func TestStreamUnknownHash404s(t *testing.T) {
	_, srv := obsServer(t)
	resp, err := http.Get(srv.URL + "/series/deadbeef/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestTraceCoversLifecycle: a traced /run serves back a trace whose spans
// cover the request's seams, and a caller-supplied X-A4-Trace ID is joined
// rather than replaced.
func TestTraceCoversLifecycle(t *testing.T) {
	_, srv := obsServer(t)
	body, _ := json.Marshal(testSpec(71))
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/run", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "caller-chosen-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "caller-chosen-id-1" {
		t.Fatalf("trace header %q, want caller's ID echoed", got)
	}

	data, err := fetchOK(srv.URL + "/trace/caller-chosen-id-1")
	if err != nil {
		t.Fatal(err)
	}
	id, spans, err := obs.DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != "caller-chosen-id-1" {
		t.Errorf("trace id %q", id)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"queue_wait", "warm", "measure"} {
		if !names[want] {
			t.Errorf("trace missing %s span: %v", want, spans)
		}
	}

	// The cached re-submission marks a cache hit under a fresh trace.
	req2, _ := http.NewRequest(http.MethodPost, srv.URL+"/run", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	id2 := resp2.Header.Get(obs.TraceHeader)
	if id2 == "" || id2 == "caller-chosen-id-1" {
		t.Fatalf("second request should mint a fresh ID, got %q", id2)
	}
	data2, err := fetchOK(srv.URL + "/trace/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data2), `"cache_hit"`) {
		t.Errorf("cached request's trace lacks cache_hit: %s", data2)
	}

	// Both appear in the recent listing, newest first.
	listing, err := fetchOK(srv.URL + "/traces?n=4")
	if err != nil {
		t.Fatal(err)
	}
	var recent struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(listing, &recent); err != nil {
		t.Fatal(err)
	}
	if len(recent.Traces) != 2 {
		t.Fatalf("traces listing has %d entries, want 2", len(recent.Traces))
	}
	if gotID, _, _ := obs.DecodeTrace(recent.Traces[0]); gotID != id2 {
		t.Errorf("newest trace %q, want %q", gotID, id2)
	}
}

// TestMetricsExposition: /metrics serves the stats counters, the queue-wait
// histogram, and the mux's own per-endpoint request histograms in
// Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, srv := obsServer(t)
	body, _ := json.Marshal(testSpec(72))
	resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q", ct)
	}
	data, _ := io.ReadAll(mresp.Body)
	out := string(data)
	for _, want := range []string{
		"# TYPE a4_executions_total counter",
		"a4_executions_total 1",
		"a4_misses_total 1",
		"# TYPE a4_queue_wait_seconds histogram",
		`a4_queue_wait_seconds_bucket{le="`,
		"a4_queue_wait_seconds_count 1",
		`a4_http_request_duration_seconds_count{endpoint="run"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestTraceEventsServedPerRun: the controller event log recorded during a
// cached run's execution is served by content address; unknown hashes 404.
func TestTraceEventsServedPerRun(t *testing.T) {
	svc, srv := obsServer(t)
	// A window long enough for the controller to make decisions: the event
	// log records them, and covers this execution only (a run forked from a
	// warm snapshot logs just its own seconds).
	sp := testSpec(73)
	sp.MeasureSec = 8
	res, err := svc.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fetchOK(srv.URL + "/trace/events/" + res.Hash)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Events  []json.RawMessage `json:"events"`
		Dropped int64             `json:"dropped"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("event log not JSON: %v in %s", err, data)
	}
	if len(log.Events) == 0 {
		t.Error("a4-d run recorded no controller events")
	}

	// ?n= tails the log.
	tail, err := fetchOK(srv.URL + "/trace/events/" + res.Hash + "?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var tailLog struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(tail, &tailLog); err != nil {
		t.Fatal(err)
	}
	if len(tailLog.Events) != 1 {
		t.Errorf("?n=1 served %d events", len(tailLog.Events))
	}

	resp, err := http.Get(srv.URL + "/trace/events/0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status %d, want 404", resp.StatusCode)
	}
}
