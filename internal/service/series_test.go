package service

import (
	"bytes"
	"testing"

	"a4sim/internal/scenario"
)

// seriesSpec is testSpec with the telemetry plane enabled.
func seriesSpec(seed uint64, measure float64) *scenario.Spec {
	sp := testSpec(seed)
	sp.MeasureSec = measure
	sp.Series = &scenario.SeriesSpec{} // all groups
	return sp
}

// TestSeriesStoredBesideReport pins the storage contract: a run whose spec
// carries a series block serves its per-second telemetry by content
// address, and a run without one serves nothing time-resolved.
func TestSeriesStoredBesideReport(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	res, err := svc.Submit(seriesSpec(21, 2))
	if err != nil {
		t.Fatal(err)
	}
	series, ok := svc.Series(res.Hash)
	if !ok {
		t.Fatal("no series stored for a series-enabled run")
	}
	rep, err := scenario.DecodeReport(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series == nil || rep.Series.Len() != 2 {
		t.Fatalf("report series rows = %v, want 2", rep.Series)
	}
	repSeries, err := rep.Series.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(series, repSeries) {
		t.Error("stored series differs from the report's embedded series")
	}

	plain, err := svc.Submit(testSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Series(plain.Hash); ok {
		t.Error("series served for a run without a series block")
	}
	if _, ok := svc.Series("no-such-hash"); ok {
		t.Error("series served for an unknown hash")
	}
}

// TestSeriesAbsenceKeepsHashes pins the cache-compatibility guarantee: the
// series block is additive, so a spec without one must hash exactly as it
// did before the field existed — both content and prefix addresses.
func TestSeriesAbsenceKeepsHashes(t *testing.T) {
	with := seriesSpec(1, 1)
	without := testSpec(1)
	h1, err := without.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := with.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("series block must change the content address (the report differs)")
	}
	p1, err := without.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := with.PrefixHash()
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("series block must change the prefix (snapshots carry the monitor's recording state)")
	}
	// The canonical bytes of the series-free spec contain no series field
	// at all — byte-compatible with pre-telemetry canonical encodings.
	canon, err := without.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(canon, []byte("series")) {
		t.Errorf("series leaked into a series-free canonical encoding: %s", canon)
	}
}

// TestExtendAppendsSeries pins the telemetry half of the /extend contract:
// extending a served series-enabled run continues its per-second series by
// appending seconds (via the warm-snapshot fork), and the result — report
// and series bytes — is identical to a fresh longer run on a cold service.
func TestExtendAppendsSeries(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	first, err := svc.Submit(seriesSpec(31, 1))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := svc.Extend(first.Hash, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SnapshotForks == 0 {
		t.Error("extend did not fork the cached snapshot")
	}

	cold := New(Config{Workers: 1, SnapshotEntries: -1})
	defer cold.Close()
	fresh, err := cold.Submit(seriesSpec(31, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext.Report, fresh.Report) {
		t.Error("extend-appended report differs from fresh longer run")
	}
	extSeries, ok := svc.Series(ext.Hash)
	if !ok {
		t.Fatal("extended run has no stored series")
	}
	freshSeries, ok := cold.Series(fresh.Hash)
	if !ok {
		t.Fatal("fresh run has no stored series")
	}
	if !bytes.Equal(extSeries, freshSeries) {
		t.Errorf("extend-appended series differs from fresh longer run\next:   %.200s\nfresh: %.200s", extSeries, freshSeries)
	}
	rep, err := scenario.DecodeReport(ext.Report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Series.Len() != 4 {
		t.Errorf("extended series has %d rows, want 4", rep.Series.Len())
	}
}

// TestSweepSeriesDeterministicAcrossWorkers pins serial-vs-parallel
// byte-identity with the series plane on: a measure_sec axis chains
// snapshot forks, and the appended series must not depend on the worker
// count or on whether a row forked or ran fresh.
func TestSweepSeriesDeterministicAcrossWorkers(t *testing.T) {
	req := func() *SweepRequest {
		sp := seriesSpec(41, 0)
		return &SweepRequest{
			Spec: *sp,
			Axes: []Axis{
				{Param: "measure_sec", Values: []float64{1, 2, 3}},
				{Param: "manager", Managers: []string{"default", "a4-d"}},
			},
		}
	}
	run := func(workers, snapshots int) []SweepPoint {
		svc := New(Config{Workers: workers, SnapshotEntries: snapshots})
		defer svc.Close()
		points, err := svc.Sweep(req())
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial := run(1, -1) // cold, no snapshot reuse: every point fresh
	if len(serial) != 6 {
		t.Fatalf("expected 6 grid points, got %d", len(serial))
	}
	for _, workers := range []int{2, 4} {
		parallel := run(workers, 0) // snapshot chaining on
		for i := range serial {
			if !bytes.Equal(serial[i].Report, parallel[i].Report) {
				t.Fatalf("workers=%d: point %d (series-enabled) differs from fresh serial run", workers, i)
			}
		}
	}
}
