package service

import (
	"io"

	"a4sim/internal/obs"
)

// Prometheus exposition of the service counters. The family table is
// shared with the cluster coordinator, which exposes the same families
// twice: fleet-summed without labels (so single-node dashboards work
// unchanged against a coordinator) and per-backend with a backend label.

// StatFamily describes one Stats field as a Prometheus family.
type StatFamily struct {
	Name string
	Type string // "counter" or "gauge"
	Get  func(Stats) float64
}

// StatFamilies enumerates the exposition of every Stats field, in a fixed
// order so scrapes are deterministic.
func StatFamilies() []StatFamily {
	return []StatFamily{
		{"a4_hits_total", "counter", func(s Stats) float64 { return float64(s.Hits) }},
		{"a4_misses_total", "counter", func(s Stats) float64 { return float64(s.Misses) }},
		{"a4_dedups_total", "counter", func(s Stats) float64 { return float64(s.Dedups) }},
		{"a4_executions_total", "counter", func(s Stats) float64 { return float64(s.Executions) }},
		{"a4_errors_total", "counter", func(s Stats) float64 { return float64(s.Errors) }},
		{"a4_cache_entries", "gauge", func(s Stats) float64 { return float64(s.Entries) }},
		{"a4_workers", "gauge", func(s Stats) float64 { return float64(s.Workers) }},
		{"a4_queued", "gauge", func(s Stats) float64 { return float64(s.Queued) }},
		{"a4_snapshot_forks_total", "counter", func(s Stats) float64 { return float64(s.SnapshotForks) }},
		{"a4_snapshot_entries", "gauge", func(s Stats) float64 { return float64(s.SnapshotEntries) }},
		{"a4_store_hits_total", "counter", func(s Stats) float64 { return float64(s.StoreHits) }},
		{"a4_store_objects", "gauge", func(s Stats) float64 { return float64(s.StoreObjects) }},
		{"a4_store_quarantined_total", "counter", func(s Stats) float64 { return float64(s.StoreQuarantined) }},
		{"a4_trace_events_dropped_total", "counter", func(s Stats) float64 { return float64(s.TraceDropped) }},
	}
}

// LabeledStats is one label set's view of the counters for exposition.
type LabeledStats struct {
	Labels string // pre-rendered label pairs; "" for the unlabeled row
	Stats  Stats
}

// WriteStatsProm writes every stat family, each with one sample line per
// row.
func WriteStatsProm(w io.Writer, rows []LabeledStats) {
	e := obs.NewExpo(w)
	for _, f := range StatFamilies() {
		e.Family(f.Name, f.Type)
		for _, row := range rows {
			e.Val(f.Name, row.Labels, f.Get(row.Stats))
		}
	}
}

// WriteMetrics implements the MetricsWriter surface for the local service:
// every /stats counter, the queue-wait histogram, and the trace ring's
// occupancy. The mux appends its own per-endpoint request histograms.
func (s *Service) WriteMetrics(w io.Writer) {
	WriteStatsProm(w, []LabeledStats{{Stats: s.Stats()}})
	qw := s.queueWait.Snapshot()
	e := obs.NewExpo(w)
	e.Hist("a4_queue_wait_seconds", "", qw, 1e6)
	e.Family("a4_traces", "gauge")
	e.Val("a4_traces", "", float64(s.traces.Len()))
	e.Family("a4_trace_ring_dropped_total", "counter")
	e.Val("a4_trace_ring_dropped_total", "", float64(s.traces.Dropped()))
}
