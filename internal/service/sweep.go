package service

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"a4sim/internal/scenario"
)

// Axis is one swept parameter: a spec field name and the values the sweep
// takes for it. Supported params: rate_scale, seed, nic_gbps, packet_bytes,
// ring_entries, ssd_gbps, warmup_sec, measure_sec, and "manager" via
// Managers (strings) instead of Values.
type Axis struct {
	Param    string    `json:"param"`
	Values   []float64 `json:"values,omitempty"`
	Managers []string  `json:"managers,omitempty"`
}

// MaxSweepPoints caps one sweep's grid size.
const MaxSweepPoints = 4096

// SweepRequest is a base spec plus the grid to expand around it.
type SweepRequest struct {
	Spec scenario.Spec `json:"spec"`
	Axes []Axis        `json:"axes"`
}

// SweepPoint is one grid point's outcome, in grid order.
type SweepPoint struct {
	// Grid holds the axis values this point was run at, keyed by param.
	Grid   map[string]any `json:"grid"`
	Hash   string         `json:"hash"`
	Cached bool           `json:"cached"`
	Report []byte         `json:"-"`
}

func applyAxis(sp *scenario.Spec, param string, v float64, mgr string) error {
	// Zero means "use the default" everywhere in spec semantics, so a grid
	// point claiming value 0 would silently run the default and its label
	// would lie; reject it instead. Likewise a fractional value for an
	// integer param would silently truncate under its label.
	if param != "manager" {
		if v <= 0 {
			return fmt.Errorf("service: sweep axis %q: value %g not positive (omit the axis to use the default)", param, v)
		}
		switch param {
		case "seed", "packet_bytes", "ring_entries":
			if v != math.Trunc(v) {
				return fmt.Errorf("service: sweep axis %q: value %g is not an integer", param, v)
			}
			// Conversions from out-of-range floats are implementation-
			// defined (amd64 and arm64 disagree), which would break the
			// hash-determinism contract; 2^53 is where float64 stops
			// representing integers exactly anyway.
			if v > 1<<53 {
				return fmt.Errorf("service: sweep axis %q: value %g too large", param, v)
			}
		}
	}
	switch param {
	case "manager":
		sp.Manager = mgr
	case "rate_scale":
		sp.Params.RateScale = v
	case "seed":
		sp.Params.Seed = uint64(v)
	case "nic_gbps":
		sp.Params.NICGbps = v
	case "packet_bytes":
		sp.Params.PacketBytes = int(v)
	case "ring_entries":
		sp.Params.RingEntries = int(v)
	case "ssd_gbps":
		sp.Params.SSDGBps = v
	case "warmup_sec":
		sp.WarmupSec = v
	case "measure_sec":
		sp.MeasureSec = v
	default:
		return fmt.Errorf("service: unknown sweep param %q", param)
	}
	return nil
}

// expand builds the cartesian product of the axes over the base spec. The
// point order is row-major in axis order, so it is a pure function of the
// request — the worker count never reorders results.
func expand(req *SweepRequest) ([]*scenario.Spec, []map[string]any, error) {
	if len(req.Axes) == 0 {
		return nil, nil, fmt.Errorf("service: sweep needs at least one axis")
	}
	seen := map[string]bool{}
	total := 1
	for _, ax := range req.Axes {
		if seen[ax.Param] {
			return nil, nil, fmt.Errorf("service: duplicate sweep axis %q", ax.Param)
		}
		seen[ax.Param] = true
		// An axis fills exactly one of values/managers; silently dropping
		// the other would run a sweep the client did not ask for.
		if ax.Param == "manager" && len(ax.Values) > 0 {
			return nil, nil, fmt.Errorf("service: sweep axis %q takes managers, not values", ax.Param)
		}
		if ax.Param != "manager" && len(ax.Managers) > 0 {
			return nil, nil, fmt.Errorf("service: sweep axis %q takes values, not managers", ax.Param)
		}
		n := len(ax.Values)
		if ax.Param == "manager" {
			n = len(ax.Managers)
		}
		if n > 0 {
			total *= n
		}
		// Checked before any allocation: a small request body can encode a
		// cartesian blowup, and the daemon must reject it, not OOM.
		if total > MaxSweepPoints {
			return nil, nil, fmt.Errorf("service: sweep grid exceeds %d points", MaxSweepPoints)
		}
	}
	specs := []*scenario.Spec{req.Spec.Clone()}
	grids := []map[string]any{{}}
	for _, ax := range req.Axes {
		n := len(ax.Values)
		isMgr := ax.Param == "manager"
		if isMgr {
			n = len(ax.Managers)
		}
		if n == 0 {
			return nil, nil, fmt.Errorf("service: sweep axis %q has no values", ax.Param)
		}
		next := make([]*scenario.Spec, 0, len(specs)*n)
		nextG := make([]map[string]any, 0, len(specs)*n)
		for i, base := range specs {
			for j := 0; j < n; j++ {
				sp := base.Clone()
				g := make(map[string]any, len(grids[i])+1)
				for k, v := range grids[i] {
					g[k] = v
				}
				var err error
				if isMgr {
					mgr := ax.Managers[j]
					// Fold aliases so the grid label matches the canonical
					// manager the point actually hashes as.
					if m, ok := scenario.ManagerByName(mgr); ok {
						mgr = m.Name()
					}
					err = applyAxis(sp, ax.Param, 0, mgr)
					g[ax.Param] = mgr
				} else {
					err = applyAxis(sp, ax.Param, ax.Values[j], "")
					g[ax.Param] = ax.Values[j]
				}
				if err != nil {
					return nil, nil, err
				}
				next = append(next, sp)
				nextG = append(nextG, g)
			}
		}
		specs, grids = next, nextG
	}
	return specs, grids, nil
}

// Sweep expands the grid and runs every point on the worker pool,
// returning results in grid order. Points whose hash is already cached (or
// duplicated within the grid) are served without re-execution; each point's
// report is byte-identical at any worker count.
func (s *Service) Sweep(req *SweepRequest) ([]SweepPoint, error) {
	specs, grids, err := expand(req)
	if err != nil {
		return nil, err
	}
	// Validate the whole grid before running any of it, so a bad corner of
	// the grid doesn't waste the good corner's execution.
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("service: sweep point %d: %w", i, err)
		}
		if err := sp.CheckBudget(); err != nil {
			return nil, fmt.Errorf("service: sweep point %d: %w", i, err)
		}
	}
	// Rows sharing a run prefix (identical scenario and warm-up, divergent
	// measurement window — e.g. a measure_sec axis) are chained: shortest
	// first, sequentially, so each later row forks the warm snapshot its
	// predecessor deposited instead of re-simulating the prefix. Rows with
	// distinct prefixes stay fully concurrent, and when snapshot reuse is
	// off the chaining would serialize rows for nothing, so every row runs
	// on its own goroutine. Results are assembled by grid index, so the
	// grouping never reorders the response.
	var groups [][]int
	if s.snaps == nil {
		for i := range specs {
			groups = append(groups, []int{i})
		}
	} else {
		groups = groupByPrefix(specs)
	}
	points := make([]SweepPoint, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				res, err := s.Submit(specs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				points[i] = SweepPoint{Grid: grids[i], Hash: res.Hash, Cached: res.Cached, Report: res.Report}
			}
		}(idxs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("service: sweep point %d: %w", i, err)
		}
	}
	return points, nil
}

// groupByPrefix partitions grid indices by prefix hash, each group sorted by
// ascending measurement window (stably, so equal-window duplicates keep grid
// order and coalesce through the result cache). Rows that cannot use a
// snapshot anyway — fractional windows, unhashable specs — get singleton
// groups so they keep full row-level parallelism; Submit surfaces any real
// error.
func groupByPrefix(specs []*scenario.Spec) [][]int {
	order := make([]string, 0, len(specs))
	byPrefix := make(map[string][]int, len(specs))
	for i, sp := range specs {
		key, err := sp.PrefixHash()
		if err != nil || !sweepRowEligible(sp) {
			key = fmt.Sprintf("!solo-%d", i)
		}
		if _, ok := byPrefix[key]; !ok {
			order = append(order, key)
		}
		byPrefix[key] = append(byPrefix[key], i)
	}
	groups := make([][]int, 0, len(order))
	for _, key := range order {
		idxs := byPrefix[key]
		sort.SliceStable(idxs, func(a, b int) bool {
			return effMeasure(specs[idxs[a]]) < effMeasure(specs[idxs[b]])
		})
		groups = append(groups, idxs)
	}
	return groups
}

// effMeasure resolves the zero-means-default measurement window.
func effMeasure(sp *scenario.Spec) float64 {
	if sp.MeasureSec == 0 {
		return scenario.DefaultMeasureSec
	}
	return sp.MeasureSec
}

// sweepRowEligible mirrors snapshotEligible for a not-yet-normalized grid
// row: zero windows mean the (integer) defaults.
func sweepRowEligible(sp *scenario.Spec) bool {
	warm := sp.WarmupSec
	if warm == 0 {
		warm = scenario.DefaultWarmupSec
	}
	meas := effMeasure(sp)
	return warm == math.Trunc(warm) && meas == math.Trunc(meas) && meas >= 1
}
