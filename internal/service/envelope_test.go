package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"a4sim/internal/scenario"
)

// errRunner is a Runner stub whose every method fails with a configured
// error — the knob the envelope tests turn to drive each taxonomy branch
// through the real mux.
type errRunner struct{ err error }

func (r *errRunner) Submit(*scenario.Spec) (Result, error)     { return Result{}, r.err }
func (r *errRunner) Extend(string, float64) (Result, error)    { return Result{}, r.err }
func (r *errRunner) Sweep(*SweepRequest) ([]SweepPoint, error) { return nil, r.err }
func (r *errRunner) Lookup(string) ([]byte, bool)              { return nil, false }
func (r *errRunner) Series(string) ([]byte, bool)              { return nil, false }

func validSpecBody(t *testing.T) []byte {
	t.Helper()
	sp, err := scenario.BuiltinMix("tiny")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestErrorEnvelopeTaxonomy pins the full status taxonomy and the uniform
// {"error", "status", "hash"?} envelope across the mux: every error path
// answers JSON (never bare text), the body's status echoes the HTTP one,
// and by-hash lookups carry the hash field.
func TestErrorEnvelopeTaxonomy(t *testing.T) {
	cases := []struct {
		name     string
		err      error // runner error; nil for request-shaping failures
		method   string
		path     string
		body     string // empty means the valid tiny spec
		status   int
		wantHash string
	}{
		{name: "busy-429", err: ErrBusy, method: "POST", path: "/run", status: http.StatusTooManyRequests},
		{name: "closed-503", err: ErrClosed, method: "POST", path: "/run", status: http.StatusServiceUnavailable},
		{name: "unavailable-503", err: ErrUnavailable, method: "POST", path: "/run", status: http.StatusServiceUnavailable},
		{name: "run-error-500", err: &RunError{Hash: "cafe", Err: errors.New("boom")}, method: "POST", path: "/run", status: http.StatusInternalServerError},
		{name: "rejected-422", err: errors.New("scenario: bad spec"), method: "POST", path: "/run", status: http.StatusUnprocessableEntity},
		{name: "forwarded-413", err: &APIError{Status: http.StatusRequestEntityTooLarge, Msg: "too big"}, method: "POST", path: "/run", status: http.StatusRequestEntityTooLarge},
		{name: "bad-json-400", method: "POST", path: "/run", body: "{not json", status: http.StatusBadRequest},
		{name: "extend-unknown-404", err: ErrUnknownHash, method: "POST", path: "/extend", body: `{"hash":"feed","measure_sec":2}`, status: http.StatusNotFound},
		{name: "result-404", method: "GET", path: "/result/deadbeef", status: http.StatusNotFound, wantHash: "deadbeef"},
		{name: "series-404", method: "GET", path: "/series/deadbeef", status: http.StatusNotFound, wantHash: "deadbeef"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mux := NewMux(&errRunner{err: tc.err}, func() any { return Stats{} }, nil)
			srv := httptest.NewServer(mux)
			defer srv.Close()

			var resp *http.Response
			var err error
			switch tc.method {
			case "GET":
				resp, err = http.Get(srv.URL + tc.path)
			default:
				body := tc.body
				if body == "" {
					body = string(validSpecBody(t))
				}
				resp, err = http.Post(srv.URL+tc.path, "application/json", strings.NewReader(body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var eb ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v", err)
			}
			if eb.Error == "" {
				t.Fatal("envelope has empty error message")
			}
			if eb.Status != tc.status {
				t.Fatalf("envelope status = %d, want %d", eb.Status, tc.status)
			}
			if tc.wantHash != "" && eb.Hash != tc.wantHash {
				t.Fatalf("envelope hash = %q, want %q", eb.Hash, tc.wantHash)
			}
		})
	}
}

// TestStatusErrRoundTrip pins ErrFromStatus as the exact inverse of
// StatusForErr: a status leaving one service, translated to an error and
// re-classified (the coordinator's forwarding path), is the same status.
func TestStatusErrRoundTrip(t *testing.T) {
	statuses := []int{
		http.StatusBadRequest,
		http.StatusNotFound,
		http.StatusRequestEntityTooLarge,
		http.StatusUnprocessableEntity,
		http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusServiceUnavailable,
	}
	for _, status := range statuses {
		body, _ := json.Marshal(ErrorBody{Error: "message", Status: status})
		err := ErrFromStatus(status, body)
		if got := StatusForErr(err); got != status {
			t.Errorf("StatusForErr(ErrFromStatus(%d)) = %d", status, got)
		}
	}
	// Sentinel fidelity: the client-side branches the taxonomy promises.
	if err := ErrFromStatus(404, nil); !errors.Is(err, ErrUnknownHash) {
		t.Errorf("404 did not map to ErrUnknownHash: %v", err)
	}
	if err := ErrFromStatus(429, nil); !errors.Is(err, ErrBusy) {
		t.Errorf("429 did not map to ErrBusy: %v", err)
	}
	if err := ErrFromStatus(503, nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("503 did not map to ErrUnavailable: %v", err)
	}
	var re *RunError
	if err := ErrFromStatus(500, []byte(`{"error":"x","status":500,"hash":"ff"}`)); !errors.As(err, &re) || re.Hash != "ff" {
		t.Errorf("500 did not map to RunError with hash: %v", err)
	}
	// Legacy bare-text bodies still decode to a usable message.
	if err := ErrFromStatus(422, []byte("plain text rejection")); !strings.Contains(err.Error(), "plain text rejection") {
		t.Errorf("bare-text body lost its message: %v", err)
	}
}
